package dvod

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dvod/internal/admission"
	"dvod/internal/cache"
	"dvod/internal/client"
	"dvod/internal/clock"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/disk"
	"dvod/internal/faults"
	"dvod/internal/grnet"
	"dvod/internal/ledger"
	"dvod/internal/media"
	"dvod/internal/membership"
	"dvod/internal/metrics"
	"dvod/internal/prefix"
	"dvod/internal/server"
	"dvod/internal/snmp"
	"dvod/internal/topology"
	"dvod/internal/transport"
	"dvod/internal/web"
)

// Re-exported domain types, so downstream users need only this package.
type (
	// NodeID names a video-server site.
	NodeID = topology.NodeID
	// LinkID canonically names a network link.
	LinkID = topology.LinkID
	// Title describes a video title.
	Title = media.Title
	// Decision is a VRA server-selection outcome.
	Decision = core.Decision
	// Player watches titles through a home server.
	Player = client.Player
	// PlaybackStats summarizes one watch session.
	PlaybackStats = client.PlaybackStats
	// FaultPlan is a declarative, deterministic fault schedule ("at T, fail
	// X for D"); arm it with WithFaultPlan.
	FaultPlan = faults.Plan
	// FaultEvent is one scheduled fault of a FaultPlan.
	FaultEvent = faults.Event
	// FaultLogEntry is one row of the injector's deterministic
	// activation/deactivation sequence (Service.FaultEvents).
	FaultLogEntry = faults.LogEntry
	// Member is one entry of a node's membership view (WithMembership).
	Member = membership.Member
	// MemberState is a membership lifecycle state.
	MemberState = membership.State
	// MemberEvent is one membership transition observed by a node's tracker.
	MemberEvent = membership.Event
	// RedirectError is the client's typed failure following one
	// watch.redirect hop.
	RedirectError = client.RedirectError
)

// Membership lifecycle states, re-exported for churn assertions.
const (
	MemberAlive    = membership.Alive
	MemberDraining = membership.Draining
	MemberSuspect  = membership.Suspect
	MemberFailed   = membership.Failed
	MemberLeft     = membership.Left
)

// MakeLinkID builds the canonical ID for the unordered node pair.
func MakeLinkID(a, b NodeID) LinkID { return topology.MakeLinkID(a, b) }

// LinkSpec declares one bidirectional link of the service topology.
type LinkSpec struct {
	A, B         NodeID
	CapacityMbps float64
}

// TopologySpec declares the service's overlay network.
type TopologySpec struct {
	Nodes []NodeID
	Links []LinkSpec
}

// GRNETTopology returns the paper's case-study network: the Greek Research
// and Technology Network backbone of Figure 6 (six sites, seven links).
func GRNETTopology() TopologySpec {
	spec := TopologySpec{Nodes: grnet.Nodes()}
	for _, l := range grnet.Table2() {
		spec.Links = append(spec.Links, LinkSpec{A: l.A, B: l.B, CapacityMbps: l.CapacityMbps})
	}
	return spec
}

// buildGraph converts a spec into a validated graph.
func buildGraph(spec TopologySpec) (*topology.Graph, error) {
	g := topology.NewGraph()
	for _, n := range spec.Nodes {
		if err := g.AddNode(n); err != nil {
			return nil, err
		}
	}
	for _, l := range spec.Links {
		if _, err := g.AddLink(l.A, l.B, l.CapacityMbps); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Service is a running distributed VoD deployment: one video server per
// topology node (on localhost TCP), a shared database module, SNMP polling
// of delivered traffic, DMA caching, and VRA routing.
type Service struct {
	opts    options
	db      *db.DB
	book    *transport.AddrBook
	counter *transport.Counters
	poller  *snmp.Poller
	planner *core.Planner
	health  *db.Health
	// est differentiates the live plane's octet counters into Mbps for the
	// SNMP agents (set at Start; joiners' agents reuse it).
	est *snmp.RateEstimator
	// available is the failover liveness filter shared by every planner
	// (nil without WithFailover).
	available func(NodeID) bool
	// injector applies the armed fault plan (nil without WithFaultPlan);
	// scores is the deployment-wide peer health feedback shared by every
	// planner (nil with WithoutDefense).
	injector *faults.Injector
	scores   *faults.HealthScores

	// mu guards every per-node map below (and stopped): the fleet is
	// elastic, so AddServer / DrainServer mutate them at runtime.
	mu      sync.Mutex
	servers map[NodeID]*server.Server
	caches  map[NodeID]*cache.DMA
	// prefixes exist per node with WithPrefixBudget.
	prefixes map[NodeID]*prefix.Manager
	// directors exist for every node (the stateless front door; inert
	// until draining or WithFrontDoor).
	directors map[NodeID]*membership.Director
	// trackers/mgossipers exist per node with WithMembership.
	trackers   map[NodeID]*membership.Tracker
	mgossipers map[NodeID]*membership.Gossiper
	// brokers/ledgers/gossipers exist per node with WithAdmission; the
	// ledger pair is absent with WithoutLedger.
	brokers   map[NodeID]*admission.Broker
	ledgers   map[NodeID]*ledger.Ledger
	gossipers map[NodeID]*ledger.Gossiper
	stopped   map[NodeID]bool
	// epochs counts each node's boots: a tracker rebuilt by AddServer after
	// StopServer announces a fresh epoch so peers reset their delta-sync
	// acks instead of trusting state the restarted node no longer holds.
	epochs  map[NodeID]uint64
	hbStop  chan struct{}
	hbDone  chan struct{}
	pfStop  chan struct{}
	pfDone  chan struct{}
	started bool
	closed  bool
}

// New assembles a service over the topology. Call Start to bring the
// servers online.
func New(spec TopologySpec, opts ...Option) (*Service, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	g, err := buildGraph(spec)
	if err != nil {
		return nil, fmt.Errorf("dvod: topology: %w", err)
	}
	d := db.New(g)
	book := transport.NewAddrBook()
	counters := transport.NewCounters()
	var (
		health    *db.Health
		available func(NodeID) bool
	)
	if o.failoverMaxAge > 0 {
		health, err = db.NewHealth(o.failoverMaxAge)
		if err != nil {
			return nil, err
		}
		available = health.Filter(o.clock.Now)
	}
	planner, err := core.NewPlanner(d, o.selector, available)
	if err != nil {
		return nil, err
	}
	var scores *faults.HealthScores
	if !o.noDefense {
		// One deployment-wide score table: every server's fetch outcomes
		// feed it, every planner's link weights read it.
		scores = faults.NewHealthScores(0)
		planner.SetNodePenalty(scores.Penalty())
	}
	var injector *faults.Injector
	if o.faultPlan != nil {
		injector, err = faults.NewInjector(*o.faultPlan, o.faultSeed, o.clock, metrics.NewRegistry())
		if err != nil {
			return nil, err
		}
	}
	svc := &Service{
		opts:      o,
		db:        d,
		book:      book,
		counter:   counters,
		servers:   make(map[NodeID]*server.Server, g.NumNodes()),
		caches:    make(map[NodeID]*cache.DMA, g.NumNodes()),
		directors: make(map[NodeID]*membership.Director, g.NumNodes()),
		planner:   planner,
		health:    health,
		available: available,
		injector:  injector,
		scores:    scores,
		stopped:   make(map[NodeID]bool),
		epochs:    make(map[NodeID]uint64),
		hbStop:    make(chan struct{}),
		hbDone:    make(chan struct{}),
		pfStop:    make(chan struct{}),
		pfDone:    make(chan struct{}),
	}
	if o.prefixBudgetBytes > 0 {
		svc.prefixes = make(map[NodeID]*prefix.Manager, g.NumNodes())
	}
	if o.membershipInterval > 0 {
		svc.trackers = make(map[NodeID]*membership.Tracker, g.NumNodes())
		svc.mgossipers = make(map[NodeID]*membership.Gossiper, g.NumNodes())
	}
	if o.admissionMbps > 0 {
		svc.brokers = make(map[NodeID]*admission.Broker, g.NumNodes())
		if !o.noLedger {
			svc.ledgers = make(map[NodeID]*ledger.Ledger, g.NumNodes())
			svc.gossipers = make(map[NodeID]*ledger.Gossiper, g.NumNodes())
		}
	}
	for _, node := range g.Nodes() {
		if err := svc.buildNodeStack(node); err != nil {
			return nil, err
		}
	}
	return svc, nil
}

// buildNodeStack constructs one node's full stack — disk array, DMA, planner,
// broker, ledger replica, membership tracker, redirect director, server, and
// both gossipers — and registers everything in the service maps. It is the
// shared path of New (boot fleet) and AddServer (elastic join); the caller is
// single-threaded during New, and AddServer serializes joins.
func (s *Service) buildNodeStack(node NodeID) error {
	o := s.opts
	d := s.db
	count, capBytes := o.arrayShape(node)
	var arr *disk.Array
	var err error
	if o.dataDir != "" {
		arr, err = disk.NewUniformFileArray(string(node), count, capBytes,
			filepath.Join(o.dataDir, string(node)))
	} else {
		arr, err = disk.NewUniformArray(string(node), count, capBytes)
	}
	if err != nil {
		return err
	}
	dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: o.clusterBytes})
	if err != nil {
		return err
	}
	// One registry per node shared by the server, its prefix manager, its
	// broker, its ledger replica, and its membership tracker, so prefix.*,
	// admission.*, ledger.*, and membership.* surface together in
	// Service.Metrics.
	reg := metrics.NewRegistry()
	var pfx *prefix.Manager
	if o.prefixBudgetBytes > 0 {
		// The prefix tier gets its own single-disk store, sized exactly to
		// the budget, so pinned prefixes never compete with whole-title DMA
		// caching for array room. It is file-backed whenever the node's main
		// array is, which keeps prefix reads on the sendfile kernel path.
		var parr *disk.Array
		if o.dataDir != "" {
			parr, err = disk.NewUniformFileArray(string(node)+"-prefix", 1,
				o.prefixBudgetBytes, filepath.Join(o.dataDir, string(node), "prefix"))
		} else {
			parr, err = disk.NewUniformArray(string(node)+"-prefix", 1, o.prefixBudgetBytes)
		}
		if err != nil {
			return err
		}
		pfx, err = prefix.New(prefix.Config{
			Array:        parr,
			ClusterBytes: o.clusterBytes,
			BudgetBytes:  o.prefixBudgetBytes,
			Points:       dma.Points,
			Catalog:      d.Catalog().Titles,
			Metrics:      reg,
		})
		if err != nil {
			return err
		}
		s.prefixes[node] = pfx
	}
	nodePlanner, err := core.NewPlanner(d, o.selector, s.available)
	if err != nil {
		return err
	}
	if s.scores != nil {
		nodePlanner.SetNodePenalty(s.scores.Penalty())
	}
	if s.injector != nil {
		arr.SetReadInterceptor(s.injector.ReadInterceptor(node))
	}
	var (
		brk *admission.Broker
		led *ledger.Ledger
	)
	if o.admissionMbps > 0 {
		if !o.noLedger {
			led, err = ledger.New(ledger.Config{
				Origin: node,
				// The lease must survive many missed rounds (a partition
				// is not a death) while still draining a dead server's
				// reservations promptly.
				TTL:     40 * o.ledgerInterval,
				Clock:   o.clock,
				Metrics: reg,
			})
			if err != nil {
				return err
			}
			s.ledgers[node] = led
		}
		brk, err = admission.New(admission.Config{
			Node:         node,
			CapacityMbps: o.admissionMbps,
			Shards:       o.admissionShards,
			Snapshot:     d.Snapshot,
			Ledger:       led,
			Clock:        o.clock,
			Metrics:      reg,
		})
		if err != nil {
			return err
		}
		s.brokers[node] = brk
	}
	var tr *membership.Tracker
	if o.membershipInterval > 0 {
		// No lock: New is single-threaded and AddServer already holds s.mu;
		// epochs is touched nowhere else.
		s.epochs[node]++
		tr, err = membership.New(membership.Config{
			Self:          node,
			Seeds:         d.Graph().Nodes(),
			SuspectRounds: o.membershipSuspectRounds,
			FailRounds:    o.membershipFailRounds,
			ProbeFanout:   o.membershipProbeFanout,
			FullSyncEvery: o.membershipFullSyncEvery,
			Epoch:         s.epochs[node],
			OnEvent:       s.memberEventHook(led),
			Metrics:       reg,
		})
		if err != nil {
			return err
		}
		s.trackers[node] = tr
	}
	dir, err := membership.NewDirector(membership.DirectorConfig{
		Self: node,
		// HoldersView keeps the per-request redirect scoring on the
		// catalog's lock-free read path (the director only iterates).
		Holders:   d.Catalog().HoldersView,
		Lookup:    s.book.Lookup,
		FrontDoor: o.frontDoor,
		Resident:  dma.Resident,
		Members:   memberViewFn(tr),
		Load:      s.brokerLoadFn(brk),
		Health:    healthFn(s.scores),
	})
	if err != nil {
		return err
	}
	s.directors[node] = dir
	var mv server.MemberView
	if tr != nil {
		mv = tr
	}
	srv, err := server.New(server.Config{
		Node:           node,
		DB:             d,
		Planner:        nodePlanner,
		Array:          arr,
		Cache:          dma,
		ClusterBytes:   o.clusterBytes,
		Book:           s.book,
		Counters:       s.counter,
		ListenAddr:     o.listenAddrs[node],
		Clock:          o.clock,
		Metrics:        reg,
		MergeWindow:    o.mergeWindow,
		Faults:         s.injector,
		Health:         s.scores,
		Broker:         brk,
		Ledger:         led,
		DisableDefense: o.noDefense,
		Director:       dir,
		Members:        mv,
		MemberProbe:    s.memberProbe(node),
		Prefix:         pfx,
		RelayCohorts:   o.relayCohorts,
	})
	if err != nil {
		return err
	}
	s.servers[node] = srv
	s.caches[node] = dma
	if err := d.RegisterServer(node, "dvod video server", o.clock.Now()); err != nil {
		return err
	}
	if led != nil {
		gsp, err := ledger.NewGossiper(ledger.GossipConfig{
			Ledger:   led,
			PeersFn:  s.ledgerPeersFn(node),
			Fanout:   o.ledgerFanout,
			Lookup:   s.book.Lookup,
			Dial:     s.gossipDialer(node),
			Interval: o.ledgerInterval,
			Clock:    o.clock,
			Metrics:  reg,
		})
		if err != nil {
			return err
		}
		s.gossipers[node] = gsp
	}
	if tr != nil {
		mg, err := membership.NewGossiper(membership.GossipConfig{
			Tracker:         tr,
			Fanout:          o.membershipFanout,
			ExchangeTimeout: o.membershipExchangeTimeout,
			Lookup:          s.book.Lookup,
			Dial:            s.gossipDialer(node),
			Interval:        o.membershipInterval,
			Clock:           o.clock,
			Metrics:         reg,
		})
		if err != nil {
			return err
		}
		s.mgossipers[node] = mg
	}
	return nil
}

// memberEventHook wires one node's membership events into the rest of the
// stack: a failed member's ledger leases are reclaimed from this node's
// replica immediately, routing stops considering it (failover health), and
// the VRA's node penalty saturates — all event-driven, none waiting for a
// timeout. A graceful leave reclaims leases the same way.
func (s *Service) memberEventHook(led *ledger.Ledger) func(membership.Event) {
	return func(ev membership.Event) {
		switch ev.Kind {
		case membership.EventFail:
			if led != nil {
				led.ExpireOrigin(ev.Node)
			}
			if s.health != nil {
				s.health.MarkDown(ev.Node)
			}
			if s.scores != nil {
				s.scores.MarkFailed(ev.Node)
			}
		case membership.EventLeave:
			if led != nil {
				led.ExpireOrigin(ev.Node)
			}
		}
	}
}

// ledgerPeersFn resolves one ledger gossiper's peer set per round: the
// node's membership view when the membership layer runs (failed and departed
// replicas stop being dialed, joiners start), the current topology otherwise.
func (s *Service) ledgerPeersFn(self NodeID) func() []NodeID {
	return func() []NodeID {
		s.mu.Lock()
		tr := s.trackers[self]
		s.mu.Unlock()
		if tr != nil {
			return tr.GossipPeers()
		}
		nodes := s.db.Graph().Nodes()
		peers := make([]NodeID, 0, len(nodes))
		for _, p := range nodes {
			if p != self {
				peers = append(peers, p)
			}
		}
		return peers
	}
}

// brokerLoadFn adapts the brokers to the director's load hook: committed
// over capacity for every broker in the fleet (0 for unknown nodes).
func (s *Service) brokerLoadFn(own *admission.Broker) func(NodeID) float64 {
	_ = own
	return func(n NodeID) float64 {
		s.mu.Lock()
		brk := s.brokers[n]
		s.mu.Unlock()
		if brk == nil || brk.CapacityMbps() <= 0 {
			return 0
		}
		return brk.CommittedMbps() / brk.CapacityMbps()
	}
}

// memberViewFn adapts an optional tracker to the director's members hook.
func memberViewFn(tr *membership.Tracker) func() []membership.Member {
	if tr == nil {
		return nil
	}
	return tr.Members
}

// healthFn adapts the optional health scores to the director's health hook.
func healthFn(scores *faults.HealthScores) func(NodeID) float64 {
	if scores == nil {
		return nil
	}
	return scores.Score
}

// gossipDialer routes one node's gossip exchanges through the fault
// injector, so a partition that cuts the delivery plane cuts anti-entropy
// identically (both the partitioned node's outbound dials and everyone
// else's dials toward it refuse).
func (s *Service) gossipDialer(self NodeID) func(NodeID, string) (*transport.Conn, error) {
	return func(peer NodeID, addr string) (*transport.Conn, error) {
		inj := s.injector
		if inj == nil {
			return transport.Dial(addr)
		}
		if err := inj.DialError(self, nil); err != nil {
			return nil, err
		}
		if err := inj.DialError(peer, nil); err != nil {
			return nil, err
		}
		return transport.DialWith(addr, func(rw io.ReadWriteCloser) io.ReadWriteCloser {
			return inj.WrapStream(peer, nil, rw)
		})
	}
}

// memberProbe dials and pings target on behalf of a member.ping-req sender:
// the helper leg of the membership failure detector. The dial runs through
// the fault injector, so a partitioned target fails the indirect probe
// exactly like it fails direct gossip — and a target only *this* helper
// cannot reach clears the asker's false suspicion.
func (s *Service) memberProbe(self NodeID) func(NodeID, string) error {
	dial := s.gossipDialer(self)
	return func(target NodeID, addr string) error {
		if addr == "" {
			a, err := s.book.Lookup(target)
			if err != nil {
				return err
			}
			addr = a
		}
		conn, err := dial(target, addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		timeout := s.opts.membershipExchangeTimeout
		if timeout <= 0 {
			timeout = membership.DefaultExchangeTimeout
		}
		_ = conn.SetDeadline(time.Now().Add(timeout))
		m, err := transport.Encode(transport.TypePing, nil)
		if err != nil {
			return err
		}
		if err := conn.WriteMessage(m); err != nil {
			return err
		}
		reply, err := conn.ReadMessage()
		if err != nil {
			return err
		}
		if reply.Type != transport.TypePong {
			return fmt.Errorf("probe %s: unexpected reply %q", target, reply.Type)
		}
		return nil
	}
}

// Start brings every video server online and begins SNMP polling of the
// service's own delivered traffic.
func (s *Service) Start() error {
	if s.closed {
		return errors.New("dvod: service closed")
	}
	if s.started {
		return errors.New("dvod: service already started")
	}
	for _, node := range s.db.Graph().Nodes() {
		if err := s.servers[node].Start(); err != nil {
			_ = s.Close()
			return err
		}
	}
	est, err := snmp.NewRateEstimator(s.counter, s.opts.clock)
	if err != nil {
		_ = s.Close()
		return err
	}
	s.est = est
	var agents []*snmp.Agent
	for _, node := range s.db.Graph().Nodes() {
		// Agents read the graph through the DB so samples always cover the
		// current (possibly grown or shrunk) topology view.
		a, err := snmp.NewDynamicAgent(node, s.db.Graph, est)
		if err != nil {
			_ = s.Close()
			return err
		}
		agents = append(agents, a)
	}
	poller, err := snmp.NewPoller(snmp.PollerConfig{
		Agents:   agents,
		DB:       s.db,
		Clock:    s.opts.clock,
		Interval: s.opts.snmpInterval,
	})
	if err != nil {
		_ = s.Close()
		return err
	}
	s.poller = poller
	poller.Start()
	if s.injector != nil {
		if err := s.injector.Start(); err != nil {
			_ = s.Close()
			return err
		}
	}
	for _, gsp := range s.gossipers {
		gsp.Start()
	}
	for _, mg := range s.mgossipers {
		mg.Start()
	}
	if s.health != nil {
		// Seed immediate liveness, then heartbeat in the background.
		now := s.opts.clock.Now()
		for _, node := range s.db.Graph().Nodes() {
			s.health.Heartbeat(node, now)
		}
		go s.heartbeatLoop()
	} else {
		close(s.hbDone)
	}
	if s.opts.prefixEpoch > 0 && s.prefixes != nil {
		go s.prefixEpochLoop()
	} else {
		close(s.pfDone)
	}
	s.started = true
	return nil
}

// prefixEpochLoop re-solves every node's prefix knapsack on the configured
// epoch, jittered ±25% so a fleet of services does not re-replicate in
// lockstep. Deterministic tests drive epochs through PrefixResolve instead.
func (s *Service) prefixEpochLoop() {
	defer close(s.pfDone)
	rng := rand.New(rand.NewSource(s.opts.faultSeed ^ 0x70666978)) // "pfix"
	for {
		select {
		case <-s.opts.clock.After(faults.Jitter(s.opts.prefixEpoch, 0.25, rng)):
			_ = s.PrefixResolve()
		case <-s.pfStop:
			return
		}
	}
}

// PrefixResolve drives one synchronous prefix epoch on every live node:
// popularity is snapshotted, the knapsack re-solved, and the pinned prefixes
// re-replicated to match. Studies and tests on a virtual clock use it instead
// of waiting out WithPrefixEpoch intervals. It returns the first
// re-replication error (later nodes still resolve). No-op without
// WithPrefixBudget.
func (s *Service) PrefixResolve() error {
	var firstErr error
	for _, node := range s.db.Graph().Nodes() {
		s.mu.Lock()
		pm := s.prefixes[node]
		down := s.stopped[node]
		s.mu.Unlock()
		if down || pm == nil {
			continue
		}
		if _, _, err := pm.Resolve(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("dvod: prefix resolve %s: %w", node, err)
		}
	}
	return firstErr
}

// PrefixClusters reports how many leading clusters of the title are pinned on
// the node's prefix store right now (0 without WithPrefixBudget or for
// unknown nodes).
func (s *Service) PrefixClusters(node NodeID, title string) int {
	s.mu.Lock()
	pm := s.prefixes[node]
	s.mu.Unlock()
	if pm == nil {
		return 0
	}
	return pm.PrefixClusters(title)
}

// heartbeatLoop refreshes liveness for every non-stopped server. Each wait
// is jittered ±25% so a fleet of services started together does not
// heartbeat (and hence refresh routing state) in lockstep forever.
func (s *Service) heartbeatLoop() {
	defer close(s.hbDone)
	rng := rand.New(rand.NewSource(s.opts.faultSeed ^ 0x68656172)) // "hear"
	for {
		select {
		case <-s.opts.clock.After(faults.Jitter(s.opts.failoverInterval, 0.25, rng)):
			now := s.opts.clock.Now()
			nodes := s.db.Graph().Nodes()
			s.mu.Lock()
			for _, node := range nodes {
				if !s.stopped[node] && s.servers[node] != nil {
					s.health.Heartbeat(node, now)
				}
			}
			s.mu.Unlock()
		case <-s.hbStop:
			return
		}
	}
}

// StopServer takes one video server offline: its listener closes, its
// heartbeats stop, and (with failover enabled) the routing immediately
// stops considering it — the dynamic-adjustment behaviour the paper claims
// for "server configuration changes".
func (s *Service) StopServer(node NodeID) error {
	s.mu.Lock()
	srv, ok := s.servers[node]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("dvod: %w: %s", topology.ErrNodeUnknown, node)
	}
	s.stopped[node] = true
	gsp := s.gossipers[node]
	mg := s.mgossipers[node]
	s.mu.Unlock()
	if gsp != nil {
		gsp.Stop()
	}
	if mg != nil {
		mg.Stop()
	}
	if s.health != nil {
		s.health.MarkDown(node)
	}
	return srv.Close()
}

// AddServer grows the running fleet: the node and its links join the
// atomically-swapped topology view, a full per-node stack (disk array, DMA,
// planner, broker, ledger replica, membership tracker, redirect director,
// server, gossipers) is built and started, and the DMA re-replicates the
// hottest title onto the joiner so it starts serving watches immediately.
// Existing members learn of the joiner through membership gossip (or, without
// WithMembership, through the swapped topology view alone). The service must
// be started.
func (s *Service) AddServer(node NodeID, links []LinkSpec) error {
	if node == "" {
		return errors.New("dvod: empty node")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dvod: service closed")
	}
	if !s.started {
		s.mu.Unlock()
		return errors.New("dvod: service not started")
	}
	if _, exists := s.servers[node]; exists {
		s.mu.Unlock()
		return fmt.Errorf("dvod: server %s already in the fleet", node)
	}
	s.mu.Unlock()
	now := s.opts.clock.Now()
	g := s.db.Graph().Clone()
	if err := g.AddNode(node); err != nil {
		return fmt.Errorf("dvod: join %s: %w", node, err)
	}
	for _, l := range links {
		if _, err := g.AddLink(l.A, l.B, l.CapacityMbps); err != nil {
			return fmt.Errorf("dvod: join %s: %w", node, err)
		}
	}
	if _, err := s.db.SetGraph(g, now); err != nil {
		return fmt.Errorf("dvod: join %s: %w", node, err)
	}
	s.mu.Lock()
	err := s.buildNodeStack(node)
	srv := s.servers[node]
	gsp := s.gossipers[node]
	mg := s.mgossipers[node]
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("dvod: join %s: %w", node, err)
	}
	if err := srv.Start(); err != nil {
		return fmt.Errorf("dvod: join %s: %w", node, err)
	}
	if s.health != nil {
		s.health.Heartbeat(node, now)
	}
	if s.poller != nil && s.est != nil {
		a, err := snmp.NewDynamicAgent(node, s.db.Graph, s.est)
		if err != nil {
			return fmt.Errorf("dvod: join %s: %w", node, err)
		}
		if err := s.poller.AddAgent(a); err != nil {
			return fmt.Errorf("dvod: join %s: %w", node, err)
		}
	}
	if gsp != nil {
		gsp.Start()
	}
	if mg != nil {
		mg.Start()
	}
	s.rereplicateTo(node)
	return nil
}

// rereplicateTo copies the hottest title the joiner does not yet hold onto
// its DMA (trying successively less popular ones if the hottest does not
// fit), so a joining server immediately takes watch load instead of serving
// nothing until organic DMA admission warms it up.
func (s *Service) rereplicateTo(node NodeID) {
	s.mu.Lock()
	srv := s.servers[node]
	dma := s.caches[node]
	caches := make([]*cache.DMA, 0, len(s.caches))
	for _, c := range s.caches {
		caches = append(caches, c)
	}
	s.mu.Unlock()
	if srv == nil || dma == nil {
		return
	}
	titles := s.db.Catalog().Titles()
	type ranked struct {
		title  Title
		points int64
	}
	var hot []ranked
	for _, t := range titles {
		if dma.Resident(t.Name) {
			continue
		}
		var pts int64
		for _, c := range caches {
			pts += c.Points(t.Name)
		}
		hot = append(hot, ranked{title: t, points: pts})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].points != hot[j].points {
			return hot[i].points > hot[j].points
		}
		return hot[i].title.Name < hot[j].title.Name
	})
	for _, r := range hot {
		if err := srv.Preload(r.title); err == nil {
			return
		}
	}
}

// BeginDrain starts a graceful drain of one server: its director redirects
// every new watch to a better-placed replica (in-flight sessions finish
// normally), its membership state becomes Draining, and any title it is the
// sole holder of is re-replicated to the least-loaded live peer so no title
// goes dark when the drain completes. Call FinishDrain once in-flight
// sessions have ended.
func (s *Service) BeginDrain(node NodeID) error {
	s.mu.Lock()
	dir := s.directors[node]
	tr := s.trackers[node]
	s.mu.Unlock()
	if dir == nil {
		return fmt.Errorf("dvod: %w: %s", topology.ErrNodeUnknown, node)
	}
	dir.SetDraining(true)
	if tr != nil {
		tr.SetLocalState(membership.Draining)
	}
	s.evacuateSoleHoldings(node)
	return nil
}

// evacuateSoleHoldings re-replicates every title held only by the draining
// node onto the live peer with the most residual broker headroom (ties by
// node order), so the drain never makes a title unavailable.
func (s *Service) evacuateSoleHoldings(node NodeID) {
	titles := s.db.Catalog().TitlesHeldBy(node)
	for _, name := range titles {
		holders, err := s.db.Catalog().Holders(name)
		if err != nil {
			continue
		}
		replicated := false
		s.mu.Lock()
		for _, h := range holders {
			if h != node && s.servers[h] != nil && !s.stopped[h] {
				replicated = true
				break
			}
		}
		s.mu.Unlock()
		if replicated {
			continue
		}
		t, err := s.db.Catalog().Title(name)
		if err != nil {
			continue
		}
		for _, target := range s.drainTargets(node) {
			if err := target.Preload(t); err == nil {
				break
			}
		}
	}
}

// drainTargets lists candidate receivers for evacuated titles: live,
// non-draining servers ordered by ascending broker load, then node ID.
func (s *Service) drainTargets(exclude NodeID) []*server.Server {
	type cand struct {
		node NodeID
		srv  *server.Server
		load float64
	}
	var cands []cand
	s.mu.Lock()
	for n, srv := range s.servers {
		if n == exclude || s.stopped[n] {
			continue
		}
		if dir := s.directors[n]; dir != nil && dir.Draining() {
			continue
		}
		load := 0.0
		if brk := s.brokers[n]; brk != nil && brk.CapacityMbps() > 0 {
			load = brk.CommittedMbps() / brk.CapacityMbps()
		}
		cands = append(cands, cand{node: n, srv: srv, load: load})
	}
	s.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load < cands[j].load
		}
		return cands[i].node < cands[j].node
	})
	out := make([]*server.Server, 0, len(cands))
	for _, c := range cands {
		out = append(out, c.srv)
	}
	return out
}

// FinishDrain completes a graceful drain begun with BeginDrain: the member
// announces Left (disseminated in a final gossip round), its holdings are
// withdrawn from the catalog, its gossipers stop, its server closes, its
// registration is removed, and the topology view shrinks — provided the
// remaining graph stays connected (otherwise the node's links are kept as
// dead capacity and only the server-level state is retired).
func (s *Service) FinishDrain(node NodeID) error {
	s.mu.Lock()
	srv := s.servers[node]
	tr := s.trackers[node]
	mg := s.mgossipers[node]
	gsp := s.gossipers[node]
	s.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("dvod: %w: %s", topology.ErrNodeUnknown, node)
	}
	now := s.opts.clock.Now()
	if tr != nil {
		tr.SetLocalState(membership.Left)
	}
	if mg != nil {
		// One final synchronous round pushes the Left announcement out before
		// this gossiper goes silent; peers relay it from there.
		mg.RunOnce()
		mg.Stop()
	}
	for _, name := range s.db.Catalog().TitlesHeldBy(node) {
		_ = s.db.SetHolding(node, name, false, now)
	}
	s.mu.Lock()
	s.stopped[node] = true
	s.mu.Unlock()
	if gsp != nil {
		gsp.Stop()
	}
	if s.health != nil {
		s.health.MarkDown(node)
	}
	if s.poller != nil {
		s.poller.RemoveAgent(node)
	}
	closeErr := srv.Close()
	if err := s.db.UnregisterServer(node, now); err != nil {
		return err
	}
	if g, err := s.db.Graph().WithoutNode(node); err == nil {
		if g.Validate() == nil {
			if _, err := s.db.SetGraph(g, now); err != nil {
				return err
			}
		}
	}
	return closeErr
}

// DrainServer gracefully removes one server from the fleet: BeginDrain
// followed immediately by FinishDrain. Deployments with long-lived sessions
// should call the two phases separately and let in-flight watches finish
// between them.
func (s *Service) DrainServer(node NodeID) error {
	if err := s.BeginDrain(node); err != nil {
		return err
	}
	return s.FinishDrain(node)
}

// Close stops polling and shuts every server down. It is idempotent.
func (s *Service) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	for _, gsp := range s.gossipers {
		gsp.Stop()
	}
	for _, mg := range s.mgossipers {
		mg.Stop()
	}
	if s.injector != nil {
		s.injector.Stop()
	}
	if s.started && s.health != nil {
		close(s.hbStop)
		<-s.hbDone
	}
	if s.started && s.opts.prefixEpoch > 0 && s.prefixes != nil {
		close(s.pfStop)
		<-s.pfDone
	}
	if s.poller != nil {
		s.poller.Stop()
	}
	var firstErr error
	for _, srv := range s.servers {
		if err := srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AddTitle registers a title in the service catalog.
func (s *Service) AddTitle(t Title) error {
	return s.db.Catalog().AddTitle(t)
}

// Titles lists the catalog.
func (s *Service) Titles() []Title { return s.db.Catalog().Titles() }

// Preload places a copy of a title on the node's disk array — the paper's
// initialization phase.
func (s *Service) Preload(node NodeID, title string) error {
	s.mu.Lock()
	srv, ok := s.servers[node]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("dvod: %w: %s", topology.ErrNodeUnknown, node)
	}
	t, err := s.db.Catalog().Title(title)
	if err != nil {
		return err
	}
	return srv.Preload(t)
}

// Holders lists the servers currently storing the title.
func (s *Service) Holders(title string) ([]NodeID, error) {
	return s.db.Catalog().Holders(title)
}

// Player returns a player homed at the given node. The service must be
// started.
func (s *Service) Player(home NodeID, opts ...client.Option) (*Player, error) {
	if !s.started {
		return nil, errors.New("dvod: service not started")
	}
	s.mu.Lock()
	_, ok := s.servers[home]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dvod: %w: %s", topology.ErrNodeUnknown, home)
	}
	return client.NewPlayer(home, s.book, opts...)
}

// Plan runs the routing policy for a hypothetical request without
// transferring anything: which server would serve a client homed at home?
func (s *Service) Plan(home NodeID, title string) (Decision, error) {
	return s.planner.Plan(home, title)
}

// SetLinkTraffic injects an externally measured link load (Mbps) into the
// limited-access database — the administrator/manual path the paper
// describes alongside automatic SNMP insertion.
func (s *Service) SetLinkTraffic(a, b NodeID, usedMbps float64) error {
	return s.db.UpsertLinkStats(topology.MakeLinkID(a, b), usedMbps, s.opts.clock.Now())
}

// LinkUtilization reads the latest recorded utilization of a link.
func (s *Service) LinkUtilization(a, b NodeID) (float64, error) {
	st, err := s.db.LinkStats(topology.MakeLinkID(a, b))
	if err != nil {
		return 0, err
	}
	return st.Utilization, nil
}

// SaveState serializes the service's database — registered servers, link
// statistics, catalog, and holdings — so a later deployment over the same
// topology can resume via LoadState without re-running initialization.
// Disk contents are not saved; preload titles again after LoadState (their
// bytes regenerate deterministically).
func (s *Service) SaveState(w io.Writer) error { return s.db.Save(w) }

// LoadState applies a SaveState snapshot onto a freshly constructed,
// not-yet-populated service over the same topology.
func (s *Service) LoadState(r io.Reader) error { return s.db.Load(r) }

// MetricsSnapshot is a point-in-time copy of one server's metrics.
type MetricsSnapshot = metrics.Snapshot

// Metrics returns a snapshot of every video server's counters (requests,
// clusters served, DMA hits/admissions, fetch retries, resilience counters,
// errors). With an armed fault plan, the injector's own counters (notably
// faults.injected_total) appear under the pseudo-node "_faults".
func (s *Service) Metrics() map[NodeID]MetricsSnapshot {
	s.mu.Lock()
	servers := make(map[NodeID]*server.Server, len(s.servers))
	for node, srv := range s.servers {
		servers[node] = srv
	}
	s.mu.Unlock()
	out := make(map[NodeID]MetricsSnapshot, len(servers)+1)
	for node, srv := range servers {
		out[node] = srv.Metrics().Snapshot()
	}
	if s.injector != nil {
		out["_faults"] = s.injector.Registry().Snapshot()
	}
	return out
}

// FaultEvents returns the armed plan's deterministic activation /
// deactivation sequence (nil without WithFaultPlan). Two runs with the same
// plan and seed return identical sequences — the reproducibility contract
// chaos tests pin against.
func (s *Service) FaultEvents() []FaultLogEntry {
	if s.injector == nil {
		return nil
	}
	return s.injector.Events()
}

// InjectedFaults reports how many faults the armed plan has actually
// injected so far (0 without WithFaultPlan).
func (s *Service) InjectedFaults() int64 {
	if s.injector == nil {
		return 0
	}
	return s.injector.InjectedTotal()
}

// GossipRound drives one synchronous anti-entropy round on every live
// node's gossiper (skipping servers taken down with StopServer). Tests and
// studies running on a virtual clock use it to converge the reservation
// ledger deterministically instead of waiting out wall-clock intervals.
// No-op without WithAdmission or with WithoutLedger.
func (s *Service) GossipRound() {
	for _, node := range s.db.Graph().Nodes() {
		s.mu.Lock()
		gsp := s.gossipers[node]
		down := s.stopped[node]
		s.mu.Unlock()
		if down || gsp == nil {
			continue
		}
		gsp.RunOnce()
	}
}

// MembershipRound drives one synchronous membership gossip round on every
// live node's tracker, in node order — the deterministic counterpart of the
// background loops, used by churn tests and studies on a virtual clock.
// No-op without WithMembership.
func (s *Service) MembershipRound() {
	for _, node := range s.db.Graph().Nodes() {
		s.mu.Lock()
		mg := s.mgossipers[node]
		down := s.stopped[node]
		s.mu.Unlock()
		if down || mg == nil {
			continue
		}
		mg.RunOnce()
	}
}

// MemberStates returns one node's current membership view (nil without
// WithMembership or for unknown viewers).
func (s *Service) MemberStates(viewer NodeID) map[NodeID]MemberState {
	s.mu.Lock()
	tr := s.trackers[viewer]
	s.mu.Unlock()
	if tr == nil {
		return nil
	}
	out := make(map[NodeID]MemberState)
	for _, m := range tr.Members() {
		out[m.Node] = m.State
	}
	return out
}

// LedgerDigests returns each live node's reservation-ledger digest — a
// hash over its full replica state. All digests equal means the replicas
// have converged. Nil without WithAdmission or with WithoutLedger.
func (s *Service) LedgerDigests() map[NodeID]string {
	if s.ledgers == nil {
		return nil
	}
	s.mu.Lock()
	live := make(map[NodeID]*ledger.Ledger, len(s.ledgers))
	for node, led := range s.ledgers {
		if !s.stopped[node] {
			live[node] = led
		}
	}
	s.mu.Unlock()
	out := make(map[NodeID]string, len(live))
	for node, led := range live {
		out[node] = led.Digest()
	}
	return out
}

// CommittedLinkMbps sums every broker's locally committed reservations per
// link — the deployment-wide ground truth the study compares against link
// capacity to detect oversubscription. Nil without WithAdmission.
func (s *Service) CommittedLinkMbps() map[LinkID]float64 {
	if s.brokers == nil {
		return nil
	}
	s.mu.Lock()
	brokers := make([]*admission.Broker, 0, len(s.brokers))
	for _, brk := range s.brokers {
		brokers = append(brokers, brk)
	}
	s.mu.Unlock()
	out := make(map[LinkID]float64)
	for _, brk := range brokers {
		for id, mbps := range brk.LinkReservations() {
			out[id] += mbps
		}
	}
	return out
}

// WatchDialer returns a client dialer routed through the service's fault
// injector, so peer.down and peer.stall faults on the home node sever or
// freeze its local clients' watch connections too. Without an armed plan it
// returns nil, which client.WithDialer treats as the default dialer — safe
// to pass unconditionally.
func (s *Service) WatchDialer(home NodeID) func(addr string) (*transport.Conn, error) {
	if s.injector == nil {
		return nil
	}
	inj := s.injector
	return func(addr string) (*transport.Conn, error) {
		if err := inj.DialError(home, nil); err != nil {
			return nil, err
		}
		return transport.DialWith(addr, func(rw io.ReadWriteCloser) io.ReadWriteCloser {
			return inj.WrapStream(home, nil, rw)
		})
	}
}

// WebHandler returns the paper's web interface modules as an http.Handler:
// the full-access module (browse, search, POST /request running the VRA) and
// the limited-access module under /admin (including /admin/metrics) guarded
// by the bearer token (empty token disables the admin endpoints).
func (s *Service) WebHandler(adminToken string) (http.Handler, error) {
	return web.New(web.Config{
		DB:         s.db,
		Planner:    s.planner,
		AdminToken: adminToken,
		Clock:      s.opts.clock,
		Metrics:    s.Metrics,
	})
}

// ServerAddr returns a node's live TCP endpoint ("" before Start).
func (s *Service) ServerAddr(node NodeID) (string, error) {
	s.mu.Lock()
	srv, ok := s.servers[node]
	s.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("dvod: %w: %s", topology.ErrNodeUnknown, node)
	}
	return srv.Addr(), nil
}

// options configures New.
type options struct {
	clusterBytes       int64
	disksPerServer     int
	diskCapacityBytes  int64
	nodeDisks          map[NodeID]diskShape
	snmpInterval       time.Duration
	selector           core.Selector
	clock              clock.Clock
	listenAddrs        map[NodeID]string
	failoverInterval   time.Duration
	failoverMaxAge     time.Duration
	mergeWindow        int
	faultPlan          *faults.Plan
	faultSeed          int64
	noDefense          bool
	admissionMbps      float64
	admissionShards    int
	noLedger           bool
	ledgerInterval     time.Duration
	ledgerFanout       int
	membershipInterval time.Duration
	// WAN-tuning knobs of the membership plane (zero = membership defaults).
	membershipFanout          int
	membershipSuspectRounds   int
	membershipFailRounds      int
	membershipProbeFanout     int
	membershipFullSyncEvery   int
	membershipExchangeTimeout time.Duration
	frontDoor                 bool
	dataDir                   string
	prefixBudgetBytes         int64
	prefixEpoch               time.Duration
	relayCohorts              bool
}

type diskShape struct {
	count         int
	capacityBytes int64
}

func defaultOptions() options {
	return options{
		clusterBytes:      256 << 10,
		disksPerServer:    4,
		diskCapacityBytes: 64 << 20,
		nodeDisks:         map[NodeID]diskShape{},
		snmpInterval:      90 * time.Second,
		selector:          core.VRA{},
		clock:             clock.Wall{},
		listenAddrs:       map[NodeID]string{},
		ledgerInterval:    ledger.DefaultGossipInterval,
	}
}

// arrayShape resolves the disk shape for a node (per-node override or the
// service default).
func (o options) arrayShape(node NodeID) (int, int64) {
	if s, ok := o.nodeDisks[node]; ok {
		return s.count, s.capacityBytes
	}
	return o.disksPerServer, o.diskCapacityBytes
}

func (o options) validate() error {
	switch {
	case o.clusterBytes <= 0:
		return fmt.Errorf("dvod: bad cluster size %d", o.clusterBytes)
	case o.disksPerServer <= 0:
		return fmt.Errorf("dvod: bad disk count %d", o.disksPerServer)
	case o.diskCapacityBytes <= 0:
		return fmt.Errorf("dvod: bad disk capacity %d", o.diskCapacityBytes)
	case o.snmpInterval <= 0:
		return fmt.Errorf("dvod: bad SNMP interval %v", o.snmpInterval)
	case o.selector == nil:
		return errors.New("dvod: nil selector")
	case o.clock == nil:
		return errors.New("dvod: nil clock")
	case o.mergeWindow < 0:
		return fmt.Errorf("dvod: negative merge window %d", o.mergeWindow)
	case o.admissionMbps < 0:
		return fmt.Errorf("dvod: negative admission capacity %v", o.admissionMbps)
	case o.admissionShards < 0:
		return fmt.Errorf("dvod: negative admission shard count %d", o.admissionShards)
	case o.ledgerInterval <= 0:
		return fmt.Errorf("dvod: bad ledger gossip interval %v", o.ledgerInterval)
	case o.ledgerFanout < 0:
		return fmt.Errorf("dvod: negative ledger fan-out %d", o.ledgerFanout)
	case o.membershipInterval < 0:
		return fmt.Errorf("dvod: negative membership interval %v", o.membershipInterval)
	case o.membershipFanout < 0:
		return fmt.Errorf("dvod: negative membership fan-out %d", o.membershipFanout)
	case o.membershipExchangeTimeout < 0:
		return fmt.Errorf("dvod: negative membership exchange timeout %v", o.membershipExchangeTimeout)
	case o.membershipSuspectRounds < 0 || o.membershipFailRounds < 0:
		return fmt.Errorf("dvod: negative membership windows %d/%d",
			o.membershipSuspectRounds, o.membershipFailRounds)
	case o.membershipFullSyncEvery < 0:
		return fmt.Errorf("dvod: negative membership full-sync period %d", o.membershipFullSyncEvery)
	}
	if o.noLedger && o.admissionMbps <= 0 {
		return errors.New("dvod: WithoutLedger needs WithAdmission")
	}
	if o.prefixBudgetBytes < 0 {
		return fmt.Errorf("dvod: negative prefix budget %d", o.prefixBudgetBytes)
	}
	if o.prefixEpoch < 0 {
		return fmt.Errorf("dvod: negative prefix epoch %v", o.prefixEpoch)
	}
	if o.prefixEpoch > 0 && o.prefixBudgetBytes <= 0 {
		return errors.New("dvod: WithPrefixEpoch needs WithPrefixBudget")
	}
	if o.relayCohorts && o.mergeWindow <= 0 {
		return errors.New("dvod: WithCohortRelay needs WithMergeWindow")
	}
	for node, s := range o.nodeDisks {
		if s.count <= 0 || s.capacityBytes <= 0 {
			return fmt.Errorf("dvod: bad disk shape for %s: %d × %d", node, s.count, s.capacityBytes)
		}
	}
	if (o.failoverInterval > 0) != (o.failoverMaxAge > 0) {
		return errors.New("dvod: failover needs both interval and max age")
	}
	if o.failoverMaxAge > 0 && o.failoverInterval >= o.failoverMaxAge {
		return fmt.Errorf("dvod: failover interval %v must be below max age %v",
			o.failoverInterval, o.failoverMaxAge)
	}
	return nil
}

// Option customizes New.
type Option func(*options)

// WithClusterBytes sets the DMA/VRA cluster size c (default 256 KiB).
func WithClusterBytes(c int64) Option {
	return func(o *options) { o.clusterBytes = c }
}

// WithDisks sets each server's array shape (default 4 × 64 MiB).
func WithDisks(count int, capacityBytes int64) Option {
	return func(o *options) {
		o.disksPerServer = count
		o.diskCapacityBytes = capacityBytes
	}
}

// WithFileBackedDisks stores every disk block as a real file under
// dir/<node>/<disk>/ instead of in memory. Content, layout, and fault
// injection are identical to the in-memory store; what changes is delivery:
// on Linux, resident clusters are served straight from the block file's
// descriptor with sendfile(2) (DESIGN.md § "Kernel delivery path"). The
// directory is created as needed and not cleaned up on Close — callers own
// its lifetime (tests pass t.TempDir()).
func WithFileBackedDisks(dir string) Option {
	return func(o *options) { o.dataDir = dir }
}

// WithNodeDisks overrides the array shape of one node (heterogeneous
// deployments; e.g. a small edge cache next to large origin servers).
func WithNodeDisks(node NodeID, count int, capacityBytes int64) Option {
	return func(o *options) {
		o.nodeDisks[node] = diskShape{count: count, capacityBytes: capacityBytes}
	}
}

// WithSNMPInterval sets the statistics refresh period (default 90 s; the
// paper suggests 1-2 minutes).
func WithSNMPInterval(d time.Duration) Option {
	return func(o *options) { o.snmpInterval = d }
}

// WithSelector replaces the routing policy (default: the paper's VRA).
func WithSelector(sel core.Selector) Option {
	return func(o *options) { o.selector = sel }
}

// WithListenAddr pins one node's TCP endpoint (default 127.0.0.1:0).
func WithListenAddr(node NodeID, addr string) Option {
	return func(o *options) { o.listenAddrs[node] = addr }
}

// WithClock substitutes the time source (tests).
func WithClock(c clock.Clock) Option {
	return func(o *options) { o.clock = c }
}

// WithFailover enables heartbeat-based server failover: servers heartbeat
// every interval and routing ignores any server whose last heartbeat is
// older than maxAge. Disabled by default.
func WithFailover(interval, maxAge time.Duration) Option {
	return func(o *options) {
		o.failoverInterval = interval
		o.failoverMaxAge = maxAge
	}
}

// WithMergeWindow enables shared-prefix stream merging on every server:
// concurrent Watch sessions of one title starting within window clusters of
// each other share a single base stream (one disk read per cluster, fanned
// out), with late joiners patched privately. Disabled by default — the
// paper's delivery is one stream per session.
func WithMergeWindow(window int) Option {
	return func(o *options) { o.mergeWindow = window }
}

// WithFaultPlan arms a deterministic fault schedule across the whole
// deployment: peer dials refuse and live streams cut under link.down /
// peer.down windows, peer.stall freezes bytes, and the disk.* faults act on
// each node's array. The seed pins every randomized choice the injector
// makes, so one (plan, seed) pair reproduces the identical fault sequence
// run after run. The plan starts ticking at Service.Start.
func WithFaultPlan(plan FaultPlan, seed int64) Option {
	return func(o *options) {
		p := plan
		o.faultPlan = &p
		o.faultSeed = seed
	}
}

// WithoutDefense disables the self-healing delivery plane — circuit
// breakers, hedged fetches, retry budgets, and health-score routing
// feedback — leaving only bare next-replica failover. The chaos study's
// control arm; production deployments leave the defense on.
func WithoutDefense() Option {
	return func(o *options) { o.noDefense = true }
}

// WithAdmission gives every video server an admission broker with the
// given deliverable capacity (Mbps) and — unless WithoutLedger is also
// set — a replica of the gossip-replicated reservation ledger, so link
// headroom checks see every server's committed reservations, not just the
// local ones. Disabled by default.
func WithAdmission(capacityMbps float64) Option {
	return func(o *options) { o.admissionMbps = capacityMbps }
}

// WithAdmissionShards sets each broker's link-reservation and shared-group
// shard count (default admission.DefaultShards). One shard reproduces the
// historical single-lock broker for contention studies; more shards spread
// reservation-map locking across cores under heavy watch setup/teardown.
// Requires WithAdmission.
func WithAdmissionShards(n int) Option {
	return func(o *options) { o.admissionShards = n }
}

// WithLedgerGossipInterval tunes the reservation ledger's anti-entropy
// cadence (default ledger.DefaultGossipInterval, 250 ms). The lease TTL
// scales with it (40 rounds), so slower gossip also means slower reclaim
// of a dead server's reservations.
func WithLedgerGossipInterval(d time.Duration) Option {
	return func(o *options) { o.ledgerInterval = d }
}

// WithoutLedger keeps admission control purely per-server: each broker
// sees only its own reservations, as before the ledger existed. The
// Ext-16 study's control arm; requires WithAdmission.
func WithoutLedger() Option {
	return func(o *options) { o.noLedger = true }
}

// WithLedgerFanout sets the reservation ledger's rumor-mongering width: how
// many peers each anti-entropy round push-pulls with (default
// ledger.DefaultFanout, 2). One reproduces the historical single-peer walk;
// higher values trade per-round dials for faster convergence on large
// fleets.
func WithLedgerFanout(n int) Option {
	return func(o *options) { o.ledgerFanout = n }
}

// WithMembership runs the SWIM-style gossip membership layer on every node:
// trackers exchange (incarnation, heartbeat, state) views on the given
// cadence (0 uses membership.DefaultGossipInterval, 250 ms — interval-aligned
// with the ledger gossiper), round-counted failure detection marks quiet
// members suspect and then failed, and fail/leave events drive immediate
// ledger lease reclaim, failover health, and VRA node penalties. Required
// for churn-aware redirects and graceful drains announced fleet-wide;
// AddServer and DrainServer work without it, coordinating through the
// shared topology view alone. Disabled by default.
func WithMembership(interval time.Duration) Option {
	return func(o *options) {
		if interval <= 0 {
			interval = membership.DefaultGossipInterval
		}
		o.membershipInterval = interval
	}
}

// WithMembershipWindows sets the failure-detection windows in gossip rounds:
// suspect consecutive failed contacts trigger the indirect probe whose
// failure marks a member Suspect, and fail−suspect further unrefuted rounds
// make it Failed. Zeroes keep the defaults (3 and 6). WAN fleets with lossy
// links run wider windows (e.g. 4/12) to trade detection latency for a lower
// false-suspicion rate; the Lifeguard local-health multiplier stretches
// whichever windows are set when the observer itself is struggling.
func WithMembershipWindows(suspect, fail int) Option {
	return func(o *options) {
		o.membershipSuspectRounds = suspect
		o.membershipFailRounds = fail
	}
}

// WithMembershipFanout sets how many rotation peers each membership gossip
// round exchanges with (default membership.DefaultFanout, 2). Detection
// retries and Failed-member redials ride on top of this.
func WithMembershipFanout(n int) Option {
	return func(o *options) { o.membershipFanout = n }
}

// WithMembershipIndirectProbes sets how many live helpers are asked (via
// member.ping-req) before a quiet member is marked Suspect. Zero keeps the
// default (3); negative disables indirect probing, convicting on direct
// failures alone — the pre-WAN behavior.
func WithMembershipIndirectProbes(k int) Option {
	return func(o *options) { o.membershipProbeFanout = k }
}

// WithMembershipFullSyncEvery sets the delta-sync anti-entropy safety net:
// every nth exchange with one peer ships the full membership view even when
// the delta would be smaller (default 32). Lower values trade bytes for
// faster repair after lost updates.
func WithMembershipFullSyncEvery(n int) Option {
	return func(o *options) { o.membershipFullSyncEvery = n }
}

// WithMembershipExchangeTimeout bounds one membership exchange's or indirect
// probe's socket I/O (default membership.DefaultExchangeTimeout, 2 s).
// Exchanges within a round run concurrently, so a round facing stalled peers
// costs one timeout, not one per peer.
func WithMembershipExchangeTimeout(d time.Duration) Option {
	return func(o *options) { o.membershipExchangeTimeout = d }
}

// WithPrefixBudget gives every video server a prefix replication tier: a
// dedicated local store of budgetBytes onto which the server pins the first
// K(title) clusters of popular titles, K chosen per title by a knapsack over
// the budget weighted by DMA popularity points. Watches then stream those
// leading clusters straight off local disk — zero cross-network round trips
// at startup — while the VRA plans only the tail, and late joiners' merge
// patches come from the prefix instead of origin reads. Re-solve epochs run
// on WithPrefixEpoch, or explicitly via Service.PrefixResolve. Disabled by
// default.
func WithPrefixBudget(budgetBytes int64) Option {
	return func(o *options) { o.prefixBudgetBytes = budgetBytes }
}

// WithPrefixEpoch runs the prefix knapsack re-solve on the given cadence
// (jittered ±25%), re-replicating the delta as popularity shifts. Requires
// WithPrefixBudget. Without it, prefixes change only when Service.
// PrefixResolve is called — the deterministic mode studies use.
func WithPrefixEpoch(d time.Duration) Option {
	return func(o *options) { o.prefixEpoch = d }
}

// WithCohortRelay lets a server whose merge cohort streams a non-resident
// title subscribe once to the title's origin (relay.join) and fan that single
// upstream stream out to all local cohort members, instead of fetching every
// tail cluster per-watch. On the origin side the relay session joins the
// origin's own merge registry, so N relay servers share one disk-read stream.
// A broken upstream falls back to per-cluster peer fetches after one
// re-subscribe attempt. Requires WithMergeWindow. Disabled by default.
func WithCohortRelay() Option {
	return func(o *options) { o.relayCohorts = true }
}

// WithFrontDoor turns every node into a stateless redirect front door: a
// watch request for a title the node does not hold locally is answered with
// a typed watch.redirect toward the best replica (scored by broker load and
// peer health over the membership view), which clients follow transparently
// within a bounded hop count. Without it nodes redirect only while
// draining and proxy remote titles themselves, exactly as before. Disabled
// by default.
func WithFrontDoor() Option {
	return func(o *options) { o.frontDoor = true }
}
