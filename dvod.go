package dvod

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"dvod/internal/admission"
	"dvod/internal/cache"
	"dvod/internal/client"
	"dvod/internal/clock"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/disk"
	"dvod/internal/faults"
	"dvod/internal/grnet"
	"dvod/internal/ledger"
	"dvod/internal/media"
	"dvod/internal/metrics"
	"dvod/internal/server"
	"dvod/internal/snmp"
	"dvod/internal/topology"
	"dvod/internal/transport"
	"dvod/internal/web"
)

// Re-exported domain types, so downstream users need only this package.
type (
	// NodeID names a video-server site.
	NodeID = topology.NodeID
	// LinkID canonically names a network link.
	LinkID = topology.LinkID
	// Title describes a video title.
	Title = media.Title
	// Decision is a VRA server-selection outcome.
	Decision = core.Decision
	// Player watches titles through a home server.
	Player = client.Player
	// PlaybackStats summarizes one watch session.
	PlaybackStats = client.PlaybackStats
	// FaultPlan is a declarative, deterministic fault schedule ("at T, fail
	// X for D"); arm it with WithFaultPlan.
	FaultPlan = faults.Plan
	// FaultEvent is one scheduled fault of a FaultPlan.
	FaultEvent = faults.Event
	// FaultLogEntry is one row of the injector's deterministic
	// activation/deactivation sequence (Service.FaultEvents).
	FaultLogEntry = faults.LogEntry
)

// MakeLinkID builds the canonical ID for the unordered node pair.
func MakeLinkID(a, b NodeID) LinkID { return topology.MakeLinkID(a, b) }

// LinkSpec declares one bidirectional link of the service topology.
type LinkSpec struct {
	A, B         NodeID
	CapacityMbps float64
}

// TopologySpec declares the service's overlay network.
type TopologySpec struct {
	Nodes []NodeID
	Links []LinkSpec
}

// GRNETTopology returns the paper's case-study network: the Greek Research
// and Technology Network backbone of Figure 6 (six sites, seven links).
func GRNETTopology() TopologySpec {
	spec := TopologySpec{Nodes: grnet.Nodes()}
	for _, l := range grnet.Table2() {
		spec.Links = append(spec.Links, LinkSpec{A: l.A, B: l.B, CapacityMbps: l.CapacityMbps})
	}
	return spec
}

// buildGraph converts a spec into a validated graph.
func buildGraph(spec TopologySpec) (*topology.Graph, error) {
	g := topology.NewGraph()
	for _, n := range spec.Nodes {
		if err := g.AddNode(n); err != nil {
			return nil, err
		}
	}
	for _, l := range spec.Links {
		if _, err := g.AddLink(l.A, l.B, l.CapacityMbps); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Service is a running distributed VoD deployment: one video server per
// topology node (on localhost TCP), a shared database module, SNMP polling
// of delivered traffic, DMA caching, and VRA routing.
type Service struct {
	opts    options
	graph   *topology.Graph
	db      *db.DB
	book    *transport.AddrBook
	counter *transport.Counters
	servers map[NodeID]*server.Server
	poller  *snmp.Poller
	planner *core.Planner
	health  *db.Health
	// injector applies the armed fault plan (nil without WithFaultPlan);
	// scores is the deployment-wide peer health feedback shared by every
	// planner (nil with WithoutDefense).
	injector *faults.Injector
	scores   *faults.HealthScores
	// brokers/ledgers/gossipers exist per node with WithAdmission; the
	// ledger pair is absent with WithoutLedger.
	brokers   map[NodeID]*admission.Broker
	ledgers   map[NodeID]*ledger.Ledger
	gossipers map[NodeID]*ledger.Gossiper

	mu      sync.Mutex
	stopped map[NodeID]bool
	hbStop  chan struct{}
	hbDone  chan struct{}
	started bool
	closed  bool
}

// New assembles a service over the topology. Call Start to bring the
// servers online.
func New(spec TopologySpec, opts ...Option) (*Service, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	g, err := buildGraph(spec)
	if err != nil {
		return nil, fmt.Errorf("dvod: topology: %w", err)
	}
	d := db.New(g)
	book := transport.NewAddrBook()
	counters := transport.NewCounters()
	var (
		health    *db.Health
		available func(NodeID) bool
	)
	if o.failoverMaxAge > 0 {
		health, err = db.NewHealth(o.failoverMaxAge)
		if err != nil {
			return nil, err
		}
		available = health.Filter(o.clock.Now)
	}
	planner, err := core.NewPlanner(d, o.selector, available)
	if err != nil {
		return nil, err
	}
	var scores *faults.HealthScores
	if !o.noDefense {
		// One deployment-wide score table: every server's fetch outcomes
		// feed it, every planner's link weights read it.
		scores = faults.NewHealthScores(0)
		planner.SetNodePenalty(scores.Penalty())
	}
	var injector *faults.Injector
	if o.faultPlan != nil {
		injector, err = faults.NewInjector(*o.faultPlan, o.faultSeed, o.clock, metrics.NewRegistry())
		if err != nil {
			return nil, err
		}
	}
	svc := &Service{
		opts:     o,
		graph:    g,
		db:       d,
		book:     book,
		counter:  counters,
		servers:  make(map[NodeID]*server.Server, g.NumNodes()),
		planner:  planner,
		health:   health,
		injector: injector,
		scores:   scores,
		stopped:  make(map[NodeID]bool),
		hbStop:   make(chan struct{}),
		hbDone:   make(chan struct{}),
	}
	if o.admissionMbps > 0 {
		svc.brokers = make(map[NodeID]*admission.Broker, g.NumNodes())
		if !o.noLedger {
			svc.ledgers = make(map[NodeID]*ledger.Ledger, g.NumNodes())
			svc.gossipers = make(map[NodeID]*ledger.Gossiper, g.NumNodes())
		}
	}
	for _, node := range g.Nodes() {
		count, capBytes := o.arrayShape(node)
		arr, err := disk.NewUniformArray(string(node), count, capBytes)
		if err != nil {
			return nil, err
		}
		dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: o.clusterBytes})
		if err != nil {
			return nil, err
		}
		nodePlanner, err := core.NewPlanner(d, o.selector, available)
		if err != nil {
			return nil, err
		}
		if scores != nil {
			nodePlanner.SetNodePenalty(scores.Penalty())
		}
		if injector != nil {
			arr.SetReadInterceptor(injector.ReadInterceptor(node))
		}
		// One registry per node shared by the server, its broker, and its
		// ledger replica, so admission.* and ledger.* surface together in
		// Service.Metrics.
		reg := metrics.NewRegistry()
		var (
			brk *admission.Broker
			led *ledger.Ledger
		)
		if o.admissionMbps > 0 {
			if !o.noLedger {
				led, err = ledger.New(ledger.Config{
					Origin: node,
					// The lease must survive many missed rounds (a partition
					// is not a death) while still draining a dead server's
					// reservations promptly.
					TTL:     40 * o.ledgerInterval,
					Clock:   o.clock,
					Metrics: reg,
				})
				if err != nil {
					return nil, err
				}
				svc.ledgers[node] = led
			}
			brk, err = admission.New(admission.Config{
				Node:         node,
				CapacityMbps: o.admissionMbps,
				Snapshot:     d.Snapshot,
				Ledger:       led,
				Clock:        o.clock,
				Metrics:      reg,
			})
			if err != nil {
				return nil, err
			}
			svc.brokers[node] = brk
		}
		srv, err := server.New(server.Config{
			Node:           node,
			DB:             d,
			Planner:        nodePlanner,
			Array:          arr,
			Cache:          dma,
			ClusterBytes:   o.clusterBytes,
			Book:           book,
			Counters:       counters,
			ListenAddr:     o.listenAddrs[node],
			Clock:          o.clock,
			Metrics:        reg,
			MergeWindow:    o.mergeWindow,
			Faults:         injector,
			Health:         scores,
			Broker:         brk,
			Ledger:         led,
			DisableDefense: o.noDefense,
		})
		if err != nil {
			return nil, err
		}
		svc.servers[node] = srv
		if err := d.RegisterServer(node, "dvod video server", o.clock.Now()); err != nil {
			return nil, err
		}
	}
	for node, led := range svc.ledgers {
		peers := make([]NodeID, 0, g.NumNodes()-1)
		for _, p := range g.Nodes() {
			if p != node {
				peers = append(peers, p)
			}
		}
		gsp, err := ledger.NewGossiper(ledger.GossipConfig{
			Ledger:   led,
			Peers:    peers,
			Lookup:   book.Lookup,
			Dial:     svc.gossipDialer(node),
			Interval: o.ledgerInterval,
			Clock:    o.clock,
			Metrics:  svc.servers[node].Metrics(),
		})
		if err != nil {
			return nil, err
		}
		svc.gossipers[node] = gsp
	}
	return svc, nil
}

// gossipDialer routes one node's gossip exchanges through the fault
// injector, so a partition that cuts the delivery plane cuts anti-entropy
// identically (both the partitioned node's outbound dials and everyone
// else's dials toward it refuse).
func (s *Service) gossipDialer(self NodeID) func(NodeID, string) (*transport.Conn, error) {
	return func(peer NodeID, addr string) (*transport.Conn, error) {
		inj := s.injector
		if inj == nil {
			return transport.Dial(addr)
		}
		if err := inj.DialError(self, nil); err != nil {
			return nil, err
		}
		if err := inj.DialError(peer, nil); err != nil {
			return nil, err
		}
		return transport.DialWith(addr, func(rw io.ReadWriteCloser) io.ReadWriteCloser {
			return inj.WrapStream(peer, nil, rw)
		})
	}
}

// Start brings every video server online and begins SNMP polling of the
// service's own delivered traffic.
func (s *Service) Start() error {
	if s.closed {
		return errors.New("dvod: service closed")
	}
	if s.started {
		return errors.New("dvod: service already started")
	}
	for _, node := range s.graph.Nodes() {
		if err := s.servers[node].Start(); err != nil {
			_ = s.Close()
			return err
		}
	}
	est, err := snmp.NewRateEstimator(s.counter, s.opts.clock)
	if err != nil {
		_ = s.Close()
		return err
	}
	var agents []*snmp.Agent
	for _, node := range s.graph.Nodes() {
		a, err := snmp.NewAgent(node, s.graph, est)
		if err != nil {
			_ = s.Close()
			return err
		}
		agents = append(agents, a)
	}
	poller, err := snmp.NewPoller(snmp.PollerConfig{
		Agents:   agents,
		DB:       s.db,
		Clock:    s.opts.clock,
		Interval: s.opts.snmpInterval,
	})
	if err != nil {
		_ = s.Close()
		return err
	}
	s.poller = poller
	poller.Start()
	if s.injector != nil {
		if err := s.injector.Start(); err != nil {
			_ = s.Close()
			return err
		}
	}
	for _, gsp := range s.gossipers {
		gsp.Start()
	}
	if s.health != nil {
		// Seed immediate liveness, then heartbeat in the background.
		now := s.opts.clock.Now()
		for _, node := range s.graph.Nodes() {
			s.health.Heartbeat(node, now)
		}
		go s.heartbeatLoop()
	} else {
		close(s.hbDone)
	}
	s.started = true
	return nil
}

// heartbeatLoop refreshes liveness for every non-stopped server. Each wait
// is jittered ±25% so a fleet of services started together does not
// heartbeat (and hence refresh routing state) in lockstep forever.
func (s *Service) heartbeatLoop() {
	defer close(s.hbDone)
	rng := rand.New(rand.NewSource(s.opts.faultSeed ^ 0x68656172)) // "hear"
	for {
		select {
		case <-s.opts.clock.After(faults.Jitter(s.opts.failoverInterval, 0.25, rng)):
			now := s.opts.clock.Now()
			s.mu.Lock()
			for _, node := range s.graph.Nodes() {
				if !s.stopped[node] {
					s.health.Heartbeat(node, now)
				}
			}
			s.mu.Unlock()
		case <-s.hbStop:
			return
		}
	}
}

// StopServer takes one video server offline: its listener closes, its
// heartbeats stop, and (with failover enabled) the routing immediately
// stops considering it — the dynamic-adjustment behaviour the paper claims
// for "server configuration changes".
func (s *Service) StopServer(node NodeID) error {
	srv, ok := s.servers[node]
	if !ok {
		return fmt.Errorf("dvod: %w: %s", topology.ErrNodeUnknown, node)
	}
	s.mu.Lock()
	s.stopped[node] = true
	s.mu.Unlock()
	if gsp, ok := s.gossipers[node]; ok {
		gsp.Stop()
	}
	if s.health != nil {
		s.health.MarkDown(node)
	}
	return srv.Close()
}

// Close stops polling and shuts every server down. It is idempotent.
func (s *Service) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	for _, gsp := range s.gossipers {
		gsp.Stop()
	}
	if s.injector != nil {
		s.injector.Stop()
	}
	if s.started && s.health != nil {
		close(s.hbStop)
		<-s.hbDone
	}
	if s.poller != nil {
		s.poller.Stop()
	}
	var firstErr error
	for _, srv := range s.servers {
		if err := srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AddTitle registers a title in the service catalog.
func (s *Service) AddTitle(t Title) error {
	return s.db.Catalog().AddTitle(t)
}

// Titles lists the catalog.
func (s *Service) Titles() []Title { return s.db.Catalog().Titles() }

// Preload places a copy of a title on the node's disk array — the paper's
// initialization phase.
func (s *Service) Preload(node NodeID, title string) error {
	srv, ok := s.servers[node]
	if !ok {
		return fmt.Errorf("dvod: %w: %s", topology.ErrNodeUnknown, node)
	}
	t, err := s.db.Catalog().Title(title)
	if err != nil {
		return err
	}
	return srv.Preload(t)
}

// Holders lists the servers currently storing the title.
func (s *Service) Holders(title string) ([]NodeID, error) {
	return s.db.Catalog().Holders(title)
}

// Player returns a player homed at the given node. The service must be
// started.
func (s *Service) Player(home NodeID, opts ...client.Option) (*Player, error) {
	if !s.started {
		return nil, errors.New("dvod: service not started")
	}
	if _, ok := s.servers[home]; !ok {
		return nil, fmt.Errorf("dvod: %w: %s", topology.ErrNodeUnknown, home)
	}
	return client.NewPlayer(home, s.book, opts...)
}

// Plan runs the routing policy for a hypothetical request without
// transferring anything: which server would serve a client homed at home?
func (s *Service) Plan(home NodeID, title string) (Decision, error) {
	return s.planner.Plan(home, title)
}

// SetLinkTraffic injects an externally measured link load (Mbps) into the
// limited-access database — the administrator/manual path the paper
// describes alongside automatic SNMP insertion.
func (s *Service) SetLinkTraffic(a, b NodeID, usedMbps float64) error {
	return s.db.UpsertLinkStats(topology.MakeLinkID(a, b), usedMbps, s.opts.clock.Now())
}

// LinkUtilization reads the latest recorded utilization of a link.
func (s *Service) LinkUtilization(a, b NodeID) (float64, error) {
	st, err := s.db.LinkStats(topology.MakeLinkID(a, b))
	if err != nil {
		return 0, err
	}
	return st.Utilization, nil
}

// SaveState serializes the service's database — registered servers, link
// statistics, catalog, and holdings — so a later deployment over the same
// topology can resume via LoadState without re-running initialization.
// Disk contents are not saved; preload titles again after LoadState (their
// bytes regenerate deterministically).
func (s *Service) SaveState(w io.Writer) error { return s.db.Save(w) }

// LoadState applies a SaveState snapshot onto a freshly constructed,
// not-yet-populated service over the same topology.
func (s *Service) LoadState(r io.Reader) error { return s.db.Load(r) }

// MetricsSnapshot is a point-in-time copy of one server's metrics.
type MetricsSnapshot = metrics.Snapshot

// Metrics returns a snapshot of every video server's counters (requests,
// clusters served, DMA hits/admissions, fetch retries, resilience counters,
// errors). With an armed fault plan, the injector's own counters (notably
// faults.injected_total) appear under the pseudo-node "_faults".
func (s *Service) Metrics() map[NodeID]MetricsSnapshot {
	out := make(map[NodeID]MetricsSnapshot, len(s.servers)+1)
	for node, srv := range s.servers {
		out[node] = srv.Metrics().Snapshot()
	}
	if s.injector != nil {
		out["_faults"] = s.injector.Registry().Snapshot()
	}
	return out
}

// FaultEvents returns the armed plan's deterministic activation /
// deactivation sequence (nil without WithFaultPlan). Two runs with the same
// plan and seed return identical sequences — the reproducibility contract
// chaos tests pin against.
func (s *Service) FaultEvents() []FaultLogEntry {
	if s.injector == nil {
		return nil
	}
	return s.injector.Events()
}

// InjectedFaults reports how many faults the armed plan has actually
// injected so far (0 without WithFaultPlan).
func (s *Service) InjectedFaults() int64 {
	if s.injector == nil {
		return 0
	}
	return s.injector.InjectedTotal()
}

// GossipRound drives one synchronous anti-entropy round on every live
// node's gossiper (skipping servers taken down with StopServer). Tests and
// studies running on a virtual clock use it to converge the reservation
// ledger deterministically instead of waiting out wall-clock intervals.
// No-op without WithAdmission or with WithoutLedger.
func (s *Service) GossipRound() {
	for _, node := range s.graph.Nodes() {
		s.mu.Lock()
		down := s.stopped[node]
		s.mu.Unlock()
		if down {
			continue
		}
		if gsp, ok := s.gossipers[node]; ok {
			gsp.RunOnce()
		}
	}
}

// LedgerDigests returns each live node's reservation-ledger digest — a
// hash over its full replica state. All digests equal means the replicas
// have converged. Nil without WithAdmission or with WithoutLedger.
func (s *Service) LedgerDigests() map[NodeID]string {
	if s.ledgers == nil {
		return nil
	}
	out := make(map[NodeID]string, len(s.ledgers))
	for node, led := range s.ledgers {
		s.mu.Lock()
		down := s.stopped[node]
		s.mu.Unlock()
		if down {
			continue
		}
		out[node] = led.Digest()
	}
	return out
}

// CommittedLinkMbps sums every broker's locally committed reservations per
// link — the deployment-wide ground truth the study compares against link
// capacity to detect oversubscription. Nil without WithAdmission.
func (s *Service) CommittedLinkMbps() map[LinkID]float64 {
	if s.brokers == nil {
		return nil
	}
	out := make(map[LinkID]float64)
	for _, brk := range s.brokers {
		for id, mbps := range brk.LinkReservations() {
			out[id] += mbps
		}
	}
	return out
}

// WatchDialer returns a client dialer routed through the service's fault
// injector, so peer.down and peer.stall faults on the home node sever or
// freeze its local clients' watch connections too. Without an armed plan it
// returns nil, which client.WithDialer treats as the default dialer — safe
// to pass unconditionally.
func (s *Service) WatchDialer(home NodeID) func(addr string) (*transport.Conn, error) {
	if s.injector == nil {
		return nil
	}
	inj := s.injector
	return func(addr string) (*transport.Conn, error) {
		if err := inj.DialError(home, nil); err != nil {
			return nil, err
		}
		return transport.DialWith(addr, func(rw io.ReadWriteCloser) io.ReadWriteCloser {
			return inj.WrapStream(home, nil, rw)
		})
	}
}

// WebHandler returns the paper's web interface modules as an http.Handler:
// the full-access module (browse, search, POST /request running the VRA) and
// the limited-access module under /admin (including /admin/metrics) guarded
// by the bearer token (empty token disables the admin endpoints).
func (s *Service) WebHandler(adminToken string) (http.Handler, error) {
	return web.New(web.Config{
		DB:         s.db,
		Planner:    s.planner,
		AdminToken: adminToken,
		Clock:      s.opts.clock,
		Metrics:    s.Metrics,
	})
}

// ServerAddr returns a node's live TCP endpoint ("" before Start).
func (s *Service) ServerAddr(node NodeID) (string, error) {
	srv, ok := s.servers[node]
	if !ok {
		return "", fmt.Errorf("dvod: %w: %s", topology.ErrNodeUnknown, node)
	}
	return srv.Addr(), nil
}

// options configures New.
type options struct {
	clusterBytes      int64
	disksPerServer    int
	diskCapacityBytes int64
	nodeDisks         map[NodeID]diskShape
	snmpInterval      time.Duration
	selector          core.Selector
	clock             clock.Clock
	listenAddrs       map[NodeID]string
	failoverInterval  time.Duration
	failoverMaxAge    time.Duration
	mergeWindow       int
	faultPlan         *faults.Plan
	faultSeed         int64
	noDefense         bool
	admissionMbps     float64
	noLedger          bool
	ledgerInterval    time.Duration
}

type diskShape struct {
	count         int
	capacityBytes int64
}

func defaultOptions() options {
	return options{
		clusterBytes:      256 << 10,
		disksPerServer:    4,
		diskCapacityBytes: 64 << 20,
		nodeDisks:         map[NodeID]diskShape{},
		snmpInterval:      90 * time.Second,
		selector:          core.VRA{},
		clock:             clock.Wall{},
		listenAddrs:       map[NodeID]string{},
		ledgerInterval:    ledger.DefaultGossipInterval,
	}
}

// arrayShape resolves the disk shape for a node (per-node override or the
// service default).
func (o options) arrayShape(node NodeID) (int, int64) {
	if s, ok := o.nodeDisks[node]; ok {
		return s.count, s.capacityBytes
	}
	return o.disksPerServer, o.diskCapacityBytes
}

func (o options) validate() error {
	switch {
	case o.clusterBytes <= 0:
		return fmt.Errorf("dvod: bad cluster size %d", o.clusterBytes)
	case o.disksPerServer <= 0:
		return fmt.Errorf("dvod: bad disk count %d", o.disksPerServer)
	case o.diskCapacityBytes <= 0:
		return fmt.Errorf("dvod: bad disk capacity %d", o.diskCapacityBytes)
	case o.snmpInterval <= 0:
		return fmt.Errorf("dvod: bad SNMP interval %v", o.snmpInterval)
	case o.selector == nil:
		return errors.New("dvod: nil selector")
	case o.clock == nil:
		return errors.New("dvod: nil clock")
	case o.mergeWindow < 0:
		return fmt.Errorf("dvod: negative merge window %d", o.mergeWindow)
	case o.admissionMbps < 0:
		return fmt.Errorf("dvod: negative admission capacity %v", o.admissionMbps)
	case o.ledgerInterval <= 0:
		return fmt.Errorf("dvod: bad ledger gossip interval %v", o.ledgerInterval)
	}
	if o.noLedger && o.admissionMbps <= 0 {
		return errors.New("dvod: WithoutLedger needs WithAdmission")
	}
	for node, s := range o.nodeDisks {
		if s.count <= 0 || s.capacityBytes <= 0 {
			return fmt.Errorf("dvod: bad disk shape for %s: %d × %d", node, s.count, s.capacityBytes)
		}
	}
	if (o.failoverInterval > 0) != (o.failoverMaxAge > 0) {
		return errors.New("dvod: failover needs both interval and max age")
	}
	if o.failoverMaxAge > 0 && o.failoverInterval >= o.failoverMaxAge {
		return fmt.Errorf("dvod: failover interval %v must be below max age %v",
			o.failoverInterval, o.failoverMaxAge)
	}
	return nil
}

// Option customizes New.
type Option func(*options)

// WithClusterBytes sets the DMA/VRA cluster size c (default 256 KiB).
func WithClusterBytes(c int64) Option {
	return func(o *options) { o.clusterBytes = c }
}

// WithDisks sets each server's array shape (default 4 × 64 MiB).
func WithDisks(count int, capacityBytes int64) Option {
	return func(o *options) {
		o.disksPerServer = count
		o.diskCapacityBytes = capacityBytes
	}
}

// WithNodeDisks overrides the array shape of one node (heterogeneous
// deployments; e.g. a small edge cache next to large origin servers).
func WithNodeDisks(node NodeID, count int, capacityBytes int64) Option {
	return func(o *options) {
		o.nodeDisks[node] = diskShape{count: count, capacityBytes: capacityBytes}
	}
}

// WithSNMPInterval sets the statistics refresh period (default 90 s; the
// paper suggests 1-2 minutes).
func WithSNMPInterval(d time.Duration) Option {
	return func(o *options) { o.snmpInterval = d }
}

// WithSelector replaces the routing policy (default: the paper's VRA).
func WithSelector(sel core.Selector) Option {
	return func(o *options) { o.selector = sel }
}

// WithListenAddr pins one node's TCP endpoint (default 127.0.0.1:0).
func WithListenAddr(node NodeID, addr string) Option {
	return func(o *options) { o.listenAddrs[node] = addr }
}

// WithClock substitutes the time source (tests).
func WithClock(c clock.Clock) Option {
	return func(o *options) { o.clock = c }
}

// WithFailover enables heartbeat-based server failover: servers heartbeat
// every interval and routing ignores any server whose last heartbeat is
// older than maxAge. Disabled by default.
func WithFailover(interval, maxAge time.Duration) Option {
	return func(o *options) {
		o.failoverInterval = interval
		o.failoverMaxAge = maxAge
	}
}

// WithMergeWindow enables shared-prefix stream merging on every server:
// concurrent Watch sessions of one title starting within window clusters of
// each other share a single base stream (one disk read per cluster, fanned
// out), with late joiners patched privately. Disabled by default — the
// paper's delivery is one stream per session.
func WithMergeWindow(window int) Option {
	return func(o *options) { o.mergeWindow = window }
}

// WithFaultPlan arms a deterministic fault schedule across the whole
// deployment: peer dials refuse and live streams cut under link.down /
// peer.down windows, peer.stall freezes bytes, and the disk.* faults act on
// each node's array. The seed pins every randomized choice the injector
// makes, so one (plan, seed) pair reproduces the identical fault sequence
// run after run. The plan starts ticking at Service.Start.
func WithFaultPlan(plan FaultPlan, seed int64) Option {
	return func(o *options) {
		p := plan
		o.faultPlan = &p
		o.faultSeed = seed
	}
}

// WithoutDefense disables the self-healing delivery plane — circuit
// breakers, hedged fetches, retry budgets, and health-score routing
// feedback — leaving only bare next-replica failover. The chaos study's
// control arm; production deployments leave the defense on.
func WithoutDefense() Option {
	return func(o *options) { o.noDefense = true }
}

// WithAdmission gives every video server an admission broker with the
// given deliverable capacity (Mbps) and — unless WithoutLedger is also
// set — a replica of the gossip-replicated reservation ledger, so link
// headroom checks see every server's committed reservations, not just the
// local ones. Disabled by default.
func WithAdmission(capacityMbps float64) Option {
	return func(o *options) { o.admissionMbps = capacityMbps }
}

// WithLedgerGossipInterval tunes the reservation ledger's anti-entropy
// cadence (default ledger.DefaultGossipInterval, 250 ms). The lease TTL
// scales with it (40 rounds), so slower gossip also means slower reclaim
// of a dead server's reservations.
func WithLedgerGossipInterval(d time.Duration) Option {
	return func(o *options) { o.ledgerInterval = d }
}

// WithoutLedger keeps admission control purely per-server: each broker
// sees only its own reservations, as before the ledger existed. The
// Ext-16 study's control arm; requires WithAdmission.
func WithoutLedger() Option {
	return func(o *options) { o.noLedger = true }
}
