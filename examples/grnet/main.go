// GRNET case study through the public API: recompute the Link Validation
// Numbers for each of the paper's four sample times and replay routing
// experiments A-D, printing decision, route, and cost.
package main

import (
	"fmt"
	"log"
	"sort"

	"dvod"
)

// experiment mirrors the paper's case-study setups.
type experiment struct {
	id         string
	sample     string
	home       dvod.NodeID
	candidates []dvod.NodeID
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec := dvod.GRNETTopology()

	fmt.Println("Link Validation Numbers (equations 1-4, K=10):")
	for _, sample := range dvod.GRNETSampleTimes() {
		util, err := dvod.GRNETUtilization(sample)
		if err != nil {
			return err
		}
		weights, err := dvod.EvaluateLinks(spec, util)
		if err != nil {
			return err
		}
		sort.Slice(weights, func(i, j int) bool { return weights[i].Link < weights[j].Link })
		fmt.Printf("  %s:", sample)
		for _, w := range weights {
			fmt.Printf("  %s=%.4f", w.Link, w.LVN)
		}
		fmt.Println()
	}
	fmt.Println()

	exps := []experiment{
		{"A", "8am", "U2", []dvod.NodeID{"U4", "U5"}},
		{"B", "10am", "U2", []dvod.NodeID{"U4", "U5"}},
		{"C", "4pm", "U1", []dvod.NodeID{"U3", "U4", "U5"}},
		{"D", "6pm", "U1", []dvod.NodeID{"U3", "U4", "U5"}},
	}
	for _, e := range exps {
		util, err := dvod.GRNETUtilization(e.sample)
		if err != nil {
			return err
		}
		dec, err := dvod.SelectServer(spec, util, e.home, e.candidates)
		if err != nil {
			return err
		}
		fmt.Printf("Experiment %s (%s, client at %s): download from %s (%s) via %s, cost %.4f\n",
			e.id, e.sample, dvod.GRNETCityName(e.home),
			dec.Server, dvod.GRNETCityName(dec.Server), dec.Path, dec.Cost)
	}
	fmt.Println("\n(Experiment A differs from the published table: the paper's own")
	fmt.Println(" Dijkstra walk skipped the U2,U3,U4 relaxation — see EXPERIMENTS.md.)")
	return nil
}
