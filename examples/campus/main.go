// Custom topology: the service is not tied to the paper's GRNET backbone.
// This example defines a campus network in the JSON configuration format —
// two thin-linked dormitory edge servers behind a fat-linked library origin
// — brings the service up on it, and shows the VRA steering a dorm client
// to the replica behind the least-loaded route.
package main

import (
	"fmt"
	"log"
	"strings"

	"dvod"
)

const campusJSON = `{
  "nodes": ["dorm-a", "dorm-b", "library", "datacenter"],
  "links": [
    {"a": "dorm-a", "b": "library",    "capacityMbps": 2},
    {"a": "dorm-b", "b": "library",    "capacityMbps": 2},
    {"a": "dorm-a", "b": "dorm-b",     "capacityMbps": 2},
    {"a": "library", "b": "datacenter", "capacityMbps": 18}
  ]
}`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec, err := dvod.ParseTopology(strings.NewReader(campusJSON))
	if err != nil {
		return err
	}
	svc, err := dvod.New(spec,
		dvod.WithClusterBytes(32<<10),
		dvod.WithDisks(2, 8<<20),
		// The requesting dorm's own cache is tiny, so its clients are
		// always served over the network.
		dvod.WithNodeDisks("dorm-a", 1, 8<<10),
	)
	if err != nil {
		return err
	}
	if err := svc.Start(); err != nil {
		return err
	}
	defer svc.Close()

	lecture := dvod.Title{Name: "lecture-42", SizeBytes: 1 << 20, BitrateMbps: 1.5}
	if err := svc.AddTitle(lecture); err != nil {
		return err
	}
	// Replicas at the datacenter and at dorm-b.
	for _, node := range []dvod.NodeID{"datacenter", "dorm-b"} {
		if err := svc.Preload(node, lecture.Name); err != nil {
			return err
		}
	}

	// Daytime: the library-datacenter trunk is busy (research traffic),
	// the dorm links idle — the VRA serves dorm-a from its neighbour.
	setTraffic := func(dormAB, trunk float64) error {
		if err := svc.SetLinkTraffic("dorm-a", "dorm-b", dormAB); err != nil {
			return err
		}
		return svc.SetLinkTraffic("library", "datacenter", trunk)
	}
	if err := setTraffic(0, 9); err != nil {
		return err
	}
	dec, err := svc.Plan("dorm-a", lecture.Name)
	if err != nil {
		return err
	}
	fmt.Printf("daytime (trunk busy):   fetch from %-10s via %s (cost %.4f)\n",
		dec.Server, dec.Path, dec.Cost)

	// Evening: the inter-dorm link saturates (gaming night) while the
	// trunk drains — the VRA re-routes to the datacenter replica.
	if err := setTraffic(1.95, 1); err != nil {
		return err
	}
	dec, err = svc.Plan("dorm-a", lecture.Name)
	if err != nil {
		return err
	}
	fmt.Printf("evening (dorm link hot): fetch from %-10s via %s (cost %.4f)\n",
		dec.Server, dec.Path, dec.Cost)

	// And the delivery works end to end.
	player, err := svc.Player("dorm-a")
	if err != nil {
		return err
	}
	stats, err := player.Watch(lecture.Name)
	if err != nil {
		return err
	}
	fmt.Printf("delivered %d bytes, verified=%v, sources=%v\n",
		stats.BytesReceived, stats.Verified, stats.Sources[0])
	return nil
}
