// Quickstart: bring up the six-site VoD service on localhost, publish one
// title at Thessaloniki, and watch it from a client homed at Patra. The
// delivery is verified byte-for-byte and reports which server each cluster
// came from.
package main

import (
	"fmt"
	"log"
	"time"

	"dvod"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	svc, err := dvod.New(dvod.GRNETTopology(),
		dvod.WithClusterBytes(64<<10),
		dvod.WithDisks(4, 16<<20),
		dvod.WithSNMPInterval(time.Second),
	)
	if err != nil {
		return err
	}
	if err := svc.Start(); err != nil {
		return err
	}
	defer svc.Close()

	title := dvod.Title{Name: "zorba-the-greek", SizeBytes: 2 << 20, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		return err
	}
	if err := svc.Preload("U4", title.Name); err != nil { // Thessaloniki
		return err
	}

	// Tell the routing algorithm what the network looks like (the paper's
	// 10am SNMP snapshot); in steady state the service's own SNMP poller
	// keeps this fresh automatically.
	util, err := dvod.GRNETUtilization("10am")
	if err != nil {
		return err
	}
	for id, u := range util {
		a, b, err := id.Endpoints()
		if err != nil {
			return err
		}
		spec := dvod.GRNETTopology()
		for _, l := range spec.Links {
			if dvod.MakeLinkID(l.A, l.B) == id {
				if err := svc.SetLinkTraffic(a, b, u*l.CapacityMbps); err != nil {
					return err
				}
			}
		}
	}

	// Where would a Patra client be served from?
	dec, err := svc.Plan("U2", title.Name)
	if err != nil {
		return err
	}
	fmt.Printf("VRA plan for a Patra client: fetch from %s (%s) via %s, cost %.4f\n",
		dec.Server, dvod.GRNETCityName(dec.Server), dec.Path, dec.Cost)

	// Actually watch it.
	player, err := svc.Player("U2")
	if err != nil {
		return err
	}
	stats, err := player.Watch(title.Name)
	if err != nil {
		return err
	}
	fmt.Printf("delivered %d bytes in %d clusters, verified=%v, elapsed=%v\n",
		stats.BytesReceived, stats.NumClusters, stats.Verified, stats.Elapsed.Round(time.Millisecond))
	fmt.Printf("first cluster came from %s; the title is now cached at Patra too: %v\n",
		stats.Sources[0], holders(svc, title.Name))
	return nil
}

func holders(svc *dvod.Service, title string) []dvod.NodeID {
	h, err := svc.Holders(title)
	if err != nil {
		return nil
	}
	return h
}
