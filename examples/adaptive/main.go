// Adaptive caching under popularity drift: clients at Patra watch a Zipf-
// popular catalog whose ranking flips halfway through. The home server's
// Disk Manipulation Algorithm first fills its small array with the early
// favourites, then — as requests accumulate popularity points for the new
// favourites — evicts the fallen titles and admits the risen ones. The
// example prints Patra's resident set as it evolves.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"dvod"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		numTitles  = 8
		titleBytes = 256 << 10
	)
	svc, err := dvod.New(dvod.GRNETTopology(),
		dvod.WithClusterBytes(32<<10),
		dvod.WithDisks(4, 16<<20),
		// Patra holds at most ~3 titles: 4 disks × 192 KiB = 768 KiB.
		dvod.WithNodeDisks("U2", 4, 192<<10),
	)
	if err != nil {
		return err
	}
	if err := svc.Start(); err != nil {
		return err
	}
	defer svc.Close()

	// Catalog of 8 titles, all initially stored at Athens (the origin).
	titles := make([]string, numTitles)
	for i := range numTitles {
		name := fmt.Sprintf("movie-%d", i)
		titles[i] = name
		t := dvod.Title{Name: name, SizeBytes: titleBytes, BitrateMbps: 1.5}
		if err := svc.AddTitle(t); err != nil {
			return err
		}
		if err := svc.Preload("U1", name); err != nil {
			return err
		}
	}
	if err := seedNetwork(svc); err != nil {
		return err
	}

	player, err := svc.Player("U2")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))

	watch := func(phase string, favourites []string, rounds int) error {
		for range rounds {
			// 80% of requests hit the phase favourites.
			var name string
			if rng.Float64() < 0.8 {
				name = favourites[rng.Intn(len(favourites))]
			} else {
				name = titles[rng.Intn(len(titles))]
			}
			if _, err := player.Watch(name); err != nil {
				return fmt.Errorf("watch %s: %w", name, err)
			}
		}
		resident := patraResidents(svc, titles)
		fmt.Printf("after %-12s Patra caches: %v\n", phase+",", resident)
		return nil
	}

	fmt.Println("phase 1: movie-0..movie-2 are the local favourites")
	if err := watch("phase 1", titles[0:3], 40); err != nil {
		return err
	}
	fmt.Println("phase 2: tastes drift — movie-5..movie-7 take over")
	if err := watch("phase 2", titles[5:8], 80); err != nil {
		return err
	}
	fmt.Println("\nthe DMA replaced the fallen favourites with the risen ones,")
	fmt.Println("without any reconfiguration — the paper's \"most popular\" concept.")
	return nil
}

// patraResidents lists which catalog titles Patra currently holds.
func patraResidents(svc *dvod.Service, titles []string) []string {
	var out []string
	for _, name := range titles {
		holders, err := svc.Holders(name)
		if err != nil {
			continue
		}
		for _, h := range holders {
			if h == "U2" {
				out = append(out, name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// seedNetwork gives the VRA an initial network view (8am snapshot).
func seedNetwork(svc *dvod.Service) error {
	util, err := dvod.GRNETUtilization("8am")
	if err != nil {
		return err
	}
	for _, l := range dvod.GRNETTopology().Links {
		id := dvod.MakeLinkID(l.A, l.B)
		if err := svc.SetLinkTraffic(l.A, l.B, util[id]*l.CapacityMbps); err != nil {
			return err
		}
	}
	return nil
}
