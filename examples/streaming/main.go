// Streaming over real TCP with observable mid-stream re-routing: a title is
// replicated at Thessaloniki (U4) and Xanthi (U5); a client homed at Patra
// (U2) — whose own array is deliberately too small to cache anything — pulls
// the title cluster by cluster. Partway through, a simulated SNMP update
// congests the initially chosen route, and the per-cluster source list shows
// the service switching servers between clusters while every delivered byte
// still verifies.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"dvod"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	svc, err := dvod.New(dvod.GRNETTopology(),
		dvod.WithClusterBytes(64<<10),
		dvod.WithDisks(4, 16<<20),
		// Patra's edge cache is tiny: the 4 MiB title can never be
		// admitted there, so every cluster is fetched remotely and the
		// VRA runs at every cluster boundary.
		dvod.WithNodeDisks("U2", 1, 8<<10),
	)
	if err != nil {
		return err
	}
	if err := svc.Start(); err != nil {
		return err
	}
	defer svc.Close()

	title := dvod.Title{Name: "aegean-sunrise", SizeBytes: 4 << 20, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		return err
	}
	for _, holder := range []dvod.NodeID{"U4", "U5"} {
		if err := svc.Preload(holder, title.Name); err != nil {
			return err
		}
	}

	// 8am conditions: the VRA initially prefers Thessaloniki via Ioannina.
	if err := applySample(svc, "8am"); err != nil {
		return err
	}
	dec, err := svc.Plan("U2", title.Name)
	if err != nil {
		return err
	}
	fmt.Printf("initial plan: %s via %s (cost %.4f)\n", dec.Server, dec.Path, dec.Cost)

	player, err := svc.Player("U2")
	if err != nil {
		return err
	}

	// Congest the Ioannina route shortly after the watch begins; the
	// following cluster decisions flip to Xanthi.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		_ = svc.SetLinkTraffic("U2", "U3", 2.0)
		_ = svc.SetLinkTraffic("U4", "U3", 2.0)
	}()

	stats, err := player.Watch(title.Name)
	wg.Wait()
	if err != nil {
		return err
	}
	fmt.Printf("delivered %d bytes in %d clusters over real TCP, verified=%v, elapsed=%v\n",
		stats.BytesReceived, stats.NumClusters, stats.Verified,
		stats.Elapsed.Round(time.Millisecond))
	fmt.Print("per-cluster sources:")
	for _, s := range stats.Sources {
		fmt.Printf(" %s", s)
	}
	fmt.Printf("\nmid-stream switches observed: %d\n", stats.Switches)
	if stats.Switches == 0 {
		fmt.Println("(delivery outpaced the congestion injection this run — " +
			"localhost is fast; raise the title size to widen the window)")
	}
	return nil
}

func applySample(svc *dvod.Service, sample string) error {
	util, err := dvod.GRNETUtilization(sample)
	if err != nil {
		return err
	}
	for _, l := range dvod.GRNETTopology().Links {
		id := dvod.MakeLinkID(l.A, l.B)
		if err := svc.SetLinkTraffic(l.A, l.B, util[id]*l.CapacityMbps); err != nil {
			return err
		}
	}
	return nil
}
