package dvod

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestGRNETTopologySpec(t *testing.T) {
	spec := GRNETTopology()
	if len(spec.Nodes) != 6 || len(spec.Links) != 7 {
		t.Fatalf("spec = %d nodes %d links", len(spec.Nodes), len(spec.Links))
	}
}

func TestNewValidatesTopology(t *testing.T) {
	if _, err := New(TopologySpec{}); err == nil {
		t.Fatal("empty topology accepted")
	}
	disconnected := TopologySpec{Nodes: []NodeID{"A", "B"}}
	if _, err := New(disconnected); err == nil {
		t.Fatal("disconnected topology accepted")
	}
	bad := GRNETTopology()
	bad.Links[0].CapacityMbps = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestNewValidatesOptions(t *testing.T) {
	spec := GRNETTopology()
	cases := []Option{
		WithClusterBytes(0),
		WithDisks(0, 1024),
		WithDisks(2, 0),
		WithSNMPInterval(0),
		WithSelector(nil),
		WithClock(nil),
		WithMergeWindow(-1),
	}
	for i, opt := range cases {
		if _, err := New(spec, opt); err == nil {
			t.Fatalf("option case %d accepted", i)
		}
	}
}

func TestServiceEndToEnd(t *testing.T) {
	svc, err := New(GRNETTopology(),
		WithClusterBytes(4096),
		WithDisks(3, 1<<20),
		WithSNMPInterval(50*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer svc.Close()

	title := Title{Name: "zorba", SizeBytes: 40_000, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		t.Fatal(err)
	}
	if got := svc.Titles(); len(got) != 1 || got[0].Name != "zorba" {
		t.Fatalf("Titles = %v", got)
	}
	if err := svc.Preload("U4", "zorba"); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	holders, err := svc.Holders("zorba")
	if err != nil {
		t.Fatal(err)
	}
	if len(holders) != 1 || holders[0] != "U4" {
		t.Fatalf("Holders = %v", holders)
	}

	// Seed link statistics with the paper's 10am snapshot so Plan has a
	// network view (Experiment B's conditions).
	loads := map[[2]NodeID]float64{
		{"U2", "U1"}: 1.82, {"U2", "U3"}: 0.00017, {"U4", "U1"}: 7.0,
		{"U4", "U5"}: 0.52, {"U4", "U3"}: 1.48, {"U1", "U6"}: 2.5,
		{"U5", "U6"}: 0.0001,
	}
	for pair, mbps := range loads {
		if err := svc.SetLinkTraffic(pair[0], pair[1], mbps); err != nil {
			t.Fatal(err)
		}
	}
	u, err := svc.LinkUtilization("U2", "U1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.91) > 1e-9 {
		t.Fatalf("utilization = %g, want 0.91", u)
	}

	dec, err := svc.Plan("U2", "zorba")
	if err != nil {
		t.Fatal(err)
	}
	if dec.Server != "U4" || dec.Path.String() != "U2,U3,U4" {
		t.Fatalf("Plan = %+v, want Thessaloniki via U2,U3,U4", dec)
	}

	// A Patra client watches; delivery comes from U4 and verifies.
	p, err := svc.Player("U2")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("zorba")
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if !stats.Verified || stats.BytesReceived != title.SizeBytes {
		t.Fatalf("stats = %+v", stats)
	}
	if len(stats.Sources) == 0 {
		t.Fatal("no sources recorded")
	}
	// With 3 MiB arrays the 40 kB title is admitted by Patra's DMA on the
	// watch, so delivery is local.
	if stats.Sources[0] != "U2" {
		t.Fatalf("source = %s, want local U2 after DMA admission", stats.Sources[0])
	}

	addr, err := svc.ServerAddr("U4")
	if err != nil || addr == "" {
		t.Fatalf("ServerAddr = %q, %v", addr, err)
	}
	if _, err := svc.ServerAddr("U99"); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := svc.Player("U99"); err == nil {
		t.Fatal("unknown home accepted")
	}
	if err := svc.Preload("U99", "zorba"); err == nil {
		t.Fatal("unknown preload node accepted")
	}
	if err := svc.Preload("U4", "ghost"); err == nil {
		t.Fatal("unknown preload title accepted")
	}
}

// TestServiceMergedWatch drives stream merging through the public facade: a
// relay home (array too small to cache the title, so every cluster is
// fetched from the holder) serves four concurrent watchers of one title,
// which must coalesce onto a shared base stream.
func TestServiceMergedWatch(t *testing.T) {
	const clusterBytes = 512
	title := Title{Name: "zorba", SizeBytes: 64 << 10, BitrateMbps: 1.5}
	svc, err := New(GRNETTopology(),
		WithClusterBytes(clusterBytes),
		WithDisks(3, 1<<20),
		WithNodeDisks("U2", 1, clusterBytes),
		WithMergeWindow(int(title.SizeBytes/clusterBytes)),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer svc.Close()
	if err := svc.AddTitle(title); err != nil {
		t.Fatal(err)
	}
	if err := svc.Preload("U4", "zorba"); err != nil {
		t.Fatal(err)
	}

	const watchers = 4
	var wg sync.WaitGroup
	gate := make(chan struct{})
	stats := make([]PlaybackStats, watchers)
	errs := make([]error, watchers)
	for i := 0; i < watchers; i++ {
		p, err := svc.Player("U2")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, p *Player) {
			defer wg.Done()
			<-gate
			stats[i], errs[i] = p.Watch("zorba")
		}(i, p)
	}
	close(gate)
	wg.Wait()

	patches := 0
	for i := 0; i < watchers; i++ {
		if errs[i] != nil {
			t.Fatalf("watcher %d: %v", i, errs[i])
		}
		if !stats[i].Verified || stats[i].BytesReceived != title.SizeBytes {
			t.Fatalf("watcher %d stats = %+v", i, stats[i])
		}
		if !stats[i].Merged {
			t.Fatalf("watcher %d not delivered through the merge layer", i)
		}
		if stats[i].MergeRole == "patch" {
			patches++
		}
	}
	if patches == 0 {
		t.Fatal("no watcher joined an existing cohort")
	}
}

func TestServiceLifecycleErrors(t *testing.T) {
	svc, err := New(GRNETTopology(), WithDisks(1, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Player("U1"); err == nil {
		t.Fatal("Player before Start accepted")
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	if err := svc.Start(); err == nil {
		t.Fatal("Start after Close accepted")
	}
}

func TestEvaluateLinksGRNET(t *testing.T) {
	spec := GRNETTopology()
	// 8am utilizations from Table 2.
	util := map[LinkID]float64{
		MakeLinkID("U2", "U1"): 0.10,
		MakeLinkID("U2", "U3"): 0.00005,
		MakeLinkID("U4", "U1"): 0.094,
		MakeLinkID("U4", "U5"): 0.24,
		MakeLinkID("U4", "U3"): 0.15,
		MakeLinkID("U1", "U6"): 0.027,
		MakeLinkID("U5", "U6"): 0.00005,
	}
	weights, err := EvaluateLinks(spec, util)
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 7 {
		t.Fatalf("weights = %d", len(weights))
	}
	byID := map[LinkID]float64{}
	for _, w := range weights {
		byID[w.Link] = w.LVN
	}
	// Paper Table 3, 8am column (±0.01).
	if got := byID[MakeLinkID("U2", "U1")]; math.Abs(got-0.083) > 0.01 {
		t.Fatalf("Patra-Athens LVN = %g, paper 0.083", got)
	}
	if got := byID[MakeLinkID("U4", "U1")]; math.Abs(got-0.2819) > 0.01 {
		t.Fatalf("Thess-Athens LVN = %g, paper 0.2819", got)
	}
	if _, err := EvaluateLinks(TopologySpec{}, nil); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestSelectServerExperimentB(t *testing.T) {
	spec := GRNETTopology()
	util := map[LinkID]float64{
		MakeLinkID("U2", "U1"): 0.91,
		MakeLinkID("U2", "U3"): 0.000085,
		MakeLinkID("U4", "U1"): 0.3889,
		MakeLinkID("U4", "U5"): 0.26,
		MakeLinkID("U4", "U3"): 0.74,
		MakeLinkID("U1", "U6"): 0.1389,
		MakeLinkID("U5", "U6"): 0.00005,
	}
	dec, err := SelectServer(spec, util, "U2", []NodeID{"U4", "U5"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Server != "U4" || dec.Path.String() != "U2,U3,U4" {
		t.Fatalf("decision = %+v", dec)
	}
	if math.Abs(dec.Cost-1.007) > 0.02 {
		t.Fatalf("cost = %g, paper 1.007", dec.Cost)
	}
	if _, err := SelectServer(TopologySpec{}, nil, "U2", nil); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestSelectorByName(t *testing.T) {
	for _, name := range []string{"vra", "minhop", "random", "static"} {
		sel, err := SelectorByName(name, 1)
		if err != nil || sel.Name() != name {
			t.Fatalf("SelectorByName(%s) = %v, %v", name, sel, err)
		}
	}
	if _, err := SelectorByName("nope", 1); err == nil {
		t.Fatal("unknown selector accepted")
	}
	if NewVRA(0).Name() != "vra" {
		t.Fatal("NewVRA wrong")
	}
}
