package dvod

import (
	"dvod/internal/baseline"
	"dvod/internal/core"
	"dvod/internal/placement"
	"dvod/internal/topology"
)

// Selector is a server-selection policy (the VRA or a baseline).
type Selector = core.Selector

// NewVRA returns the paper's Virtual Routing Algorithm with normalization
// constant K (0 selects the paper's default, 10).
func NewVRA(k float64) Selector { return core.VRA{NormalizationK: k} }

// SelectorByName returns a policy by name: "vra", "minhop", "random",
// "static". The seed only affects "random".
func SelectorByName(name string, seed int64) (Selector, error) {
	return baseline.ByName(name, seed)
}

// LinkWeight is one link's computed Link Validation Number.
type LinkWeight struct {
	Link LinkID
	// LVN is the routing cost (equation 1): larger is worse.
	LVN float64
}

// EvaluateLinks computes the LVN of every link from a utilization snapshot
// (fraction of capacity in use per link; omitted links are idle) using the
// paper's equations (1)-(4) with K = 10. This is the pure-algorithm entry
// point — no servers, sockets, or state.
func EvaluateLinks(spec TopologySpec, utilization map[LinkID]float64) ([]LinkWeight, error) {
	g, err := buildGraph(spec)
	if err != nil {
		return nil, err
	}
	snap, err := topology.NewSnapshot(g, utilization)
	if err != nil {
		return nil, err
	}
	weights, err := snap.Weights(topology.DefaultNormalizationK)
	if err != nil {
		return nil, err
	}
	out := make([]LinkWeight, 0, len(weights))
	for _, l := range g.Links() {
		out = append(out, LinkWeight{Link: l.ID, LVN: weights[l.ID]})
	}
	return out, nil
}

// Demand weights each client site by how much it requests a title (any
// consistent unit), for PlanPlacement.
type Demand = placement.Demand

// PlanPlacement answers the initialization-phase question: given the
// network state and the per-site demand for a title, which k sites should
// hold its first replicas? Placement minimizes the demand-weighted LVN cost
// of each site reaching its nearest replica (exact for small networks,
// greedy beyond). It returns the chosen sites and the expected cost.
func PlanPlacement(spec TopologySpec, utilization map[LinkID]float64, demand Demand, k int) ([]NodeID, float64, error) {
	g, err := buildGraph(spec)
	if err != nil {
		return nil, 0, err
	}
	snap, err := topology.NewSnapshot(g, utilization)
	if err != nil {
		return nil, 0, err
	}
	m, err := placement.NewCostMatrix(snap)
	if err != nil {
		return nil, 0, err
	}
	sites, err := placement.Optimize(m, demand, k)
	if err != nil {
		return nil, 0, err
	}
	cost, err := m.ExpectedCost(sites, demand)
	if err != nil {
		return nil, 0, err
	}
	return sites, cost, nil
}

// SelectServer runs one stateless VRA decision: given the network state and
// the servers holding the requested title, which should serve a client
// homed at home, and over which route?
func SelectServer(spec TopologySpec, utilization map[LinkID]float64, home NodeID, candidates []NodeID) (Decision, error) {
	g, err := buildGraph(spec)
	if err != nil {
		return Decision{}, err
	}
	snap, err := topology.NewSnapshot(g, utilization)
	if err != nil {
		return Decision{}, err
	}
	return core.VRA{}.Select(snap, home, candidates)
}
