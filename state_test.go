package dvod

import (
	"bytes"
	"testing"
)

// TestServiceStateRoundTrip: a restarted deployment resumes from a saved
// snapshot — catalog, holdings, and link statistics intact — and routing
// decisions match the pre-restart ones.
func TestServiceStateRoundTrip(t *testing.T) {
	first, err := New(GRNETTopology(), WithDisks(2, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	title := Title{Name: "persisted", SizeBytes: 50_000, BitrateMbps: 1.5}
	if err := first.AddTitle(title); err != nil {
		t.Fatal(err)
	}
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	if err := first.Preload("U4", "persisted"); err != nil {
		t.Fatal(err)
	}
	seedTenAM(t, first)
	before, err := first.Plan("U2", "persisted")
	if err != nil {
		t.Fatal(err)
	}
	var snapshot bytes.Buffer
	if err := first.SaveState(&snapshot); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := New(GRNETTopology(), WithDisks(2, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if err := second.LoadState(&snapshot); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	// Routing state survived: same decision without reseeding anything.
	after, err := second.Plan("U2", "persisted")
	if err != nil {
		t.Fatal(err)
	}
	if after.Server != before.Server || after.Path.String() != before.Path.String() {
		t.Fatalf("decision changed across restart: %+v vs %+v", before, after)
	}
	holders, err := second.Holders("persisted")
	if err != nil {
		t.Fatal(err)
	}
	if len(holders) != 1 || holders[0] != "U4" {
		t.Fatalf("holders = %v", holders)
	}
	u, err := second.LinkUtilization("U2", "U1")
	if err != nil {
		t.Fatal(err)
	}
	if u == 0 {
		t.Fatal("link statistics lost across restart")
	}
	// LoadState onto a populated service collides and reports it.
	if err := second.LoadState(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty reader accepted")
	}
}

// TestLoadStateRejectsDoubleLoad: loading a snapshot with titles twice
// collides on the catalog (server re-registrations alone are idempotent).
func TestLoadStateRejectsDoubleLoad(t *testing.T) {
	svc, err := New(GRNETTopology(), WithDisks(1, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.AddTitle(Title{Name: "dup", SizeBytes: 1, BitrateMbps: 1}); err != nil {
		t.Fatal(err)
	}
	var snapshot bytes.Buffer
	if err := svc.SaveState(&snapshot); err != nil {
		t.Fatal(err)
	}
	saved := snapshot.Bytes()
	fresh, err := New(GRNETTopology(), WithDisks(1, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.LoadState(bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadState(bytes.NewReader(saved)); err == nil {
		t.Fatal("double load accepted")
	}
}
