package core

import (
	"errors"
	"sync"

	"dvod/internal/db"
	"dvod/internal/topology"
)

// Watcher implements the paper's continuous re-evaluation verbatim: "the
// routing algorithm also continues to run at the connecting server ... it
// continues to validate the network routes constantly". It subscribes to the
// database's change events and re-plans a request whenever link statistics
// or holdings move, emitting a notification each time the optimal server or
// route changes. The live server consults the planner at every cluster
// boundary anyway; the Watcher serves dashboards, prefetchers, and tests
// that want to observe optimum movement as it happens.
type Watcher struct {
	planner *Planner
	home    topology.NodeID
	title   string

	mu      sync.Mutex
	last    *Decision
	updates chan Decision
	stop    chan struct{}
	done    chan struct{}
	cancel  func()
}

// NewWatcher starts watching the optimal server for (home, title). The
// initial decision is delivered as the first update. Call Stop to release
// the database subscription.
func NewWatcher(p *Planner, home topology.NodeID, title string, buffer int) (*Watcher, error) {
	if p == nil {
		return nil, errors.New("watcher: nil planner")
	}
	if buffer < 1 {
		buffer = 1
	}
	events, cancel := p.db.Subscribe(16)
	w := &Watcher{
		planner: p,
		home:    home,
		title:   title,
		updates: make(chan Decision, buffer),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		cancel:  cancel,
	}
	// Deliver the initial decision (if one exists) before any events.
	if dec, err := p.Plan(home, title); err == nil {
		w.push(dec)
	}
	go w.loop(events)
	return w, nil
}

// Updates delivers a Decision each time the optimum changes. The channel is
// closed by Stop.
func (w *Watcher) Updates() <-chan Decision { return w.updates }

// Current returns the most recent decision, if any.
func (w *Watcher) Current() (Decision, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.last == nil {
		return Decision{}, false
	}
	return *w.last, true
}

// Stop unsubscribes and waits for the watcher goroutine to exit.
func (w *Watcher) Stop() {
	close(w.stop)
	<-w.done
}

func (w *Watcher) loop(events <-chan db.Event) {
	defer close(w.done)
	defer close(w.updates)
	defer w.cancel()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			if !w.relevant(ev) {
				continue
			}
			dec, err := w.planner.Plan(w.home, w.title)
			if err != nil {
				continue // transiently unservable; keep watching
			}
			w.push(dec)
		case <-w.stop:
			return
		}
	}
}

// relevant filters events that cannot move this request's optimum.
func (w *Watcher) relevant(ev db.Event) bool {
	switch ev.Kind {
	case db.EventLinkStatsUpdated:
		return true
	case db.EventHoldingChanged:
		return ev.Title == w.title
	default:
		return false
	}
}

// push records and (non-blockingly) delivers a decision if it differs from
// the last one.
func (w *Watcher) push(dec Decision) {
	w.mu.Lock()
	changed := w.last == nil ||
		w.last.Server != dec.Server ||
		w.last.Path.String() != dec.Path.String()
	if changed {
		w.last = &dec
	}
	w.mu.Unlock()
	if !changed {
		return
	}
	select {
	case w.updates <- dec:
	default:
		// Slow consumer: drop intermediate updates; Current() always has
		// the latest.
	}
}
