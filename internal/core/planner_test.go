package core

import (
	"errors"
	"testing"
	"time"

	"dvod/internal/db"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/topology"
)

var t0 = time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)

// plannerFixture: GRNET DB at the given sample time with one title held by
// the listed nodes.
func plannerFixture(t *testing.T, st grnet.SampleTime, title media.Title, holders ...topology.NodeID) (*db.DB, *Planner) {
	t.Helper()
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	for _, row := range grnet.Table2() {
		id := topology.MakeLinkID(row.A, row.B)
		if err := d.UpsertLinkStats(id, row.TrafficMbps[int(st)-1], t0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Catalog().AddTitle(title); err != nil {
		t.Fatal(err)
	}
	for _, h := range holders {
		if err := d.SetHolding(h, title.Name, true, t0); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPlanner(d, VRA{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, p
}

func movie(size int64) media.Title {
	return media.Title{Name: "movie", SizeBytes: size, BitrateMbps: 1.5}
}

func TestNewPlannerValidation(t *testing.T) {
	if _, err := NewPlanner(nil, VRA{}, nil); err == nil {
		t.Fatal("nil db accepted")
	}
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlanner(db.New(g), nil, nil); err == nil {
		t.Fatal("nil selector accepted")
	}
}

func TestPlannerPlanExperimentB(t *testing.T) {
	_, p := plannerFixture(t, grnet.At10am, movie(1000), grnet.Thessaloniki, grnet.Xanthi)
	if p.Selector().Name() != "vra" {
		t.Fatalf("Selector = %s", p.Selector().Name())
	}
	d, err := p.Plan(grnet.Patra, "movie")
	if err != nil {
		t.Fatal(err)
	}
	if d.Server != grnet.Thessaloniki || d.Path.String() != "U2,U3,U4" {
		t.Fatalf("decision = %+v, paper: Thessaloniki via U2,U3,U4", d)
	}
}

func TestPlannerUnknownTitle(t *testing.T) {
	_, p := plannerFixture(t, grnet.At8am, movie(1000), grnet.Xanthi)
	if _, err := p.Plan(grnet.Patra, "ghost"); err == nil {
		t.Fatal("unknown title accepted")
	}
}

func TestPlannerNoHolders(t *testing.T) {
	_, p := plannerFixture(t, grnet.At8am, movie(1000)) // no holders
	if _, err := p.Plan(grnet.Patra, "movie"); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("error = %v", err)
	}
}

func TestPlannerAvailabilityFilter(t *testing.T) {
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	for _, row := range grnet.Table2() {
		id := topology.MakeLinkID(row.A, row.B)
		if err := d.UpsertLinkStats(id, row.TrafficMbps[1], t0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Catalog().AddTitle(movie(1000)); err != nil {
		t.Fatal(err)
	}
	for _, h := range []topology.NodeID{grnet.Thessaloniki, grnet.Xanthi} {
		if err := d.SetHolding(h, "movie", true, t0); err != nil {
			t.Fatal(err)
		}
	}
	// Thessaloniki is down: the filter excludes it and the VRA falls back
	// to Xanthi.
	down := map[topology.NodeID]bool{grnet.Thessaloniki: true}
	p, err := NewPlanner(d, VRA{}, func(n topology.NodeID) bool { return !down[n] })
	if err != nil {
		t.Fatal(err)
	}
	cands, err := p.Candidates("movie")
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0] != grnet.Xanthi {
		t.Fatalf("candidates = %v", cands)
	}
	dec, err := p.Plan(grnet.Patra, "movie")
	if err != nil {
		t.Fatal(err)
	}
	if dec.Server != grnet.Xanthi {
		t.Fatalf("server = %s, want Xanthi with Thessaloniki down", dec.Server)
	}
	// All down → no candidates.
	down[grnet.Xanthi] = true
	if _, err := p.Plan(grnet.Patra, "movie"); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("all-down error = %v", err)
	}
}

func TestSessionLifecycle(t *testing.T) {
	// 1000-byte title, 300-byte clusters → 4 clusters.
	title := movie(1000)
	_, p := plannerFixture(t, grnet.At10am, title, grnet.Thessaloniki, grnet.Xanthi)
	s, err := NewSession(p, grnet.Patra, title, 300)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumClusters() != 4 || s.Done() {
		t.Fatalf("NumClusters = %d, Done = %v", s.NumClusters(), s.Done())
	}
	if s.Title().Name != "movie" || s.Home() != grnet.Patra {
		t.Fatal("accessors wrong")
	}
	for i := range 4 {
		cd, err := s.PlanNext()
		if err != nil {
			t.Fatalf("PlanNext(%d): %v", i, err)
		}
		if cd.Cluster != i {
			t.Fatalf("cluster = %d, want %d", cd.Cluster, i)
		}
		if cd.Decision.Server != grnet.Thessaloniki {
			t.Fatalf("cluster %d server = %s", i, cd.Decision.Server)
		}
		if cd.Switched {
			t.Fatalf("cluster %d reported a switch under static conditions", i)
		}
	}
	if !s.Done() || s.Switches() != 0 {
		t.Fatalf("Done = %v, Switches = %d", s.Done(), s.Switches())
	}
	if len(s.Decisions()) != 4 {
		t.Fatalf("Decisions = %d", len(s.Decisions()))
	}
	if _, err := s.PlanNext(); err == nil {
		t.Fatal("PlanNext after completion accepted")
	}
	// Last cluster covers the 100-byte tail.
	last := s.Decisions()[3]
	if last.Offset != 900 || last.Length != 100 {
		t.Fatalf("tail cluster = %+v", last)
	}
}

// TestSessionMidStreamSwitch replays the paper's scenario: conditions change
// between clusters (8am → 10am), so the optimal server flips from the 8am
// best (Thessaloniki via Ioannina, per the corrected Experiment A) to the
// 10am best... which is also Thessaloniki — so instead we flip the traffic
// the other way round to force a switch to Xanthi.
func TestSessionMidStreamSwitch(t *testing.T) {
	title := movie(600) // 2 clusters of 300
	d, p := plannerFixture(t, grnet.At10am, title, grnet.Thessaloniki, grnet.Xanthi)
	s, err := NewSession(p, grnet.Patra, title, 300)
	if err != nil {
		t.Fatal(err)
	}
	cd0, err := s.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	if cd0.Decision.Server != grnet.Thessaloniki {
		t.Fatalf("cluster 0 server = %s", cd0.Decision.Server)
	}
	// Congest the Ioannina path (both its links to full) so Xanthi wins.
	for _, pair := range [][2]topology.NodeID{
		{grnet.Patra, grnet.Ioannina},
		{grnet.Thessaloniki, grnet.Ioannina},
		{grnet.Thessaloniki, grnet.Athens},
	} {
		id := topology.MakeLinkID(pair[0], pair[1])
		l, err := d.Graph().LinkByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.UpsertLinkStats(id, l.CapacityMbps, t0.Add(time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	cd1, err := s.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	if cd1.Decision.Server != grnet.Xanthi {
		t.Fatalf("cluster 1 server = %s, want Xanthi after congestion", cd1.Decision.Server)
	}
	if !cd1.Switched || s.Switches() != 1 {
		t.Fatalf("switch not recorded: %+v, switches=%d", cd1, s.Switches())
	}
}

func TestNewSessionValidation(t *testing.T) {
	title := movie(1000)
	_, p := plannerFixture(t, grnet.At8am, title, grnet.Xanthi)
	if _, err := NewSession(nil, grnet.Patra, title, 100); err == nil {
		t.Fatal("nil planner accepted")
	}
	if _, err := NewSession(p, grnet.Patra, title, 0); err == nil {
		t.Fatal("zero cluster accepted")
	}
	if _, err := NewSession(p, "U99", title, 100); err == nil {
		t.Fatal("unknown home accepted")
	}
	if _, err := NewSession(p, grnet.Patra, media.Title{}, 100); err == nil {
		t.Fatal("invalid title accepted")
	}
}

func TestSessionPlanNextFailureDoesNotAdvance(t *testing.T) {
	title := movie(600)
	d, p := plannerFixture(t, grnet.At8am, title, grnet.Xanthi)
	s, err := NewSession(p, grnet.Patra, title, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the only holder: planning fails, session stays at cluster 0.
	if err := d.SetHolding(grnet.Xanthi, title.Name, false, t0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlanNext(); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("error = %v", err)
	}
	if s.Done() || len(s.Decisions()) != 0 {
		t.Fatal("failed PlanNext advanced the session")
	}
	// Holder comes back: planning resumes at cluster 0.
	if err := d.SetHolding(grnet.Xanthi, title.Name, true, t0); err != nil {
		t.Fatal(err)
	}
	cd, err := s.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	if cd.Cluster != 0 {
		t.Fatalf("resumed at cluster %d, want 0", cd.Cluster)
	}
}
