package core

import (
	"errors"
	"math"
	"testing"

	"dvod/internal/grnet"
	"dvod/internal/routing"
	"dvod/internal/topology"
)

func TestResidualMbps(t *testing.T) {
	snap := snapshotAt(t, grnet.At8am)
	// Patra→Athens: 2 Mbps at 10% → 1.8 free.
	p := routing.Path{Nodes: []topology.NodeID{grnet.Patra, grnet.Athens}}
	res, bn, err := ResidualMbps(snap, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res-1.8) > 1e-9 {
		t.Fatalf("residual = %g, want 1.8", res)
	}
	if bn != topology.MakeLinkID(grnet.Patra, grnet.Athens) {
		t.Fatalf("bottleneck = %s", bn)
	}
	// Two-hop path: bottleneck is the thinner residual.
	p2 := routing.Path{Nodes: []topology.NodeID{grnet.Patra, grnet.Athens, grnet.Thessaloniki}}
	res2, bn2, err := ResidualMbps(snap, p2)
	if err != nil {
		t.Fatal(err)
	}
	// Athens-Thessaloniki: 18 at 9.44% → 16.3 free; Patra link 1.8 wins.
	if math.Abs(res2-1.8) > 1e-9 || bn2 != topology.MakeLinkID(grnet.Patra, grnet.Athens) {
		t.Fatalf("residual = %g bottleneck %s", res2, bn2)
	}
	// Local path: infinite.
	res3, _, err := ResidualMbps(snap, routing.Path{Nodes: []topology.NodeID{grnet.Patra}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res3, 1) {
		t.Fatalf("local residual = %g", res3)
	}
	// Unknown link errors.
	bad := routing.Path{Nodes: []topology.NodeID{"X", "Y"}}
	if _, _, err := ResidualMbps(snap, bad); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestCheckQoS(t *testing.T) {
	snap := snapshotAt(t, grnet.At8am)
	p := routing.Path{Nodes: []topology.NodeID{grnet.Patra, grnet.Athens}} // 1.8 free
	if err := CheckQoS(snap, p, 1.5); err != nil {
		t.Fatalf("1.5 Mbps over 1.8 free rejected: %v", err)
	}
	err := CheckQoS(snap, p, 1.9)
	if !errors.Is(err, ErrInsufficientBandwidth) {
		t.Fatalf("1.9 Mbps over 1.8 free error = %v", err)
	}
	var qe *QoSError
	if !errors.As(err, &qe) {
		t.Fatalf("error type = %T", err)
	}
	if qe.NeededMbps != 1.9 || math.Abs(qe.AvailableMbps-1.8) > 1e-9 {
		t.Fatalf("QoSError = %+v", qe)
	}
	if qe.Error() == "" {
		t.Fatal("empty error text")
	}
	if err := CheckQoS(snap, p, 0); err == nil {
		t.Fatal("zero bitrate accepted")
	}
}

func TestCheckQoSOverloadedLinkHasZeroResidual(t *testing.T) {
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	id, err := g.AddLink("A", "B", 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := topology.NewSnapshot(g, map[topology.LinkID]float64{id: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ResidualMbps(snap, routing.Path{Nodes: []topology.NodeID{"A", "B"}})
	if err != nil {
		t.Fatal(err)
	}
	if res != 0 {
		t.Fatalf("overloaded residual = %g, want clamped 0", res)
	}
}

// TestSelectWithQoS pins the admission behaviour: the cheapest candidate is
// skipped when its route cannot sustain the bitrate and the next one wins.
func TestSelectWithQoS(t *testing.T) {
	// Home H; replica R1 behind a thin congested link (cheap by LVN but
	// low residual); replica R2 behind a fat link (costlier but roomy).
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"H", "R1", "R2"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	thin, err := g.AddLink("H", "R1", 2)
	if err != nil {
		t.Fatal(err)
	}
	fat, err := g.AddLink("H", "R2", 18)
	if err != nil {
		t.Fatal(err)
	}
	// Thin link 10% used → residual 1.8 < bitrate 4. Fat link 50% used →
	// LVN is high (NV .45+ LU .9) but residual 9 ≥ 4.
	snap, err := topology.NewSnapshot(g, map[topology.LinkID]float64{
		thin: 0.10,
		fat:  0.50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Plain VRA prefers R1 (cheaper LVN).
	plain, err := VRA{}.Select(snap, "H", []topology.NodeID{"R1", "R2"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Server != "R1" {
		t.Fatalf("plain decision = %s, want R1", plain.Server)
	}
	// QoS-gated selection at 4 Mbps skips R1.
	dec, err := SelectWithQoS(VRA{}, snap, "H", []topology.NodeID{"R1", "R2"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Server != "R2" {
		t.Fatalf("QoS decision = %s, want R2", dec.Server)
	}
	// At 1.5 Mbps R1 passes and stays the choice.
	dec, err = SelectWithQoS(VRA{}, snap, "H", []topology.NodeID{"R1", "R2"}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Server != "R1" {
		t.Fatalf("low-rate decision = %s, want R1", dec.Server)
	}
	// At 10 Mbps nobody passes.
	_, err = SelectWithQoS(VRA{}, snap, "H", []topology.NodeID{"R1", "R2"}, 10)
	if !errors.Is(err, ErrInsufficientBandwidth) {
		t.Fatalf("overload error = %v", err)
	}
	// Local service always passes.
	dec, err = SelectWithQoS(VRA{}, snap, "H", []topology.NodeID{"H"}, 100)
	if err != nil || !dec.Local {
		t.Fatalf("local = %+v, %v", dec, err)
	}
	// No candidates.
	if _, err := SelectWithQoS(VRA{}, snap, "H", nil, 1); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("no candidates error = %v", err)
	}
}
