package core

import (
	"errors"
	"math"
	"testing"

	"dvod/internal/grnet"
	"dvod/internal/routing"
	"dvod/internal/topology"
)

func snapshotAt(t *testing.T, st grnet.SampleTime) *topology.Snapshot {
	t.Helper()
	snap, err := grnet.Snapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestVRAName(t *testing.T) {
	if (VRA{}).Name() != "vra" {
		t.Fatal("Name wrong")
	}
}

func TestVRALocalShortCircuit(t *testing.T) {
	snap := snapshotAt(t, grnet.At8am)
	d, err := VRA{}.Select(snap, grnet.Patra, []topology.NodeID{grnet.Xanthi, grnet.Patra})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Local || d.Server != grnet.Patra || d.Cost != 0 {
		t.Fatalf("decision = %+v, want local Patra", d)
	}
	if d.Path.Hops() != 0 {
		t.Fatalf("local path hops = %d", d.Path.Hops())
	}
}

func TestVRANoCandidates(t *testing.T) {
	snap := snapshotAt(t, grnet.At8am)
	if _, err := (VRA{}).Select(snap, grnet.Patra, nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("error = %v", err)
	}
}

func TestVRAUnknownHome(t *testing.T) {
	snap := snapshotAt(t, grnet.At8am)
	if _, err := (VRA{}).Select(snap, "U99", []topology.NodeID{grnet.Xanthi}); err == nil {
		t.Fatal("unknown home accepted")
	}
}

// TestVRAExperimentB runs the full Figure 5 flow for the paper's
// Experiment B and checks the published decision.
func TestVRAExperimentB(t *testing.T) {
	snap := snapshotAt(t, grnet.At10am)
	d, err := VRA{}.Select(snap, grnet.Patra, []topology.NodeID{grnet.Thessaloniki, grnet.Xanthi})
	if err != nil {
		t.Fatal(err)
	}
	if d.Local {
		t.Fatal("decision should be remote")
	}
	if d.Server != grnet.Thessaloniki {
		t.Fatalf("server = %s, paper chooses Thessaloniki", d.Server)
	}
	if d.Path.String() != "U2,U3,U4" {
		t.Fatalf("path = %s, paper U2,U3,U4", d.Path)
	}
	if math.Abs(d.Cost-1.007) > 0.01 {
		t.Fatalf("cost = %.4f, paper 1.007", d.Cost)
	}
}

// TestVRAExperimentsCD checks the 4pm and 6pm decisions (both Ioannina).
func TestVRAExperimentsCD(t *testing.T) {
	cands := []topology.NodeID{grnet.Ioannina, grnet.Thessaloniki, grnet.Xanthi}
	for _, tc := range []struct {
		at   grnet.SampleTime
		cost float64
	}{
		{grnet.At4pm, 1.222},
		{grnet.At6pm, 1.236},
	} {
		d, err := VRA{}.Select(snapshotAt(t, tc.at), grnet.Athens, cands)
		if err != nil {
			t.Fatal(err)
		}
		if d.Server != grnet.Ioannina || d.Path.String() != "U1,U2,U3" {
			t.Fatalf("@%s: %s via %s, paper Ioannina via U1,U2,U3", tc.at, d.Server, d.Path)
		}
		if math.Abs(d.Cost-tc.cost) > 0.01 {
			t.Fatalf("@%s cost = %.4f, paper %.4f", tc.at, d.Cost, tc.cost)
		}
	}
}

func TestVRACustomK(t *testing.T) {
	snap := snapshotAt(t, grnet.At10am)
	// Any positive K must still produce a valid decision; with very large
	// K the LU term vanishes and only node validations matter.
	d, err := VRA{NormalizationK: 1000}.Select(snap, grnet.Patra,
		[]topology.NodeID{grnet.Thessaloniki, grnet.Xanthi})
	if err != nil {
		t.Fatal(err)
	}
	if d.Server == "" {
		t.Fatal("empty decision")
	}
	// Negative K propagates the weighting error.
	if _, err := (VRA{NormalizationK: -1}).Select(snap, grnet.Patra,
		[]topology.NodeID{grnet.Xanthi}); err == nil {
		t.Fatal("negative K accepted")
	}
}

func TestVRASelectTrace(t *testing.T) {
	snap := snapshotAt(t, grnet.At10am)
	d, steps, err := VRA{}.SelectTrace(snap, grnet.Patra,
		[]topology.NodeID{grnet.Thessaloniki, grnet.Xanthi})
	if err != nil {
		t.Fatal(err)
	}
	if d.Server != grnet.Thessaloniki {
		t.Fatalf("server = %s", d.Server)
	}
	if len(steps) != 6 {
		t.Fatalf("trace steps = %d, want 6", len(steps))
	}
	// Local decisions produce no trace.
	d, steps, err = (VRA{}).SelectTrace(snap, grnet.Patra, []topology.NodeID{grnet.Patra})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Local || steps != nil {
		t.Fatalf("local trace = %+v, %d steps", d, len(steps))
	}
	if _, _, err := (VRA{}).SelectTrace(snap, grnet.Patra, nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("no candidates error = %v", err)
	}
	if _, _, err := (VRA{NormalizationK: -1}).SelectTrace(snap, grnet.Patra,
		[]topology.NodeID{grnet.Xanthi}); err == nil {
		t.Fatal("negative K accepted")
	}
}

func TestVRAUnreachableCandidate(t *testing.T) {
	// Disconnected graph: island node holds the title.
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B", "island"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddLink("A", "B", 2); err != nil {
		t.Fatal(err)
	}
	snap, err := topology.NewSnapshot(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (VRA{}).Select(snap, "A", []topology.NodeID{"island"}); !errors.Is(err, ErrNoReachable) {
		t.Fatalf("error = %v, want ErrNoReachable", err)
	}
	if _, _, err := (VRA{}).SelectTrace(snap, "A", []topology.NodeID{"island"}); !errors.Is(err, ErrNoReachable) {
		t.Fatalf("trace error = %v, want ErrNoReachable", err)
	}
}

// TestVRAPrefersIdleRoute pins the load sensitivity that distinguishes the
// VRA from hop-count routing: with a loaded high-capacity direct link and an
// idle two-hop detour, the VRA takes the detour. (The direct link must be
// fat: equation (3) scales the utilization term by capacity/K, and equation
// (1)'s node-validation term also taxes the detour's first hop, so only a
// large LU penalty flips the decision.)
func TestVRAPrefersIdleRoute(t *testing.T) {
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"C", "S", "R"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	direct, err := g.AddLink("C", "S", 18)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink("C", "R", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink("R", "S", 2); err != nil {
		t.Fatal(err)
	}
	snap, err := topology.NewSnapshot(g, map[topology.LinkID]float64{direct: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	d, err := VRA{}.Select(snap, "C", []topology.NodeID{"S"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Path.String() != "C,R,S" {
		t.Fatalf("path = %s, want detour C,R,S", d.Path)
	}
	// Min-hop (via the routing package directly) would take the 1-hop
	// congested link — confirming the policies genuinely differ here.
	tree, err := routing.ShortestPaths(g, routing.MinHopWeights(g), "C")
	if err != nil {
		t.Fatal(err)
	}
	p, err := tree.PathTo("S")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "C,S" {
		t.Fatalf("min-hop path = %s, want direct C,S", p)
	}
}
