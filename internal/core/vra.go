// Package core implements the paper's primary contribution: the Virtual
// Routing Algorithm (VRA, Figure 5) that picks the video server each request
// is satisfied from, and the per-request session machinery that keeps
// re-running the VRA at every cluster boundary so an in-flight playback can
// switch servers when network conditions shift.
package core

import (
	"errors"
	"fmt"

	"dvod/internal/routing"
	"dvod/internal/topology"
)

// Errors reported by server selection.
var (
	ErrNoCandidates = errors.New("no server holds the title")
	ErrNoReachable  = errors.New("no candidate server reachable")
)

// Decision is the outcome of one selection: which server serves the next
// cluster(s) and over which route.
type Decision struct {
	// Server is the chosen video server.
	Server topology.NodeID
	// Path is the route from the chosen server to the client's home
	// server (stored home-first, the direction Dijkstra computed it).
	Path routing.Path
	// Cost is the LVN path cost (0 for local service).
	Cost float64
	// Local is true when the home server itself holds the title — the
	// VRA's short-circuit branch.
	Local bool
}

// Selector chooses a serving server for a client homed at a given node. The
// VRA and every baseline policy implement it.
type Selector interface {
	// Name identifies the policy for reports.
	Name() string
	// Select picks among candidates (servers that hold the title) for a
	// client attached to home, given the current network snapshot.
	Select(snap *topology.Snapshot, home topology.NodeID, candidates []topology.NodeID) (Decision, error)
}

// VRA is the paper's Virtual Routing Algorithm:
//
//  1. If the client's adjacent (home) server has the video, serve locally.
//  2. Otherwise compute each link's Link Validation Number (equations 1-4),
//     run Dijkstra from the home server, and among the candidate servers
//     pick the one whose least-cost path to the home server is cheapest.
type VRA struct {
	// NormalizationK is equation (4)'s constant; zero means the paper's
	// default of 10.
	NormalizationK float64
}

var _ Selector = VRA{}

// Name implements Selector.
func (VRA) Name() string { return "vra" }

// Select implements Selector with the Figure 5 procedure.
func (v VRA) Select(snap *topology.Snapshot, home topology.NodeID, candidates []topology.NodeID) (Decision, error) {
	if len(candidates) == 0 {
		return Decision{}, ErrNoCandidates
	}
	if !snap.Graph().HasNode(home) {
		return Decision{}, fmt.Errorf("%w: %s", routing.ErrUnknownNode, home)
	}
	for _, c := range candidates {
		if c == home {
			return Decision{
				Server: home,
				Path:   routing.Path{Nodes: []topology.NodeID{home}},
				Local:  true,
			}, nil
		}
	}
	k := v.NormalizationK
	if k == 0 {
		k = topology.DefaultNormalizationK
	}
	weights, err := snap.Weights(k)
	if err != nil {
		return Decision{}, fmt.Errorf("vra weights: %w", err)
	}
	tree, err := routing.ShortestPaths(snap.Graph(), routing.CostTable(weights), home)
	if err != nil {
		return Decision{}, fmt.Errorf("vra dijkstra: %w", err)
	}
	best, err := routing.CheapestTo(tree, candidates)
	if err != nil {
		if errors.Is(err, routing.ErrUnreachable) {
			return Decision{}, fmt.Errorf("%w: %v", ErrNoReachable, err)
		}
		return Decision{}, err
	}
	return Decision{Server: best.Dest(), Path: best, Cost: best.Cost}, nil
}

// SelectTrace runs the VRA like Select but also returns the Dijkstra step
// trace (nil when the decision was local), powering the Table 4/5 printers.
func (v VRA) SelectTrace(snap *topology.Snapshot, home topology.NodeID, candidates []topology.NodeID) (Decision, []routing.TraceStep, error) {
	if len(candidates) == 0 {
		return Decision{}, nil, ErrNoCandidates
	}
	for _, c := range candidates {
		if c == home {
			d, err := v.Select(snap, home, candidates)
			return d, nil, err
		}
	}
	k := v.NormalizationK
	if k == 0 {
		k = topology.DefaultNormalizationK
	}
	weights, err := snap.Weights(k)
	if err != nil {
		return Decision{}, nil, fmt.Errorf("vra weights: %w", err)
	}
	steps, tree, err := routing.DijkstraTrace(snap.Graph(), routing.CostTable(weights), home)
	if err != nil {
		return Decision{}, nil, fmt.Errorf("vra dijkstra: %w", err)
	}
	best, err := routing.CheapestTo(tree, candidates)
	if err != nil {
		if errors.Is(err, routing.ErrUnreachable) {
			return Decision{}, steps, fmt.Errorf("%w: %v", ErrNoReachable, err)
		}
		return Decision{}, steps, err
	}
	return Decision{Server: best.Dest(), Path: best, Cost: best.Cost}, steps, nil
}
