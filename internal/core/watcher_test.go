package core

import (
	"testing"
	"time"

	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/topology"
)

// waitUpdate receives the next update with a timeout.
func waitUpdate(t *testing.T, w *Watcher) Decision {
	t.Helper()
	select {
	case dec, ok := <-w.Updates():
		if !ok {
			t.Fatal("updates channel closed")
		}
		return dec
	case <-time.After(5 * time.Second):
		t.Fatal("no update within timeout")
		return Decision{}
	}
}

func TestWatcherTracksOptimum(t *testing.T) {
	title := movie(1000)
	d, p := plannerFixture(t, grnet.At10am, title, grnet.Thessaloniki, grnet.Xanthi)
	w, err := NewWatcher(p, grnet.Patra, title.Name, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()

	// Initial decision: Experiment B's Thessaloniki.
	first := waitUpdate(t, w)
	if first.Server != grnet.Thessaloniki {
		t.Fatalf("initial = %s", first.Server)
	}
	cur, ok := w.Current()
	if !ok || cur.Server != grnet.Thessaloniki {
		t.Fatalf("Current = %+v, %v", cur, ok)
	}

	// Congest the Ioannina route: the optimum flips to Xanthi and the
	// watcher reports it.
	for _, pair := range [][2]topology.NodeID{
		{grnet.Patra, grnet.Ioannina},
		{grnet.Thessaloniki, grnet.Ioannina},
		{grnet.Thessaloniki, grnet.Athens},
	} {
		id := topology.MakeLinkID(pair[0], pair[1])
		l, err := d.Graph().LinkByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.UpsertLinkStats(id, l.CapacityMbps, t0.Add(time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	// Drain updates until the flip arrives (intermediate stats updates may
	// deliver unchanged decisions that are filtered, or partial flips).
	deadline := time.After(5 * time.Second)
	for {
		select {
		case dec, ok := <-w.Updates():
			if !ok {
				t.Fatal("updates closed early")
			}
			if dec.Server == grnet.Xanthi {
				return // success
			}
		case <-deadline:
			cur, _ := w.Current()
			t.Fatalf("optimum never flipped; current = %+v", cur)
		}
	}
}

func TestWatcherIgnoresIrrelevantHoldings(t *testing.T) {
	title := movie(1000)
	d, p := plannerFixture(t, grnet.At10am, title, grnet.Xanthi)
	if err := d.Catalog().AddTitle(movie2("other")); err != nil {
		t.Fatal(err)
	}
	w, err := NewWatcher(p, grnet.Patra, title.Name, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	_ = waitUpdate(t, w) // initial

	// A holding change for a different title must not produce an update.
	if err := d.SetHolding(grnet.Athens, "other", true, t0); err != nil {
		t.Fatal(err)
	}
	select {
	case dec := <-w.Updates():
		t.Fatalf("irrelevant event produced update %+v", dec)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestWatcherHoldingChangeFlipsDecision(t *testing.T) {
	title := movie(1000)
	d, p := plannerFixture(t, grnet.At10am, title, grnet.Xanthi)
	w, err := NewWatcher(p, grnet.Patra, title.Name, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	first := waitUpdate(t, w)
	if first.Server != grnet.Xanthi {
		t.Fatalf("initial = %s", first.Server)
	}
	// A cheaper replica appears (Thessaloniki at 10am): the watcher
	// reports the new optimum.
	if err := d.SetHolding(grnet.Thessaloniki, title.Name, true, t0); err != nil {
		t.Fatal(err)
	}
	next := waitUpdate(t, w)
	if next.Server != grnet.Thessaloniki {
		t.Fatalf("after holding change = %s", next.Server)
	}
}

func TestWatcherStopClosesUpdates(t *testing.T) {
	title := movie(1000)
	_, p := plannerFixture(t, grnet.At8am, title, grnet.Xanthi)
	w, err := NewWatcher(p, grnet.Patra, title.Name, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = waitUpdate(t, w)
	w.Stop()
	if _, ok := <-w.Updates(); ok {
		t.Fatal("updates not closed after Stop")
	}
}

func TestNewWatcherValidation(t *testing.T) {
	if _, err := NewWatcher(nil, grnet.Patra, "x", 1); err == nil {
		t.Fatal("nil planner accepted")
	}
}

func TestWatcherUnservableTitleHasNoInitial(t *testing.T) {
	title := movie(1000)
	_, p := plannerFixture(t, grnet.At8am, title) // no holders
	w, err := NewWatcher(p, grnet.Patra, title.Name, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	if _, ok := w.Current(); ok {
		t.Fatal("unservable title produced a decision")
	}
}

// movie2 builds a second distinct title for holder-noise tests.
func movie2(name string) media.Title {
	return media.Title{Name: name, SizeBytes: 1000, BitrateMbps: 1.5}
}
