package core

import (
	"errors"
	"fmt"

	"dvod/internal/db"
	"dvod/internal/media"
	"dvod/internal/striping"
	"dvod/internal/topology"
)

// Planner binds a Selector to the database module: it resolves a title's
// candidate servers from the full-access catalog, builds the network
// snapshot from the limited-access link statistics, and delegates the
// choice. This is the application the paper describes as running "each time
// the user places a request".
type Planner struct {
	db       *db.DB
	selector Selector
	// available filters candidates (the VRA's "poll all of those servers
	// to find out which ones can provide the video" step). Nil admits all.
	available func(topology.NodeID) bool
	// committed reports broker-reserved Mbps per link, folded into the
	// network view by the bandwidth-aware planning path. Nil means no
	// reservations are tracked.
	committed func(topology.LinkID) float64
	// nodePenalty reports a [0, 1] health penalty per node (normally a
	// faults.HealthScores failure rate). Every planning path raises the
	// utilization of the penalized node's adjacent links by the penalty, so
	// the LVN weights of equation (1) steer Dijkstra around peers observed
	// failing — before heartbeats or breakers remove them outright. Nil
	// means no health feedback.
	nodePenalty func(topology.NodeID) float64
}

// NewPlanner builds a planner. The availability filter may be nil.
func NewPlanner(d *db.DB, s Selector, available func(topology.NodeID) bool) (*Planner, error) {
	if d == nil {
		return nil, errors.New("planner: nil db")
	}
	if s == nil {
		return nil, errors.New("planner: nil selector")
	}
	return &Planner{db: d, selector: s, available: available}, nil
}

// Selector returns the underlying policy.
func (p *Planner) Selector() Selector { return p.selector }

// SetCommitted installs a source of per-link committed bandwidth (normally
// an admission broker's LinkCommittedMbps). PlanBandwidth adds it on top of
// the SNMP-observed utilization so reserved-but-not-yet-visible sessions
// already weigh routes down.
func (p *Planner) SetCommitted(f func(topology.LinkID) float64) { p.committed = f }

// SetNodePenalty installs the health-score feedback hook (see nodePenalty).
// Install it before serving; the planner reads it without synchronization.
func (p *Planner) SetNodePenalty(f func(topology.NodeID) float64) { p.nodePenalty = f }

// healthView folds the node-penalty hook into a snapshot: each link's
// utilization rises by the larger of its endpoints' penalties. A fully
// failing peer (penalty 1) makes its links look saturated, which both
// inflates their LVN cost and lowers the headroom QoS checks see.
func (p *Planner) healthView(snap *topology.Snapshot) (*topology.Snapshot, error) {
	if p.nodePenalty == nil {
		return snap, nil
	}
	var extra map[topology.LinkID]float64
	for _, l := range snap.Graph().Links() {
		pen := p.nodePenalty(l.A)
		if pb := p.nodePenalty(l.B); pb > pen {
			pen = pb
		}
		if pen > 0 {
			if extra == nil {
				extra = make(map[topology.LinkID]float64)
			}
			extra[l.ID] = pen
		}
	}
	if extra == nil {
		return snap, nil
	}
	return snap.WithExtraUtilization(extra)
}

// Candidates resolves the servers currently able to provide the title. It
// reads the catalog's published holder view — a lock-free atomic load — and
// returns a fresh slice the caller may reorder or filter in place.
func (p *Planner) Candidates(title string) ([]topology.NodeID, error) {
	holders, err := p.db.Catalog().HoldersView(title)
	if err != nil {
		return nil, err
	}
	out := make([]topology.NodeID, 0, len(holders))
	for _, h := range holders {
		if p.available == nil || p.available(h) {
			out = append(out, h)
		}
	}
	return out, nil
}

// Plan runs one selection for a client homed at home requesting the title.
func (p *Planner) Plan(home topology.NodeID, title string) (Decision, error) {
	return p.PlanExcluding(home, title, nil)
}

// PlanExcluding plans like Plan but additionally skips the listed servers —
// the retry path when a chosen server fails mid-delivery and the next-best
// replica must take over before the health tracker notices.
func (p *Planner) PlanExcluding(home topology.NodeID, title string, exclude map[topology.NodeID]bool) (Decision, error) {
	candidates, err := p.Candidates(title)
	if err != nil {
		return Decision{}, err
	}
	if len(exclude) > 0 {
		kept := candidates[:0]
		for _, c := range candidates {
			if !exclude[c] {
				kept = append(kept, c)
			}
		}
		candidates = kept
	}
	if len(candidates) == 0 {
		return Decision{}, fmt.Errorf("%w: %s", ErrNoCandidates, title)
	}
	snap, err := p.db.Snapshot()
	if err != nil {
		return Decision{}, fmt.Errorf("plan snapshot: %w", err)
	}
	if snap, err = p.healthView(snap); err != nil {
		return Decision{}, fmt.Errorf("plan health view: %w", err)
	}
	return p.selector.Select(snap, home, candidates)
}

// PlanBandwidth plans like PlanExcluding but is admission-aware: the network
// view folds in broker-committed bandwidth (SetCommitted), and candidates
// whose cheapest route lacks the residual headroom to carry bitrateMbps are
// skipped, next-cheapest first. It returns a *QoSError (wrapping
// ErrInsufficientBandwidth) when no replica's route can carry the rate.
func (p *Planner) PlanBandwidth(home topology.NodeID, title string, bitrateMbps float64,
	exclude map[topology.NodeID]bool) (Decision, error) {
	candidates, err := p.Candidates(title)
	if err != nil {
		return Decision{}, err
	}
	if len(exclude) > 0 {
		kept := candidates[:0]
		for _, c := range candidates {
			if !exclude[c] {
				kept = append(kept, c)
			}
		}
		candidates = kept
	}
	if len(candidates) == 0 {
		return Decision{}, fmt.Errorf("%w: %s", ErrNoCandidates, title)
	}
	snap, err := p.db.Snapshot()
	if err != nil {
		return Decision{}, fmt.Errorf("plan snapshot: %w", err)
	}
	if p.committed != nil {
		extra := make(map[topology.LinkID]float64)
		for _, l := range snap.Graph().Links() {
			if mbps := p.committed(l.ID); mbps > 0 {
				extra[l.ID] = mbps / l.CapacityMbps
			}
		}
		if snap, err = snap.WithExtraUtilization(extra); err != nil {
			return Decision{}, fmt.Errorf("plan committed view: %w", err)
		}
	}
	if snap, err = p.healthView(snap); err != nil {
		return Decision{}, fmt.Errorf("plan health view: %w", err)
	}
	return SelectWithQoS(p.selector, snap, home, candidates, bitrateMbps)
}

// ClusterDecision is one cluster's delivery decision within a session.
type ClusterDecision struct {
	// Cluster is the zero-based cluster index.
	Cluster int
	// Offset and Length locate the cluster's bytes within the title.
	Offset, Length int64
	// Decision is the selection made at this cluster boundary.
	Decision Decision
	// Switched is true when the server differs from the previous
	// cluster's (the paper's mid-stream re-routing event).
	Switched bool
}

// Session delivers one title to one client cluster by cluster, re-running
// the planner at every boundary — the paper's continuous re-evaluation: "if
// the optimal server changes due to the change of certain network features
// during the downloading of a certain cluster, then the next cluster will be
// requested by the new optimal server".
type Session struct {
	planner *Planner
	home    topology.NodeID
	title   media.Title
	layout  striping.Layout

	next      int
	last      *Decision
	decisions []ClusterDecision
	switches  int
}

// NewSession starts a session for the title with the given cluster size.
// Cluster boundaries follow the striping layout, so delivery clusters and
// storage stripes coincide (the paper couples the two through c).
func NewSession(p *Planner, home topology.NodeID, t media.Title, clusterBytes int64) (*Session, error) {
	if p == nil {
		return nil, errors.New("session: nil planner")
	}
	layout, err := striping.NewLayout(t, clusterBytes, 1)
	if err != nil {
		return nil, err
	}
	if !p.db.Graph().HasNode(home) {
		return nil, fmt.Errorf("session: %w: %s", topology.ErrNodeUnknown, home)
	}
	return &Session{planner: p, home: home, title: t, layout: layout}, nil
}

// Title returns the session's title.
func (s *Session) Title() media.Title { return s.title }

// Home returns the client's home server.
func (s *Session) Home() topology.NodeID { return s.home }

// NumClusters returns the total clusters to deliver.
func (s *Session) NumClusters() int { return s.layout.NumParts() }

// Done reports whether every cluster has been planned.
func (s *Session) Done() bool { return s.next >= s.layout.NumParts() }

// PlanNext plans the delivery of the next cluster using the current network
// state and advances the session. It fails without advancing when no server
// can provide the title right now.
func (s *Session) PlanNext() (ClusterDecision, error) {
	if s.Done() {
		return ClusterDecision{}, errors.New("session: all clusters planned")
	}
	dec, err := s.planner.Plan(s.home, s.title.Name)
	if err != nil {
		return ClusterDecision{}, err
	}
	off, length, err := s.layout.PartRange(s.next)
	if err != nil {
		return ClusterDecision{}, err
	}
	cd := ClusterDecision{
		Cluster:  s.next,
		Offset:   off,
		Length:   length,
		Decision: dec,
	}
	if s.last != nil && s.last.Server != dec.Server {
		cd.Switched = true
		s.switches++
	}
	s.last = &dec
	s.decisions = append(s.decisions, cd)
	s.next++
	return cd, nil
}

// Switches returns how many mid-stream server switches occurred so far.
func (s *Session) Switches() int { return s.switches }

// Decisions returns a copy of the per-cluster decisions made so far.
func (s *Session) Decisions() []ClusterDecision {
	return append([]ClusterDecision(nil), s.decisions...)
}
