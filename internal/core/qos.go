package core

import (
	"errors"
	"fmt"
	"math"

	"dvod/internal/routing"
	"dvod/internal/topology"
)

// The paper's QoS goal: "a minimum QoS, which should be equal to the minimum
// video frame rate for which a video can be considered decent". Concretely,
// the chosen route must have enough residual bandwidth to sustain the
// title's bitrate, or the request should not be admitted on that route.

// ErrInsufficientBandwidth reports a route that cannot sustain a bitrate.
var ErrInsufficientBandwidth = errors.New("route cannot sustain bitrate")

// QoSError carries the admission-check details.
type QoSError struct {
	// NeededMbps is the title bitrate.
	NeededMbps float64
	// AvailableMbps is the route's bottleneck residual bandwidth.
	AvailableMbps float64
	// Bottleneck is the limiting link.
	Bottleneck topology.LinkID
}

// Error implements error.
func (e *QoSError) Error() string {
	return fmt.Sprintf("route needs %.3f Mbps but bottleneck %s has %.3f Mbps free",
		e.NeededMbps, e.Bottleneck, e.AvailableMbps)
}

// Unwrap lets errors.Is match ErrInsufficientBandwidth.
func (e *QoSError) Unwrap() error { return ErrInsufficientBandwidth }

// ResidualMbps returns the minimum residual bandwidth along the path —
// capacity × (1 − utilization) at the bottleneck — and the bottleneck link.
// A zero-hop (local) path has infinite residual.
func ResidualMbps(snap *topology.Snapshot, path routing.Path) (float64, topology.LinkID, error) {
	if path.Hops() == 0 {
		return math.Inf(1), "", nil
	}
	residual := math.Inf(1)
	var bottleneck topology.LinkID
	for _, id := range path.Links() {
		l, err := snap.Graph().LinkByID(id)
		if err != nil {
			return 0, "", err
		}
		free := l.CapacityMbps * (1 - snap.Utilization(id))
		if free < 0 {
			free = 0
		}
		if free < residual {
			residual = free
			bottleneck = id
		}
	}
	return residual, bottleneck, nil
}

// CheckQoS verifies the route can sustain the bitrate, returning a *QoSError
// (matching ErrInsufficientBandwidth) when it cannot.
func CheckQoS(snap *topology.Snapshot, path routing.Path, bitrateMbps float64) error {
	if bitrateMbps <= 0 {
		return fmt.Errorf("non-positive bitrate %g", bitrateMbps)
	}
	residual, bottleneck, err := ResidualMbps(snap, path)
	if err != nil {
		return err
	}
	if residual < bitrateMbps {
		return &QoSError{
			NeededMbps:    bitrateMbps,
			AvailableMbps: residual,
			Bottleneck:    bottleneck,
		}
	}
	return nil
}

// SelectWithQoS runs the selector's policy but admits only candidates whose
// route passes the QoS check, trying them cheapest-first. It returns
// ErrInsufficientBandwidth (wrapped) when every reachable candidate fails.
//
// For the VRA this implements the paper's "enforce routing rather than wait
// for a best effort algorithm": the request is steered to a replica that can
// actually sustain playback, or refused outright.
func SelectWithQoS(sel Selector, snap *topology.Snapshot, home topology.NodeID,
	candidates []topology.NodeID, bitrateMbps float64) (Decision, error) {
	remaining := append([]topology.NodeID(nil), candidates...)
	var lastQoS error
	for len(remaining) > 0 {
		dec, err := sel.Select(snap, home, remaining)
		if err != nil {
			if lastQoS != nil && (errors.Is(err, ErrNoCandidates) || errors.Is(err, ErrNoReachable)) {
				return Decision{}, lastQoS
			}
			return Decision{}, err
		}
		if err := CheckQoS(snap, dec.Path, bitrateMbps); err != nil {
			if !errors.Is(err, ErrInsufficientBandwidth) {
				return Decision{}, err
			}
			lastQoS = err
			// Drop the failing candidate and retry with the rest.
			kept := remaining[:0]
			for _, c := range remaining {
				if c != dec.Server {
					kept = append(kept, c)
				}
			}
			remaining = kept
			continue
		}
		return dec, nil
	}
	if lastQoS != nil {
		return Decision{}, lastQoS
	}
	return Decision{}, ErrNoCandidates
}
