// Package baseline provides the comparison server-selection policies the
// extension studies measure the VRA against:
//
//   - MinHop: classic shortest-path-by-hop-count routing, blind to load;
//   - Random: pick any replica uniformly at random, route by hop count;
//   - Static: always the same (lexicographically first) replica — a fixed
//     primary server, the pre-CDN deployment style.
//
// All honor the home-server short circuit so the comparison isolates the
// remote-selection policy itself.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"dvod/internal/core"
	"dvod/internal/routing"
	"dvod/internal/topology"
)

// localOrNil returns the local-service decision when home holds the title.
func localOrNil(home topology.NodeID, candidates []topology.NodeID) *core.Decision {
	for _, c := range candidates {
		if c == home {
			return &core.Decision{
				Server: home,
				Path:   routing.Path{Nodes: []topology.NodeID{home}},
				Local:  true,
			}
		}
	}
	return nil
}

// minHopPath computes the fewest-hops path from home to dst.
func minHopTree(snap *topology.Snapshot, home topology.NodeID) (*routing.Tree, error) {
	return routing.ShortestPaths(snap.Graph(), routing.MinHopWeights(snap.Graph()), home)
}

// MinHop selects the candidate with the fewest hops from the home server.
type MinHop struct{}

var _ core.Selector = MinHop{}

// Name implements core.Selector.
func (MinHop) Name() string { return "minhop" }

// Select implements core.Selector.
func (MinHop) Select(snap *topology.Snapshot, home topology.NodeID, candidates []topology.NodeID) (core.Decision, error) {
	if len(candidates) == 0 {
		return core.Decision{}, core.ErrNoCandidates
	}
	if d := localOrNil(home, candidates); d != nil {
		return *d, nil
	}
	tree, err := minHopTree(snap, home)
	if err != nil {
		return core.Decision{}, fmt.Errorf("minhop: %w", err)
	}
	best, err := routing.CheapestTo(tree, candidates)
	if err != nil {
		return core.Decision{}, fmt.Errorf("minhop: %w", err)
	}
	return core.Decision{Server: best.Dest(), Path: best, Cost: best.Cost}, nil
}

// Random selects a uniformly random reachable candidate and routes to it by
// hop count. It is safe for concurrent use.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

var _ core.Selector = (*Random)(nil)

// NewRandom builds the policy with a deterministic seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements core.Selector.
func (*Random) Name() string { return "random" }

// Select implements core.Selector.
func (r *Random) Select(snap *topology.Snapshot, home topology.NodeID, candidates []topology.NodeID) (core.Decision, error) {
	if len(candidates) == 0 {
		return core.Decision{}, core.ErrNoCandidates
	}
	if d := localOrNil(home, candidates); d != nil {
		return *d, nil
	}
	tree, err := minHopTree(snap, home)
	if err != nil {
		return core.Decision{}, fmt.Errorf("random: %w", err)
	}
	reachable := make([]topology.NodeID, 0, len(candidates))
	for _, c := range candidates {
		if tree.Reachable(c) {
			reachable = append(reachable, c)
		}
	}
	if len(reachable) == 0 {
		return core.Decision{}, core.ErrNoReachable
	}
	sort.Slice(reachable, func(i, j int) bool { return reachable[i] < reachable[j] })
	r.mu.Lock()
	pick := reachable[r.rng.Intn(len(reachable))]
	r.mu.Unlock()
	path, err := tree.PathTo(pick)
	if err != nil {
		return core.Decision{}, fmt.Errorf("random: %w", err)
	}
	return core.Decision{Server: pick, Path: path, Cost: path.Cost}, nil
}

// Static always selects the lexicographically first reachable candidate —
// a fixed primary replica.
type Static struct{}

var _ core.Selector = Static{}

// Name implements core.Selector.
func (Static) Name() string { return "static" }

// Select implements core.Selector.
func (Static) Select(snap *topology.Snapshot, home topology.NodeID, candidates []topology.NodeID) (core.Decision, error) {
	if len(candidates) == 0 {
		return core.Decision{}, core.ErrNoCandidates
	}
	if d := localOrNil(home, candidates); d != nil {
		return *d, nil
	}
	tree, err := minHopTree(snap, home)
	if err != nil {
		return core.Decision{}, fmt.Errorf("static: %w", err)
	}
	sorted := append([]topology.NodeID(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, c := range sorted {
		if !tree.Reachable(c) {
			continue
		}
		path, err := tree.PathTo(c)
		if err != nil {
			continue
		}
		return core.Decision{Server: c, Path: path, Cost: path.Cost}, nil
	}
	return core.Decision{}, core.ErrNoReachable
}

// ByName returns the selector with the given policy name; the VRA itself is
// included so harnesses can look every policy up uniformly.
func ByName(name string, seed int64) (core.Selector, error) {
	switch name {
	case "vra":
		return core.VRA{}, nil
	case "minhop":
		return MinHop{}, nil
	case "random":
		return NewRandom(seed), nil
	case "static":
		return Static{}, nil
	default:
		return nil, errors.New("unknown policy " + name)
	}
}

// Names lists the available policy names, VRA first.
func Names() []string { return []string{"vra", "minhop", "random", "static"} }
