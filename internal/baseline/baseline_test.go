package baseline

import (
	"errors"
	"testing"

	"dvod/internal/core"
	"dvod/internal/grnet"
	"dvod/internal/topology"
)

func snap8(t *testing.T) *topology.Snapshot {
	t.Helper()
	s, err := grnet.Snapshot(grnet.At8am)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 4 || names[0] != "vra" {
		t.Fatalf("Names = %v", names)
	}
	for _, n := range names {
		s, err := ByName(n, 1)
		if err != nil {
			t.Fatalf("ByName(%s): %v", n, err)
		}
		if s.Name() != n {
			t.Fatalf("ByName(%s).Name() = %s", n, s.Name())
		}
	}
	if _, err := ByName("bogus", 1); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestMinHopPicksFewestHops(t *testing.T) {
	s := snap8(t)
	// From Patra: Athens is 1 hop, Xanthi 3 hops.
	d, err := MinHop{}.Select(s, grnet.Patra, []topology.NodeID{grnet.Xanthi, grnet.Athens})
	if err != nil {
		t.Fatal(err)
	}
	if d.Server != grnet.Athens || d.Path.Hops() != 1 {
		t.Fatalf("decision = %+v, want Athens at 1 hop", d)
	}
}

func TestMinHopIgnoresLoad(t *testing.T) {
	// Unlike the VRA, min-hop picks the heavily loaded 1-hop route.
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"C", "S", "R"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	direct, err := g.AddLink("C", "S", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink("C", "R", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink("R", "S", 2); err != nil {
		t.Fatal(err)
	}
	snap, err := topology.NewSnapshot(g, map[topology.LinkID]float64{direct: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	d, err := MinHop{}.Select(snap, "C", []topology.NodeID{"S"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Path.String() != "C,S" {
		t.Fatalf("min-hop path = %s, want the (congested) direct link", d.Path)
	}
}

func TestAllPoliciesLocalShortCircuit(t *testing.T) {
	s := snap8(t)
	for _, name := range Names() {
		sel, err := ByName(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		d, err := sel.Select(s, grnet.Patra, []topology.NodeID{grnet.Xanthi, grnet.Patra})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !d.Local || d.Server != grnet.Patra {
			t.Fatalf("%s ignored local replica: %+v", name, d)
		}
	}
}

func TestAllPoliciesNoCandidates(t *testing.T) {
	s := snap8(t)
	for _, name := range Names() {
		sel, err := ByName(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sel.Select(s, grnet.Patra, nil); !errors.Is(err, core.ErrNoCandidates) {
			t.Fatalf("%s no-candidate error = %v", name, err)
		}
	}
}

func TestRandomCoversAllCandidates(t *testing.T) {
	s := snap8(t)
	r := NewRandom(42)
	cands := []topology.NodeID{grnet.Thessaloniki, grnet.Xanthi, grnet.Heraklio}
	seen := map[topology.NodeID]int{}
	for range 200 {
		d, err := r.Select(s, grnet.Patra, cands)
		if err != nil {
			t.Fatal(err)
		}
		seen[d.Server]++
		if d.Path.Source() != grnet.Patra || d.Path.Dest() != d.Server {
			t.Fatalf("path %s inconsistent with server %s", d.Path, d.Server)
		}
	}
	for _, c := range cands {
		if seen[c] == 0 {
			t.Fatalf("random never picked %s: %v", c, seen)
		}
	}
}

func TestRandomDeterministicSeed(t *testing.T) {
	s := snap8(t)
	cands := []topology.NodeID{grnet.Thessaloniki, grnet.Xanthi, grnet.Heraklio}
	a, b := NewRandom(9), NewRandom(9)
	for range 50 {
		da, err := a.Select(s, grnet.Patra, cands)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Select(s, grnet.Patra, cands)
		if err != nil {
			t.Fatal(err)
		}
		if da.Server != db.Server {
			t.Fatal("same seed diverged")
		}
	}
}

func TestStaticAlwaysFirst(t *testing.T) {
	s := snap8(t)
	for range 5 {
		d, err := Static{}.Select(s, grnet.Patra,
			[]topology.NodeID{grnet.Xanthi, grnet.Thessaloniki, grnet.Heraklio})
		if err != nil {
			t.Fatal(err)
		}
		// Lexicographically first: U4 (Thessaloniki) < U5 < U6.
		if d.Server != grnet.Thessaloniki {
			t.Fatalf("static picked %s, want U4", d.Server)
		}
	}
}

func TestPoliciesUnreachableCandidates(t *testing.T) {
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B", "island"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddLink("A", "B", 2); err != nil {
		t.Fatal(err)
	}
	snap, err := topology.NewSnapshot(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"minhop", "random", "static"} {
		sel, err := ByName(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sel.Select(snap, "A", []topology.NodeID{"island"}); err == nil {
			t.Fatalf("%s accepted unreachable-only candidates", name)
		}
		// Mixed: reachable B wins.
		d, err := sel.Select(snap, "A", []topology.NodeID{"island", "B"})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Server != "B" {
			t.Fatalf("%s picked %s, want B", name, d.Server)
		}
	}
}
