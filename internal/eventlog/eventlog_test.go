package eventlog

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)

func TestEmitReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	events := []Event{
		{At: t0, Kind: KindRequest, Node: "U2", Title: "zorba"},
		{At: t0.Add(time.Second), Kind: KindDecision, Node: "U2", Title: "zorba",
			Server: "U4", Path: "U2,U3,U4", Value: 1.007},
		{At: t0.Add(2 * time.Second), Kind: KindDelivered, Cluster: 3, Server: "U4"},
	}
	for _, e := range events {
		if err := l.Emit(e); err != nil {
			t.Fatal(err)
		}
	}
	if l.Count() != 3 {
		t.Fatalf("Count = %d", l.Count())
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d events", len(got))
	}
	if got[1].Server != "U4" || got[1].Value != 1.007 || !got[1].At.Equal(t0.Add(time.Second)) {
		t.Fatalf("event = %+v", got[1])
	}
}

func TestNilLogIsNoop(t *testing.T) {
	var l *Log
	if err := l.Emit(Event{Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	if l.Count() != 0 {
		t.Fatal("nil count")
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestReadBadInput(t *testing.T) {
	if _, err := Read(strings.NewReader("{bad json")); err == nil {
		t.Fatal("bad input accepted")
	}
	got, err := Read(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %d events", err, len(got))
	}
}

func TestWriteCSV(t *testing.T) {
	events := []Event{
		{At: t0, Kind: KindRequest, Node: "U2", Title: "a b,c"},
		{At: t0, Kind: KindSessionDone, Value: 12.5},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "at,kind,node") {
		t.Fatalf("header = %s", lines[0])
	}
	if !strings.Contains(lines[1], `"a b,c"`) {
		t.Fatalf("quoting wrong: %s", lines[1])
	}
	if !strings.Contains(lines[2], "12.5") {
		t.Fatalf("value missing: %s", lines[2])
	}
}

func TestFilter(t *testing.T) {
	events := []Event{
		{Kind: KindRequest}, {Kind: KindSwitch}, {Kind: KindRequest},
	}
	got := Filter(events, KindRequest)
	if len(got) != 2 {
		t.Fatalf("filtered = %d", len(got))
	}
	if len(Filter(events, KindStall)) != 0 {
		t.Fatal("phantom events")
	}
}

func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 100 {
				_ = l.Emit(Event{At: t0, Kind: KindDelivered})
			}
		}()
	}
	wg.Wait()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 800 {
		t.Fatalf("events = %d, want 800 (no interleaving corruption)", len(got))
	}
}
