// Package eventlog records structured service events — requests, routing
// decisions, mid-stream switches, deliveries, failures — as NDJSON, with a
// CSV export for analysis tooling. The replay engine and experiments emit
// into it; a nil *Log is a valid no-op sink so instrumentation costs nothing
// when disabled.
package eventlog

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"dvod/internal/topology"
)

// Kind labels an event.
type Kind string

// The event kinds the service emits.
const (
	// KindRequest: a client asked for a title (Node = home).
	KindRequest Kind = "request"
	// KindDecision: a routing decision was made (Server, Value = cost).
	KindDecision Kind = "decision"
	// KindSwitch: a session changed servers mid-stream.
	KindSwitch Kind = "switch"
	// KindDelivered: one cluster arrived (Cluster, Server).
	KindDelivered Kind = "delivered"
	// KindSessionDone: a session completed (Value = elapsed seconds).
	KindSessionDone Kind = "session-done"
	// KindBlocked: a request found no admissible route.
	KindBlocked Kind = "blocked"
	// KindStall: playback stalled (Value = stall seconds).
	KindStall Kind = "stall"
)

// Event is one log record.
type Event struct {
	At      time.Time       `json:"at"`
	Kind    Kind            `json:"kind"`
	Node    topology.NodeID `json:"node,omitempty"`
	Title   string          `json:"title,omitempty"`
	Cluster int             `json:"cluster,omitempty"`
	Server  topology.NodeID `json:"server,omitempty"`
	Path    string          `json:"path,omitempty"`
	Value   float64         `json:"value,omitempty"`
}

// Log is a concurrent NDJSON event sink. A nil *Log discards events.
type Log struct {
	mu    sync.Mutex
	w     *bufio.Writer
	enc   *json.Encoder
	count int64
}

// New builds a log writing NDJSON to w.
func New(w io.Writer) *Log {
	bw := bufio.NewWriter(w)
	return &Log{w: bw, enc: json.NewEncoder(bw)}
}

// Emit appends one event. Nil-safe.
func (l *Log) Emit(e Event) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.enc.Encode(e); err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	l.count++
	return nil
}

// Count returns how many events were emitted. Nil-safe.
func (l *Log) Count() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Flush writes buffered events through to the underlying writer. Nil-safe.
func (l *Log) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Flush()
}

// Read parses an NDJSON event stream.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("eventlog read: %w", err)
		}
		out = append(out, e)
	}
}

// csvHeader is the column layout of WriteCSV.
var csvHeader = []string{"at", "kind", "node", "title", "cluster", "server", "path", "value"}

// WriteCSV exports events in a spreadsheet-friendly layout.
func WriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("eventlog csv: %w", err)
	}
	for _, e := range events {
		rec := []string{
			e.At.Format(time.RFC3339Nano),
			string(e.Kind),
			string(e.Node),
			e.Title,
			strconv.Itoa(e.Cluster),
			string(e.Server),
			e.Path,
			strconv.FormatFloat(e.Value, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("eventlog csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Filter returns the events of one kind, preserving order.
func Filter(events []Event, kind Kind) []Event {
	var out []Event
	for _, e := range events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
