// Package catalog is the full-access view of the service database: the video
// titles the service offers and which video servers currently hold each one.
// It backs the user-facing web module's browse/search functions and supplies
// the VRA with its candidate-server lists.
//
// # Concurrency model
//
// The catalog is sharded by title hash. Each shard publishes an immutable
// view through an atomic.Pointer: every read (Title, Holders, HoldersView,
// Search, ...) loads the current view and touches no mutex, so the watch-
// planning hot path scales with cores instead of serializing on a catalog
// lock. Mutations (AddTitle, SetHolding) take the owning shard's writer lock,
// copy that shard's view, apply the change, and atomically publish the new
// view (copy-on-write). Readers therefore always see a consistent view that
// is at most one publish behind. See DESIGN.md "Concurrency model &
// sharding".
package catalog

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dvod/internal/media"
	"dvod/internal/topology"
)

// Errors reported by the catalog.
var (
	ErrTitleExists  = errors.New("title already in catalog")
	ErrTitleUnknown = errors.New("title not in catalog")
)

// DefaultShards is the shard count New uses. Shards only bound writer
// contention — reads never lock regardless of the count.
const DefaultShards = 8

// shardSeed keys the title-hash shard function. One process-wide seed keeps
// shard assignment stable across catalogs within a run.
var shardSeed = maphash.MakeSeed()

// shardView is one shard's immutable published state. The maps and the holder
// slices they point at are never mutated after publish; writers replace the
// whole view.
type shardView struct {
	titles map[string]media.Title
	// holders maps title → sorted holder list. The slices are shared with
	// readers via HoldersView and must be treated as read-only.
	holders map[string][]topology.NodeID
}

// shard is one copy-on-write unit: mu serializes writers, view is the
// lock-free read path.
type shard struct {
	mu   sync.Mutex
	view atomic.Pointer[shardView]
}

// Catalog is the sharded title/holder store. All methods are safe for
// concurrent use; read methods acquire no locks.
type Catalog struct {
	shards []*shard
}

// New returns an empty catalog with DefaultShards shards.
func New() *Catalog { return NewSharded(DefaultShards) }

// NewSharded returns an empty catalog with n shards (n < 1 is clamped to 1).
// More shards reduce writer contention; the read path is lock-free at any
// count.
func NewSharded(n int) *Catalog {
	if n < 1 {
		n = 1
	}
	c := &Catalog{shards: make([]*shard, n)}
	for i := range c.shards {
		s := &shard{}
		s.view.Store(&shardView{
			titles:  map[string]media.Title{},
			holders: map[string][]topology.NodeID{},
		})
		c.shards[i] = s
	}
	return c
}

// shardFor hashes a title name to its owning shard.
func (c *Catalog) shardFor(name string) *shard {
	return c.shards[maphash.String(shardSeed, name)%uint64(len(c.shards))]
}

// clone copies a shard view's maps (not the holder slices — those are
// immutable and republished by reference until the holding itself changes).
func (v *shardView) clone() *shardView {
	nv := &shardView{
		titles:  make(map[string]media.Title, len(v.titles)+1),
		holders: make(map[string][]topology.NodeID, len(v.holders)+1),
	}
	for k, t := range v.titles {
		nv.titles[k] = t
	}
	for k, h := range v.holders {
		nv.holders[k] = h
	}
	return nv
}

// AddTitle registers a new title. Safe for concurrent use (takes the title's
// shard writer lock).
func (c *Catalog) AddTitle(t media.Title) error {
	if err := t.Validate(); err != nil {
		return err
	}
	s := c.shardFor(t.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.view.Load()
	if _, ok := v.titles[t.Name]; ok {
		return fmt.Errorf("%w: %s", ErrTitleExists, t.Name)
	}
	nv := v.clone()
	nv.titles[t.Name] = t
	nv.holders[t.Name] = nil
	s.view.Store(nv)
	return nil
}

// Title returns the title's metadata. Lock-free read.
func (c *Catalog) Title(name string) (media.Title, error) {
	v := c.shardFor(name).view.Load()
	t, ok := v.titles[name]
	if !ok {
		return media.Title{}, fmt.Errorf("%w: %s", ErrTitleUnknown, name)
	}
	return t, nil
}

// Titles returns all titles sorted by name. Lock-free read; the result is a
// fresh slice the caller owns.
func (c *Catalog) Titles() []media.Title {
	var out []media.Title
	for _, s := range c.shards {
		v := s.view.Load()
		for _, t := range v.titles {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NumTitles returns the catalog size. Lock-free read.
func (c *Catalog) NumTitles() int {
	n := 0
	for _, s := range c.shards {
		n += len(s.view.Load().titles)
	}
	return n
}

// Search returns titles whose name contains the query, case-insensitively,
// sorted by name. An empty query returns every title. Lock-free read.
func (c *Catalog) Search(query string) []media.Title {
	q := strings.ToLower(query)
	var out []media.Title
	for _, s := range c.shards {
		v := s.view.Load()
		for _, t := range v.titles {
			if strings.Contains(strings.ToLower(t.Name), q) {
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetHolding records whether node currently stores the title. Safe for
// concurrent use (takes the title's shard writer lock); the holder list is
// rebuilt and republished so in-flight HoldersView readers keep their
// consistent pre-change slice.
func (c *Catalog) SetHolding(node topology.NodeID, name string, holds bool) error {
	s := c.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.view.Load()
	old, ok := v.holders[name]
	if !ok {
		if _, titled := v.titles[name]; !titled {
			return fmt.Errorf("%w: %s", ErrTitleUnknown, name)
		}
	}
	present := false
	for _, h := range old {
		if h == node {
			present = true
			break
		}
	}
	if holds == present {
		return nil // no-op: keep the published view (and its slices) intact
	}
	next := make([]topology.NodeID, 0, len(old)+1)
	for _, h := range old {
		if h != node {
			next = append(next, h)
		}
	}
	if holds {
		next = append(next, node)
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
	}
	nv := v.clone()
	nv.holders[name] = next
	s.view.Store(nv)
	return nil
}

// Holds reports whether node currently stores the title. Lock-free read.
func (c *Catalog) Holds(node topology.NodeID, name string) bool {
	for _, h := range c.shardFor(name).view.Load().holders[name] {
		if h == node {
			return true
		}
	}
	return false
}

// Holders returns the servers storing the title, sorted. Lock-free read; the
// result is a fresh slice the caller owns (use HoldersView on hot paths that
// only read).
func (c *Catalog) Holders(name string) ([]topology.NodeID, error) {
	h, err := c.HoldersView(name)
	if err != nil {
		return nil, err
	}
	return append([]topology.NodeID(nil), h...), nil
}

// HoldersView returns the immutable, sorted holder list for the title
// straight from the published shard view: zero locks, zero allocation. The
// returned slice MUST NOT be modified — it is shared with every concurrent
// reader. It reflects the holdings as of the last publish.
func (c *Catalog) HoldersView(name string) ([]topology.NodeID, error) {
	v := c.shardFor(name).view.Load()
	h, ok := v.holders[name]
	if !ok {
		if _, titled := v.titles[name]; !titled {
			return nil, fmt.Errorf("%w: %s", ErrTitleUnknown, name)
		}
	}
	return h, nil
}

// TitlesHeldBy returns the names of titles the node stores, sorted.
// Lock-free read.
func (c *Catalog) TitlesHeldBy(node topology.NodeID) []string {
	var out []string
	for _, s := range c.shards {
		v := s.view.Load()
		for name, hs := range v.holders {
			for _, h := range hs {
				if h == node {
					out = append(out, name)
					break
				}
			}
		}
	}
	sort.Strings(out)
	return out
}
