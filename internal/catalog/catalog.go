// Package catalog is the full-access view of the service database: the video
// titles the service offers and which video servers currently hold each one.
// It backs the user-facing web module's browse/search functions and supplies
// the VRA with its candidate-server lists.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dvod/internal/media"
	"dvod/internal/topology"
)

// Errors reported by the catalog.
var (
	ErrTitleExists  = errors.New("title already in catalog")
	ErrTitleUnknown = errors.New("title not in catalog")
)

// Catalog is safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	titles  map[string]media.Title
	holders map[string]map[topology.NodeID]bool
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		titles:  make(map[string]media.Title),
		holders: make(map[string]map[topology.NodeID]bool),
	}
}

// AddTitle registers a new title.
func (c *Catalog) AddTitle(t media.Title) error {
	if err := t.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.titles[t.Name]; ok {
		return fmt.Errorf("%w: %s", ErrTitleExists, t.Name)
	}
	c.titles[t.Name] = t
	c.holders[t.Name] = make(map[topology.NodeID]bool)
	return nil
}

// Title returns the title's metadata.
func (c *Catalog) Title(name string) (media.Title, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.titles[name]
	if !ok {
		return media.Title{}, fmt.Errorf("%w: %s", ErrTitleUnknown, name)
	}
	return t, nil
}

// Titles returns all titles sorted by name.
func (c *Catalog) Titles() []media.Title {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]media.Title, 0, len(c.titles))
	for _, t := range c.titles {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NumTitles returns the catalog size.
func (c *Catalog) NumTitles() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.titles)
}

// Search returns titles whose name contains the query, case-insensitively,
// sorted by name. An empty query returns every title.
func (c *Catalog) Search(query string) []media.Title {
	q := strings.ToLower(query)
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []media.Title
	for _, t := range c.titles {
		if strings.Contains(strings.ToLower(t.Name), q) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetHolding records whether node currently stores the title.
func (c *Catalog) SetHolding(node topology.NodeID, name string, holds bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.holders[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrTitleUnknown, name)
	}
	if holds {
		h[node] = true
	} else {
		delete(h, node)
	}
	return nil
}

// Holds reports whether node currently stores the title.
func (c *Catalog) Holds(node topology.NodeID, name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.holders[name][node]
}

// Holders returns the servers storing the title, sorted.
func (c *Catalog) Holders(name string) ([]topology.NodeID, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h, ok := c.holders[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTitleUnknown, name)
	}
	out := make([]topology.NodeID, 0, len(h))
	for n := range h {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// TitlesHeldBy returns the names of titles the node stores, sorted.
func (c *Catalog) TitlesHeldBy(node topology.NodeID) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for name, h := range c.holders {
		if h[node] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
