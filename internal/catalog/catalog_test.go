package catalog

import (
	"errors"
	"sync"
	"testing"

	"dvod/internal/media"
	"dvod/internal/topology"
)

func title(name string) media.Title {
	return media.Title{Name: name, SizeBytes: 100, BitrateMbps: 1.5}
}

func TestAddAndLookup(t *testing.T) {
	c := New()
	if err := c.AddTitle(title("Zorba the Greek")); err != nil {
		t.Fatalf("AddTitle: %v", err)
	}
	got, err := c.Title("Zorba the Greek")
	if err != nil {
		t.Fatalf("Title: %v", err)
	}
	if got.SizeBytes != 100 {
		t.Fatalf("Title = %+v", got)
	}
	if _, err := c.Title("missing"); !errors.Is(err, ErrTitleUnknown) {
		t.Fatalf("missing title error = %v", err)
	}
	if c.NumTitles() != 1 {
		t.Fatalf("NumTitles = %d", c.NumTitles())
	}
}

func TestAddTitleValidation(t *testing.T) {
	c := New()
	if err := c.AddTitle(media.Title{}); err == nil {
		t.Fatal("AddTitle accepted invalid title")
	}
	if err := c.AddTitle(title("dup")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTitle(title("dup")); !errors.Is(err, ErrTitleExists) {
		t.Fatalf("duplicate error = %v", err)
	}
}

func TestTitlesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"c", "a", "b"} {
		if err := c.AddTitle(title(n)); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Titles()
	if len(got) != 3 || got[0].Name != "a" || got[2].Name != "c" {
		t.Fatalf("Titles = %v", got)
	}
}

func TestSearch(t *testing.T) {
	c := New()
	for _, n := range []string{"The Matrix", "Matrix Reloaded", "Casablanca"} {
		if err := c.AddTitle(title(n)); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Search("matrix")
	if len(got) != 2 || got[0].Name != "Matrix Reloaded" || got[1].Name != "The Matrix" {
		t.Fatalf("Search(matrix) = %v", got)
	}
	if all := c.Search(""); len(all) != 3 {
		t.Fatalf("Search(\"\") returned %d titles", len(all))
	}
	if none := c.Search("zzz"); len(none) != 0 {
		t.Fatalf("Search(zzz) = %v", none)
	}
}

func TestHolders(t *testing.T) {
	c := New()
	if err := c.AddTitle(title("m")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetHolding("U2", "m", true); err != nil {
		t.Fatal(err)
	}
	if err := c.SetHolding("U1", "m", true); err != nil {
		t.Fatal(err)
	}
	if !c.Holds("U2", "m") || c.Holds("U3", "m") {
		t.Fatal("Holds wrong")
	}
	h, err := c.Holders("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 2 || h[0] != "U1" || h[1] != "U2" {
		t.Fatalf("Holders = %v", h)
	}
	if err := c.SetHolding("U2", "m", false); err != nil {
		t.Fatal(err)
	}
	h, err = c.Holders("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 1 || h[0] != "U1" {
		t.Fatalf("Holders after removal = %v", h)
	}
	if err := c.SetHolding("U1", "missing", true); !errors.Is(err, ErrTitleUnknown) {
		t.Fatalf("SetHolding unknown title error = %v", err)
	}
	if _, err := c.Holders("missing"); !errors.Is(err, ErrTitleUnknown) {
		t.Fatalf("Holders unknown title error = %v", err)
	}
}

func TestTitlesHeldBy(t *testing.T) {
	c := New()
	for _, n := range []string{"x", "y", "z"} {
		if err := c.AddTitle(title(n)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"z", "x"} {
		if err := c.SetHolding("U4", n, true); err != nil {
			t.Fatal(err)
		}
	}
	got := c.TitlesHeldBy("U4")
	if len(got) != 2 || got[0] != "x" || got[1] != "z" {
		t.Fatalf("TitlesHeldBy = %v", got)
	}
	if got := c.TitlesHeldBy("U9"); len(got) != 0 {
		t.Fatalf("TitlesHeldBy(unknown) = %v", got)
	}
}

func TestCatalogConcurrent(t *testing.T) {
	c := New()
	if err := c.AddTitle(title("m")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	nodes := []topology.NodeID{"U1", "U2", "U3", "U4"}
	for _, n := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 100 {
				if err := c.SetHolding(n, "m", true); err != nil {
					t.Errorf("SetHolding: %v", err)
					return
				}
				_ = c.Holds(n, "m")
				_, _ = c.Holders("m")
			}
		}()
	}
	wg.Wait()
	h, err := c.Holders("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != len(nodes) {
		t.Fatalf("Holders = %v", h)
	}
}
