// Package server implements a live video server node: it answers catalog
// queries, serves stored clusters to peers, and — as a client's home server —
// orchestrates whole-title delivery by running the DMA for local popularity
// caching and the VRA (via the planner) to fetch non-resident clusters from
// the momentarily optimal peer, switching peers between clusters when the
// optimum moves.
//
// The delivery hot path is zero-copy: cluster bodies are leased from a
// transport.BufferPool, filled by striping.ReadPartInto (or a pooled peer
// fetch), written to the wire as binary cluster frames when the client
// negotiated them (transport.TypeHello), and returned to the pool — no JSON
// marshal and no per-cluster allocation. Clients that never send a hello get
// the canonical JSON framing instead. Per-server delivery volume surfaces as
// the server.bytes_out / server.frames_out counters next to the pool's
// hit/miss counters on GET /metrics.
//
// With Config.MergeWindow > 0 the server additionally merges shared-prefix
// streams: concurrent Watch sessions of one title whose positions overlap
// within the window share a single cohort base stream — one disk read (or
// peer fetch) per cluster, fanned out through ref-counted frame leases —
// while late joiners are privately patched up to their join position
// (internal/merge). A hot title then costs the origin one stream per cohort
// instead of one per viewer.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dvod/internal/admission"
	"dvod/internal/cache"
	"dvod/internal/clock"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/disk"
	"dvod/internal/faults"
	"dvod/internal/ledger"
	"dvod/internal/media"
	"dvod/internal/merge"
	"dvod/internal/metrics"
	"dvod/internal/prefix"
	"dvod/internal/striping"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// Config assembles a video server node.
type Config struct {
	// Node is the topology node this server runs at.
	Node topology.NodeID
	// DB is the shared database module.
	DB *db.DB
	// Planner runs the routing policy for remote fetches.
	Planner *core.Planner
	// Array is the local disk array.
	Array *disk.Array
	// Cache is the local title cache (normally the DMA) over Array.
	Cache cache.Policy
	// ClusterBytes is the delivery/striping cluster size c.
	ClusterBytes int64
	// Book resolves peer nodes to TCP endpoints.
	Book *transport.AddrBook
	// Counters optionally charges delivered bytes to topology links so
	// the live SNMP estimator can observe traffic. May be nil.
	Counters *transport.Counters
	// ListenAddr defaults to "127.0.0.1:0".
	ListenAddr string
	// Clock stamps database updates; nil defaults to the wall clock.
	Clock clock.Clock
	// Metrics receives request counters; nil allocates a private registry.
	Metrics *metrics.Registry
	// IdleTimeout closes client connections that send no request for this
	// long; zero defaults to 2 minutes.
	IdleTimeout time.Duration
	// Broker optionally enforces admission control: every Watch session
	// must obtain a bandwidth grant (possibly degraded) before delivery
	// starts, and cluster-boundary re-plans skip routes without residual
	// headroom. Nil serves best-effort, as the paper does.
	Broker *admission.Broker
	// MaxConns bounds concurrently handled connections; excess accepted
	// connections wait for a free handler slot, so handler goroutines
	// cannot grow without bound under a connection flood. Zero defaults
	// to 256.
	MaxConns int
	// Pool recycles cluster-body buffers across deliveries (the zero-copy
	// pipeline); nil allocates a pool reporting into Metrics.
	Pool *transport.BufferPool
	// MergeWindow enables shared-prefix stream merging when positive:
	// concurrent Watch sessions of one title within MergeWindow clusters of
	// each other coalesce onto one base stream, and each cluster is read
	// once and fanned out instead of once per viewer (late joiners get the
	// gap as a private patch stream). Zero disables merging and every
	// session reads privately, as the paper does.
	MergeWindow int
	// MergeQueueDepth overrides the per-session broadcast queue bound
	// (merge.Config.QueueDepth); zero uses the merge layer's default.
	MergeQueueDepth int
	// Faults optionally interposes the deterministic fault injector on this
	// server's peer-fetch path: scheduled dial refusals before connecting and
	// a wrapped byte stream that the injector can cut or stall mid-cluster.
	// Nil fetches without interposition.
	Faults *faults.Injector
	// Health optionally receives every peer-fetch outcome — normally one
	// deployment-wide faults.HealthScores also installed as the planners'
	// node-penalty hook, closing the loop from observed failures to the
	// VRA's link weights. May be nil.
	Health *faults.HealthScores
	// Ledger optionally serves this node's replica of the gossip-replicated
	// reservation ledger: peers' ledger.sync exchanges (JSON or binary
	// framing) are merged and answered here, alongside the broker that reads
	// the replica before granting. Nil refuses ledger.sync requests.
	Ledger *ledger.Ledger
	// DisableDefense switches off the self-healing delivery path — per-peer
	// circuit breakers, hedged fetches, and per-session retry budgets —
	// leaving only the bare next-replica retry loop. The chaos study's
	// control arm; production configs leave it false.
	DisableDefense bool
	// Director optionally fronts the watch path with the stateless redirect
	// door: before admitting a session, the server asks it whether a
	// better-placed peer should serve this title and, if so, answers with a
	// typed watch.redirect instead of streaming. Nil serves every watch
	// locally, exactly as before.
	Director Director
	// Members optionally serves this node's membership view: peers'
	// member.sync exchanges are merged and answered here (normally a
	// membership.Tracker). Nil refuses member.sync requests.
	Members MemberView
	// MemberProbe performs one liveness probe on behalf of a member.ping-req
	// sender: reach the target node at addr and report nil when it answers.
	// Nil answers every ping-req with OK=false (no second opinion — the
	// asker falls back to its direct evidence).
	MemberProbe func(target topology.NodeID, addr string) error
	// Prefix optionally serves the popularity-weighted prefix tier: clusters
	// inside a title's pinned prefix are read from the local prefix store —
	// zero cross-network fetches — before the remote delivery path is even
	// planned, on every path that obtains clusters (watch start, late-joiner
	// patches, post-eviction unicast tails). Nil disables the tier.
	Prefix *prefix.Manager
	// RelayCohorts extends stream merging across servers: when a merged
	// cohort is created here for a non-resident title, its source opens ONE
	// relay.join subscription to the title's holder and fans that stream to
	// every local watcher, instead of issuing per-cluster peer fetches. On
	// the holder's side relay sessions join its own merge registry, so N
	// relay servers share one origin disk-read stream. Requires MergeWindow.
	RelayCohorts bool
	// RelayHoldDown is the aggregation hold-down applied to cohorts created
	// for incoming relay.join sessions: the cohort's pump waits this long
	// before its first read, so a flash crowd of downstream relays dialing
	// within the hold all batch onto the base stream with zero patch
	// clusters (VoD batching). It delays only the shared tail — a relay's
	// watchers are streaming their locally-pinned prefixes meanwhile — and
	// never an interactive watch. Zero selects DefaultRelayHoldDown;
	// negative disables the hold.
	RelayHoldDown time.Duration
}

// DefaultRelayHoldDown is the aggregation hold-down for relay-fed cohorts
// when Config.RelayHoldDown is zero: long enough to batch a burst of
// downstream relay.join dials even when the downstream servers' sessions are
// queueing on loaded cores, short next to any pinned-prefix head (a relay
// dials at session start — the tail prefetches behind the head — so the
// hold delays only a stream the viewer is not yet watching).
const DefaultRelayHoldDown = 250 * time.Millisecond

// Director is the redirect decision hook (implemented by
// membership.Director). Route reports the peer a watch for title — already
// bounced hops times — should be redirected to, or ok=false to serve
// locally.
type Director interface {
	Route(title string, hops int) (target topology.NodeID, addr string, ok bool)
}

// MemberView answers membership gossip (implemented by membership.Tracker):
// merge the remote view, return the merged local view.
type MemberView interface {
	HandleSync(req transport.MemberSyncPayload) transport.MemberSyncPayload
}

// Server is one running video server node.
type Server struct {
	cfg     Config
	ln      net.Listener
	connSem chan struct{}
	// merges tracks live stream-merging cohorts; nil when MergeWindow is 0.
	merges *merge.Registry
	// breakers and hedgeLat are the self-healing state of the peer-fetch
	// path; both nil when DisableDefense is set.
	breakers *faults.BreakerSet
	hedgeLat *faults.LatencyTracker

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// New validates the configuration.
func New(cfg Config) (*Server, error) {
	switch {
	case cfg.Node == "":
		return nil, errors.New("server: empty node")
	case cfg.DB == nil:
		return nil, errors.New("server: nil db")
	case cfg.Planner == nil:
		return nil, errors.New("server: nil planner")
	case cfg.Array == nil:
		return nil, errors.New("server: nil array")
	case cfg.Cache == nil:
		return nil, errors.New("server: nil cache")
	case cfg.ClusterBytes <= 0:
		return nil, fmt.Errorf("server: bad cluster size %d", cfg.ClusterBytes)
	case cfg.Book == nil:
		return nil, errors.New("server: nil address book")
	}
	if !cfg.DB.Graph().HasNode(cfg.Node) {
		return nil, fmt.Errorf("server: %w: %s", topology.ErrNodeUnknown, cfg.Node)
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.IdleTimeout < 0 {
		return nil, fmt.Errorf("server: negative idle timeout %v", cfg.IdleTimeout)
	}
	if cfg.MaxConns < 0 {
		return nil, fmt.Errorf("server: negative connection cap %d", cfg.MaxConns)
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 256
	}
	if cfg.Pool == nil {
		cfg.Pool = transport.NewBufferPool(cfg.Metrics)
	}
	if cfg.MergeWindow < 0 {
		return nil, fmt.Errorf("server: negative merge window %d", cfg.MergeWindow)
	}
	if cfg.RelayCohorts && cfg.MergeWindow <= 0 {
		return nil, errors.New("server: relay cohorts require a merge window")
	}
	if cfg.RelayHoldDown == 0 {
		cfg.RelayHoldDown = DefaultRelayHoldDown
	}
	srv := &Server{cfg: cfg, connSem: make(chan struct{}, cfg.MaxConns)}
	if !cfg.DisableDefense {
		srv.breakers = faults.NewBreakerSet(faults.BreakerConfig{
			Clock:   cfg.Clock,
			Metrics: cfg.Metrics,
		})
		srv.hedgeLat = faults.NewLatencyTracker(0)
	}
	if cfg.MergeWindow > 0 {
		m, err := merge.NewRegistry(merge.Config{
			Window:     cfg.MergeWindow,
			QueueDepth: cfg.MergeQueueDepth,
			Metrics:    cfg.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		srv.merges = m
	}
	return srv, nil
}

// Node returns the server's topology node.
func (s *Server) Node() topology.NodeID { return s.cfg.Node }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *metrics.Registry { return s.cfg.Metrics }

// Start listens, registers the endpoint in the address book, and begins
// accepting connections.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.ListenAddr)
	if err != nil {
		return fmt.Errorf("server %s listen: %w", s.cfg.Node, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return errors.New("server already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.cfg.Book.Set(s.cfg.Node, ln.Addr().String())
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the listening endpoint ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting, closes the listener, and waits for in-flight
// handlers to finish. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Wait for a handler slot before spawning: under a connection
		// flood the excess connections queue in the listen backlog
		// instead of each pinning a goroutine.
		s.connSem <- struct{}{}
		s.wg.Add(1)
		go func() {
			defer func() {
				<-s.connSem
				s.wg.Done()
			}()
			s.handleConn(transport.NewConn(nc))
		}()
	}
}

// handleConn serves control messages on one connection until EOF or a
// framing error.
func (s *Server) handleConn(c *transport.Conn) {
	defer c.Close()
	for {
		if s.isClosed() {
			return
		}
		// Idle clients are disconnected rather than pinning a handler
		// goroutine forever.
		_ = c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		m, f, err := c.ReadFrameOrMessage(s.cfg.Pool)
		if err != nil {
			return
		}
		_ = c.SetReadDeadline(time.Time{})
		if f != nil {
			// A peer initiates two kinds of binary frame: ledger and
			// membership syncs (the gossip anti-entropy exchanges on a
			// negotiated connection).
			var err error
			switch f.Type {
			case transport.FrameMemberSync:
				err = s.handleMemberSyncFrame(c, f)
			default:
				err = s.handleLedgerSyncFrame(c, f)
			}
			f.Release()
			if err != nil {
				s.cfg.Metrics.Counter("server.errors").Inc()
				if werr := c.WriteError(err.Error()); werr != nil {
					return
				}
			}
			continue
		}
		if err := s.dispatch(c, m); err != nil {
			s.cfg.Metrics.Counter("server.errors").Inc()
			if werr := c.WriteError(err.Error()); werr != nil {
				return
			}
		}
	}
}

func (s *Server) dispatch(c *transport.Conn, m transport.Message) error {
	s.cfg.Metrics.Counter("server.requests").Inc()
	switch m.Type {
	case transport.TypePing:
		pong, err := transport.Encode(transport.TypePong, nil)
		if err != nil {
			return err
		}
		return c.WriteMessage(pong)
	case transport.TypeHello:
		return c.AcceptHello(m)
	case transport.TypeTitles:
		return s.handleTitles(c)
	case transport.TypeHolders:
		return s.handleHolders(c, m)
	case transport.TypeClusterGet:
		return s.handleClusterGet(c, m)
	case transport.TypeWatch:
		return s.handleWatch(c, m)
	case transport.TypeRelayJoin:
		return s.handleRelay(c, m)
	case transport.TypeLedgerSync:
		return s.handleLedgerSync(c, m)
	case transport.TypeMemberSync:
		return s.handleMemberSync(c, m)
	case transport.TypeMemberPingReq:
		return s.handleMemberPingReq(c, m)
	default:
		return fmt.Errorf("unknown message type %q", m.Type)
	}
}

func (s *Server) handleTitles(c *transport.Conn) error {
	all := s.cfg.DB.Catalog().Titles()
	payload := transport.TitlesPayload{Titles: make([]transport.TitleInfo, 0, len(all))}
	for _, t := range all {
		payload.Titles = append(payload.Titles, transport.TitleInfo{
			Name:        t.Name,
			SizeBytes:   t.SizeBytes,
			BitrateMbps: t.BitrateMbps,
			Resident:    s.cfg.Cache.Resident(t.Name),
		})
	}
	m, err := transport.Encode(transport.TypeTitlesOK, payload)
	if err != nil {
		return err
	}
	return c.WriteMessage(m)
}

// handleHolders answers which servers hold a title, with the delivery
// parameters parallel fetchers need.
func (s *Server) handleHolders(c *transport.Conn, m transport.Message) error {
	req, err := transport.Decode[transport.HoldersPayload](m)
	if err != nil {
		return err
	}
	title, err := s.cfg.DB.Catalog().Title(req.Title)
	if err != nil {
		return err
	}
	// Read-only holder view: the list is only encoded onto the wire, so the
	// catalog's lock-free shared slice is safe here.
	holders, err := s.cfg.DB.Catalog().HoldersView(req.Title)
	if err != nil {
		return err
	}
	layout, err := striping.NewLayout(title, s.cfg.ClusterBytes, 1)
	if err != nil {
		return err
	}
	resp, err := transport.Encode(transport.TypeHoldersOK, transport.HoldersOKPayload{
		Title:        title.Name,
		SizeBytes:    title.SizeBytes,
		BitrateMbps:  title.BitrateMbps,
		ClusterBytes: s.cfg.ClusterBytes,
		NumClusters:  layout.NumParts(),
		Holders:      holders,
	})
	if err != nil {
		return err
	}
	return c.WriteMessage(resp)
}

// handleClusterGet serves one locally stored cluster to a peer or client.
func (s *Server) handleClusterGet(c *transport.Conn, m transport.Message) error {
	req, err := transport.Decode[transport.ClusterGetPayload](m)
	if err != nil {
		return err
	}
	frame, payload, err := s.readLocalCluster(req.Title, req.Index)
	if err != nil {
		return err
	}
	defer frame.Release()
	s.cfg.Metrics.Counter("server.clusters_served").Inc()
	s.cfg.Metrics.Counter("server.bytes_served").Add(payload.Length)
	return s.sendCluster(c, transport.TypeClusterOK, payload, frame)
}

// sendCluster writes one cluster on the negotiated framing via
// transport.WriteClusterBody: file-backed bodies go out on the kernel path
// (sendfile/splice) when the platform and stream support it, byte-backed or
// refused bodies through the pooled copy, JSON framing as msgType + raw
// body. Delivery volume is charged to the bytes-out/frames-out counters
// either way, and each send lands in server.kernel_sends or
// server.fallback_sends according to the path actually taken.
//
// Counter semantics: server.frames_out and server.bytes_out count per-client
// deliveries — every handler that puts a cluster on a wire charges them,
// including the fan-out copies of one merged base-stream read. Disk work is
// the separate server.disk_reads / server.disk_bytes pair (and
// server.remote_clusters for peer fetches); with stream merging active the
// two deliberately diverge, and their ratio is the fan-out amplification.
func (s *Server) sendCluster(c *transport.Conn, msgType string, payload transport.ClusterPayload, body *transport.Frame) error {
	kernel, err := c.WriteClusterBody(s.cfg.Pool, msgType, payload, body)
	if err != nil {
		return err
	}
	if kernel {
		s.cfg.Metrics.Counter("server.kernel_sends").Inc()
	} else {
		s.cfg.Metrics.Counter("server.fallback_sends").Inc()
	}
	s.cfg.Metrics.Counter("server.frames_out").Inc()
	s.cfg.Metrics.Counter("server.bytes_out").Add(body.BodyLen())
	return nil
}

// readLocalCluster fetches one resident cluster from the local array as a
// transport frame the caller must Release. On a file-backed array with no
// fault interceptor armed, the frame pins the block's descriptor
// (disk.FileRef) and carries no bytes at all — sendCluster streams it with
// sendfile. Otherwise the part is copied into a pool-leased buffer exactly
// as before.
func (s *Server) readLocalCluster(title string, index int) (*transport.Frame, transport.ClusterPayload, error) {
	layout, ok := s.cfg.Cache.Layout(title)
	if !ok {
		return nil, transport.ClusterPayload{}, fmt.Errorf("title %q not resident on %s", title, s.cfg.Node)
	}
	off, length, err := layout.PartRange(index)
	if err != nil {
		return nil, transport.ClusterPayload{}, err
	}
	payload := transport.ClusterPayload{
		Title:  title,
		Index:  index,
		Offset: off,
		Length: length,
		Source: s.cfg.Node,
	}
	// Disk-side accounting, distinct from the per-client frames_out /
	// bytes_out pair: merged fan-out multiplies deliveries, not reads. The
	// kernel path moves the same bytes off the same disk, so it charges the
	// same counters.
	if ref, ok := striping.PartFileRef(s.cfg.Array, layout, index); ok {
		if ref.Size() == length {
			s.cfg.Metrics.Counter("server.disk_reads").Inc()
			s.cfg.Metrics.Counter("server.disk_bytes").Add(length)
			return transport.NewFileFrame(ref.File(), ref.Offset(), ref.Size(), ref.Close), payload, nil
		}
		// A stored size disagreeing with the layout is store corruption;
		// release the pin and let the copy path surface the typed error.
		ref.Close()
	}
	buf := s.cfg.Pool.Get(int(length))
	n, err := striping.ReadPartInto(s.cfg.Array, layout, index, buf)
	if err != nil {
		s.cfg.Pool.Put(buf)
		return nil, transport.ClusterPayload{}, fmt.Errorf("read cluster %d of %q: %w", index, title, err)
	}
	if int64(n) != length {
		s.cfg.Pool.Put(buf)
		return nil, transport.ClusterPayload{}, fmt.Errorf("cluster %d of %q: read %d bytes, layout says %d", index, title, n, length)
	}
	s.cfg.Metrics.Counter("server.disk_reads").Inc()
	s.cfg.Metrics.Counter("server.disk_bytes").Add(length)
	return transport.NewLeasedFrame(s.cfg.Pool, buf), payload, nil
}

// readPrefixCluster serves one cluster from the pinned prefix store — the
// prefix tier's twin of readLocalCluster, with the same kernel-path
// preference (a file-backed prefix block goes out via sendfile). It reports
// ok=false on any miss or error: a racing epoch shrink may free a block
// between the lookup and the read, and the caller then falls through to the
// normal delivery path instead of failing the session.
func (s *Server) readPrefixCluster(title string, index int) (*transport.Frame, transport.ClusterPayload, bool) {
	e, ok := s.cfg.Prefix.Lookup(title, index)
	if !ok {
		return nil, transport.ClusterPayload{}, false
	}
	off, length, err := e.Layout.PartRange(index)
	if err != nil {
		return nil, transport.ClusterPayload{}, false
	}
	payload := transport.ClusterPayload{
		Title:  title,
		Index:  index,
		Offset: off,
		Length: length,
		Source: s.cfg.Node,
	}
	arr := s.cfg.Prefix.Array()
	if ref, ok := striping.PartFileRef(arr, e.Layout, index); ok {
		if ref.Size() == length {
			s.cfg.Metrics.Counter("server.prefix_reads").Inc()
			s.cfg.Metrics.Counter("server.prefix_bytes").Add(length)
			return transport.NewFileFrame(ref.File(), ref.Offset(), ref.Size(), ref.Close), payload, true
		}
		ref.Close()
	}
	buf := s.cfg.Pool.Get(int(length))
	n, err := striping.ReadPartInto(arr, e.Layout, index, buf)
	if err != nil || int64(n) != length {
		s.cfg.Pool.Put(buf)
		return nil, transport.ClusterPayload{}, false
	}
	s.cfg.Metrics.Counter("server.prefix_reads").Inc()
	s.cfg.Metrics.Counter("server.prefix_bytes").Add(length)
	return transport.NewLeasedFrame(s.cfg.Pool, buf), payload, true
}

// handleLedgerSync answers one JSON-framed gossip exchange: merge the peer's
// delta, reply with ours.
func (s *Server) handleLedgerSync(c *transport.Conn, m transport.Message) error {
	if s.cfg.Ledger == nil {
		return fmt.Errorf("no reservation ledger on %s", s.cfg.Node)
	}
	req, err := transport.Decode[transport.LedgerSyncPayload](m)
	if err != nil {
		return err
	}
	s.cfg.Metrics.Counter("server.ledger_syncs").Inc()
	resp, err := transport.Encode(transport.TypeLedgerSyncOK, s.cfg.Ledger.HandleSync(req))
	if err != nil {
		return err
	}
	return c.WriteMessage(resp)
}

// handleLedgerSyncFrame is the binary-framed twin of handleLedgerSync, used
// on connections whose hello exchange granted ledger-sync-v1 + cluster
// frames. The reply goes back on the same framing, flagged as a reply.
func (s *Server) handleLedgerSyncFrame(c *transport.Conn, f *transport.Frame) error {
	if f.Type != transport.FrameLedgerSync {
		return fmt.Errorf("unexpected binary frame 0x%02x", f.Type)
	}
	if s.cfg.Ledger == nil {
		return fmt.Errorf("no reservation ledger on %s", s.cfg.Node)
	}
	req, err := transport.DecodeLedgerSyncFrame(f)
	if err != nil {
		return err
	}
	s.cfg.Metrics.Counter("server.ledger_syncs").Inc()
	return c.WriteLedgerSyncFrame(s.cfg.Ledger.HandleSync(req), true)
}

// handleMemberSync answers one membership gossip exchange: merge the peer's
// view, reply with the merged local view (push-pull anti-entropy, the same
// shape as the reservation ledger's sync).
func (s *Server) handleMemberSync(c *transport.Conn, m transport.Message) error {
	if s.cfg.Members == nil {
		return fmt.Errorf("no membership view on %s", s.cfg.Node)
	}
	req, err := transport.Decode[transport.MemberSyncPayload](m)
	if err != nil {
		return err
	}
	s.cfg.Metrics.Counter("server.member_syncs").Inc()
	resp, err := transport.Encode(transport.TypeMemberSyncOK, s.cfg.Members.HandleSync(req))
	if err != nil {
		return err
	}
	return c.WriteMessage(resp)
}

// handleMemberSyncFrame is the binary-framed twin of handleMemberSync, used
// on connections whose hello exchange granted member-sync-v1 + cluster
// frames. The reply goes back on the same framing, flagged as a reply.
func (s *Server) handleMemberSyncFrame(c *transport.Conn, f *transport.Frame) error {
	if s.cfg.Members == nil {
		return fmt.Errorf("no membership view on %s", s.cfg.Node)
	}
	req, err := transport.DecodeMemberSyncFrame(f)
	if err != nil {
		return err
	}
	s.cfg.Metrics.Counter("server.member_syncs").Inc()
	return c.WriteMemberSyncFrame(s.cfg.Members.HandleSync(req), true)
}

// handleMemberPingReq probes a third node on a peer's behalf: the indirect
// leg of the membership failure detector. The answer is advisory — OK only
// when this node actually reached the target just now.
func (s *Server) handleMemberPingReq(c *transport.Conn, m transport.Message) error {
	req, err := transport.Decode[transport.MemberPingReqPayload](m)
	if err != nil {
		return err
	}
	s.cfg.Metrics.Counter("server.member_ping_reqs").Inc()
	ok := false
	if s.cfg.MemberProbe != nil && req.Target != "" {
		ok = s.cfg.MemberProbe(req.Target, req.Addr) == nil
	}
	resp, err := transport.Encode(transport.TypeMemberPingAck, transport.MemberPingAckPayload{
		Target: req.Target,
		OK:     ok,
	})
	if err != nil {
		return err
	}
	return c.WriteMessage(resp)
}

// watchSession carries one Watch session's delivery state through the
// streaming paths: the admitted rate and grant, the retry budget, and the
// count of reservation migrations performed when the VRA re-planned the
// session across a cluster boundary.
type watchSession struct {
	planRate   float64
	budget     *faults.RetryBudget
	grant      *admission.Grant
	migrations atomic.Int32
	// holdDown is the aggregation hold-down a cohort created by this session
	// applies before its first read; set for relay.join sessions only, so a
	// burst of downstream relays batches onto one base stream.
	holdDown time.Duration
}

// migrateReservation follows a routing switch with the session's bandwidth
// reservation: the old route's links are released and the new route's
// reserved, in the broker and (through it) the replicated ledger. Shared
// grants are left alone — the cohort group owns those reservations and
// member sessions do not steer them.
func (s *Server) migrateReservation(ws *watchSession, links []topology.LinkID) {
	if ws == nil || ws.grant == nil || ws.grant.Shared() || s.cfg.Broker == nil {
		return
	}
	if s.cfg.Broker.Migrate(ws.grant, links) {
		ws.migrations.Add(1)
		s.cfg.Metrics.Counter("server.reservation_migrations").Inc()
	}
}

// handleWatch orchestrates whole-title delivery to a client homed here.
func (s *Server) handleWatch(c *transport.Conn, m transport.Message) error {
	req, err := transport.Decode[transport.WatchPayload](m)
	if err != nil {
		return err
	}
	// The stateless front door runs before admission or any cache mutation:
	// a redirected request must leave no trace here — no popularity count,
	// no grant — because the target node will do all of that itself.
	if s.cfg.Director != nil {
		if target, addr, ok := s.cfg.Director.Route(req.Title, req.Hops); ok {
			s.cfg.Metrics.Counter("server.watch_redirects").Inc()
			resp, err := transport.Encode(transport.TypeWatchRedirect, transport.WatchRedirectPayload{
				Title:  req.Title,
				Target: target,
				Addr:   addr,
				Hops:   req.Hops + 1,
			})
			if err != nil {
				return err
			}
			return c.WriteMessage(resp)
		}
	}
	title, err := s.cfg.DB.Catalog().Title(req.Title)
	if err != nil {
		return err
	}
	// Admission control runs before any cache mutation: a refused session
	// must leave no trace in the DMA's popularity counts.
	grant, rejected, err := s.admitWatch(c, req, title)
	if err != nil || rejected {
		return err
	}
	if grant != nil {
		defer s.cfg.Broker.Release(grant)
	}
	// The DMA counts this request and may admit or evict titles; mirror
	// the outcome into the shared database so every planner sees it.
	outcome, err := s.cfg.Cache.OnRequest(title)
	if err != nil {
		return fmt.Errorf("dma: %w", err)
	}
	now := s.cfg.Clock.Now()
	for _, ev := range outcome.Evicted {
		if err := s.cfg.DB.SetHolding(s.cfg.Node, ev, false, now); err != nil {
			return err
		}
	}
	if outcome.Admitted {
		if err := s.cfg.DB.SetHolding(s.cfg.Node, title.Name, true, now); err != nil {
			return err
		}
		s.cfg.Metrics.Counter("server.dma_admissions").Inc()
	}
	if outcome.Hit {
		s.cfg.Metrics.Counter("server.dma_hits").Inc()
	}

	layout, err := striping.NewLayout(title, s.cfg.ClusterBytes, 1)
	if err != nil {
		return err
	}
	if req.StartCluster < 0 || req.StartCluster >= layout.NumParts() {
		return fmt.Errorf("start cluster %d outside [0, %d)", req.StartCluster, layout.NumParts())
	}
	ok := transport.WatchOKPayload{
		Title:        title.Name,
		SizeBytes:    title.SizeBytes,
		BitrateMbps:  title.BitrateMbps,
		ClusterBytes: s.cfg.ClusterBytes,
		NumClusters:  layout.NumParts(),
	}
	ws := &watchSession{grant: grant}
	if grant != nil {
		ok.Class = string(grant.Class)
		ok.DeliveredMbps = grant.BitrateMbps
		ok.Degraded = grant.Degraded
		ws.planRate = grant.BitrateMbps
	}
	head, err := transport.Encode(transport.TypeWatchOK, ok)
	if err != nil {
		return err
	}
	// Queued, not written: watch.ok (and queued prefix.info / merge.info
	// after it) ride the first cluster's writev as one syscall. Every later
	// write — cluster, error, watch.done — flushes the queue first, so the
	// wire order is unchanged on all paths.
	if err := c.QueueMessage(head); err != nil {
		return err
	}
	if s.cfg.Prefix != nil {
		if err := s.sendPrefixInfo(c, s.prefixAnnouncement(title, layout.NumParts(), req.StartCluster)); err != nil {
			return err
		}
	}
	// Each watch session carries its own retry budget: a small reserve plus
	// a fractional deposit per delivered cluster, so transient faults retry
	// freely while a total outage drains to a clean failure instead of
	// hammering dead replicas for the rest of the title.
	if !s.cfg.DisableDefense {
		ws.budget = faults.NewRetryBudget(3, 0.1)
	}
	if s.merges != nil {
		err = s.streamMerged(c, title, layout.NumParts(), req.StartCluster, ws)
	} else {
		err = s.streamUnicast(c, title, layout.NumParts(), req.StartCluster, ws)
	}
	if err != nil {
		return err
	}
	done, err := transport.Encode(transport.TypeWatchDone, transport.WatchDonePayload{
		Migrations: int(ws.migrations.Load()),
	})
	if err != nil {
		return err
	}
	s.cfg.Metrics.Counter("server.watches").Inc()
	return c.WriteMessage(done)
}

// admitWatch consults the bandwidth broker for one watch request. It
// returns (grant, false, nil) on admission, (nil, true, nil) after writing a
// typed rejection or busy frame, and (nil, false, nil) when no broker is
// configured. The session-rate and session-count limits surface as the
// typed "server busy" error; bandwidth exhaustion surfaces as a
// TypeWatchReject response carrying the broker's reason.
func (s *Server) admitWatch(c *transport.Conn, req transport.WatchPayload, title media.Title) (*admission.Grant, bool, error) {
	if s.cfg.Broker == nil {
		return nil, false, nil
	}
	class, err := admission.ParseClass(req.Class)
	if err != nil {
		return nil, false, err
	}
	// Plan a tentative route so the broker can reserve the session's
	// bitrate on the links it will cross. Local service needs no links; a
	// failed plan falls back to a node-level-only reservation rather than
	// refusing outright (the per-cluster re-plan may still find a route).
	// The tail plan is offset by the pinned prefix: when K reaches the end
	// of the title there is no tail left to fetch, so no links to reserve.
	var links []topology.LinkID
	if !s.cfg.Cache.Resident(title.Name) && !s.prefixCoversAll(title, req.StartCluster) {
		if dec, err := s.cfg.Planner.PlanBandwidth(s.cfg.Node, title.Name, title.BitrateMbps, nil); err == nil && !dec.Local {
			links = dec.Path.Links()
		}
	}
	areq := admission.Request{
		Class:       class,
		Title:       title.Name,
		BitrateMbps: title.BitrateMbps,
		Links:       links,
	}
	var grant *admission.Grant
	if s.merges != nil {
		// Merged sessions share one delivery stream per cohort, so they
		// commit shared — not additive — bandwidth: the first watcher of a
		// title reserves the full rate and later ones attach for free. The
		// group is keyed by title (a conservative coarsening of the cohort,
		// which does not exist until after admission); sessions that end up
		// in separate cohorts of one title briefly under-reserve, which the
		// SNMP-fed link estimator absorbs the way it absorbs any unreserved
		// traffic.
		grant, err = s.cfg.Broker.AdmitWaitShared(areq, "watch:"+title.Name)
	} else {
		grant, err = s.cfg.Broker.AdmitWait(areq)
	}
	if err == nil {
		return grant, false, nil
	}
	var rej *admission.RejectedError
	if !errors.As(err, &rej) {
		return nil, false, err
	}
	switch rej.Reason {
	case admission.ReasonSessions, admission.ReasonRate:
		s.cfg.Metrics.Counter("server.watch_busy").Inc()
		return nil, true, c.WriteErrorCode(rej.Error(), transport.CodeBusy)
	default:
		s.cfg.Metrics.Counter("server.watch_rejects").Inc()
		m, eerr := transport.Encode(transport.TypeWatchReject, transport.WatchRejectPayload{
			Title:      title.Name,
			Class:      string(rej.Class),
			Reason:     string(rej.Reason),
			NeededMbps: rej.NeededMbps,
			FreeMbps:   rej.FreeMbps,
		})
		if eerr != nil {
			return nil, false, eerr
		}
		return nil, true, c.WriteMessage(m)
	}
}

// deliverCluster obtains one cluster as a pool-leased frame: locally when
// resident, otherwise from the server the routing policy selects right now
// (the paper's per-cluster re-evaluation). A failed remote fetch retries
// against the remaining replicas, cheapest first, so one dead peer does not
// abort the playback. With admission enabled, planRate > 0 filters routes to
// those with residual headroom for the granted bitrate, falling back to the
// cheapest path when none qualifies (the admitted session is kept alive over
// being cut off).
//
// With the defense enabled, the retry loop is hardened: peers behind open
// circuit breakers are excluded from planning (unless every replica is, in
// which case one probe is forced through), each fetch may hedge a second
// replica past the P99 deadline, and each retry withdraws from the session's
// budget so a total outage drains to a clean failure instead of replaying
// forever. The caller owns one reference on the returned frame and must
// Release it once the bytes are on the wire; a merged cohort Retains it once
// per fan-out subscriber instead of re-reading.
func (s *Server) deliverCluster(title media.Title, index int, ws *watchSession) (*transport.Frame, transport.ClusterPayload, error) {
	if s.cfg.Cache.Resident(title.Name) {
		frame, payload, err := s.readLocalCluster(title.Name, index)
		if err != nil {
			return nil, transport.ClusterPayload{}, err
		}
		// The title became resident mid-stream (a DMA admission): the
		// session now serves locally and its trunk reservations come home.
		s.migrateReservation(ws, nil)
		return frame, payload, nil
	}
	// Local prefix store next: every path that lands here — watch starts,
	// late-joiner patch streams, and the post-eviction unicast tail — serves
	// pinned leading clusters off local disk before dialing anywhere. (The
	// eviction fallback used to go straight to the remote plan even when the
	// evicting server held the cluster in its prefix.)
	if s.cfg.Prefix != nil {
		if frame, payload, ok := s.readPrefixCluster(title.Name, index); ok {
			return frame, payload, nil
		}
	}
	exclude := make(map[topology.NodeID]bool)
	var lastErr error
	for {
		dec, err := s.planDefended(title.Name, ws.planRate, exclude)
		if err != nil {
			if lastErr != nil {
				return nil, transport.ClusterPayload{}, fmt.Errorf("%w (after fetch failure: %v)", err, lastErr)
			}
			return nil, transport.ClusterPayload{}, err
		}
		if dec.Server == s.cfg.Node {
			// The catalog says we hold it but the cache disagrees — the
			// DB and cache are out of sync.
			return nil, transport.ClusterPayload{}, fmt.Errorf("holding inconsistency for %q on %s", title.Name, s.cfg.Node)
		}
		frame, payload, winner, err := s.fetchHedged(dec, title.Name, index, ws.planRate, exclude)
		if err != nil {
			lastErr = err
			exclude[dec.Server] = true
			s.cfg.Metrics.Counter("server.fetch_retries").Inc()
			s.cfg.Metrics.Counter("client.retries").Inc()
			if ws.budget != nil && !ws.budget.TryRetry() {
				return nil, transport.ClusterPayload{}, fmt.Errorf(
					"cluster %d of %q: retry budget exhausted: %w", index, title.Name, lastErr)
			}
			continue
		}
		if ws.budget != nil {
			ws.budget.OnSuccess()
		}
		if s.cfg.Counters != nil {
			s.cfg.Counters.ChargePath(winner.Path.Links(), frame.BodyLen())
		}
		// The bytes crossed the winner's route; when that differs from the
		// links the session reserved at admission, the reservation follows
		// the stream (cluster-boundary VRA switches, hedge winners, and
		// replica failover all land here).
		s.migrateReservation(ws, winner.Path.Links())
		s.cfg.Metrics.Counter("server.remote_clusters").Inc()
		return frame, payload, nil
	}
}

// planDefended plans one cluster's replica with peers behind refusing
// circuit breakers excluded. When that leaves no candidate — every remaining
// replica tripped its breaker — the plain plan is used instead, forcing one
// request through as the probe that can discover recovery (a watch must not
// fail just because all breakers are open at once).
func (s *Server) planDefended(title string, planRate float64, exclude map[topology.NodeID]bool) (core.Decision, error) {
	if s.breakers != nil {
		if open := s.breakers.Open(); len(open) > 0 {
			merged := make(map[topology.NodeID]bool, len(exclude)+len(open))
			for n := range exclude {
				merged[n] = true
			}
			for n := range open {
				merged[n] = true
			}
			dec, err := s.planCluster(title, planRate, merged)
			if err == nil {
				return dec, nil
			}
			if !errors.Is(err, core.ErrNoCandidates) {
				return core.Decision{}, err
			}
			s.cfg.Metrics.Counter("client.breaker_probes_forced").Inc()
		}
	}
	return s.planCluster(title, planRate, exclude)
}

// fetchOnce performs one instrumented peer fetch: it claims the breaker's
// half-open probe slot when applicable, reports the outcome to the breaker
// and the health scores, and feeds successful latencies to the hedging
// tracker.
func (s *Server) fetchOnce(dec core.Decision, title string, index int) (*transport.Frame, transport.ClusterPayload, error) {
	if s.breakers != nil {
		// The decision already skirted refusing breakers (or is the forced
		// probe); Allow transitions open→half-open and claims the probe slot.
		_ = s.breakers.Allow(dec.Server)
	}
	began := s.cfg.Clock.Now()
	frame, payload, err := s.fetchRemoteCluster(dec, title, index)
	ok := err == nil
	if s.breakers != nil {
		s.breakers.Report(dec.Server, ok)
	}
	if s.cfg.Health != nil {
		s.cfg.Health.Report(dec.Server, ok)
	}
	if ok && s.hedgeLat != nil {
		s.hedgeLat.Observe(s.cfg.Clock.Now().Sub(began))
	}
	return frame, payload, err
}

// fetchHedged fetches one cluster from the decided replica and, when the
// fetch outlives the latency tracker's P99-derived deadline, races a second
// replica for the same cluster — the hedge that turns a stalled peer into a
// tail-latency blip instead of a rebuffer. The first success wins; the
// loser's frame is released as it straggles in, so hedging never leaks pool
// leases. Returns the winning decision so the caller charges the links the
// bytes actually crossed.
func (s *Server) fetchHedged(dec core.Decision, title string, index int, planRate float64,
	exclude map[topology.NodeID]bool) (*transport.Frame, transport.ClusterPayload, core.Decision, error) {
	if s.hedgeLat == nil {
		frame, payload, err := s.fetchOnce(dec, title, index)
		return frame, payload, dec, err
	}
	type result struct {
		frame   *transport.Frame
		payload transport.ClusterPayload
		dec     core.Decision
		err     error
	}
	resCh := make(chan result, 2)
	launch := func(d core.Decision) {
		go func() {
			f, p, err := s.fetchOnce(d, title, index)
			resCh <- result{frame: f, payload: p, dec: d, err: err}
		}()
	}
	launch(dec)
	outstanding := 1
	hedged := false
	hedgeTimer := s.cfg.Clock.After(s.hedgeLat.Deadline())
	var lastErr error
	for {
		select {
		case r := <-resCh:
			outstanding--
			if r.err == nil {
				if outstanding > 0 {
					// Drain the loser in the background and return its lease;
					// its fetch goroutine still reports to breakers/health.
					go func(n int) {
						for range n {
							if lr := <-resCh; lr.err == nil {
								lr.frame.Release()
							}
						}
					}(outstanding)
				}
				if hedged && r.dec.Server != dec.Server {
					s.cfg.Metrics.Counter("client.hedges_won").Inc()
				}
				return r.frame, r.payload, r.dec, nil
			}
			lastErr = r.err
			if outstanding == 0 {
				return nil, transport.ClusterPayload{}, dec, lastErr
			}
		case <-hedgeTimer:
			hedgeTimer = nil // fire at most once
			// Race the next-best replica, never the one already in flight.
			hexcl := make(map[topology.NodeID]bool, len(exclude)+1)
			for n := range exclude {
				hexcl[n] = true
			}
			hexcl[dec.Server] = true
			hdec, err := s.planDefended(title, planRate, hexcl)
			if err != nil || hdec.Server == s.cfg.Node {
				continue // no second replica to race; keep waiting
			}
			hedged = true
			s.cfg.Metrics.Counter("client.hedges_launched").Inc()
			launch(hdec)
			outstanding++
		}
	}
}

// deliverAndSend reads one cluster privately and writes it to this client.
func (s *Server) deliverAndSend(c *transport.Conn, title media.Title, index int, ws *watchSession) error {
	frame, payload, err := s.deliverCluster(title, index, ws)
	if err != nil {
		return fmt.Errorf("cluster %d: %w", index, err)
	}
	err = s.sendCluster(c, transport.TypeCluster, payload, frame)
	frame.Release()
	return err
}

// streamUnicast delivers [start, end) with a private read per cluster — the
// paper's delivery mode, and the fallback when merging is disabled.
func (s *Server) streamUnicast(c *transport.Conn, title media.Title, end, start int, ws *watchSession) error {
	for idx := start; idx < end; idx++ {
		if err := s.deliverAndSend(c, title, idx, ws); err != nil {
			return err
		}
	}
	return nil
}

// mergeSource adapts the private delivery path into a cohort's shared read
// source. The pump calls it once per cluster for the whole cohort; replica
// failover inside deliverCluster is therefore shared too, and the retry
// budget spent defending the shared stream is the opening session's.
func (s *Server) mergeSource(title media.Title, ws *watchSession) merge.Source {
	return func(index int) (*transport.Frame, transport.ClusterPayload, error) {
		return s.deliverCluster(title, index, ws)
	}
}

// joinCohort attaches one session to the merge registry. For a non-resident
// title with relay cohorts enabled, a newly created cohort reads through one
// shared upstream relay.join subscription — N local watchers cost the origin
// one stream — instead of per-cluster peer fetches; the relay source is lazy
// (its connection opens on the first pump read) because Join only uses the
// source when this session actually creates the cohort.
func (s *Server) joinCohort(title media.Title, numClusters, start int, ws *watchSession) (*merge.Sub, error) {
	if s.cfg.RelayCohorts && !s.cfg.Cache.Resident(title.Name) {
		rs := &relaySource{s: s, title: title, ws: ws}
		return s.merges.JoinSource(title.Name, numClusters, start, rs.read, rs.close)
	}
	return s.merges.JoinSourceHold(title.Name, numClusters, start, s.mergeSource(title, ws), nil, ws.holdDown)
}

// prefixCoversAll reports whether the pinned prefix alone serves the whole
// session: the admission-time tail plan is offset by K, and when K reaches
// the title's end there is no tail to reserve links for.
func (s *Server) prefixCoversAll(title media.Title, start int) bool {
	if s.cfg.Prefix == nil || start < 0 {
		return false
	}
	k := s.cfg.Prefix.PrefixClusters(title.Name)
	if k == 0 {
		return false
	}
	layout, err := striping.NewLayout(title, s.cfg.ClusterBytes, 1)
	if err != nil {
		return false
	}
	return k >= layout.NumParts()
}

// prefixAnnouncement computes one session's prefix.info: how many leading
// clusters (from its start position) come off the local prefix, how many
// remote round trips the first cluster costs, and whether the tail rides a
// shared relay subscription.
func (s *Server) prefixAnnouncement(title media.Title, numClusters, start int) transport.PrefixAnnouncePayload {
	var p transport.PrefixAnnouncePayload
	resident := s.cfg.Cache.Resident(title.Name)
	if !resident {
		if k := s.cfg.Prefix.PrefixClusters(title.Name); k > start {
			p.PrefixClusters = min(k, numClusters) - start
		}
	}
	if !resident && p.PrefixClusters == 0 && start < numClusters {
		p.StartupRTTs = 1
	}
	if s.cfg.RelayCohorts && s.merges != nil && !resident && start+p.PrefixClusters < numClusters {
		p.RelayTail = true
	}
	return p
}

// sendPrefixInfo queues a session's prefix-tier announcement on the
// negotiated framing; like the queued watch.ok it rides the first cluster
// frame's writev.
func (s *Server) sendPrefixInfo(c *transport.Conn, p transport.PrefixAnnouncePayload) error {
	if c.BinaryFrames() {
		return c.QueuePrefixAnnounceFrame(p)
	}
	m, err := transport.Encode(transport.TypePrefixInfo, p)
	if err != nil {
		return err
	}
	return c.QueueMessage(m)
}

// relaySource adapts one upstream relay.join subscription into a cohort
// source: the cross-server merging extension. The pump is the only caller
// (reads are sequential and never concurrent, and the cleanup hook runs
// after the last read), so the source needs no locking. On upstream failure
// it reopens against the next replica once, then falls back permanently to
// the private per-cluster delivery path — the cohort keeps streaming either
// way.
type relaySource struct {
	s     *Server
	title media.Title
	ws    *watchSession

	conn    *transport.Conn
	peer    topology.NodeID
	links   []topology.LinkID
	next    int // next cluster index expected from the upstream stream
	broken  bool
	exclude map[topology.NodeID]bool
}

// read obtains one cluster for the cohort pump.
func (r *relaySource) read(index int) (*transport.Frame, transport.ClusterPayload, error) {
	if r.broken {
		return r.s.deliverCluster(r.title, index, r.ws)
	}
	for attempt := 0; attempt < 2; attempt++ {
		if r.conn == nil || index < r.next {
			if err := r.reopen(index); err != nil {
				break
			}
		}
		frame, payload, err := r.readAt(index)
		if err == nil {
			return frame, payload, nil
		}
		r.closeConn()
	}
	// Out of upstream replicas (or a misbehaving stream): the rest of this
	// cohort is served by the private path, whose own retry loop, breakers,
	// and prefix checks still apply.
	r.broken = true
	r.s.cfg.Metrics.Counter("server.relay_fallbacks").Inc()
	return r.s.deliverCluster(r.title, index, r.ws)
}

// close is the cohort's source-cleanup hook.
func (r *relaySource) close() { r.closeConn() }

func (r *relaySource) closeConn() {
	if r.conn != nil {
		_ = r.conn.Close()
		r.conn = nil
	}
}

// reopen plans the current holder, dials it, and subscribes from index. The
// previous upstream peer (if any) is excluded so a failing holder is not
// redialed.
func (r *relaySource) reopen(index int) error {
	r.closeConn()
	if r.exclude == nil {
		r.exclude = make(map[topology.NodeID]bool)
	}
	if r.peer != "" {
		r.exclude[r.peer] = true
	}
	dec, err := r.s.planDefended(r.title.Name, r.ws.planRate, r.exclude)
	if err != nil {
		return err
	}
	if dec.Server == r.s.cfg.Node {
		return fmt.Errorf("holding inconsistency for %q on %s", r.title.Name, r.s.cfg.Node)
	}
	addr, err := r.s.cfg.Book.Lookup(dec.Server)
	if err != nil {
		return err
	}
	var wrap func(io.ReadWriteCloser) io.ReadWriteCloser
	if r.s.cfg.Faults != nil {
		links := dec.Path.Links()
		if ferr := r.s.cfg.Faults.DialError(dec.Server, links); ferr != nil {
			return ferr
		}
		wrap = func(rw io.ReadWriteCloser) io.ReadWriteCloser {
			return r.s.cfg.Faults.WrapStream(dec.Server, links, rw)
		}
	}
	conn, err := transport.DialWith(addr, wrap)
	if err != nil {
		return err
	}
	// Binary framing keeps the relay stream on the kernel-send path at the
	// origin; a legacy holder refuses the hello and the stream continues on
	// JSON framing.
	_, _ = conn.Negotiate()
	req, err := transport.Encode(transport.TypeRelayJoin, transport.RelayJoinPayload{
		Title:        r.title.Name,
		StartCluster: index,
	})
	if err != nil {
		_ = conn.Close()
		return err
	}
	if err := conn.WriteMessage(req); err != nil {
		_ = conn.Close()
		return err
	}
	r.conn = conn
	r.peer = dec.Server
	r.links = dec.Path.Links()
	r.next = index
	r.s.cfg.Metrics.Counter("server.relay_upstreams").Inc()
	return nil
}

// readAt consumes the upstream stream until the wanted cluster arrives,
// skipping control announcements (watch.ok, merge.info, prefix.info) and any
// clusters before index (the origin streams sequentially from the subscribed
// position; a jump past already-broadcast clusters discards the overlap).
func (r *relaySource) readAt(index int) (*transport.Frame, transport.ClusterPayload, error) {
	for {
		m, f, err := r.conn.ReadFrameOrMessage(r.s.cfg.Pool)
		if err != nil {
			return nil, transport.ClusterPayload{}, err
		}
		if f != nil {
			if f.Type != transport.FrameCluster {
				f.Release() // merge.info / prefix.info announcements
				continue
			}
			payload, body, derr := transport.DecodeClusterFrame(f)
			if derr != nil {
				f.Release()
				return nil, transport.ClusterPayload{}, derr
			}
			if payload.Index < index {
				f.Release()
				continue
			}
			if payload.Index > index {
				f.Release()
				return nil, transport.ClusterPayload{}, fmt.Errorf("relay stream at cluster %d, want %d", payload.Index, index)
			}
			// The frame's pooled payload holds meta + body; the cohort needs
			// a body-only frame, so the cluster is copied into its own lease.
			buf := r.s.cfg.Pool.Get(len(body))
			copy(buf, body)
			f.Release()
			r.account(payload)
			return transport.NewLeasedFrame(r.s.cfg.Pool, buf), payload, nil
		}
		switch m.Type {
		case transport.TypeWatchOK, transport.TypeMergeInfo, transport.TypePrefixInfo:
			continue
		case transport.TypeWatchDone:
			return nil, transport.ClusterPayload{}, fmt.Errorf("relay upstream finished before cluster %d", index)
		case transport.TypeError:
			return nil, transport.ClusterPayload{}, transport.AsError(m)
		case transport.TypeCluster:
			payload, derr := transport.Decode[transport.ClusterPayload](m)
			if derr != nil {
				return nil, transport.ClusterPayload{}, derr
			}
			bodyFrame, derr := r.conn.ReadBody(payload.Length, r.s.cfg.Pool)
			if derr != nil {
				return nil, transport.ClusterPayload{}, derr
			}
			if payload.Index < index {
				bodyFrame.Release()
				continue
			}
			if payload.Index > index {
				bodyFrame.Release()
				return nil, transport.ClusterPayload{}, fmt.Errorf("relay stream at cluster %d, want %d", payload.Index, index)
			}
			r.account(payload)
			return bodyFrame, payload, nil
		default:
			return nil, transport.ClusterPayload{}, fmt.Errorf("unexpected relay stream message %q", m.Type)
		}
	}
}

// account charges one relayed cluster: the shared-stream counter and the
// links the bytes crossed (the SNMP estimator sees relay traffic like any
// other delivery).
func (r *relaySource) account(payload transport.ClusterPayload) {
	r.next = payload.Index + 1
	r.s.cfg.Metrics.Counter("server.relay_clusters").Inc()
	if r.s.cfg.Counters != nil {
		r.s.cfg.Counters.ChargePath(r.links, payload.Length)
	}
}

// handleRelay answers one relay.join: stream the title to a downstream
// relay server exactly as a watch would — through this node's own merge
// registry when enabled, so N relays subscribing within the window share one
// disk-read stream. A relay join counts one demand signal into the DMA (one
// downstream cohort aggregates many viewers) but takes no admission grant
// and is never redirected: the relay already planned this holder.
func (s *Server) handleRelay(c *transport.Conn, m transport.Message) error {
	req, err := transport.Decode[transport.RelayJoinPayload](m)
	if err != nil {
		return err
	}
	title, err := s.cfg.DB.Catalog().Title(req.Title)
	if err != nil {
		return err
	}
	outcome, err := s.cfg.Cache.OnRequest(title)
	if err != nil {
		return fmt.Errorf("dma: %w", err)
	}
	now := s.cfg.Clock.Now()
	for _, ev := range outcome.Evicted {
		if err := s.cfg.DB.SetHolding(s.cfg.Node, ev, false, now); err != nil {
			return err
		}
	}
	if outcome.Admitted {
		if err := s.cfg.DB.SetHolding(s.cfg.Node, title.Name, true, now); err != nil {
			return err
		}
	}
	layout, err := striping.NewLayout(title, s.cfg.ClusterBytes, 1)
	if err != nil {
		return err
	}
	if req.StartCluster < 0 || req.StartCluster >= layout.NumParts() {
		return fmt.Errorf("start cluster %d outside [0, %d)", req.StartCluster, layout.NumParts())
	}
	head, err := transport.Encode(transport.TypeWatchOK, transport.WatchOKPayload{
		Title:        title.Name,
		SizeBytes:    title.SizeBytes,
		BitrateMbps:  title.BitrateMbps,
		ClusterBytes: s.cfg.ClusterBytes,
		NumClusters:  layout.NumParts(),
	})
	if err != nil {
		return err
	}
	if err := c.QueueMessage(head); err != nil {
		return err
	}
	ws := &watchSession{holdDown: max(s.cfg.RelayHoldDown, 0)}
	if !s.cfg.DisableDefense {
		ws.budget = faults.NewRetryBudget(3, 0.1)
	}
	s.cfg.Metrics.Counter("server.relay_watchers").Inc()
	if s.merges != nil {
		err = s.streamMerged(c, title, layout.NumParts(), req.StartCluster, ws)
	} else {
		err = s.streamUnicast(c, title, layout.NumParts(), req.StartCluster, ws)
	}
	if err != nil {
		return err
	}
	done, err := transport.Encode(transport.TypeWatchDone, transport.WatchDonePayload{})
	if err != nil {
		return err
	}
	return c.WriteMessage(done)
}

// streamMerged delivers a watch session through the stream-merging layer:
// join (or open) a cohort, announce the merge to the client, privately patch
// the gap up to the join position, then relay the shared base stream. When
// the cohort detaches this session early — it stalled, or the cohort's
// source failed — the remaining clusters are delivered over the private
// unicast path, whose own replica retry absorbs server failures, so the
// client sees an unbroken in-order stream either way.
func (s *Server) streamMerged(c *transport.Conn, title media.Title, numClusters, start int, ws *watchSession) error {
	// Local-prefix fast path: clusters [start, head) are pinned locally and
	// stream with zero cross-network fetches — instant start. The cohort is
	// joined at head, so the shared stream (and its upstream relay, when
	// enabled) carries only the tail the VRA must fetch.
	head := start
	if s.cfg.Prefix != nil && !s.cfg.Cache.Resident(title.Name) {
		if k := s.cfg.Prefix.PrefixClusters(title.Name); k > head {
			head = min(k, numClusters)
		}
	}
	// The tail cohort is joined BEFORE the head streams: the subscription
	// queue buffers the shared stream while the pinned prefix plays, so the
	// tail is prefetched behind the head (the patching literature's
	// prefix/suffix pipelining). For relay cohorts this is what makes the
	// upstream relay.join land at session start — every relay server in a
	// flash crowd dials the origin within the aggregation hold-down, however
	// long its pinned head takes to play out — instead of at head
	// completion, whose timing spreads with load.
	var sub *merge.Sub
	if head < numClusters {
		var err error
		sub, err = s.joinCohort(title, numClusters, head, ws)
		if err != nil {
			return err
		}
		// Leave is idempotent and releases any queued frames on error paths.
		defer sub.Leave()
		role := transport.MergeRolePatch
		if sub.Created() {
			role = transport.MergeRoleBase
		}
		if err := s.sendMergeInfo(c, transport.MergeInfoPayload{
			Cohort:        sub.CohortID(),
			Role:          role,
			JoinIndex:     sub.Start(),
			PatchClusters: sub.Start() - head,
		}); err != nil {
			return err
		}
	}
	for idx := start; idx < head; idx++ {
		if err := s.deliverAndSend(c, title, idx, ws); err != nil {
			return err
		}
	}
	if sub == nil {
		return nil
	}
	// Patch stream: the clusters this session missed, read privately while
	// the subscription queue buffers the ongoing base stream. With a prefix
	// pinned past the join position the patch never leaves local disk.
	for idx := head; idx < sub.Start(); idx++ {
		if err := s.deliverAndSend(c, title, idx, ws); err != nil {
			return err
		}
	}
	next := sub.Start()
	for {
		item, ok := sub.Recv()
		if !ok {
			break
		}
		err := s.sendCluster(c, transport.TypeCluster, item.Payload, item.Frame)
		item.Frame.Release()
		if err != nil {
			return err
		}
		next = item.Payload.Index + 1
	}
	// Unicast tail: nothing to do after normal cohort completion; after an
	// eviction it resumes at exactly the next undelivered index.
	for idx := next; idx < numClusters; idx++ {
		if err := s.deliverAndSend(c, title, idx, ws); err != nil {
			return err
		}
	}
	return nil
}

// sendMergeInfo queues a session's cohort-attachment announcement on the
// negotiated framing. It joins the queued watch.ok in the first cluster
// frame's writev (watch.done flushes it when the session has no clusters).
func (s *Server) sendMergeInfo(c *transport.Conn, p transport.MergeInfoPayload) error {
	if c.BinaryFrames() {
		return c.QueueMergeInfoFrame(p)
	}
	m, err := transport.Encode(transport.TypeMergeInfo, p)
	if err != nil {
		return err
	}
	return c.QueueMessage(m)
}

// planCluster picks the serving replica for one cluster, bandwidth-aware
// when the session carries an admission grant.
func (s *Server) planCluster(title string, planRate float64, exclude map[topology.NodeID]bool) (core.Decision, error) {
	if s.cfg.Broker != nil && planRate > 0 {
		dec, err := s.cfg.Planner.PlanBandwidth(s.cfg.Node, title, planRate, exclude)
		if err == nil {
			return dec, nil
		}
		if !errors.Is(err, core.ErrInsufficientBandwidth) {
			return core.Decision{}, err
		}
		s.cfg.Metrics.Counter("server.plan_headroom_fallbacks").Inc()
	}
	return s.cfg.Planner.PlanExcluding(s.cfg.Node, title, exclude)
}

// fetchRemoteCluster pulls one cluster from a peer over TCP into a
// pool-leased frame (the peer exchange itself stays on JSON framing: each
// fetch is a fresh connection, where a hello round trip would cost more than
// the marshal it saves).
func (s *Server) fetchRemoteCluster(dec core.Decision, title string, index int) (*transport.Frame, transport.ClusterPayload, error) {
	addr, err := s.cfg.Book.Lookup(dec.Server)
	if err != nil {
		return nil, transport.ClusterPayload{}, err
	}
	// With an injector armed, scheduled faults covering this route refuse
	// the dial outright and interpose on the connection's bytes (cuts and
	// stalls mid-cluster).
	var wrap func(io.ReadWriteCloser) io.ReadWriteCloser
	if s.cfg.Faults != nil {
		links := dec.Path.Links()
		if ferr := s.cfg.Faults.DialError(dec.Server, links); ferr != nil {
			return nil, transport.ClusterPayload{}, ferr
		}
		wrap = func(rw io.ReadWriteCloser) io.ReadWriteCloser {
			return s.cfg.Faults.WrapStream(dec.Server, links, rw)
		}
	}
	peer, err := transport.DialWith(addr, wrap)
	if err != nil {
		return nil, transport.ClusterPayload{}, err
	}
	defer peer.Close()
	req, err := transport.Encode(transport.TypeClusterGet, transport.ClusterGetPayload{
		Title:        title,
		Index:        index,
		ClusterBytes: s.cfg.ClusterBytes,
	})
	if err != nil {
		return nil, transport.ClusterPayload{}, err
	}
	if err := peer.WriteMessage(req); err != nil {
		return nil, transport.ClusterPayload{}, err
	}
	var payload transport.ClusterPayload
	_, frame, err := peer.ReadMessageWithBodyPool(s.cfg.Pool, func(m transport.Message) (int64, error) {
		if rerr := transport.AsError(m); rerr != nil {
			return 0, rerr
		}
		p, err := transport.Decode[transport.ClusterPayload](m)
		if err != nil {
			return 0, err
		}
		payload = p
		return p.Length, nil
	})
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, transport.ClusterPayload{}, fmt.Errorf("peer %s closed during cluster fetch", dec.Server)
		}
		return nil, transport.ClusterPayload{}, err
	}
	return frame, payload, nil
}

// Preload stores a title locally and records the holding in the database —
// the paper's initialization phase, where administrators distribute the
// initial title placement.
func (s *Server) Preload(t media.Title) error {
	dma, ok := s.cfg.Cache.(*cache.DMA)
	if !ok {
		return errors.New("preload requires the DMA cache")
	}
	if err := dma.Preload(t); err != nil {
		return err
	}
	return s.cfg.DB.SetHolding(s.cfg.Node, t.Name, true, s.cfg.Clock.Now())
}

// WaitReady dials the server until it answers a ping or the timeout
// expires — a test/startup helper. Probes back off with jitter so a fleet of
// waiters does not poll in lockstep.
func (s *Server) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	bo := faults.NewBackoff(2*time.Millisecond, 50*time.Millisecond, 2, int64(len(s.cfg.Node)))
	for {
		c, err := transport.Dial(s.Addr())
		if err == nil {
			ping, perr := transport.Encode(transport.TypePing, nil)
			if perr == nil {
				if err := c.WriteMessage(ping); err == nil {
					if m, err := c.ReadMessage(); err == nil && m.Type == transport.TypePong {
						_ = c.Close()
						return nil
					}
				}
			}
			_ = c.Close()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server %s not ready: %v", s.cfg.Node, err)
		}
		time.Sleep(bo.Next())
	}
}
