package server_test

import (
	"testing"
	"time"

	"dvod/internal/client"
	"dvod/internal/clock"
	"dvod/internal/disk"
	"dvod/internal/faults"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/server"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// waitPoolDrained asserts that every buffer lease taken from the pool has
// been returned. Release paths that run asynchronously (hedge-loser drains,
// cohort pump teardown) are given a grace window before the balance is
// declared a leak.
func waitPoolDrained(t *testing.T, pool *transport.BufferPool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for pool.Outstanding() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%s: pool leaked %d leases", what, pool.Outstanding())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolBalancedAfterRemoteWatch is the baseline lease audit: a watch whose
// every cluster crosses the peer-fetch path must leave both the server-side
// and the client-side pools with zero outstanding leases once it completes.
func TestPoolBalancedAfterRemoteWatch(t *testing.T) {
	pool := transport.NewBufferPool(nil)
	lc := newCluster(t, map[topology.NodeID]int64{grnet.Patra: clusterBytes},
		func(c *server.Config) { c.Pool = pool })
	title := media.Title{Name: "audited", SizeBytes: 32 * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Thessaloniki)

	cpool := transport.NewBufferPool(nil)
	p, err := client.NewPlayer(grnet.Patra, lc.book, client.WithBufferPool(cpool))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("audited")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Verified {
		t.Fatal("delivery not verified")
	}
	waitPoolDrained(t, pool, "server")
	waitPoolDrained(t, cpool, "client")
}

// TestPoolBalancedAfterHedgedLoser drags every disk read on the preferred
// replica past the hedge deadline, so fetches race the second replica and the
// straggling loser frames are drained in the background. The audit is that
// those drained frames all return their leases — hedging must never leak.
func TestPoolBalancedAfterHedgedLoser(t *testing.T) {
	pool := transport.NewBufferPool(nil)
	lc := newCluster(t, map[topology.NodeID]int64{grnet.Patra: clusterBytes},
		func(c *server.Config) {
			c.Pool = pool
			if c.Node == grnet.Thessaloniki {
				c.Array.SetReadInterceptor(func(disk.BlockID) disk.ReadFault {
					time.Sleep(25 * time.Millisecond)
					return disk.ReadFault{}
				})
			}
		})
	title := media.Title{Name: "hedged", SizeBytes: 32 * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Thessaloniki, grnet.Xanthi)

	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("hedged")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Verified {
		t.Fatal("delivery not verified")
	}
	m := lc.servers[grnet.Patra].Metrics().Snapshot()
	if m.Counters["client.hedges_launched"] == 0 {
		t.Fatal("dragged replica never triggered a hedge")
	}
	if m.Counters["client.hedges_won"] == 0 {
		t.Fatal("no hedge beat the dragged replica")
	}
	waitPoolDrained(t, pool, "server")
}

// TestPoolBalancedAfterFailoverMidCohort kills the serving peer while a
// merged cohort is parked mid-title (a stalled subscriber holds the pump), so
// the failover to the surviving replica happens with frames in flight. Both
// the evicted slow session and the fast one must complete gaplessly, and the
// shared pool must balance afterwards.
func TestPoolBalancedAfterFailoverMidCohort(t *testing.T) {
	const cb = 64 << 10
	const numClusters = 64
	pool := transport.NewBufferPool(nil)
	lc := newMergeNodesCfg(t, cb, numClusters, 4, map[topology.NodeID]int64{
		grnet.Patra:        cb, // relay only: the title never fits locally
		grnet.Thessaloniki: 2 << 20,
		grnet.Xanthi:       2 << 20,
	}, func(c *server.Config, _ *disk.Array) { c.Pool = pool },
		grnet.Patra, grnet.Thessaloniki, grnet.Xanthi)
	title := media.Title{Name: "leaky", SizeBytes: numClusters * cb, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Thessaloniki, grnet.Xanthi)

	slow := startRawWatch(t, lc.servers[grnet.Patra].Addr(), "leaky")
	slow.readClusters(2)
	time.Sleep(300 * time.Millisecond) // park the pump mid-title
	if err := lc.servers[grnet.Thessaloniki].Close(); err != nil {
		t.Fatal(err)
	}

	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("leaky")
	if err != nil {
		t.Fatalf("watch across peer death: %v", err)
	}
	if !stats.Verified {
		t.Fatal("post-failure delivery not verified")
	}
	slow.unthrottle()
	slow.readClusters(-1)
	slow.assertComplete()
	waitPoolDrained(t, pool, "server")
}

// TestMergedEvictionUnderDiskFault stalls a cohort subscriber while a
// disk.slow fault from an armed plan drags every local read on the serving
// node. The stalled session must be evicted so the fast joiner finishes, yet
// still receive the entire title in order — the gapless-eviction invariant
// must hold with the storage path faulted — and the pool must balance.
func TestMergedEvictionUnderDiskFault(t *testing.T) {
	const cb = 64 << 10
	const numClusters = 256
	var plan faults.Plan
	plan.SlowDisk(0, time.Minute, grnet.Patra, time.Millisecond)
	inj, err := faults.NewInjector(plan, 7, clock.Wall{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := transport.NewBufferPool(nil)
	lc := newMergeNodesCfg(t, cb, numClusters, 4,
		map[topology.NodeID]int64{grnet.Patra: 6 << 20},
		func(c *server.Config, arr *disk.Array) {
			c.Pool = pool
			c.Faults = inj
			arr.SetReadInterceptor(inj.ReadInterceptor(c.Node))
		}, grnet.Patra)
	title := media.Title{Name: "dragged", SizeBytes: numClusters * cb, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Patra)
	if err := inj.Start(); err != nil {
		t.Fatal(err)
	}
	defer inj.Stop()

	slow := startRawWatch(t, lc.servers[grnet.Patra].Addr(), "dragged")
	if slow.mi.Role != transport.MergeRoleBase {
		t.Fatalf("first watcher role %q, want %q", slow.mi.Role, transport.MergeRoleBase)
	}
	slow.readClusters(2)
	time.Sleep(300 * time.Millisecond) // stop reading; let the pump park

	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("dragged")
	if err != nil {
		t.Fatalf("fast watcher: %v", err)
	}
	if !stats.Verified {
		t.Fatal("fast delivery not verified")
	}
	if !stats.Merged || stats.MergeRole != transport.MergeRolePatch {
		t.Fatalf("fast watcher merged=%v role=%q, want a patch join", stats.Merged, stats.MergeRole)
	}

	// The evicted session resumes over its buffered queue plus the unicast
	// tail and must see no gap, fault or not.
	slow.unthrottle()
	slow.readClusters(-1)
	slow.assertComplete()

	m := lc.servers[grnet.Patra].Metrics().Snapshot()
	if m.Counters["merge.evictions"] != 1 {
		t.Fatalf("evictions = %d, want exactly the stalled session", m.Counters["merge.evictions"])
	}
	if inj.InjectedTotal() == 0 {
		t.Fatal("disk.slow fault never fired during the cohort's life")
	}
	waitPoolDrained(t, pool, "server")
}
