package server_test

import (
	"testing"
	"time"

	"dvod/internal/cache"
	"dvod/internal/client"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/disk"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/server"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// TestWatchSurvivesDeadPeer: the home server's first-choice peer is dead
// (listener closed) but still listed in the catalog; the per-cluster retry
// must fall back to the surviving replica without failing the watch.
func TestWatchSurvivesDeadPeer(t *testing.T) {
	lc := newCluster(t, map[topology.NodeID]int64{grnet.Patra: clusterBytes})
	title := media.Title{Name: "resilient", SizeBytes: 6 * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Thessaloniki, grnet.Xanthi)

	// At 8am the VRA prefers Thessaloniki; kill it without cleaning the
	// catalog (a crash, not a drain).
	if err := lc.servers[grnet.Thessaloniki].Close(); err != nil {
		t.Fatal(err)
	}

	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("resilient")
	if err != nil {
		t.Fatalf("Watch with dead preferred peer: %v", err)
	}
	if !stats.Verified {
		t.Fatal("delivery not verified")
	}
	for i, src := range stats.Sources {
		if src != grnet.Xanthi {
			t.Fatalf("cluster %d source = %s, want survivor Xanthi", i, src)
		}
	}
	// The retries were counted.
	m := lc.servers[grnet.Patra].Metrics().Snapshot()
	if m.Counters["server.fetch_retries"] == 0 {
		t.Fatal("no fetch retries recorded")
	}
}

// TestWatchFailsWhenAllPeersDead: with every replica holder dead the watch
// surfaces an error instead of hanging.
func TestWatchFailsWhenAllPeersDead(t *testing.T) {
	lc := newCluster(t, map[topology.NodeID]int64{grnet.Patra: clusterBytes})
	// 6 clusters: disk 0 of Patra's 3×1-cluster array would need 2
	// clusters, so the DMA cannot admit it locally.
	title := media.Title{Name: "doomed", SizeBytes: 6 * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Heraklio)
	if err := lc.servers[grnet.Heraklio].Close(); err != nil {
		t.Fatal(err)
	}
	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Watch("doomed"); err == nil {
		t.Fatal("watch succeeded with all holders dead")
	}
}

// TestWatchFromSeek exercises the interactive-VoD seek: delivery starts at
// a mid-title cluster and the received bytes equal the remaining suffix.
func TestWatchFromSeek(t *testing.T) {
	lc := newCluster(t, nil)
	title := media.Title{Name: "seekable", SizeBytes: 5*clusterBytes + 99, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Patra)
	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.WatchFrom("seekable", 3)
	if err != nil {
		t.Fatalf("WatchFrom: %v", err)
	}
	wantBytes := title.SizeBytes - 3*clusterBytes
	if stats.BytesReceived != wantBytes {
		t.Fatalf("received %d, want %d", stats.BytesReceived, wantBytes)
	}
	if !stats.Verified {
		t.Fatal("seeked delivery not verified")
	}
	if len(stats.Records) != 3 { // clusters 3, 4, 5
		t.Fatalf("records = %d", len(stats.Records))
	}
	if stats.Records[0].Index != 3 {
		t.Fatalf("first delivered cluster = %d", stats.Records[0].Index)
	}

	// Out-of-range seeks error.
	if _, err := p.WatchFrom("seekable", 6); err == nil {
		t.Fatal("seek past end accepted")
	}
	if _, err := p.WatchFrom("seekable", -1); err == nil {
		t.Fatal("negative seek accepted")
	}
	// Seek to the final (short) cluster.
	stats, err = p.WatchFrom("seekable", 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BytesReceived != 99 {
		t.Fatalf("tail seek received %d, want 99", stats.BytesReceived)
	}
}

// TestIdleClientDisconnected: a connection that never sends a request is
// closed once the idle timeout elapses.
func TestIdleClientDisconnected(t *testing.T) {
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	arr, err := disk.NewUniformArray("idle", 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Node: grnet.Patra, DB: d, Planner: planner, Array: arr, Cache: dma,
		ClusterBytes: 1024, Book: transport.NewAddrBook(),
		IdleTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	conn, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing; the server must hang up.
	start := time.Now()
	_, err = conn.ReadMessage()
	if err == nil {
		t.Fatal("idle connection stayed open")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("disconnect took %v", elapsed)
	}
	// Negative timeout is rejected at construction.
	if _, err := server.New(server.Config{
		Node: grnet.Patra, DB: d, Planner: planner, Array: arr, Cache: dma,
		ClusterBytes: 1024, Book: transport.NewAddrBook(),
		IdleTimeout: -time.Second,
	}); err == nil {
		t.Fatal("negative idle timeout accepted")
	}
}
