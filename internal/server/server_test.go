package server_test

import (
	"strings"
	"testing"
	"time"

	"dvod/internal/cache"
	"dvod/internal/client"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/disk"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/server"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

var t0 = time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)

const clusterBytes = 1024

// liveCluster is a full six-node live deployment on localhost.
type liveCluster struct {
	db       *db.DB
	book     *transport.AddrBook
	counters *transport.Counters
	servers  map[topology.NodeID]*server.Server
}

// newCluster brings up all six GRNET video servers with per-node array
// capacities (nodes absent from capacities get the default 1 MiB). opts
// mutate every node's configuration before construction (e.g. to enable
// stream merging).
func newCluster(t *testing.T, capacities map[topology.NodeID]int64, opts ...func(*server.Config)) *liveCluster {
	t.Helper()
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	for _, row := range grnet.Table2() {
		id := topology.MakeLinkID(row.A, row.B)
		if err := d.UpsertLinkStats(id, row.TrafficMbps[0], t0); err != nil {
			t.Fatal(err)
		}
	}
	book := transport.NewAddrBook()
	counters := transport.NewCounters()
	lc := &liveCluster{db: d, book: book, counters: counters,
		servers: make(map[topology.NodeID]*server.Server)}
	for _, node := range grnet.Nodes() {
		capBytes := int64(1 << 20)
		if c, ok := capacities[node]; ok {
			capBytes = c
		}
		arr, err := disk.NewUniformArray(string(node), 3, capBytes)
		if err != nil {
			t.Fatal(err)
		}
		dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: clusterBytes})
		if err != nil {
			t.Fatal(err)
		}
		planner, err := core.NewPlanner(d, core.VRA{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg := server.Config{
			Node:         node,
			DB:           d,
			Planner:      planner,
			Array:        arr,
			Cache:        dma,
			ClusterBytes: clusterBytes,
			Book:         book,
			Counters:     counters,
		}
		for _, o := range opts {
			o(&cfg)
		}
		srv, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		lc.servers[node] = srv
	}
	for _, srv := range lc.servers {
		if err := srv.WaitReady(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return lc
}

func (lc *liveCluster) addTitle(t *testing.T, title media.Title, holders ...topology.NodeID) {
	t.Helper()
	if err := lc.db.Catalog().AddTitle(title); err != nil {
		t.Fatal(err)
	}
	for _, h := range holders {
		if err := lc.servers[h].Preload(title); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	arr, err := disk.NewUniformArray("x", 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	book := transport.NewAddrBook()
	good := server.Config{
		Node: grnet.Patra, DB: d, Planner: planner, Array: arr,
		Cache: dma, ClusterBytes: 64, Book: book,
	}
	if _, err := server.New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	breakers := []func(*server.Config){
		func(c *server.Config) { c.Node = "" },
		func(c *server.Config) { c.Node = "U99" },
		func(c *server.Config) { c.DB = nil },
		func(c *server.Config) { c.Planner = nil },
		func(c *server.Config) { c.Array = nil },
		func(c *server.Config) { c.Cache = nil },
		func(c *server.Config) { c.ClusterBytes = 0 },
		func(c *server.Config) { c.Book = nil },
	}
	for i, brk := range breakers {
		cfg := good
		brk(&cfg)
		if _, err := server.New(cfg); err == nil {
			t.Fatalf("breaker %d accepted", i)
		}
	}
}

func TestListTitles(t *testing.T) {
	lc := newCluster(t, nil)
	title := media.Title{Name: "zorba", SizeBytes: 4 * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Xanthi)
	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	titles, err := p.ListTitles()
	if err != nil {
		t.Fatal(err)
	}
	if len(titles) != 1 || titles[0].Name != "zorba" {
		t.Fatalf("titles = %v", titles)
	}
	if titles[0].Resident {
		t.Fatal("Patra reports the title resident, but only Xanthi holds it")
	}
	// The holder's own view marks it resident.
	px, err := client.NewPlayer(grnet.Xanthi, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	titles, err = px.ListTitles()
	if err != nil {
		t.Fatal(err)
	}
	if !titles[0].Resident {
		t.Fatal("Xanthi does not report its preloaded title")
	}
}

func TestWatchRemoteFetchVerified(t *testing.T) {
	// Patra's array is too small to admit the title, so every cluster is
	// fetched from the VRA-chosen peer (Thessaloniki via Ioannina at 8am
	// per the corrected Experiment A).
	lc := newCluster(t, map[topology.NodeID]int64{grnet.Patra: clusterBytes})
	title := media.Title{Name: "zorba", SizeBytes: 4*clusterBytes + 100, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Thessaloniki, grnet.Xanthi)

	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("zorba")
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if !stats.Verified {
		t.Fatal("content verification failed")
	}
	if stats.BytesReceived != title.SizeBytes {
		t.Fatalf("received %d bytes, want %d", stats.BytesReceived, title.SizeBytes)
	}
	if stats.NumClusters != 5 || len(stats.Sources) != 5 {
		t.Fatalf("clusters = %d, sources = %v", stats.NumClusters, stats.Sources)
	}
	for i, src := range stats.Sources {
		if src != grnet.Thessaloniki {
			t.Fatalf("cluster %d source = %s, want Thessaloniki", i, src)
		}
	}
	if stats.Switches != 0 {
		t.Fatalf("switches = %d under static conditions", stats.Switches)
	}
	// Delivered bytes were charged against the chosen route's links.
	for _, id := range []topology.LinkID{
		topology.MakeLinkID(grnet.Patra, grnet.Ioannina),
		topology.MakeLinkID(grnet.Ioannina, grnet.Thessaloniki),
	} {
		oct, err := lc.counters.LinkOctets(id)
		if err != nil {
			t.Fatal(err)
		}
		if oct != uint64(title.SizeBytes) {
			t.Fatalf("link %s charged %d octets, want %d", id, oct, title.SizeBytes)
		}
	}
	// The untouched direct Athens route carries nothing.
	oct, err := lc.counters.LinkOctets(topology.MakeLinkID(grnet.Patra, grnet.Athens))
	if err != nil {
		t.Fatal(err)
	}
	if oct != 0 {
		t.Fatalf("Patra-Athens charged %d octets, want 0", oct)
	}
}

func TestWatchAdmitsLocallyWhenFits(t *testing.T) {
	lc := newCluster(t, nil) // default 1 MiB per disk: plenty
	title := media.Title{Name: "zorba", SizeBytes: 3 * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Xanthi)

	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("zorba")
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2 admits immediately when the disks can tolerate the video,
	// so even the first delivery is local.
	for i, src := range stats.Sources {
		if src != grnet.Patra {
			t.Fatalf("cluster %d source = %s, want local Patra", i, src)
		}
	}
	// The admission is visible in the shared catalog.
	holders, err := lc.db.Catalog().Holders("zorba")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range holders {
		if h == grnet.Patra {
			found = true
		}
	}
	if !found {
		t.Fatalf("holders = %v, want Patra included after DMA admission", holders)
	}
	// A second watch is a pure local hit.
	stats2, err := p.Watch("zorba")
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.Verified || stats2.BytesReceived != title.SizeBytes {
		t.Fatalf("second watch: %+v", stats2)
	}
	m := lc.servers[grnet.Patra].Metrics().Snapshot()
	if m.Counters["server.dma_hits"] != 1 {
		t.Fatalf("dma_hits = %d, want 1", m.Counters["server.dma_hits"])
	}
	if m.Counters["server.dma_admissions"] != 1 {
		t.Fatalf("dma_admissions = %d, want 1", m.Counters["server.dma_admissions"])
	}
}

func TestWatchUnknownTitle(t *testing.T) {
	lc := newCluster(t, nil)
	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Watch("ghost")
	if err == nil || !strings.Contains(err.Error(), "remote error") {
		t.Fatalf("Watch(ghost) error = %v", err)
	}
}

func TestWatchNoHolder(t *testing.T) {
	lc := newCluster(t, map[topology.NodeID]int64{grnet.Patra: clusterBytes})
	title := media.Title{Name: "orphan", SizeBytes: 4 * clusterBytes, BitrateMbps: 1.5}
	if err := lc.db.Catalog().AddTitle(title); err != nil {
		t.Fatal(err)
	}
	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Watch("orphan"); err == nil {
		t.Fatal("Watch with no holder succeeded")
	}
}

func TestClusterGetDirect(t *testing.T) {
	lc := newCluster(t, nil)
	title := media.Title{Name: "direct", SizeBytes: 2*clusterBytes + 7, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Heraklio)
	conn, err := transport.Dial(lc.servers[grnet.Heraklio].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req, err := transport.Encode(transport.TypeClusterGet, transport.ClusterGetPayload{
		Title: "direct", Index: 2, ClusterBytes: clusterBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(req); err != nil {
		t.Fatal(err)
	}
	var payload transport.ClusterPayload
	_, body, err := conn.ReadMessageWithBody(func(m transport.Message) (int64, error) {
		if rerr := transport.AsError(m); rerr != nil {
			return 0, rerr
		}
		pl, err := transport.Decode[transport.ClusterPayload](m)
		if err != nil {
			return 0, err
		}
		payload = pl
		return pl.Length, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if payload.Length != 7 || payload.Offset != 2*clusterBytes || payload.Source != grnet.Heraklio {
		t.Fatalf("payload = %+v", payload)
	}
	if !media.Verify("direct", payload.Offset, body) {
		t.Fatal("cluster content mismatch")
	}
	// Requesting a non-resident title yields an error frame.
	req2, err := transport.Encode(transport.TypeClusterGet, transport.ClusterGetPayload{
		Title: "ghost", Index: 0, ClusterBytes: clusterBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(req2); err != nil {
		t.Fatal(err)
	}
	m, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if transport.AsError(m) == nil {
		t.Fatalf("expected error frame, got %s", m.Type)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	lc := newCluster(t, nil)
	srv := lc.servers[grnet.Athens]
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err == nil {
		t.Fatal("Start after Close accepted")
	}
}

func TestUnknownMessageType(t *testing.T) {
	lc := newCluster(t, nil)
	conn, err := transport.Dial(lc.servers[grnet.Patra].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteMessage(transport.Message{Type: "bogus"}); err != nil {
		t.Fatal(err)
	}
	m, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if transport.AsError(m) == nil {
		t.Fatalf("expected error frame, got %s", m.Type)
	}
}

func TestNewPlayerValidation(t *testing.T) {
	if _, err := client.NewPlayer("", transport.NewAddrBook()); err == nil {
		t.Fatal("empty home accepted")
	}
	if _, err := client.NewPlayer("U1", nil); err == nil {
		t.Fatal("nil book accepted")
	}
	p, err := client.NewPlayer("U1", transport.NewAddrBook())
	if err != nil {
		t.Fatal(err)
	}
	if p.Home() != "U1" {
		t.Fatal("Home wrong")
	}
	if _, err := p.Watch("x"); err == nil {
		t.Fatal("Watch with unregistered home succeeded")
	}
	if _, err := p.ListTitles(); err == nil {
		t.Fatal("ListTitles with unregistered home succeeded")
	}
}
