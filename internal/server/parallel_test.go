package server_test

import (
	"testing"

	"dvod/internal/client"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/topology"
)

func TestHoldersQuery(t *testing.T) {
	lc := newCluster(t, nil)
	title := media.Title{Name: "multi", SizeBytes: 4 * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Thessaloniki, grnet.Xanthi)
	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	info, err := p.Holders("multi")
	if err != nil {
		t.Fatal(err)
	}
	if info.NumClusters != 4 || info.SizeBytes != title.SizeBytes {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Holders) != 2 || info.Holders[0] != grnet.Thessaloniki {
		t.Fatalf("holders = %v", info.Holders)
	}
	if _, err := p.Holders("ghost"); err == nil {
		t.Fatal("unknown title accepted")
	}
}

func TestWatchParallelRoundRobin(t *testing.T) {
	lc := newCluster(t, nil)
	title := media.Title{Name: "striped", SizeBytes: 6*clusterBytes + 77, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Thessaloniki, grnet.Xanthi)
	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.WatchParallel("striped")
	if err != nil {
		t.Fatalf("WatchParallel: %v", err)
	}
	if !stats.Verified || stats.BytesReceived != title.SizeBytes {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.NumClusters != 7 || len(stats.Sources) != 7 {
		t.Fatalf("clusters = %d sources = %v", stats.NumClusters, stats.Sources)
	}
	// Clusters alternate between the two holders.
	for i, src := range stats.Sources {
		want := grnet.Thessaloniki
		if i%2 == 1 {
			want = grnet.Xanthi
		}
		if src != want {
			t.Fatalf("cluster %d source = %s, want %s", i, src, want)
		}
	}
	// Records are index-sorted.
	for i, r := range stats.Records {
		if r.Index != i {
			t.Fatalf("record %d has index %d", i, r.Index)
		}
	}
}

func TestWatchParallelSingleHolder(t *testing.T) {
	lc := newCluster(t, nil)
	title := media.Title{Name: "solo", SizeBytes: 3 * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Heraklio)
	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.WatchParallel("solo")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Switches != 0 {
		t.Fatalf("single-holder switches = %d", stats.Switches)
	}
	for _, src := range stats.Sources {
		if src != grnet.Heraklio {
			t.Fatalf("source = %s", src)
		}
	}
}

func TestWatchParallelDeadHolderFails(t *testing.T) {
	lc := newCluster(t, nil)
	title := media.Title{Name: "halfdead", SizeBytes: 4 * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Thessaloniki, grnet.Xanthi)
	// Kill one holder; the parallel fetch (which has no retry) reports the
	// failure rather than returning partial data.
	if err := lc.servers[grnet.Xanthi].Close(); err != nil {
		t.Fatal(err)
	}
	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.WatchParallel("halfdead"); err == nil {
		t.Fatal("parallel fetch with dead holder succeeded")
	}
}

func TestWatchParallelNoDialableHolder(t *testing.T) {
	lc := newCluster(t, nil)
	title := media.Title{Name: "nowhere", SizeBytes: 2 * clusterBytes, BitrateMbps: 1.5}
	if err := lc.db.Catalog().AddTitle(title); err != nil {
		t.Fatal(err)
	}
	// Record a holding for a node with no address-book entry.
	if err := lc.db.Catalog().SetHolding(topology.NodeID("U99"), "nowhere", true); err != nil {
		t.Fatal(err)
	}
	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.WatchParallel("nowhere"); err == nil {
		t.Fatal("undialable holders accepted")
	}
}
