package server_test

import (
	"sync"
	"testing"

	"dvod/internal/client"
	"dvod/internal/disk"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/prefix"
	"dvod/internal/server"
	"dvod/internal/topology"
)

// withPrefix attaches a prefix manager with the given byte budget to the
// selected nodes (all nodes when none are named). The managers are collected
// by node so tests can drive Resolve epochs after the catalog is populated;
// popularity comes from a fixed points table.
func withPrefix(t *testing.T, managers map[topology.NodeID]*prefix.Manager,
	budget int64, points map[string]int64, nodes ...topology.NodeID) func(*server.Config) {
	return func(c *server.Config) {
		if len(nodes) > 0 {
			found := false
			for _, n := range nodes {
				if n == c.Node {
					found = true
					break
				}
			}
			if !found {
				return
			}
		}
		parr, err := disk.NewUniformArray(string(c.Node)+"-prefix", 1, budget)
		if err != nil {
			t.Fatal(err)
		}
		catalog := c.DB.Catalog()
		pm, err := prefix.New(prefix.Config{
			Array:        parr,
			ClusterBytes: c.ClusterBytes,
			Points:       func(name string) int64 { return points[name] },
			Catalog:      catalog.Titles,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Prefix = pm
		managers[c.Node] = pm
	}
}

func resolvePrefixes(t *testing.T, managers map[topology.NodeID]*prefix.Manager) {
	t.Helper()
	for node, pm := range managers {
		if _, _, err := pm.Resolve(); err != nil {
			t.Fatalf("prefix resolve %s: %v", node, err)
		}
	}
}

// TestWatchPrefixInstantStartNoOrigin is the tier's core promise: a title
// that is neither DMA-resident nor held by ANY peer still streams completely,
// because the full prefix is pinned on the home's local store. Every cluster
// is a local prefix read — if deliverCluster ever consulted the remote plan
// first, this watch would fail outright (the catalog has no holders).
func TestWatchPrefixInstantStartNoOrigin(t *testing.T) {
	const numClusters = 16
	managers := make(map[topology.NodeID]*prefix.Manager)
	lc := newCluster(t, map[topology.NodeID]int64{grnet.Patra: clusterBytes},
		withPrefix(t, managers, numClusters*clusterBytes,
			map[string]int64{"orphan": 100}, grnet.Patra))
	title := media.Title{Name: "orphan", SizeBytes: numClusters * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title) // no holders anywhere
	resolvePrefixes(t, managers)

	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("orphan")
	if err != nil {
		t.Fatalf("watch with no holders: %v", err)
	}
	if !stats.Verified {
		t.Fatal("delivery not verified")
	}
	if stats.PrefixClusters != numClusters {
		t.Fatalf("announced PrefixClusters = %d, want %d", stats.PrefixClusters, numClusters)
	}
	if stats.StartupRTTs != 0 {
		t.Fatalf("announced StartupRTTs = %d, want 0", stats.StartupRTTs)
	}
	m := lc.servers[grnet.Patra].Metrics().Snapshot()
	if got := m.Counters["server.prefix_reads"]; got != numClusters {
		t.Fatalf("prefix_reads = %d, want %d", got, numClusters)
	}
	if got := m.Counters["server.remote_clusters"]; got != 0 {
		t.Fatalf("remote_clusters = %d, want 0", got)
	}
}

// TestWatchPrefixHeadLocalTailRemote pins only the head: the watch must serve
// clusters [0, K) from the local prefix and fetch exactly the tail across the
// network — the offset tail planning the admission layer relies on.
func TestWatchPrefixHeadLocalTailRemote(t *testing.T) {
	const numClusters = 16
	const pinned = 10
	managers := make(map[topology.NodeID]*prefix.Manager)
	lc := newCluster(t, map[topology.NodeID]int64{grnet.Patra: clusterBytes},
		withPrefix(t, managers, pinned*clusterBytes,
			map[string]int64{"headpin": 100}, grnet.Patra))
	title := media.Title{Name: "headpin", SizeBytes: numClusters * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Xanthi)
	resolvePrefixes(t, managers)

	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("headpin")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Verified {
		t.Fatal("delivery not verified")
	}
	if stats.PrefixClusters != pinned {
		t.Fatalf("announced PrefixClusters = %d, want %d", stats.PrefixClusters, pinned)
	}
	m := lc.servers[grnet.Patra].Metrics().Snapshot()
	if got := m.Counters["server.prefix_reads"]; got != pinned {
		t.Fatalf("prefix_reads = %d, want %d", got, pinned)
	}
	if got := m.Counters["server.remote_clusters"]; got != numClusters-pinned {
		t.Fatalf("remote_clusters = %d, want the %d-cluster tail", got, numClusters-pinned)
	}
}

// TestWatchRelayCohortSharesUpstream is the cross-server extension's
// integration check: many watchers on a relay server whose merge cohort
// streams a non-resident title must cost the origin ONE upstream stream (the
// cohort's relay.join subscription), not one fetch per cluster per watcher —
// while the pinned prefix serves every session's head off local disk.
func TestWatchRelayCohortSharesUpstream(t *testing.T) {
	const numClusters = 256
	const pinned = 64
	managers := make(map[topology.NodeID]*prefix.Manager)
	// Patra's array holds one cluster, so the hot title is never admitted
	// locally; Xanthi is the origin.
	lc := newCluster(t, map[topology.NodeID]int64{grnet.Patra: clusterBytes},
		withMerge(numClusters, 0),
		func(c *server.Config) { c.RelayCohorts = true },
		withPrefix(t, managers, pinned*clusterBytes,
			map[string]int64{"relayed": 100}, grnet.Patra))
	title := media.Title{Name: "relayed", SizeBytes: numClusters * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Xanthi)
	resolvePrefixes(t, managers)

	const watchers = 6
	var wg sync.WaitGroup
	statsCh := make(chan client.PlaybackStats, watchers)
	errCh := make(chan error, watchers)
	gate := make(chan struct{})
	for i := 0; i < watchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := client.NewPlayer(grnet.Patra, lc.book)
			if err != nil {
				errCh <- err
				return
			}
			<-gate
			stats, err := p.Watch("relayed")
			if err != nil {
				errCh <- err
				return
			}
			statsCh <- stats
		}()
	}
	close(gate)
	wg.Wait()
	close(errCh)
	close(statsCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for s := range statsCh {
		if !s.Verified {
			t.Fatal("delivery not verified")
		}
		if s.PrefixClusters != pinned {
			t.Fatalf("announced PrefixClusters = %d, want %d", s.PrefixClusters, pinned)
		}
		if !s.RelayTail {
			t.Fatal("session tail not announced as relay-fed")
		}
	}

	relay := lc.servers[grnet.Patra].Metrics().Snapshot()
	if relay.Counters["server.relay_upstreams"] == 0 {
		t.Fatal("no upstream relay subscription opened")
	}
	if relay.Counters["server.relay_clusters"] == 0 {
		t.Fatal("no clusters arrived over the relay subscription")
	}
	if got := relay.Counters["server.relay_fallbacks"]; got != 0 {
		t.Fatalf("relay_fallbacks = %d, want 0 on a healthy origin", got)
	}
	if got := relay.Counters["server.prefix_reads"]; got != watchers*pinned {
		t.Fatalf("prefix_reads = %d, want %d (every session's head local)",
			got, watchers*pinned)
	}

	origin := lc.servers[grnet.Xanthi].Metrics().Snapshot()
	if origin.Counters["server.relay_watchers"] == 0 {
		t.Fatal("origin saw no relay.join session")
	}
	// The whole point: N watchers' tails cost the origin roughly one stream
	// of the tail, not N. Allow 2x slack for cohort churn across goroutine
	// scheduling, still far under the unshared cost.
	tail := int64(numClusters - pinned)
	if reads := origin.Counters["server.disk_reads"]; reads > 2*tail {
		t.Fatalf("origin disk reads %d, want ≈ one shared tail of %d (unshared would be %d)",
			reads, tail, int64(watchers)*tail)
	}
}

// TestRelayBrokenUpstreamFallsBack kills the origin mid-stream: the relay
// cohort's source must fall back to the private per-cluster path and the
// watch must fail only if no replica remains — here a second holder keeps the
// stream alive, so every client still completes.
func TestRelayBrokenUpstreamFallsBack(t *testing.T) {
	const numClusters = 64
	lc := newCluster(t, map[topology.NodeID]int64{grnet.Patra: clusterBytes},
		withMerge(numClusters, 0),
		func(c *server.Config) { c.RelayCohorts = true })
	title := media.Title{Name: "cutover", SizeBytes: numClusters * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Thessaloniki, grnet.Xanthi)

	// Crash the preferred holder before the watch: the relay's first
	// subscription attempt fails over to the survivor (or falls back to
	// per-cluster fetches), and the client must not notice either way.
	if err := lc.servers[grnet.Thessaloniki].Close(); err != nil {
		t.Fatal(err)
	}
	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("cutover")
	if err != nil {
		t.Fatalf("watch across origin death: %v", err)
	}
	if !stats.Verified {
		t.Fatal("delivery not verified")
	}
}
