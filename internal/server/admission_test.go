package server_test

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"dvod/internal/admission"
	"dvod/internal/cache"
	"dvod/internal/client"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/disk"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/server"
	"dvod/internal/transport"
)

// The admission E2E tests hold sessions open by not reading the delivery
// stream: the server handler blocks on TCP backpressure with the grant still
// held. The title must outsize the kernel's socket buffering (tcp_wmem caps
// the send buffer at a few MiB, and the holder conns shrink their receive
// buffer), so delivery cannot complete into the kernel while unread.
const (
	admClusterBytes = 256 << 10
	admTitleBytes   = 16 << 20
)

// newAdmissionServer starts one broker-guarded Patra server with the title
// preloaded locally, so every watch is served from the local array.
func newAdmissionServer(t *testing.T, brokerCfg admission.Config, maxConns int) (*server.Server, *transport.AddrBook, media.Title) {
	t.Helper()
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	arr, err := disk.NewUniformArray("patra", 3, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: admClusterBytes})
	if err != nil {
		t.Fatal(err)
	}
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var broker *admission.Broker
	if brokerCfg.CapacityMbps > 0 {
		brokerCfg.Node = grnet.Patra
		broker, err = admission.New(brokerCfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	book := transport.NewAddrBook()
	srv, err := server.New(server.Config{
		Node:         grnet.Patra,
		DB:           d,
		Planner:      planner,
		Array:        arr,
		Cache:        dma,
		ClusterBytes: admClusterBytes,
		Book:         book,
		Broker:       broker,
		MaxConns:     maxConns,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if err := srv.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	title := media.Title{Name: "epic", SizeBytes: admTitleBytes, BitrateMbps: 2.0}
	if err := d.Catalog().AddTitle(title); err != nil {
		t.Fatal(err)
	}
	if err := srv.Preload(title); err != nil {
		t.Fatal(err)
	}
	return srv, book, title
}

// holdWatch opens a watch for the class and reads only the head frame, then
// stops reading so the session stays admitted until the conn is closed. It
// returns the conn and the head message.
func holdWatch(t *testing.T, addr, title, class string) (*transport.Conn, transport.Message) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny receive buffer keeps the kernel from swallowing the stream.
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 10)
	}
	c := transport.NewConn(nc)
	t.Cleanup(func() { _ = c.Close() })
	req, err := transport.Encode(transport.TypeWatch, transport.WatchPayload{
		Title: title, Class: class,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteMessage(req); err != nil {
		t.Fatal(err)
	}
	head, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	return c, head
}

func decodeWatchOK(t *testing.T, head transport.Message) transport.WatchOKPayload {
	t.Helper()
	if rerr := transport.AsError(head); rerr != nil {
		t.Fatalf("watch refused: %v", rerr)
	}
	if head.Type != transport.TypeWatchOK {
		t.Fatalf("head = %q, want %q", head.Type, transport.TypeWatchOK)
	}
	ok, err := transport.Decode[transport.WatchOKPayload](head)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

// TestAdmissionE2EPremiumProtected saturates the background class's trunk
// share and shows the broker degrading then rejecting background sessions
// while a premium watch still completes at the full bitrate — the
// class-protection property the subsystem exists for.
func TestAdmissionE2EPremiumProtected(t *testing.T) {
	// Capacity 10, title bitrate 2: background (share 0.5 -> 5 Mbps) fits
	// two full-rate sessions, a third only at the 0.5 ladder step, a fourth
	// not at all. Premium (share 1.0) keeps 5 Mbps of headroom throughout.
	srv, book, title := newAdmissionServer(t, admission.Config{CapacityMbps: 10}, 0)

	c1, h1 := holdWatch(t, srv.Addr(), title.Name, "background")
	ok1 := decodeWatchOK(t, h1)
	if ok1.Degraded || ok1.DeliveredMbps != 2.0 || ok1.Class != "background" {
		t.Fatalf("session 1 = %+v, want full-rate background", ok1)
	}
	c2, h2 := holdWatch(t, srv.Addr(), title.Name, "background")
	if ok2 := decodeWatchOK(t, h2); ok2.Degraded {
		t.Fatalf("session 2 = %+v, want full rate", ok2)
	}
	c3, h3 := holdWatch(t, srv.Addr(), title.Name, "background")
	ok3 := decodeWatchOK(t, h3)
	if !ok3.Degraded || ok3.DeliveredMbps != 1.0 {
		t.Fatalf("session 3 = %+v, want degraded to 1.0 Mbps (0.5 step)", ok3)
	}

	// The fourth background request exhausts the ladder: typed rejection.
	c4, h4 := holdWatch(t, srv.Addr(), title.Name, "background")
	if h4.Type != transport.TypeWatchReject {
		t.Fatalf("session 4 head = %q, want %q", h4.Type, transport.TypeWatchReject)
	}
	rej, err := transport.Decode[transport.WatchRejectPayload](h4)
	if err != nil {
		t.Fatal(err)
	}
	if rej.Reason != string(admission.ReasonCapacity) || rej.Class != "background" {
		t.Fatalf("rejection = %+v", rej)
	}
	_ = c4.Close()

	// The Player sees the same rejection as a typed error.
	bg, err := client.NewPlayer(grnet.Patra, book, client.WithClass(admission.Background))
	if err != nil {
		t.Fatal(err)
	}
	_, err = bg.Watch(title.Name)
	var rejErr *client.RejectedError
	if !errors.As(err, &rejErr) || !errors.Is(err, admission.ErrRejected) {
		t.Fatalf("background Watch error = %v, want RejectedError", err)
	}

	// Premium still completes, undegraded, at the native bitrate, while the
	// three background sessions hold 5 Mbps committed.
	prem, err := client.NewPlayer(grnet.Patra, book, client.WithClass(admission.Premium))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := prem.Watch(title.Name)
	if err != nil {
		t.Fatalf("premium Watch: %v", err)
	}
	if stats.Degraded || stats.DeliveredMbps != title.BitrateMbps || stats.Class != admission.Premium {
		t.Fatalf("premium stats = class %s degraded %v at %g Mbps",
			stats.Class, stats.Degraded, stats.DeliveredMbps)
	}
	if stats.BytesReceived != title.SizeBytes || !stats.Verified {
		t.Fatalf("premium received %d verified=%v", stats.BytesReceived, stats.Verified)
	}

	m := srv.Metrics().Snapshot()
	if m.Counters["server.watch_rejects"] != 2 {
		t.Fatalf("watch_rejects = %d, want 2", m.Counters["server.watch_rejects"])
	}

	// Releasing the held sessions frees the trunk share again.
	for _, c := range []*transport.Conn{c1, c2, c3} {
		_ = c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := bg.Watch(title.Name); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background watch still rejected after holders released")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSessionCapTypedBusy fills the broker's session cap and checks the next
// watch fails with the typed server-busy error across the wire.
func TestSessionCapTypedBusy(t *testing.T) {
	srv, book, title := newAdmissionServer(t, admission.Config{
		CapacityMbps: 100,
		MaxSessions:  1,
	}, 0)

	hold, head := holdWatch(t, srv.Addr(), title.Name, "background")
	decodeWatchOK(t, head)

	// Background has no queue window, so the cap rejection is immediate.
	p, err := client.NewPlayer(grnet.Patra, book, client.WithClass(admission.Background))
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Watch(title.Name)
	if !errors.Is(err, transport.ErrServerBusy) {
		t.Fatalf("Watch at session cap = %v, want ErrServerBusy", err)
	}
	if srv.Metrics().Snapshot().Counters["server.watch_busy"] == 0 {
		t.Fatal("server.watch_busy not counted")
	}

	// Freeing the slot lets the next session in.
	_ = hold.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := p.Watch(title.Name); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watch still busy after holder released: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConnFloodBoundedGoroutines floods a MaxConns-limited server with idle
// connections and checks handler goroutines stay bounded: excess connections
// wait in the accept loop / listen backlog instead of each getting a handler.
func TestConnFloodBoundedGoroutines(t *testing.T) {
	const maxConns = 4
	srv, _, _ := newAdmissionServer(t, admission.Config{}, maxConns)

	before := runtime.NumGoroutine()
	const flood = 40
	conns := make([]net.Conn, 0, flood)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	for range flood {
		nc, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, nc)
	}
	// Give the accept loop time to drain what it is allowed to.
	time.Sleep(200 * time.Millisecond)
	after := runtime.NumGoroutine()
	if grew := after - before; grew > maxConns+4 {
		t.Fatalf("goroutines grew by %d under a %d-conn flood (cap %d)",
			grew, flood, maxConns)
	}

	// The server still answers once floods disperse: close the idle conns
	// and ping.
	for _, c := range conns {
		_ = c.Close()
	}
	conns = conns[:0]
	if err := srv.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}
