package server_test

import (
	"testing"

	"dvod/internal/client"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// TestWatchBinaryFraming: a current client against a current server
// negotiates binary cluster frames, and the delivered content still verifies
// byte-for-byte. The server's delivery counters account every frame.
func TestWatchBinaryFraming(t *testing.T) {
	lc := newCluster(t, nil)
	title := media.Title{Name: "zorba", SizeBytes: 4*clusterBytes + 100, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Patra)

	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("zorba")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.BinaryFraming {
		t.Fatal("current client/server pair did not negotiate binary framing")
	}
	if !stats.Verified || stats.BytesReceived != title.SizeBytes {
		t.Fatalf("verified=%v bytes=%d", stats.Verified, stats.BytesReceived)
	}
	snap := lc.servers[grnet.Patra].Metrics().Snapshot()
	if got := snap.Counters["server.frames_out"]; got != int64(stats.NumClusters) {
		t.Fatalf("server.frames_out = %d, want %d", got, stats.NumClusters)
	}
	if got := snap.Counters["server.bytes_out"]; got != title.SizeBytes {
		t.Fatalf("server.bytes_out = %d, want %d", got, title.SizeBytes)
	}
	// The send loop leased its cluster buffers from the server's pool.
	if snap.Counters["transport.pool_hits"]+snap.Counters["transport.pool_misses"] < int64(stats.NumClusters) {
		t.Fatalf("pool saw %d+%d leases for %d clusters",
			snap.Counters["transport.pool_hits"], snap.Counters["transport.pool_misses"], stats.NumClusters)
	}
}

// TestWatchJSONFallback: a client that never offers the hello handshake — the
// behaviour of clients predating the binary protocol — gets the whole title
// over canonical JSON framing from a binary-capable server, byte-identical.
func TestWatchJSONFallback(t *testing.T) {
	lc := newCluster(t, nil)
	title := media.Title{Name: "zorba", SizeBytes: 3 * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Patra)

	p, err := client.NewPlayer(grnet.Patra, lc.book, client.WithoutBinaryFraming())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("zorba")
	if err != nil {
		t.Fatal(err)
	}
	if stats.BinaryFraming {
		t.Fatal("JSON-only client reports binary framing")
	}
	if !stats.Verified || stats.BytesReceived != title.SizeBytes {
		t.Fatalf("verified=%v bytes=%d", stats.Verified, stats.BytesReceived)
	}
	// Both framings share the delivery counters.
	snap := lc.servers[grnet.Patra].Metrics().Snapshot()
	if got := snap.Counters["server.frames_out"]; got != int64(stats.NumClusters) {
		t.Fatalf("server.frames_out = %d, want %d", got, stats.NumClusters)
	}
}

// TestWatchBinaryFramingRemoteFetch: binary framing on the client leg
// composes with the JSON peer-fetch leg — the home server pulls every
// cluster from a remote holder over JSON and relays it to the client as
// binary frames, sources intact.
func TestWatchBinaryFramingRemoteFetch(t *testing.T) {
	lc := newCluster(t, map[topology.NodeID]int64{grnet.Patra: clusterBytes})
	title := media.Title{Name: "zorba", SizeBytes: 4*clusterBytes + 100, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Thessaloniki, grnet.Xanthi)

	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("zorba")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.BinaryFraming {
		t.Fatal("binary framing not negotiated")
	}
	if !stats.Verified || stats.BytesReceived != title.SizeBytes {
		t.Fatalf("verified=%v bytes=%d", stats.Verified, stats.BytesReceived)
	}
	for i, src := range stats.Sources {
		if src != grnet.Thessaloniki {
			t.Fatalf("cluster %d source = %s, want Thessaloniki", i, src)
		}
	}
}

// TestHelloDirect exercises the handshake against a live server at the
// transport level: hello gets hello.ok with the cluster capability, and the
// connection still serves regular control requests afterwards.
func TestHelloDirect(t *testing.T) {
	lc := newCluster(t, nil)
	addr, err := lc.book.Lookup(grnet.Patra)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ok, err := conn.Negotiate()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !conn.BinaryFrames() {
		t.Fatal("live server did not grant binary cluster framing")
	}
	// The negotiated connection still answers ordinary control traffic.
	ping, err := transport.Encode(transport.TypePing, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(ping); err != nil {
		t.Fatal(err)
	}
	m, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != transport.TypePong {
		t.Fatalf("reply = %q, want pong", m.Type)
	}
}
