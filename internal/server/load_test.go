package server_test

import (
	"sync"
	"testing"

	"dvod/internal/client"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/topology"
)

// TestConcurrentWatchers hammers one deployment with parallel clients from
// every site watching overlapping titles: every delivery must verify, and
// the shared database/cache state must stay consistent under concurrency.
// (Run with -race in CI; the suite is race-clean.)
func TestConcurrentWatchers(t *testing.T) {
	lc := newCluster(t, nil)
	titles := []media.Title{
		{Name: "load-a", SizeBytes: 3*clusterBytes + 10, BitrateMbps: 1.5},
		{Name: "load-b", SizeBytes: 2 * clusterBytes, BitrateMbps: 1.5},
		{Name: "load-c", SizeBytes: 4 * clusterBytes, BitrateMbps: 1.5},
	}
	lc.addTitle(t, titles[0], grnet.Thessaloniki)
	lc.addTitle(t, titles[1], grnet.Xanthi)
	lc.addTitle(t, titles[2], grnet.Heraklio, grnet.Athens)

	homes := grnet.Nodes()
	const watchesPerClient = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(homes)*watchesPerClient)
	for _, home := range homes {
		wg.Add(1)
		go func(home topology.NodeID) {
			defer wg.Done()
			p, err := client.NewPlayer(home, lc.book)
			if err != nil {
				errs <- err
				return
			}
			for i := range watchesPerClient {
				title := titles[i%len(titles)]
				stats, err := p.Watch(title.Name)
				if err != nil {
					errs <- err
					return
				}
				if !stats.Verified || stats.BytesReceived != title.SizeBytes {
					errs <- errMismatch{title.Name, stats.BytesReceived, title.SizeBytes}
					return
				}
			}
		}(home)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent watch: %v", err)
	}
	// The catalog's holder sets must still be well-formed.
	for _, title := range titles {
		holders, err := lc.db.Catalog().Holders(title.Name)
		if err != nil {
			t.Fatal(err)
		}
		if len(holders) == 0 {
			t.Fatalf("title %s lost all holders", title.Name)
		}
	}
}

type errMismatch struct {
	title     string
	got, want int64
}

func (e errMismatch) Error() string {
	return e.title + ": byte count mismatch"
}

// TestConcurrentParallelWatchers mixes sequential and parallel fetching
// against the same replicas.
func TestConcurrentParallelWatchers(t *testing.T) {
	lc := newCluster(t, nil)
	title := media.Title{Name: "mixed", SizeBytes: 6 * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Thessaloniki, grnet.Xanthi)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := range 8 {
		wg.Add(1)
		go func(parallel bool) {
			defer wg.Done()
			p, err := client.NewPlayer(grnet.Patra, lc.book)
			if err != nil {
				errs <- err
				return
			}
			var stats client.PlaybackStats
			if parallel {
				stats, err = p.WatchParallel("mixed")
			} else {
				stats, err = p.Watch("mixed")
			}
			if err != nil {
				errs <- err
				return
			}
			if !stats.Verified {
				errs <- errMismatch{"mixed", stats.BytesReceived, title.SizeBytes}
			}
		}(i%2 == 0)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("mixed watch: %v", err)
	}
}
