package server_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"dvod/internal/cache"
	"dvod/internal/client"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/disk"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/server"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// withMerge enables shared-prefix stream merging on every node of a test
// cluster.
func withMerge(window, queueDepth int) func(*server.Config) {
	return func(c *server.Config) {
		c.MergeWindow = window
		c.MergeQueueDepth = queueDepth
	}
}

// newMergeNodes brings up a subset of the GRNET nodes with a custom cluster
// size and merging enabled. The stall-based tests need clusters much larger
// than the harness default: a stalled reader only exerts backpressure on the
// cohort pump once the kernel's socket buffers (several MB) are full, so with
// big clusters the pump provably parks mid-title.
func newMergeNodes(t *testing.T, clusterBytes int64, window, queueDepth int,
	capacities map[topology.NodeID]int64, nodes ...topology.NodeID) *liveCluster {
	return newMergeNodesCfg(t, clusterBytes, window, queueDepth, capacities, nil, nodes...)
}

// newMergeNodesCfg is newMergeNodes with per-node config mutation (custom
// buffer pools, fault injectors).
func newMergeNodesCfg(t *testing.T, clusterBytes int64, window, queueDepth int,
	capacities map[topology.NodeID]int64, mutate func(*server.Config, *disk.Array),
	nodes ...topology.NodeID) *liveCluster {
	t.Helper()
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	for _, row := range grnet.Table2() {
		id := topology.MakeLinkID(row.A, row.B)
		if err := d.UpsertLinkStats(id, row.TrafficMbps[0], t0); err != nil {
			t.Fatal(err)
		}
	}
	book := transport.NewAddrBook()
	counters := transport.NewCounters()
	lc := &liveCluster{db: d, book: book, counters: counters,
		servers: make(map[topology.NodeID]*server.Server)}
	for _, node := range nodes {
		capBytes := int64(1 << 20)
		if c, ok := capacities[node]; ok {
			capBytes = c
		}
		arr, err := disk.NewUniformArray(string(node), 3, capBytes)
		if err != nil {
			t.Fatal(err)
		}
		dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: clusterBytes})
		if err != nil {
			t.Fatal(err)
		}
		planner, err := core.NewPlanner(d, core.VRA{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg := server.Config{
			Node:            node,
			DB:              d,
			Planner:         planner,
			Array:           arr,
			Cache:           dma,
			ClusterBytes:    clusterBytes,
			Book:            book,
			Counters:        counters,
			MergeWindow:     window,
			MergeQueueDepth: queueDepth,
		}
		if mutate != nil {
			mutate(&cfg, arr)
		}
		srv, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		lc.servers[node] = srv
	}
	for _, srv := range lc.servers {
		if err := srv.WaitReady(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return lc
}

// rawWatcher is a protocol-level watch client the test paces by hand: it
// reads clusters only when told to, so "stalling" is simply not reading. Its
// TCP receive buffer is pinned small, making a stall visible to the server as
// backpressure instead of vanishing into kernel buffering.
type rawWatcher struct {
	t       *testing.T
	tcp     *net.TCPConn
	conn    *transport.Conn
	info    transport.WatchOKPayload
	mi      transport.MergeInfoPayload
	indices []int
	sources []topology.NodeID
	bytes   int64
	done    bool
}

func startRawWatch(t *testing.T, addr, title string) *rawWatcher {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tcp := nc.(*net.TCPConn)
	// Pin the receive buffer to one cluster: autotuning would otherwise let
	// the kernel swallow the whole title, hiding the stall from the server.
	_ = tcp.SetReadBuffer(64 << 10)
	conn := transport.NewConn(nc)
	t.Cleanup(func() { _ = conn.Close() })
	req, err := transport.Encode(transport.TypeWatch, transport.WatchPayload{Title: title})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(req); err != nil {
		t.Fatal(err)
	}
	w := &rawWatcher{t: t, tcp: tcp, conn: conn}
	head, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if rerr := transport.AsError(head); rerr != nil {
		t.Fatal(rerr)
	}
	if head.Type != transport.TypeWatchOK {
		t.Fatalf("reply %q, want %q", head.Type, transport.TypeWatchOK)
	}
	if w.info, err = transport.Decode[transport.WatchOKPayload](head); err != nil {
		t.Fatal(err)
	}
	mi, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if mi.Type != transport.TypeMergeInfo {
		t.Fatalf("first stream message %q, want %q", mi.Type, transport.TypeMergeInfo)
	}
	if w.mi, err = transport.Decode[transport.MergeInfoPayload](mi); err != nil {
		t.Fatal(err)
	}
	return w
}

// unthrottle restores a wide receive buffer so the final drain is not paced
// by the stall-phase window.
func (w *rawWatcher) unthrottle() { _ = w.tcp.SetReadBuffer(4 << 20) }

// readClusters consumes n clusters (all remaining, through watch.done, when
// n < 0), verifying each one's content.
func (w *rawWatcher) readClusters(n int) {
	w.t.Helper()
	for i := 0; n < 0 || i < n; i++ {
		m, err := w.conn.ReadMessage()
		if err != nil {
			w.t.Fatalf("after %d clusters: %v", len(w.indices), err)
		}
		if m.Type == transport.TypeWatchDone {
			if n >= 0 {
				w.t.Fatalf("stream ended after %d clusters", len(w.indices))
			}
			w.done = true
			return
		}
		if m.Type != transport.TypeCluster {
			w.t.Fatalf("stream message %q, want %q", m.Type, transport.TypeCluster)
		}
		p, err := transport.Decode[transport.ClusterPayload](m)
		if err != nil {
			w.t.Fatal(err)
		}
		frame, err := w.conn.ReadBody(p.Length, transport.DefaultPool())
		if err != nil {
			w.t.Fatal(err)
		}
		if !media.Verify(w.info.Title, p.Offset, frame.Payload) {
			w.t.Fatalf("cluster %d failed content verification", p.Index)
		}
		w.bytes += int64(len(frame.Payload))
		frame.Release()
		w.indices = append(w.indices, p.Index)
		w.sources = append(w.sources, p.Source)
	}
}

// assertComplete checks the watcher received every cluster exactly once, in
// order, with the full byte count — the "no gap" invariant for sessions the
// cohort detached mid-stream.
func (w *rawWatcher) assertComplete() {
	w.t.Helper()
	if !w.done {
		w.t.Fatal("stream not read through watch.done")
	}
	if len(w.indices) != w.info.NumClusters {
		w.t.Fatalf("received %d clusters, want %d", len(w.indices), w.info.NumClusters)
	}
	for i, idx := range w.indices {
		if idx != i {
			w.t.Fatalf("cluster %d arrived at position %d: stream has a gap or reorder", idx, i)
		}
	}
	if w.bytes != w.info.SizeBytes {
		w.t.Fatalf("received %d bytes, want %d", w.bytes, w.info.SizeBytes)
	}
}

// TestWatchMergedFanoutSharesUpstream is the tentpole's integration check:
// eight concurrent watchers of one remote title on a merge-enabled home
// server must cost the origin far fewer fetches than eight unicast streams —
// the acceptance bar is at least a 2x reduction — while every client still
// receives a complete verified stream.
func TestWatchMergedFanoutSharesUpstream(t *testing.T) {
	const numClusters = 1024
	// Patra's array holds a single cluster so the hot title can never be
	// admitted locally: every read crosses the backbone to Xanthi.
	lc := newCluster(t, map[topology.NodeID]int64{grnet.Patra: clusterBytes},
		withMerge(numClusters, 0))
	title := media.Title{Name: "hot", SizeBytes: numClusters * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Xanthi)

	const watchers = 8
	var wg sync.WaitGroup
	statsCh := make(chan client.PlaybackStats, watchers)
	errCh := make(chan error, watchers)
	gate := make(chan struct{})
	for i := 0; i < watchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := client.NewPlayer(grnet.Patra, lc.book)
			if err != nil {
				errCh <- err
				return
			}
			<-gate
			stats, err := p.Watch("hot")
			if err != nil {
				errCh <- err
				return
			}
			statsCh <- stats
		}()
	}
	close(gate)
	wg.Wait()
	close(errCh)
	close(statsCh)
	for err := range errCh {
		t.Fatal(err)
	}
	patches := 0
	for s := range statsCh {
		if !s.Verified {
			t.Fatal("delivery not verified")
		}
		if !s.Merged {
			t.Fatal("session on a merging server carried no merge announcement")
		}
		if s.MergeRole == transport.MergeRolePatch {
			patches++
		}
	}
	if patches == 0 {
		t.Fatal("no session attached to an existing cohort")
	}

	home := lc.servers[grnet.Patra].Metrics().Snapshot()
	framesOut := home.Counters["server.frames_out"]
	upstream := home.Counters["server.remote_clusters"]
	if framesOut != watchers*numClusters {
		t.Fatalf("frames_out = %d, want per-client %d", framesOut, watchers*numClusters)
	}
	if 2*upstream > framesOut {
		t.Fatalf("upstream fetches %d not halved against %d deliveries", upstream, framesOut)
	}
	if home.Counters["merge.disk_reads_saved"] == 0 || home.Counters["merge.bytes_saved"] == 0 {
		t.Fatal("merge savings counters stayed zero")
	}
	if home.Counters["merge.sessions_merged"] != int64(patches) {
		t.Fatalf("sessions_merged = %d, want %d patch sessions",
			home.Counters["merge.sessions_merged"], patches)
	}
	origin := lc.servers[grnet.Xanthi].Metrics().Snapshot()
	if reads := origin.Counters["server.disk_reads"]; 2*reads > framesOut {
		t.Fatalf("origin disk reads %d not halved against %d deliveries", reads, framesOut)
	}
}

// TestWatchMergedEvictionFallsBackToUnicast stalls the cohort's base session
// until a fast joiner starves: the stalled session must be evicted from the
// cohort (so the fast one finishes unthrottled) yet still receive the whole
// title, in order, over the buffered queue plus the private unicast tail.
func TestWatchMergedEvictionFallsBackToUnicast(t *testing.T) {
	const cb = 64 << 10
	const numClusters = 256
	lc := newMergeNodes(t, cb, numClusters, 4,
		map[topology.NodeID]int64{grnet.Patra: 6 << 20}, grnet.Patra)
	title := media.Title{Name: "stalled", SizeBytes: numClusters * cb, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Patra)

	slow := startRawWatch(t, lc.servers[grnet.Patra].Addr(), "stalled")
	if slow.mi.Role != transport.MergeRoleBase {
		t.Fatalf("first watcher role %q, want %q", slow.mi.Role, transport.MergeRoleBase)
	}
	slow.readClusters(2)
	// Stop reading; give the pump time to fill the slow session's socket
	// and bounded queue, then park.
	time.Sleep(300 * time.Millisecond)

	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("stalled")
	if err != nil {
		t.Fatalf("fast watcher: %v", err)
	}
	if !stats.Verified {
		t.Fatal("fast delivery not verified")
	}
	if !stats.Merged || stats.MergeRole != transport.MergeRolePatch {
		t.Fatalf("fast watcher merged=%v role=%q, want a patch join", stats.Merged, stats.MergeRole)
	}
	if stats.PatchClusters == 0 || stats.PatchClusters >= numClusters {
		t.Fatalf("fast watcher patched %d clusters, want mid-title join", stats.PatchClusters)
	}

	// The stalled session resumes and must see no gap.
	slow.unthrottle()
	slow.readClusters(-1)
	slow.assertComplete()

	m := lc.servers[grnet.Patra].Metrics().Snapshot()
	if m.Counters["merge.evictions"] != 1 {
		t.Fatalf("evictions = %d, want exactly the stalled session", m.Counters["merge.evictions"])
	}
	if m.Counters["merge.sessions_merged"] != 1 {
		t.Fatalf("sessions_merged = %d, want 1", m.Counters["merge.sessions_merged"])
	}
}

// TestWatchMergedSurvivesDeadPeerMidCohort kills the base stream's serving
// peer while the cohort is live and parked mid-title. The shared source's
// replica retry must move the whole cohort to the survivor, and the stalled
// session — evicted to unicast in the meantime — must fail over too, with no
// gap for either client.
func TestWatchMergedSurvivesDeadPeerMidCohort(t *testing.T) {
	const cb = 64 << 10
	const numClusters = 128
	lc := newMergeNodes(t, cb, numClusters, 4, map[topology.NodeID]int64{
		grnet.Patra:        cb, // relay only: the title never fits locally
		grnet.Thessaloniki: 4 << 20,
		grnet.Xanthi:       4 << 20,
	}, grnet.Patra, grnet.Thessaloniki, grnet.Xanthi)
	title := media.Title{Name: "fragile", SizeBytes: numClusters * cb, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Thessaloniki, grnet.Xanthi)

	slow := startRawWatch(t, lc.servers[grnet.Patra].Addr(), "fragile")
	slow.readClusters(2)
	if slow.sources[0] != grnet.Thessaloniki {
		t.Fatalf("cluster 0 source = %s, want the preferred Thessaloniki", slow.sources[0])
	}
	// Park the pump mid-title, then crash the serving peer without cleaning
	// the catalog.
	time.Sleep(300 * time.Millisecond)
	if err := lc.servers[grnet.Thessaloniki].Close(); err != nil {
		t.Fatal(err)
	}

	p, err := client.NewPlayer(grnet.Patra, lc.book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("fragile")
	if err != nil {
		t.Fatalf("watch across peer death: %v", err)
	}
	if !stats.Verified {
		t.Fatal("post-failure delivery not verified")
	}
	if !stats.Merged || stats.MergeRole != transport.MergeRolePatch {
		t.Fatalf("fast watcher merged=%v role=%q, want a patch join", stats.Merged, stats.MergeRole)
	}
	for i, src := range stats.Sources {
		if src != grnet.Xanthi {
			t.Fatalf("fast cluster %d source = %s, want survivor Xanthi", i, src)
		}
	}

	slow.unthrottle()
	slow.readClusters(-1)
	slow.assertComplete()
	switches := 0
	for i := 1; i < len(slow.sources); i++ {
		if slow.sources[i] != slow.sources[i-1] {
			switches++
		}
	}
	if switches != 1 || slow.sources[len(slow.sources)-1] != grnet.Xanthi {
		t.Fatalf("slow watcher sources switched %d times ending at %s, want one switch to Xanthi",
			switches, slow.sources[len(slow.sources)-1])
	}

	m := lc.servers[grnet.Patra].Metrics().Snapshot()
	if m.Counters["server.fetch_retries"] == 0 {
		t.Fatal("no fetch retries recorded")
	}
	if m.Counters["merge.evictions"] == 0 {
		t.Fatal("stalled session was never evicted")
	}
}

// TestWatchMergedChurn hammers a merging server with overlapping, staggered,
// and aborting sessions — cohorts form, split, complete, and lose members
// concurrently. Run under -race in CI; the assertions are that every
// surviving stream is complete and verified.
func TestWatchMergedChurn(t *testing.T) {
	const numClusters = 24
	lc := newCluster(t, nil, withMerge(8, 2))
	title := media.Title{Name: "churny", SizeBytes: numClusters * clusterBytes, BitrateMbps: 1.5}
	lc.addTitle(t, title, grnet.Patra)

	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			p, err := client.NewPlayer(grnet.Patra, lc.book)
			if err != nil {
				errCh <- err
				return
			}
			stats, err := p.WatchFrom("churny", start)
			if err != nil {
				errCh <- err
				return
			}
			if !stats.Verified {
				errCh <- err
			}
		}(i % numClusters)
	}
	// Aborters join a cohort and vanish mid-stream, exercising the Leave
	// path while the cohort is pumping.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			addr := lc.servers[grnet.Patra].Addr()
			conn, err := transport.Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			req, err := transport.Encode(transport.TypeWatch, transport.WatchPayload{
				Title: "churny", StartCluster: start,
			})
			if err == nil {
				if err := conn.WriteMessage(req); err == nil {
					_, _ = conn.ReadMessage() // watch.ok, then hang up
				}
			}
			_ = conn.Close()
		}((i * 5) % numClusters)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
