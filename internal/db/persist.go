package db

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dvod/internal/media"
	"dvod/internal/topology"
)

// stateJSON is the database's serialized form: everything except the static
// topology (which is configuration, not state).
type stateJSON struct {
	Servers   []ServerEntry                `json:"servers"`
	LinkStats []LinkStats                  `json:"linkStats"`
	Titles    []media.Title                `json:"titles"`
	Holdings  map[string][]topology.NodeID `json:"holdings"`
}

// Save serializes the registered servers, latest link statistics, catalog,
// and holdings, so a restarted service can resume without re-running the
// paper's initialization phase.
func (d *DB) Save(w io.Writer) error {
	state := stateJSON{
		Servers:   d.Servers(),
		LinkStats: d.AllLinkStats(),
		Holdings:  make(map[string][]topology.NodeID),
	}
	for _, t := range d.catalog.Titles() {
		state.Titles = append(state.Titles, t)
		holders, err := d.catalog.Holders(t.Name)
		if err != nil {
			return fmt.Errorf("save db: %w", err)
		}
		if len(holders) > 0 {
			state.Holdings[t.Name] = holders
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(state); err != nil {
		return fmt.Errorf("save db: %w", err)
	}
	return nil
}

// Load applies a saved state onto this (fresh) database. The topology must
// contain every referenced node and link; partial application is not rolled
// back on error, so load into a new DB.
func (d *DB) Load(r io.Reader) error {
	var state stateJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&state); err != nil {
		return fmt.Errorf("load db: %w", err)
	}
	for _, s := range state.Servers {
		if err := d.RegisterServer(s.Node, s.Description, s.RegisteredAt); err != nil {
			// A running service has already registered its own servers;
			// the snapshot's registration of the same node is not a
			// conflict.
			if errors.Is(err, ErrServerExists) {
				continue
			}
			return fmt.Errorf("load db: server %s: %w", s.Node, err)
		}
	}
	for _, ls := range state.LinkStats {
		if err := d.UpsertLinkStats(ls.ID, ls.UsedMbps, ls.UpdatedAt); err != nil {
			return fmt.Errorf("load db: link %s: %w", ls.ID, err)
		}
	}
	for _, t := range state.Titles {
		if err := d.catalog.AddTitle(t); err != nil {
			return fmt.Errorf("load db: title %s: %w", t.Name, err)
		}
	}
	for title, holders := range state.Holdings {
		for _, h := range holders {
			if !d.Graph().HasNode(h) {
				return fmt.Errorf("load db: holding of %q: %w: %s",
					title, topology.ErrNodeUnknown, h)
			}
			if err := d.catalog.SetHolding(h, title, true); err != nil {
				return fmt.Errorf("load db: holding of %q: %w", title, err)
			}
		}
	}
	return nil
}
