package db

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/topology"
)

func populatedDB(t *testing.T) *DB {
	t.Helper()
	d := newDB(t)
	if err := d.RegisterServer(grnet.Patra, "Patra VoD", t0); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterServer(grnet.Athens, "Athens VoD", t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	id := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	if err := d.UpsertLinkStats(id, 1.82, t0.Add(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	title := media.Title{Name: "Zorba", SizeBytes: 1 << 20, BitrateMbps: 1.5}
	if err := d.Catalog().AddTitle(title); err != nil {
		t.Fatal(err)
	}
	empty := media.Title{Name: "Unplaced", SizeBytes: 100, BitrateMbps: 1.5}
	if err := d.Catalog().AddTitle(empty); err != nil {
		t.Fatal(err)
	}
	if err := d.SetHolding(grnet.Patra, "Zorba", true, t0); err != nil {
		t.Fatal(err)
	}
	if err := d.SetHolding(grnet.Thessaloniki, "Zorba", true, t0); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := populatedDB(t)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	dst := newDB(t)
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Servers.
	servers := dst.Servers()
	if len(servers) != 2 || servers[0].Node != grnet.Athens || servers[1].Description != "Patra VoD" {
		t.Fatalf("servers = %+v", servers)
	}
	if !servers[1].RegisteredAt.Equal(t0) {
		t.Fatalf("registration time = %v", servers[1].RegisteredAt)
	}
	// Link stats.
	id := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	s, err := dst.LinkStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if s.UsedMbps != 1.82 || s.Utilization != 0.91 {
		t.Fatalf("stats = %+v", s)
	}
	// Catalog + holdings.
	if dst.Catalog().NumTitles() != 2 {
		t.Fatalf("titles = %d", dst.Catalog().NumTitles())
	}
	holders, err := dst.Catalog().Holders("Zorba")
	if err != nil {
		t.Fatal(err)
	}
	if len(holders) != 2 || holders[0] != grnet.Patra {
		t.Fatalf("holders = %v", holders)
	}
	unplaced, err := dst.Catalog().Holders("Unplaced")
	if err != nil {
		t.Fatal(err)
	}
	if len(unplaced) != 0 {
		t.Fatalf("unplaced holders = %v", unplaced)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	d := newDB(t)
	if err := d.Load(strings.NewReader("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	// Server at a node outside the topology.
	d2 := newDB(t)
	if err := d2.Load(strings.NewReader(
		`{"servers":[{"node":"U99","description":"","registeredAt":"2000-04-10T08:00:00Z"}]}`)); err == nil {
		t.Fatal("unknown server node accepted")
	}
	// Link stats for an unknown link.
	d3 := newDB(t)
	if err := d3.Load(strings.NewReader(
		`{"linkStats":[{"id":"X--Y","usedMbps":1,"utilization":0.5,"updatedAt":"2000-04-10T08:00:00Z"}]}`)); err == nil {
		t.Fatal("unknown link accepted")
	}
	// Holding for an unknown title.
	d4 := newDB(t)
	if err := d4.Load(strings.NewReader(
		`{"holdings":{"ghost":["U1"]}}`)); err == nil {
		t.Fatal("unknown holding title accepted")
	}
	// Holding at an unknown node.
	d5 := newDB(t)
	if err := d5.Load(strings.NewReader(
		`{"titles":[{"name":"m","sizeBytes":1,"bitrateMbps":1}],"holdings":{"m":["U99"]}}`)); err == nil {
		t.Fatal("unknown holding node accepted")
	}
}

func TestSaveIsStable(t *testing.T) {
	src := populatedDB(t)
	var a, b bytes.Buffer
	if err := src.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := src.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Save output not stable")
	}
}
