package db

import (
	"errors"
	"testing"
	"time"

	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/topology"
)

var t0 = time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)

func newDB(t *testing.T) *DB {
	t.Helper()
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	return New(g)
}

func TestRegisterServer(t *testing.T) {
	d := newDB(t)
	if err := d.RegisterServer(grnet.Patra, "Patra VoD", t0); err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	e, err := d.Server(grnet.Patra)
	if err != nil {
		t.Fatal(err)
	}
	if e.Description != "Patra VoD" || !e.RegisteredAt.Equal(t0) {
		t.Fatalf("entry = %+v", e)
	}
	if err := d.RegisterServer(grnet.Patra, "again", t0); !errors.Is(err, ErrServerExists) {
		t.Fatalf("duplicate register error = %v", err)
	}
	if err := d.RegisterServer("U99", "ghost", t0); !errors.Is(err, topology.ErrNodeUnknown) {
		t.Fatalf("unknown node error = %v", err)
	}
	if _, err := d.Server(grnet.Athens); !errors.Is(err, ErrServerUnknown) {
		t.Fatalf("unregistered lookup error = %v", err)
	}
}

func TestServersSorted(t *testing.T) {
	d := newDB(t)
	for _, n := range []topology.NodeID{grnet.Xanthi, grnet.Athens, grnet.Patra} {
		if err := d.RegisterServer(n, "", t0); err != nil {
			t.Fatal(err)
		}
	}
	got := d.Servers()
	if len(got) != 3 || got[0].Node != grnet.Athens || got[2].Node != grnet.Xanthi {
		t.Fatalf("Servers = %v", got)
	}
}

func TestLinkStatsRoundTrip(t *testing.T) {
	d := newDB(t)
	id := topology.MakeLinkID(grnet.Patra, grnet.Athens) // 2 Mbps link
	if err := d.UpsertLinkStats(id, 0.2, t0); err != nil {
		t.Fatalf("UpsertLinkStats: %v", err)
	}
	s, err := d.LinkStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if s.UsedMbps != 0.2 || s.Utilization != 0.1 || !s.UpdatedAt.Equal(t0) {
		t.Fatalf("stats = %+v", s)
	}
	if err := d.UpsertLinkStats("no--link", 1, t0); !errors.Is(err, topology.ErrLinkUnknown) {
		t.Fatalf("unknown link error = %v", err)
	}
	if _, err := d.LinkStats("no--link"); !errors.Is(err, topology.ErrLinkUnknown) {
		t.Fatalf("unknown link stats error = %v", err)
	}
	other := topology.MakeLinkID(grnet.Athens, grnet.Heraklio)
	if _, err := d.LinkStats(other); !errors.Is(err, ErrStale) {
		t.Fatalf("never-reported link error = %v", err)
	}
}

func TestLinkStatsNegativeClamped(t *testing.T) {
	d := newDB(t)
	id := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	if err := d.UpsertLinkStats(id, -5, t0); err != nil {
		t.Fatal(err)
	}
	s, err := d.LinkStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if s.UsedMbps != 0 || s.Utilization != 0 {
		t.Fatalf("negative sample not clamped: %+v", s)
	}
}

func TestAllLinkStatsSorted(t *testing.T) {
	d := newDB(t)
	ids := []topology.LinkID{
		topology.MakeLinkID(grnet.Xanthi, grnet.Heraklio),
		topology.MakeLinkID(grnet.Patra, grnet.Athens),
	}
	for _, id := range ids {
		if err := d.UpsertLinkStats(id, 0.1, t0); err != nil {
			t.Fatal(err)
		}
	}
	got := d.AllLinkStats()
	if len(got) != 2 || got[0].ID >= got[1].ID {
		t.Fatalf("AllLinkStats = %v", got)
	}
}

func TestSnapshotFromStats(t *testing.T) {
	d := newDB(t)
	id := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	if err := d.UpsertLinkStats(id, 1.82, t0); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if u := snap.Utilization(id); u != 0.91 {
		t.Fatalf("snapshot utilization = %g, want 0.91", u)
	}
	// Unreported links are idle.
	other := topology.MakeLinkID(grnet.Athens, grnet.Heraklio)
	if u := snap.Utilization(other); u != 0 {
		t.Fatalf("unreported link utilization = %g, want 0", u)
	}
}

func TestStaleLinks(t *testing.T) {
	d := newDB(t)
	id := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	if err := d.UpsertLinkStats(id, 0.1, t0); err != nil {
		t.Fatal(err)
	}
	// At t0+1m with 2m budget: 6 links stale (never reported), not id.
	stale := d.StaleLinks(t0.Add(time.Minute), 2*time.Minute)
	if len(stale) != 6 {
		t.Fatalf("stale = %v (want 6 links)", stale)
	}
	for _, s := range stale {
		if s == id {
			t.Fatal("fresh link reported stale")
		}
	}
	// Much later, id is stale too.
	stale = d.StaleLinks(t0.Add(time.Hour), 2*time.Minute)
	if len(stale) != 7 {
		t.Fatalf("stale after 1h = %d links, want 7", len(stale))
	}
}

func TestSetHoldingUpdatesCatalog(t *testing.T) {
	d := newDB(t)
	if err := d.Catalog().AddTitle(media.Title{Name: "m", SizeBytes: 1, BitrateMbps: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetHolding(grnet.Patra, "m", true, t0); err != nil {
		t.Fatal(err)
	}
	if !d.Catalog().Holds(grnet.Patra, "m") {
		t.Fatal("holding not recorded")
	}
	if err := d.SetHolding(grnet.Patra, "ghost", true, t0); err == nil {
		t.Fatal("SetHolding accepted unknown title")
	}
}

func TestSubscribeReceivesEvents(t *testing.T) {
	d := newDB(t)
	ch, cancel := d.Subscribe(10)
	defer cancel()
	if err := d.RegisterServer(grnet.Patra, "", t0); err != nil {
		t.Fatal(err)
	}
	id := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	if err := d.UpsertLinkStats(id, 0.5, t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	ev1 := <-ch
	if ev1.Kind != EventServerRegistered || ev1.Node != grnet.Patra {
		t.Fatalf("event 1 = %+v", ev1)
	}
	ev2 := <-ch
	if ev2.Kind != EventLinkStatsUpdated || ev2.Link != id {
		t.Fatalf("event 2 = %+v", ev2)
	}
}

func TestSubscribeCancelCloses(t *testing.T) {
	d := newDB(t)
	ch, cancel := d.Subscribe(1)
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
	// Publishing after cancel must not panic.
	if err := d.RegisterServer(grnet.Patra, "", t0); err != nil {
		t.Fatal(err)
	}
}

func TestSubscribeSlowConsumerDoesNotBlock(t *testing.T) {
	d := newDB(t)
	_, cancel := d.Subscribe(0) // min buffer of 1, never drained
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range 10 {
			_ = d.RegisterServer(grnet.Nodes()[i%6], "", t0)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on full subscriber")
	}
}

func TestEventKindString(t *testing.T) {
	if EventServerRegistered.String() != "server-registered" ||
		EventLinkStatsUpdated.String() != "link-stats-updated" ||
		EventHoldingChanged.String() != "holding-changed" {
		t.Fatal("kind strings wrong")
	}
	if EventKind(99).String() == "" {
		t.Fatal("unknown kind produced empty string")
	}
}
