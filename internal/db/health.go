package db

import (
	"fmt"
	"sync"
	"time"

	"dvod/internal/topology"
)

// Health tracks per-server liveness via heartbeats, implementing the VRA's
// "poll all of those servers to find out which ones can provide the video"
// step without a synchronous poll: servers heartbeat into the database and
// the planner filters candidates by heartbeat freshness. It is kept separate
// from the DB proper so the heartbeat hot path never contends with catalog
// or statistics access.
type Health struct {
	mu       sync.RWMutex
	lastSeen map[topology.NodeID]time.Time
	maxAge   time.Duration
}

// NewHealth returns a tracker that considers a server alive when its last
// heartbeat is at most maxAge old.
func NewHealth(maxAge time.Duration) (*Health, error) {
	if maxAge <= 0 {
		return nil, fmt.Errorf("health: non-positive max age %v", maxAge)
	}
	return &Health{
		lastSeen: make(map[topology.NodeID]time.Time),
		maxAge:   maxAge,
	}, nil
}

// Heartbeat records that the node was alive at the given instant.
func (h *Health) Heartbeat(node topology.NodeID, at time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cur, ok := h.lastSeen[node]; !ok || at.After(cur) {
		h.lastSeen[node] = at
	}
}

// MarkDown forgets a node's heartbeats immediately (administrative
// drain/removal).
func (h *Health) MarkDown(node topology.NodeID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.lastSeen, node)
}

// Alive reports whether the node heartbeated within maxAge of now.
func (h *Health) Alive(node topology.NodeID, now time.Time) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	last, ok := h.lastSeen[node]
	if !ok {
		return false
	}
	return now.Sub(last) <= h.maxAge
}

// Filter returns a candidate filter bound to a time source, suitable for
// core.NewPlanner's availability hook.
func (h *Health) Filter(now func() time.Time) func(topology.NodeID) bool {
	return func(n topology.NodeID) bool { return h.Alive(n, now()) }
}

// LastSeen returns the node's most recent heartbeat.
func (h *Health) LastSeen(node topology.NodeID) (time.Time, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	t, ok := h.lastSeen[node]
	return t, ok
}
