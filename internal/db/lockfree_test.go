package db

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"dvod/internal/media"
	"dvod/internal/topology"
)

// lockfreeDB builds a db over a star topology with titles and holders spread
// across every node.
func lockfreeDB(t *testing.T, nodes, titles int) (*DB, []topology.LinkID, []string) {
	t.Helper()
	g := topology.NewGraph()
	if err := g.AddNode("hub"); err != nil {
		t.Fatal(err)
	}
	var links []topology.LinkID
	var nodeIDs []topology.NodeID
	for i := 0; i < nodes; i++ {
		n := topology.NodeID(fmt.Sprintf("n%02d", i))
		nodeIDs = append(nodeIDs, n)
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
		id, err := g.AddLink("hub", n, 1000)
		if err != nil {
			t.Fatal(err)
		}
		links = append(links, id)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	d := New(g)
	var names []string
	for i := 0; i < titles; i++ {
		name := fmt.Sprintf("title-%03d", i)
		names = append(names, name)
		if err := d.Catalog().AddTitle(media.Title{Name: name, SizeBytes: 1 << 20, BitrateMbps: 1.5}); err != nil {
			t.Fatal(err)
		}
		if err := d.SetHolding(nodeIDs[i%len(nodeIDs)], name, true, time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	return d, links, names
}

// TestSnapshotAndHoldersAcquireNoMutex is the lock-free-read-path assertion
// the sharding PR promises: with mutex profiling fully enabled, goroutines
// hammering Snapshot and HoldersView while writers concurrently upsert link
// stats and flip holdings must produce no mutex-contention samples anywhere
// under Snapshot or the holder lookup. The writers contend among themselves
// (their frames may appear in the profile); the read path may not.
func TestSnapshotAndHoldersAcquireNoMutex(t *testing.T) {
	d, links, titles := lockfreeDB(t, 16, 64)

	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	const readers = 8
	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(2)
	go func() {
		defer writers.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = d.UpsertLinkStats(links[i%len(links)], float64(i%900), time.Unix(int64(i), 0))
			i++
		}
	}()
	go func() {
		defer writers.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = d.SetHolding("hub", titles[i%len(titles)], i%2 == 0, time.Unix(int64(i), 0))
			i++
		}
	}()

	var readersWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func(r int) {
			defer readersWG.Done()
			for i := 0; i < 20_000; i++ {
				snap, err := d.Snapshot()
				if err != nil || snap == nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				if _, err := d.Catalog().HoldersView(titles[(r+i)%len(titles)]); err != nil {
					t.Errorf("holders: %v", err)
					return
				}
			}
		}(r)
	}
	readersWG.Wait()
	close(stop)
	writers.Wait()

	var buf bytes.Buffer
	if err := pprof.Lookup("mutex").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	profile := buf.String()
	for _, forbidden := range []string{"(*DB).Snapshot", "HoldersView", "(*Catalog).Holders"} {
		if strings.Contains(profile, forbidden) {
			t.Fatalf("mutex profile contains %q — the read path took a contended lock:\n%s", forbidden, profile)
		}
	}
}

// TestSnapshotSeesLatestPublish checks the copy-on-write publish protocol:
// after UpsertLinkStats returns, the very next Snapshot load observes the
// sample, and a graph swap republishes over the new view.
func TestSnapshotSeesLatestPublish(t *testing.T) {
	d, links, _ := lockfreeDB(t, 4, 4)
	if err := d.UpsertLinkStats(links[0], 500, time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if u := snap.Utilization(links[0]); u != 0.5 {
		t.Fatalf("snapshot missed the published sample: utilization %g, want 0.5", u)
	}
	// Grow the fleet: the republished snapshot must carry surviving links'
	// samples forward and start brand-new links idle.
	g2 := topology.NewGraph()
	for _, n := range []topology.NodeID{"hub", "n00", "n01", "n02", "n03", "n99"} {
		if err := g2.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	keep, err := g2.AddLink("hub", "n00", 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []topology.NodeID{"n01", "n02", "n03"} {
		if _, err := g2.AddLink("hub", n, 1000); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := g2.AddLink("hub", "n99", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.SetGraph(g2, time.Unix(2, 0)); err != nil {
		t.Fatal(err)
	}
	snap, err = d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Graph() != g2 {
		t.Fatal("snapshot not republished over the swapped graph")
	}
	if u := snap.Utilization(keep); u != 0.5 {
		t.Fatalf("surviving link lost its sample across the swap: utilization %g, want 0.5", u)
	}
	if u := snap.Utilization(fresh); u != 0 {
		t.Fatalf("brand-new link not idle: utilization %g", u)
	}
}

// TestConcurrentCatalogStress races title adds, holding flips, and lock-free
// reads across shards; the -race build is the assertion.
func TestConcurrentCatalogStress(t *testing.T) {
	d, _, titles := lockfreeDB(t, 8, 32)
	c := d.Catalog()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch (w + i) % 4 {
				case 0:
					_ = c.SetHolding("hub", titles[i%len(titles)], i%2 == 0)
				case 1:
					_, _ = c.Holders(titles[i%len(titles)])
				case 2:
					_ = c.Search("title-0")
				case 3:
					_ = c.TitlesHeldBy("hub")
				}
			}
		}(w)
	}
	wg.Wait()
}
