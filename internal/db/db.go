// Package db implements the paper's database module: the shared store both
// interface modules read and write. It is conceptually split the way the
// paper splits it:
//
//   - the full-access sub-module (titles available on each server) is the
//     embedded catalog, readable by the user-facing web module;
//   - the limited-access sub-module (network links' bandwidth, SNMP-sampled
//     utilization, server configuration) is writable only by administrators
//     and the SNMP statistics module.
//
// The VRA reads both: candidate servers from the full-access side and link
// weights from the limited-access side. Change events are published to
// subscribers so the continuous re-evaluation loop can react to updates
// without polling.
package db

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvod/internal/catalog"
	"dvod/internal/topology"
)

// Errors reported by the database module.
var (
	ErrServerExists  = errors.New("server already registered")
	ErrServerUnknown = errors.New("server not registered")
	ErrStale         = errors.New("no statistics recorded for link")
)

// ServerEntry is a limited-access record describing one registered video
// server (the configuration the paper's initialization phase collects).
type ServerEntry struct {
	Node         topology.NodeID `json:"node"`
	Description  string          `json:"description"`
	RegisteredAt time.Time       `json:"registeredAt"`
}

// LinkStats is a limited-access record: the latest SNMP sample for one link.
type LinkStats struct {
	ID          topology.LinkID `json:"id"`
	UsedMbps    float64         `json:"usedMbps"`
	Utilization float64         `json:"utilization"`
	UpdatedAt   time.Time       `json:"updatedAt"`
}

// EventKind labels change notifications.
type EventKind int

// The change-event kinds.
const (
	EventServerRegistered EventKind = iota + 1
	EventLinkStatsUpdated
	EventHoldingChanged
	EventServerUnregistered
	EventTopologyChanged
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventServerRegistered:
		return "server-registered"
	case EventLinkStatsUpdated:
		return "link-stats-updated"
	case EventHoldingChanged:
		return "holding-changed"
	case EventServerUnregistered:
		return "server-unregistered"
	case EventTopologyChanged:
		return "topology-changed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one change notification.
type Event struct {
	Kind  EventKind
	Node  topology.NodeID // server events
	Link  topology.LinkID // link events
	Title string          // holding events
	At    time.Time
}

// DB is the database module. All methods are safe for concurrent use.
//
// The topology is a versioned, atomically swapped view: Graph returns the
// current immutable graph, and SetGraph replaces it wholesale (copy-on-write)
// when the fleet grows or shrinks. Readers that plan per request — the VRA
// planners, the admission broker's snapshot hook, the SNMP agents — re-read
// it every time, so mid-stream re-plans see post-churn links without any
// shared-lock handshake.
type DB struct {
	graph   atomic.Pointer[topology.Graph]
	version atomic.Uint64
	catalog *catalog.Catalog

	mu      sync.RWMutex
	servers map[topology.NodeID]ServerEntry
	stats   map[topology.LinkID]LinkStats
	subs    map[int]chan Event
	nextSub int
}

// New builds a database over the boot topology. The graph must be validated
// by the caller; the DB treats each installed graph as immutable (grow or
// shrink by building a new graph and calling SetGraph).
func New(g *topology.Graph) *DB {
	d := &DB{
		catalog: catalog.New(),
		servers: make(map[topology.NodeID]ServerEntry),
		stats:   make(map[topology.LinkID]LinkStats),
		subs:    make(map[int]chan Event),
	}
	d.graph.Store(g)
	d.version.Store(1)
	return d
}

// Graph returns the current topology view. The returned graph is immutable;
// callers must not cache it across requests if they want to observe churn.
func (d *DB) Graph() *topology.Graph { return d.graph.Load() }

// GraphVersion returns the monotonically increasing version of the current
// topology view (1 for the boot graph).
func (d *DB) GraphVersion() uint64 { return d.version.Load() }

// SetGraph atomically installs a new validated topology view — the elastic
// membership layer calls it when a server joins or leaves the fleet. The
// graph must already be validated; the DB treats it as immutable from here
// on. Link statistics for links absent from the new graph are retained but
// filtered out of snapshots until (if ever) the link returns.
func (d *DB) SetGraph(g *topology.Graph, at time.Time) (uint64, error) {
	if g == nil {
		return 0, errors.New("db: nil graph")
	}
	if err := g.Validate(); err != nil {
		return 0, err
	}
	d.graph.Store(g)
	v := d.version.Add(1)
	d.publish(Event{Kind: EventTopologyChanged, At: at})
	return v, nil
}

// Catalog returns the full-access sub-module.
func (d *DB) Catalog() *catalog.Catalog { return d.catalog }

// RegisterServer records a video server joining the service (the paper's
// initialization phase). The node must exist in the topology.
func (d *DB) RegisterServer(node topology.NodeID, description string, at time.Time) error {
	if !d.Graph().HasNode(node) {
		return fmt.Errorf("%w: %s", topology.ErrNodeUnknown, node)
	}
	d.mu.Lock()
	if _, ok := d.servers[node]; ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrServerExists, node)
	}
	d.servers[node] = ServerEntry{Node: node, Description: description, RegisteredAt: at}
	d.mu.Unlock()
	d.publish(Event{Kind: EventServerRegistered, Node: node, At: at})
	return nil
}

// UnregisterServer removes a server's registration — the completion of a
// graceful drain. Unknown nodes error.
func (d *DB) UnregisterServer(node topology.NodeID, at time.Time) error {
	d.mu.Lock()
	if _, ok := d.servers[node]; !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrServerUnknown, node)
	}
	delete(d.servers, node)
	d.mu.Unlock()
	d.publish(Event{Kind: EventServerUnregistered, Node: node, At: at})
	return nil
}

// Server returns a registered server's entry.
func (d *DB) Server(node topology.NodeID) (ServerEntry, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.servers[node]
	if !ok {
		return ServerEntry{}, fmt.Errorf("%w: %s", ErrServerUnknown, node)
	}
	return e, nil
}

// Servers returns all registered servers sorted by node ID.
func (d *DB) Servers() []ServerEntry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]ServerEntry, 0, len(d.servers))
	for _, e := range d.servers {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// UpsertLinkStats records the latest SNMP sample for a link. Utilization is
// derived from used bandwidth and the link's configured capacity.
func (d *DB) UpsertLinkStats(id topology.LinkID, usedMbps float64, at time.Time) error {
	l, err := d.Graph().LinkByID(id)
	if err != nil {
		return err
	}
	if usedMbps < 0 {
		usedMbps = 0
	}
	d.mu.Lock()
	d.stats[id] = LinkStats{
		ID:          id,
		UsedMbps:    usedMbps,
		Utilization: usedMbps / l.CapacityMbps,
		UpdatedAt:   at,
	}
	d.mu.Unlock()
	d.publish(Event{Kind: EventLinkStatsUpdated, Link: id, At: at})
	return nil
}

// LinkStats returns the latest sample for a link.
func (d *DB) LinkStats(id topology.LinkID) (LinkStats, error) {
	if _, err := d.Graph().LinkByID(id); err != nil {
		return LinkStats{}, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.stats[id]
	if !ok {
		return LinkStats{}, fmt.Errorf("%w: %s", ErrStale, id)
	}
	return s, nil
}

// AllLinkStats returns the latest samples for every reported link, sorted by
// link ID.
func (d *DB) AllLinkStats() []LinkStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]LinkStats, 0, len(d.stats))
	for _, s := range d.stats {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetHolding records that a node stores (or no longer stores) a title,
// updating the full-access catalog and notifying subscribers.
func (d *DB) SetHolding(node topology.NodeID, title string, holds bool, at time.Time) error {
	if err := d.catalog.SetHolding(node, title, holds); err != nil {
		return err
	}
	d.publish(Event{Kind: EventHoldingChanged, Node: node, Title: title, At: at})
	return nil
}

// Snapshot builds a topology snapshot from the latest link statistics over
// the current graph view. Links with no sample yet are treated as idle,
// matching the paper's behaviour before the first SNMP poll lands; samples
// for links no longer in the view (a shrunk fleet) are filtered out so churn
// can never poison snapshot construction.
func (d *DB) Snapshot() (*topology.Snapshot, error) {
	g := d.Graph()
	d.mu.RLock()
	util := make(map[topology.LinkID]float64, len(d.stats))
	for id, s := range d.stats {
		if _, err := g.LinkByID(id); err != nil {
			continue
		}
		util[id] = s.Utilization
	}
	d.mu.RUnlock()
	return topology.NewSnapshot(g, util)
}

// StaleLinks returns links whose latest sample is older than maxAge at the
// given instant (or never reported), sorted. The paper's SNMP module is
// expected to refresh every 1-2 minutes; stale links indicate a dead agent.
func (d *DB) StaleLinks(now time.Time, maxAge time.Duration) []topology.LinkID {
	g := d.Graph()
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []topology.LinkID
	for _, l := range g.Links() {
		s, ok := d.stats[l.ID]
		if !ok || now.Sub(s.UpdatedAt) > maxAge {
			out = append(out, l.ID)
		}
	}
	return out
}

// Subscribe registers a change-event channel with the given buffer size and
// returns it with a cancel function. Events that would block a full
// subscriber are dropped (slow consumers must size their buffers).
func (d *DB) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Event, buffer)
	d.mu.Lock()
	id := d.nextSub
	d.nextSub++
	d.subs[id] = ch
	d.mu.Unlock()
	cancel := func() {
		d.mu.Lock()
		if _, ok := d.subs[id]; ok {
			delete(d.subs, id)
			close(ch)
		}
		d.mu.Unlock()
	}
	return ch, cancel
}

// publish delivers an event to all subscribers without blocking.
func (d *DB) publish(ev Event) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, ch := range d.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}
