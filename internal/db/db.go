// Package db implements the paper's database module: the shared store both
// interface modules read and write. It is conceptually split the way the
// paper splits it:
//
//   - the full-access sub-module (titles available on each server) is the
//     embedded catalog, readable by the user-facing web module;
//   - the limited-access sub-module (network links' bandwidth, SNMP-sampled
//     utilization, server configuration) is writable only by administrators
//     and the SNMP statistics module.
//
// The VRA reads both: candidate servers from the full-access side and link
// weights from the limited-access side. Change events are published to
// subscribers so the continuous re-evaluation loop can react to updates
// without polling.
//
// # Concurrency model
//
// The watch-planning hot path — Snapshot and the catalog's holder lookups —
// is lock-free: both are served from immutable values swapped through
// atomic.Pointer. Link statistics live in link-hashed shards with per-shard
// writer locks, and every statistics mutation rebuilds and republishes the
// topology snapshot copy-on-write (serialized by a publish lock so a stale
// rebuild can never overwrite a fresher one). The rarely-touched admin plane
// (server registry, event subscribers) keeps a single mutex. See DESIGN.md
// "Concurrency model & sharding".
package db

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvod/internal/catalog"
	"dvod/internal/topology"
)

// Errors reported by the database module.
var (
	ErrServerExists  = errors.New("server already registered")
	ErrServerUnknown = errors.New("server not registered")
	ErrStale         = errors.New("no statistics recorded for link")
)

// DefaultStatShards is the link-statistics shard count New uses. Shards only
// bound SNMP-writer contention — Snapshot never locks regardless of the
// count.
const DefaultStatShards = 8

// statSeed keys the link-hash shard function.
var statSeed = maphash.MakeSeed()

// ServerEntry is a limited-access record describing one registered video
// server (the configuration the paper's initialization phase collects).
// ServerEntry values are immutable once returned.
type ServerEntry struct {
	Node         topology.NodeID `json:"node"`
	Description  string          `json:"description"`
	RegisteredAt time.Time       `json:"registeredAt"`
}

// LinkStats is a limited-access record: the latest SNMP sample for one link.
// LinkStats values are immutable once returned.
type LinkStats struct {
	ID          topology.LinkID `json:"id"`
	UsedMbps    float64         `json:"usedMbps"`
	Utilization float64         `json:"utilization"`
	UpdatedAt   time.Time       `json:"updatedAt"`
}

// EventKind labels change notifications.
type EventKind int

// The change-event kinds.
const (
	EventServerRegistered EventKind = iota + 1
	EventLinkStatsUpdated
	EventHoldingChanged
	EventServerUnregistered
	EventTopologyChanged
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventServerRegistered:
		return "server-registered"
	case EventLinkStatsUpdated:
		return "link-stats-updated"
	case EventHoldingChanged:
		return "holding-changed"
	case EventServerUnregistered:
		return "server-unregistered"
	case EventTopologyChanged:
		return "topology-changed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one change notification. Event values are immutable.
type Event struct {
	Kind  EventKind
	Node  topology.NodeID // server events
	Link  topology.LinkID // link events
	Title string          // holding events
	At    time.Time
}

// statShard is one link-hashed slice of the SNMP statistics. mu guards the
// map; readers that need point lookups take it briefly, while the planning
// hot path reads the published snapshot instead and never touches it.
type statShard struct {
	mu    sync.Mutex
	stats map[topology.LinkID]LinkStats
}

// DB is the database module. All methods are safe for concurrent use.
//
// The topology is a versioned, atomically swapped view: Graph returns the
// current immutable graph, and SetGraph replaces it wholesale (copy-on-write)
// when the fleet grows or shrinks. Readers that plan per request — the VRA
// planners, the admission broker's snapshot hook, the SNMP agents — re-read
// it every time, so mid-stream re-plans see post-churn links without any
// shared-lock handshake.
//
// The network snapshot is maintained the same way: every statistics or
// topology mutation republishes an immutable *topology.Snapshot, and
// Snapshot is a bare atomic load. Watch planning therefore acquires zero
// mutexes.
type DB struct {
	graph   atomic.Pointer[topology.Graph]
	version atomic.Uint64
	catalog *catalog.Catalog

	shards []*statShard
	// snap is the published network snapshot; snapMu serializes rebuilds so
	// publishes are ordered (a rebuild that began before a concurrent
	// mutation can never overwrite the newer publish).
	snap   atomic.Pointer[topology.Snapshot]
	snapMu sync.Mutex

	// adminMu guards the cold admin plane: the server registry and the
	// event-subscriber table.
	adminMu sync.RWMutex
	servers map[topology.NodeID]ServerEntry
	subs    map[int]chan Event
	nextSub int
}

// New builds a database over the boot topology with DefaultStatShards
// statistics shards. The graph must be validated by the caller; the DB
// treats each installed graph as immutable (grow or shrink by building a new
// graph and calling SetGraph).
func New(g *topology.Graph) *DB {
	d := &DB{
		catalog: catalog.New(),
		shards:  make([]*statShard, DefaultStatShards),
		servers: make(map[topology.NodeID]ServerEntry),
		subs:    make(map[int]chan Event),
	}
	for i := range d.shards {
		d.shards[i] = &statShard{stats: make(map[topology.LinkID]LinkStats)}
	}
	d.graph.Store(g)
	d.version.Store(1)
	d.publishSnapshot()
	return d
}

// shardFor hashes a link ID to its owning statistics shard.
func (d *DB) shardFor(id topology.LinkID) *statShard {
	return d.shards[maphash.String(statSeed, string(id))%uint64(len(d.shards))]
}

// Graph returns the current topology view via an atomic load (no locks).
// The returned graph is immutable; callers must not cache it across requests
// if they want to observe churn.
func (d *DB) Graph() *topology.Graph { return d.graph.Load() }

// GraphVersion returns the monotonically increasing version of the current
// topology view (1 for the boot graph). Safe for concurrent use (atomic).
func (d *DB) GraphVersion() uint64 { return d.version.Load() }

// SetGraph atomically installs a new validated topology view — the elastic
// membership layer calls it when a server joins or leaves the fleet. The
// graph must already be validated; the DB treats it as immutable from here
// on. Link statistics for links absent from the new graph are retained but
// filtered out of snapshots until (if ever) the link returns. The network
// snapshot is republished over the new graph before the topology-changed
// event fires.
func (d *DB) SetGraph(g *topology.Graph, at time.Time) (uint64, error) {
	if g == nil {
		return 0, errors.New("db: nil graph")
	}
	if err := g.Validate(); err != nil {
		return 0, err
	}
	d.graph.Store(g)
	v := d.version.Add(1)
	d.publishSnapshot()
	d.publish(Event{Kind: EventTopologyChanged, At: at})
	return v, nil
}

// Catalog returns the full-access sub-module (itself safe for concurrent
// use with lock-free reads).
func (d *DB) Catalog() *catalog.Catalog { return d.catalog }

// RegisterServer records a video server joining the service (the paper's
// initialization phase). The node must exist in the topology. Safe for
// concurrent use (admin-plane lock).
func (d *DB) RegisterServer(node topology.NodeID, description string, at time.Time) error {
	if !d.Graph().HasNode(node) {
		return fmt.Errorf("%w: %s", topology.ErrNodeUnknown, node)
	}
	d.adminMu.Lock()
	if _, ok := d.servers[node]; ok {
		d.adminMu.Unlock()
		return fmt.Errorf("%w: %s", ErrServerExists, node)
	}
	d.servers[node] = ServerEntry{Node: node, Description: description, RegisteredAt: at}
	d.adminMu.Unlock()
	d.publish(Event{Kind: EventServerRegistered, Node: node, At: at})
	return nil
}

// UnregisterServer removes a server's registration — the completion of a
// graceful drain. Unknown nodes error. Safe for concurrent use (admin-plane
// lock).
func (d *DB) UnregisterServer(node topology.NodeID, at time.Time) error {
	d.adminMu.Lock()
	if _, ok := d.servers[node]; !ok {
		d.adminMu.Unlock()
		return fmt.Errorf("%w: %s", ErrServerUnknown, node)
	}
	delete(d.servers, node)
	d.adminMu.Unlock()
	d.publish(Event{Kind: EventServerUnregistered, Node: node, At: at})
	return nil
}

// Server returns a registered server's entry. Safe for concurrent use
// (admin-plane lock).
func (d *DB) Server(node topology.NodeID) (ServerEntry, error) {
	d.adminMu.RLock()
	defer d.adminMu.RUnlock()
	e, ok := d.servers[node]
	if !ok {
		return ServerEntry{}, fmt.Errorf("%w: %s", ErrServerUnknown, node)
	}
	return e, nil
}

// Servers returns all registered servers sorted by node ID. Safe for
// concurrent use (admin-plane lock); the result is a fresh slice.
func (d *DB) Servers() []ServerEntry {
	d.adminMu.RLock()
	defer d.adminMu.RUnlock()
	out := make([]ServerEntry, 0, len(d.servers))
	for _, e := range d.servers {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// UpsertLinkStats records the latest SNMP sample for a link. Utilization is
// derived from used bandwidth and the link's configured capacity. Safe for
// concurrent use: the sample lands in the link's shard under that shard's
// lock, then the network snapshot is republished so planners observe it
// lock-free.
func (d *DB) UpsertLinkStats(id topology.LinkID, usedMbps float64, at time.Time) error {
	l, err := d.Graph().LinkByID(id)
	if err != nil {
		return err
	}
	if usedMbps < 0 {
		usedMbps = 0
	}
	s := d.shardFor(id)
	s.mu.Lock()
	s.stats[id] = LinkStats{
		ID:          id,
		UsedMbps:    usedMbps,
		Utilization: usedMbps / l.CapacityMbps,
		UpdatedAt:   at,
	}
	s.mu.Unlock()
	d.publishSnapshot()
	d.publish(Event{Kind: EventLinkStatsUpdated, Link: id, At: at})
	return nil
}

// LinkStats returns the latest sample for a link. Safe for concurrent use
// (brief shard lock).
func (d *DB) LinkStats(id topology.LinkID) (LinkStats, error) {
	if _, err := d.Graph().LinkByID(id); err != nil {
		return LinkStats{}, err
	}
	sh := d.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.stats[id]
	sh.mu.Unlock()
	if !ok {
		return LinkStats{}, fmt.Errorf("%w: %s", ErrStale, id)
	}
	return s, nil
}

// AllLinkStats returns the latest samples for every reported link, sorted by
// link ID. Safe for concurrent use (brief per-shard locks); the result is a
// fresh slice.
func (d *DB) AllLinkStats() []LinkStats {
	var out []LinkStats
	for _, sh := range d.shards {
		sh.mu.Lock()
		for _, s := range sh.stats {
			out = append(out, s)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetHolding records that a node stores (or no longer stores) a title,
// updating the full-access catalog and notifying subscribers. Safe for
// concurrent use (delegates to the sharded catalog).
func (d *DB) SetHolding(node topology.NodeID, title string, holds bool, at time.Time) error {
	if err := d.catalog.SetHolding(node, title, holds); err != nil {
		return err
	}
	d.publish(Event{Kind: EventHoldingChanged, Node: node, Title: title, At: at})
	return nil
}

// Snapshot returns the current published network snapshot: the latest link
// statistics folded over the current graph view. It is a single atomic load
// — zero mutex acquisitions — so per-request planning never contends with
// SNMP writers or other planners. Links with no sample yet are treated as
// idle, matching the paper's behaviour before the first SNMP poll lands;
// samples for links no longer in the view (a shrunk fleet) are filtered out
// at publish time so churn can never poison snapshot construction. The
// returned snapshot is immutable.
func (d *DB) Snapshot() (*topology.Snapshot, error) {
	return d.snap.Load(), nil
}

// publishSnapshot rebuilds the network snapshot from the current shard
// contents and graph and atomically swaps it in. snapMu orders concurrent
// publishes: each rebuild reads the shards after taking the lock, so the
// last store always reflects every mutation that preceded it.
func (d *DB) publishSnapshot() {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	g := d.graph.Load()
	util := make(map[topology.LinkID]float64)
	for _, sh := range d.shards {
		sh.mu.Lock()
		for id, s := range sh.stats {
			if _, err := g.LinkByID(id); err != nil {
				continue
			}
			util[id] = s.Utilization
		}
		sh.mu.Unlock()
	}
	snap, err := topology.NewSnapshot(g, util)
	if err != nil {
		// Unreachable: util is filtered to the graph's own links. Keep the
		// previous snapshot rather than publish a broken one.
		return
	}
	d.snap.Store(snap)
}

// StaleLinks returns links whose latest sample is older than maxAge at the
// given instant (or never reported), sorted. The paper's SNMP module is
// expected to refresh every 1-2 minutes; stale links indicate a dead agent.
// Safe for concurrent use (brief per-shard locks).
func (d *DB) StaleLinks(now time.Time, maxAge time.Duration) []topology.LinkID {
	g := d.Graph()
	var out []topology.LinkID
	for _, l := range g.Links() {
		sh := d.shardFor(l.ID)
		sh.mu.Lock()
		s, ok := sh.stats[l.ID]
		sh.mu.Unlock()
		if !ok || now.Sub(s.UpdatedAt) > maxAge {
			out = append(out, l.ID)
		}
	}
	return out
}

// Subscribe registers a change-event channel with the given buffer size and
// returns it with a cancel function. Events that would block a full
// subscriber are dropped (slow consumers must size their buffers). Safe for
// concurrent use (admin-plane lock).
func (d *DB) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Event, buffer)
	d.adminMu.Lock()
	id := d.nextSub
	d.nextSub++
	d.subs[id] = ch
	d.adminMu.Unlock()
	cancel := func() {
		d.adminMu.Lock()
		if _, ok := d.subs[id]; ok {
			delete(d.subs, id)
			close(ch)
		}
		d.adminMu.Unlock()
	}
	return ch, cancel
}

// publish delivers an event to all subscribers without blocking.
func (d *DB) publish(ev Event) {
	d.adminMu.RLock()
	defer d.adminMu.RUnlock()
	for _, ch := range d.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}
