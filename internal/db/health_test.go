package db

import (
	"testing"
	"time"
)

func TestNewHealthValidation(t *testing.T) {
	if _, err := NewHealth(0); err == nil {
		t.Fatal("zero max age accepted")
	}
	if _, err := NewHealth(-time.Second); err == nil {
		t.Fatal("negative max age accepted")
	}
}

func TestHealthLifecycle(t *testing.T) {
	h, err := NewHealth(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown node is dead.
	if h.Alive("U1", t0) {
		t.Fatal("never-seen node alive")
	}
	h.Heartbeat("U1", t0)
	if !h.Alive("U1", t0) {
		t.Fatal("fresh heartbeat dead")
	}
	if !h.Alive("U1", t0.Add(100*time.Millisecond)) {
		t.Fatal("boundary heartbeat dead")
	}
	if h.Alive("U1", t0.Add(101*time.Millisecond)) {
		t.Fatal("stale heartbeat alive")
	}
	last, ok := h.LastSeen("U1")
	if !ok || !last.Equal(t0) {
		t.Fatalf("LastSeen = %v, %v", last, ok)
	}
	if _, ok := h.LastSeen("U2"); ok {
		t.Fatal("LastSeen for unseen node")
	}
}

func TestHealthOutOfOrderHeartbeats(t *testing.T) {
	h, err := NewHealth(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	h.Heartbeat("U1", t0.Add(time.Second))
	h.Heartbeat("U1", t0) // older; must not regress
	last, _ := h.LastSeen("U1")
	if !last.Equal(t0.Add(time.Second)) {
		t.Fatalf("LastSeen regressed to %v", last)
	}
}

func TestHealthMarkDown(t *testing.T) {
	h, err := NewHealth(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	h.Heartbeat("U1", t0)
	h.MarkDown("U1")
	if h.Alive("U1", t0) {
		t.Fatal("marked-down node alive")
	}
	h.MarkDown("U1") // idempotent
}

func TestHealthFilter(t *testing.T) {
	h, err := NewHealth(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	now := t0
	filter := h.Filter(func() time.Time { return now })
	h.Heartbeat("U1", t0)
	if !filter("U1") || filter("U2") {
		t.Fatal("filter wrong")
	}
	now = t0.Add(2 * time.Minute)
	if filter("U1") {
		t.Fatal("filter did not expire heartbeat")
	}
}
