package db

import (
	"errors"
	"testing"

	"dvod/internal/grnet"
	"dvod/internal/topology"
)

// TestSetGraphSwapsAtomically pins the elastic-topology contract: SetGraph
// installs a validated view, bumps the version, and publishes a topology
// event; stale or invalid graphs are rejected without disturbing the view.
func TestSetGraphSwapsAtomically(t *testing.T) {
	d := newDB(t)
	if d.GraphVersion() != 1 {
		t.Fatalf("boot graph version = %d, want 1", d.GraphVersion())
	}
	events, cancel := d.Subscribe(8)
	defer cancel()

	grown := d.Graph().Clone()
	if err := grown.AddNode("U9"); err != nil {
		t.Fatal(err)
	}
	if _, err := grown.AddLink("U9", grnet.Athens, 2); err != nil {
		t.Fatal(err)
	}
	v, err := d.SetGraph(grown, t0)
	if err != nil {
		t.Fatalf("SetGraph: %v", err)
	}
	if v != 2 || d.GraphVersion() != 2 {
		t.Fatalf("version after grow = %d / %d, want 2", v, d.GraphVersion())
	}
	if !d.Graph().HasNode("U9") {
		t.Fatal("swapped view is missing the joined node")
	}
	select {
	case ev := <-events:
		if ev.Kind != EventTopologyChanged {
			t.Fatalf("event kind = %v, want topology-changed", ev.Kind)
		}
	default:
		t.Fatal("no event published for the swap")
	}

	if _, err := d.SetGraph(nil, t0); err == nil {
		t.Fatal("nil graph accepted")
	}
	disconnected := topology.NewGraph()
	if err := disconnected.AddNode("X1"); err != nil {
		t.Fatal(err)
	}
	if err := disconnected.AddNode("X2"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SetGraph(disconnected, t0); err == nil {
		t.Fatal("invalid graph accepted")
	}
	if d.GraphVersion() != 2 || !d.Graph().HasNode("U9") {
		t.Fatal("rejected swap disturbed the installed view")
	}
}

// TestSnapshotFiltersDepartedLinks pins the staleness fix: after the
// topology shrinks, Snapshot must not fail on (or carry) stats for links
// that left the graph — and the stats return if the link does.
func TestSnapshotFiltersDepartedLinks(t *testing.T) {
	d := newDB(t)
	gone := topology.MakeLinkID(grnet.Patra, grnet.Ioannina)
	kept := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	if err := d.UpsertLinkStats(gone, 0.5, t0); err != nil {
		t.Fatal(err)
	}
	if err := d.UpsertLinkStats(kept, 0.2, t0); err != nil {
		t.Fatal(err)
	}

	full := d.Graph()
	shrunk, err := full.WithoutNode(grnet.Ioannina)
	if err != nil {
		t.Fatalf("WithoutNode: %v", err)
	}
	if _, err := d.SetGraph(shrunk, t0); err != nil {
		t.Fatalf("SetGraph shrink: %v", err)
	}
	// Before the fix, NewSnapshot rejected the retained stats of departed
	// links with ErrLinkUnknown; the DB must filter them out instead.
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot after shrink: %v", err)
	}
	if snap.Graph().HasNode(grnet.Ioannina) {
		t.Fatal("snapshot still sees the departed node")
	}
	if got := snap.Utilization(kept); got != 0.1 {
		t.Fatalf("surviving link utilization = %v, want 0.1", got)
	}

	// The node rejoins: its link's retained stats surface again.
	if _, err := d.SetGraph(full, t0); err != nil {
		t.Fatalf("SetGraph regrow: %v", err)
	}
	snap, err = d.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot after regrow: %v", err)
	}
	if got := snap.Utilization(gone); got != 0.25 {
		t.Fatalf("retained stats did not resurface: utilization = %v, want 0.25", got)
	}
}

// TestUnregisterServer pins the drain-completion path.
func TestUnregisterServer(t *testing.T) {
	d := newDB(t)
	if err := d.UnregisterServer(grnet.Patra, t0); !errors.Is(err, ErrServerUnknown) {
		t.Fatalf("unregister of unknown = %v, want ErrServerUnknown", err)
	}
	if err := d.RegisterServer(grnet.Patra, "Patra VoD", t0); err != nil {
		t.Fatal(err)
	}
	if err := d.UnregisterServer(grnet.Patra, t0); err != nil {
		t.Fatalf("UnregisterServer: %v", err)
	}
	if _, err := d.Server(grnet.Patra); !errors.Is(err, ErrServerUnknown) {
		t.Fatalf("server still registered after unregister: %v", err)
	}
	// Re-registration after a drain is a fresh join.
	if err := d.RegisterServer(grnet.Patra, "back", t0); err != nil {
		t.Fatalf("re-register after drain: %v", err)
	}
}
