package transport

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"testing"

	"dvod/internal/metrics"
)

// tcpPair returns the two ends of a loopback TCP connection.
func tcpPair(t testing.TB) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

// bodyFile writes data at a 16-byte offset of a temp file — the shape of a
// disk block file — and returns it opened for positioned reads.
func bodyFile(t testing.TB, data []byte) (*os.File, int64) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "body-*.blk")
	if err != nil {
		t.Fatalf("temp file: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	pad := make([]byte, 16)
	if _, err := f.Write(pad); err == nil {
		_, err = f.Write(data)
	}
	if err != nil {
		t.Fatalf("write body file: %v", err)
	}
	return f, 16
}

func kernelPayload(size int) ClusterPayload {
	return ClusterPayload{Title: "feature", Index: 7, Offset: int64(7 * size), Length: int64(size), Source: "U2"}
}

// TestWriteClusterBodyKernelTCP drives the full kernel delivery path over
// loopback: a queued control frame and the cluster header coalesce into the
// first writev, the file-backed body follows via sendfile, and the receiver
// decodes a byte-exact cluster. The sending pool must never be touched.
func TestWriteClusterBodyKernelTCP(t *testing.T) {
	cliNC, srvNC := tcpPair(t)
	srv, cli := NewConn(srvNC), NewConn(cliNC)
	srv.EnableBinaryFrames()
	cli.EnableBinaryFrames()

	size := 256 << 10
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	f, off := bodyFile(t, data)
	frame := NewFileFrame(f, off, int64(size), nil)
	defer frame.Release()

	reg := metrics.NewRegistry()
	pool := NewBufferPool(reg)

	head, err := Encode(TypeWatchOK, WatchOKPayload{Title: "feature", SizeBytes: int64(size)})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.QueueMessage(head); err != nil {
		t.Fatalf("QueueMessage: %v", err)
	}

	type sendRes struct {
		kernel bool
		err    error
	}
	done := make(chan sendRes, 1)
	go func() {
		kernel, err := srv.WriteClusterBody(pool, TypeCluster, kernelPayload(size), frame)
		done <- sendRes{kernel, err}
	}()

	// The queued watch.ok must arrive first, then the cluster frame.
	m, fr, err := cli.ReadFrameOrMessage(nil)
	if err != nil || fr != nil || m.Type != TypeWatchOK {
		t.Fatalf("first read = (%v, %v, %v), want queued watch.ok", m, fr, err)
	}
	m, fr, err = cli.ReadFrameOrMessage(nil)
	if err != nil || fr == nil {
		t.Fatalf("second read = (%v, %v, %v), want cluster frame", m, fr, err)
	}
	p, body, err := DecodeClusterFrame(fr)
	if err != nil {
		t.Fatalf("DecodeClusterFrame: %v", err)
	}
	if p != kernelPayload(size) {
		t.Fatalf("payload = %+v", p)
	}
	if !bytes.Equal(body, data) {
		t.Fatal("received body differs from file content")
	}
	fr.Release()

	r := <-done
	if r.err != nil {
		t.Fatalf("WriteClusterBody: %v", r.err)
	}
	if runtime.GOOS == "linux" && !r.kernel {
		t.Fatal("kernel = false on linux TCP: sendfile path not taken")
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("pool leases outstanding after send: %d", n)
	}
	if r.kernel {
		gets := reg.Counter("transport.pool_hits").Value() + reg.Counter("transport.pool_misses").Value()
		if gets != 0 {
			t.Fatalf("kernel path leased %d pooled buffers, want 0", gets)
		}
	}
}

// sink is a write-only in-memory stream with no kernel path.
type sink struct{ bytes.Buffer }

func (*sink) Close() error                 { return nil }
func (*sink) Read([]byte) (int, error)     { return 0, io.EOF }
func (s *sink) Write(p []byte) (int, error) { return s.Buffer.Write(p) }

// TestWriteClusterBodyFallbackByteIdentical proves the three binary senders
// emit identical wire bytes for one cluster: the kernel path over TCP, the
// userspace fallback (a stream with no kernel path), and the pre-existing
// WriteClusterFrame byte path.
func TestWriteClusterBodyFallbackByteIdentical(t *testing.T) {
	size := 64<<10 + 37 // odd size: exercise the non-aligned tail
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	f, off := bodyFile(t, data)
	payload := kernelPayload(size)

	// Arm 1: kernel path over TCP, wire bytes captured by the receiver.
	cliNC, srvNC := tcpPair(t)
	srv := NewConn(srvNC)
	srv.EnableBinaryFrames()
	frame := NewFileFrame(f, off, int64(size), nil)
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.WriteClusterBody(nil, TypeCluster, payload, frame)
		frame.Release()
		srvNC.Close()
		errCh <- err
	}()
	wireTCP, err := io.ReadAll(cliNC)
	if err != nil {
		t.Fatalf("read TCP wire: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("kernel send: %v", err)
	}

	// Arm 2: the same file frame through a stream with no kernel path.
	var buf sink
	fb := NewConn(&buf)
	fb.EnableBinaryFrames()
	frame2 := NewFileFrame(f, off, int64(size), nil)
	defer frame2.Release()
	kernel, err := fb.WriteClusterBody(nil, TypeCluster, payload, frame2)
	if err != nil {
		t.Fatalf("fallback send: %v", err)
	}
	if kernel {
		t.Fatal("kernel = true on an in-memory stream")
	}
	if !bytes.Equal(wireTCP, buf.Bytes()) {
		t.Fatalf("fallback wire bytes differ from kernel path (%d vs %d bytes)", len(buf.Bytes()), len(wireTCP))
	}

	// Arm 3: the established byte path.
	var buf3 sink
	bc := NewConn(&buf3)
	bc.EnableBinaryFrames()
	if err := bc.WriteClusterFrame(payload, data); err != nil {
		t.Fatalf("WriteClusterFrame: %v", err)
	}
	if !bytes.Equal(wireTCP, buf3.Bytes()) {
		t.Fatal("kernel path wire bytes differ from WriteClusterFrame")
	}
}

// TestWriteClusterBodyJSONFraming sends a file-backed body on a connection
// that never negotiated binary framing: the body must arrive as the
// canonical JSON message + raw bytes, bounced through the pool with a
// balanced lease.
func TestWriteClusterBodyJSONFraming(t *testing.T) {
	cliNC, srvNC := tcpPair(t)
	srv, cli := NewConn(srvNC), NewConn(cliNC)

	size := 32 << 10
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i ^ 0x5C)
	}
	f, off := bodyFile(t, data)
	frame := NewFileFrame(f, off, int64(size), nil)
	defer frame.Release()
	pool := NewBufferPool(nil)

	go func() {
		kernel, err := srv.WriteClusterBody(pool, TypeCluster, kernelPayload(size), frame)
		if err != nil || kernel {
			panic(fmt.Sprintf("JSON-framing send: kernel=%v err=%v", kernel, err))
		}
	}()
	var p ClusterPayload
	_, body, err := cli.ReadMessageWithBody(func(m Message) (int64, error) {
		var derr error
		p, derr = Decode[ClusterPayload](m)
		return p.Length, derr
	})
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	if p != kernelPayload(size) || !bytes.Equal(body, data) {
		t.Fatal("JSON-framed cluster differs from file content")
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("pool leases outstanding: %d", n)
	}
}

// TestQueueMessageOrdering checks the writev queue's ordering contract:
// queued frames precede any later write, across both Flush and piggybacked
// writes, and queue order is preserved.
func TestQueueMessageOrdering(t *testing.T) {
	var buf sink
	c := NewConn(&buf)
	for _, typ := range []string{TypePing, TypePong} {
		m, err := Encode(typ, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.QueueMessage(m); err != nil {
			t.Fatalf("QueueMessage: %v", err)
		}
	}
	if buf.Len() != 0 {
		t.Fatal("QueueMessage wrote to the stream")
	}
	last, err := Encode(TypeTitles, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteMessage(last); err != nil {
		t.Fatal(err)
	}
	rc := NewConn(&frameStream{buf.Buffer})
	for _, want := range []string{TypePing, TypePong, TypeTitles} {
		m, err := rc.ReadMessage()
		if err != nil || m.Type != want {
			t.Fatalf("read = (%q, %v), want %q", m.Type, err, want)
		}
	}
	// Flush drains the queue by itself too.
	m, err := Encode(TypePing, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.QueueMessage(m); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := c.Flush(); err != nil { // idempotent on an empty queue
		t.Fatalf("empty Flush: %v", err)
	}
	rc = NewConn(&frameStream{buf.Buffer}) // re-snapshot: the flush wrote after the last snapshot
	for range 3 {
		if _, err := rc.ReadMessage(); err != nil {
			t.Fatalf("re-read: %v", err)
		}
	}
	m2, err := rc.ReadMessage()
	if err != nil || m2.Type != TypePing {
		t.Fatalf("flushed read = (%q, %v)", m2.Type, err)
	}
}

// TestQueueMergeInfoFrameOrdering: the binary queue variant rides the next
// write like the JSON one.
func TestQueueMergeInfoFrameOrdering(t *testing.T) {
	var buf sink
	c := NewConn(&buf)
	c.EnableBinaryFrames()
	info := MergeInfoPayload{Cohort: 5, Role: MergeRoleBase, JoinIndex: 2}
	if err := c.QueueMergeInfoFrame(info); err != nil {
		t.Fatalf("QueueMergeInfoFrame: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatal("QueueMergeInfoFrame wrote to the stream")
	}
	body := []byte("cluster-bytes")
	p := ClusterPayload{Title: "t", Index: 0, Length: int64(len(body)), Source: "U1"}
	if err := c.WriteClusterFrame(p, body); err != nil {
		t.Fatal(err)
	}
	rc := NewConn(&frameStream{buf.Buffer})
	_, fr, err := rc.ReadFrameOrMessage(nil)
	if err != nil || fr == nil {
		t.Fatalf("first read: (%v, %v)", fr, err)
	}
	got, err := DecodeMergeInfoFrame(fr)
	if err != nil || got != info {
		t.Fatalf("merge info = (%+v, %v), want %+v", got, err, info)
	}
	fr.Release()
	_, fr, err = rc.ReadFrameOrMessage(nil)
	if err != nil || fr == nil {
		t.Fatalf("second read: (%v, %v)", fr, err)
	}
	if _, b, err := DecodeClusterFrame(fr); err != nil || !bytes.Equal(b, body) {
		t.Fatalf("cluster after queued merge info: %v", err)
	}
	fr.Release()
}

// TestFileFrameLifecycle: BodyLen/FileBody/BodyBytes accessors and the done
// hook firing exactly once at the final release, through a retain cycle.
func TestFileFrameLifecycle(t *testing.T) {
	data := []byte("file frame body")
	f, off := bodyFile(t, data)
	released := 0
	fr := NewFileFrame(f, off, int64(len(data)), func() { released++ })
	if fr.BodyLen() != int64(len(data)) {
		t.Fatalf("BodyLen = %d", fr.BodyLen())
	}
	if _, _, ok := fr.FileBody(); !ok {
		t.Fatal("FileBody not ok on a file frame")
	}
	pool := NewBufferPool(nil)
	body, free, err := fr.BodyBytes(pool)
	if err != nil || !bytes.Equal(body, data) {
		t.Fatalf("BodyBytes = (%q, %v)", body, err)
	}
	free()
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("BodyBytes leaked a lease: %d", n)
	}
	fr.Retain()
	fr.Release()
	if released != 0 {
		t.Fatal("done ran before the final release")
	}
	fr.Release()
	if released != 1 {
		t.Fatalf("done ran %d times, want 1", released)
	}
	// Byte-backed frames report no file body.
	bf := NewLeasedFrame(nil, []byte("x"))
	if _, _, ok := bf.FileBody(); ok {
		t.Fatal("FileBody ok on a byte-backed frame")
	}
	if bf.BodyLen() != 1 {
		t.Fatalf("byte frame BodyLen = %d", bf.BodyLen())
	}
	bf.Release()
}

// benchKernelArm is the kernel arm of BenchmarkFraming: the timed loop is
// the sender (where the kernel path lives) and a raw-draining receiver
// provides backpressure without allocating, so -benchmem reflects the send
// pipeline alone.
func benchKernelArm(b *testing.B, size int, payload ClusterPayload) {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	f, off := bodyFile(b, data)
	frame := NewFileFrame(f, off, int64(size), nil)
	defer frame.Release()
	cliNC, srvNC := tcpPair(b)
	srv := NewConn(srvNC)
	srv.EnableBinaryFrames()
	pool := NewBufferPool(nil)
	// Drain raw bytes with one fixed buffer: parsing frames would allocate
	// and be charged to the benchmark's all-goroutine count. The buffer is
	// allocated here, not in the goroutine — on one core the receiver may
	// not be scheduled until after b.Loop resets the allocation counters.
	drain := make([]byte, 256<<10)
	go func() {
		for {
			if _, err := cliNC.Read(drain); err != nil {
				return
			}
		}
	}()
	// One warm-up send outside the timed loop: the first send populates the
	// connection's cached RawConn and writev backing arrays.
	if _, err := srv.WriteClusterBody(pool, TypeCluster, payload, frame); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size))
	b.ReportAllocs()
	for b.Loop() {
		if _, err := srv.WriteClusterBody(pool, TypeCluster, payload, frame); err != nil {
			b.Fatal(err)
		}
	}
}
