package transport

import (
	"encoding/binary"
	"fmt"
)

// Merge-info: the one protocol addition stream merging makes. When the
// server coalesces a watch session onto a shared cohort (DESIGN.md § "Stream
// merging"), it announces the fact right after watch.ok — before any cluster
// — so the client can report its role. Delivery itself is unchanged: clusters
// arrive in order on the negotiated framing whether they came from a private
// read or a cohort broadcast, and clients that ignore the frame keep working.
const (
	// TypeMergeInfo is the JSON control-frame type (the fallback framing).
	TypeMergeInfo = "merge.info"
	// FrameMergeInfo is the binary frame type code, used when the hello
	// exchange granted binary framing.
	FrameMergeInfo byte = 0x02
)

// Merge roles carried by MergeInfoPayload.Role.
const (
	// MergeRoleBase: the session opened its cohort; its position is the
	// base stream every later joiner shares.
	MergeRoleBase = "base"
	// MergeRolePatch: the session attached to an existing cohort; clusters
	// before the join position arrive as a private patch stream.
	MergeRolePatch = "patch"
)

// MergeInfoPayload describes one session's cohort attachment.
type MergeInfoPayload struct {
	// Cohort identifies the cohort within the serving node.
	Cohort int64 `json:"cohort"`
	// Role is MergeRoleBase or MergeRolePatch.
	Role string `json:"role"`
	// JoinIndex is the first cluster the session receives from the shared
	// base stream.
	JoinIndex int `json:"joinIndex"`
	// PatchClusters is how many clusters precede JoinIndex as a patch
	// stream (0 for the base session).
	PatchClusters int `json:"patchClusters,omitempty"`
}

// mergeInfoLen is the fixed binary payload size:
// cohort(8) role(1) joinIndex(4) patchClusters(4).
const mergeInfoLen = 17

// Binary role codes.
const (
	mergeRoleBaseCode  byte = 1
	mergeRolePatchCode byte = 2
)

// appendMergeInfoFrame validates p and appends its full binary frame
// (header + payload) to dst.
func appendMergeInfoFrame(dst []byte, p MergeInfoPayload) ([]byte, error) {
	var roleCode byte
	switch p.Role {
	case MergeRoleBase:
		roleCode = mergeRoleBaseCode
	case MergeRolePatch:
		roleCode = mergeRolePatchCode
	default:
		return nil, fmt.Errorf("%w: merge role %q", ErrBadFrame, p.Role)
	}
	if p.Cohort < 0 || p.JoinIndex < 0 || p.PatchClusters < 0 {
		return nil, fmt.Errorf("%w: negative merge-info field", ErrBadFrame)
	}
	if int64(uint32(p.JoinIndex)) != int64(p.JoinIndex) ||
		int64(uint32(p.PatchClusters)) != int64(p.PatchClusters) {
		return nil, fmt.Errorf("%w: merge-info field overflow", ErrBadFrame)
	}
	dst = append(dst,
		FrameMagic0, FrameMagic1, FrameVersion, FrameMergeInfo, 0, // flags
		0, 0, 0, mergeInfoLen)
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.Cohort))
	dst = append(dst, roleCode)
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.JoinIndex))
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.PatchClusters))
	return dst, nil
}

// WriteMergeInfoFrame sends one merge-info announcement as a binary frame
// (together with any queued control frames, in one writev).
func (c *Conn) WriteMergeInfoFrame(p MergeInfoPayload) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	scratch, err := appendMergeInfoFrame(c.wscratch[:0], p)
	if err != nil {
		return err
	}
	c.wscratch = scratch[:0]
	if err := c.writeVectoredLocked(scratch); err != nil {
		return fmt.Errorf("write merge-info frame: %w", err)
	}
	return nil
}

// QueueMergeInfoFrame frames one merge-info announcement into the
// connection's write queue instead of writing it: the binary twin of
// QueueMessage, letting the announcement ride the next cluster frame's
// writev (see Flush for the ordering contract).
func (c *Conn) QueueMergeInfoFrame(p MergeInfoPayload) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	qbuf, err := appendMergeInfoFrame(c.qbuf, p)
	if err != nil {
		return err
	}
	c.qbuf = qbuf
	return nil
}

// DecodeMergeInfoFrame parses a FrameMergeInfo payload. The result holds no
// reference to f.Payload, so the caller may Release the frame immediately.
func DecodeMergeInfoFrame(f *Frame) (MergeInfoPayload, error) {
	if f.Type != FrameMergeInfo {
		return MergeInfoPayload{}, fmt.Errorf("%w: frame type 0x%02x is not merge-info", ErrBadFrame, f.Type)
	}
	b := f.Payload
	if len(b) != mergeInfoLen {
		return MergeInfoPayload{}, fmt.Errorf("%w: merge-info payload %d bytes, want %d", ErrBadFrame, len(b), mergeInfoLen)
	}
	cohort := binary.BigEndian.Uint64(b[0:8])
	if cohort > 1<<62 {
		return MergeInfoPayload{}, fmt.Errorf("%w: cohort id overflow", ErrBadFrame)
	}
	var role string
	switch b[8] {
	case mergeRoleBaseCode:
		role = MergeRoleBase
	case mergeRolePatchCode:
		role = MergeRolePatch
	default:
		return MergeInfoPayload{}, fmt.Errorf("%w: merge role code 0x%02x", ErrBadFrame, b[8])
	}
	return MergeInfoPayload{
		Cohort:        int64(cohort),
		Role:          role,
		JoinIndex:     int(binary.BigEndian.Uint32(b[9:13])),
		PatchClusters: int(binary.BigEndian.Uint32(b[13:17])),
	}, nil
}
