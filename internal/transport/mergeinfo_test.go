package transport

import (
	"errors"
	"testing"
)

func TestMergeInfoFrameRoundTrip(t *testing.T) {
	c, _ := newFrameConn()
	for _, want := range []MergeInfoPayload{
		{Cohort: 1, Role: MergeRoleBase, JoinIndex: 0},
		{Cohort: 42, Role: MergeRolePatch, JoinIndex: 17, PatchClusters: 9},
	} {
		if err := c.WriteMergeInfoFrame(want); err != nil {
			t.Fatal(err)
		}
		m, f, err := c.ReadFrameOrMessage(nil)
		if err != nil {
			t.Fatal(err)
		}
		if f == nil {
			t.Fatalf("got JSON message %+v, want binary frame", m)
		}
		got, err := DecodeMergeInfoFrame(f)
		f.Release()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round trip = %+v, want %+v", got, want)
		}
	}
}

func TestMergeInfoFrameWriteValidation(t *testing.T) {
	c, _ := newFrameConn()
	for _, bad := range []MergeInfoPayload{
		{Cohort: 1, Role: "leader"},
		{Cohort: -1, Role: MergeRoleBase},
		{Cohort: 1, Role: MergeRolePatch, JoinIndex: -3},
		{Cohort: 1, Role: MergeRolePatch, PatchClusters: -1},
	} {
		if err := c.WriteMergeInfoFrame(bad); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("WriteMergeInfoFrame(%+v) = %v, want ErrBadFrame", bad, err)
		}
	}
}

func TestDecodeMergeInfoFrameErrors(t *testing.T) {
	mk := func(typ byte, payload []byte) *Frame {
		f := &Frame{Version: FrameVersion, Type: typ, Payload: payload}
		return f
	}
	cases := map[string]*Frame{
		"wrong type":  mk(FrameCluster, make([]byte, mergeInfoLen)),
		"short":       mk(FrameMergeInfo, make([]byte, mergeInfoLen-1)),
		"long":        mk(FrameMergeInfo, make([]byte, mergeInfoLen+1)),
		"bad role":    mk(FrameMergeInfo, append(make([]byte, 8), 0x7F, 0, 0, 0, 0, 0, 0, 0, 0)),
		"cohort high": mk(FrameMergeInfo, append([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0, 1}, make([]byte, 8)...)),
	}
	for name, f := range cases {
		if _, err := DecodeMergeInfoFrame(f); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

// FuzzMergeInfoFrame feeds arbitrary payload bytes through the decoder: it
// must reject or accept cleanly (no panic), and every accepted payload must
// re-encode over a wire round trip to the identical value.
func FuzzMergeInfoFrame(f *testing.F) {
	f.Add(make([]byte, mergeInfoLen))
	seed := append([]byte{0, 0, 0, 0, 0, 0, 0, 7, 1}, 0, 0, 0, 3, 0, 0, 0, 0)
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, mergeInfoLen+4))
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr := &Frame{Version: FrameVersion, Type: FrameMergeInfo, Payload: payload}
		p, err := DecodeMergeInfoFrame(fr)
		if err != nil {
			return
		}
		c, _ := newFrameConn()
		if werr := c.WriteMergeInfoFrame(p); werr != nil {
			t.Fatalf("decoded payload %+v does not re-encode: %v", p, werr)
		}
		_, rt, rerr := c.ReadFrameOrMessage(nil)
		if rerr != nil || rt == nil {
			t.Fatalf("round trip read failed: %v", rerr)
		}
		got, derr := DecodeMergeInfoFrame(rt)
		rt.Release()
		if derr != nil {
			t.Fatal(derr)
		}
		if got != p {
			t.Fatalf("round trip = %+v, want %+v", got, p)
		}
	})
}
