package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"dvod/internal/topology"
)

// Binary frame constants. The full wire-format specification lives in
// DESIGN.md § "Wire format"; the layout is
//
//	magic(2) | version(1) | type(1) | flags(1) | payload-len(4) | payload
//
// with every multi-byte integer big-endian. The first magic octet (0xD7)
// doubles as the stream demultiplexer: a JSON control frame always begins
// with a 0x00 octet because MaxFrameBytes (2^20) keeps the top byte of its
// length prefix zero, so a receiver can tell the two framings apart from a
// single octet.
const (
	// FrameMagic0 and FrameMagic1 open every binary frame.
	FrameMagic0 = 0xD7
	FrameMagic1 = 0x0D
	// FrameVersion is the highest binary protocol version this build
	// speaks. Version 0 is invalid on the wire.
	FrameVersion = 1
	// FrameHeaderLen is the fixed header size in bytes.
	FrameHeaderLen = 9
	// MaxFramePayload bounds one binary frame's payload (meta + body). It
	// matches the raw-body bound of the JSON framing (64 · MaxFrameBytes).
	MaxFramePayload = MaxFrameBytes * 64
)

// Binary frame type codes. Only bulk cluster data is binary-framed; control
// traffic stays on the canonical JSON framing.
const (
	// FrameCluster carries one cluster: a fixed meta header (see
	// appendClusterMeta) followed by the cluster's raw bytes. It is used
	// for both watch-stream clusters and cluster.get responses — the
	// receiver knows which exchange it is in.
	FrameCluster byte = 0x01
)

// Capability strings exchanged in the hello handshake.
const (
	// CapClusterFrames advertises binary FrameCluster support.
	CapClusterFrames = "cluster-frames-v1"
)

// Hello message types: the connect-time capability exchange. A client that
// wants binary framing sends TypeHello as its first request; a server that
// understands it answers TypeHelloOK with the granted version and
// capabilities. Servers predating the handshake answer TypeError ("unknown
// message type"), which clients treat as "JSON only" and carry on — the
// connection stays usable, so old and new peers interoperate in every
// combination.
const (
	TypeHello   = "hello"
	TypeHelloOK = "hello.ok"
)

// HelloPayload is the client's capability offer.
type HelloPayload struct {
	// Version is the highest binary frame version the client accepts.
	Version int `json:"version"`
	// Caps lists the capability strings the client supports.
	Caps []string `json:"caps,omitempty"`
}

// HelloOKPayload is the server's grant: the version and capability subset
// both sides will use.
type HelloOKPayload struct {
	Version int      `json:"version"`
	Caps    []string `json:"caps,omitempty"`
}

// Errors reported by the binary framing layer (all wrap ErrBadFrame so
// existing callers that branch on it keep working).
var (
	// ErrBadMagic: the second magic octet did not match.
	ErrBadMagic = fmt.Errorf("%w: bad magic", ErrBadFrame)
	// ErrBadVersion: the frame's version octet is zero or above
	// FrameVersion.
	ErrBadVersion = fmt.Errorf("%w: unsupported version", ErrBadFrame)
)

// Frame is one received binary frame.
//
// Ownership rule: Payload is leased from the BufferPool that decoded the
// frame and remains valid while the frame holds at least one reference. A
// frame starts with one reference; Retain adds a consumer and every holder
// must call Release exactly once. The buffer returns to its pool only when
// the last reference is dropped, so one disk read can be fanned out to many
// writers (each holding its own reference) without copying, and any number
// of frames may be in flight concurrently without aliasing a shared read
// buffer. Callers that keep bytes past their Release must copy them first;
// after the final Release, Payload is nil and the backing array may be
// reused by a later read. Releasing more times than the frame was retained
// panics — a double release would hand the same buffer to two readers.
type Frame struct {
	Version byte
	Type    byte
	Flags   byte
	Payload []byte

	pool *BufferPool
	buf  []byte
	refs atomic.Int32

	// File-backed body (NewFileFrame): the bytes live in [foff, foff+fsize)
	// of file instead of Payload, so a writer can hand them to the kernel
	// send path (sendfile/splice) without a userspace copy. done releases
	// the underlying pin (disk.FileRef.Close) on the final Release.
	file  *os.File
	foff  int64
	fsize int64
	done  func()
}

// NewLeasedFrame wraps a buffer leased from pool (Get) in a frame with one
// reference, so locally produced data — a disk read — flows through the same
// retain/release fan-out path as frames decoded off the wire. A nil pool
// means buf was allocated unpooled and the final Release just drops it.
func NewLeasedFrame(pool *BufferPool, buf []byte) *Frame {
	f := &Frame{Payload: buf, pool: pool, buf: buf}
	f.refs.Store(1)
	return f
}

// NewFileFrame wraps a file-backed body — size bytes at offset off of file,
// typically a pinned disk.FileRef — in a frame with one reference. The frame
// flows through the same Retain/Release fan-out as byte-backed frames
// (Payload stays nil; writers branch on FileBody), and done — which may be
// nil — runs once when the last reference is released, releasing the pin.
// Holders must only use positioned I/O on file, never Seek: the descriptor
// is shared with every concurrent reader of the block.
func NewFileFrame(file *os.File, off, size int64, done func()) *Frame {
	f := &Frame{Type: FrameCluster, Version: FrameVersion, file: file, foff: off, fsize: size, done: done}
	f.refs.Store(1)
	return f
}

// FileBody returns the file-backed body's descriptor and data offset, with
// ok reporting whether this frame is file-backed at all (byte-backed frames
// return ok == false). The descriptor follows the frame's ownership rule:
// valid until the holder's Release.
func (f *Frame) FileBody() (file *os.File, off int64, ok bool) {
	if f == nil || f.file == nil {
		return nil, 0, false
	}
	return f.file, f.foff, true
}

// BodyLen returns the frame's body length in bytes for either backing.
func (f *Frame) BodyLen() int64 {
	if f == nil {
		return 0
	}
	if f.file != nil {
		return f.fsize
	}
	return int64(len(f.Payload))
}

// BodyBytes materializes the frame's body as a byte slice: byte-backed
// frames return Payload directly (valid until the frame's Release, free() is
// a no-op); file-backed frames lease a buffer from pool, pread the body into
// it, and return it with a free() that puts the lease back. Callers must run
// free() once they are done with the bytes — it is non-nil even on error.
// This is the userspace fallback the JSON framing and non-sendfile platforms
// use for file-backed bodies.
func (f *Frame) BodyBytes(pool *BufferPool) (body []byte, free func(), err error) {
	free = func() {}
	if f == nil {
		return nil, free, errors.New("transport: BodyBytes on nil frame")
	}
	if f.file == nil {
		return f.Payload, free, nil
	}
	var buf []byte
	if pool != nil {
		buf = pool.Get(int(f.fsize))
		free = func() { pool.Put(buf) }
	} else {
		buf = make([]byte, f.fsize)
	}
	if _, err := f.file.ReadAt(buf, f.foff); err != nil {
		free()
		return nil, func() {}, fmt.Errorf("read file-backed body: %w", err)
	}
	return buf, free, nil
}

// Retain adds one reference to the frame and returns it. Each Retain must be
// balanced by exactly one Release. Retaining a fully released frame panics:
// its buffer may already back another read.
func (f *Frame) Retain() *Frame {
	if f == nil {
		return nil
	}
	if f.refs.Add(1) <= 1 {
		panic("transport: Retain on a released frame")
	}
	return f
}

// Release drops one reference; the payload buffer returns to its pool when
// the last reference is dropped. Releasing a frame more times than it was
// retained panics — the buffer could otherwise be recycled while another
// holder is still reading it.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	switch n := f.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic("transport: Frame double release")
	}
	if f.pool != nil && f.buf != nil {
		f.pool.Put(f.buf)
	}
	if f.done != nil {
		f.done()
	}
	f.pool, f.buf, f.Payload = nil, nil, nil
	f.file, f.done = nil, nil
}

// Refs reports the frame's current reference count (for tests).
func (f *Frame) Refs() int { return int(f.refs.Load()) }

// clusterMetaFixed is the fixed-width prefix of a FrameCluster payload:
// index(4) offset(8) length(8) titleLen(2) srcLen(2).
const clusterMetaFixed = 24

// appendClusterMeta appends the binary cluster meta header to dst.
func appendClusterMeta(dst []byte, p ClusterPayload) ([]byte, error) {
	if p.Index < 0 || int64(uint32(p.Index)) != int64(p.Index) {
		return nil, fmt.Errorf("%w: cluster index %d", ErrBadFrame, p.Index)
	}
	if p.Offset < 0 || p.Length < 0 {
		return nil, fmt.Errorf("%w: negative offset/length", ErrBadFrame)
	}
	if len(p.Title) > 0xFFFF || len(p.Source) > 0xFFFF {
		return nil, fmt.Errorf("%w: name too long", ErrBadFrame)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.Index))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.Offset))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.Length))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Title)))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Source)))
	dst = append(dst, p.Title...)
	dst = append(dst, p.Source...)
	return dst, nil
}

// DecodeClusterFrame parses a FrameCluster payload into the cluster meta and
// its body. The body aliases f.Payload, so it follows the frame's ownership
// rule: valid until f.Release.
func DecodeClusterFrame(f *Frame) (ClusterPayload, []byte, error) {
	if f.Type != FrameCluster {
		return ClusterPayload{}, nil, fmt.Errorf("%w: frame type 0x%02x is not a cluster", ErrBadFrame, f.Type)
	}
	b := f.Payload
	if len(b) < clusterMetaFixed {
		return ClusterPayload{}, nil, fmt.Errorf("%w: cluster meta truncated (%d bytes)", ErrBadFrame, len(b))
	}
	index := binary.BigEndian.Uint32(b[0:4])
	offset := binary.BigEndian.Uint64(b[4:12])
	length := binary.BigEndian.Uint64(b[12:20])
	titleLen := int(binary.BigEndian.Uint16(b[20:22]))
	srcLen := int(binary.BigEndian.Uint16(b[22:24]))
	metaLen := clusterMetaFixed + titleLen + srcLen
	if len(b) < metaLen {
		return ClusterPayload{}, nil, fmt.Errorf("%w: cluster names truncated", ErrBadFrame)
	}
	body := b[metaLen:]
	if uint64(len(body)) != length {
		return ClusterPayload{}, nil, fmt.Errorf("%w: length field %d, body %d bytes", ErrBadFrame, length, len(body))
	}
	if offset > uint64(1)<<62 {
		return ClusterPayload{}, nil, fmt.Errorf("%w: offset overflow", ErrBadFrame)
	}
	p := ClusterPayload{
		Title:  string(b[clusterMetaFixed : clusterMetaFixed+titleLen]),
		Index:  int(index),
		Offset: int64(offset),
		Length: int64(length),
		Source: topology.NodeID(b[clusterMetaFixed+titleLen : metaLen]),
	}
	return p, body, nil
}

// buildClusterHeaderLocked assembles the binary frame header plus cluster
// meta for a body of bodyLen bytes into the connection's scratch buffer
// (reused across calls, so the steady state allocates nothing). Callers hold
// wmu and must finish with the returned slice before the next write.
func (c *Conn) buildClusterHeaderLocked(p ClusterPayload, bodyLen int64) ([]byte, error) {
	scratch := append(c.wscratch[:0],
		FrameMagic0, FrameMagic1, FrameVersion, FrameCluster, 0, // flags
		0, 0, 0, 0) // payload-len placeholder
	scratch, err := appendClusterMeta(scratch, p)
	if err != nil {
		return nil, err
	}
	payloadLen := int64(len(scratch)-FrameHeaderLen) + bodyLen
	if payloadLen > MaxFramePayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, payloadLen)
	}
	binary.BigEndian.PutUint32(scratch[5:9], uint32(payloadLen))
	c.wscratch = scratch[:0]
	return scratch, nil
}

// WriteClusterFrame sends one cluster as a binary frame: header and meta are
// assembled in a per-connection scratch buffer (reused across calls, so the
// steady state allocates nothing) and the body goes out straight from the
// caller's buffer in the same vectored write — no marshal, no copy, one
// syscall. p.Length must equal len(body).
func (c *Conn) WriteClusterFrame(p ClusterPayload, body []byte) error {
	if p.Length != int64(len(body)) {
		return fmt.Errorf("%w: payload length %d, body %d bytes", ErrBadFrame, p.Length, len(body))
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	scratch, err := c.buildClusterHeaderLocked(p, int64(len(body)))
	if err != nil {
		return err
	}
	if err := c.writeVectoredLocked(scratch, body); err != nil {
		return fmt.Errorf("write cluster frame: %w", err)
	}
	return nil
}

// WriteClusterBody sends one cluster on the connection's negotiated framing
// with the body taken from a frame, choosing the cheapest path available:
//
//   - binary framing + file-backed body: the frame header (and any queued
//     control frames) go out in one writev, then the body travels file→socket
//     inside the kernel via sendfile(2) — or splice(2) through the
//     connection's pipe when sendfile is not applicable — and never enters Go
//     userspace. Returns kernel = true.
//   - binary framing + byte-backed body, or a file-backed body the platform
//     or stream cannot kernel-send (non-TCP test pipes, !linux builds): the
//     pooled-buffer copy path of WriteClusterFrame. Returns kernel = false.
//   - JSON framing: a control frame of msgType followed by the raw body,
//     exactly as WriteMessageWithBody sends it. Returns kernel = false.
//
// The fallback paths produce byte-identical wire output to the kernel path.
// pool supplies the bounce buffer when a file-backed body must be copied
// after all; the caller keeps its reference on body and still must Release
// it. An error on the kernel path after the header went out leaves the
// stream unframeable, like any partial write does.
func (c *Conn) WriteClusterBody(pool *BufferPool, msgType string, p ClusterPayload, body *Frame) (kernel bool, err error) {
	size := body.BodyLen()
	if p.Length != size {
		return false, fmt.Errorf("%w: payload length %d, body %d bytes", ErrBadFrame, p.Length, size)
	}
	if !c.BinaryFrames() {
		m, err := Encode(msgType, p)
		if err != nil {
			return false, err
		}
		data, free, err := body.BodyBytes(pool)
		if err != nil {
			return false, err
		}
		defer free()
		return false, c.WriteMessageWithBody(m, data)
	}
	file, off, ok := body.FileBody()
	if !ok {
		return false, c.WriteClusterFrame(p, body.Payload)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	scratch, err := c.buildClusterHeaderLocked(p, size)
	if err != nil {
		return false, err
	}
	if err := c.writeVectoredLocked(scratch); err != nil {
		return false, fmt.Errorf("write cluster frame: %w", err)
	}
	kernel, err = c.sendBodyLocked(file, off, size)
	if err != nil {
		return kernel, fmt.Errorf("write cluster body: %w", err)
	}
	if kernel {
		return true, nil
	}
	// The stream cannot kernel-send (not a TCP socket, or a !linux build):
	// bounce the body through a pooled buffer. The header is already on the
	// wire, so only the raw bytes follow — identical wire output.
	data, free, err := body.BodyBytes(pool)
	if err != nil {
		return false, err
	}
	defer free()
	if _, err := c.rw.Write(data); err != nil {
		return false, fmt.Errorf("write cluster body: %w", err)
	}
	return false, nil
}

// ReadFrameOrMessage reads the next item on the stream, demultiplexing on
// the first octet: 0xD7 opens a binary frame (frame != nil, zero Message),
// anything else opens a JSON control frame (frame == nil). The binary
// payload is leased from pool (allocated unpooled when pool is nil); the
// caller must Release the returned frame.
func (c *Conn) ReadFrameOrMessage(pool *BufferPool) (Message, *Frame, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var first [1]byte
	if _, err := io.ReadFull(c.rw, first[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Message{}, nil, io.EOF
		}
		return Message{}, nil, fmt.Errorf("read frame header: %w", err)
	}
	if first[0] == FrameMagic0 {
		f, err := c.readFrameLocked(pool)
		return Message{}, f, err
	}
	m, err := c.readJSONLocked(first[0])
	return m, nil, err
}

// readFrameLocked parses a binary frame whose first magic octet has already
// been consumed. Callers hold rmu.
func (c *Conn) readFrameLocked(pool *BufferPool) (*Frame, error) {
	var hdr [FrameHeaderLen - 1]byte
	if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadFrame, err)
	}
	if hdr[0] != FrameMagic1 {
		return nil, fmt.Errorf("%w: 0x%02x", ErrBadMagic, hdr[0])
	}
	version := hdr[1]
	if version == 0 || version > FrameVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length frame payload", ErrBadFrame)
	}
	if n > MaxFramePayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	f := &Frame{Version: version, Type: hdr[2], Flags: hdr[3], pool: pool}
	f.refs.Store(1)
	if pool != nil {
		f.buf = pool.Get(int(n))
	} else {
		f.buf = make([]byte, n)
	}
	if _, err := io.ReadFull(c.rw, f.buf); err != nil {
		f.Release()
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	f.Payload = f.buf
	return f, nil
}

// EnableBinaryFrames marks the connection as having negotiated binary
// cluster framing (both sides call it after a successful hello exchange).
func (c *Conn) EnableBinaryFrames() { c.binary.Store(true) }

// BinaryFrames reports whether binary cluster framing was negotiated.
func (c *Conn) BinaryFrames() bool { return c.binary.Load() }

// Negotiate performs the client side of the hello handshake: it offers
// FrameVersion with CapClusterFrames and interprets the reply. It returns
// true when the server granted binary cluster framing (the connection is
// marked accordingly). A TypeError reply — what a pre-handshake server sends
// for the unknown "hello" type — selects the JSON fallback: Negotiate
// returns false with a nil error and the connection remains usable.
func (c *Conn) Negotiate() (bool, error) {
	granted, err := c.NegotiateCaps(CapClusterFrames)
	return granted[CapClusterFrames], err
}

// NegotiateCaps performs the client side of the hello handshake with an
// explicit capability offer and returns the granted subset. When
// CapClusterFrames is granted the connection is marked for binary framing. A
// TypeError reply — what a pre-handshake server sends for the unknown "hello"
// type — selects the JSON fallback: NegotiateCaps returns an empty grant with
// a nil error and the connection remains usable.
func (c *Conn) NegotiateCaps(caps ...string) (map[string]bool, error) {
	req, err := Encode(TypeHello, HelloPayload{
		Version: FrameVersion,
		Caps:    caps,
	})
	if err != nil {
		return nil, err
	}
	if err := c.WriteMessage(req); err != nil {
		return nil, err
	}
	m, err := c.ReadMessage()
	if err != nil {
		return nil, err
	}
	switch m.Type {
	case TypeHelloOK:
		ok, derr := Decode[HelloOKPayload](m)
		if derr != nil {
			return nil, derr
		}
		if ok.Version < 1 || ok.Version > FrameVersion {
			return nil, fmt.Errorf("hello: server granted unusable version %d", ok.Version)
		}
		granted := make(map[string]bool, len(ok.Caps))
		for _, cap := range ok.Caps {
			granted[cap] = true
		}
		if granted[CapClusterFrames] {
			c.EnableBinaryFrames()
		}
		return granted, nil
	case TypeError:
		// Legacy peer: no handshake support, stay on JSON.
		return nil, nil
	default:
		return nil, fmt.Errorf("hello: unexpected reply %q", m.Type)
	}
}

// AcceptHello performs the server side of the handshake for one received
// hello message: it intersects the offer with this build's capabilities,
// enables binary framing on the connection when granted, and writes the
// hello.ok reply.
func (c *Conn) AcceptHello(m Message) error {
	offer, err := Decode[HelloPayload](m)
	if err != nil {
		return err
	}
	version := offer.Version
	if version > FrameVersion {
		version = FrameVersion
	}
	var granted []string
	if version >= 1 {
		for _, cap := range offer.Caps {
			switch cap {
			case CapClusterFrames:
				granted = append(granted, CapClusterFrames)
				c.EnableBinaryFrames()
			case CapLedgerSync:
				granted = append(granted, CapLedgerSync)
			case CapMemberSync:
				granted = append(granted, CapMemberSync)
			}
		}
	}
	resp, err := Encode(TypeHelloOK, HelloOKPayload{Version: version, Caps: granted})
	if err != nil {
		return err
	}
	return c.WriteMessage(resp)
}
