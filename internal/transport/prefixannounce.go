package transport

import (
	"encoding/binary"
	"fmt"
)

// Prefix tier wire messages. The prefix announce is the per-session
// notification: right after watch.ok (and before any cluster) the server
// tells the client how many leading clusters come straight off the local
// prefix store and how many remote round trips its first cluster cost, so
// PlaybackStats can attribute startup latency without guessing. relay.join
// is the cross-server cohort subscription: a relay server whose merge cohort
// needs a non-resident title opens ONE relay.join to the origin and fans the
// resulting stream to all of its local watchers; on the origin side the
// relay session joins the origin's own merge registry, so N relays share one
// disk-read stream. The reply reuses the watch framing (watch.ok, clusters,
// watch.done) — relay.join differs from watch only in what it does not do:
// no redirect, no admission grant, no per-watch popularity count beyond the
// one demand signal per cohort.
const (
	// TypePrefixInfo is the JSON control-frame type (the fallback framing).
	TypePrefixInfo = "prefix.info"
	// FramePrefixAnnounce is the binary frame type code, used when the hello
	// exchange granted binary framing.
	FramePrefixAnnounce byte = 0x05
	// TypeRelayJoin asks a holder to stream a title for a downstream cohort.
	TypeRelayJoin = "relay.join"
)

// PrefixAnnouncePayload describes one session's prefix-tier service.
type PrefixAnnouncePayload struct {
	// PrefixClusters is how many leading clusters (from the session's start
	// position) the server serves from its local prefix store.
	PrefixClusters int `json:"prefixClusters"`
	// StartupRTTs is the number of cross-network fetches the server needs
	// for the session's first cluster: 0 when it is DMA-resident or pinned
	// in the prefix, 1 otherwise.
	StartupRTTs int `json:"startupRTTs"`
	// RelayTail reports that the session's tail rides a shared upstream
	// relay subscription instead of per-cluster peer fetches.
	RelayTail bool `json:"relayTail,omitempty"`
}

// RelayJoinPayload opens one upstream cohort subscription.
type RelayJoinPayload struct {
	// Title names the requested title.
	Title string `json:"title"`
	// StartCluster is the first cluster the downstream cohort needs.
	StartCluster int `json:"startCluster"`
}

// prefixAnnounceLen is the fixed binary payload size:
// prefixClusters(4) startupRTTs(2) flags(1).
const prefixAnnounceLen = 7

// prefixFlagRelayTail marks RelayTail in the binary flags byte.
const prefixFlagRelayTail byte = 0x01

// appendPrefixAnnounceFrame validates p and appends its full binary frame
// (header + payload) to dst.
func appendPrefixAnnounceFrame(dst []byte, p PrefixAnnouncePayload) ([]byte, error) {
	if p.PrefixClusters < 0 || p.StartupRTTs < 0 {
		return nil, fmt.Errorf("%w: negative prefix-announce field", ErrBadFrame)
	}
	if int64(uint32(p.PrefixClusters)) != int64(p.PrefixClusters) {
		return nil, fmt.Errorf("%w: prefix cluster count overflow", ErrBadFrame)
	}
	if p.StartupRTTs > 0xFFFF {
		return nil, fmt.Errorf("%w: startup RTT count overflow", ErrBadFrame)
	}
	var flags byte
	if p.RelayTail {
		flags |= prefixFlagRelayTail
	}
	dst = append(dst,
		FrameMagic0, FrameMagic1, FrameVersion, FramePrefixAnnounce, 0, // frame flags
		0, 0, 0, prefixAnnounceLen)
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.PrefixClusters))
	dst = binary.BigEndian.AppendUint16(dst, uint16(p.StartupRTTs))
	dst = append(dst, flags)
	return dst, nil
}

// WritePrefixAnnounceFrame sends one prefix announcement as a binary frame
// (together with any queued control frames, in one writev).
func (c *Conn) WritePrefixAnnounceFrame(p PrefixAnnouncePayload) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	scratch, err := appendPrefixAnnounceFrame(c.wscratch[:0], p)
	if err != nil {
		return err
	}
	c.wscratch = scratch[:0]
	if err := c.writeVectoredLocked(scratch); err != nil {
		return fmt.Errorf("write prefix-announce frame: %w", err)
	}
	return nil
}

// QueuePrefixAnnounceFrame frames one prefix announcement into the
// connection's write queue instead of writing it, so it rides the next
// cluster frame's writev exactly as the queued watch.ok does.
func (c *Conn) QueuePrefixAnnounceFrame(p PrefixAnnouncePayload) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	qbuf, err := appendPrefixAnnounceFrame(c.qbuf, p)
	if err != nil {
		return err
	}
	c.qbuf = qbuf
	return nil
}

// DecodePrefixAnnounceFrame parses a FramePrefixAnnounce payload. The result
// holds no reference to f.Payload, so the caller may Release the frame
// immediately. Unknown flag bits are rejected: the frame is versioned by the
// hello exchange, so a bit this build does not know is a framing error, not
// a forward-compatibility hole.
func DecodePrefixAnnounceFrame(f *Frame) (PrefixAnnouncePayload, error) {
	if f.Type != FramePrefixAnnounce {
		return PrefixAnnouncePayload{}, fmt.Errorf("%w: frame type 0x%02x is not prefix-announce", ErrBadFrame, f.Type)
	}
	b := f.Payload
	if len(b) != prefixAnnounceLen {
		return PrefixAnnouncePayload{}, fmt.Errorf("%w: prefix-announce payload %d bytes, want %d", ErrBadFrame, len(b), prefixAnnounceLen)
	}
	flags := b[6]
	if flags&^prefixFlagRelayTail != 0 {
		return PrefixAnnouncePayload{}, fmt.Errorf("%w: unknown prefix-announce flags 0x%02x", ErrBadFrame, flags)
	}
	return PrefixAnnouncePayload{
		PrefixClusters: int(binary.BigEndian.Uint32(b[0:4])),
		StartupRTTs:    int(binary.BigEndian.Uint16(b[4:6])),
		RelayTail:      flags&prefixFlagRelayTail != 0,
	}, nil
}
