package transport

import (
	"fmt"
	"sort"
	"sync"

	"dvod/internal/topology"
)

// AddrBook maps video-server nodes to their live TCP endpoints. It is the
// live-plane analogue of the paper's "determine the server to whom the
// requesting user is directly connected by this IP" lookup, and is safe for
// concurrent use.
type AddrBook struct {
	mu    sync.RWMutex
	addrs map[topology.NodeID]string
}

// NewAddrBook returns an empty address book.
func NewAddrBook() *AddrBook {
	return &AddrBook{addrs: make(map[topology.NodeID]string)}
}

// Set records a node's endpoint.
func (b *AddrBook) Set(node topology.NodeID, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[node] = addr
}

// Lookup returns a node's endpoint.
func (b *AddrBook) Lookup(node topology.NodeID) (string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	addr, ok := b.addrs[node]
	if !ok {
		return "", fmt.Errorf("no address for node %s", node)
	}
	return addr, nil
}

// Nodes lists registered nodes, sorted.
func (b *AddrBook) Nodes() []topology.NodeID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]topology.NodeID, 0, len(b.addrs))
	for n := range b.addrs {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Counters tracks cumulative octets transferred over each logical topology
// link. On the live plane all traffic really crosses localhost, so the
// service charges each delivered cluster against the links of the route the
// VRA chose — giving the SNMP rate estimator the same counter shape a router
// would expose.
type Counters struct {
	mu     sync.RWMutex
	octets map[topology.LinkID]uint64
}

// NewCounters returns zeroed counters.
func NewCounters() *Counters {
	return &Counters{octets: make(map[topology.LinkID]uint64)}
}

// ChargePath adds n octets to every link along the path.
func (c *Counters) ChargePath(links []topology.LinkID, n int64) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range links {
		c.octets[id] += uint64(n)
	}
}

// LinkOctets implements snmp.OctetSource.
func (c *Counters) LinkOctets(id topology.LinkID) (uint64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.octets[id], nil
}
