//go:build linux

package transport

import (
	"bytes"
	"io"
	"sync"
	"syscall"
	"testing"
)

// TestSpliceBodyTCP drives the splice leg directly against a real socket.
// In production splice only runs when sendfile reports unsupported (which a
// file → TCP transfer never does), so this is the only coverage the pipe
// fill/drain loop gets.
func TestSpliceBodyTCP(t *testing.T) {
	cliNC, srvNC := tcpPair(t)
	c := NewConn(srvNC)

	size := 1 << 20 // bigger than the 64 KiB default pipe: forces refills
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	f, off := bodyFile(t, data)

	var got bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = io.Copy(&got, cliNC)
	}()

	c.wmu.Lock()
	sc := srvNC.(syscall.Conn)
	rc, err := sc.SyscallConn()
	if err != nil {
		c.wmu.Unlock()
		t.Fatalf("SyscallConn: %v", err)
	}
	c.ks.rc, c.ks.rcOK = rc, true
	c.ks.spStep = c.spliceStep
	kernel, err := c.spliceBodyLocked(f, off, int64(size))
	c.wmu.Unlock()
	if err != nil {
		t.Fatalf("spliceBodyLocked: %v", err)
	}
	if !kernel {
		t.Fatal("splice reported unsupported for file → TCP")
	}
	srvNC.Close()
	wg.Wait()
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("spliced %d bytes, want %d byte-equal", got.Len(), size)
	}
	if !c.ks.hasPipe {
		t.Fatal("splice ran without creating the staging pipe")
	}
	c.Close()
	if c.ks.hasPipe {
		t.Fatal("Close left the staging pipe open")
	}
}

// TestSpliceTruncatedFile: a body shorter than the announced size must fail
// loudly, not hang or silently under-deliver.
func TestSpliceTruncatedFile(t *testing.T) {
	cliNC, srvNC := tcpPair(t)
	c := NewConn(srvNC)
	data := make([]byte, 4<<10)
	f, off := bodyFile(t, data)
	go func() { _, _ = io.Copy(io.Discard, cliNC) }()

	c.wmu.Lock()
	defer c.wmu.Unlock()
	rc, err := srvNC.(syscall.Conn).SyscallConn()
	if err != nil {
		t.Fatalf("SyscallConn: %v", err)
	}
	c.ks.rc, c.ks.rcOK = rc, true
	c.ks.spStep = c.spliceStep
	// Announce twice the bytes the file holds.
	if _, err := c.spliceBodyLocked(f, off, int64(2*len(data))); err != io.ErrUnexpectedEOF {
		t.Fatalf("splice past EOF: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestSendfileTruncatedFile: same contract on the sendfile leg, through the
// public entry point.
func TestSendfileTruncatedFile(t *testing.T) {
	cliNC, srvNC := tcpPair(t)
	c := NewConn(srvNC)
	data := make([]byte, 4<<10)
	f, off := bodyFile(t, data)
	go func() { _, _ = io.Copy(io.Discard, cliNC) }()

	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.sendBodyLocked(f, off, int64(2*len(data))); err != io.ErrUnexpectedEOF {
		t.Fatalf("sendfile past EOF: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestKernelSendZeroAlloc locks in the CI gate's contract: after warm-up, a
// steady-state kernel send allocates nothing — no closures, no leases, no
// vector regrowth.
func TestKernelSendZeroAlloc(t *testing.T) {
	cliNC, srvNC := tcpPair(t)
	srv := NewConn(srvNC)
	srv.EnableBinaryFrames()
	size := 64 << 10
	data := make([]byte, size)
	f, off := bodyFile(t, data)
	frame := NewFileFrame(f, off, int64(size), nil)
	defer frame.Release()
	pool := NewBufferPool(nil)
	go func() {
		drain := make([]byte, 64<<10)
		for {
			if _, err := cliNC.Read(drain); err != nil {
				return
			}
		}
	}()
	payload := kernelPayload(size)
	send := func() {
		kernel, err := srv.WriteClusterBody(pool, TypeCluster, payload, frame)
		if err != nil {
			t.Fatalf("send: %v", err)
		}
		if !kernel {
			t.Fatal("kernel = false on linux TCP")
		}
	}
	send() // warm-up: binds the RawConn, sizes the scratch and vector
	if allocs := testing.AllocsPerRun(50, send); allocs != 0 {
		t.Fatalf("kernel send allocates %.1f/op, want 0", allocs)
	}
}
