package transport

import (
	"sync"
	"sync/atomic"

	"dvod/internal/metrics"
)

// Buffer pool size classes: powers of two from 4 KiB to 64 MiB. Requests
// above the largest class are allocated directly and never pooled.
const (
	minPoolShift = 12 // 4 KiB
	maxPoolShift = 26 // 64 MiB
	numPoolSizes = maxPoolShift - minPoolShift + 1
)

// BufferPool recycles cluster-body buffers across the delivery plane. Reads
// lease a buffer for exactly one frame; releasing the frame returns the
// buffer for reuse, so a steady-state stream moves clusters with zero
// per-cluster allocation. Buffers are grouped into power-of-two size classes
// and handed out with len equal to the requested size (cap is the class
// size). All methods are safe for concurrent use.
//
// Hit/miss/return counts surface as the counters transport.pool_hits,
// transport.pool_misses, and transport.pool_returns in the registry the pool
// was built with (a server's pool reports on its GET /metrics endpoint).
type BufferPool struct {
	classes [numPoolSizes]sync.Pool
	hits    *metrics.Counter
	misses  *metrics.Counter
	returns *metrics.Counter
	// outstanding counts leases not yet returned (Get minus Put), the
	// balance a leak check asserts on: every frame Release and every error
	// path must Put exactly what it Got.
	outstanding atomic.Int64
}

// NewBufferPool builds a pool reporting into reg; nil allocates a private
// registry (the counters still work, they are just not exported anywhere).
func NewBufferPool(reg *metrics.Registry) *BufferPool {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &BufferPool{
		hits:    reg.Counter("transport.pool_hits"),
		misses:  reg.Counter("transport.pool_misses"),
		returns: reg.Counter("transport.pool_returns"),
	}
}

// defaultPool backs clients that do not wire their own pool.
var defaultPool = NewBufferPool(nil)

// DefaultPool returns the process-wide shared pool.
func DefaultPool() *BufferPool { return defaultPool }

// sizeClass returns the class index for a request of n bytes, or -1 when the
// request is too large to pool.
func sizeClass(n int) int {
	if n > 1<<maxPoolShift {
		return -1
	}
	c := 0
	for n > 1<<(minPoolShift+c) {
		c++
	}
	return c
}

// Get leases a buffer of length n (n <= 0 yields an empty, non-nil buffer).
// The caller owns the buffer until it calls Put; the pool never hands the
// same buffer out twice concurrently.
func (p *BufferPool) Get(n int) []byte {
	p.outstanding.Add(1)
	if n <= 0 {
		return []byte{}
	}
	c := sizeClass(n)
	if c < 0 {
		p.misses.Inc()
		return make([]byte, n)
	}
	if v := p.classes[c].Get(); v != nil {
		p.hits.Inc()
		return (*v.(*[]byte))[:n]
	}
	p.misses.Inc()
	return make([]byte, n, 1<<(minPoolShift+c))
}

// Put returns a buffer obtained from Get. Buffers whose capacity does not
// match a size class (including oversized direct allocations) are dropped.
// The caller must not use the buffer after Put.
func (p *BufferPool) Put(buf []byte) {
	p.outstanding.Add(-1)
	c := sizeClass(cap(buf))
	if c < 0 || cap(buf) != 1<<(minPoolShift+c) {
		return
	}
	full := buf[:cap(buf)]
	p.returns.Inc()
	p.classes[c].Put(&full)
}

// Outstanding reports leases handed out by Get and not yet returned by Put.
// A quiesced pipeline (no in-flight frames) must read 0; anything else is a
// leaked lease. Buffers too large to pool still count — the balance tracks
// ownership, not recycling.
func (p *BufferPool) Outstanding() int64 { return p.outstanding.Load() }
