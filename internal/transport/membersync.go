package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"dvod/internal/topology"
)

// Member sync: the anti-entropy exchange of the gossip membership layer
// (internal/membership, DESIGN.md § "Membership & redirect"). One exchange is
// a request/reply pair of identical shape carrying (incarnation, heartbeat,
// state) rows plus the delta-sync bookkeeping scalars (epoch, seq, ack,
// known). Like ledger sync, the exchange rides the negotiated binary framing
// when the hello handshake granted CapMemberSync, and falls back to JSON
// control frames against peers that never negotiated.
const (
	// FrameMemberSync is the binary frame type code. The reply is the same
	// frame type with MemberSyncFlagReply set.
	FrameMemberSync byte = 0x04
	// MemberSyncFlagReply marks a binary member-sync frame as the reply leg
	// of an exchange.
	MemberSyncFlagReply byte = 0x01
	// MemberSyncFlagFull marks a full-view payload (MemberSyncPayload.Full).
	MemberSyncFlagFull byte = 0x02
	// MemberSyncFlagWantFull carries MemberSyncPayload.WantFull.
	MemberSyncFlagWantFull byte = 0x04
	// CapMemberSync advertises binary FrameMemberSync support in the hello
	// capability exchange.
	CapMemberSync = "member-sync-v1"
)

// memberSyncFixed is the fixed-width prefix of a FrameMemberSync payload:
// fromLen(2) memberCount(4) epoch(8) seq(8) ack(8) known(4); the from name
// and the member entries follow.
const memberSyncFixed = 34

// Per-entry layout: nodeLen(2) node incarnation(8) heartbeat(8) state(1).

// memberStateByte maps a wire state string to its binary code. Unknown
// strings — states minted by a newer build — encode as Suspect, the same
// safe degradation membership.parseState applies on the JSON path, so a
// mixed-version fleet never counts an unknown state as healthy.
func memberStateByte(s string) byte {
	switch s {
	case "alive":
		return 0
	case "draining":
		return 1
	case "suspect":
		return 2
	case "failed":
		return 3
	case "left":
		return 4
	default:
		return 2
	}
}

// memberStateName is the inverse of memberStateByte for the five known
// codes; anything else is rejected by the decoder.
func memberStateName(b byte) (string, bool) {
	switch b {
	case 0:
		return "alive", true
	case 1:
		return "draining", true
	case 2:
		return "suspect", true
	case 3:
		return "failed", true
	case 4:
		return "left", true
	default:
		return "", false
	}
}

// AppendMemberSyncPayload appends the binary encoding of p to dst. Entries
// are emitted in node-sorted order, so equal payloads encode to equal bytes.
// Flag-carried fields (Full, WantFull, the reply bit) are not part of the
// payload; WriteMemberSyncFrame folds them into the frame header.
func AppendMemberSyncPayload(dst []byte, p MemberSyncPayload) ([]byte, error) {
	if len(p.From) > 0xFFFF {
		return nil, fmt.Errorf("%w: member sync from name too long", ErrBadFrame)
	}
	if len(p.Members) > 0xFFFFFF {
		return nil, fmt.Errorf("%w: member sync section too large", ErrBadFrame)
	}
	if p.Known < 0 || int64(p.Known) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: member sync known %d", ErrBadFrame, p.Known)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.From)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.Members)))
	dst = binary.BigEndian.AppendUint64(dst, p.Epoch)
	dst = binary.BigEndian.AppendUint64(dst, p.Seq)
	dst = binary.BigEndian.AppendUint64(dst, p.Ack)
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.Known))
	dst = append(dst, p.From...)
	entries := p.Members
	if !sort.SliceIsSorted(entries, func(i, j int) bool { return entries[i].Node < entries[j].Node }) {
		entries = append([]MemberEntry(nil), entries...)
		sort.Slice(entries, func(i, j int) bool { return entries[i].Node < entries[j].Node })
	}
	for _, e := range entries {
		if len(e.Node) > 0xFFFF {
			return nil, fmt.Errorf("%w: member node name too long", ErrBadFrame)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(e.Node)))
		dst = append(dst, e.Node...)
		dst = binary.BigEndian.AppendUint64(dst, e.Incarnation)
		dst = binary.BigEndian.AppendUint64(dst, e.Heartbeat)
		dst = append(dst, memberStateByte(e.State))
	}
	return dst, nil
}

// MemberSyncFlags folds a payload's boolean fields (plus the reply bit) into
// a frame flag byte.
func MemberSyncFlags(p MemberSyncPayload, reply bool) byte {
	var flags byte
	if reply {
		flags |= MemberSyncFlagReply
	}
	if p.Full {
		flags |= MemberSyncFlagFull
	}
	if p.WantFull {
		flags |= MemberSyncFlagWantFull
	}
	return flags
}

// WriteMemberSyncFrame sends one sync leg as a binary frame (reply sets
// MemberSyncFlagReply; Full and WantFull travel as flags too). The frame is
// assembled in the connection's scratch buffer like cluster frames.
func (c *Conn) WriteMemberSyncFrame(p MemberSyncPayload, reply bool) error {
	flags := MemberSyncFlags(p, reply)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	scratch := append(c.wscratch[:0],
		FrameMagic0, FrameMagic1, FrameVersion, FrameMemberSync, flags,
		0, 0, 0, 0) // payload-len placeholder
	scratch, err := AppendMemberSyncPayload(scratch, p)
	if err != nil {
		return err
	}
	payloadLen := len(scratch) - FrameHeaderLen
	if payloadLen > MaxFramePayload {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, payloadLen)
	}
	binary.BigEndian.PutUint32(scratch[5:9], uint32(payloadLen))
	c.wscratch = scratch[:0]
	if err := c.writeVectoredLocked(scratch); err != nil {
		return fmt.Errorf("write member sync frame: %w", err)
	}
	return nil
}

// DecodeMemberSyncFrame parses a FrameMemberSync payload, restoring Full and
// WantFull from the frame flags. The result holds no reference to f.Payload,
// so the caller may Release the frame immediately; whether the frame is the
// reply leg is f.Flags & MemberSyncFlagReply.
func DecodeMemberSyncFrame(f *Frame) (MemberSyncPayload, error) {
	if f.Type != FrameMemberSync {
		return MemberSyncPayload{}, fmt.Errorf("%w: frame type 0x%02x is not member-sync", ErrBadFrame, f.Type)
	}
	cur := &ledgerCursor{b: f.Payload}
	fromLen, err := cur.u16()
	if err != nil {
		return MemberSyncPayload{}, err
	}
	count, err := cur.u32()
	if err != nil {
		return MemberSyncPayload{}, err
	}
	var p MemberSyncPayload
	if p.Epoch, err = cur.u64(); err != nil {
		return MemberSyncPayload{}, err
	}
	if p.Seq, err = cur.u64(); err != nil {
		return MemberSyncPayload{}, err
	}
	if p.Ack, err = cur.u64(); err != nil {
		return MemberSyncPayload{}, err
	}
	known, err := cur.u32()
	if err != nil {
		return MemberSyncPayload{}, err
	}
	if uint64(known) > math.MaxInt32 {
		return MemberSyncPayload{}, fmt.Errorf("%w: member sync known %d", ErrBadFrame, known)
	}
	p.Known = int(known)
	from, err := cur.name(fromLen)
	if err != nil {
		return MemberSyncPayload{}, err
	}
	p.From = topology.NodeID(from)
	if count > 0 {
		// Each entry is at least 19 bytes; reject counts the remaining
		// payload cannot possibly hold before allocating.
		if uint64(count)*19 > uint64(len(cur.b)-cur.off) {
			return MemberSyncPayload{}, fmt.Errorf("%w: member count %d overruns payload", ErrBadFrame, count)
		}
		p.Members = make([]MemberEntry, 0, count)
	}
	var prev topology.NodeID
	for i := range count {
		var e MemberEntry
		nodeLen, err := cur.u16()
		if err != nil {
			return MemberSyncPayload{}, err
		}
		node, err := cur.name(nodeLen)
		if err != nil {
			return MemberSyncPayload{}, err
		}
		e.Node = topology.NodeID(node)
		if i > 0 && e.Node <= prev {
			return MemberSyncPayload{}, fmt.Errorf("%w: member entries not strictly node-sorted", ErrBadFrame)
		}
		prev = e.Node
		if e.Incarnation, err = cur.u64(); err != nil {
			return MemberSyncPayload{}, err
		}
		if e.Heartbeat, err = cur.u64(); err != nil {
			return MemberSyncPayload{}, err
		}
		stateB, err := cur.take(1)
		if err != nil {
			return MemberSyncPayload{}, err
		}
		name, ok := memberStateName(stateB[0])
		if !ok {
			return MemberSyncPayload{}, fmt.Errorf("%w: member state code %d", ErrBadFrame, stateB[0])
		}
		e.State = name
		p.Members = append(p.Members, e)
	}
	if cur.off != len(cur.b) {
		return MemberSyncPayload{}, fmt.Errorf("%w: %d trailing bytes after member sync", ErrBadFrame, len(cur.b)-cur.off)
	}
	p.Full = f.Flags&MemberSyncFlagFull != 0
	p.WantFull = f.Flags&MemberSyncFlagWantFull != 0
	return p, nil
}
