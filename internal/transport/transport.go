// Package transport is the live-plane wire protocol of the VoD service,
// over TCP (the paper uses "TCP for control messages and either TCP or UDP
// for the video data"; we use TCP for both so delivered bytes are
// verifiable). Two framings share one stream:
//
//   - JSON control frames — 4-byte big-endian length, then a JSON Message.
//     Canonical and always available: requests, replies, errors, and the
//     hello capability exchange all use it.
//   - Binary cluster frames — negotiated at connect time via hello/hello.ok,
//     used only for bulk cluster data (magic | version | type | flags |
//     payload-len | payload; see frame.go and DESIGN.md § "Wire format").
//
// The two are demultiplexed by the first octet: MaxFrameBytes (2^20) keeps
// the top byte of every JSON length prefix at 0x00, while a binary frame
// always opens with 0xD7.
//
// Frame flow of one delivered cluster on the zero-copy path:
//
//	server                                          client
//	──────                                          ──────
//	pool.Get(c) ◄── BufferPool
//	striping.ReadPartInto ──► buf
//	WriteClusterFrame(meta, buf) ──► [hdr|meta][buf] ──► ReadFrameOrMessage
//	pool.Put(buf)                                       │ pool.Get(len)
//	                                                    ▼
//	                                      DecodeClusterFrame ──► verify
//	                                                    │
//	                                            frame.Release ──► pool.Put
//
// The cluster body crosses each hop exactly once (disk→buffer, buffer→
// socket, socket→buffer) with no marshaling and, in steady state, no
// allocation: both ends lease buffers from a size-classed sync.Pool. On the
// JSON fallback the same flow runs with a marshaled header frame and a
// per-cluster allocated body.
package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dvod/internal/topology"
)

// MaxFrameBytes bounds a control frame; oversized frames indicate protocol
// corruption.
const MaxFrameBytes = 1 << 20

// Message types exchanged by the service.
const (
	// TypeError carries ErrorPayload.
	TypeError = "error"
	// TypeTitles requests the server's catalog view (no payload);
	// TypeTitlesOK answers with TitlesPayload.
	TypeTitles   = "titles"
	TypeTitlesOK = "titles.ok"
	// TypeWatch asks the home server to deliver a whole title
	// (WatchPayload); TypeWatchOK answers with WatchOKPayload, then one
	// TypeCluster + raw bytes per cluster, then TypeWatchDone. A server
	// running admission control may instead answer TypeWatchReject with
	// WatchRejectPayload.
	TypeWatch       = "watch"
	TypeWatchOK     = "watch.ok"
	TypeWatchReject = "watch.reject"
	TypeCluster     = "cluster"
	TypeWatchDone   = "watch.done"
	// TypeClusterGet fetches one stored cluster (ClusterGetPayload);
	// TypeClusterOK answers with ClusterPayload + raw bytes. Used both by
	// peers (mid-stream re-routing) and directly by tests.
	TypeClusterGet = "cluster.get"
	TypeClusterOK  = "cluster.ok"
	// TypeHolders asks which servers hold a title (HoldersPayload);
	// TypeHoldersOK answers with HoldersOKPayload. Used by clients that
	// fetch clusters from several replicas in parallel.
	TypeHolders   = "holders"
	TypeHoldersOK = "holders.ok"
	// TypePing/TypePong probe liveness (no payloads).
	TypePing = "ping"
	TypePong = "pong"
	// TypeWatchRedirect answers a watch request the serving node decided a
	// better-placed peer should handle (WatchRedirectPayload): the stateless
	// front door of the elastic fleet. Clients follow it transparently with
	// a bounded hop count.
	TypeWatchRedirect = "watch.redirect"
	// TypeMemberSync exchanges cluster-membership views between gossipers
	// (MemberSyncPayload); TypeMemberSyncOK answers with the receiver's
	// merged view.
	TypeMemberSync   = "member.sync"
	TypeMemberSyncOK = "member.sync.ok"
	// TypeMemberPingReq asks a helper node to probe a third member on the
	// sender's behalf (MemberPingReqPayload) — the indirect-probing leg of
	// the failure detector, so one bad link cannot produce a Suspect
	// verdict. TypeMemberPingAck answers with the probe outcome.
	TypeMemberPingReq = "member.ping-req"
	TypeMemberPingAck = "member.ping-ack"
)

// Message is one control frame.
type Message struct {
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Error codes carried by ErrorPayload.Code, letting clients branch on
// machine-readable failure classes without parsing messages.
const (
	// CodeBusy: the server is at its concurrent-session or setup-rate
	// limit; the client should retry later or at another replica.
	CodeBusy = "busy"
)

// ErrServerBusy is the typed error clients observe when a server answers
// with CodeBusy.
var ErrServerBusy = errors.New("server busy")

// ErrorPayload reports a request failure. Code is optional and names a
// machine-readable failure class (see CodeBusy).
type ErrorPayload struct {
	Message string `json:"message"`
	Code    string `json:"code,omitempty"`
}

// TitlesPayload lists catalog titles and whether this server holds each
// locally.
type TitlesPayload struct {
	Titles []TitleInfo `json:"titles"`
}

// TitleInfo is one catalog row.
type TitleInfo struct {
	Name        string  `json:"name"`
	SizeBytes   int64   `json:"sizeBytes"`
	BitrateMbps float64 `json:"bitrateMbps"`
	Resident    bool    `json:"resident"`
}

// WatchPayload asks for a title delivery. StartCluster supports the seek
// operation of interactive VoD: delivery begins at that cluster index
// (0 = from the beginning). Class is the requesting user's service class
// ("premium" | "standard" | "background"); empty means standard, so
// class-unaware clients keep working.
type WatchPayload struct {
	Title        string `json:"title"`
	StartCluster int    `json:"startCluster,omitempty"`
	Class        string `json:"class,omitempty"`
	// Hops counts how many watch.redirect bounces this request has already
	// followed, so servers can cap redirect chains. Zero (and absent on the
	// wire) for a request sent straight at its first server.
	Hops int `json:"hops,omitempty"`
}

// WatchOKPayload opens a delivery stream. When the admission broker degraded
// the session, Degraded is true and DeliveredMbps carries the reduced rate
// the client should pace playout at; otherwise DeliveredMbps equals
// BitrateMbps (or is 0 on class-unaware servers).
type WatchOKPayload struct {
	Title         string  `json:"title"`
	SizeBytes     int64   `json:"sizeBytes"`
	BitrateMbps   float64 `json:"bitrateMbps"`
	ClusterBytes  int64   `json:"clusterBytes"`
	NumClusters   int     `json:"numClusters"`
	Class         string  `json:"class,omitempty"`
	DeliveredMbps float64 `json:"deliveredMbps,omitempty"`
	Degraded      bool    `json:"degraded,omitempty"`
}

// WatchDonePayload closes a delivery stream. It is optional — servers
// predating it send watch.done with no payload, and clients that ignore the
// payload keep working.
type WatchDonePayload struct {
	// Migrations counts the mid-stream reservation migrations the session's
	// admission grant went through: each time a cluster-boundary re-plan
	// moved the route, the old links' reservations were released and the new
	// route's acquired.
	Migrations int `json:"migrations,omitempty"`
}

// WatchRejectPayload is the admission broker's typed refusal of a watch
// request: the class's bandwidth share, queue window, and degradation ladder
// are all exhausted.
type WatchRejectPayload struct {
	Title  string `json:"title"`
	Class  string `json:"class"`
	Reason string `json:"reason"`
	// NeededMbps and FreeMbps mirror the broker's rejection detail.
	NeededMbps float64 `json:"neededMbps,omitempty"`
	FreeMbps   float64 `json:"freeMbps,omitempty"`
}

// WatchRedirectPayload bounces a watch request to a better-placed server:
// the stateless front door's typed reply. Target names the node, Addr is its
// dialable endpoint (so the client needs no address book of its own), and
// Hops is the chain length the client must echo in its next WatchPayload.
type WatchRedirectPayload struct {
	Title  string          `json:"title"`
	Target topology.NodeID `json:"target"`
	Addr   string          `json:"addr"`
	Hops   int             `json:"hops"`
}

// MemberEntry is one member's (incarnation, heartbeat, state) triple in a
// membership view exchange.
type MemberEntry struct {
	Node        topology.NodeID `json:"node"`
	Incarnation uint64          `json:"incarnation"`
	Heartbeat   uint64          `json:"heartbeat"`
	State       string          `json:"state"`
}

// MemberSyncPayload carries one leg of a membership anti-entropy exchange.
// Since the delta-sync protocol, Members usually holds only the rows that
// changed since the receiver's last acknowledged update sequence; a
// first-contact, mismatch, restart, or periodic exchange ships the full view
// with Full set. Legacy peers leave Epoch zero and always ship full views —
// a receiver treats such payloads exactly as before the delta protocol.
type MemberSyncPayload struct {
	From    topology.NodeID `json:"from"`
	Members []MemberEntry   `json:"members"`
	// Epoch is the sender's boot epoch: a restarted tracker announces a new
	// one, which resets the receiver's per-peer ack state (the restarted
	// side lost its acks, so deltas computed against them would be unsound).
	Epoch uint64 `json:"epoch,omitempty"`
	// Seq is the sender's update sequence covered by this payload; the
	// receiver echoes it back as Ack once the rows are merged.
	Seq uint64 `json:"seq,omitempty"`
	// Ack is the highest Seq of the receiver's own state that the sender has
	// merged — the scalar ack the receiver's next delta is computed against.
	Ack uint64 `json:"ack,omitempty"`
	// Full marks a full-view payload (first contact, restart, explicit
	// request, or the periodic anti-entropy safety net).
	Full bool `json:"full,omitempty"`
	// WantFull asks the receiver to make its next payload toward the sender
	// a full view (ack-state mismatch recovery).
	WantFull bool `json:"wantFull,omitempty"`
	// Known is the size of the sender's view; a count disagreement after a
	// delta merge triggers the full-sync fallback in whichever direction is
	// missing rows.
	Known int `json:"known,omitempty"`
}

// MemberPingReqPayload asks the receiving helper to probe Target on the
// sender's behalf: the indirect leg of the SWIM-style failure detector. Addr
// is the target's dialable endpoint as the sender knows it (the helper may
// resolve its own if empty).
type MemberPingReqPayload struct {
	From   topology.NodeID `json:"from"`
	Target topology.NodeID `json:"target"`
	Addr   string          `json:"addr,omitempty"`
}

// MemberPingAckPayload reports an indirect probe's outcome: OK means the
// helper reached Target.
type MemberPingAckPayload struct {
	Target topology.NodeID `json:"target"`
	OK     bool            `json:"ok"`
}

// ClusterPayload announces one cluster's raw bytes, which follow the frame.
type ClusterPayload struct {
	Title  string `json:"title"`
	Index  int    `json:"index"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
	// Source is the video server the cluster was fetched from — the
	// paper's per-cluster optimal server, surfaced so clients can observe
	// mid-stream switches.
	Source topology.NodeID `json:"source"`
}

// HoldersPayload asks which servers hold a title.
type HoldersPayload struct {
	Title string `json:"title"`
}

// HoldersOKPayload lists a title's replica holders plus the delivery
// parameters a parallel fetcher needs.
type HoldersOKPayload struct {
	Title        string            `json:"title"`
	SizeBytes    int64             `json:"sizeBytes"`
	BitrateMbps  float64           `json:"bitrateMbps"`
	ClusterBytes int64             `json:"clusterBytes"`
	NumClusters  int               `json:"numClusters"`
	Holders      []topology.NodeID `json:"holders"`
}

// ClusterGetPayload fetches one stored cluster from a peer.
type ClusterGetPayload struct {
	Title        string `json:"title"`
	Index        int    `json:"index"`
	ClusterBytes int64  `json:"clusterBytes"`
}

// Errors reported by the framing layer.
var (
	ErrFrameTooLarge = errors.New("frame exceeds maximum size")
	ErrBadFrame      = errors.New("malformed frame")
)

// Conn wraps a byte stream with message framing. Writes and reads each take
// an internal lock, so one reader and one writer may operate concurrently,
// but multi-frame exchanges (message + raw body) hold the lock across both
// parts via the *WithBody variants. Callers that split an exchange across
// ReadFrameOrMessage and ReadBody must be the connection's only reader.
type Conn struct {
	rmu sync.Mutex
	wmu sync.Mutex
	rw  io.ReadWriteCloser

	// binary records the hello-negotiated framing for cluster data.
	binary atomic.Bool
	// wscratch holds binary frame headers between writes (guarded by wmu).
	wscratch []byte
	// qbuf accumulates control frames queued by QueueMessage (and the
	// binary queue variants) as already-framed bytes; the next write on the
	// connection — any framing — prepends them in the same writev, so small
	// frames coalesce with the traffic that follows instead of costing a
	// syscall each. Guarded by wmu.
	qbuf []byte
	// wvecBack is the reusable backing array for the writev vector and
	// wvecIO the net.Buffers view WriteTo consumes (WriteTo advances the
	// slice header, so the view is rebuilt from wvecBack on every write and
	// the backing capacity survives). Both guarded by wmu.
	wvecBack [][]byte
	wvecIO   net.Buffers
	// ks holds the platform kernel-send state (Linux: the lazily created
	// splice pipe; elsewhere: empty). Guarded by wmu.
	ks kernelState
}

// NewConn wraps a stream (net.Conn or net.Pipe end).
func NewConn(rw io.ReadWriteCloser) *Conn { return &Conn{rw: rw} }

// Close closes the underlying stream (and the splice pipe, if the kernel
// send path created one).
func (c *Conn) Close() error {
	c.wmu.Lock()
	c.ks.close()
	c.wmu.Unlock()
	return c.rw.Close()
}

// SetReadDeadline forwards to the underlying stream when it supports
// deadlines (net.Conn does; in-memory test pipes may not, in which case this
// is a no-op returning nil).
func (c *Conn) SetReadDeadline(t time.Time) error {
	if d, ok := c.rw.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

// SetDeadline bounds both directions when the underlying stream supports
// deadlines. Exchanges that must stay on cadence use this rather than
// SetReadDeadline: a peer that accepted and went silent can stall the write
// leg too (full socket buffers), not just the reply read.
func (c *Conn) SetDeadline(t time.Time) error {
	if d, ok := c.rw.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return nil
}

// Encode builds a Message with a JSON payload.
func Encode(msgType string, payload any) (Message, error) {
	if payload == nil {
		return Message{Type: msgType}, nil
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return Message{}, fmt.Errorf("encode %s: %w", msgType, err)
	}
	return Message{Type: msgType, Payload: raw}, nil
}

// Decode unmarshals a message's payload.
func Decode[T any](m Message) (T, error) {
	var out T
	if len(m.Payload) == 0 {
		return out, fmt.Errorf("%s: empty payload", m.Type)
	}
	if err := json.Unmarshal(m.Payload, &out); err != nil {
		return out, fmt.Errorf("decode %s: %w", m.Type, err)
	}
	return out, nil
}

// WriteMessage sends one control frame (plus any frames queued via
// QueueMessage, which precede it in one writev).
func (c *Conn) WriteMessage(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeLocked(m, nil)
}

// WriteMessageWithBody sends a control frame immediately followed by raw
// body bytes, atomically with respect to other writers on this Conn. Header,
// frame, and body go out in a single vectored write.
func (c *Conn) WriteMessageWithBody(m Message, body []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeLocked(m, body)
}

// QueueMessage frames a control message into the connection's queue without
// writing it. The queued bytes precede the next write on the connection (any
// framing, including Flush), so a burst of small control frames — or a
// control frame directly followed by bulk data — costs one syscall instead
// of one each. Queued frames are only ever sent in-order with later writes;
// a connection must not sit on queued frames it expects the peer to answer
// without calling Flush.
func (c *Conn) QueueMessage(m Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("marshal frame: %w", err)
	}
	if len(data) > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(data))
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.qbuf = binary.BigEndian.AppendUint32(c.qbuf, uint32(len(data)))
	c.qbuf = append(c.qbuf, data...)
	return nil
}

// Flush writes any queued control frames now. A no-op when nothing is
// queued.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeVectoredLocked()
}

// writeLocked frames and writes one JSON control message and an optional raw
// body in a single vectored write. Callers hold wmu.
func (c *Conn) writeLocked(m Message, body []byte) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("marshal frame: %w", err)
	}
	if len(data) > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	return c.writeVectoredLocked(hdr[:], data, body)
}

// writeVectoredLocked writes the queued control frames followed by bufs in
// one vectored write (writev on a TCP connection; sequential writes on
// streams without writev support). Empty buffers are skipped. The queue is
// consumed even on error: a partial writev leaves the stream unframeable, so
// the connection is done for either way. Callers hold wmu.
func (c *Conn) writeVectoredLocked(bufs ...[]byte) error {
	vec := c.wvecBack[:0]
	if len(c.qbuf) > 0 {
		vec = append(vec, c.qbuf)
	}
	for _, b := range bufs {
		if len(b) > 0 {
			vec = append(vec, b)
		}
	}
	c.wvecBack = vec
	if len(vec) == 0 {
		return nil
	}
	c.wvecIO = net.Buffers(vec)
	_, err := c.wvecIO.WriteTo(c.rw)
	c.qbuf = c.qbuf[:0]
	if err != nil {
		return fmt.Errorf("write frames: %w", err)
	}
	return nil
}

// ReadMessage receives one control frame.
func (c *Conn) ReadMessage() (Message, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return c.readLocked()
}

// ReadMessageWithBody receives a control frame and, using bodyLen extracted
// from it by the caller-supplied function, the raw body that follows. The
// body is freshly allocated; use ReadMessageWithBodyPool on hot paths.
func (c *Conn) ReadMessageWithBody(bodyLen func(Message) (int64, error)) (Message, []byte, error) {
	m, f, err := c.ReadMessageWithBodyPool(nil, bodyLen)
	if f == nil {
		return m, nil, err
	}
	return m, f.Payload, err
}

// ReadMessageWithBodyPool is ReadMessageWithBody with the body leased from
// pool: the returned frame owns the body bytes until Release (see Frame's
// ownership rule). A nil frame is returned when the error path was taken
// before the body read.
func (c *Conn) ReadMessageWithBodyPool(pool *BufferPool, bodyLen func(Message) (int64, error)) (Message, *Frame, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	m, err := c.readLocked()
	if err != nil {
		return Message{}, nil, err
	}
	n, err := bodyLen(m)
	if err != nil {
		return m, nil, err
	}
	f, err := c.readBodyLocked(n, pool)
	return m, f, err
}

// ReadBody reads n raw body bytes that follow an already-read control frame,
// leased from pool (allocated when pool is nil). The caller must be the
// connection's only reader, since the message/body pair is read under two
// separate lock acquisitions.
func (c *Conn) ReadBody(n int64, pool *BufferPool) (*Frame, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return c.readBodyLocked(n, pool)
}

// readBodyLocked reads n raw bytes into a (possibly pooled) frame buffer.
// Callers hold rmu.
func (c *Conn) readBodyLocked(n int64, pool *BufferPool) (*Frame, error) {
	if n < 0 || n > MaxFrameBytes*64 {
		return nil, fmt.Errorf("%w: body length %d", ErrBadFrame, n)
	}
	f := &Frame{pool: pool}
	f.refs.Store(1)
	if pool != nil {
		f.buf = pool.Get(int(n))
	} else {
		f.buf = make([]byte, n)
	}
	if _, err := io.ReadFull(c.rw, f.buf); err != nil {
		f.Release()
		return nil, fmt.Errorf("read body: %w", err)
	}
	f.Payload = f.buf
	return f, nil
}

func (c *Conn) readLocked() (Message, error) {
	var first [1]byte
	if _, err := io.ReadFull(c.rw, first[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("read frame header: %w", err)
	}
	if first[0] == FrameMagic0 {
		return Message{}, fmt.Errorf("%w: binary frame where a control frame was expected", ErrBadFrame)
	}
	return c.readJSONLocked(first[0])
}

// readJSONLocked parses a JSON control frame whose first length octet has
// already been consumed. Callers hold rmu.
func (c *Conn) readJSONLocked(first byte) (Message, error) {
	var rest [3]byte
	if _, err := io.ReadFull(c.rw, rest[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("read frame header: %w", err)
	}
	n := uint32(first)<<24 | uint32(rest[0])<<16 | uint32(rest[1])<<8 | uint32(rest[2])
	if n == 0 {
		return Message{}, fmt.Errorf("%w: zero-length frame", ErrBadFrame)
	}
	if n > MaxFrameBytes {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(c.rw, data); err != nil {
		return Message{}, fmt.Errorf("read frame: %w", err)
	}
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if m.Type == "" {
		return Message{}, fmt.Errorf("%w: missing type", ErrBadFrame)
	}
	return m, nil
}

// WriteError sends an error frame with the given message.
func (c *Conn) WriteError(msg string) error {
	return c.WriteErrorCode(msg, "")
}

// WriteErrorCode sends an error frame with a machine-readable code.
func (c *Conn) WriteErrorCode(msg, code string) error {
	m, err := Encode(TypeError, ErrorPayload{Message: msg, Code: code})
	if err != nil {
		return err
	}
	return c.WriteMessage(m)
}

// AsError converts a TypeError message into a Go error (nil for other
// types). Coded errors wrap their sentinel, so errors.Is(err, ErrServerBusy)
// works across the wire.
func AsError(m Message) error {
	if m.Type != TypeError {
		return nil
	}
	p, err := Decode[ErrorPayload](m)
	if err != nil {
		return fmt.Errorf("remote error (undecodable): %w", err)
	}
	if p.Code == CodeBusy {
		return fmt.Errorf("remote error: %s: %w", p.Message, ErrServerBusy)
	}
	return fmt.Errorf("remote error: %s", p.Message)
}

// Dial connects to a service endpoint.
func Dial(addr string) (*Conn, error) {
	return DialWith(addr, nil)
}

// DialWith connects like Dial but passes the raw TCP stream through wrap
// before framing — the hook fault injectors use to interpose on a
// connection's bytes (cuts, stalls). A nil wrap is the identity.
func DialWith(addr string, wrap func(io.ReadWriteCloser) io.ReadWriteCloser) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	var rw io.ReadWriteCloser = nc
	if wrap != nil {
		rw = wrap(rw)
	}
	return NewConn(rw), nil
}
