// Package transport is the live-plane wire protocol of the VoD service: a
// minimal length-prefixed JSON control channel with raw byte streaming for
// video data, over TCP (the paper uses "TCP for control messages and either
// TCP or UDP for the video data"; we use TCP for both so delivered bytes are
// verifiable).
//
// Frame layout: 4-byte big-endian length, then a JSON Message. Video
// clusters are announced by a control message carrying their length and then
// sent as raw bytes immediately after the frame.
package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dvod/internal/topology"
)

// MaxFrameBytes bounds a control frame; oversized frames indicate protocol
// corruption.
const MaxFrameBytes = 1 << 20

// Message types exchanged by the service.
const (
	// TypeError carries ErrorPayload.
	TypeError = "error"
	// TypeTitles requests the server's catalog view (no payload);
	// TypeTitlesOK answers with TitlesPayload.
	TypeTitles   = "titles"
	TypeTitlesOK = "titles.ok"
	// TypeWatch asks the home server to deliver a whole title
	// (WatchPayload); TypeWatchOK answers with WatchOKPayload, then one
	// TypeCluster + raw bytes per cluster, then TypeWatchDone. A server
	// running admission control may instead answer TypeWatchReject with
	// WatchRejectPayload.
	TypeWatch       = "watch"
	TypeWatchOK     = "watch.ok"
	TypeWatchReject = "watch.reject"
	TypeCluster     = "cluster"
	TypeWatchDone   = "watch.done"
	// TypeClusterGet fetches one stored cluster (ClusterGetPayload);
	// TypeClusterOK answers with ClusterPayload + raw bytes. Used both by
	// peers (mid-stream re-routing) and directly by tests.
	TypeClusterGet = "cluster.get"
	TypeClusterOK  = "cluster.ok"
	// TypeHolders asks which servers hold a title (HoldersPayload);
	// TypeHoldersOK answers with HoldersOKPayload. Used by clients that
	// fetch clusters from several replicas in parallel.
	TypeHolders   = "holders"
	TypeHoldersOK = "holders.ok"
	// TypePing/TypePong probe liveness (no payloads).
	TypePing = "ping"
	TypePong = "pong"
)

// Message is one control frame.
type Message struct {
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Error codes carried by ErrorPayload.Code, letting clients branch on
// machine-readable failure classes without parsing messages.
const (
	// CodeBusy: the server is at its concurrent-session or setup-rate
	// limit; the client should retry later or at another replica.
	CodeBusy = "busy"
)

// ErrServerBusy is the typed error clients observe when a server answers
// with CodeBusy.
var ErrServerBusy = errors.New("server busy")

// ErrorPayload reports a request failure. Code is optional and names a
// machine-readable failure class (see CodeBusy).
type ErrorPayload struct {
	Message string `json:"message"`
	Code    string `json:"code,omitempty"`
}

// TitlesPayload lists catalog titles and whether this server holds each
// locally.
type TitlesPayload struct {
	Titles []TitleInfo `json:"titles"`
}

// TitleInfo is one catalog row.
type TitleInfo struct {
	Name        string  `json:"name"`
	SizeBytes   int64   `json:"sizeBytes"`
	BitrateMbps float64 `json:"bitrateMbps"`
	Resident    bool    `json:"resident"`
}

// WatchPayload asks for a title delivery. StartCluster supports the seek
// operation of interactive VoD: delivery begins at that cluster index
// (0 = from the beginning). Class is the requesting user's service class
// ("premium" | "standard" | "background"); empty means standard, so
// class-unaware clients keep working.
type WatchPayload struct {
	Title        string `json:"title"`
	StartCluster int    `json:"startCluster,omitempty"`
	Class        string `json:"class,omitempty"`
}

// WatchOKPayload opens a delivery stream. When the admission broker degraded
// the session, Degraded is true and DeliveredMbps carries the reduced rate
// the client should pace playout at; otherwise DeliveredMbps equals
// BitrateMbps (or is 0 on class-unaware servers).
type WatchOKPayload struct {
	Title         string  `json:"title"`
	SizeBytes     int64   `json:"sizeBytes"`
	BitrateMbps   float64 `json:"bitrateMbps"`
	ClusterBytes  int64   `json:"clusterBytes"`
	NumClusters   int     `json:"numClusters"`
	Class         string  `json:"class,omitempty"`
	DeliveredMbps float64 `json:"deliveredMbps,omitempty"`
	Degraded      bool    `json:"degraded,omitempty"`
}

// WatchRejectPayload is the admission broker's typed refusal of a watch
// request: the class's bandwidth share, queue window, and degradation ladder
// are all exhausted.
type WatchRejectPayload struct {
	Title  string `json:"title"`
	Class  string `json:"class"`
	Reason string `json:"reason"`
	// NeededMbps and FreeMbps mirror the broker's rejection detail.
	NeededMbps float64 `json:"neededMbps,omitempty"`
	FreeMbps   float64 `json:"freeMbps,omitempty"`
}

// ClusterPayload announces one cluster's raw bytes, which follow the frame.
type ClusterPayload struct {
	Title  string `json:"title"`
	Index  int    `json:"index"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
	// Source is the video server the cluster was fetched from — the
	// paper's per-cluster optimal server, surfaced so clients can observe
	// mid-stream switches.
	Source topology.NodeID `json:"source"`
}

// HoldersPayload asks which servers hold a title.
type HoldersPayload struct {
	Title string `json:"title"`
}

// HoldersOKPayload lists a title's replica holders plus the delivery
// parameters a parallel fetcher needs.
type HoldersOKPayload struct {
	Title        string            `json:"title"`
	SizeBytes    int64             `json:"sizeBytes"`
	BitrateMbps  float64           `json:"bitrateMbps"`
	ClusterBytes int64             `json:"clusterBytes"`
	NumClusters  int               `json:"numClusters"`
	Holders      []topology.NodeID `json:"holders"`
}

// ClusterGetPayload fetches one stored cluster from a peer.
type ClusterGetPayload struct {
	Title        string `json:"title"`
	Index        int    `json:"index"`
	ClusterBytes int64  `json:"clusterBytes"`
}

// Errors reported by the framing layer.
var (
	ErrFrameTooLarge = errors.New("frame exceeds maximum size")
	ErrBadFrame      = errors.New("malformed frame")
)

// Conn wraps a byte stream with message framing. Writes and reads each take
// an internal lock, so one reader and one writer may operate concurrently,
// but multi-frame exchanges (message + raw body) hold the lock across both
// parts via the *WithBody variants.
type Conn struct {
	rmu sync.Mutex
	wmu sync.Mutex
	rw  io.ReadWriteCloser
}

// NewConn wraps a stream (net.Conn or net.Pipe end).
func NewConn(rw io.ReadWriteCloser) *Conn { return &Conn{rw: rw} }

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rw.Close() }

// SetReadDeadline forwards to the underlying stream when it supports
// deadlines (net.Conn does; in-memory test pipes may not, in which case this
// is a no-op returning nil).
func (c *Conn) SetReadDeadline(t time.Time) error {
	if d, ok := c.rw.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

// Encode builds a Message with a JSON payload.
func Encode(msgType string, payload any) (Message, error) {
	if payload == nil {
		return Message{Type: msgType}, nil
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return Message{}, fmt.Errorf("encode %s: %w", msgType, err)
	}
	return Message{Type: msgType, Payload: raw}, nil
}

// Decode unmarshals a message's payload.
func Decode[T any](m Message) (T, error) {
	var out T
	if len(m.Payload) == 0 {
		return out, fmt.Errorf("%s: empty payload", m.Type)
	}
	if err := json.Unmarshal(m.Payload, &out); err != nil {
		return out, fmt.Errorf("decode %s: %w", m.Type, err)
	}
	return out, nil
}

// WriteMessage sends one control frame.
func (c *Conn) WriteMessage(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeLocked(m)
}

// WriteMessageWithBody sends a control frame immediately followed by raw
// body bytes, atomically with respect to other writers on this Conn.
func (c *Conn) WriteMessageWithBody(m Message, body []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeLocked(m); err != nil {
		return err
	}
	if _, err := c.rw.Write(body); err != nil {
		return fmt.Errorf("write body: %w", err)
	}
	return nil
}

func (c *Conn) writeLocked(m Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("marshal frame: %w", err)
	}
	if len(data) > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := c.rw.Write(data); err != nil {
		return fmt.Errorf("write frame: %w", err)
	}
	return nil
}

// ReadMessage receives one control frame.
func (c *Conn) ReadMessage() (Message, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return c.readLocked()
}

// ReadMessageWithBody receives a control frame and, using bodyLen extracted
// from it by the caller-supplied function, the raw body that follows.
func (c *Conn) ReadMessageWithBody(bodyLen func(Message) (int64, error)) (Message, []byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	m, err := c.readLocked()
	if err != nil {
		return Message{}, nil, err
	}
	n, err := bodyLen(m)
	if err != nil {
		return m, nil, err
	}
	if n < 0 || n > MaxFrameBytes*64 {
		return m, nil, fmt.Errorf("%w: body length %d", ErrBadFrame, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.rw, body); err != nil {
		return m, nil, fmt.Errorf("read body: %w", err)
	}
	return m, body, nil
}

func (c *Conn) readLocked() (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return Message{}, fmt.Errorf("%w: zero-length frame", ErrBadFrame)
	}
	if n > MaxFrameBytes {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(c.rw, data); err != nil {
		return Message{}, fmt.Errorf("read frame: %w", err)
	}
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if m.Type == "" {
		return Message{}, fmt.Errorf("%w: missing type", ErrBadFrame)
	}
	return m, nil
}

// WriteError sends an error frame with the given message.
func (c *Conn) WriteError(msg string) error {
	return c.WriteErrorCode(msg, "")
}

// WriteErrorCode sends an error frame with a machine-readable code.
func (c *Conn) WriteErrorCode(msg, code string) error {
	m, err := Encode(TypeError, ErrorPayload{Message: msg, Code: code})
	if err != nil {
		return err
	}
	return c.WriteMessage(m)
}

// AsError converts a TypeError message into a Go error (nil for other
// types). Coded errors wrap their sentinel, so errors.Is(err, ErrServerBusy)
// works across the wire.
func AsError(m Message) error {
	if m.Type != TypeError {
		return nil
	}
	p, err := Decode[ErrorPayload](m)
	if err != nil {
		return fmt.Errorf("remote error (undecodable): %w", err)
	}
	if p.Code == CodeBusy {
		return fmt.Errorf("remote error: %s: %w", p.Message, ErrServerBusy)
	}
	return fmt.Errorf("remote error: %s", p.Message)
}

// Dial connects to a service endpoint.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return NewConn(nc), nil
}
