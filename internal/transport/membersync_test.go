package transport

import (
	"bytes"
	"reflect"
	"testing"
)

// encodeMemberSyncFrame renders one sync payload as full frame bytes.
func encodeMemberSyncFrame(t testing.TB, p MemberSyncPayload, reply bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	c := NewConn(nopCloser{&buf})
	if err := c.WriteMemberSyncFrame(p, reply); err != nil {
		t.Fatalf("write member sync frame: %v", err)
	}
	return buf.Bytes()
}

func sampleMemberSync() MemberSyncPayload {
	return MemberSyncPayload{
		From:  "patras",
		Epoch: 3,
		Seq:   91,
		Ack:   17,
		Known: 4,
		Full:  true,
		Members: []MemberEntry{
			{Node: "athens", Incarnation: 2, Heartbeat: 40, State: "alive"},
			{Node: "corfu", Incarnation: 1, Heartbeat: 8, State: "suspect"},
			{Node: "patras", Incarnation: 5, Heartbeat: 91, State: "draining"},
			{Node: "sparta", Incarnation: 3, Heartbeat: 0, State: "left"},
		},
	}
}

// TestMemberSyncFrameRoundTrip pins the binary codec: payload → frame →
// payload is the identity, and the reply/full/want-full flags survive.
func TestMemberSyncFrameRoundTrip(t *testing.T) {
	want := sampleMemberSync()
	want.WantFull = true
	data := encodeMemberSyncFrame(t, want, true)
	c := NewConn(readCloser{bytes.NewReader(data)})
	m, f, err := c.ReadFrameOrMessage(nil)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if f == nil {
		t.Fatalf("got JSON message %+v, want binary frame", m)
	}
	defer f.Release()
	if f.Type != FrameMemberSync {
		t.Fatalf("frame type 0x%02x", f.Type)
	}
	if f.Flags&MemberSyncFlagReply == 0 {
		t.Fatal("reply flag lost")
	}
	got, err := DecodeMemberSyncFrame(f)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestMemberSyncFrameCanonical pins that unsorted input entries encode to the
// same bytes as sorted ones, and that an unknown state string degrades to
// suspect on the wire — the binary twin of parseState's safety rule.
func TestMemberSyncFrameCanonical(t *testing.T) {
	sorted := sampleMemberSync()
	shuffled := sampleMemberSync()
	shuffled.Members[0], shuffled.Members[2] = shuffled.Members[2], shuffled.Members[0]
	a, err := AppendMemberSyncPayload(nil, sorted)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AppendMemberSyncPayload(nil, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("entry order changed the encoding")
	}

	future := MemberSyncPayload{From: "n", Members: []MemberEntry{
		{Node: "x", Incarnation: 1, Heartbeat: 1, State: "quarantined-v9"},
	}}
	enc, err := AppendMemberSyncPayload(nil, future)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMemberSyncFrame(&Frame{Type: FrameMemberSync, Payload: enc})
	if err != nil {
		t.Fatal(err)
	}
	if got.Members[0].State != "suspect" {
		t.Fatalf("unknown state decoded as %q, want the suspect degradation", got.Members[0].State)
	}
}

// TestMemberSyncFrameRejects pins the codec's validation failures.
func TestMemberSyncFrameRejects(t *testing.T) {
	if _, err := AppendMemberSyncPayload(nil, MemberSyncPayload{Known: -1}); err == nil {
		t.Fatal("negative known encoded")
	}
	data := encodeMemberSyncFrame(t, sampleMemberSync(), false)
	// Truncated payload must fail cleanly.
	f := &Frame{Type: FrameMemberSync, Payload: data[FrameHeaderLen : len(data)-3]}
	if _, err := DecodeMemberSyncFrame(f); err == nil {
		t.Fatal("truncated member sync decoded")
	}
	// Trailing garbage must fail too.
	f = &Frame{Type: FrameMemberSync, Payload: append(append([]byte(nil), data[FrameHeaderLen:]...), 0xAA)}
	if _, err := DecodeMemberSyncFrame(f); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// An out-of-range state code must be rejected, not misread.
	bad := append([]byte(nil), data[FrameHeaderLen:]...)
	bad[len(bad)-1] = 9
	f = &Frame{Type: FrameMemberSync, Payload: bad}
	if _, err := DecodeMemberSyncFrame(f); err == nil {
		t.Fatal("unknown state code accepted")
	}
	// Unsorted entries are non-canonical and must be rejected.
	dup := MemberSyncPayload{From: "n", Members: []MemberEntry{
		{Node: "a", Incarnation: 1, Heartbeat: 1, State: "alive"},
		{Node: "a", Incarnation: 2, Heartbeat: 2, State: "alive"},
	}}
	enc, err := AppendMemberSyncPayload(nil, dup)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMemberSyncFrame(&Frame{Type: FrameMemberSync, Payload: enc}); err == nil {
		t.Fatal("duplicate node entries accepted")
	}
}

// FuzzMemberSyncFrame throws arbitrary bytes at the member-sync decoder: it
// must never panic, and anything it accepts must re-encode and decode back to
// the same payload (the codec is canonical).
func FuzzMemberSyncFrame(f *testing.F) {
	valid := encodeMemberSyncFrame(f, sampleMemberSync(), false)
	f.Add(valid[FrameHeaderLen:])
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add(make([]byte, memberSyncFixed))
	f.Add(bytes.Repeat([]byte{0xFF}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		frame := &Frame{Type: FrameMemberSync, Payload: data}
		p, err := DecodeMemberSyncFrame(frame)
		if err != nil {
			return
		}
		reenc, err := AppendMemberSyncPayload(nil, p)
		if err != nil {
			t.Fatalf("decoded payload fails to re-encode: %v (%+v)", err, p)
		}
		p2, err := DecodeMemberSyncFrame(&Frame{
			Type:  FrameMemberSync,
			Flags: MemberSyncFlags(p, false),
			Payload: reenc,
		})
		if err != nil {
			t.Fatalf("re-encoded payload fails to decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("unstable round trip:\n first %+v\nsecond %+v", p, p2)
		}
	})
}
