package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"testing"
	"unicode/utf8"
)

// readCloser adapts a bytes.Reader into the io.ReadWriteCloser Conn wants.
type readCloser struct {
	*bytes.Reader
}

func (readCloser) Write(p []byte) (int, error) { return len(p), nil }
func (readCloser) Close() error                { return nil }

// FuzzReadMessage throws arbitrary bytes at the frame parser: it must never
// panic and must either yield a well-formed message or a clean error.
func FuzzReadMessage(f *testing.F) {
	// Seed corpus: valid frame, truncated frame, zero length, huge length,
	// bad JSON, missing type.
	valid, _ := Encode(TypePing, nil)
	data, _ := encodeFrame(valid)
	f.Add(data)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{0, 0, 0, 3, '{', '{', '{'})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Add([]byte{0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(readCloser{bytes.NewReader(data)})
		m, err := c.ReadMessage()
		if err == nil && m.Type == "" {
			t.Fatal("nil error with empty message type")
		}
	})
}

// encodeFrame serializes a message the way writeLocked does, for seeds.
func encodeFrame(m Message) ([]byte, error) {
	var buf bytes.Buffer
	c := NewConn(nopCloser{&buf})
	if err := c.WriteMessage(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

func (n nopCloser) Read(p []byte) (int, error) { return n.Buffer.Read(p) }

// FuzzRoundTrip: any message that encodes must decode back identically.
func FuzzRoundTrip(f *testing.F) {
	f.Add("watch", `{"title":"movie"}`)
	f.Add("ping", "")
	f.Add("cluster.ok", `{"title":"m","index":3,"offset":30,"length":10,"source":"U4"}`)
	f.Fuzz(func(t *testing.T, msgType, payload string) {
		if msgType == "" {
			return // writeLocked allows it but readLocked rejects; skip
		}
		if !utf8.ValidString(msgType) {
			// encoding/json replaces invalid UTF-8 with U+FFFD, so such
			// types cannot round-trip byte-identically by design.
			return
		}
		m := Message{Type: msgType}
		if payload != "" {
			// Only valid JSON payloads are representable.
			raw := []byte(payload)
			var probe any
			if err := jsonUnmarshal(raw, &probe); err != nil {
				return
			}
			m.Payload = raw
		}
		data, err := encodeFrame(m)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				return
			}
			t.Fatalf("encode: %v", err)
		}
		c := NewConn(readCloser{bytes.NewReader(data)})
		got, err := c.ReadMessage()
		if err != nil {
			t.Fatalf("decode of encoded frame: %v", err)
		}
		if got.Type != m.Type {
			t.Fatalf("type %q round-tripped to %q", m.Type, got.Type)
		}
	})
}

// jsonUnmarshal indirection keeps the fuzz body tidy.
func jsonUnmarshal(data []byte, v any) error {
	dec := newStrictDecoder(data)
	return dec.Decode(v)
}

func newStrictDecoder(data []byte) *jsonDecoder { return &jsonDecoder{data: data} }

// jsonDecoder is a minimal wrapper over encoding/json for the fuzz helper.
type jsonDecoder struct{ data []byte }

func (d *jsonDecoder) Decode(v any) error { return jsonUnmarshalStd(d.data, v) }

// TestFrameHeaderEncoding pins the wire layout: 4-byte big-endian length.
func TestFrameHeaderEncoding(t *testing.T) {
	m, err := Encode(TypePing, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := encodeFrame(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 4 {
		t.Fatalf("frame = %d bytes", len(data))
	}
	n := binary.BigEndian.Uint32(data[:4])
	if int(n) != len(data)-4 {
		t.Fatalf("header says %d, body is %d", n, len(data)-4)
	}
}

// TestReadMessageTruncatedBody: a frame header promising more bytes than
// arrive yields an error, not a hang or panic.
func TestReadMessageTruncatedBody(t *testing.T) {
	c := NewConn(readCloser{bytes.NewReader([]byte{0, 0, 0, 10, 'x', 'y'})})
	if _, err := c.ReadMessage(); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// EOF right at the header boundary maps to io.EOF.
	c2 := NewConn(readCloser{bytes.NewReader(nil)})
	if _, err := c2.ReadMessage(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream error = %v", err)
	}
}

// jsonUnmarshalStd is the standard-library unmarshal, named to keep the
// fuzz helper self-documenting.
func jsonUnmarshalStd(data []byte, v any) error { return json.Unmarshal(data, v) }
