package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// frameStream is an in-memory duplex "wire" usable as one Conn's stream.
type frameStream struct{ bytes.Buffer }

func (*frameStream) Close() error { return nil }

// newFrameConn returns a Conn over an in-memory buffer plus the buffer
// itself, so tests can write one side and read it back on the same Conn.
func newFrameConn() (*Conn, *frameStream) {
	s := &frameStream{}
	return NewConn(s), s
}

func testClusterPayload(n int) (ClusterPayload, []byte) {
	body := make([]byte, n)
	for i := range body {
		body[i] = byte(i * 31)
	}
	return ClusterPayload{
		Title:  "feature",
		Index:  7,
		Offset: 7 * int64(n),
		Length: int64(n),
		Source: "U4",
	}, body
}

func TestClusterFrameRoundTrip(t *testing.T) {
	pool := NewBufferPool(nil)
	c, _ := newFrameConn()
	payload, body := testClusterPayload(64 << 10)
	if err := c.WriteClusterFrame(payload, body); err != nil {
		t.Fatal(err)
	}
	m, f, err := c.ReadFrameOrMessage(pool)
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatalf("demuxed to a control frame %+v", m)
	}
	if f.Version != FrameVersion || f.Type != FrameCluster || f.Flags != 0 {
		t.Fatalf("frame header = %+v", f)
	}
	got, gotBody, err := DecodeClusterFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if got != payload {
		t.Fatalf("payload = %+v, want %+v", got, payload)
	}
	if !bytes.Equal(gotBody, body) {
		t.Fatal("body corrupted in transit")
	}
	f.Release()
	if f.Payload != nil {
		t.Fatal("payload not cleared by Release")
	}
}

// TestFrameDemux interleaves JSON control frames and binary cluster frames
// on one stream; the receiver must separate them by first octet alone.
func TestFrameDemux(t *testing.T) {
	c, _ := newFrameConn()
	ping, _ := Encode(TypePing, nil)
	if err := c.WriteMessage(ping); err != nil {
		t.Fatal(err)
	}
	payload, body := testClusterPayload(4096)
	if err := c.WriteClusterFrame(payload, body); err != nil {
		t.Fatal(err)
	}
	done, _ := Encode(TypeWatchDone, nil)
	if err := c.WriteMessage(done); err != nil {
		t.Fatal(err)
	}

	m, f, err := c.ReadFrameOrMessage(nil)
	if err != nil || f != nil || m.Type != TypePing {
		t.Fatalf("first item: m=%+v f=%v err=%v", m, f, err)
	}
	_, f, err = c.ReadFrameOrMessage(nil)
	if err != nil || f == nil {
		t.Fatalf("second item: f=%v err=%v", f, err)
	}
	if _, _, err := DecodeClusterFrame(f); err != nil {
		t.Fatal(err)
	}
	f.Release()
	m, f, err = c.ReadFrameOrMessage(nil)
	if err != nil || f != nil || m.Type != TypeWatchDone {
		t.Fatalf("third item: m=%+v f=%v err=%v", m, f, err)
	}
}

// TestJSONFirstOctetIsZero pins the demultiplexing invariant the wire format
// depends on: every JSON length prefix starts 0x00 (MaxFrameBytes fits in 24
// bits) and the binary magic does not.
func TestJSONFirstOctetIsZero(t *testing.T) {
	if MaxFrameBytes > 0xFFFFFF {
		t.Fatalf("MaxFrameBytes %d no longer fits 24 bits; first-octet demux breaks", MaxFrameBytes)
	}
	if FrameMagic0 == 0 {
		t.Fatal("binary magic collides with JSON length prefix")
	}
	c, _ := newFrameConn()
	m, _ := Encode(TypePing, nil)
	if err := c.WriteMessage(m); err != nil {
		t.Fatal(err)
	}
	var first [1]byte
	stream := c.rw.(*frameStream)
	if _, err := stream.Read(first[:]); err != nil {
		t.Fatal(err)
	}
	if first[0] != 0 {
		t.Fatalf("JSON frame first octet = 0x%02x, want 0x00", first[0])
	}
}

// TestReadMessageRejectsBinaryFrame: callers expecting a control frame get a
// clean typed error when a binary frame arrives instead.
func TestReadMessageRejectsBinaryFrame(t *testing.T) {
	c, _ := newFrameConn()
	payload, body := testClusterPayload(64)
	if err := c.WriteClusterFrame(payload, body); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadMessage(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("error = %v, want ErrBadFrame", err)
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	payload, body := testClusterPayload(256)
	valid := func() []byte {
		c, s := newFrameConn()
		if err := c.WriteClusterFrame(payload, body); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), s.Bytes()...)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"corrupt second magic", func(b []byte) []byte { b[1] = 0xFF; return b }, ErrBadMagic},
		{"version zero", func(b []byte) []byte { b[2] = 0; return b }, ErrBadVersion},
		{"version from the future", func(b []byte) []byte { b[2] = FrameVersion + 1; return b }, ErrBadVersion},
		{"oversized payload length", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[5:9], MaxFramePayload+1)
			return b
		}, ErrFrameTooLarge},
		{"zero payload length", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[5:9], 0)
			return b
		}, ErrBadFrame},
		{"truncated header", func(b []byte) []byte { return b[:5] }, ErrBadFrame},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-10] }, ErrBadFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConn(&frameStream{*bytes.NewBuffer(tc.mutate(valid()))})
			_, f, err := c.ReadFrameOrMessage(nil)
			if err == nil {
				_, _, err = DecodeClusterFrame(f)
				f.Release()
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want %v", err, tc.wantErr)
			}
		})
	}

	// Length field lying about the body size is caught at decode.
	t.Run("length field mismatch", func(t *testing.T) {
		raw := valid()
		// Flip the cluster-meta length field (payload offset 12 within the
		// frame payload, which starts at FrameHeaderLen).
		binary.BigEndian.PutUint64(raw[FrameHeaderLen+12:FrameHeaderLen+20], uint64(len(body)+1))
		c := NewConn(&frameStream{*bytes.NewBuffer(raw)})
		_, f, err := c.ReadFrameOrMessage(nil)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Release()
		if _, _, err := DecodeClusterFrame(f); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("error = %v, want ErrBadFrame", err)
		}
	})
}

// TestFramePayloadOwnership pins the codec's ownership rule: two frames read
// back-to-back from one pool never alias, and a released buffer is recycled
// for the next read.
func TestFramePayloadOwnership(t *testing.T) {
	pool := NewBufferPool(nil)
	c, _ := newFrameConn()
	p1, b1 := testClusterPayload(8192)
	p2, b2 := testClusterPayload(8192)
	for i := range b2 {
		b2[i] ^= 0xAA
	}
	if err := c.WriteClusterFrame(p1, b1); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteClusterFrame(p2, b2); err != nil {
		t.Fatal(err)
	}
	_, f1, err := c.ReadFrameOrMessage(pool)
	if err != nil {
		t.Fatal(err)
	}
	_, f2, err := c.ReadFrameOrMessage(pool)
	if err != nil {
		t.Fatal(err)
	}
	if &f1.Payload[0] == &f2.Payload[0] {
		t.Fatal("in-flight frames share a backing array")
	}
	_, body1, err := DecodeClusterFrame(f1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body1, b1) {
		t.Fatal("first frame corrupted by second read")
	}
	f1.Release()
	f2.Release()
	// Both leases were returned to the pool exactly once.
	if got := pool.returns.Value(); got != 2 {
		t.Fatalf("pool returns = %d, want 2", got)
	}
}

// TestFrameRetainRelease pins the multi-consumer lease: a retained frame
// keeps its buffer out of the pool until every holder has released.
func TestFrameRetainRelease(t *testing.T) {
	pool := NewBufferPool(nil)
	f := NewLeasedFrame(pool, pool.Get(4096))
	f.Retain()
	f.Retain()
	if got := f.Refs(); got != 3 {
		t.Fatalf("refs = %d, want 3", got)
	}
	f.Release()
	f.Release()
	if f.Payload == nil {
		t.Fatal("payload dropped while a reference remains")
	}
	if got := pool.returns.Value(); got != 0 {
		t.Fatalf("buffer returned early: pool returns = %d", got)
	}
	f.Release()
	if f.Payload != nil {
		t.Fatal("payload not cleared by final Release")
	}
	if got := pool.returns.Value(); got != 1 {
		t.Fatalf("pool returns = %d, want 1", got)
	}
}

// TestFrameDoubleReleasePanics: releasing past zero must panic rather than
// hand the same buffer to two readers.
func TestFrameDoubleReleasePanics(t *testing.T) {
	pool := NewBufferPool(nil)
	f := NewLeasedFrame(pool, pool.Get(4096))
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	f.Release()
}

// TestFrameRetainAfterReleasePanics: a fully released frame's buffer may
// already back another read, so reviving it must panic.
func TestFrameRetainAfterReleasePanics(t *testing.T) {
	f := NewLeasedFrame(nil, make([]byte, 16))
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after final Release did not panic")
		}
	}()
	f.Retain()
}

func TestBufferPool(t *testing.T) {
	pool := NewBufferPool(nil)
	b := pool.Get(5000)
	if len(b) != 5000 || cap(b) != 8192 {
		t.Fatalf("len=%d cap=%d, want 5000/8192", len(b), cap(b))
	}
	pool.Put(b)
	if got := pool.returns.Value(); got != 1 {
		t.Fatalf("returns = %d, want 1", got)
	}
	if got := pool.Get(0); len(got) != 0 || got == nil {
		t.Fatalf("Get(0) = %v", got)
	}
	// Oversized requests fall back to direct allocation and are not pooled:
	// the Get counts as a miss and the Put is dropped.
	huge := pool.Get(1<<26 + 1)
	if len(huge) != 1<<26+1 {
		t.Fatalf("oversized len = %d", len(huge))
	}
	pool.Put(huge)
	if got := pool.returns.Value(); got != 1 {
		t.Fatalf("returns after oversized Put = %d, want 1", got)
	}
	if pool.misses.Value() < 2 {
		t.Fatalf("misses = %d, want at least 2", pool.misses.Value())
	}
}

// TestNegotiate runs the full hello exchange over a pipe: the client learns
// it may send binary frames and both conns flip their framing flag.
func TestNegotiate(t *testing.T) {
	a, b := pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m, err := b.ReadMessage()
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if m.Type != TypeHello {
			t.Errorf("server got %q", m.Type)
			return
		}
		if err := b.AcceptHello(m); err != nil {
			t.Errorf("AcceptHello: %v", err)
		}
	}()
	ok, err := a.Negotiate()
	wg.Wait()
	if err != nil || !ok {
		t.Fatalf("Negotiate = %v, %v", ok, err)
	}
	if !a.BinaryFrames() || !b.BinaryFrames() {
		t.Fatal("negotiation did not enable binary framing on both ends")
	}
}

// TestNegotiateLegacyFallback: a server that answers "unknown message type"
// (the pre-handshake behaviour) leaves the client on JSON with no error.
func TestNegotiateLegacyFallback(t *testing.T) {
	a, b := pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		if _, err := b.ReadMessage(); err != nil {
			return
		}
		_ = b.WriteError(`unknown message type "hello"`)
	}()
	ok, err := a.Negotiate()
	if err != nil {
		t.Fatal(err)
	}
	if ok || a.BinaryFrames() {
		t.Fatal("legacy fallback enabled binary framing")
	}
}

// TestAcceptHelloVersionClamp: a client offering a future version is granted
// this build's version, and an offer without the cluster cap gets no caps.
func TestAcceptHelloVersionClamp(t *testing.T) {
	a, b := pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		m, err := b.ReadMessage()
		if err != nil {
			return
		}
		_ = b.AcceptHello(m)
	}()
	req, _ := Encode(TypeHello, HelloPayload{Version: 99, Caps: []string{"unknown-cap"}})
	if err := a.WriteMessage(req); err != nil {
		t.Fatal(err)
	}
	m, err := a.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Decode[HelloOKPayload](m)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Version != FrameVersion || len(ok.Caps) != 0 {
		t.Fatalf("grant = %+v", ok)
	}
	if b.BinaryFrames() {
		t.Fatal("server enabled binary framing without the capability")
	}
}

// FuzzDecodeFrame throws arbitrary bytes at the binary frame reader and the
// cluster decoder: no panics, and every malformed input yields an error.
func FuzzDecodeFrame(f *testing.F) {
	payload, body := testClusterPayload(512)
	c, s := newFrameConn()
	if err := c.WriteClusterFrame(payload, body); err != nil {
		f.Fatal(err)
	}
	valid := append([]byte(nil), s.Bytes()...)
	f.Add(valid)
	f.Add(valid[:5])                                       // truncated header
	f.Add(valid[:len(valid)-17])                           // truncated payload
	f.Add([]byte{FrameMagic0})                             // magic only
	f.Add([]byte{FrameMagic0, 0xFF, 1, 1, 0, 0, 0, 0, 1})  // corrupt magic1
	f.Add([]byte{FrameMagic0, FrameMagic1, 0, 1, 0, 0, 0, 0, 1, 'x'}) // version 0
	oversized := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(oversized[5:9], MaxFramePayload+1)
	f.Add(oversized) // oversized length
	lying := append([]byte(nil), valid...)
	binary.BigEndian.PutUint64(lying[FrameHeaderLen+12:], 1<<40)
	f.Add(lying) // meta length field disagrees with body

	pool := NewBufferPool(nil)
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(&frameStream{*bytes.NewBuffer(data)})
		m, fr, err := c.ReadFrameOrMessage(pool)
		if err != nil {
			return
		}
		if fr == nil {
			if m.Type == "" {
				t.Fatal("nil error with empty message type")
			}
			return
		}
		defer fr.Release()
		if _, _, err := DecodeClusterFrame(fr); err == nil {
			// A structurally valid cluster frame must carry a consistent
			// length field.
			p, b, _ := DecodeClusterFrame(fr)
			if p.Length != int64(len(b)) {
				t.Fatalf("decoded inconsistent cluster: %+v with %d body bytes", p, len(b))
			}
		}
	})
}

// BenchmarkFraming compares the per-cluster cost of the two framings over a
// synchronous in-memory pipe, modeling the whole delivery pipeline: a sender
// goroutine plays the server (storage read into a send buffer, frame encode,
// write) and the timed loop plays the client (frame read, decode, consumable
// body). The JSON variant allocates per cluster exactly where the legacy
// path did — disk.Read's alloc+copy, the payload and message marshals, the
// receive-side unmarshals and body allocation; the binary variant runs the
// pooled zero-copy pipeline on both ends. Live-TCP end-to-end numbers are
// the Ext-13 study (cmd/vodbench -study framing).
func BenchmarkFraming(b *testing.B) {
	for _, size := range []int{64 << 10, 256 << 10, 1 << 20} {
		stored := make([]byte, size) // the "disk block"
		for i := range stored {
			stored[i] = byte(i)
		}
		payload := ClusterPayload{Title: "feature", Index: 3, Offset: int64(3 * size), Length: int64(size), Source: "U4"}
		name := fmt.Sprintf("%dKiB", size>>10)

		b.Run("json-"+name, func(b *testing.B) {
			snd, rcv := pipe()
			defer snd.Close()
			defer rcv.Close()
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					// Legacy send pipeline: disk.Read allocates and copies,
					// then the header is JSON-marshaled (payload, then
					// message).
					body := make([]byte, size)
					copy(body, stored)
					m, err := Encode(TypeCluster, payload)
					if err != nil {
						return
					}
					if err := snd.WriteMessageWithBody(m, body); err != nil {
						return
					}
				}
			}()
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for b.Loop() {
				// Legacy receive pipeline: unmarshal twice, allocate the
				// body.
				_, got, err := rcv.ReadMessageWithBody(func(m Message) (int64, error) {
					p, err := Decode[ClusterPayload](m)
					if err != nil {
						return 0, err
					}
					return p.Length, nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != size {
					b.Fatal("short body")
				}
			}
			rcv.Close()
			snd.Close()
			<-done
		})

		b.Run("binary-"+name, func(b *testing.B) {
			snd, rcv := pipe()
			defer snd.Close()
			defer rcv.Close()
			sendPool := NewBufferPool(nil)
			recvPool := NewBufferPool(nil)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					// Pooled send pipeline: lease, read into, frame, release.
					buf := sendPool.Get(size)
					copy(buf, stored)
					err := snd.WriteClusterFrame(payload, buf)
					sendPool.Put(buf)
					if err != nil {
						return
					}
				}
			}()
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for b.Loop() {
				// Pooled receive pipeline: lease, decode in place, release.
				_, f, err := rcv.ReadFrameOrMessage(recvPool)
				if err != nil {
					b.Fatal(err)
				}
				_, got, err := DecodeClusterFrame(f)
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != size {
					b.Fatal("short body")
				}
				f.Release()
			}
			rcv.Close()
			snd.Close()
			<-done
		})

		// The kernel arm runs over real loopback TCP — an in-memory pipe has
		// no kernel path — with the timed loop on the SEND side, where
		// sendfile lives. The receiver drains raw bytes without parsing so
		// the alloc report (a CI gate: 0 allocs/op) charges only the send
		// pipeline. Cross-framing MB/s comparisons live in Ext-13, which
		// times all arms over the same live-TCP harness.
		b.Run("kernel-"+name, func(b *testing.B) {
			benchKernelArm(b, size, payload)
		})
	}
}
