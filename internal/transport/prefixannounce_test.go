package transport

import (
	"errors"
	"testing"
)

func TestPrefixAnnounceFrameRoundTrip(t *testing.T) {
	c, _ := newFrameConn()
	for _, want := range []PrefixAnnouncePayload{
		{},
		{PrefixClusters: 1, StartupRTTs: 0},
		{PrefixClusters: 512, StartupRTTs: 1, RelayTail: true},
		{PrefixClusters: 1<<31 - 1, StartupRTTs: 0xFFFF},
	} {
		if err := c.WritePrefixAnnounceFrame(want); err != nil {
			t.Fatal(err)
		}
		m, f, err := c.ReadFrameOrMessage(nil)
		if err != nil {
			t.Fatal(err)
		}
		if f == nil {
			t.Fatalf("got JSON message %+v, want binary frame", m)
		}
		got, err := DecodePrefixAnnounceFrame(f)
		f.Release()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round trip = %+v, want %+v", got, want)
		}
	}
}

func TestPrefixAnnounceFrameWriteValidation(t *testing.T) {
	c, _ := newFrameConn()
	for _, bad := range []PrefixAnnouncePayload{
		{PrefixClusters: -1},
		{StartupRTTs: -1},
		{StartupRTTs: 0x10000},
	} {
		if err := c.WritePrefixAnnounceFrame(bad); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("WritePrefixAnnounceFrame(%+v) = %v, want ErrBadFrame", bad, err)
		}
	}
}

func TestDecodePrefixAnnounceFrameErrors(t *testing.T) {
	mk := func(typ byte, payload []byte) *Frame {
		return &Frame{Version: FrameVersion, Type: typ, Payload: payload}
	}
	cases := map[string]*Frame{
		"wrong type":    mk(FrameCluster, make([]byte, prefixAnnounceLen)),
		"short":         mk(FramePrefixAnnounce, make([]byte, prefixAnnounceLen-1)),
		"long":          mk(FramePrefixAnnounce, make([]byte, prefixAnnounceLen+1)),
		"unknown flags": mk(FramePrefixAnnounce, []byte{0, 0, 0, 1, 0, 0, 0x80}),
	}
	for name, f := range cases {
		if _, err := DecodePrefixAnnounceFrame(f); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

// FuzzPrefixAnnounceFrame feeds arbitrary payload bytes through the decoder:
// it must reject or accept cleanly (no panic), and every accepted payload
// must re-encode over a wire round trip to the identical value — the same
// contract the framing, ledger-sync, and member-sync fuzz targets enforce.
func FuzzPrefixAnnounceFrame(f *testing.F) {
	f.Add(make([]byte, prefixAnnounceLen))
	f.Add([]byte{0, 0, 2, 0, 0, 1, 1})
	f.Add([]byte{})
	f.Add(make([]byte, prefixAnnounceLen+3))
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr := &Frame{Version: FrameVersion, Type: FramePrefixAnnounce, Payload: payload}
		p, err := DecodePrefixAnnounceFrame(fr)
		if err != nil {
			return
		}
		c, _ := newFrameConn()
		if werr := c.WritePrefixAnnounceFrame(p); werr != nil {
			t.Fatalf("decoded payload %+v does not re-encode: %v", p, werr)
		}
		_, rt, rerr := c.ReadFrameOrMessage(nil)
		if rerr != nil || rt == nil {
			t.Fatalf("round trip read failed: %v", rerr)
		}
		got, derr := DecodePrefixAnnounceFrame(rt)
		rt.Release()
		if derr != nil {
			t.Fatal(derr)
		}
		if got != p {
			t.Fatalf("round trip = %+v, want %+v", got, p)
		}
	})
}
