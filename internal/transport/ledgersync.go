package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"dvod/internal/topology"
)

// Ledger sync: the anti-entropy exchange of the gossip-replicated reservation
// ledger (internal/ledger, DESIGN.md § "Reservation ledger"). One exchange is
// a request/reply pair of identical shape: each side states the newest
// heartbeat clock it knows per origin (Clocks), the highest reservation row
// sequence it holds per origin (Have), and the rows it believes the other
// side is missing. Like cluster data, the exchange rides the negotiated
// binary framing when the hello handshake granted CapLedgerSync, and falls
// back to JSON control frames against peers that never negotiated.
const (
	// TypeLedgerSync is the JSON request type; TypeLedgerSyncOK the reply.
	TypeLedgerSync   = "ledger.sync"
	TypeLedgerSyncOK = "ledger.sync.ok"
	// FrameLedgerSync is the binary frame type code. The reply is the same
	// frame type with LedgerSyncFlagReply set.
	FrameLedgerSync byte = 0x03
	// LedgerSyncFlagReply marks a binary ledger-sync frame as the reply leg
	// of an exchange.
	LedgerSyncFlagReply byte = 0x01
	// CapLedgerSync advertises binary FrameLedgerSync support in the hello
	// capability exchange.
	CapLedgerSync = "ledger-sync-v1"
)

// LedgerRow is one replicated reservation cell: origin's committed bandwidth
// of one class on one link, versioned by the origin's monotonic sequence.
// A zero rate with zero sessions is a live tombstone — it replicates "origin
// released everything here" so last-writer-wins cannot resurrect stale state.
type LedgerRow struct {
	Link     topology.LinkID `json:"link"`
	Class    string          `json:"class"`
	Origin   topology.NodeID `json:"origin"`
	Seq      uint64          `json:"seq"`
	RateMbps float64         `json:"rateMbps"`
	Sessions int             `json:"sessions"`
}

// LedgerSyncPayload is one leg of an anti-entropy exchange.
type LedgerSyncPayload struct {
	// From is the sending ledger's origin node.
	From topology.NodeID `json:"from"`
	// Clocks is the newest heartbeat clock the sender knows per origin; a
	// receiver renews an origin's lease only when its clock advanced, so
	// relayed stale state cannot keep a dead server's reservations alive.
	Clocks map[topology.NodeID]uint64 `json:"clocks,omitempty"`
	// Have is the highest row sequence the sender holds per origin — the
	// version vector the receiver computes its delta against.
	Have map[topology.NodeID]uint64 `json:"have,omitempty"`
	// Rows is the sender's delta: rows it believes the receiver is missing
	// (the full state when the receiver's vector is unknown or reset).
	Rows []LedgerRow `json:"rows,omitempty"`
}

// ledgerSyncFixed is the fixed-width prefix of a FrameLedgerSync payload:
// fromLen(2) clockCount(4) haveCount(4) rowCount(4); the from name and the
// variable sections follow.
const ledgerSyncFixed = 14

// Per-entry layouts of the variable sections:
// clock/have entry: nameLen(2) name seq(8);
// row entry: linkLen(2) link classLen(1) class originLen(2) origin
// seq(8) rateBits(8) sessions(4).

// appendLedgerVector appends one sorted name→seq section.
func appendLedgerVector(dst []byte, m map[topology.NodeID]uint64) ([]byte, error) {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, string(n))
	}
	sort.Strings(names)
	for _, n := range names {
		if len(n) > 0xFFFF {
			return nil, fmt.Errorf("%w: ledger origin name too long", ErrBadFrame)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(n)))
		dst = append(dst, n...)
		dst = binary.BigEndian.AppendUint64(dst, m[topology.NodeID(n)])
	}
	return dst, nil
}

// appendLedgerSyncPayload appends the binary encoding of p to dst. Map
// sections are emitted in sorted order, so equal payloads encode to equal
// bytes.
func appendLedgerSyncPayload(dst []byte, p LedgerSyncPayload) ([]byte, error) {
	if len(p.From) > 0xFFFF {
		return nil, fmt.Errorf("%w: ledger from name too long", ErrBadFrame)
	}
	if len(p.Clocks) > 0xFFFFFF || len(p.Have) > 0xFFFFFF || len(p.Rows) > 0xFFFFFF {
		return nil, fmt.Errorf("%w: ledger sync section too large", ErrBadFrame)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.From)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.Clocks)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.Have)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.Rows)))
	dst = append(dst, p.From...)
	var err error
	if dst, err = appendLedgerVector(dst, p.Clocks); err != nil {
		return nil, err
	}
	if dst, err = appendLedgerVector(dst, p.Have); err != nil {
		return nil, err
	}
	for _, r := range p.Rows {
		if len(r.Link) > 0xFFFF || len(r.Origin) > 0xFFFF {
			return nil, fmt.Errorf("%w: ledger row name too long", ErrBadFrame)
		}
		if len(r.Class) > 0xFF {
			return nil, fmt.Errorf("%w: ledger class name too long", ErrBadFrame)
		}
		if r.Sessions < 0 || int64(r.Sessions) > math.MaxUint32 {
			return nil, fmt.Errorf("%w: ledger row sessions %d", ErrBadFrame, r.Sessions)
		}
		if math.IsNaN(r.RateMbps) || math.IsInf(r.RateMbps, 0) || r.RateMbps < 0 {
			return nil, fmt.Errorf("%w: ledger row rate %g", ErrBadFrame, r.RateMbps)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Link)))
		dst = append(dst, r.Link...)
		dst = append(dst, byte(len(r.Class)))
		dst = append(dst, r.Class...)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Origin)))
		dst = append(dst, r.Origin...)
		dst = binary.BigEndian.AppendUint64(dst, r.Seq)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.RateMbps))
		dst = binary.BigEndian.AppendUint32(dst, uint32(r.Sessions))
	}
	return dst, nil
}

// WriteLedgerSyncFrame sends one sync leg as a binary frame (reply sets
// LedgerSyncFlagReply). The frame is assembled in the connection's scratch
// buffer like cluster frames.
func (c *Conn) WriteLedgerSyncFrame(p LedgerSyncPayload, reply bool) error {
	var flags byte
	if reply {
		flags = LedgerSyncFlagReply
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	scratch := append(c.wscratch[:0],
		FrameMagic0, FrameMagic1, FrameVersion, FrameLedgerSync, flags,
		0, 0, 0, 0) // payload-len placeholder
	scratch, err := appendLedgerSyncPayload(scratch, p)
	if err != nil {
		return err
	}
	payloadLen := len(scratch) - FrameHeaderLen
	if payloadLen > MaxFramePayload {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, payloadLen)
	}
	binary.BigEndian.PutUint32(scratch[5:9], uint32(payloadLen))
	c.wscratch = scratch[:0]
	if err := c.writeVectoredLocked(scratch); err != nil {
		return fmt.Errorf("write ledger sync frame: %w", err)
	}
	return nil
}

// ledgerCursor walks a binary ledger-sync payload with bounds checking.
type ledgerCursor struct {
	b   []byte
	off int
}

func (c *ledgerCursor) take(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) || c.off+n < c.off {
		return nil, fmt.Errorf("%w: ledger sync truncated at %d", ErrBadFrame, c.off)
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out, nil
}

func (c *ledgerCursor) u16() (int, error) {
	b, err := c.take(2)
	if err != nil {
		return 0, err
	}
	return int(binary.BigEndian.Uint16(b)), nil
}

func (c *ledgerCursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (c *ledgerCursor) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (c *ledgerCursor) name(n int) (string, error) {
	b, err := c.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// decodeLedgerVector parses one name→seq section of count entries.
func (c *ledgerCursor) decodeLedgerVector(count uint32) (map[topology.NodeID]uint64, error) {
	if count == 0 {
		return nil, nil
	}
	// Each entry is at least 10 bytes; reject counts the remaining payload
	// cannot possibly hold before allocating.
	if uint64(count)*10 > uint64(len(c.b)-c.off) {
		return nil, fmt.Errorf("%w: ledger vector count %d overruns payload", ErrBadFrame, count)
	}
	m := make(map[topology.NodeID]uint64, count)
	for range count {
		n, err := c.u16()
		if err != nil {
			return nil, err
		}
		name, err := c.name(n)
		if err != nil {
			return nil, err
		}
		seq, err := c.u64()
		if err != nil {
			return nil, err
		}
		if _, dup := m[topology.NodeID(name)]; dup {
			return nil, fmt.Errorf("%w: duplicate ledger vector origin %q", ErrBadFrame, name)
		}
		m[topology.NodeID(name)] = seq
	}
	return m, nil
}

// DecodeLedgerSyncFrame parses a FrameLedgerSync payload. The result holds no
// reference to f.Payload, so the caller may Release the frame immediately;
// whether the frame is the reply leg is f.Flags & LedgerSyncFlagReply.
func DecodeLedgerSyncFrame(f *Frame) (LedgerSyncPayload, error) {
	if f.Type != FrameLedgerSync {
		return LedgerSyncPayload{}, fmt.Errorf("%w: frame type 0x%02x is not ledger-sync", ErrBadFrame, f.Type)
	}
	cur := &ledgerCursor{b: f.Payload}
	fromLen, err := cur.u16()
	if err != nil {
		return LedgerSyncPayload{}, err
	}
	clockCount, err := cur.u32()
	if err != nil {
		return LedgerSyncPayload{}, err
	}
	haveCount, err := cur.u32()
	if err != nil {
		return LedgerSyncPayload{}, err
	}
	rowCount, err := cur.u32()
	if err != nil {
		return LedgerSyncPayload{}, err
	}
	var p LedgerSyncPayload
	from, err := cur.name(fromLen)
	if err != nil {
		return LedgerSyncPayload{}, err
	}
	p.From = topology.NodeID(from)
	if p.Clocks, err = cur.decodeLedgerVector(clockCount); err != nil {
		return LedgerSyncPayload{}, err
	}
	if p.Have, err = cur.decodeLedgerVector(haveCount); err != nil {
		return LedgerSyncPayload{}, err
	}
	if rowCount > 0 {
		// Each row is at least 25 bytes.
		if uint64(rowCount)*25 > uint64(len(cur.b)-cur.off) {
			return LedgerSyncPayload{}, fmt.Errorf("%w: ledger row count %d overruns payload", ErrBadFrame, rowCount)
		}
		p.Rows = make([]LedgerRow, 0, rowCount)
	}
	for range rowCount {
		var r LedgerRow
		linkLen, err := cur.u16()
		if err != nil {
			return LedgerSyncPayload{}, err
		}
		link, err := cur.name(linkLen)
		if err != nil {
			return LedgerSyncPayload{}, err
		}
		r.Link = topology.LinkID(link)
		classLenB, err := cur.take(1)
		if err != nil {
			return LedgerSyncPayload{}, err
		}
		if r.Class, err = cur.name(int(classLenB[0])); err != nil {
			return LedgerSyncPayload{}, err
		}
		originLen, err := cur.u16()
		if err != nil {
			return LedgerSyncPayload{}, err
		}
		origin, err := cur.name(originLen)
		if err != nil {
			return LedgerSyncPayload{}, err
		}
		r.Origin = topology.NodeID(origin)
		if r.Seq, err = cur.u64(); err != nil {
			return LedgerSyncPayload{}, err
		}
		rateBits, err := cur.u64()
		if err != nil {
			return LedgerSyncPayload{}, err
		}
		r.RateMbps = math.Float64frombits(rateBits)
		if math.IsNaN(r.RateMbps) || math.IsInf(r.RateMbps, 0) || r.RateMbps < 0 {
			return LedgerSyncPayload{}, fmt.Errorf("%w: ledger row rate %g", ErrBadFrame, r.RateMbps)
		}
		sessions, err := cur.u32()
		if err != nil {
			return LedgerSyncPayload{}, err
		}
		if uint64(sessions) > math.MaxInt32 {
			return LedgerSyncPayload{}, fmt.Errorf("%w: ledger row sessions %d", ErrBadFrame, sessions)
		}
		r.Sessions = int(sessions)
		p.Rows = append(p.Rows, r)
	}
	if cur.off != len(cur.b) {
		return LedgerSyncPayload{}, fmt.Errorf("%w: %d trailing bytes after ledger sync", ErrBadFrame, len(cur.b)-cur.off)
	}
	return p, nil
}
