package transport

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"dvod/internal/topology"
)

// encodeLedgerSyncFrame renders one sync payload as full frame bytes.
func encodeLedgerSyncFrame(t testing.TB, p LedgerSyncPayload, reply bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	c := NewConn(nopCloser{&buf})
	if err := c.WriteLedgerSyncFrame(p, reply); err != nil {
		t.Fatalf("write ledger sync frame: %v", err)
	}
	return buf.Bytes()
}

func sampleLedgerSync() LedgerSyncPayload {
	return LedgerSyncPayload{
		From: "patras",
		Clocks: map[topology.NodeID]uint64{
			"patras": 41,
			"athens": 7,
		},
		Have: map[topology.NodeID]uint64{
			"patras": 41,
			"athens": 5,
		},
		Rows: []LedgerRow{
			{Link: "athens|patras", Class: "premium", Origin: "patras", Seq: 40, RateMbps: 1.5, Sessions: 1},
			{Link: "athens|patras", Class: "standard", Origin: "patras", Seq: 41, RateMbps: 0, Sessions: 0},
		},
	}
}

// TestLedgerSyncFrameRoundTrip pins the binary codec: payload → frame →
// payload is the identity, and the reply flag survives.
func TestLedgerSyncFrameRoundTrip(t *testing.T) {
	want := sampleLedgerSync()
	data := encodeLedgerSyncFrame(t, want, true)
	c := NewConn(readCloser{bytes.NewReader(data)})
	m, f, err := c.ReadFrameOrMessage(nil)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if f == nil {
		t.Fatalf("got JSON message %+v, want binary frame", m)
	}
	defer f.Release()
	if f.Type != FrameLedgerSync {
		t.Fatalf("frame type 0x%02x", f.Type)
	}
	if f.Flags&LedgerSyncFlagReply == 0 {
		t.Fatal("reply flag lost")
	}
	got, err := DecodeLedgerSyncFrame(f)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestLedgerSyncFrameRejects pins the codec's validation failures.
func TestLedgerSyncFrameRejects(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(nopCloser{&buf})
	if err := c.WriteLedgerSyncFrame(LedgerSyncPayload{
		Rows: []LedgerRow{{Link: "l", Class: "premium", Origin: "o", RateMbps: math.NaN()}},
	}, false); err == nil {
		t.Fatal("NaN rate encoded")
	}
	if err := c.WriteLedgerSyncFrame(LedgerSyncPayload{
		Rows: []LedgerRow{{Link: "l", Class: "premium", Origin: "o", Sessions: -1}},
	}, false); err == nil {
		t.Fatal("negative sessions encoded")
	}
	// Truncated payload must fail cleanly.
	data := encodeLedgerSyncFrame(t, sampleLedgerSync(), false)
	f := &Frame{Type: FrameLedgerSync, Payload: data[FrameHeaderLen : len(data)-3]}
	if _, err := DecodeLedgerSyncFrame(f); err == nil {
		t.Fatal("truncated ledger sync decoded")
	}
	// Trailing garbage must fail too.
	f = &Frame{Type: FrameLedgerSync, Payload: append(append([]byte(nil), data[FrameHeaderLen:]...), 0xAA)}
	if _, err := DecodeLedgerSyncFrame(f); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// FuzzLedgerSyncFrame throws arbitrary bytes at the ledger-sync decoder: it
// must never panic, and anything it accepts must re-encode and decode back to
// the same payload (the codec is canonical up to map order).
func FuzzLedgerSyncFrame(f *testing.F) {
	valid := encodeLedgerSyncFrame(f, sampleLedgerSync(), false)
	f.Add(valid[FrameHeaderLen:])
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 1, 'x', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		frame := &Frame{Type: FrameLedgerSync, Payload: data}
		p, err := DecodeLedgerSyncFrame(frame)
		if err != nil {
			return
		}
		reenc, err := appendLedgerSyncPayload(nil, p)
		if err != nil {
			t.Fatalf("decoded payload fails to re-encode: %v (%+v)", err, p)
		}
		p2, err := DecodeLedgerSyncFrame(&Frame{Type: FrameLedgerSync, Payload: reenc})
		if err != nil {
			t.Fatalf("re-encoded payload fails to decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("unstable round trip:\n first %+v\nsecond %+v", p, p2)
		}
	})
}
