//go:build linux

package transport

import (
	"io"
	"os"
	"syscall"
)

// Linux kernel send path: cluster bodies whose frames are file-backed
// (Frame.FileBody) are handed to sendfile(2) — or, when sendfile is not
// applicable to the stream, splice(2) through a per-connection pipe — so the
// bytes travel page cache → socket without ever entering Go userspace. Both
// loops run inside syscall.RawConn.Write, which parks on the runtime poller
// on EAGAIN and resumes when the socket drains, so a slow receiver costs a
// blocked goroutine, not a spin. Sources are always addressed with explicit
// offsets (the pread convention), never the descriptor's file position: the
// descriptor is shared with every concurrent reader of the same block.

// kernelState is the per-connection Linux kernel-send state, all guarded by
// the connection's write lock. The RawConn and the two step callbacks are
// bound once, and the in-flight transfer state lives here rather than in
// per-call closures: a transfer may suspend on EAGAIN and resume inside the
// poller, and the steady-state send must not allocate.
type kernelState struct {
	// Splice staging pipe, lazily created.
	pr, pw  int
	hasPipe bool

	// RawConn of the underlying socket plus the pre-bound poller callbacks.
	rc     syscall.RawConn
	rcOK   bool
	sfStep func(fd uintptr) bool
	spStep func(fd uintptr) bool

	// One transfer's state, reset by sendBodyLocked per body.
	src         int   // source file descriptor
	off, size   int64 // body range within the source file
	sent        int64 // bytes delivered to the socket
	filled      int64 // bytes staged into the splice pipe
	inPipe      int64 // staged bytes not yet drained to the socket
	opErr       error
	unsupported bool
}

// close releases the splice pipe, if one was created.
func (k *kernelState) close() {
	if k.hasPipe {
		_ = syscall.Close(k.pr)
		_ = syscall.Close(k.pw)
		k.hasPipe = false
	}
}

// maxKernelChunk bounds one sendfile/splice request so a huge cluster cannot
// pin the write lock through a single monster syscall.
const maxKernelChunk = 4 << 20

// Splice flag bits (linux/include/uapi/linux/fcntl.h; package syscall wraps
// the call but not the flags): move pages when possible, never block on the
// pipe.
const (
	spliceFMove     = 0x1
	spliceFNonblock = 0x2
	spliceFlags     = spliceFMove | spliceFNonblock
)

// sendBodyLocked transfers size bytes at offset off of f into the
// connection's stream inside the kernel. It reports kernel = false (with a
// nil error) when the stream has no usable kernel path — not a real socket,
// or the kernel refused both sendfile and splice before moving any bytes —
// in which case the caller falls back to the userspace copy. A non-nil
// error means bytes may have moved and the stream is no longer framable.
// Callers hold wmu.
func (c *Conn) sendBodyLocked(f *os.File, off, size int64) (bool, error) {
	if size == 0 {
		return true, nil
	}
	ks := &c.ks
	if !ks.rcOK {
		sc, ok := c.rw.(syscall.Conn)
		if !ok {
			return false, nil
		}
		rc, err := sc.SyscallConn()
		if err != nil {
			return false, nil
		}
		ks.rc, ks.rcOK = rc, true
		ks.sfStep = c.sendfileStep
		ks.spStep = c.spliceStep
	}
	ks.src = int(f.Fd())
	ks.off, ks.size = off, size
	ks.sent, ks.opErr, ks.unsupported = 0, nil, false
	if err := ks.rc.Write(ks.sfStep); err != nil && ks.opErr == nil {
		ks.opErr = err
	}
	if ks.opErr != nil {
		return true, ks.opErr
	}
	if !ks.unsupported {
		return true, nil
	}
	return c.spliceBodyLocked(f, off, size)
}

// sendfileStep is the poller callback running the sendfile(2) loop over the
// transfer state in c.ks. Returning false parks until the socket is
// writable; ks.unsupported reports a refusal before any byte moved
// (EINVAL/ENOSYS class), so another path may still take the body.
func (c *Conn) sendfileStep(fd uintptr) bool {
	ks := &c.ks
	for ks.sent < ks.size {
		pos := ks.off + ks.sent
		n, err := syscall.Sendfile(int(fd), ks.src, &pos, int(min(ks.size-ks.sent, maxKernelChunk)))
		if n > 0 {
			ks.sent += int64(n)
		}
		switch err {
		case nil:
			if n == 0 {
				// The file ended before the promised body length: the frame
				// header already announced size bytes, so the stream is
				// broken, not recoverable.
				ks.opErr = io.ErrUnexpectedEOF
				return true
			}
		case syscall.EINTR:
			// retry
		case syscall.EAGAIN:
			return false // socket full: park until writable, then resume
		case syscall.EINVAL, syscall.ENOSYS, syscall.EOPNOTSUPP:
			if ks.sent == 0 {
				ks.unsupported = true
				return true
			}
			ks.opErr = err
			return true
		default:
			ks.opErr = err
			return true
		}
	}
	return true
}

// spliceBodyLocked transfers the body with splice(2): file → staging pipe →
// socket. Split out of sendBodyLocked so tests can drive the splice leg
// directly. Same contract as sendBodyLocked; callers hold wmu.
func (c *Conn) spliceBodyLocked(f *os.File, off, size int64) (bool, error) {
	ks := &c.ks
	if !ks.rcOK {
		return false, nil
	}
	if !ks.hasPipe {
		var p [2]int
		if err := syscall.Pipe2(p[:], syscall.O_CLOEXEC|syscall.O_NONBLOCK); err != nil {
			return false, nil
		}
		ks.pr, ks.pw, ks.hasPipe = p[0], p[1], true
	}
	ks.src = int(f.Fd())
	ks.off, ks.size = off, size
	ks.sent, ks.filled, ks.inPipe = 0, 0, 0
	ks.opErr, ks.unsupported = nil, false
	if err := ks.rc.Write(ks.spStep); err != nil && ks.opErr == nil {
		ks.opErr = err
	}
	if ks.opErr != nil {
		return true, ks.opErr
	}
	return !ks.unsupported, nil
}

// spliceStep is the poller callback running the splice(2) loop over the
// transfer state in c.ks. A fill only happens when the pipe is empty and a
// drain empties it completely before the next fill, so the pipe's capacity
// bounds each leg.
func (c *Conn) spliceStep(fd uintptr) bool {
	ks := &c.ks
	for ks.sent < ks.size {
		if ks.inPipe == 0 {
			pos := ks.off + ks.filled
			n, err := syscall.Splice(ks.src, &pos, ks.pw, nil, int(min(ks.size-ks.filled, maxKernelChunk)), spliceFlags)
			switch {
			case err == syscall.EINTR:
				continue
			case err == syscall.EINVAL || err == syscall.ENOSYS || err == syscall.EOPNOTSUPP:
				if ks.filled == 0 && ks.sent == 0 {
					ks.unsupported = true
					return true
				}
				ks.opErr = err
				return true
			case err != nil:
				ks.opErr = err
				return true
			case n == 0:
				ks.opErr = io.ErrUnexpectedEOF
				return true
			}
			ks.filled += n
			ks.inPipe = n
		}
		for ks.inPipe > 0 {
			n, err := syscall.Splice(ks.pr, nil, int(fd), nil, int(ks.inPipe), spliceFlags)
			if n > 0 {
				ks.inPipe -= n
				ks.sent += n
			}
			switch err {
			case nil:
			case syscall.EINTR:
			case syscall.EAGAIN:
				return false // socket full: park, resume draining
			default:
				ks.opErr = err
				return true
			}
		}
	}
	return true
}
