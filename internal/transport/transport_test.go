package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"

	"dvod/internal/topology"
)

// pipe returns two framed conns joined by an in-memory duplex pipe.
func pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestMessageRoundTrip(t *testing.T) {
	a, b := pipe()
	defer a.Close()
	defer b.Close()
	msg, err := Encode(TypeWatch, WatchPayload{Title: "movie"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := a.WriteMessage(msg); err != nil {
			t.Errorf("WriteMessage: %v", err)
		}
	}()
	got, err := b.ReadMessage()
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	wg.Wait()
	if got.Type != TypeWatch {
		t.Fatalf("type = %s", got.Type)
	}
	p, err := Decode[WatchPayload](got)
	if err != nil {
		t.Fatal(err)
	}
	if p.Title != "movie" {
		t.Fatalf("payload = %+v", p)
	}
}

func TestMessageNoPayload(t *testing.T) {
	a, b := pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		m, _ := Encode(TypePing, nil)
		_ = a.WriteMessage(m)
	}()
	got, err := b.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypePing || len(got.Payload) != 0 {
		t.Fatalf("got %+v", got)
	}
	if _, err := Decode[WatchPayload](got); err == nil {
		t.Fatal("Decode accepted empty payload")
	}
}

func TestMessageWithBody(t *testing.T) {
	a, b := pipe()
	defer a.Close()
	defer b.Close()
	body := []byte("0123456789")
	msg, err := Encode(TypeClusterOK, ClusterPayload{
		Title: "m", Index: 2, Offset: 20, Length: int64(len(body)), Source: "U4",
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = a.WriteMessageWithBody(msg, body)
	}()
	got, gotBody, err := b.ReadMessageWithBody(func(m Message) (int64, error) {
		p, err := Decode[ClusterPayload](m)
		if err != nil {
			return 0, err
		}
		return p.Length, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeClusterOK || string(gotBody) != "0123456789" {
		t.Fatalf("got %s body %q", got.Type, gotBody)
	}
}

func TestReadMessageEOF(t *testing.T) {
	a, b := pipe()
	_ = a.Close()
	if _, err := b.ReadMessage(); !errors.Is(err, io.EOF) {
		t.Fatalf("error = %v, want EOF", err)
	}
}

func TestBadFrames(t *testing.T) {
	// Zero-length frame.
	a, b := net.Pipe()
	conn := NewConn(b)
	go func() {
		_, _ = a.Write([]byte{0, 0, 0, 0})
		_ = a.Close()
	}()
	if _, err := conn.ReadMessage(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero frame error = %v", err)
	}

	// Oversized frame.
	a2, b2 := net.Pipe()
	conn2 := NewConn(b2)
	go func() {
		_, _ = a2.Write([]byte{0xff, 0xff, 0xff, 0xff})
		_ = a2.Close()
	}()
	if _, err := conn2.ReadMessage(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame error = %v", err)
	}

	// Invalid JSON.
	a3, b3 := net.Pipe()
	conn3 := NewConn(b3)
	go func() {
		_, _ = a3.Write([]byte{0, 0, 0, 3})
		_, _ = a3.Write([]byte("{{{"))
		_ = a3.Close()
	}()
	if _, err := conn3.ReadMessage(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad json error = %v", err)
	}

	// Missing type.
	a4, b4 := net.Pipe()
	conn4 := NewConn(b4)
	go func() {
		payload := []byte(`{}`)
		_, _ = a4.Write([]byte{0, 0, 0, byte(len(payload))})
		_, _ = a4.Write(payload)
		_ = a4.Close()
	}()
	if _, err := conn4.ReadMessage(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("missing type error = %v", err)
	}
}

func TestReadMessageWithBodyBadLength(t *testing.T) {
	a, b := pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		m, _ := Encode(TypeClusterOK, ClusterPayload{Length: 10})
		_ = a.WriteMessage(m)
	}()
	if _, _, err := b.ReadMessageWithBody(func(Message) (int64, error) {
		return -1, nil
	}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("negative body error = %v", err)
	}
}

func TestWriteErrorAndAsError(t *testing.T) {
	a, b := pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		_ = a.WriteError("title not found")
	}()
	got, err := b.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	rerr := AsError(got)
	if rerr == nil || rerr.Error() != "remote error: title not found" {
		t.Fatalf("AsError = %v", rerr)
	}
	if AsError(Message{Type: TypePong}) != nil {
		t.Fatal("AsError non-error message should be nil")
	}
}

func TestDialRealTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		c := NewConn(nc)
		defer c.Close()
		m, err := c.ReadMessage()
		if err != nil || m.Type != TypePing {
			t.Errorf("server read %v %v", m, err)
			return
		}
		pong, _ := Encode(TypePong, nil)
		_ = c.WriteMessage(pong)
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ping, _ := Encode(TypePing, nil)
	if err := c.WriteMessage(ping); err != nil {
		t.Fatal(err)
	}
	m, err := c.ReadMessage()
	if err != nil || m.Type != TypePong {
		t.Fatalf("got %v %v", m, err)
	}
	<-done
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

func TestEncodeUnmarshalableFails(t *testing.T) {
	if _, err := Encode("x", func() {}); err == nil {
		t.Fatal("Encode accepted a function payload")
	}
}

func TestAddrBook(t *testing.T) {
	b := NewAddrBook()
	if _, err := b.Lookup("U1"); err == nil {
		t.Fatal("empty lookup succeeded")
	}
	b.Set("U2", "127.0.0.1:9000")
	b.Set("U1", "127.0.0.1:9001")
	addr, err := b.Lookup("U2")
	if err != nil || addr != "127.0.0.1:9000" {
		t.Fatalf("Lookup = %s, %v", addr, err)
	}
	nodes := b.Nodes()
	if len(nodes) != 2 || nodes[0] != "U1" {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	links := []topology.LinkID{"A--B", "B--C"}
	c.ChargePath(links, 100)
	c.ChargePath(links[:1], 50)
	c.ChargePath(links, -10) // ignored
	got, err := c.LinkOctets("A--B")
	if err != nil || got != 150 {
		t.Fatalf("A--B = %d, %v", got, err)
	}
	got, err = c.LinkOctets("B--C")
	if err != nil || got != 100 {
		t.Fatalf("B--C = %d, %v", got, err)
	}
	got, err = c.LinkOctets("unseen--link")
	if err != nil || got != 0 {
		t.Fatalf("unseen = %d, %v", got, err)
	}
}
