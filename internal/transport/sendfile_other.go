//go:build !linux

package transport

import "os"

// kernelState is empty off Linux: there is no kernel send path to hold
// state for.
type kernelState struct{}

// close has nothing to release off Linux.
func (kernelState) close() {}

// sendBodyLocked always reports no kernel path off Linux, so
// WriteClusterBody streams file-backed bodies through the pooled-buffer
// copy — byte-identical wire output, one copy more.
func (c *Conn) sendBodyLocked(f *os.File, off, size int64) (bool, error) {
	return false, nil
}
