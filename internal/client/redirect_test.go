package client_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"dvod/internal/cache"
	"dvod/internal/client"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/disk"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/server"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// routeFunc adapts a closure to the server's Director hook.
type routeFunc func(title string, hops int) (topology.NodeID, string, bool)

func (f routeFunc) Route(title string, hops int) (topology.NodeID, string, bool) {
	return f(title, hops)
}

// redirectCluster brings up Patra and Xanthi over real sockets, Xanthi
// holding "feature". Each server's Director is settable after start, so the
// tests script the redirect topology per scenario.
func redirectCluster(t *testing.T) (*transport.AddrBook, map[topology.NodeID]*routeHolder) {
	t.Helper()
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	book := transport.NewAddrBook()
	directors := map[topology.NodeID]*routeHolder{
		grnet.Patra:  {},
		grnet.Xanthi: {},
	}
	for _, node := range []topology.NodeID{grnet.Patra, grnet.Xanthi} {
		arr, err := disk.NewUniformArray(string(node), 2, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		planner, err := core.NewPlanner(d, core.VRA{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Node: node, DB: d, Planner: planner, Array: arr, Cache: dma,
			ClusterBytes: 1024, Book: book, Director: directors[node],
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		if node == grnet.Xanthi {
			title := media.Title{Name: "feature", SizeBytes: 5*1024 + 37, BitrateMbps: 1.5}
			if err := d.Catalog().AddTitle(title); err != nil {
				t.Fatal(err)
			}
			if err := srv.Preload(title); err != nil {
				t.Fatal(err)
			}
		}
	}
	return book, directors
}

// routeHolder is a Director whose decision function can be swapped mid-test.
type routeHolder struct{ fn routeFunc }

func (h *routeHolder) Route(title string, hops int) (topology.NodeID, string, bool) {
	if h.fn == nil {
		return "", "", false
	}
	return h.fn(title, hops)
}

func redirectTo(book *transport.AddrBook, target topology.NodeID) routeFunc {
	return func(string, int) (topology.NodeID, string, bool) {
		addr, err := book.Lookup(target)
		if err != nil {
			return "", "", false
		}
		return target, addr, true
	}
}

// TestClientFollowsRedirectTransparently pins the happy path: the home
// bounces the watch to the holder, the client follows in one hop, and the
// stats record the bounce.
func TestClientFollowsRedirectTransparently(t *testing.T) {
	book, directors := redirectCluster(t)
	directors[grnet.Patra].fn = redirectTo(book, grnet.Xanthi)

	p, err := client.NewPlayer(grnet.Patra, book)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("feature")
	if err != nil {
		t.Fatalf("redirected watch failed: %v", err)
	}
	if !stats.Verified || stats.BytesReceived != 5*1024+37 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Redirects != 1 || len(stats.RedirectPath) != 1 || stats.RedirectPath[0] != grnet.Xanthi {
		t.Fatalf("redirect accounting = %d via %v, want 1 via [Xanthi]", stats.Redirects, stats.RedirectPath)
	}
}

// TestClientRejectsRedirectLoop pins loop detection: two front doors
// pointing at each other surface ErrRedirectLoop instead of orbiting (the
// home node is in the visited set from the start).
func TestClientRejectsRedirectLoop(t *testing.T) {
	book, directors := redirectCluster(t)
	directors[grnet.Patra].fn = redirectTo(book, grnet.Xanthi)
	directors[grnet.Xanthi].fn = redirectTo(book, grnet.Patra)

	p, err := client.NewPlayer(grnet.Patra, book)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Watch("feature")
	if !errors.Is(err, client.ErrRedirectLoop) {
		t.Fatalf("err = %v, want ErrRedirectLoop", err)
	}
	var rd *client.RedirectError
	if !errors.As(err, &rd) || rd.Target != grnet.Patra {
		t.Fatalf("err = %v, want *RedirectError targeting Patra", err)
	}
}

// TestClientHopCountCap pins the redirect limit: a chain longer than the
// player's budget fails typed, and a negative limit refuses the very first
// bounce.
func TestClientHopCountCap(t *testing.T) {
	book, directors := redirectCluster(t)
	directors[grnet.Patra].fn = redirectTo(book, grnet.Xanthi)
	// Xanthi forwards to a third node that is never dialed: the limit check
	// fires before the dial.
	directors[grnet.Xanthi].fn = func(string, int) (topology.NodeID, string, bool) {
		return grnet.Athens, "127.0.0.1:1", true
	}

	p, err := client.NewPlayer(grnet.Patra, book, client.WithRedirectLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Watch("feature")
	if !errors.Is(err, client.ErrTooManyRedirects) {
		t.Fatalf("err = %v, want ErrTooManyRedirects", err)
	}
	var rd *client.RedirectError
	if !errors.As(err, &rd) || rd.Target != grnet.Athens {
		t.Fatalf("err = %v, want *RedirectError targeting Athens", err)
	}

	refuser, err := client.NewPlayer(grnet.Patra, book, client.WithRedirectLimit(-1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refuser.Watch("feature"); !errors.Is(err, client.ErrTooManyRedirects) {
		t.Fatalf("negative limit err = %v, want ErrTooManyRedirects on first bounce", err)
	}
}

// TestClientRedirectRacingNodeDeath pins the race: the target dies between
// the redirect decision and the client's dial. The client gets a prompt
// typed *RedirectError wrapping the dial failure — never a hang.
func TestClientRedirectRacingNodeDeath(t *testing.T) {
	book, directors := redirectCluster(t)
	// A listener that is already gone: its address is valid but refuses.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	directors[grnet.Patra].fn = func(string, int) (topology.NodeID, string, bool) {
		return grnet.Heraklio, deadAddr, true
	}

	p, err := client.NewPlayer(grnet.Patra, book)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Watch("feature")
		done <- err
	}()
	select {
	case err := <-done:
		var rd *client.RedirectError
		if !errors.As(err, &rd) {
			t.Fatalf("err = %v, want *RedirectError", err)
		}
		if rd.Target != grnet.Heraklio || rd.Err == nil {
			t.Fatalf("redirect error = %+v, want Heraklio with a wrapped dial failure", rd)
		}
		if errors.Is(err, client.ErrRedirectLoop) || errors.Is(err, client.ErrTooManyRedirects) {
			t.Fatalf("dial failure misclassified: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch hung following a redirect to a dead node")
	}
}
