package client

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dvod/internal/media"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// Holders asks the home server which replicas hold the title (plus the
// delivery parameters a parallel fetch needs).
func (p *Player) Holders(title string) (transport.HoldersOKPayload, error) {
	conn, err := p.dialHome()
	if err != nil {
		return transport.HoldersOKPayload{}, err
	}
	defer conn.Close()
	req, err := transport.Encode(transport.TypeHolders, transport.HoldersPayload{Title: title})
	if err != nil {
		return transport.HoldersOKPayload{}, err
	}
	if err := conn.WriteMessage(req); err != nil {
		return transport.HoldersOKPayload{}, err
	}
	m, err := conn.ReadMessage()
	if err != nil {
		return transport.HoldersOKPayload{}, err
	}
	if rerr := transport.AsError(m); rerr != nil {
		return transport.HoldersOKPayload{}, rerr
	}
	return transport.Decode[transport.HoldersOKPayload](m)
}

// WatchParallel pulls the title's clusters directly from its replica
// holders, round-robin, with one connection per holder — the delivery-side
// realization of the paper's future work (strips distributed across
// servers). Holders missing from the address book are skipped; the fetch
// fails if none remain.
func (p *Player) WatchParallel(title string) (PlaybackStats, error) {
	info, err := p.Holders(title)
	if err != nil {
		return PlaybackStats{}, err
	}
	// Resolve dialable holders.
	type replica struct {
		node topology.NodeID
		addr string
	}
	var replicas []replica
	for _, h := range info.Holders {
		addr, err := p.book.Lookup(h)
		if err != nil {
			continue
		}
		replicas = append(replicas, replica{node: h, addr: addr})
	}
	if len(replicas) == 0 {
		return PlaybackStats{}, fmt.Errorf("no dialable holder for %q", title)
	}

	start := time.Now()
	stats := PlaybackStats{
		Title:       info.Title,
		NumClusters: info.NumClusters,
		Verified:    true,
	}
	records := make([]ClusterRecord, info.NumClusters)
	bodies := make([][]byte, info.NumClusters)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for ri, rep := range replicas {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := transport.Dial(rep.addr)
			if err != nil {
				fail(fmt.Errorf("dial %s: %w", rep.node, err))
				return
			}
			defer conn.Close()
			for idx := ri; idx < info.NumClusters; idx += len(replicas) {
				req, err := transport.Encode(transport.TypeClusterGet, transport.ClusterGetPayload{
					Title:        title,
					Index:        idx,
					ClusterBytes: info.ClusterBytes,
				})
				if err != nil {
					fail(err)
					return
				}
				if err := conn.WriteMessage(req); err != nil {
					fail(fmt.Errorf("fetch %s[%d] from %s: %w", title, idx, rep.node, err))
					return
				}
				var payload transport.ClusterPayload
				_, body, err := conn.ReadMessageWithBody(func(m transport.Message) (int64, error) {
					if rerr := transport.AsError(m); rerr != nil {
						return 0, rerr
					}
					pl, err := transport.Decode[transport.ClusterPayload](m)
					if err != nil {
						return 0, err
					}
					payload = pl
					return pl.Length, nil
				})
				if err != nil {
					fail(fmt.Errorf("fetch %s[%d] from %s: %w", title, idx, rep.node, err))
					return
				}
				if payload.Index != idx {
					fail(fmt.Errorf("asked for cluster %d, got %d", idx, payload.Index))
					return
				}
				if p.verify && !media.Verify(title, payload.Offset, body) {
					fail(fmt.Errorf("cluster %d from %s failed verification", idx, rep.node))
					return
				}
				records[idx] = ClusterRecord{
					Index:     idx,
					Length:    payload.Length,
					Source:    payload.Source,
					ArrivedAt: time.Now(),
				}
				bodies[idx] = body
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		stats.Verified = false
		return stats, firstErr
	}
	for idx, rec := range records {
		if rec.Length == 0 && int64(idx)*info.ClusterBytes < info.SizeBytes {
			// A zero-length record with bytes remaining means a worker
			// skipped it (cannot happen unless NumClusters lied).
			return stats, errors.New("incomplete parallel delivery")
		}
		stats.Records = append(stats.Records, rec)
		stats.Sources = append(stats.Sources, rec.Source)
		stats.BytesReceived += int64(len(bodies[idx]))
	}
	stats.Elapsed = time.Since(start)
	if stats.BytesReceived != info.SizeBytes {
		return stats, fmt.Errorf("received %d bytes, want %d", stats.BytesReceived, info.SizeBytes)
	}
	// Sources rotate by construction; count distinct servers as switches
	// the way sequential watching would observe them.
	var last topology.NodeID
	stats.Switches = 0
	for _, s := range stats.Sources {
		if last != "" && s != last {
			stats.Switches++
		}
		last = s
	}
	// Stall model over in-order consumption of the (index-sorted) records.
	sort.Slice(stats.Records, func(i, j int) bool {
		return stats.Records[i].Index < stats.Records[j].Index
	})
	p.accountPlayback(&stats, transport.WatchOKPayload{
		Title:        info.Title,
		SizeBytes:    info.SizeBytes,
		BitrateMbps:  info.BitrateMbps,
		ClusterBytes: info.ClusterBytes,
		NumClusters:  info.NumClusters,
	}, start)
	return stats, nil
}
