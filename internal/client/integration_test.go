package client_test

import (
	"testing"
	"time"

	"dvod/internal/cache"
	"dvod/internal/client"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/disk"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/server"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// miniCluster brings up two live servers (Patra as home with a tiny array,
// Xanthi as the replica holder) so every client path — list, watch, seek,
// holders, parallel — runs over real sockets from this package's tests.
func miniCluster(t *testing.T) (*transport.AddrBook, *db.DB) {
	t.Helper()
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	t0 := time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)
	for _, row := range grnet.Table2() {
		id := topology.MakeLinkID(row.A, row.B)
		if err := d.UpsertLinkStats(id, row.TrafficMbps[0], t0); err != nil {
			t.Fatal(err)
		}
	}
	book := transport.NewAddrBook()
	shapes := map[topology.NodeID]int64{
		grnet.Patra:  512,     // cannot cache anything real
		grnet.Xanthi: 1 << 20, // replica holder
	}
	for node, capBytes := range shapes {
		arr, err := disk.NewUniformArray(string(node), 2, capBytes)
		if err != nil {
			t.Fatal(err)
		}
		dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		planner, err := core.NewPlanner(d, core.VRA{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Node: node, DB: d, Planner: planner, Array: arr, Cache: dma,
			ClusterBytes: 1024, Book: book,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		if node == grnet.Xanthi {
			title := media.Title{Name: "feature", SizeBytes: 5*1024 + 37, BitrateMbps: 1.5}
			if err := d.Catalog().AddTitle(title); err != nil {
				t.Fatal(err)
			}
			if err := srv.Preload(title); err != nil {
				t.Fatal(err)
			}
		}
	}
	return book, d
}

func TestClientEndToEnd(t *testing.T) {
	book, _ := miniCluster(t)
	p, err := client.NewPlayer(grnet.Patra, book)
	if err != nil {
		t.Fatal(err)
	}
	// List.
	titles, err := p.ListTitles()
	if err != nil {
		t.Fatal(err)
	}
	if len(titles) != 1 || titles[0].Name != "feature" || titles[0].Resident {
		t.Fatalf("titles = %+v", titles)
	}
	// Watch (remote fetch through the home server).
	stats, err := p.Watch("feature")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Verified || stats.BytesReceived != 5*1024+37 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.NumClusters != 6 || stats.StartupDelay < 0 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, src := range stats.Sources {
		if src != grnet.Xanthi {
			t.Fatalf("source = %s", src)
		}
	}
	// Seek.
	tail, err := p.WatchFrom("feature", 5)
	if err != nil {
		t.Fatal(err)
	}
	if tail.BytesReceived != 37 {
		t.Fatalf("tail bytes = %d", tail.BytesReceived)
	}
	// Holders + parallel fetch (single holder).
	info, err := p.Holders("feature")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Holders) != 1 || info.Holders[0] != grnet.Xanthi {
		t.Fatalf("holders = %v", info.Holders)
	}
	par, err := p.WatchParallel("feature")
	if err != nil {
		t.Fatal(err)
	}
	if !par.Verified || par.BytesReceived != 5*1024+37 {
		t.Fatalf("parallel stats = %+v", par)
	}
}

func TestClientWithoutVerificationStillChecksLengths(t *testing.T) {
	book, _ := miniCluster(t)
	p, err := client.NewPlayer(grnet.Patra, book, client.WithoutVerification())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("feature")
	if err != nil {
		t.Fatal(err)
	}
	if stats.BytesReceived != 5*1024+37 {
		t.Fatalf("bytes = %d", stats.BytesReceived)
	}
}

func TestClientErrors(t *testing.T) {
	book, _ := miniCluster(t)
	p, err := client.NewPlayer(grnet.Patra, book)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Watch("ghost"); err == nil {
		t.Fatal("unknown title accepted")
	}
	if _, err := p.WatchFrom("feature", -1); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := p.WatchFrom("feature", 99); err == nil {
		t.Fatal("out-of-range seek accepted")
	}
	if _, err := p.Holders("ghost"); err == nil {
		t.Fatal("unknown holders accepted")
	}
	if _, err := p.WatchParallel("ghost"); err == nil {
		t.Fatal("unknown parallel title accepted")
	}
}
