// Package client implements the live-plane player: it connects to the
// client's home video server (the paper resolves this from the requesting
// IP; here the mapping is explicit), requests a title, receives it cluster
// by cluster, verifies content integrity, observes mid-stream server
// switches, and accounts playback stalls against the title's bitrate.
package client

import (
	"errors"
	"fmt"
	"time"

	"dvod/internal/admission"
	"dvod/internal/faults"
	"dvod/internal/media"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// Player watches titles through one home server.
type Player struct {
	home topology.NodeID
	book *transport.AddrBook
	// verify enables byte-level content verification of each cluster.
	verify bool
	// binary controls whether watch connections attempt the hello
	// handshake for binary cluster framing.
	binary bool
	// pool leases cluster-body buffers for the receive loop.
	pool *transport.BufferPool
	// class is sent with every watch request; empty means standard.
	class admission.Class
	// dial overrides the home-server dialer; nil uses transport.Dial. Fault
	// injectors use this to interpose on the client↔home connection.
	dial func(addr string) (*transport.Conn, error)
	// resume enables mid-stream recovery: a watch that fails after delivery
	// started is re-requested from the first undelivered cluster under a
	// retry budget and jittered backoff, and the attempts' records merge
	// into one gapless session.
	resume bool
	// redirectLimit bounds how many watch.redirect bounces one watch follows
	// before giving up (DefaultRedirectLimit unless overridden); negative
	// disables following and surfaces the first redirect as an error.
	redirectLimit int
}

// DefaultRedirectLimit is how many watch.redirect bounces a watch follows by
// default, matching the server-side hop cap: past this many the fleet is
// misbehaving and the client reports it rather than orbiting.
const DefaultRedirectLimit = 3

// Option configures a Player.
type Option func(*Player)

// WithoutVerification disables per-cluster content checking (useful for
// throughput benchmarks).
func WithoutVerification() Option {
	return func(p *Player) { p.verify = false }
}

// WithoutBinaryFraming skips the hello handshake, forcing the canonical JSON
// framing for every cluster — the behaviour of clients predating the binary
// protocol, kept selectable for interop tests and framing benchmarks.
func WithoutBinaryFraming() Option {
	return func(p *Player) { p.binary = false }
}

// WithBufferPool substitutes the buffer pool the receive loop leases cluster
// bodies from (by default the process-wide transport.DefaultPool). Useful to
// surface the pool's hit/miss counters in a caller-owned metrics registry.
func WithBufferPool(pool *transport.BufferPool) Option {
	return func(p *Player) {
		if pool != nil {
			p.pool = pool
		}
	}
}

// WithClass sets the user class sent with watch requests. Servers running
// admission control reserve bandwidth, degrade, queue, or reject according
// to the class's policy; class-unaware servers ignore it.
func WithClass(c admission.Class) Option {
	return func(p *Player) { p.class = c }
}

// WithDialer substitutes the function that opens the client↔home connection
// (default transport.Dial). Fault injectors wrap the stream here so the
// home link can be cut or stalled mid-watch; tests use it to interpose.
func WithDialer(dial func(addr string) (*transport.Conn, error)) Option {
	return func(p *Player) {
		if dial != nil {
			p.dial = dial
		}
	}
}

// WithRedirectLimit overrides how many watch.redirect bounces one watch
// follows (default DefaultRedirectLimit). Zero keeps the default; negative
// disables following entirely — the first redirect surfaces as a
// *RedirectError, for clients that want to manage placement themselves.
func WithRedirectLimit(n int) Option {
	return func(p *Player) {
		if n != 0 {
			p.redirectLimit = n
		}
	}
}

// WithResume turns on mid-stream recovery: when a watch fails after delivery
// began (connection cut, server error), the player redials its home and
// re-requests the title from the first cluster it has not yet received,
// stitching the attempts into one session. Stall accounting then spans the
// outage — the recovery gap surfaces as rebuffer time, not a failed watch.
// Admission rejections stay terminal. Retries draw from a per-session budget
// (reserve 3, +0.1 per delivered cluster) with jittered exponential backoff
// between attempts, and are reported in PlaybackStats.Retries.
func WithResume() Option {
	return func(p *Player) { p.resume = true }
}

// RejectedError is the typed client-side view of a server's watch.reject
// response: admission control refused the session.
type RejectedError struct {
	Title      string
	Class      admission.Class
	Reason     string
	NeededMbps float64
	FreeMbps   float64
}

// Error implements error.
func (e *RejectedError) Error() string {
	return fmt.Sprintf("watch %q rejected (%s, class %s)", e.Title, e.Reason, e.Class)
}

// Unwrap lets errors.Is match admission.ErrRejected.
func (e *RejectedError) Unwrap() error { return admission.ErrRejected }

// ErrRedirectLoop reports a watch.redirect chain that revisited a node the
// session was already bounced through — a placement disagreement between
// front doors, surfaced instead of orbited.
var ErrRedirectLoop = errors.New("client: redirect loop")

// ErrTooManyRedirects reports a redirect chain longer than the player's
// redirect limit.
var ErrTooManyRedirects = errors.New("client: too many redirects")

// RedirectError is the typed failure of following one watch.redirect hop:
// which node the client was bounced toward and why the hop failed (the
// wrapped cause — a refused dial when the target died between the redirect
// decision and the follow-up, ErrRedirectLoop, or ErrTooManyRedirects).
type RedirectError struct {
	Title  string
	Target topology.NodeID
	Addr   string
	Hops   int
	Err    error
}

// Error implements error.
func (e *RedirectError) Error() string {
	return fmt.Sprintf("watch %q: redirect hop %d to %s (%s): %v",
		e.Title, e.Hops, e.Target, e.Addr, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *RedirectError) Unwrap() error { return e.Err }

// NewPlayer builds a player homed at the given node.
func NewPlayer(home topology.NodeID, book *transport.AddrBook, opts ...Option) (*Player, error) {
	if home == "" {
		return nil, errors.New("player: empty home node")
	}
	if book == nil {
		return nil, errors.New("player: nil address book")
	}
	p := &Player{home: home, book: book, verify: true, binary: true,
		pool: transport.DefaultPool(), redirectLimit: DefaultRedirectLimit}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// Home returns the player's home server node.
func (p *Player) Home() topology.NodeID { return p.home }

// ListTitles queries the home server's catalog view.
func (p *Player) ListTitles() ([]transport.TitleInfo, error) {
	conn, err := p.dialHome()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	req, err := transport.Encode(transport.TypeTitles, nil)
	if err != nil {
		return nil, err
	}
	if err := conn.WriteMessage(req); err != nil {
		return nil, err
	}
	m, err := conn.ReadMessage()
	if err != nil {
		return nil, err
	}
	if rerr := transport.AsError(m); rerr != nil {
		return nil, rerr
	}
	payload, err := transport.Decode[transport.TitlesPayload](m)
	if err != nil {
		return nil, err
	}
	return payload.Titles, nil
}

// ClusterRecord describes one delivered cluster.
type ClusterRecord struct {
	Index     int
	Length    int64
	Source    topology.NodeID
	ArrivedAt time.Time
}

// PlaybackStats summarizes one watch session.
type PlaybackStats struct {
	Title         string
	NumClusters   int
	BytesReceived int64
	// Verified is true when every cluster matched the canonical content
	// (always true when verification is disabled and delivery succeeded —
	// in that case it reports delivery, not content).
	Verified bool
	// Switches counts mid-stream source changes observed by the client.
	Switches int
	// Sources is the serving node of each cluster, in order.
	Sources []topology.NodeID
	// Class, Degraded, and DeliveredMbps echo the server's admission
	// outcome: the granted class, whether the session was admitted below
	// the title's native bitrate, and the rate playout is paced at
	// (0 from class-unaware servers).
	Class         admission.Class
	Degraded      bool
	DeliveredMbps float64
	// BinaryFraming reports whether the session negotiated binary cluster
	// frames (false on JSON fallback against a legacy server or when the
	// player disabled the handshake).
	BinaryFraming bool
	// Merged reports whether the server coalesced this session onto a
	// shared stream-merging cohort; delivery is unchanged, the merge.info
	// announcement is purely observational. MergeRole is "base" (this
	// session opened the cohort) or "patch" (it attached to one),
	// MergeCohort identifies the cohort on the serving node, and
	// PatchClusters is how many clusters arrived as a private patch stream
	// before the shared stream took over.
	Merged        bool
	MergeRole     string
	MergeCohort   int64
	PatchClusters int
	// PrefixClusters echoes the server's prefix.info announcement: how many
	// leading clusters (from the session's start position) were served off
	// the server's local prefix pin, with zero cross-network fetches.
	// StartupRTTs is the server-reported count of remote fetches its first
	// cluster needed (0 when it came from the DMA cache or the prefix tier),
	// and RelayTail reports that the tail rode a shared cross-server relay
	// subscription. All are 0/false against servers without a prefix tier.
	PrefixClusters int
	StartupRTTs    int
	RelayTail      bool
	// Retries counts mid-stream resume attempts (always 0 without
	// WithResume).
	Retries int
	// Redirects counts watch.redirect bounces this session followed before
	// a server agreed to serve it, and RedirectPath lists the targets in
	// bounce order (empty when the home served directly).
	Redirects    int
	RedirectPath []topology.NodeID
	// ReservationMigrations echoes how many times the home server moved this
	// session's bandwidth reservation to a new route mid-stream (the
	// watch.done payload from ledger-aware servers; 0 from older ones).
	ReservationMigrations int
	// StartupDelay is the time to the first cluster's arrival.
	StartupDelay time.Duration
	// Stalls and StallTime account rebuffering: playback consumes each
	// cluster over its bitrate-duration, and a cluster arriving after its
	// deadline stalls the playout.
	Stalls    int
	StallTime time.Duration
	// Elapsed is total wall time from request to last byte.
	Elapsed time.Duration
	Records []ClusterRecord
}

func (p *Player) dialHome() (*transport.Conn, error) {
	addr, err := p.book.Lookup(p.home)
	if err != nil {
		return nil, err
	}
	return p.dialAddr(addr)
}

// dialAddr opens a connection to an explicit address (the home's, or a
// redirect target's) through the player's dialer.
func (p *Player) dialAddr(addr string) (*transport.Conn, error) {
	if p.dial != nil {
		return p.dial(addr)
	}
	return transport.Dial(addr)
}

// Watch requests a title from the home server and consumes the delivery
// stream.
func (p *Player) Watch(title string) (PlaybackStats, error) {
	return p.WatchFrom(title, 0)
}

// WatchFrom requests delivery starting at the given cluster index — the
// interactive-VoD seek operation. Cluster 0 is equivalent to Watch.
func (p *Player) WatchFrom(title string, startCluster int) (PlaybackStats, error) {
	if startCluster < 0 {
		return PlaybackStats{}, fmt.Errorf("negative start cluster %d", startCluster)
	}
	start := time.Now()
	stats, info, err := p.watchOnce(title, startCluster)
	if err != nil && p.resume && !isTerminalWatchErr(err) {
		stats, info, err = p.resumeLoop(title, startCluster, stats, info, err)
	}
	if err != nil {
		return stats, err
	}
	stats.Elapsed = time.Since(start)
	wantBytes := info.SizeBytes - int64(startCluster)*info.ClusterBytes
	if wantBytes < 0 {
		wantBytes = 0
	}
	if stats.BytesReceived != wantBytes {
		return stats, fmt.Errorf("received %d bytes, want %d", stats.BytesReceived, wantBytes)
	}
	p.accountPlayback(&stats, info, start)
	return stats, nil
}

// isTerminalWatchErr reports errors no resume can fix: the server refused
// the session by policy, not by failure. Redirect loops and over-long chains
// are terminal too — redialing the same front door reproduces the same
// chain — but a dead redirect target is not: the home will route around it
// on the next attempt.
func isTerminalWatchErr(err error) bool {
	var rej *RejectedError
	if errors.As(err, &rej) {
		return true
	}
	return errors.Is(err, ErrRedirectLoop) || errors.Is(err, ErrTooManyRedirects)
}

// resumeLoop re-requests the title's remaining clusters after a mid-stream
// failure until the watch completes, a terminal error arrives, or the retry
// budget drains. Every delivered cluster deposits into the budget, so long
// titles survive repeated transient faults while a hard outage fails fast.
func (p *Player) resumeLoop(title string, startCluster int, agg PlaybackStats,
	info transport.WatchOKPayload, lastErr error) (PlaybackStats, transport.WatchOKPayload, error) {
	budget := faults.NewRetryBudget(3, 0.1)
	for range agg.Records {
		budget.OnSuccess()
	}
	bo := faults.NewBackoff(25*time.Millisecond, 500*time.Millisecond, 2, int64(len(p.home)))
	for {
		if !budget.TryRetry() {
			return agg, info, fmt.Errorf("watch %q: resume budget exhausted: %w", title, lastErr)
		}
		time.Sleep(bo.Next())
		next := startCluster
		if n := len(agg.Records); n > 0 {
			next = agg.Records[n-1].Index + 1
		}
		if info.NumClusters > 0 && next >= info.NumClusters {
			// Every cluster arrived before the failure (it hit the trailing
			// watch.done frame); nothing is left to re-request.
			return agg, info, nil
		}
		agg.Retries++
		part, pinfo, err := p.watchOnce(title, next)
		for range part.Records {
			budget.OnSuccess()
		}
		mergeResumed(&agg, part)
		if pinfo.Title != "" {
			info = pinfo
		}
		if err == nil {
			return agg, info, nil
		}
		if isTerminalWatchErr(err) {
			return agg, info, err
		}
		lastErr = err
	}
}

// mergeResumed folds one resume attempt's partial stats into the running
// session view, counting a source change across the resume boundary as a
// switch.
func mergeResumed(agg *PlaybackStats, part PlaybackStats) {
	if agg.Title == "" && len(agg.Records) == 0 {
		// The first attempt died before its watch.ok; adopt the resumed
		// attempt wholesale (keeping the retry count).
		retries := agg.Retries
		*agg = part
		agg.Retries = retries
		return
	}
	if len(agg.Sources) > 0 && len(part.Sources) > 0 && agg.Sources[len(agg.Sources)-1] != part.Sources[0] {
		agg.Switches++
	}
	agg.Switches += part.Switches
	agg.BytesReceived += part.BytesReceived
	agg.Records = append(agg.Records, part.Records...)
	agg.Sources = append(agg.Sources, part.Sources...)
	agg.Verified = agg.Verified && part.Verified
	agg.Redirects += part.Redirects
	agg.RedirectPath = append(agg.RedirectPath, part.RedirectPath...)
	if part.Merged {
		agg.Merged = true
		agg.MergeRole = part.MergeRole
		agg.MergeCohort = part.MergeCohort
		agg.PatchClusters += part.PatchClusters
	}
	agg.PrefixClusters += part.PrefixClusters
	agg.RelayTail = agg.RelayTail || part.RelayTail
	agg.ReservationMigrations += part.ReservationMigrations
}

// watchOnce runs one watch connection: request, headers, stream consumption.
// It returns the partial stats on failure so a resume can pick up from the
// first undelivered cluster. Elapsed, the byte-count check, and playback
// accounting belong to the caller, which may stitch several attempts.
func (p *Player) watchOnce(title string, startCluster int) (PlaybackStats, transport.WatchOKPayload, error) {
	var noInfo transport.WatchOKPayload
	conn, err := p.dialHome()
	if err != nil {
		return PlaybackStats{}, noInfo, err
	}
	defer func() { conn.Close() }()

	// The front-door loop: send the watch, and if the answering node bounces
	// us with a watch.redirect, follow it — close, dial the target, resend
	// with the advanced hop count — within the redirect limit and without
	// revisiting a node. A session is bounced at most a handful of times
	// before some server commits to serving it.
	var (
		head    transport.Message
		hops    int
		bounces []topology.NodeID
		visited = map[topology.NodeID]bool{p.home: true}
	)
	for {
		if p.binary {
			// Offer binary cluster framing; a legacy server answers with an
			// error frame and the session continues on JSON.
			if _, err := conn.Negotiate(); err != nil {
				return PlaybackStats{}, noInfo, err
			}
		}
		req, err := transport.Encode(transport.TypeWatch, transport.WatchPayload{
			Title:        title,
			StartCluster: startCluster,
			Class:        string(p.class),
			Hops:         hops,
		})
		if err != nil {
			return PlaybackStats{}, noInfo, err
		}
		if err := conn.WriteMessage(req); err != nil {
			return PlaybackStats{}, noInfo, err
		}
		head, err = conn.ReadMessage()
		if err != nil {
			return PlaybackStats{}, noInfo, err
		}
		if head.Type != transport.TypeWatchRedirect {
			break
		}
		rd, err := transport.Decode[transport.WatchRedirectPayload](head)
		if err != nil {
			return PlaybackStats{}, noInfo, err
		}
		hopErr := &RedirectError{Title: title, Target: rd.Target, Addr: rd.Addr, Hops: rd.Hops}
		if p.redirectLimit < 0 || len(bounces) >= p.redirectLimit {
			hopErr.Err = ErrTooManyRedirects
			return PlaybackStats{}, noInfo, hopErr
		}
		if visited[rd.Target] {
			hopErr.Err = ErrRedirectLoop
			return PlaybackStats{}, noInfo, hopErr
		}
		visited[rd.Target] = true
		bounces = append(bounces, rd.Target)
		conn.Close()
		next, err := p.dialAddr(rd.Addr)
		if err != nil {
			// The target died between the redirect decision and our dial: a
			// prompt typed error, never a hang — resume redials the home,
			// which routes around the corpse.
			hopErr.Err = err
			return PlaybackStats{}, noInfo, hopErr
		}
		conn = next
		hops = rd.Hops
	}
	if rerr := transport.AsError(head); rerr != nil {
		return PlaybackStats{}, noInfo, rerr
	}
	if head.Type == transport.TypeWatchReject {
		rej, err := transport.Decode[transport.WatchRejectPayload](head)
		if err != nil {
			return PlaybackStats{}, noInfo, err
		}
		return PlaybackStats{}, noInfo, &RejectedError{
			Title:      rej.Title,
			Class:      admission.Class(rej.Class),
			Reason:     rej.Reason,
			NeededMbps: rej.NeededMbps,
			FreeMbps:   rej.FreeMbps,
		}
	}
	if head.Type != transport.TypeWatchOK {
		return PlaybackStats{}, noInfo, fmt.Errorf("unexpected reply %q", head.Type)
	}
	info, err := transport.Decode[transport.WatchOKPayload](head)
	if err != nil {
		return PlaybackStats{}, noInfo, err
	}

	stats := PlaybackStats{
		Title:         info.Title,
		NumClusters:   info.NumClusters,
		Verified:      true,
		Class:         admission.Class(info.Class),
		Degraded:      info.Degraded,
		DeliveredMbps: info.DeliveredMbps,
		BinaryFraming: conn.BinaryFrames(),
		Redirects:     len(bounces),
		RedirectPath:  bounces,
	}
	var lastSource topology.NodeID
stream:
	for {
		m, frame, err := conn.ReadFrameOrMessage(p.pool)
		if err != nil {
			return stats, info, err
		}
		if frame != nil {
			if frame.Type == transport.FrameMergeInfo {
				mi, derr := transport.DecodeMergeInfoFrame(frame)
				frame.Release()
				if derr != nil {
					return stats, info, derr
				}
				recordMergeInfo(&stats, mi)
				continue
			}
			if frame.Type == transport.FramePrefixAnnounce {
				pi, derr := transport.DecodePrefixAnnounceFrame(frame)
				frame.Release()
				if derr != nil {
					return stats, info, derr
				}
				recordPrefixInfo(&stats, pi)
				continue
			}
			// Binary cluster frame: the body aliases the pooled payload,
			// so it must be fully consumed before Release.
			payload, body, derr := transport.DecodeClusterFrame(frame)
			if derr == nil {
				derr = p.recordCluster(&stats, info.Title, payload, body, &lastSource)
			}
			frame.Release()
			if derr != nil {
				return stats, info, derr
			}
			continue
		}
		switch m.Type {
		case transport.TypeWatchDone:
			// Older servers send a bare watch.done; ledger-aware ones attach
			// the session's migration tally.
			if len(m.Payload) > 0 {
				if done, derr := transport.Decode[transport.WatchDonePayload](m); derr == nil {
					stats.ReservationMigrations = done.Migrations
				}
			}
			break stream
		case transport.TypeError:
			return stats, info, transport.AsError(m)
		case transport.TypeMergeInfo:
			mi, derr := transport.Decode[transport.MergeInfoPayload](m)
			if derr != nil {
				return stats, info, derr
			}
			recordMergeInfo(&stats, mi)
		case transport.TypePrefixInfo:
			pi, derr := transport.Decode[transport.PrefixAnnouncePayload](m)
			if derr != nil {
				return stats, info, derr
			}
			recordPrefixInfo(&stats, pi)
		case transport.TypeCluster:
			payload, derr := transport.Decode[transport.ClusterPayload](m)
			if derr != nil {
				return stats, info, derr
			}
			bodyFrame, derr := conn.ReadBody(payload.Length, p.pool)
			if derr != nil {
				return stats, info, derr
			}
			rerr := p.recordCluster(&stats, info.Title, payload, bodyFrame.Payload, &lastSource)
			bodyFrame.Release()
			if rerr != nil {
				return stats, info, rerr
			}
		default:
			return stats, info, fmt.Errorf("unexpected stream message %q", m.Type)
		}
	}
	return stats, info, nil
}

// recordMergeInfo notes the server's stream-merging announcement. It is
// purely observational: merged and unmerged sessions receive the same
// in-order cluster stream.
func recordMergeInfo(stats *PlaybackStats, mi transport.MergeInfoPayload) {
	stats.Merged = true
	stats.MergeRole = mi.Role
	stats.MergeCohort = mi.Cohort
	stats.PatchClusters = mi.PatchClusters
}

// recordPrefixInfo notes the server's prefix-tier announcement — like
// merge.info it is purely observational and changes nothing about delivery.
func recordPrefixInfo(stats *PlaybackStats, pi transport.PrefixAnnouncePayload) {
	stats.PrefixClusters = pi.PrefixClusters
	stats.StartupRTTs = pi.StartupRTTs
	stats.RelayTail = pi.RelayTail
}

// recordCluster accounts one delivered cluster: length check, optional
// content verification, switch detection. Validation runs before the cluster
// is counted, so a torn or corrupt delivery leaves no record and a resumed
// session re-requests exactly that cluster. body may alias a pooled buffer;
// it is not retained.
func (p *Player) recordCluster(stats *PlaybackStats, title string, payload transport.ClusterPayload, body []byte, lastSource *topology.NodeID) error {
	if int64(len(body)) != payload.Length {
		return fmt.Errorf("cluster %d: got %d bytes, want %d",
			payload.Index, len(body), payload.Length)
	}
	if p.verify && !media.Verify(title, payload.Offset, body) {
		stats.Verified = false
		return fmt.Errorf("cluster %d failed content verification", payload.Index)
	}
	stats.Records = append(stats.Records, ClusterRecord{
		Index:     payload.Index,
		Length:    payload.Length,
		Source:    payload.Source,
		ArrivedAt: time.Now(),
	})
	stats.Sources = append(stats.Sources, payload.Source)
	stats.BytesReceived += int64(len(body))
	if *lastSource != "" && payload.Source != *lastSource {
		stats.Switches++
	}
	*lastSource = payload.Source
	return nil
}

// accountPlayback derives startup delay and stalls from cluster arrival
// times: playout starts at the first cluster's arrival and consumes each
// cluster over length·8/bitrate seconds; a late cluster stalls the playhead
// until it arrives. A degraded session plays the reduced rendition, so
// playout is paced at the delivered rate rather than the native one.
func (p *Player) accountPlayback(stats *PlaybackStats, info transport.WatchOKPayload, start time.Time) {
	rate := info.BitrateMbps
	if info.DeliveredMbps > 0 {
		rate = info.DeliveredMbps
	}
	if len(stats.Records) == 0 || rate <= 0 {
		return
	}
	stats.StartupDelay = stats.Records[0].ArrivedAt.Sub(start)
	playhead := stats.Records[0].ArrivedAt
	for _, rec := range stats.Records {
		if rec.ArrivedAt.After(playhead) {
			stats.Stalls++
			stats.StallTime += rec.ArrivedAt.Sub(playhead)
			playhead = rec.ArrivedAt
		}
		playDur := time.Duration(float64(rec.Length*8) / (rate * 1e6) * float64(time.Second))
		playhead = playhead.Add(playDur)
	}
}
