package client

import (
	"testing"
	"time"

	"dvod/internal/transport"
)

// TestAccountPlayback exercises the stall model directly: 1 Mbps title,
// 125000-byte clusters (1 s of playback each).
func TestAccountPlayback(t *testing.T) {
	p := &Player{home: "U1"}
	start := time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)
	info := transport.WatchOKPayload{Title: "m", BitrateMbps: 1.0, SizeBytes: 3 * 125000}
	mk := func(arrivals ...time.Duration) PlaybackStats {
		stats := PlaybackStats{}
		for i, a := range arrivals {
			stats.Records = append(stats.Records, ClusterRecord{
				Index:     i,
				Length:    125000,
				ArrivedAt: start.Add(a),
			})
		}
		p.accountPlayback(&stats, info, start)
		return stats
	}

	// Smooth delivery: clusters arrive faster than playback consumes.
	smooth := mk(100*time.Millisecond, 200*time.Millisecond, 300*time.Millisecond)
	if smooth.StartupDelay != 100*time.Millisecond {
		t.Fatalf("startup = %v", smooth.StartupDelay)
	}
	if smooth.Stalls != 0 || smooth.StallTime != 0 {
		t.Fatalf("smooth playback stalled: %+v", smooth)
	}

	// Late cluster: cluster 1 due at start+1.1s (startup 100ms + 1s of
	// cluster 0), arrives at 1.6s → one 500ms stall.
	late := mk(100*time.Millisecond, 1600*time.Millisecond, 1700*time.Millisecond)
	if late.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", late.Stalls)
	}
	if late.StallTime != 500*time.Millisecond {
		t.Fatalf("stall time = %v, want 500ms", late.StallTime)
	}

	// Two stalls.
	double := mk(0, 2*time.Second, 4*time.Second)
	if double.Stalls != 2 {
		t.Fatalf("stalls = %d, want 2", double.Stalls)
	}

	// No records or zero bitrate: no accounting, no panic.
	var empty PlaybackStats
	p.accountPlayback(&empty, info, start)
	if empty.Stalls != 0 {
		t.Fatal("empty records produced stalls")
	}
	s := mk()
	if s.StartupDelay != 0 {
		t.Fatal("no-record startup delay set")
	}
	zero := PlaybackStats{Records: []ClusterRecord{{Length: 10, ArrivedAt: start}}}
	p.accountPlayback(&zero, transport.WatchOKPayload{BitrateMbps: 0}, start)
	if zero.Stalls != 0 || zero.StartupDelay != 0 {
		t.Fatal("zero bitrate accounted")
	}
}

func TestWithoutVerificationOption(t *testing.T) {
	book := transport.NewAddrBook()
	p, err := NewPlayer("U1", book, WithoutVerification())
	if err != nil {
		t.Fatal(err)
	}
	if p.verify {
		t.Fatal("WithoutVerification did not disable verification")
	}
	p2, err := NewPlayer("U1", book)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.verify {
		t.Fatal("verification should default on")
	}
}
