// Package snmp reproduces the paper's "SMNP statistics module": on every
// video server an agent samples the traffic of the node's adjacent links,
// and a poller inserts the resulting line utilizations into the
// limited-access database sub-module on a fixed interval (the paper suggests
// 1-2 minutes as "a reasonable interval compromising between the mutation
// rate of network characteristics and the imposed overhead").
//
// Two measurement sources are supported, mirroring the two execution planes:
// the network emulator exposes instantaneous link rates directly, while the
// live TCP plane exposes cumulative octet counters (the shape of real SNMP
// ifInOctets/ifOutOctets) from which a RateEstimator derives Mbps.
package snmp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dvod/internal/clock"
	"dvod/internal/db"
	"dvod/internal/topology"
)

// Source provides instantaneous link traffic in Mbps.
type Source interface {
	LinkUsedMbps(id topology.LinkID) (float64, error)
}

// OctetSource provides cumulative transferred octets per link, the raw
// counter shape real SNMP exposes.
type OctetSource interface {
	LinkOctets(id topology.LinkID) (uint64, error)
}

// Sample is one measurement of one link.
type Sample struct {
	ID       topology.LinkID
	UsedMbps float64
}

// Agent samples the links adjacent to one node. It holds a graph provider
// rather than a graph, so an elastic fleet's agents observe the current
// atomically-swapped topology view on every sample instead of the view that
// existed when the agent was built.
type Agent struct {
	node   topology.NodeID
	graph  func() *topology.Graph
	source Source
}

// NewAgent builds the agent for a node over a fixed graph.
func NewAgent(node topology.NodeID, g *topology.Graph, source Source) (*Agent, error) {
	if !g.HasNode(node) {
		return nil, fmt.Errorf("%w: %s", topology.ErrNodeUnknown, node)
	}
	return NewDynamicAgent(node, func() *topology.Graph { return g }, source)
}

// NewDynamicAgent builds the agent for a node over a graph provider —
// typically db.Graph, so topology churn is visible without rebuilding the
// agent. The node need not exist in every view; samples simply cover
// whatever links are adjacent in the view current at sample time.
func NewDynamicAgent(node topology.NodeID, graph func() *topology.Graph, source Source) (*Agent, error) {
	if graph == nil {
		return nil, errors.New("snmp agent: nil graph provider")
	}
	if source == nil {
		return nil, errors.New("snmp agent: nil source")
	}
	return &Agent{node: node, graph: graph, source: source}, nil
}

// Node returns the agent's node.
func (a *Agent) Node() topology.NodeID { return a.node }

// Sample measures every link adjacent to the agent's node in the current
// graph view.
func (a *Agent) Sample() ([]Sample, error) {
	g := a.graph()
	if !g.HasNode(a.node) {
		return nil, nil
	}
	adj := g.Adjacent(a.node)
	out := make([]Sample, 0, len(adj))
	for _, id := range adj {
		used, err := a.source.LinkUsedMbps(id)
		if err != nil {
			return nil, fmt.Errorf("sample %s: %w", id, err)
		}
		out = append(out, Sample{ID: id, UsedMbps: used})
	}
	return out, nil
}

// RateEstimator adapts an OctetSource to a Source by differentiating
// cumulative counters over wall (or virtual) time, exactly the way SNMP
// pollers compute line rates from ifInOctets deltas. The first observation
// of a link reports 0 Mbps (no baseline yet).
type RateEstimator struct {
	source OctetSource
	clk    clock.Clock

	mu   sync.Mutex
	prev map[topology.LinkID]octetPoint
}

type octetPoint struct {
	octets uint64
	at     time.Time
}

// NewRateEstimator builds an estimator over the counter source.
func NewRateEstimator(source OctetSource, clk clock.Clock) (*RateEstimator, error) {
	if source == nil {
		return nil, errors.New("rate estimator: nil source")
	}
	if clk == nil {
		return nil, errors.New("rate estimator: nil clock")
	}
	return &RateEstimator{
		source: source,
		clk:    clk,
		prev:   make(map[topology.LinkID]octetPoint),
	}, nil
}

// LinkUsedMbps implements Source.
func (e *RateEstimator) LinkUsedMbps(id topology.LinkID) (float64, error) {
	octets, err := e.source.LinkOctets(id)
	if err != nil {
		return 0, err
	}
	now := e.clk.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	p, seen := e.prev[id]
	e.prev[id] = octetPoint{octets: octets, at: now}
	if !seen {
		return 0, nil
	}
	dt := now.Sub(p.at).Seconds()
	if dt <= 0 {
		return 0, nil
	}
	if octets < p.octets {
		// Counter wrap or agent restart: report 0 for this interval, the
		// standard SNMP poller behaviour.
		return 0, nil
	}
	bits := float64(octets-p.octets) * 8
	return bits / dt / 1e6, nil
}

// PollerConfig parameterizes a Poller.
type PollerConfig struct {
	// Agents are the per-node agents to run.
	Agents []*Agent
	// DB receives the sampled link statistics.
	DB *db.DB
	// Clock drives intervals and timestamps.
	Clock clock.Clock
	// Interval between polls; the paper suggests 1-2 minutes. Zero
	// defaults to 90 seconds.
	Interval time.Duration
}

// Poller periodically runs every agent and upserts the samples into the
// database. Use PollOnce for deterministic (emulated-plane) operation or
// Start/Stop for a background loop on the live plane.
type Poller struct {
	cfg PollerConfig

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	mu     sync.Mutex
	agents []*Agent
	polls  int64
	errs   int64
}

// NewPoller validates the configuration and builds a poller.
func NewPoller(cfg PollerConfig) (*Poller, error) {
	if len(cfg.Agents) == 0 {
		return nil, errors.New("snmp poller: no agents")
	}
	if cfg.DB == nil {
		return nil, errors.New("snmp poller: nil db")
	}
	if cfg.Clock == nil {
		return nil, errors.New("snmp poller: nil clock")
	}
	if cfg.Interval == 0 {
		cfg.Interval = 90 * time.Second
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("snmp poller: negative interval %v", cfg.Interval)
	}
	return &Poller{
		cfg:    cfg,
		agents: append([]*Agent(nil), cfg.Agents...),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// AddAgent registers another agent with a running poller — a server joining
// the fleet brings its own SNMP agent along. Nil agents and duplicate nodes
// are rejected.
func (p *Poller) AddAgent(a *Agent) error {
	if a == nil {
		return errors.New("snmp poller: nil agent")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, have := range p.agents {
		if have.Node() == a.Node() {
			return fmt.Errorf("snmp poller: agent for %s already registered", a.Node())
		}
	}
	p.agents = append(p.agents, a)
	return nil
}

// RemoveAgent drops a node's agent (a drained server stops being polled).
// Unknown nodes are a no-op.
func (p *Poller) RemoveAgent(node topology.NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	keep := p.agents[:0]
	for _, a := range p.agents {
		if a.Node() != node {
			keep = append(keep, a)
		}
	}
	p.agents = keep
}

// PollOnce runs every agent once and writes all samples, stamped with the
// clock's current time. Agent errors are aggregated; successfully sampled
// links are still written.
func (p *Poller) PollOnce() error {
	now := p.cfg.Clock.Now()
	p.mu.Lock()
	agents := append([]*Agent(nil), p.agents...)
	p.mu.Unlock()
	var firstErr error
	for _, a := range agents {
		samples, err := a.Sample()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("agent %s: %w", a.Node(), err)
			}
			p.mu.Lock()
			p.errs++
			p.mu.Unlock()
			continue
		}
		for _, s := range samples {
			if err := p.cfg.DB.UpsertLinkStats(s.ID, s.UsedMbps, now); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	p.mu.Lock()
	p.polls++
	p.mu.Unlock()
	return firstErr
}

// Polls returns how many poll rounds have run.
func (p *Poller) Polls() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.polls
}

// Errors returns how many agent sampling failures occurred.
func (p *Poller) Errors() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.errs
}

// Start launches the background polling loop. The first poll runs after one
// interval. Call Stop to terminate and wait for exit.
func (p *Poller) Start() {
	p.startOnce.Do(func() {
		go p.loop()
	})
}

func (p *Poller) loop() {
	defer close(p.done)
	for {
		select {
		case <-p.cfg.Clock.After(p.cfg.Interval):
			_ = p.PollOnce() // sampling failures are visible via Errors()
		case <-p.stop:
			return
		}
	}
}

// Stop terminates the background loop and waits for it to exit. It is
// idempotent and safe whether or not Start was called.
func (p *Poller) Stop() {
	p.stopOnce.Do(func() {
		close(p.stop)
		// If Start never ran, mark the (never-launched) loop as done so
		// the wait below returns.
		p.startOnce.Do(func() { close(p.done) })
	})
	<-p.done
}
