package snmp

import (
	"errors"
	"math"
	"testing"
	"time"

	"dvod/internal/clock"
	"dvod/internal/db"
	"dvod/internal/grnet"
	"dvod/internal/netsim"
	"dvod/internal/topology"
)

var t0 = time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)

// fixture builds the GRNET backbone with a netsim network carrying the 8am
// background traffic, plus a DB.
func fixture(t *testing.T) (*topology.Graph, *netsim.Network, *db.DB) {
	t.Helper()
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New(g, t0)
	for _, row := range grnet.Table2() {
		id := topology.MakeLinkID(row.A, row.B)
		if err := n.SetBackground(id, row.TrafficMbps[0]); err != nil {
			t.Fatal(err)
		}
	}
	return g, n, db.New(g)
}

func TestNewAgentValidation(t *testing.T) {
	g, n, _ := fixture(t)
	if _, err := NewAgent("U99", g, n); !errors.Is(err, topology.ErrNodeUnknown) {
		t.Fatalf("unknown node error = %v", err)
	}
	if _, err := NewAgent(grnet.Patra, g, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestAgentSamplesAdjacentLinks(t *testing.T) {
	g, n, _ := fixture(t)
	a, err := NewAgent(grnet.Patra, g, n)
	if err != nil {
		t.Fatal(err)
	}
	if a.Node() != grnet.Patra {
		t.Fatalf("Node = %s", a.Node())
	}
	samples, err := a.Sample()
	if err != nil {
		t.Fatal(err)
	}
	// Patra has two links: to Athens (0.2 Mbps) and Ioannina (0.0001).
	if len(samples) != 2 {
		t.Fatalf("samples = %v", samples)
	}
	byID := map[topology.LinkID]float64{}
	for _, s := range samples {
		byID[s.ID] = s.UsedMbps
	}
	pa := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	if math.Abs(byID[pa]-0.2) > 1e-9 {
		t.Fatalf("Patra-Athens sample = %g, want 0.2", byID[pa])
	}
}

// errorSource fails for one link.
type errorSource struct {
	inner Source
	bad   topology.LinkID
}

func (s errorSource) LinkUsedMbps(id topology.LinkID) (float64, error) {
	if id == s.bad {
		return 0, errors.New("agent lost contact")
	}
	return s.inner.LinkUsedMbps(id)
}

func TestAgentSampleError(t *testing.T) {
	g, n, _ := fixture(t)
	bad := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	a, err := NewAgent(grnet.Patra, g, errorSource{inner: n, bad: bad})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Sample(); err == nil {
		t.Fatal("Sample swallowed source error")
	}
}

func TestPollOnceWritesDB(t *testing.T) {
	g, n, d := fixture(t)
	var agents []*Agent
	for _, node := range grnet.Nodes() {
		a, err := NewAgent(node, g, n)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	vc := clock.NewVirtual(t0)
	p, err := NewPoller(PollerConfig{Agents: agents, DB: d, Clock: vc, Interval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PollOnce(); err != nil {
		t.Fatalf("PollOnce: %v", err)
	}
	if p.Polls() != 1 || p.Errors() != 0 {
		t.Fatalf("polls/errors = %d/%d", p.Polls(), p.Errors())
	}
	// Every one of the 7 links has stats (each sampled by both endpoints).
	all := d.AllLinkStats()
	if len(all) != 7 {
		t.Fatalf("db has stats for %d links, want 7", len(all))
	}
	// The resulting DB snapshot reproduces the 8am utilization.
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pa := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	if u := snap.Utilization(pa); math.Abs(u-0.10) > 1e-9 {
		t.Fatalf("Patra-Athens utilization = %g, want 0.10", u)
	}
}

func TestPollOnceContinuesPastAgentError(t *testing.T) {
	g, n, d := fixture(t)
	bad := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	aBad, err := NewAgent(grnet.Patra, g, errorSource{inner: n, bad: bad})
	if err != nil {
		t.Fatal(err)
	}
	aGood, err := NewAgent(grnet.Heraklio, g, n)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPoller(PollerConfig{
		Agents: []*Agent{aBad, aGood}, DB: d, Clock: clock.NewVirtual(t0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PollOnce(); err == nil {
		t.Fatal("PollOnce hid the agent error")
	}
	if p.Errors() != 1 {
		t.Fatalf("Errors = %d, want 1", p.Errors())
	}
	// Heraklio's two links were still written.
	if len(d.AllLinkStats()) != 2 {
		t.Fatalf("db has %d links, want 2 from the healthy agent", len(d.AllLinkStats()))
	}
}

func TestNewPollerValidation(t *testing.T) {
	g, n, d := fixture(t)
	a, err := NewAgent(grnet.Patra, g, n)
	if err != nil {
		t.Fatal(err)
	}
	vc := clock.NewVirtual(t0)
	cases := []PollerConfig{
		{DB: d, Clock: vc},
		{Agents: []*Agent{a}, Clock: vc},
		{Agents: []*Agent{a}, DB: d},
		{Agents: []*Agent{a}, DB: d, Clock: vc, Interval: -time.Second},
	}
	for i, cfg := range cases {
		if _, err := NewPoller(cfg); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	// Zero interval defaults to 90s.
	p, err := NewPoller(PollerConfig{Agents: []*Agent{a}, DB: d, Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.Interval != 90*time.Second {
		t.Fatalf("default interval = %v", p.cfg.Interval)
	}
}

func TestPollerBackgroundLoop(t *testing.T) {
	g, n, d := fixture(t)
	a, err := NewAgent(grnet.Patra, g, n)
	if err != nil {
		t.Fatal(err)
	}
	vc := clock.NewVirtual(t0)
	p, err := NewPoller(PollerConfig{Agents: []*Agent{a}, DB: d, Clock: vc, Interval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.Start() // idempotent
	// Wait for the loop to arm its timer, then advance through 3 polls.
	for vc.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	for range 3 {
		vc.Advance(time.Minute)
		deadline := time.Now().Add(5 * time.Second)
		target := p.Polls()
		for p.Polls() == target && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		// Let the loop re-arm before advancing again.
		for vc.PendingTimers() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	p.Stop()
	p.Stop() // idempotent
	if p.Polls() < 3 {
		t.Fatalf("polls = %d, want ≥3", p.Polls())
	}
	if len(d.AllLinkStats()) != 2 {
		t.Fatalf("db has %d links, want Patra's 2", len(d.AllLinkStats()))
	}
}

func TestPollerStopWithoutStart(t *testing.T) {
	g, n, d := fixture(t)
	a, err := NewAgent(grnet.Patra, g, n)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPoller(PollerConfig{Agents: []*Agent{a}, DB: d, Clock: clock.NewVirtual(t0)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		p.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop without Start hung")
	}
}

// fakeOctets is a settable octet counter.
type fakeOctets struct{ octets map[topology.LinkID]uint64 }

func (f *fakeOctets) LinkOctets(id topology.LinkID) (uint64, error) {
	o, ok := f.octets[id]
	if !ok {
		return 0, errors.New("unknown link")
	}
	return o, nil
}

func TestRateEstimator(t *testing.T) {
	id := topology.LinkID("A--B")
	src := &fakeOctets{octets: map[topology.LinkID]uint64{id: 0}}
	vc := clock.NewVirtual(t0)
	e, err := NewRateEstimator(src, vc)
	if err != nil {
		t.Fatal(err)
	}
	// First sample: no baseline → 0.
	r, err := e.LinkUsedMbps(id)
	if err != nil || r != 0 {
		t.Fatalf("first sample = %g, %v", r, err)
	}
	// 1 MB in 8 seconds = 1 Mbps.
	src.octets[id] = 1_000_000
	vc.Advance(8 * time.Second)
	r, err = e.LinkUsedMbps(id)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1.0) > 1e-9 {
		t.Fatalf("rate = %g, want 1", r)
	}
	// Counter wrap/restart reports 0.
	src.octets[id] = 10
	vc.Advance(time.Second)
	r, err = e.LinkUsedMbps(id)
	if err != nil || r != 0 {
		t.Fatalf("wrap sample = %g, %v", r, err)
	}
	// Zero elapsed reports 0.
	src.octets[id] = 20
	r, err = e.LinkUsedMbps(id)
	if err != nil || r != 0 {
		t.Fatalf("zero-dt sample = %g, %v", r, err)
	}
	// Source error propagates.
	if _, err := e.LinkUsedMbps("other--link"); err == nil {
		t.Fatal("source error swallowed")
	}
}

func TestNewRateEstimatorValidation(t *testing.T) {
	if _, err := NewRateEstimator(nil, clock.Wall{}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewRateEstimator(&fakeOctets{}, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}
