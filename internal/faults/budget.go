package faults

import "sync"

// RetryBudget bounds how many retries (and hedges) a session may spend, in
// the token-bucket style of Finagle's retry budgets: the session starts with
// a small reserve, each success deposits a fraction of a token, and every
// retry withdraws a whole one. Under a total outage the reserve drains and
// retries stop — a thousand sessions each replaying their whole stream
// against a dead peer is exactly the retry storm this prevents — while under
// a transient blip the steady deposit keeps retries available indefinitely.
// All methods are safe for concurrent use.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	ratio  float64
}

// NewRetryBudget builds a budget with an initial reserve of min tokens (also
// the floor of the cap; values below 1 are raised to 1) and a deposit of
// ratio tokens per reported success (clamped to [0, 1]). The cap is twice
// the reserve, so a long healthy run cannot bank unlimited retries.
func NewRetryBudget(min int, ratio float64) *RetryBudget {
	if min < 1 {
		min = 1
	}
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	return &RetryBudget{tokens: float64(min), cap: float64(2 * min), ratio: ratio}
}

// OnSuccess deposits the per-success fraction, up to the cap.
func (b *RetryBudget) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
}

// TryRetry withdraws one token, reporting whether the retry may proceed.
func (b *RetryBudget) TryRetry() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the current reserve (for tests and logs).
func (b *RetryBudget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
