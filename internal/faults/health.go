package faults

import (
	"sync"

	"dvod/internal/topology"
)

// defaultHealthAlpha is the EWMA smoothing weight given to history; each new
// outcome contributes 1-alpha. At 0.8 a peer needs roughly three consecutive
// failures to cross a 0.5 score and three successes to fall back under it.
const defaultHealthAlpha = 0.8

// HealthScores tracks a per-peer exponentially weighted failure rate fed by
// the delivery path's fetch outcomes, and exposes it as the node-penalty hook
// the planner folds into the VRA's LVN link weights: a peer observed failing
// has every adjacent link's utilization raised by its score, so Dijkstra
// routes around flapping infrastructure before the breaker ever trips —
// equation (1)'s intent, driven by observed behaviour instead of SNMP alone.
// All methods are safe for concurrent use.
type HealthScores struct {
	alpha float64

	mu     sync.Mutex
	scores map[topology.NodeID]float64
}

// NewHealthScores builds a tracker; alpha outside (0, 1) uses the default.
func NewHealthScores(alpha float64) *HealthScores {
	if alpha <= 0 || alpha >= 1 {
		alpha = defaultHealthAlpha
	}
	return &HealthScores{alpha: alpha, scores: make(map[topology.NodeID]float64)}
}

// Report folds one fetch outcome into the peer's failure score.
func (h *HealthScores) Report(peer topology.NodeID, ok bool) {
	outcome := 0.0
	if !ok {
		outcome = 1.0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.scores[peer] = h.alpha*h.scores[peer] + (1-h.alpha)*outcome
}

// MarkFailed pins the peer's failure score to 1.0 — the event-driven path: a
// membership fail event lands here so the VRA's node penalty reflects a dead
// peer the moment failure is detected, instead of waiting for enough fetch
// failures to saturate the EWMA. Subsequent successful fetches (a recovered
// peer) decay the score back down through the normal Report path.
func (h *HealthScores) MarkFailed(peer topology.NodeID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.scores[peer] = 1.0
}

// Score returns the peer's failure rate in [0, 1] (0 for unseen peers).
func (h *HealthScores) Score(peer topology.NodeID) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.scores[peer]
}

// Penalty returns the function the planner's SetNodePenalty hook expects.
func (h *HealthScores) Penalty() func(topology.NodeID) float64 {
	return h.Score
}
