package faults

import (
	"sync"
	"time"

	"dvod/internal/clock"
	"dvod/internal/metrics"
	"dvod/internal/topology"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// Breaker states. The numeric values are exported on GET /metrics as the
// client.breaker_state.<peer> gauge.
const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = 0
	// BreakerOpen: requests to the peer are refused until the cooldown
	// elapses.
	BreakerOpen BreakerState = 1
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request is
	// allowed through. Its outcome closes or re-opens the breaker.
	BreakerHalfOpen BreakerState = 2
)

// String renders the state for logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes a BreakerSet.
type BreakerConfig struct {
	// Failures is how many consecutive failures trip a closed breaker open
	// (default 3).
	Failures int
	// Cooldown is how long an open breaker refuses requests before allowing
	// a half-open probe (default 250 ms).
	Cooldown time.Duration
	// Clock times the cooldown; nil defaults to the wall clock.
	Clock clock.Clock
	// Metrics optionally exports per-peer state gauges named
	// "client.breaker_state.<peer>" (0 closed, 1 open, 2 half-open). Nil
	// disables the export.
	Metrics *metrics.Registry
}

// BreakerSet holds one circuit breaker per peer the delivery path fetches
// from. A peer that keeps failing is cut off for a cooldown instead of being
// retried on every cluster, and re-admitted through a single probe request —
// the classic closed/open/half-open automaton. All methods are safe for
// concurrent use.
type BreakerSet struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[topology.NodeID]*breaker
}

type breaker struct {
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped open
	probing  bool      // a half-open probe is in flight
}

// NewBreakerSet builds a breaker set, applying config defaults.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	if cfg.Failures <= 0 {
		cfg.Failures = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 250 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	return &BreakerSet{cfg: cfg, m: make(map[topology.NodeID]*breaker)}
}

func (s *BreakerSet) get(peer topology.NodeID) *breaker {
	b, ok := s.m[peer]
	if !ok {
		b = &breaker{}
		s.m[peer] = b
	}
	return b
}

// Allow reports whether a request to the peer may proceed right now. In the
// half-open state it admits exactly one probe; callers that got true must
// Report the outcome, or the breaker stays half-open with its probe slot
// taken.
func (s *BreakerSet) Allow(peer topology.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(peer)
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if s.cfg.Clock.Now().Sub(b.openedAt) < s.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		s.export(peer, b)
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Report records a request outcome for the peer and moves its breaker.
func (s *BreakerSet) Report(peer topology.NodeID, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(peer)
	switch b.state {
	case BreakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= s.cfg.Failures {
			b.state = BreakerOpen
			b.openedAt = s.cfg.Clock.Now()
			s.export(peer, b)
		}
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.state = BreakerClosed
			b.failures = 0
		} else {
			b.state = BreakerOpen
			b.openedAt = s.cfg.Clock.Now()
		}
		s.export(peer, b)
	case BreakerOpen:
		// A late result from before the trip; the cooldown governs.
	}
}

// State returns the peer's current breaker position (cooldown expiry is
// observed lazily by Allow, so an open breaker past its cooldown still
// reports open until someone asks to send).
func (s *BreakerSet) State(peer topology.NodeID) BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[peer]
	if !ok {
		return BreakerClosed
	}
	return b.state
}

// Open returns the peers whose breakers are refusing requests right now —
// the exclusion set the planner should skip. Peers whose cooldown has
// elapsed are not listed (their next request is the half-open probe).
func (s *BreakerSet) Open() map[topology.NodeID]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out map[topology.NodeID]bool
	now := s.cfg.Clock.Now()
	for peer, b := range s.m {
		refusing := false
		switch b.state {
		case BreakerOpen:
			refusing = now.Sub(b.openedAt) < s.cfg.Cooldown
		case BreakerHalfOpen:
			refusing = b.probing
		}
		if refusing {
			if out == nil {
				out = make(map[topology.NodeID]bool)
			}
			out[peer] = true
		}
	}
	return out
}

// export publishes the peer's state gauge; callers hold mu.
func (s *BreakerSet) export(peer topology.NodeID, b *breaker) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Gauge("client.breaker_state." + string(peer)).Set(float64(b.state))
	}
}
