// Package faults is the deterministic fault-injection layer of the VoD
// service, plus the self-healing primitives the delivery plane defends
// itself with.
//
// Injection side: a declarative Plan schedules faults ("at T, fail X for D")
// — link flaps and partitions, peer death and byte-stalls, slow / stalling /
// short-reading disks — and an Injector armed with the plan applies them to
// the running stack through small hooks: DialError and WrapStream on the
// live transport path, ReadInterceptor on disk arrays, SyncNetwork on the
// emulated netsim plane. The plan is seed-pinned: the sequence of
// activation/deactivation events (Events) is a pure function of the plan, so
// the same plan and seed reproduce the identical event sequence run after
// run — a flaky production failure becomes a regression test.
//
// Defense side (the other files of this package): jittered exponential
// Backoff, per-peer circuit breakers (BreakerSet), per-session RetryBudget,
// the hedging LatencyTracker, and HealthScores feeding observed peer failure
// rates back into the VRA's link weights.
package faults

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvod/internal/clock"
	"dvod/internal/disk"
	"dvod/internal/metrics"
	"dvod/internal/netsim"
	"dvod/internal/topology"
)

// Kind names a fault class.
type Kind string

// The fault taxonomy (see DESIGN.md § "Failure model").
const (
	// KindLinkDown takes a network link down: live streams whose route
	// crosses it are cut, new dials across it fail, and the emulated plane's
	// link capacity drops to zero (SyncNetwork).
	KindLinkDown Kind = "link.down"
	// KindPeerDown kills a peer from the network's point of view: its live
	// streams are cut and new dials to it fail.
	KindPeerDown Kind = "peer.down"
	// KindPeerStall freezes a peer's streams: bytes stop moving for the
	// fault window, then flow resumes — the gray failure breakers and
	// hedging exist for.
	KindPeerStall Kind = "peer.stall"
	// KindDiskSlow adds Delay of service latency to every block read on the
	// node's array.
	KindDiskSlow Kind = "disk.slow"
	// KindDiskStall blocks every read on the node's array until the fault
	// window closes.
	KindDiskStall Kind = "disk.stall"
	// KindDiskShortRead makes reads on the node's array return truncated
	// data (a deterministic, seed-derived fraction of the block), which the
	// layer above must detect and fail.
	KindDiskShortRead Kind = "disk.shortread"
)

// Event is one scheduled fault: at offset At from injector start, apply Kind
// to the target for duration For.
type Event struct {
	// At is the activation offset from Injector.Start.
	At time.Duration `json:"at"`
	// For is how long the fault stays active.
	For time.Duration `json:"for"`
	// Kind is the fault class.
	Kind Kind `json:"kind"`
	// Node targets peer.* and disk.* faults.
	Node topology.NodeID `json:"node,omitempty"`
	// Link targets link.down faults.
	Link topology.LinkID `json:"link,omitempty"`
	// Delay is the added per-read latency of disk.slow faults.
	Delay time.Duration `json:"delay,omitempty"`
}

// Target renders the event's subject for logs and the event sequence.
func (e Event) Target() string {
	if e.Link != "" {
		return string(e.Link)
	}
	return string(e.Node)
}

// Plan is a declarative fault schedule. Build it with the helper methods (or
// literal Events) and hand it to NewInjector.
type Plan struct {
	Events []Event `json:"events"`
}

// FlapLink schedules a link outage: at offset at, link goes down for dur.
func (p *Plan) FlapLink(at, dur time.Duration, link topology.LinkID) *Plan {
	p.Events = append(p.Events, Event{At: at, For: dur, Kind: KindLinkDown, Link: link})
	return p
}

// FailPeer schedules a peer outage.
func (p *Plan) FailPeer(at, dur time.Duration, node topology.NodeID) *Plan {
	p.Events = append(p.Events, Event{At: at, For: dur, Kind: KindPeerDown, Node: node})
	return p
}

// StallPeer schedules a byte-stall on a peer's streams.
func (p *Plan) StallPeer(at, dur time.Duration, node topology.NodeID) *Plan {
	p.Events = append(p.Events, Event{At: at, For: dur, Kind: KindPeerStall, Node: node})
	return p
}

// SlowDisk schedules added per-read latency on a node's array.
func (p *Plan) SlowDisk(at, dur time.Duration, node topology.NodeID, perRead time.Duration) *Plan {
	p.Events = append(p.Events, Event{At: at, For: dur, Kind: KindDiskSlow, Node: node, Delay: perRead})
	return p
}

// StallDisk schedules a full read stall on a node's array.
func (p *Plan) StallDisk(at, dur time.Duration, node topology.NodeID) *Plan {
	p.Events = append(p.Events, Event{At: at, For: dur, Kind: KindDiskStall, Node: node})
	return p
}

// ShortReadDisk schedules truncated reads on a node's array.
func (p *Plan) ShortReadDisk(at, dur time.Duration, node topology.NodeID) *Plan {
	p.Events = append(p.Events, Event{At: at, For: dur, Kind: KindDiskShortRead, Node: node})
	return p
}

// Validate checks every event is well-formed.
func (p Plan) Validate() error {
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d: negative offset %v", i, e.At)
		}
		if e.For <= 0 {
			return fmt.Errorf("faults: event %d: non-positive duration %v", i, e.For)
		}
		switch e.Kind {
		case KindLinkDown:
			if e.Link == "" {
				return fmt.Errorf("faults: event %d: %s needs a link", i, e.Kind)
			}
		case KindPeerDown, KindPeerStall, KindDiskStall, KindDiskShortRead:
			if e.Node == "" {
				return fmt.Errorf("faults: event %d: %s needs a node", i, e.Kind)
			}
		case KindDiskSlow:
			if e.Node == "" {
				return fmt.Errorf("faults: event %d: %s needs a node", i, e.Kind)
			}
			if e.Delay <= 0 {
				return fmt.Errorf("faults: event %d: disk.slow needs a positive delay", i)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %q", i, e.Kind)
		}
	}
	return nil
}

// LogEntry is one row of the injector's deterministic event sequence: the
// activation (Active=true) or deactivation of one plan event.
type LogEntry struct {
	// Seq is the entry's position in the sequence.
	Seq int `json:"seq"`
	// At is the offset from injector start.
	At time.Duration `json:"at"`
	// Kind and Target identify the fault.
	Kind   Kind   `json:"kind"`
	Target string `json:"target"`
	// Active is true for activation, false for deactivation.
	Active bool `json:"active"`
}

// ErrInjected is the sentinel every injected failure wraps, so callers (and
// tests) can tell injected faults from organic ones.
var ErrInjected = errors.New("injected fault")

// FaultError is the error surfaced by an injected dial refusal, stream cut,
// or disk failure.
type FaultError struct {
	Kind   Kind
	Target string
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("injected %s on %s", e.Kind, e.Target)
}

// Unwrap lets errors.Is(err, ErrInjected) match.
func (e *FaultError) Unwrap() error { return ErrInjected }

// Injector arms a validated Plan against a clock and applies it through the
// hook methods. One injector serves a whole deployment: every server wraps
// its peer dials and disk array with the same injector, so a single plan
// describes the whole system's failure schedule. All methods are safe for
// concurrent use.
type Injector struct {
	plan     []Event
	seed     int64
	clk      clock.Clock
	reg      *metrics.Registry
	injected *metrics.Counter
	log      []LogEntry

	mu      sync.Mutex
	started bool
	start   time.Time
	stop    chan struct{}
	rng     *rand.Rand
	streams map[*faultyStream]struct{}
	// netApplied tracks which link.down plan entries are currently applied
	// to a synced netsim network, keyed by plan index.
	netApplied map[int]bool
}

// NewInjector validates the plan and builds an injector. The seed pins every
// randomized choice the injector makes (short-read truncation points), and
// the clock decides which plane it runs in: clock.Wall for live TCP
// deployments, a clock.Virtual shared with netsim for the emulated plane.
// reg receives the faults.injected_total counter; nil allocates a private
// registry.
func NewInjector(plan Plan, seed int64, clk clock.Clock, reg *metrics.Registry) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if clk == nil {
		clk = clock.Wall{}
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	events := append([]Event(nil), plan.Events...)
	i := &Injector{
		plan:       events,
		seed:       seed,
		clk:        clk,
		reg:        reg,
		injected:   reg.Counter("faults.injected_total"),
		log:        materializeLog(events),
		stop:       make(chan struct{}),
		rng:        rand.New(rand.NewSource(seed)),
		streams:    make(map[*faultyStream]struct{}),
		netApplied: make(map[int]bool),
	}
	return i, nil
}

// materializeLog derives the deterministic activation/deactivation sequence
// from the plan: two entries per event, ordered by instant (ties broken by
// plan position, activations before deactivations). It depends on nothing
// but the plan, which is what makes a pinned seed reproduce the identical
// sequence.
func materializeLog(events []Event) []LogEntry {
	type raw struct {
		at     time.Duration
		idx    int
		active bool
	}
	rows := make([]raw, 0, 2*len(events))
	for idx, e := range events {
		rows = append(rows, raw{at: e.At, idx: idx, active: true})
		rows = append(rows, raw{at: e.At + e.For, idx: idx, active: false})
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].at != rows[b].at {
			return rows[a].at < rows[b].at
		}
		if rows[a].active != rows[b].active {
			return rows[a].active
		}
		return rows[a].idx < rows[b].idx
	})
	out := make([]LogEntry, len(rows))
	for seq, r := range rows {
		e := events[r.idx]
		out[seq] = LogEntry{Seq: seq, At: r.at, Kind: e.Kind, Target: e.Target(), Active: r.active}
	}
	return out
}

// Start anchors the plan at the clock's current instant and arms the stream
// cutter that breaks live connections when a link.down or peer.down fault
// activates. It is an error to start twice.
func (i *Injector) Start() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.started {
		return errors.New("faults: injector already started")
	}
	i.started = true
	i.start = i.clk.Now()
	go i.cutLoop(i.start)
	return nil
}

// Stop disarms the injector: scheduled cuts stop firing and no further
// faults are injected. Idempotent.
func (i *Injector) Stop() {
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.started {
		return
	}
	select {
	case <-i.stop:
	default:
		close(i.stop)
	}
}

// stopped reports whether Stop has been called.
func (i *Injector) stopped() bool {
	select {
	case <-i.stop:
		return true
	default:
		return false
	}
}

// Events returns the deterministic activation/deactivation sequence derived
// from the plan (available before Start; offsets are relative to it).
func (i *Injector) Events() []LogEntry {
	return append([]LogEntry(nil), i.log...)
}

// Seed returns the pinned seed.
func (i *Injector) Seed() int64 { return i.seed }

// Registry returns the registry holding faults.injected_total.
func (i *Injector) Registry() *metrics.Registry { return i.reg }

// InjectedTotal reports how many faults have actually been injected so far
// (dial refusals, stream cuts, stalls, disk faults) — distinct from the plan
// length: a scheduled fault that nothing touches injects nothing.
func (i *Injector) InjectedTotal() int64 { return i.injected.Value() }

// elapsed returns the plan offset of the clock's current instant, and
// whether the injector is running (started and not stopped).
func (i *Injector) elapsed() (time.Duration, bool) {
	i.mu.Lock()
	started, start := i.started, i.start
	i.mu.Unlock()
	if !started || i.stopped() {
		return 0, false
	}
	return i.clk.Now().Sub(start), true
}

// activeEvent returns the first plan event matching m that is active at the
// current instant.
func (i *Injector) activeEvent(m func(Event) bool) (Event, bool) {
	el, running := i.elapsed()
	if !running {
		return Event{}, false
	}
	for _, e := range i.plan {
		if el >= e.At && el < e.At+e.For && m(e) {
			return e, true
		}
	}
	return Event{}, false
}

// remaining returns how long the event stays active from the current instant.
func (i *Injector) remaining(e Event) time.Duration {
	el, running := i.elapsed()
	if !running {
		return 0
	}
	r := e.At + e.For - el
	if r < 0 {
		r = 0
	}
	return r
}

// pathDown matches faults that sever a route to peer: the peer itself being
// down, or any traversed link being down.
func pathDown(peer topology.NodeID, path []topology.LinkID) func(Event) bool {
	return func(e Event) bool {
		switch e.Kind {
		case KindPeerDown:
			return e.Node == peer
		case KindLinkDown:
			for _, l := range path {
				if l == e.Link {
					return true
				}
			}
		}
		return false
	}
}

// DialError reports the fault that must refuse a new connection to peer over
// the route crossing path, or nil when none is active. Callers check it
// before dialing.
func (i *Injector) DialError(peer topology.NodeID, path []topology.LinkID) error {
	e, ok := i.activeEvent(pathDown(peer, path))
	if !ok {
		return nil
	}
	i.injected.Inc()
	return &FaultError{Kind: e.Kind, Target: e.Target()}
}

// WrapStream wraps a live connection's byte stream with the injector: while
// a peer.down or link.down fault covering the route is active the stream is
// severed (including reads already blocked in the kernel — the cutter closes
// the underlying connection at the activation instant), and a peer.stall
// fault freezes reads and writes until its window closes. The returned
// stream must be used in place of rw, and its Close must be called so the
// injector can forget it.
func (i *Injector) WrapStream(peer topology.NodeID, path []topology.LinkID, rw io.ReadWriteCloser) io.ReadWriteCloser {
	f := &faultyStream{inj: i, peer: peer, path: append([]topology.LinkID(nil), path...), rw: rw}
	i.mu.Lock()
	i.streams[f] = struct{}{}
	i.mu.Unlock()
	return f
}

// forget drops a closed stream from the cut set.
func (i *Injector) forget(f *faultyStream) {
	i.mu.Lock()
	delete(i.streams, f)
	i.mu.Unlock()
}

// cutLoop waits for each link.down / peer.down activation and severs the
// live streams its fault covers, so reads blocked mid-cluster break at the
// scheduled instant rather than at the next I/O boundary.
func (i *Injector) cutLoop(start time.Time) {
	type cut struct {
		at time.Duration
		e  Event
	}
	var cuts []cut
	for _, e := range i.plan {
		if e.Kind == KindLinkDown || e.Kind == KindPeerDown {
			cuts = append(cuts, cut{at: e.At, e: e})
		}
	}
	sort.SliceStable(cuts, func(a, b int) bool { return cuts[a].at < cuts[b].at })
	for _, c := range cuts {
		wait := start.Add(c.at).Sub(i.clk.Now())
		if wait > 0 {
			select {
			case <-i.clk.After(wait):
			case <-i.stop:
				return
			}
		}
		if i.stopped() {
			return
		}
		i.cutMatching(c.e)
	}
}

// cutMatching severs every registered stream the event's fault covers.
func (i *Injector) cutMatching(e Event) {
	i.mu.Lock()
	victims := make([]*faultyStream, 0, len(i.streams))
	for f := range i.streams {
		if pathDown(f.peer, f.path)(e) {
			victims = append(victims, f)
		}
	}
	i.mu.Unlock()
	for _, f := range victims {
		if f.cut.CompareAndSwap(false, true) {
			i.injected.Inc()
			_ = f.rw.Close()
		}
	}
}

// ReadInterceptor returns the disk-fault hook for the node's array: install
// it with Array.SetReadInterceptor. disk.slow sleeps the configured delay
// (on the injector's clock), disk.stall sleeps out the fault window, and
// disk.shortread truncates the read at a seed-derived point.
func (i *Injector) ReadInterceptor(node topology.NodeID) disk.ReadInterceptor {
	return func(id disk.BlockID) disk.ReadFault {
		// Stall first: a stalled disk answers (slowly) rather than failing.
		if e, ok := i.activeEvent(func(e Event) bool {
			return e.Kind == KindDiskStall && e.Node == node
		}); ok {
			i.injected.Inc()
			i.clk.Sleep(i.remaining(e))
		}
		if e, ok := i.activeEvent(func(e Event) bool {
			return e.Kind == KindDiskSlow && e.Node == node
		}); ok {
			i.injected.Inc()
			i.clk.Sleep(e.Delay)
		}
		if _, ok := i.activeEvent(func(e Event) bool {
			return e.Kind == KindDiskShortRead && e.Node == node
		}); ok {
			i.injected.Inc()
			i.mu.Lock()
			frac := 0.25 + 0.5*i.rng.Float64()
			i.mu.Unlock()
			return disk.ReadFault{ShortFraction: frac}
		}
		return disk.ReadFault{}
	}
}

// SyncNetwork applies the plan's link.down state to an emulated network at
// its current instant: links whose fault window covers n.Now() go down,
// links whose window has closed come back. The emulated plane has no
// background goroutines, so the experiment loop calls this after each
// advance; the injector and network must share the same virtual clock
// timeline (Start the injector at the network's start instant).
func (i *Injector) SyncNetwork(n *netsim.Network) error {
	el, running := i.elapsed()
	if !running {
		return nil
	}
	for idx, e := range i.plan {
		if e.Kind != KindLinkDown {
			continue
		}
		active := el >= e.At && el < e.At+e.For
		i.mu.Lock()
		applied := i.netApplied[idx]
		i.mu.Unlock()
		if active == applied {
			continue
		}
		if err := n.SetLinkDown(e.Link, active); err != nil {
			return err
		}
		i.mu.Lock()
		i.netApplied[idx] = active
		i.mu.Unlock()
		if active {
			i.injected.Inc()
		}
	}
	return nil
}

// faultyStream is the injector's wrapper around one live connection.
type faultyStream struct {
	inj  *Injector
	peer topology.NodeID
	path []topology.LinkID
	rw   io.ReadWriteCloser
	cut  atomic.Bool
}

// gate blocks through stall windows and severs the stream when a covering
// down fault is active (covers streams opened before activation whose next
// I/O lands inside the window; blocked I/O is handled by the cut loop).
func (f *faultyStream) gate() error {
	if f.cut.Load() {
		return &FaultError{Kind: KindPeerDown, Target: string(f.peer)}
	}
	if e, ok := f.inj.activeEvent(pathDown(f.peer, f.path)); ok {
		if f.cut.CompareAndSwap(false, true) {
			f.inj.injected.Inc()
			_ = f.rw.Close()
		}
		return &FaultError{Kind: e.Kind, Target: e.Target()}
	}
	// Stalls freeze the stream but do not break it.
	for {
		e, ok := f.inj.activeEvent(func(e Event) bool {
			return e.Kind == KindPeerStall && e.Node == f.peer
		})
		if !ok {
			return nil
		}
		f.inj.injected.Inc()
		f.inj.clk.Sleep(f.inj.remaining(e))
	}
}

func (f *faultyStream) Read(p []byte) (int, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	return f.rw.Read(p)
}

func (f *faultyStream) Write(p []byte) (int, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	return f.rw.Write(p)
}

func (f *faultyStream) Close() error {
	f.inj.forget(f)
	return f.rw.Close()
}

// SetReadDeadline forwards deadline support so transport.Conn idle timeouts
// keep working through the wrapper.
func (f *faultyStream) SetReadDeadline(t time.Time) error {
	if d, ok := f.rw.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}
