package faults

import (
	"math/rand"
	"testing"
	"time"

	"dvod/internal/clock"
	"dvod/internal/metrics"
)

func TestBackoffGrowthAndJitterBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	bo := NewBackoff(base, max, 2, 1)
	ceil := float64(base)
	for i := 0; i < 8; i++ {
		d := bo.Next()
		if float64(d) < ceil/2 || float64(d) > ceil {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d,
				time.Duration(ceil/2), time.Duration(ceil))
		}
		ceil *= 2
		if ceil > float64(max) {
			ceil = float64(max)
		}
	}
	if got := bo.Attempt(); got != 8 {
		t.Fatalf("attempts = %d, want 8", got)
	}
	bo.Reset()
	if d := bo.Next(); d > base {
		t.Fatalf("post-reset delay %v exceeds base %v", d, base)
	}
}

func TestBackoffSeedPinned(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		bo := NewBackoff(time.Millisecond, 50*time.Millisecond, 2, seed)
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = bo.Next()
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := 100 * time.Millisecond
	for i := 0; i < 100; i++ {
		j := Jitter(d, 0.25, rng)
		if j < 75*time.Millisecond || j > 125*time.Millisecond {
			t.Fatalf("jittered %v outside ±25%% of %v", j, d)
		}
	}
	if j := Jitter(d, 0, rng); j != d {
		t.Fatalf("zero fraction changed the interval: %v", j)
	}
	if j := Jitter(d, 0.5, nil); j != d {
		t.Fatalf("nil rng changed the interval: %v", j)
	}
}

func TestBreakerAutomaton(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	reg := metrics.NewRegistry()
	s := NewBreakerSet(BreakerConfig{Failures: 3, Cooldown: 100 * time.Millisecond, Clock: vc, Metrics: reg})

	// Closed: failures below the threshold keep requests flowing.
	if !s.Allow("B") {
		t.Fatal("closed breaker refused")
	}
	s.Report("B", false)
	s.Report("B", false)
	if s.State("B") != BreakerClosed {
		t.Fatalf("state after 2 failures = %v", s.State("B"))
	}
	// A success resets the consecutive-failure count.
	s.Report("B", true)
	s.Report("B", false)
	s.Report("B", false)
	if s.State("B") != BreakerClosed {
		t.Fatal("success did not reset the failure count")
	}
	// The third consecutive failure trips it open.
	s.Report("B", false)
	if s.State("B") != BreakerOpen {
		t.Fatalf("state after trip = %v", s.State("B"))
	}
	if g := reg.Snapshot().Gauges["client.breaker_state.B"]; g != float64(BreakerOpen) {
		t.Fatalf("exported gauge = %v, want %v", g, float64(BreakerOpen))
	}
	if s.Allow("B") {
		t.Fatal("open breaker allowed inside cooldown")
	}
	if open := s.Open(); !open["B"] {
		t.Fatalf("Open() = %v, want B refusing", open)
	}

	// Cooldown elapsed: no longer listed as refusing; the first Allow is the
	// single half-open probe, the second must wait for its outcome.
	vc.Advance(101 * time.Millisecond)
	if open := s.Open(); open["B"] {
		t.Fatal("cooldown-elapsed breaker still listed as refusing")
	}
	if !s.Allow("B") {
		t.Fatal("half-open probe refused")
	}
	if s.State("B") != BreakerHalfOpen {
		t.Fatalf("state during probe = %v", s.State("B"))
	}
	if s.Allow("B") {
		t.Fatal("second concurrent probe allowed")
	}
	// A failed probe re-opens for a fresh cooldown.
	s.Report("B", false)
	if s.State("B") != BreakerOpen || s.Allow("B") {
		t.Fatal("failed probe did not re-open the breaker")
	}
	// Next cooldown, successful probe closes it.
	vc.Advance(101 * time.Millisecond)
	if !s.Allow("B") {
		t.Fatal("second probe refused")
	}
	s.Report("B", true)
	if s.State("B") != BreakerClosed {
		t.Fatalf("state after successful probe = %v", s.State("B"))
	}
	if !s.Allow("B") {
		t.Fatal("closed breaker refused after recovery")
	}
	if g := reg.Snapshot().Gauges["client.breaker_state.B"]; g != float64(BreakerClosed) {
		t.Fatalf("exported gauge = %v, want %v", g, float64(BreakerClosed))
	}
}

func TestRetryBudget(t *testing.T) {
	b := NewRetryBudget(3, 0.1)
	if got := b.Tokens(); got != 3 {
		t.Fatalf("initial tokens = %v", got)
	}
	for i := 0; i < 3; i++ {
		if !b.TryRetry() {
			t.Fatalf("retry %d refused with reserve left", i)
		}
	}
	if b.TryRetry() {
		t.Fatal("retry allowed with drained reserve")
	}
	// Eleven successes bank a whole token (eleven, not ten: 10 × 0.1 sums
	// just under 1.0 in floating point).
	for i := 0; i < 11; i++ {
		b.OnSuccess()
	}
	if !b.TryRetry() {
		t.Fatal("deposited token not spendable")
	}
	// The cap is twice the reserve.
	for i := 0; i < 1000; i++ {
		b.OnSuccess()
	}
	if got := b.Tokens(); got != 6 {
		t.Fatalf("capped tokens = %v, want 6", got)
	}
	// Degenerate reserves are raised to one token.
	if got := NewRetryBudget(0, 0.1).Tokens(); got != 1 {
		t.Fatalf("floor tokens = %v, want 1", got)
	}
}

func TestLatencyTrackerDeadline(t *testing.T) {
	tr := NewLatencyTracker(0)
	if got := tr.Deadline(); got != 10*time.Millisecond {
		t.Fatalf("default floor = %v", got)
	}
	// Below minHedgeSamples the estimate is not trusted.
	for i := 0; i < minHedgeSamples-1; i++ {
		tr.Observe(50 * time.Millisecond)
	}
	if got := tr.Deadline(); got != 10*time.Millisecond {
		t.Fatalf("deadline before enough samples = %v, want floor", got)
	}
	// One more sample and the P99 (the window max here) takes over.
	tr.Observe(50 * time.Millisecond)
	if got := tr.Deadline(); got != 50*time.Millisecond {
		t.Fatalf("deadline = %v, want 50ms", got)
	}
	// A fast window never hedges below the floor.
	fast := NewLatencyTracker(20 * time.Millisecond)
	for i := 0; i < 2*latencyWindow; i++ {
		fast.Observe(time.Millisecond)
	}
	if got := fast.Deadline(); got != 20*time.Millisecond {
		t.Fatalf("fast-window deadline = %v, want floor 20ms", got)
	}
	// The window slides: old outliers age out.
	for i := 0; i < latencyWindow; i++ {
		tr.Observe(time.Millisecond)
	}
	if got := tr.Deadline(); got != 10*time.Millisecond {
		t.Fatalf("deadline after outlier aged out = %v, want floor", got)
	}
}

func TestHealthScoresEWMA(t *testing.T) {
	h := NewHealthScores(0.8)
	if got := h.Score("B"); got != 0 {
		t.Fatalf("unseen peer score = %v", got)
	}
	h.Report("B", false)
	h.Report("B", false)
	h.Report("B", false)
	want := 1 - 0.8*0.8*0.8 // 0.488
	if got := h.Score("B"); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("score after 3 failures = %v, want %v", got, want)
	}
	// Successes decay it back down.
	for i := 0; i < 10; i++ {
		h.Report("B", true)
	}
	if got := h.Score("B"); got >= 0.1 {
		t.Fatalf("score after recovery = %v, want < 0.1", got)
	}
	// The penalty hook is the score itself.
	if h.Penalty()("B") != h.Score("B") {
		t.Fatal("Penalty() disagrees with Score()")
	}
}
