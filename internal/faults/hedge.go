package faults

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent samples a LatencyTracker keeps.
const latencyWindow = 128

// minHedgeSamples is how many samples must accumulate before the tracker
// trusts its percentile estimate over the configured floor.
const minHedgeSamples = 16

// LatencyTracker derives the hedging deadline for cluster fetches from a
// sliding window of observed fetch latencies: a fetch still unanswered past
// the window's P99 is almost certainly stuck (a stalled peer, a dying
// connection), so racing a second replica then — and only then — buys tail
// latency without doubling steady-state load. All methods are safe for
// concurrent use.
type LatencyTracker struct {
	floor time.Duration

	mu      sync.Mutex
	samples [latencyWindow]time.Duration
	n       int // total observations (ring write position = n % latencyWindow)
}

// NewLatencyTracker builds a tracker whose deadline never drops below floor
// (non-positive floors default to 10 ms, so sub-millisecond LAN fetches do
// not hedge every request).
func NewLatencyTracker(floor time.Duration) *LatencyTracker {
	if floor <= 0 {
		floor = 10 * time.Millisecond
	}
	return &LatencyTracker{floor: floor}
}

// Observe records one successful fetch's latency.
func (t *LatencyTracker) Observe(d time.Duration) {
	if d < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples[t.n%latencyWindow] = d
	t.n++
}

// Deadline returns the current hedge deadline: the window's P99 (never below
// the floor). With fewer than minHedgeSamples observations it returns the
// floor — hedging conservatively until the estimate means something.
func (t *LatencyTracker) Deadline() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < minHedgeSamples {
		return t.floor
	}
	size := t.n
	if size > latencyWindow {
		size = latencyWindow
	}
	sorted := make([]time.Duration, size)
	copy(sorted, t.samples[:size])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (size*99 + 99) / 100 // ceil(0.99·size), 1-based rank
	if idx > size {
		idx = size
	}
	p99 := sorted[idx-1]
	if p99 < t.floor {
		return t.floor
	}
	return p99
}

// Samples reports how many latencies have been observed.
func (t *LatencyTracker) Samples() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
