package faults

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff produces jittered exponential retry delays: the nth delay is drawn
// uniformly from [base·factor^n/2, base·factor^n], capped at max. The lower
// half-window jitter ("equal jitter") keeps retries spread out so a burst of
// failures does not resynchronize into a retry storm, while still growing
// geometrically so a persistent fault backs callers off. All methods are safe
// for concurrent use; concurrent callers share one attempt sequence.
type Backoff struct {
	base   time.Duration
	max    time.Duration
	factor float64

	mu      sync.Mutex
	rng     *rand.Rand
	attempt int
}

// NewBackoff builds a backoff schedule. base must be positive; max below base
// is raised to base; factor below 1 is raised to 2 (the conventional
// doubling). The seed pins the jitter sequence so retry timing is
// reproducible under a pinned fault plan.
func NewBackoff(base, max time.Duration, factor float64, seed int64) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	if factor < 1 {
		factor = 2
	}
	return &Backoff{
		base:   base,
		max:    max,
		factor: factor,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Next returns the delay before the next retry and advances the schedule.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	ceil := float64(b.base)
	for i := 0; i < b.attempt; i++ {
		ceil *= b.factor
		if ceil >= float64(b.max) {
			ceil = float64(b.max)
			break
		}
	}
	b.attempt++
	half := ceil / 2
	d := time.Duration(half + b.rng.Float64()*half)
	if d > b.max {
		d = b.max
	}
	if d <= 0 {
		d = b.base
	}
	return d
}

// Reset rewinds the schedule to the first attempt (call after a success, so
// the next failure starts from the base delay again).
func (b *Backoff) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.attempt = 0
}

// Attempt reports how many delays have been handed out since the last Reset.
func (b *Backoff) Attempt() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Jitter spreads a periodic interval by ±fraction (clamped to [0, 1]) using
// the provided rng. Periodic loops (heartbeats, pollers) use it so a fleet of
// nodes started together does not fire in lockstep forever.
func Jitter(d time.Duration, fraction float64, rng *rand.Rand) time.Duration {
	if d <= 0 || fraction <= 0 || rng == nil {
		return d
	}
	if fraction > 1 {
		fraction = 1
	}
	// Uniform in [1-fraction, 1+fraction].
	scale := 1 + fraction*(2*rng.Float64()-1)
	out := time.Duration(float64(d) * scale)
	if out <= 0 {
		out = d
	}
	return out
}
