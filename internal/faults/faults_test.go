package faults

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"dvod/internal/clock"
	"dvod/internal/disk"
	"dvod/internal/topology"
)

func mustInjector(t *testing.T, plan Plan, seed int64, clk clock.Clock) *Injector {
	t.Helper()
	inj, err := NewInjector(plan, seed, clk, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestPlanValidateRejectsMalformedEvents(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"negative offset", Plan{Events: []Event{{At: -time.Second, For: time.Second, Kind: KindPeerDown, Node: "A"}}}},
		{"zero duration", Plan{Events: []Event{{At: 0, For: 0, Kind: KindPeerDown, Node: "A"}}}},
		{"link fault without link", Plan{Events: []Event{{At: 0, For: time.Second, Kind: KindLinkDown}}}},
		{"peer fault without node", Plan{Events: []Event{{At: 0, For: time.Second, Kind: KindPeerStall}}}},
		{"slow disk without delay", Plan{Events: []Event{{At: 0, For: time.Second, Kind: KindDiskSlow, Node: "A"}}}},
		{"unknown kind", Plan{Events: []Event{{At: 0, For: time.Second, Kind: "volcano"}}}},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	var good Plan
	good.FlapLink(0, time.Second, "A<->B").
		FailPeer(time.Second, time.Second, "A").
		SlowDisk(0, time.Second, "B", time.Millisecond)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// TestEventSequenceDeterministic pins the reproducibility contract: the
// activation/deactivation sequence is a pure function of the plan — same plan
// (any seed) yields the identical ordered log, with ties broken by
// activation-before-deactivation then plan position.
func TestEventSequenceDeterministic(t *testing.T) {
	var plan Plan
	plan.FailPeer(20*time.Millisecond, 10*time.Millisecond, "B").
		FlapLink(10*time.Millisecond, 20*time.Millisecond, "A<->B"). // deactivates exactly as the next activates
		StallPeer(30*time.Millisecond, 5*time.Millisecond, "C").
		SlowDisk(0, 30*time.Millisecond, "B", time.Millisecond)

	a := mustInjector(t, plan, 1, clock.Wall{}).Events()
	b := mustInjector(t, plan, 99, clock.Wall{}).Events()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event sequences differ across seeds:\n%v\n%v", a, b)
	}
	if len(a) != 2*len(plan.Events) {
		t.Fatalf("want %d entries, got %d", 2*len(plan.Events), len(a))
	}
	for i, e := range a {
		if e.Seq != i {
			t.Fatalf("entry %d has Seq %d", i, e.Seq)
		}
		if i > 0 && e.At < a[i-1].At {
			t.Fatalf("entries out of order at %d: %v after %v", i, e.At, a[i-1].At)
		}
	}
	// At the 30ms tie, the stall activation must precede the flap and drag
	// deactivations.
	for i, e := range a {
		if e.At != 30*time.Millisecond {
			continue
		}
		if !e.Active {
			t.Fatalf("at 30ms, deactivation %v precedes the activation (index %d)", e, i)
		}
		break
	}
}

func TestDialErrorWindows(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	link := topology.MakeLinkID("A", "B")
	var plan Plan
	plan.FailPeer(10*time.Millisecond, 10*time.Millisecond, "B").
		FlapLink(40*time.Millisecond, 10*time.Millisecond, link)
	inj := mustInjector(t, plan, 1, vc)

	// Before Start nothing is injected, even inside a window's offsets.
	if err := inj.DialError("B", nil); err != nil {
		t.Fatalf("pre-start dial error: %v", err)
	}
	if err := inj.Start(); err != nil {
		t.Fatal(err)
	}
	defer inj.Stop()

	if err := inj.DialError("B", nil); err != nil {
		t.Fatalf("t=0 dial error: %v", err)
	}
	vc.Advance(15 * time.Millisecond)
	err := inj.DialError("B", nil)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("t=15ms: want injected fault, got %v", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != KindPeerDown {
		t.Fatalf("t=15ms: want peer.down FaultError, got %#v", err)
	}
	// Another peer on another route is unaffected.
	if err := inj.DialError("C", nil); err != nil {
		t.Fatalf("t=15ms unrelated peer: %v", err)
	}
	vc.Advance(10 * time.Millisecond) // t=25ms: window closed
	if err := inj.DialError("B", nil); err != nil {
		t.Fatalf("t=25ms dial error: %v", err)
	}
	vc.Advance(20 * time.Millisecond) // t=45ms: link down
	if err := inj.DialError("B", []topology.LinkID{link}); !errors.Is(err, ErrInjected) {
		t.Fatalf("t=45ms via down link: want injected fault, got %v", err)
	}
	if err := inj.DialError("B", []topology.LinkID{topology.MakeLinkID("A", "C")}); err != nil {
		t.Fatalf("t=45ms via other link: %v", err)
	}
	if got := inj.InjectedTotal(); got != 2 {
		t.Fatalf("injected total = %d, want 2", got)
	}

	inj.Stop()
	if err := inj.DialError("B", []topology.LinkID{link}); err != nil {
		t.Fatalf("post-stop dial error: %v", err)
	}
}

func TestReadInterceptorShortReadSeedPinned(t *testing.T) {
	var plan Plan
	plan.ShortReadDisk(0, time.Minute, "A")
	fractions := func(seed int64) []float64 {
		vc := clock.NewVirtual(time.Unix(0, 0))
		inj := mustInjector(t, plan, seed, vc)
		if err := inj.Start(); err != nil {
			t.Fatal(err)
		}
		defer inj.Stop()
		vc.Advance(time.Millisecond)
		hook := inj.ReadInterceptor("A")
		out := make([]float64, 4)
		for i := range out {
			f := hook(disk.BlockID{})
			if f.ShortFraction <= 0 || f.ShortFraction >= 1 {
				t.Fatalf("short fraction %v outside (0, 1)", f.ShortFraction)
			}
			out[i] = f.ShortFraction
		}
		// The other node's array is untouched.
		if f := inj.ReadInterceptor("B")(disk.BlockID{}); f != (disk.ReadFault{}) {
			t.Fatalf("unrelated node faulted: %+v", f)
		}
		return out
	}
	if a, b := fractions(7), fractions(7); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different truncation points: %v vs %v", a, b)
	}
}

func TestReadInterceptorSlowDiskDelays(t *testing.T) {
	var plan Plan
	plan.SlowDisk(0, time.Minute, "A", 5*time.Millisecond)
	inj := mustInjector(t, plan, 1, clock.Wall{})
	if err := inj.Start(); err != nil {
		t.Fatal(err)
	}
	defer inj.Stop()
	hook := inj.ReadInterceptor("A")
	began := time.Now()
	if f := hook(disk.BlockID{}); f != (disk.ReadFault{}) {
		t.Fatalf("slow disk should delay, not fail: %+v", f)
	}
	if took := time.Since(began); took < 5*time.Millisecond {
		t.Fatalf("dragged read returned after %v, want >= 5ms", took)
	}
	if inj.InjectedTotal() == 0 {
		t.Fatal("drag did not count as injected")
	}
}

func TestInjectorStartTwiceFails(t *testing.T) {
	inj := mustInjector(t, Plan{}, 1, clock.Wall{})
	if err := inj.Start(); err != nil {
		t.Fatal(err)
	}
	defer inj.Stop()
	if err := inj.Start(); err == nil {
		t.Fatal("second Start succeeded")
	}
}
