// Package placement computes initial replica placements for the service's
// initialization phase. The paper distributes titles administratively and
// lets the DMA adapt afterwards; this package answers the administrator's
// question — *where should the first k copies of a title go?* — as a
// k-median problem over the LVN-weighted topology: choose replica sites
// minimizing the demand-weighted cost of each client site reaching its
// nearest replica. The classic greedy algorithm gives a (1-1/e)-style
// approximation and is exact for k = 1.
package placement

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dvod/internal/routing"
	"dvod/internal/topology"
)

// Demand weights each client site by how much it requests the title
// (requests/hour, fractions — any consistent unit). Sites absent from the
// map contribute nothing.
type Demand map[topology.NodeID]float64

// CostMatrix holds all-pairs least-cost distances under a snapshot's LVN
// weighting. Build once, evaluate many placements.
type CostMatrix struct {
	nodes []topology.NodeID
	dist  map[topology.NodeID]map[topology.NodeID]float64
}

// NewCostMatrix runs Dijkstra from every node over the snapshot's LVN
// weights (K = 10).
func NewCostMatrix(snap *topology.Snapshot) (*CostMatrix, error) {
	weights, err := snap.Weights(topology.DefaultNormalizationK)
	if err != nil {
		return nil, err
	}
	ct := routing.CostTable(weights)
	g := snap.Graph()
	m := &CostMatrix{
		nodes: g.Nodes(),
		dist:  make(map[topology.NodeID]map[topology.NodeID]float64, g.NumNodes()),
	}
	for _, src := range m.nodes {
		tree, err := routing.ShortestPaths(g, ct, src)
		if err != nil {
			return nil, fmt.Errorf("placement: dijkstra from %s: %w", src, err)
		}
		row := make(map[topology.NodeID]float64, len(m.nodes))
		for _, dst := range m.nodes {
			row[dst] = tree.Dist[dst] // +Inf when unreachable
		}
		m.dist[src] = row
	}
	return m, nil
}

// Nodes returns the matrix's node set, sorted.
func (m *CostMatrix) Nodes() []topology.NodeID {
	return append([]topology.NodeID(nil), m.nodes...)
}

// Dist returns the least LVN cost from a to b (+Inf when unreachable).
func (m *CostMatrix) Dist(a, b topology.NodeID) float64 {
	row, ok := m.dist[a]
	if !ok {
		return math.Inf(1)
	}
	d, ok := row[b]
	if !ok {
		return math.Inf(1)
	}
	return d
}

// ExpectedCost evaluates a placement: the demand-weighted mean cost of each
// site reaching its nearest replica. Unreachable demand contributes +Inf.
func (m *CostMatrix) ExpectedCost(replicas []topology.NodeID, demand Demand) (float64, error) {
	if len(replicas) == 0 {
		return 0, errors.New("placement: empty replica set")
	}
	var total, weight float64
	for site, w := range demand {
		if w <= 0 {
			continue
		}
		best := math.Inf(1)
		for _, r := range replicas {
			if d := m.Dist(site, r); d < best {
				best = d
			}
		}
		total += w * best
		weight += w
	}
	if weight == 0 {
		return 0, errors.New("placement: zero total demand")
	}
	return total / weight, nil
}

// Optimize picks k replica sites minimizing expected cost: exactly, by
// exhaustive enumeration, when the instance is small (C(n,k) ≤ 5000 — the
// six-site GRNET backbone is always exact), and by the greedy heuristic
// otherwise.
func Optimize(m *CostMatrix, demand Demand, k int) ([]topology.NodeID, error) {
	if k <= 0 {
		return nil, fmt.Errorf("placement: k must be positive, got %d", k)
	}
	n := len(m.nodes)
	if k > n {
		k = n
	}
	if binomial(n, k) <= 5000 {
		return exact(m, demand, k)
	}
	return Greedy(m, demand, k)
}

// binomial computes C(n,k) with saturation.
func binomial(n, k int) int64 {
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := range k {
		c = c * int64(n-i) / int64(i+1)
		if c > 1<<40 {
			return 1 << 40
		}
	}
	return c
}

// exact enumerates all k-subsets.
func exact(m *CostMatrix, demand Demand, k int) ([]topology.NodeID, error) {
	best := math.Inf(1)
	var bestSet []topology.NodeID
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	n := len(m.nodes)
	for {
		set := make([]topology.NodeID, k)
		for i, j := range idx {
			set[i] = m.nodes[j]
		}
		cost, err := m.ExpectedCost(set, demand)
		if err != nil {
			return nil, err
		}
		if cost < best {
			best = cost
			bestSet = set
		}
		// Next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	sort.Slice(bestSet, func(i, j int) bool { return bestSet[i] < bestSet[j] })
	return bestSet, nil
}

// Greedy picks k replica sites by iterative best improvement: each round
// adds the site that lowers the expected cost the most. It is exact for
// k = 1 and a heuristic beyond (Optimize upgrades small instances to the
// exact answer). Ties break toward the lexicographically smaller node for
// determinism.
func Greedy(m *CostMatrix, demand Demand, k int) ([]topology.NodeID, error) {
	if k <= 0 {
		return nil, fmt.Errorf("placement: k must be positive, got %d", k)
	}
	if k > len(m.nodes) {
		k = len(m.nodes)
	}
	chosen := make([]topology.NodeID, 0, k)
	inSet := make(map[topology.NodeID]bool, k)
	for len(chosen) < k {
		var (
			bestNode topology.NodeID
			bestCost = math.Inf(1)
			found    bool
		)
		for _, cand := range m.nodes {
			if inSet[cand] {
				continue
			}
			cost, err := m.ExpectedCost(append(chosen, cand), demand)
			if err != nil {
				return nil, err
			}
			if cost < bestCost || (cost == bestCost && found && cand < bestNode) {
				bestNode, bestCost, found = cand, cost, true
			}
		}
		if !found {
			break
		}
		chosen = append(chosen, bestNode)
		inSet[bestNode] = true
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i] < chosen[j] })
	return chosen, nil
}
