package placement

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvod/internal/grnet"
	"dvod/internal/topology"
)

func matrix(t *testing.T, st grnet.SampleTime) *CostMatrix {
	t.Helper()
	snap, err := grnet.Snapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewCostMatrix(snap)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCostMatrixBasics(t *testing.T) {
	m := matrix(t, grnet.At8am)
	if len(m.Nodes()) != 6 {
		t.Fatalf("nodes = %d", len(m.Nodes()))
	}
	// Self distance is zero; known pair matches the Experiment A value.
	if d := m.Dist(grnet.Patra, grnet.Patra); d != 0 {
		t.Fatalf("self dist = %g", d)
	}
	d := m.Dist(grnet.Patra, grnet.Thessaloniki)
	if math.Abs(d-0.218) > 0.01 {
		t.Fatalf("Patra→Thessaloniki = %g, want ≈0.218", d)
	}
	// Symmetric (undirected links).
	if m.Dist(grnet.Thessaloniki, grnet.Patra) != d {
		t.Fatal("matrix asymmetric")
	}
	// Unknown nodes yield +Inf.
	if !math.IsInf(m.Dist("U99", grnet.Patra), 1) || !math.IsInf(m.Dist(grnet.Patra, "U99"), 1) {
		t.Fatal("unknown nodes not infinite")
	}
}

func TestExpectedCost(t *testing.T) {
	m := matrix(t, grnet.At8am)
	demand := Demand{grnet.Patra: 1}
	// Replica at the demand site: zero cost.
	c, err := m.ExpectedCost([]topology.NodeID{grnet.Patra}, demand)
	if err != nil || c != 0 {
		t.Fatalf("local cost = %g, %v", c, err)
	}
	// Replica at Thessaloniki: the path cost.
	c, err = m.ExpectedCost([]topology.NodeID{grnet.Thessaloniki}, demand)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-m.Dist(grnet.Patra, grnet.Thessaloniki)) > 1e-12 {
		t.Fatalf("cost = %g", c)
	}
	// Weighted mix of two sites.
	demand2 := Demand{grnet.Patra: 3, grnet.Athens: 1}
	c2, err := m.ExpectedCost([]topology.NodeID{grnet.Patra}, demand2)
	if err != nil {
		t.Fatal(err)
	}
	want := (3*0 + 1*m.Dist(grnet.Athens, grnet.Patra)) / 4
	if math.Abs(c2-want) > 1e-12 {
		t.Fatalf("weighted cost = %g, want %g", c2, want)
	}
	// Validation.
	if _, err := m.ExpectedCost(nil, demand); err == nil {
		t.Fatal("empty replicas accepted")
	}
	if _, err := m.ExpectedCost([]topology.NodeID{grnet.Patra}, Demand{}); err == nil {
		t.Fatal("zero demand accepted")
	}
	// Non-positive weights are ignored.
	if _, err := m.ExpectedCost([]topology.NodeID{grnet.Patra},
		Demand{grnet.Patra: -1, grnet.Athens: 0}); err == nil {
		t.Fatal("all-nonpositive demand accepted")
	}
}

func TestGreedyK1PicksOptimal(t *testing.T) {
	m := matrix(t, grnet.At8am)
	// Demand concentrated at Patra: the single replica belongs there.
	got, err := Greedy(m, Demand{grnet.Patra: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != grnet.Patra {
		t.Fatalf("greedy k=1 = %v", got)
	}
	// Greedy at k=1 is exact: brute-force agrees for any demand.
	demand := Demand{grnet.Patra: 2, grnet.Heraklio: 3, grnet.Thessaloniki: 1}
	got, err = Greedy(m, demand, 1)
	if err != nil {
		t.Fatal(err)
	}
	bestCost := math.Inf(1)
	var bestNode topology.NodeID
	for _, n := range m.Nodes() {
		c, err := m.ExpectedCost([]topology.NodeID{n}, demand)
		if err != nil {
			t.Fatal(err)
		}
		if c < bestCost {
			bestCost, bestNode = c, n
		}
	}
	if got[0] != bestNode {
		t.Fatalf("greedy k=1 = %s, brute force = %s", got[0], bestNode)
	}
}

func TestGreedyFullCoverageIsFree(t *testing.T) {
	m := matrix(t, grnet.At8am)
	demand := Demand{}
	for _, n := range m.Nodes() {
		demand[n] = 1
	}
	got, err := Greedy(m, demand, 100) // clamps to n
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("full placement = %d sites", len(got))
	}
	c, err := m.ExpectedCost(got, demand)
	if err != nil || c != 0 {
		t.Fatalf("full coverage cost = %g, %v", c, err)
	}
}

func TestGreedyValidation(t *testing.T) {
	m := matrix(t, grnet.At8am)
	if _, err := Greedy(m, Demand{grnet.Patra: 1}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// Property: the exact optimizer never costs more than any random placement
// of the same size, cost is non-increasing in k, and the greedy heuristic
// stays within 2× of the optimum on this backbone.
func TestOptimizeDominatesRandomProperty(t *testing.T) {
	m := matrix(t, grnet.At4pm)
	nodes := m.Nodes()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		demand := Demand{}
		for _, n := range nodes {
			demand[n] = r.Float64() + 0.01
		}
		prev := math.Inf(1)
		for k := 1; k <= 3; k++ {
			opt, err := Optimize(m, demand, k)
			if err != nil {
				return false
			}
			oc, err := m.ExpectedCost(opt, demand)
			if err != nil {
				return false
			}
			if oc > prev+1e-12 {
				return false // cost increased with k
			}
			prev = oc
			// Optimal dominates any random placement of size k.
			perm := r.Perm(len(nodes))
			randSet := make([]topology.NodeID, k)
			for i := range k {
				randSet[i] = nodes[perm[i]]
			}
			rc, err := m.ExpectedCost(randSet, demand)
			if err != nil {
				return false
			}
			if oc > rc+1e-12 {
				return false
			}
			// Greedy's true guarantees: never above its own k=1 pick
			// (which is the exact 1-median), and never below the
			// optimum. Its approximation ratio is NOT bounded by a
			// small constant — myopic first picks can cost >2× at k=2
			// on this very backbone — so no tight multiplier is
			// asserted.
			g, err := Greedy(m, demand, k)
			if err != nil {
				return false
			}
			gc, err := m.ExpectedCost(g, demand)
			if err != nil {
				return false
			}
			opt1, err := Optimize(m, demand, 1)
			if err != nil {
				return false
			}
			oc1, err := m.ExpectedCost(opt1, demand)
			if err != nil {
				return false
			}
			if gc > oc1+1e-12 {
				return false // greedy worse than its own first pick
			}
			if gc < oc-1e-12 {
				return false // "better than optimal" = a bug somewhere
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeValidation(t *testing.T) {
	m := matrix(t, grnet.At8am)
	if _, err := Optimize(m, Demand{grnet.Patra: 1}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	got, err := Optimize(m, Demand{grnet.Patra: 1}, 1)
	if err != nil || len(got) != 1 || got[0] != grnet.Patra {
		t.Fatalf("optimize k=1 = %v, %v", got, err)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{6, 1, 6}, {6, 2, 15}, {6, 3, 20}, {6, 6, 1}, {10, 5, 252},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != int64(c.want) {
			t.Fatalf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	if binomial(200, 100) != 1<<40 {
		t.Fatal("binomial did not saturate")
	}
}
