package topogen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNodesLabels(t *testing.T) {
	nodes := Nodes(3)
	if len(nodes) != 3 || nodes[0] != "U1" || nodes[2] != "U3" {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestRandomValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := Random(1, 2, r); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Random(5, 0.5, r); err == nil {
		t.Fatal("degree<1 accepted")
	}
	if _, err := Random(5, 2, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestRandomConnectedAndSized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 6, 25, 80} {
		g, err := Random(n, 2.5, r)
		if err != nil {
			t.Fatalf("Random(%d): %v", n, err)
		}
		if g.NumNodes() != n {
			t.Fatalf("nodes = %d, want %d", g.NumNodes(), n)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Random(%d) disconnected: %v", n, err)
		}
		if g.NumLinks() < n-1 {
			t.Fatalf("links = %d < spanning tree", g.NumLinks())
		}
	}
}

// Property: Random always yields a connected graph with valid capacities.
func TestRandomConnectivityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		g, err := Random(n, 1+3*r.Float64(), r)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		for _, l := range g.Links() {
			if l.CapacityMbps != 2 && l.CapacityMbps != 18 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRing(t *testing.T) {
	g, err := Ring(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 || g.NumLinks() != 5 {
		t.Fatalf("ring = %d/%d", g.NumNodes(), g.NumLinks())
	}
	for _, n := range g.Nodes() {
		if len(g.Neighbors(n)) != 2 {
			t.Fatalf("ring degree of %s = %d", n, len(g.Neighbors(n)))
		}
	}
	if _, err := Ring(2, 2); err == nil {
		t.Fatal("ring n=2 accepted")
	}
}

func TestStar(t *testing.T) {
	g, err := Star(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 5 {
		t.Fatalf("star links = %d", g.NumLinks())
	}
	if len(g.Neighbors("U1")) != 5 {
		t.Fatalf("hub degree = %d", len(g.Neighbors("U1")))
	}
	if _, err := Star(1, 2); err == nil {
		t.Fatal("star n=1 accepted")
	}
}

func TestMesh(t *testing.T) {
	g, err := Mesh(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 10 { // C(5,2)
		t.Fatalf("mesh links = %d", g.NumLinks())
	}
	if _, err := Mesh(1, 2); err == nil {
		t.Fatal("mesh n=1 accepted")
	}
}

func TestRandomUtilization(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g, err := Mesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	util := RandomUtilization(g, 0.5, r)
	if len(util) != g.NumLinks() {
		t.Fatalf("util covers %d links", len(util))
	}
	for id, u := range util {
		if u < 0 || u >= 0.5 {
			t.Fatalf("util %s = %g outside [0, 0.5)", id, u)
		}
	}
}
