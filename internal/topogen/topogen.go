// Package topogen generates synthetic overlay topologies for the
// scalability studies: random connected graphs whose link capacities follow
// the paper-era distribution (a few fat trunks, many thin 2 Mbps tails),
// plus regular shapes (ring, star, full mesh) for worst/best-case analysis.
package topogen

import (
	"errors"
	"fmt"
	"math/rand"

	"dvod/internal/topology"
)

// nodeID names the i-th generated node U1..Un, matching the paper's labels.
func nodeID(i int) topology.NodeID {
	return topology.NodeID(fmt.Sprintf("U%d", i+1))
}

// Nodes returns the first n generated node IDs.
func Nodes(n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := range n {
		out[i] = nodeID(i)
	}
	return out
}

// capacities mirrors the GRNET mix: mostly 2 Mbps with occasional 18 Mbps
// trunks.
func capacity(r *rand.Rand) float64 {
	if r.Float64() < 0.25 {
		return 18
	}
	return 2
}

// Random builds a connected random graph with n nodes and approximately
// n·degree/2 links: a random spanning tree plus extra random edges.
func Random(n int, degree float64, r *rand.Rand) (*topology.Graph, error) {
	if n < 2 {
		return nil, errors.New("topogen: need at least 2 nodes")
	}
	if degree < 1 {
		return nil, fmt.Errorf("topogen: degree %g < 1", degree)
	}
	if r == nil {
		return nil, errors.New("topogen: nil rng")
	}
	g := topology.NewGraph()
	for i := range n {
		if err := g.AddNode(nodeID(i)); err != nil {
			return nil, err
		}
	}
	// Random spanning tree: attach each node to a random earlier one.
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		a := nodeID(perm[i])
		b := nodeID(perm[r.Intn(i)])
		if _, err := g.AddLink(a, b, capacity(r)); err != nil {
			return nil, err
		}
	}
	// Extra edges up to the target count.
	target := int(float64(n) * degree / 2)
	for tries := 0; g.NumLinks() < target && tries < target*20; tries++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b {
			continue
		}
		// Duplicate links fail; that is fine, keep trying.
		_, _ = g.AddLink(nodeID(a), nodeID(b), capacity(r))
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Ring builds an n-node cycle (the sparsest 2-connected shape; longest
// shortest paths).
func Ring(n int, capacityMbps float64) (*topology.Graph, error) {
	if n < 3 {
		return nil, errors.New("topogen: ring needs at least 3 nodes")
	}
	g := topology.NewGraph()
	for i := range n {
		if err := g.AddNode(nodeID(i)); err != nil {
			return nil, err
		}
	}
	for i := range n {
		if _, err := g.AddLink(nodeID(i), nodeID((i+1)%n), capacityMbps); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Star builds a hub-and-spoke graph: node U1 is the hub.
func Star(n int, capacityMbps float64) (*topology.Graph, error) {
	if n < 2 {
		return nil, errors.New("topogen: star needs at least 2 nodes")
	}
	g := topology.NewGraph()
	for i := range n {
		if err := g.AddNode(nodeID(i)); err != nil {
			return nil, err
		}
	}
	for i := 1; i < n; i++ {
		if _, err := g.AddLink(nodeID(0), nodeID(i), capacityMbps); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Mesh builds a full mesh (densest shape; Dijkstra's worst case per node).
func Mesh(n int, capacityMbps float64) (*topology.Graph, error) {
	if n < 2 {
		return nil, errors.New("topogen: mesh needs at least 2 nodes")
	}
	g := topology.NewGraph()
	for i := range n {
		if err := g.AddNode(nodeID(i)); err != nil {
			return nil, err
		}
	}
	for i := range n {
		for j := i + 1; j < n; j++ {
			if _, err := g.AddLink(nodeID(i), nodeID(j), capacityMbps); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// RandomUtilization draws a utilization fraction in [0, max) for every link.
func RandomUtilization(g *topology.Graph, max float64, r *rand.Rand) map[topology.LinkID]float64 {
	out := make(map[topology.LinkID]float64, g.NumLinks())
	for _, l := range g.Links() {
		out[l.ID] = r.Float64() * max
	}
	return out
}
