package experiments

import (
	"strings"
	"testing"
	"time"

	"dvod/internal/admission"
)

func TestParseClassMix(t *testing.T) {
	mix, err := ParseClassMix("premium:0.2, standard:0.5,background:0.3")
	if err != nil {
		t.Fatal(err)
	}
	if mix[admission.Premium] != 0.2 || mix[admission.Standard] != 0.5 || mix[admission.Background] != 0.3 {
		t.Fatalf("mix = %v", mix)
	}
	for _, bad := range []string{"", "gold:1", "premium", "premium:-1", "premium:x"} {
		if _, err := ParseClassMix(bad); err == nil {
			t.Fatalf("ParseClassMix(%q) succeeded, want error", bad)
		}
	}
}

func TestDrawClassesDeterministicAndMixed(t *testing.T) {
	mix := DefaultClassMix()
	a := drawClasses(mix, 500, 42)
	b := drawClasses(mix, 500, 42)
	counts := map[admission.Class]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw not deterministic at %d: %s vs %s", i, a[i], b[i])
		}
		counts[a[i]]++
	}
	for _, c := range admission.Classes() {
		if counts[c] == 0 {
			t.Fatalf("class %s never drawn: %v", c, counts)
		}
	}
	if counts[admission.Standard] <= counts[admission.Premium] {
		t.Fatalf("standard (weight 0.5) drawn less than premium (0.2): %v", counts)
	}
}

// TestAdmissionStudyProtectsPremium is the Ext-12 acceptance check: under a
// saturating class mix, per-class trunk reservation must not leave premium
// users blocking more often than the best-effort baseline, and the freed
// headroom should come from degrading or rejecting the lower classes.
func TestAdmissionStudyProtectsPremium(t *testing.T) {
	cfg := AdmissionStudyConfig{
		Mix:             DefaultClassMix(),
		Policies:        []string{"vra"},
		ArrivalsPerHour: []float64{240},
		BitrateMbps:     1.5,
		HoldMinutes:     20,
		NumTitles:       8,
		Replicas:        2,
		Duration:        3 * time.Hour,
		Seed:            1,
	}
	cells, err := AdmissionStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	find := func(mode string, class admission.Class) AdmissionCell {
		for _, c := range cells {
			if c.Mode == mode && c.Class == class {
				return c
			}
		}
		t.Fatalf("no cell for %s/%s in %+v", mode, class, cells)
		return AdmissionCell{}
	}
	premAdm := find("admission", admission.Premium)
	premBE := find("best-effort", admission.Premium)
	if premAdm.Offered != premBE.Offered {
		t.Fatalf("modes saw different premium demand: %d vs %d", premAdm.Offered, premBE.Offered)
	}
	if premAdm.Offered == 0 {
		t.Fatal("no premium requests offered; raise load or duration")
	}
	if premAdm.BlockingProb() > premBE.BlockingProb() {
		t.Fatalf("admission premium blocking %.4f > best-effort %.4f",
			premAdm.BlockingProb(), premBE.BlockingProb())
	}
	// The protection must be paid for by the lower classes: with trunk
	// shares < 1 they degrade or reject sessions best-effort would carry.
	lowerTouched := 0
	for _, class := range []admission.Class{admission.Standard, admission.Background} {
		c := find("admission", class)
		lowerTouched += c.Degraded + c.Rejected
	}
	if lowerTouched == 0 {
		t.Fatalf("saturating load never degraded/rejected a lower class:\n%s",
			FormatAdmissionStudy(cells))
	}
	// Premium never degrades (no ladder steps in the default policy).
	if premAdm.Degraded != 0 {
		t.Fatalf("premium sessions degraded %d times; policy has no ladder", premAdm.Degraded)
	}
}

func TestFormatAdmissionStudy(t *testing.T) {
	cells := []AdmissionCell{{
		Mode: "admission", Policy: "vra", ArrivalsPerHour: 45,
		Class: admission.Premium, Offered: 10, Admitted: 9, Rejected: 1,
	}}
	out := FormatAdmissionStudy(cells)
	for _, want := range []string{"Mode", "premium", "0.1000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

// TestTrunkCalibrationOnThinLinks is the Ext-12 regression for per-link
// trunk calibration: GRNET's 2 Mbps access trunks must not let a standard
// 1.5 Mbps session commit 85% of the pipe (the flat-share bug that starved
// premium arrivals), while wide backbone links keep the flat share and
// premium's full entitlement is untouched everywhere.
func TestTrunkCalibrationOnThinLinks(t *testing.T) {
	pols := admission.DefaultPolicies()
	std := pols[admission.Standard].MaxShare
	prem := pols[admission.Premium].MaxShare

	// Thin 2 Mbps trunk: a near-capacity standard session is refused even
	// with the link idle...
	if linkWithinCalibratedShare(2, 0, 1.5, std) {
		t.Fatal("standard 1.5 Mbps fit a 2 Mbps trunk; flat share regressed")
	}
	// ...but premium's full share still admits it.
	if !linkWithinCalibratedShare(2, 0, 1.5, prem) {
		t.Fatal("premium 1.5 Mbps rejected from an idle 2 Mbps trunk")
	}
	// Wide 18 Mbps backbone link: calibration is a no-op and standard fills
	// its flat share as before.
	if !linkWithinCalibratedShare(18, 0, 1.5, std) {
		t.Fatal("standard rejected from an idle 18 Mbps backbone link")
	}
	if linkWithinCalibratedShare(18, std*18-1, 1.5, std) {
		t.Fatal("standard exceeded its flat share on a wide link")
	}
	// The study still upholds the Ext-12 acceptance property with
	// calibration active on the paper's real thin-trunk topology (checked
	// by TestAdmissionStudyProtectsPremium); here we pin that the sim and
	// the broker agree on the thin-link decision itself.
	if got := admission.CalibratedLinkShare(std, 2, 1.5); got != 0.25 {
		t.Fatalf("CalibratedLinkShare(0.85, 2, 1.5) = %g, want 0.25", got)
	}
}
