package experiments

import (
	"math"
	"strings"
	"testing"

	"dvod/internal/grnet"
)

func TestTable2EndToEnd(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	// The emulated+SNMP pipeline must reproduce the paper's measurements.
	byLink := map[string]Table2Row{}
	for _, r := range rows {
		byLink[r.Link] = r
	}
	pa, ok := byLink["Patra - Athens"]
	if !ok {
		t.Fatalf("missing Patra - Athens row: %v", byLink)
	}
	want := [4]float64{0.200, 1.820, 1.820, 1.820}
	for i, c := range pa.Cells {
		if math.Abs(c.UsedMbps-want[i]) > 1e-9 {
			t.Fatalf("cell %d = %g Mb, want %g", i, c.UsedMbps, want[i])
		}
	}
	if math.Abs(pa.Cells[0].Utilization-0.10) > 1e-9 {
		t.Fatalf("8am utilization = %g, want 0.10", pa.Cells[0].Utilization)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "Patra - Athens") || !strings.Contains(out, "8am") {
		t.Fatalf("FormatTable2 output:\n%s", out)
	}
}

func TestTable3EndToEnd(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		for i := range 4 {
			if math.Abs(r.Measured[i]-r.Paper[i]) > 0.01 {
				t.Errorf("%s col %d: measured %.4f paper %.4f", r.Link, i, r.Measured[i], r.Paper[i])
			}
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "(paper)") {
		t.Fatalf("FormatTable3 output:\n%s", out)
	}
}

func TestRunExperimentB(t *testing.T) {
	res, err := RunExperiment("B")
	if err != nil {
		t.Fatal(err)
	}
	if !res.MatchesPaper {
		t.Fatalf("experiment B should match the paper: %+v", res.Decision)
	}
	if res.Decision.Server != grnet.Thessaloniki {
		t.Fatalf("decision = %s", res.Decision.Server)
	}
	if len(res.Trace) != 6 {
		t.Fatalf("trace steps = %d", len(res.Trace))
	}
	if len(res.Alternatives) != 2 {
		t.Fatalf("alternatives = %d", len(res.Alternatives))
	}
	out := FormatExperiment(res)
	if !strings.Contains(out, "MATCHES PAPER") {
		t.Fatalf("format:\n%s", out)
	}
	trace := FormatTrace(res.Trace, grnet.Patra)
	if !strings.Contains(trace, "U2,U3,U4") || !strings.Contains(trace, "R") {
		t.Fatalf("trace format:\n%s", trace)
	}
}

func TestRunExperimentADocumentsErratum(t *testing.T) {
	res, err := RunExperiment("A")
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchesPaper {
		t.Fatal("experiment A should deviate from the paper (documented erratum)")
	}
	if res.Decision.Server != grnet.Thessaloniki {
		t.Fatalf("correct decision = %s, want Thessaloniki", res.Decision.Server)
	}
	if res.Experiment.Erratum == "" {
		t.Fatal("erratum text missing")
	}
	out := FormatExperiment(res)
	if !strings.Contains(out, "erratum") {
		t.Fatalf("format should mention the erratum:\n%s", out)
	}
}

func TestRunExperimentsCDMatch(t *testing.T) {
	for _, id := range []string{"C", "D"} {
		res, err := RunExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		if !res.MatchesPaper {
			t.Fatalf("experiment %s should match: decision %+v", id, res.Decision)
		}
		if res.Decision.Server != grnet.Ioannina {
			t.Fatalf("experiment %s decision = %s", id, res.Decision.Server)
		}
	}
}

func TestExperimentByIDUnknown(t *testing.T) {
	if _, err := ExperimentByID("Z"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := RunExperiment("Z"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFormatTraceEmpty(t *testing.T) {
	if out := FormatTrace(nil, grnet.Patra); !strings.Contains(out, "no trace") {
		t.Fatalf("empty trace format = %q", out)
	}
}

func TestReversePaperPath(t *testing.T) {
	if got := reversePaperPath("U2,U1,U6,U5"); got != "U5,U6,U1,U2" {
		t.Fatalf("reversePaperPath = %s", got)
	}
	if got := reversePaperPath("U1"); got != "U1" {
		t.Fatalf("single-node reverse = %s", got)
	}
}
