package experiments

import (
	"strings"
	"testing"
)

// smallContentionConfig keeps the sweep fast for unit tests.
func smallContentionConfig() ContentionStudyConfig {
	cfg := DefaultContentionStudyConfig()
	cfg.Shards = []int{1, 4}
	cfg.OpsPerWorker = 500
	return cfg
}

// TestContentionStudySmoke runs Ext-18 end to end and checks the structural
// claims: every shard count produced a fully drained cell, throughput is
// positive, and the lock-free read path made progress during the storm.
func TestContentionStudySmoke(t *testing.T) {
	cfg := smallContentionConfig()
	rows, err := ContentionStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Shards) {
		t.Fatalf("rows = %d, want %d", len(rows), len(cfg.Shards))
	}
	for i, r := range rows {
		if r.Shards != cfg.Shards[i] {
			t.Errorf("row %d shards = %d, want %d", i, r.Shards, cfg.Shards[i])
		}
		if r.Admissions != int64(cfg.Workers)*int64(cfg.OpsPerWorker) {
			t.Errorf("row %d admissions = %d", i, r.Admissions)
		}
		if r.AdmissionsPerSec <= 0 {
			t.Errorf("row %d admissions/sec = %g", i, r.AdmissionsPerSec)
		}
		if r.SnapshotReads == 0 {
			t.Errorf("row %d: lock-free readers made no progress", i)
		}
		if r.Procs <= 0 {
			t.Errorf("row %d procs = %d", i, r.Procs)
		}
	}
	out := FormatContentionStudy(rows)
	if !strings.Contains(out, "speedup") {
		t.Fatalf("formatted study missing the scaling line:\n%s", out)
	}
}

func TestContentionStudyConfigValidation(t *testing.T) {
	mutations := []func(*ContentionStudyConfig){
		func(c *ContentionStudyConfig) { c.Shards = nil },
		func(c *ContentionStudyConfig) { c.Shards = []int{4, 1} }, // must ascend
		func(c *ContentionStudyConfig) { c.Shards = []int{0} },
		func(c *ContentionStudyConfig) { c.Workers = 0 },
		func(c *ContentionStudyConfig) { c.OpsPerWorker = 0 },
		func(c *ContentionStudyConfig) { c.Links = 0 },
		func(c *ContentionStudyConfig) { c.Titles = 0 },
		func(c *ContentionStudyConfig) { c.Readers = -1 },
	}
	for i, mutate := range mutations {
		cfg := smallContentionConfig()
		mutate(&cfg)
		if _, err := ContentionStudy(cfg); err == nil {
			t.Errorf("mutation %d: bad config accepted", i)
		}
	}
}

// TestContentionRegressionGate pins the gate's semantics: the absolute floor
// and read-path liveness bind everywhere, the scaling bound tracks (and is
// capped by) what the baseline machine demonstrated, and throughput is only
// compared at matched GOMAXPROCS.
func TestContentionRegressionGate(t *testing.T) {
	mk := func(procs int, thr ...float64) []ContentionRow {
		shards := []int{1, 2, 4, 8}
		rows := make([]ContentionRow, len(thr))
		for i, v := range thr {
			rows[i] = ContentionRow{
				Shards: shards[i], Workers: 8, Procs: procs,
				Admissions: 1, AdmissionsPerSec: v, SnapshotReads: 100,
			}
		}
		return rows
	}
	baseline := mk(8, 1e6, 1.8e6, 2.9e6, 3.6e6) // 3.6x on an 8-core box
	clean := mk(8, 1e6, 1.9e6, 3.0e6, 3.3e6)    // 3.3x ≥ capped bound of 3.0
	bad, notes := ContentionRegression(clean, baseline)
	if len(bad) != 0 {
		t.Fatalf("clean run flagged: %v", bad)
	}
	if len(notes) != 0 {
		t.Fatalf("multi-core baseline must not warn: %v", notes)
	}

	cases := []struct {
		name    string
		current []ContentionRow
		want    string
	}{
		{"floor", mk(8, 20_000, 30_000, 50_000, 90_000), "floor"},
		{"scaling collapsed", mk(8, 3.5e6, 3.5e6, 3.5e6, 3.6e6), "speedup"},
		{"throughput regressed at matched procs", mk(8, 0.9e6, 1.7e6, 2.6e6, 2.7e6), "regressed"},
		{"missing shard counts", mk(8, 3.6e6), "missing"},
	}
	for _, tc := range cases {
		bad, _ := ContentionRegression(tc.current, baseline)
		found := false
		for _, msg := range bad {
			if strings.Contains(msg, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: gate output %v, want a %q message", tc.name, bad, tc.want)
		}
	}

	// Read-path liveness: zero snapshot reads is a wedged read path.
	wedged := mk(8, 1e6, 1.9e6, 3.0e6, 3.3e6)
	for i := range wedged {
		wedged[i].SnapshotReads = 0
	}
	if bad, _ := ContentionRegression(wedged, baseline); len(bad) == 0 {
		t.Error("wedged read path accepted")
	}

	// A single-core current run cannot demonstrate scaling: only the floor
	// binds, so flat throughput above it passes even against a strong
	// multi-core baseline.
	flatSingleCore := mk(1, 2.5e6, 2.5e6, 2.5e6, 2.5e6)
	if bad, _ := ContentionRegression(flatSingleCore, baseline); len(bad) != 0 {
		t.Errorf("single-core run flagged on scaling it cannot show: %v", bad)
	}

	if bad, _ := ContentionRegression(clean, nil); len(bad) == 0 {
		t.Error("empty baseline accepted")
	}
	if bad, _ := ContentionRegression(nil, baseline); len(bad) == 0 {
		t.Error("empty current run accepted")
	}
}

// TestContentionRegressionSingleCoreBaseline pins the baseline-guard rule: a
// baseline measured below GOMAXPROCS 4 demonstrated nothing about shard
// scaling, so the gate warns loudly, refuses to derive the bound from it, and
// holds multi-core runs to the fixed ContentionParallelScalingFloor instead.
func TestContentionRegressionSingleCoreBaseline(t *testing.T) {
	mk := func(procs int, thr ...float64) []ContentionRow {
		shards := []int{1, 2, 4, 8}
		rows := make([]ContentionRow, len(thr))
		for i, v := range thr {
			rows[i] = ContentionRow{
				Shards: shards[i], Workers: 8, Procs: procs,
				Admissions: 1, AdmissionsPerSec: v, SnapshotReads: 100,
			}
		}
		return rows
	}
	weakBaseline := mk(1, 2.5e6, 2.5e6, 2.5e6, 2.5e6)

	// Any comparison against a single-core baseline carries the loud warning,
	// even when the current run is single-core too (the scaling check is
	// skipped there, but maintainers still need to hear the baseline is weak).
	for _, cur := range [][]ContentionRow{
		mk(1, 2.5e6, 2.5e6, 2.5e6, 2.5e6),
		mk(8, 3.0e6, 3.1e6, 3.2e6, 3.45e6),
	} {
		bad, notes := ContentionRegression(cur, weakBaseline)
		if len(bad) != 0 {
			t.Fatalf("procs=%d run flagged against a single-core baseline: %v", cur[0].Procs, bad)
		}
		warned := false
		for _, n := range notes {
			if strings.Contains(n, "WARNING") && strings.Contains(n, "GOMAXPROCS 1") {
				warned = true
			}
		}
		if !warned {
			t.Fatalf("procs=%d: no loud warning about the single-core baseline, notes = %v",
				cur[0].Procs, notes)
		}
	}

	// The single-core baseline's own speedup (~1.0) must NOT become the bound
	// — the self-tightening formula would demand only 0.8x. Instead a
	// multi-core run below the fixed parallel floor fails.
	flatMulticore := mk(8, 3.5e6, 3.5e6, 3.5e6, 3.55e6) // 1.01x < 1.1x floor
	bad, _ := ContentionRegression(flatMulticore, weakBaseline)
	found := false
	for _, msg := range bad {
		if strings.Contains(msg, "parallel floor") {
			found = true
		}
	}
	if !found {
		t.Fatalf("flat multi-core run passed against a single-core baseline: %v", bad)
	}

	// Modest real scaling above the floor passes: the gate never invents a 3x
	// demand out of a baseline that could not demonstrate one.
	modestMulticore := mk(8, 3.0e6, 3.1e6, 3.2e6, 3.45e6) // 1.15x
	if bad, _ := ContentionRegression(modestMulticore, weakBaseline); len(bad) != 0 {
		t.Fatalf("modest scaling flagged against a single-core baseline: %v", bad)
	}
}
