package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dvod/internal/baseline"
	"dvod/internal/cache"
	"dvod/internal/core"
	"dvod/internal/disk"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/striping"
	"dvod/internal/topology"
	"dvod/internal/workload"
)

// --- Ext-1: routing policy comparison ------------------------------------

// RoutingStudyConfig parameterizes the VRA-vs-baselines replay.
type RoutingStudyConfig struct {
	// Policies to compare; empty means all of baseline.Names().
	Policies []string
	// NumTitles, Replicas: library size and copies per title.
	NumTitles int
	Replicas  int
	// Requests and RatePerSec: trace volume.
	Duration   time.Duration
	RatePerSec float64
	// TitleBytes is the (scaled-down) title size; ClusterBytes the
	// delivery granularity.
	TitleBytes   int64
	ClusterBytes int64
	// Seed drives placement and the trace.
	Seed int64
}

// DefaultRoutingStudyConfig is sized to run in well under a second while
// still exercising contention: a busy morning hour on the GRNET backbone.
func DefaultRoutingStudyConfig() RoutingStudyConfig {
	return RoutingStudyConfig{
		NumTitles:    20,
		Replicas:     2,
		Duration:     time.Hour,
		RatePerSec:   0.02, // ≈72 requests over the hour
		TitleBytes:   1 << 20,
		ClusterBytes: 128 << 10,
		Seed:         1,
	}
}

// RoutingStudyRow is one policy's aggregate outcome.
type RoutingStudyRow struct {
	Policy       string
	Sessions     int
	Failed       int
	MeanPathCost float64
	MeanStartup  time.Duration
	StallRatio   float64
	Switches     int
}

// RoutingStudy replays the identical trace under each policy (Ext-1).
func RoutingStudy(cfg RoutingStudyConfig) ([]RoutingStudyRow, error) {
	if cfg.NumTitles <= 0 || cfg.Replicas <= 0 {
		return nil, errors.New("routing study: need titles and replicas")
	}
	policies := cfg.Policies
	if len(policies) == 0 {
		policies = baseline.Names()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	titles, placement, names, err := makeLibrary(cfg.NumTitles, cfg.Replicas, cfg.TitleBytes, rng)
	if err != nil {
		return nil, err
	}
	trace, err := workload.GenerateTrace(workload.TraceConfig{
		Titles:     names,
		Clients:    grnet.Nodes(),
		Theta:      0.729,
		RatePerSec: cfg.RatePerSec,
		Start:      epoch,
		Duration:   cfg.Duration,
		Seed:       cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	var rows []RoutingStudyRow
	for _, name := range policies {
		sel, err := baseline.ByName(name, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		res, err := Replay(ReplayConfig{
			Selector:     sel,
			Titles:       titles,
			Placement:    placement,
			Requests:     trace,
			ClusterBytes: cfg.ClusterBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("replay %s: %w", name, err)
		}
		rows = append(rows, RoutingStudyRow{
			Policy:       name,
			Sessions:     len(res.Sessions),
			Failed:       res.Failed,
			MeanPathCost: res.MeanPathCost(),
			MeanStartup:  res.MeanStartup(),
			StallRatio:   res.StallRatio(),
			Switches:     res.TotalSwitches(),
		})
	}
	return rows, nil
}

// makeLibrary builds a synthetic library and a random k-replica placement.
func makeLibrary(numTitles, replicas int, titleBytes int64, rng *rand.Rand) ([]media.Title, map[string][]topology.NodeID, []string, error) {
	lib, err := media.GenerateLibrary(media.LibrarySpec{
		Count:       numTitles,
		MinBytes:    titleBytes,
		MaxBytes:    titleBytes,
		BitrateMbps: 1.5,
	}, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	nodes := grnet.Nodes()
	if replicas > len(nodes) {
		replicas = len(nodes)
	}
	placement := make(map[string][]topology.NodeID, len(lib))
	names := make([]string, 0, len(lib))
	for _, t := range lib {
		perm := rng.Perm(len(nodes))
		for i := range replicas {
			placement[t.Name] = append(placement[t.Name], nodes[perm[i]])
		}
		names = append(names, t.Name)
	}
	return lib, placement, names, nil
}

// --- Ext-2: cache policy comparison ---------------------------------------

// CacheStudyConfig parameterizes the DMA-vs-LRU/LFU/none sweep.
type CacheStudyConfig struct {
	// Thetas are the Zipf skews to sweep.
	Thetas []float64
	// NumTitles, TitleBytes: library shape (all titles equal-sized).
	NumTitles  int
	TitleBytes int64
	// CacheFraction is cache capacity as a fraction of the total library
	// size.
	CacheFraction float64
	// Requests is the stream length per (theta, policy) cell.
	Requests int
	// ClusterBytes is the striping granularity.
	ClusterBytes int64
	Seed         int64
}

// DefaultCacheStudyConfig sweeps three skews against a 20% cache.
func DefaultCacheStudyConfig() CacheStudyConfig {
	return CacheStudyConfig{
		Thetas:        []float64{0, 0.729, 1.2},
		NumTitles:     50,
		TitleBytes:    64 << 10,
		CacheFraction: 0.2,
		Requests:      2000,
		ClusterBytes:  8 << 10,
		Seed:          1,
	}
}

// CacheStudyCell is one (theta, policy) outcome.
type CacheStudyCell struct {
	Theta     float64
	Policy    string
	HitRatio  float64
	Evictions int64
}

// CacheStudy runs the Ext-2 sweep: identical Zipf streams against DMA, LRU,
// LFU and the no-cache baseline.
func CacheStudy(cfg CacheStudyConfig) ([]CacheStudyCell, error) {
	if cfg.NumTitles <= 0 || cfg.Requests <= 0 {
		return nil, errors.New("cache study: need titles and requests")
	}
	if cfg.CacheFraction <= 0 || cfg.CacheFraction > 1 {
		return nil, fmt.Errorf("cache study: bad cache fraction %g", cfg.CacheFraction)
	}
	lib, err := media.GenerateLibrary(media.LibrarySpec{
		Count:       cfg.NumTitles,
		MinBytes:    cfg.TitleBytes,
		MaxBytes:    cfg.TitleBytes,
		BitrateMbps: 1.5,
	}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	byName := make(map[string]media.Title, len(lib))
	names := make([]string, 0, len(lib))
	for _, t := range lib {
		byName[t.Name] = t
		names = append(names, t.Name)
	}
	cacheBytes := int64(float64(cfg.TitleBytes*int64(cfg.NumTitles)) * cfg.CacheFraction)
	const nDisks = 4
	perDisk := cacheBytes/nDisks + 1

	policies := []string{"dma", "lru", "lfu", "none"}
	var out []CacheStudyCell
	for _, theta := range cfg.Thetas {
		// One shared request stream per theta so policies see identical
		// demand.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(theta*1000)))
		zipf, err := workload.NewZipfTitles(names, theta, rng)
		if err != nil {
			return nil, err
		}
		stream := make([]string, cfg.Requests)
		for i := range stream {
			stream[i] = zipf.Sample()
		}
		for _, policy := range policies {
			arr, err := disk.NewUniformArray("cs", nDisks, perDisk)
			if err != nil {
				return nil, err
			}
			ccfg := cache.Config{Array: arr, ClusterBytes: cfg.ClusterBytes}
			var p cache.Policy
			switch policy {
			case "dma":
				p, err = cache.NewDMA(ccfg)
			case "lru":
				p, err = cache.NewLRU(ccfg)
			case "lfu":
				p, err = cache.NewLFU(ccfg)
			case "none":
				p, err = cache.NewNone(), nil
			}
			if err != nil {
				return nil, err
			}
			for _, name := range stream {
				if _, err := p.OnRequest(byName[name]); err != nil {
					return nil, fmt.Errorf("%s theta=%g: %w", policy, theta, err)
				}
			}
			stats, err := cache.StatsOf(p)
			if err != nil {
				return nil, err
			}
			out = append(out, CacheStudyCell{
				Theta:     theta,
				Policy:    policy,
				HitRatio:  stats.HitRatio(),
				Evictions: stats.Evictions,
			})
		}
	}
	return out, nil
}

// --- Ext-3: cluster size sweep --------------------------------------------

// ClusterSweepConfig parameterizes the mid-stream adaptivity study.
type ClusterSweepConfig struct {
	// ClusterSizes to sweep.
	ClusterSizes []int64
	// TitleBytes is the delivered title's size.
	TitleBytes int64
	// CongestAfter: the instant (into the session) at which the initially
	// optimal route is saturated.
	CongestAfter time.Duration
	Seed         int64
}

// DefaultClusterSweepConfig sweeps four cluster sizes over a 4 MiB title.
func DefaultClusterSweepConfig() ClusterSweepConfig {
	return ClusterSweepConfig{
		ClusterSizes: []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20},
		TitleBytes:   4 << 20,
		CongestAfter: 2 * time.Second,
		Seed:         1,
	}
}

// ClusterSweepRow is one cluster size's outcome.
type ClusterSweepRow struct {
	ClusterBytes int64
	NumClusters  int
	// Switched is true when the session moved off the congested server.
	Switched bool
	// Switches counts the mid-stream server changes.
	Switches int
	// Elapsed is total delivery time.
	Elapsed time.Duration
	// StallTime under the playback model.
	StallTime time.Duration
}

// ClusterSweep measures how the cluster size c governs re-routing
// responsiveness (Ext-3): a two-replica title is streamed from Patra while
// the initially best route is saturated mid-session; smaller clusters react
// sooner and stall less.
func ClusterSweep(cfg ClusterSweepConfig) ([]ClusterSweepRow, error) {
	if len(cfg.ClusterSizes) == 0 || cfg.TitleBytes <= 0 {
		return nil, errors.New("cluster sweep: bad config")
	}
	var rows []ClusterSweepRow
	for _, c := range cfg.ClusterSizes {
		row, err := runClusterTrial(cfg, c)
		if err != nil {
			return nil, fmt.Errorf("cluster %d: %w", c, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runClusterTrial(cfg ClusterSweepConfig, clusterBytes int64) (ClusterSweepRow, error) {
	title := media.Title{Name: "sweep", SizeBytes: cfg.TitleBytes, BitrateMbps: 1.5}
	// Title on Thessaloniki and Xanthi; client at Patra; 8am background
	// makes Thessaloniki (via Ioannina) the initial choice. We saturate
	// the Ioannina links mid-session, pushing the optimum to Xanthi.
	congest := []topology.LinkID{
		topology.MakeLinkID(grnet.Patra, grnet.Ioannina),
		topology.MakeLinkID(grnet.Thessaloniki, grnet.Ioannina),
	}
	req := []workload.Request{{At: epoch, Client: grnet.Patra, Title: title.Name}}
	diurnal := workload.NewDiurnalModel(grnet.Table2())

	// Near-saturate (1.99 of 2 Mbps) so an in-flight cluster crawls
	// instead of deadlocking; a 12h background interval keeps the diurnal
	// model from erasing the scripted congestion mid-trial.
	res, err := ReplayWithEvents(ReplayConfig{
		Selector:           core.VRA{},
		Titles:             []media.Title{title},
		Placement:          map[string][]topology.NodeID{title.Name: {grnet.Thessaloniki, grnet.Xanthi}},
		Requests:           req,
		ClusterBytes:       clusterBytes,
		Diurnal:            diurnal,
		PollInterval:       10 * time.Second,
		BackgroundInterval: 12 * time.Hour,
	}, []ReplayEvent{{
		At: epoch.Add(cfg.CongestAfter),
		Background: map[topology.LinkID]float64{
			congest[0]: 1.99,
			congest[1]: 1.99,
		},
	}})
	if err != nil {
		return ClusterSweepRow{}, err
	}
	if len(res.Sessions) != 1 {
		return ClusterSweepRow{}, fmt.Errorf("got %d sessions, want 1 (failed=%d)", len(res.Sessions), res.Failed)
	}
	s := res.Sessions[0]
	return ClusterSweepRow{
		ClusterBytes: clusterBytes,
		NumClusters:  s.NumClusters,
		Switched:     s.Switches > 0,
		Switches:     s.Switches,
		Elapsed:      s.Elapsed,
		StallTime:    s.StallTime,
	}, nil
}

// --- Ext-4: striping width sweep -------------------------------------------

// StripingSweepRow is one striping width's modeled read performance.
type StripingSweepRow struct {
	NumDisks int
	// SequentialRead is the modeled time for one disk to read the title.
	SequentialRead time.Duration
	// ParallelRead is the modeled time with the title striped across
	// NumDisks disks read concurrently (max over per-disk sums).
	ParallelRead time.Duration
	// Speedup = SequentialRead / ParallelRead.
	Speedup float64
}

// StripingSweep models Ext-4: per-title read parallelism as the array grows
// (the paper: "we propose the use of as many disks as possible").
func StripingSweep(title media.Title, clusterBytes int64, widths []int) ([]StripingSweepRow, error) {
	if err := title.Validate(); err != nil {
		return nil, err
	}
	if clusterBytes <= 0 {
		return nil, striping.ErrBadCluster
	}
	model := disk.DefaultAccessModel()
	var rows []StripingSweepRow
	seq := modeledReadTime(title, clusterBytes, 1, model)
	for _, n := range widths {
		if n <= 0 {
			return nil, fmt.Errorf("bad width %d", n)
		}
		par := modeledReadTime(title, clusterBytes, n, model)
		rows = append(rows, StripingSweepRow{
			NumDisks:       n,
			SequentialRead: seq,
			ParallelRead:   par,
			Speedup:        float64(seq) / float64(par),
		})
	}
	return rows, nil
}

// modeledReadTime computes the time to read all parts with the given array
// width: disks work in parallel, each reading its assigned parts serially.
func modeledReadTime(title media.Title, clusterBytes int64, nDisks int, model disk.AccessModel) time.Duration {
	layout, err := striping.NewLayout(title, clusterBytes, nDisks)
	if err != nil {
		return 0
	}
	perDisk := make([]time.Duration, nDisks)
	for p := range layout.NumParts() {
		di, err := layout.DiskFor(p)
		if err != nil {
			return 0
		}
		_, length, err := layout.PartRange(p)
		if err != nil {
			return 0
		}
		perDisk[di] += model.ReadTime(length)
	}
	var max time.Duration
	for _, d := range perDisk {
		if d > max {
			max = d
		}
	}
	return max
}

// --- Ext-5: normalization constant sensitivity ------------------------------

// KSweepRow is one K value's effect on the four case-study decisions.
type KSweepRow struct {
	K float64
	// Decisions maps experiment ID to the chosen server.
	Decisions map[string]topology.NodeID
	// SameAsDefault is true when all four match the K=10 choices.
	SameAsDefault bool
}

// KSweep reruns experiments A-D under different normalization constants
// (Ext-5; the paper only says K should be "an integer approaching 10").
func KSweep(ks []float64) ([]KSweepRow, error) {
	if len(ks) == 0 {
		return nil, errors.New("k sweep: no values")
	}
	defaults := make(map[string]topology.NodeID, 4)
	for _, exp := range Experiments() {
		snap, err := grnet.Snapshot(exp.Time)
		if err != nil {
			return nil, err
		}
		dec, err := (core.VRA{}).Select(snap, exp.Home, exp.Candidates)
		if err != nil {
			return nil, err
		}
		defaults[exp.ID] = dec.Server
	}
	var rows []KSweepRow
	for _, k := range ks {
		row := KSweepRow{K: k, Decisions: make(map[string]topology.NodeID, 4), SameAsDefault: true}
		for _, exp := range Experiments() {
			snap, err := grnet.Snapshot(exp.Time)
			if err != nil {
				return nil, err
			}
			dec, err := (core.VRA{NormalizationK: k}).Select(snap, exp.Home, exp.Candidates)
			if err != nil {
				return nil, err
			}
			row.Decisions[exp.ID] = dec.Server
			if dec.Server != defaults[exp.ID] {
				row.SameAsDefault = false
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
