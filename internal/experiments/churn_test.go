package experiments

import (
	"strings"
	"testing"
)

// TestChurnStudySmoke runs Ext-17 end to end and checks its claim
// structurally: four phases in order, zero failed watches and full admit rate
// through join, drain, and kill, redirects where the front door must bounce,
// and a Failed verdict on the survivors after the hard kill.
func TestChurnStudySmoke(t *testing.T) {
	rows, err := ChurnStudy(DefaultChurnStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i, phase := range []string{"steady", "join", "drain", "kill"} {
		if rows[i].Phase != phase {
			t.Fatalf("phase %d = %q, want %q", i, rows[i].Phase, phase)
		}
		if rows[i].Failed != 0 || rows[i].AdmitRate != 1 {
			t.Fatalf("%s phase: %d failed, admit rate %.2f — churn must not drop watches",
				phase, rows[i].Failed, rows[i].AdmitRate)
		}
	}
	steady, join, drain, kill := rows[0], rows[1], rows[2], rows[3]
	if steady.Redirects == 0 {
		t.Fatal("steady phase never bounced a non-holder watch")
	}
	if steady.AliveMembers != 3 {
		t.Fatalf("steady fleet = %d alive, want 3", steady.AliveMembers)
	}
	if join.AliveMembers != 4 {
		t.Fatalf("post-join fleet = %d alive, want 4", join.AliveMembers)
	}
	// The joiner serves its re-replicated title locally, so join's mean hops
	// drop below steady's (where every watch bounced).
	if join.MeanRedirectHops >= steady.MeanRedirectHops {
		t.Fatalf("join mean hops %.2f did not drop below steady %.2f: the joiner never served locally",
			join.MeanRedirectHops, steady.MeanRedirectHops)
	}
	if drain.Redirects == 0 {
		t.Fatal("drain phase never redirected off the draining node")
	}
	if kill.FailedMembers == 0 {
		t.Fatal("kill phase: survivors never marked the killed node failed")
	}
	if got := ChurnRegression(rows, rows); len(got) != 0 {
		t.Fatalf("healthy run failed its own gate: %v", got)
	}
	out := FormatChurnStudy(rows)
	for _, phase := range []string{"steady", "join", "drain", "kill"} {
		if !strings.Contains(out, phase) {
			t.Fatalf("formatted study missing %q:\n%s", phase, out)
		}
	}
}

func TestChurnStudyConfigValidation(t *testing.T) {
	mutations := []func(*ChurnStudyConfig){
		func(c *ChurnStudyConfig) { c.WatchesPerPhase = 0 },
		func(c *ChurnStudyConfig) { c.TitleClusters = 0 },
		func(c *ChurnStudyConfig) { c.ClusterBytes = 0 },
		func(c *ChurnStudyConfig) { c.BitrateMbps = 0 },
		func(c *ChurnStudyConfig) { c.MembershipInterval = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultChurnStudyConfig()
		mutate(&cfg)
		if _, err := ChurnStudy(cfg); err == nil {
			t.Fatalf("mutation %d: bad config accepted", i)
		}
	}
}

// TestChurnRegressionGate exercises the gate's individual tripwires.
func TestChurnRegressionGate(t *testing.T) {
	healthy := []ChurnRow{
		{Phase: "steady", Watches: 4, Granted: 4, AdmitRate: 1, Redirects: 4, MeanRedirectHops: 1},
		{Phase: "join", Watches: 4, Granted: 4, AdmitRate: 1, Redirects: 2, MeanRedirectHops: 0.5},
		{Phase: "drain", Watches: 4, Granted: 4, AdmitRate: 1, Redirects: 4, MeanRedirectHops: 1},
		{Phase: "kill", Watches: 4, Granted: 4, AdmitRate: 1, FailedMembers: 1},
	}
	if got := ChurnRegression(healthy, healthy); len(got) != 0 {
		t.Fatalf("healthy rows flagged: %v", got)
	}
	broken := func(mutate func([]ChurnRow)) []string {
		rows := append([]ChurnRow(nil), healthy...)
		mutate(rows)
		return ChurnRegression(rows, healthy)
	}
	if got := broken(func(r []ChurnRow) { r[2].Failed = 1 }); len(got) == 0 {
		t.Fatal("failed drain watch passed the gate")
	}
	if got := broken(func(r []ChurnRow) { r[3].AdmitRate = 0.75 }); len(got) == 0 {
		t.Fatal("partial kill admit rate passed the gate")
	}
	if got := broken(func(r []ChurnRow) { r[2].Redirects = 0 }); len(got) == 0 {
		t.Fatal("redirect-free drain passed the gate")
	}
	if got := broken(func(r []ChurnRow) { r[3].FailedMembers = 0 }); len(got) == 0 {
		t.Fatal("undetected kill passed the gate")
	}
	if got := ChurnRegression(healthy[:3], healthy); len(got) == 0 {
		t.Fatal("missing kill phase passed the gate")
	}
	if got := ChurnRegression(healthy, nil); len(got) == 0 {
		t.Fatal("empty baseline passed the gate")
	}
}
