package experiments

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"dvod/internal/cache"
	"dvod/internal/client"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/disk"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/server"
	"dvod/internal/transport"
)

// --- Ext-13: JSON vs binary vs kernel cluster framing throughput -------------

// FramingStudyConfig parameterizes Ext-13: a live single-node deployment on
// localhost TCP delivers a resident title once per framing at each cluster
// size, measuring end-to-end delivery throughput of the canonical JSON
// framing against the negotiated binary cluster frames and against the
// kernel delivery path (file-backed disks + sendfile; DESIGN.md § "Wire
// format" and § "Kernel delivery path"). Each arm gets its own deployment so
// the kernel arm can run a file-backed array while the others stay in
// memory. Content verification is disabled on the player so the measurement
// isolates the delivery pipeline — disk read, framing, socket, receive —
// rather than the synthetic-content checker, which costs the same under
// every framing.
type FramingStudyConfig struct {
	// ClusterSizes are the cluster sizes to sweep, in bytes.
	ClusterSizes []int64
	// TitleClusters is the number of clusters in the delivered title.
	TitleClusters int
	// Runs is how many timed watches are averaged per cell; an extra
	// untimed warmup watch precedes them.
	Runs int
}

// DefaultFramingStudyConfig sweeps the headline sizes (64 KiB, 256 KiB,
// 1 MiB) over a 24-cluster title, averaging 3 timed runs.
func DefaultFramingStudyConfig() FramingStudyConfig {
	return FramingStudyConfig{
		ClusterSizes:  []int64{64 << 10, 256 << 10, 1 << 20},
		TitleClusters: 24,
		Runs:          3,
	}
}

// Framing arm names of FramingRow.Framing.
const (
	// FramingJSON is the canonical JSON control-frame delivery.
	FramingJSON = "json"
	// FramingBinary is binary cluster frames through the pooled-buffer copy.
	FramingBinary = "binary"
	// FramingKernel is binary cluster frames from a file-backed array, sent
	// with sendfile(2) where the platform supports it.
	FramingKernel = "kernel"
)

// FramingRow is one (framing, cluster size) outcome.
type FramingRow struct {
	Framing        string  // "json", "binary", or "kernel"
	ClusterBytes   int64
	Clusters       int     // clusters delivered per watch
	ElapsedMs      float64 // mean wall time of one watch
	ClustersPerSec float64
	MBps           float64 // delivered payload bytes per second / 1e6
	// KernelSends / FallbackSends split the serving node's cluster sends by
	// the path taken (server.kernel_sends / server.fallback_sends), across
	// the warmup and every timed run. The kernel arm must show KernelSends
	// > 0 on Linux, or the study measured the fallback by mistake.
	KernelSends   int64
	FallbackSends int64
	// Procs is GOMAXPROCS during the run. Cross-framing speedup gates only
	// bind to the degree the runner can demonstrate them (see
	// FramingRegression): on one core, delivered MB/s measures total copies
	// of both directions and the receive side dominates, so the kernel
	// path's sender-side savings cannot show up as wall-clock throughput.
	Procs int
}

// FramingStudy runs Ext-13.
func FramingStudy(cfg FramingStudyConfig) ([]FramingRow, error) {
	if len(cfg.ClusterSizes) == 0 {
		return nil, errors.New("framing study: no cluster sizes")
	}
	if cfg.TitleClusters <= 0 {
		return nil, errors.New("framing study: need a positive title length")
	}
	if cfg.Runs <= 0 {
		return nil, errors.New("framing study: need at least one run")
	}
	var out []FramingRow
	for _, size := range cfg.ClusterSizes {
		if size <= 0 {
			return nil, fmt.Errorf("framing study: bad cluster size %d", size)
		}
		for _, framing := range []string{FramingJSON, FramingBinary, FramingKernel} {
			row, err := framingArm(framing, size, cfg.TitleClusters, cfg.Runs)
			if err != nil {
				return nil, fmt.Errorf("framing study %s @%d: %w", framing, size, err)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// framingArm brings up one live server holding a TitleClusters-long title at
// the given cluster size and measures one framing's delivery against it. The
// kernel arm stores its blocks in a temporary directory so resident clusters
// are served off descriptors; the other arms use the in-memory store.
func framingArm(framing string, clusterBytes int64, titleClusters, runs int) (FramingRow, error) {
	g, err := grnet.Backbone()
	if err != nil {
		return FramingRow{}, err
	}
	d := db.New(g)
	titleBytes := clusterBytes * int64(titleClusters)
	// Three disks, each sized to hold its share of the stripe with headroom.
	var arr *disk.Array
	if framing == FramingKernel {
		dir, err := os.MkdirTemp("", "dvod-framing-")
		if err != nil {
			return FramingRow{}, err
		}
		defer os.RemoveAll(dir)
		arr, err = disk.NewUniformFileArray("fr", 3, titleBytes, dir)
		if err != nil {
			return FramingRow{}, err
		}
	} else {
		arr, err = disk.NewUniformArray("fr", 3, titleBytes)
		if err != nil {
			return FramingRow{}, err
		}
	}
	dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: clusterBytes})
	if err != nil {
		return FramingRow{}, err
	}
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		return FramingRow{}, err
	}
	book := transport.NewAddrBook()
	srv, err := server.New(server.Config{
		Node:         grnet.Athens,
		DB:           d,
		Planner:      planner,
		Array:        arr,
		Cache:        dma,
		ClusterBytes: clusterBytes,
		Book:         book,
	})
	if err != nil {
		return FramingRow{}, err
	}
	if err := srv.Start(); err != nil {
		return FramingRow{}, err
	}
	defer srv.Close()
	if err := srv.WaitReady(5 * time.Second); err != nil {
		return FramingRow{}, err
	}
	title := media.Title{
		Name:        fmt.Sprintf("fr-%d", clusterBytes),
		SizeBytes:   titleBytes,
		BitrateMbps: 4,
	}
	if err := d.Catalog().AddTitle(title); err != nil {
		return FramingRow{}, err
	}
	if err := srv.Preload(title); err != nil {
		return FramingRow{}, err
	}

	opts := []client.Option{client.WithoutVerification()}
	if framing == FramingJSON {
		opts = append(opts, client.WithoutBinaryFraming())
	}
	p, err := client.NewPlayer(grnet.Athens, book, opts...)
	if err != nil {
		return FramingRow{}, err
	}
	row := FramingRow{
		Framing:      framing,
		ClusterBytes: clusterBytes,
		Procs:        runtime.GOMAXPROCS(0),
	}
	var elapsed time.Duration
	for run := 0; run < runs+1; run++ {
		stats, err := p.Watch(title.Name)
		if err != nil {
			return FramingRow{}, fmt.Errorf("%s watch: %w", framing, err)
		}
		wantBinary := framing != FramingJSON
		if stats.BinaryFraming != wantBinary {
			return FramingRow{}, fmt.Errorf("%s watch negotiated binary=%v", framing, stats.BinaryFraming)
		}
		if run == 0 {
			continue // warmup
		}
		row.Clusters = stats.NumClusters
		elapsed += stats.Elapsed
	}
	snap := srv.Metrics().Snapshot()
	row.KernelSends = snap.Counters["server.kernel_sends"]
	row.FallbackSends = snap.Counters["server.fallback_sends"]
	mean := elapsed / time.Duration(runs)
	row.ElapsedMs = float64(mean) / float64(time.Millisecond)
	if mean > 0 {
		sec := mean.Seconds()
		row.ClustersPerSec = float64(row.Clusters) / sec
		row.MBps = float64(titleBytes) / sec / 1e6
	}
	return row, nil
}

// Ext-13 regression-gate thresholds, shared with cmd/vodbench.
const (
	// FramingKernelSpeedupTarget is the kernel-over-binary delivered-MB/s
	// ratio expected at the largest cluster size on runners with at least
	// FramingSpeedupMinProcs cores: sendfile halves the copies per delivered
	// byte, and with sender and receiver on separate cores the saving is
	// wall-clock.
	FramingKernelSpeedupTarget = 2.0
	// FramingSpeedupMinProcs is the smallest GOMAXPROCS at which the
	// speedup target binds. Below it sender and receiver time-share one
	// core, delivered MB/s measures the copies of BOTH directions, and the
	// receive side (which sendfile cannot touch) dominates — the honest
	// single-core expectation is parity, gated by FramingKernelParityFloor.
	FramingSpeedupMinProcs = 4
	// FramingKernelParityFloor is the kernel/binary MB/s floor on runners
	// below FramingSpeedupMinProcs: the kernel path must never make
	// delivery materially slower than the copy path it replaces. The floor
	// is deliberately loose — single-core virtualized runners show ±25%
	// run-to-run variance on this ratio — because its job is to catch a
	// broken kernel path (stalls, tiny chunking), not to assert a win the
	// topology cannot show.
	FramingKernelParityFloor = 0.5
)

// FramingRegression compares a fresh Ext-13 run against the committed
// baseline and returns one message per violated bound (empty means pass).
//
// Structural bounds bind everywhere: every baseline (framing, size) cell
// must still be measured, kernel rows must exist, and on Linux the kernel
// arm must actually take the kernel path (KernelSends > 0, or the study
// silently measured the fallback). Speedup bounds are proc-aware, like
// ContentionRegression: at FramingSpeedupMinProcs and above, the kernel arm
// must reach FramingKernelSpeedupTarget× the binary arm's MB/s at the
// largest cluster size; below that the target cannot physically manifest,
// so the gate prints a loud warning through the returned notes channel and
// demands only FramingKernelParityFloor× parity. A single-core baseline is
// never used to tighten bounds.
func FramingRegression(current, baseline []FramingRow) (bad, notes []string) {
	if len(current) == 0 {
		return []string{"framing run produced no rows"}, nil
	}
	type cell struct {
		framing string
		size    int64
	}
	cur := make(map[cell]FramingRow, len(current))
	var maxSize int64
	for _, r := range current {
		cur[cell{r.Framing, r.ClusterBytes}] = r
		if r.ClusterBytes > maxSize {
			maxSize = r.ClusterBytes
		}
	}
	for _, b := range baseline {
		if _, ok := cur[cell{b.Framing, b.ClusterBytes}]; !ok {
			bad = append(bad, fmt.Sprintf(
				"baseline cell %s@%dKiB missing from current run", b.Framing, b.ClusterBytes>>10))
		}
	}
	kernelRows := 0
	for _, r := range current {
		if r.Framing != FramingKernel {
			continue
		}
		kernelRows++
		if runtime.GOOS == "linux" && r.KernelSends == 0 {
			bad = append(bad, fmt.Sprintf(
				"kernel arm @%dKiB took zero kernel sends on linux (%d fallbacks): the study measured the fallback",
				r.ClusterBytes>>10, r.FallbackSends))
		}
	}
	if kernelRows == 0 {
		bad = append(bad, "current run has no kernel framing rows")
		return bad, notes
	}
	k, kok := cur[cell{FramingKernel, maxSize}]
	b, bok := cur[cell{FramingBinary, maxSize}]
	if kok && bok && b.MBps > 0 {
		ratio := k.MBps / b.MBps
		switch {
		case k.Procs >= FramingSpeedupMinProcs:
			if ratio < FramingKernelSpeedupTarget {
				bad = append(bad, fmt.Sprintf(
					"kernel/binary MB/s at %dKiB is %.2fx, want ≥ %.1fx at GOMAXPROCS %d",
					maxSize>>10, ratio, FramingKernelSpeedupTarget, k.Procs))
			}
		default:
			notes = append(notes, fmt.Sprintf(
				"WARNING: framing study ran at GOMAXPROCS %d (< %d): the %.1fx kernel speedup target "+
					"cannot manifest when sender and receiver time-share cores, so it is NOT enforced; "+
					"holding the kernel arm to ≥ %.2fx of binary instead. Regenerate the gate on a "+
					"multi-core runner to enforce the real target.",
				k.Procs, FramingSpeedupMinProcs, FramingKernelSpeedupTarget, FramingKernelParityFloor))
			if ratio < FramingKernelParityFloor {
				bad = append(bad, fmt.Sprintf(
					"kernel/binary MB/s at %dKiB is %.2fx, below the single-core parity floor %.2fx",
					maxSize>>10, ratio, FramingKernelParityFloor))
			}
		}
	}
	return bad, notes
}

// FormatFramingStudy renders Ext-13, appending each non-JSON row's speedup
// over the JSON row at the same cluster size and the kernel/fallback send
// split.
func FormatFramingStudy(rows []FramingRow) string {
	jsonPerSec := make(map[int64]float64)
	for _, r := range rows {
		if r.Framing == FramingJSON {
			jsonPerSec[r.ClusterBytes] = r.ClustersPerSec
		}
	}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "ClusterKiB\tFraming\tClusters\tElapsedMs\tClusters/s\tMB/s\tSpeedup\tKernel\tFallback")
	for _, r := range rows {
		speedup := "-"
		if j := jsonPerSec[r.ClusterBytes]; r.Framing != FramingJSON && j > 0 {
			speedup = fmt.Sprintf("%.2fx", r.ClustersPerSec/j)
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%.2f\t%.0f\t%.1f\t%s\t%d\t%d\n",
			r.ClusterBytes>>10, r.Framing, r.Clusters, r.ElapsedMs,
			r.ClustersPerSec, r.MBps, speedup, r.KernelSends, r.FallbackSends)
	}
	_ = w.Flush()
	return b.String()
}
