package experiments

import (
	"errors"
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"dvod/internal/cache"
	"dvod/internal/client"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/disk"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/server"
	"dvod/internal/transport"
)

// --- Ext-13: JSON vs binary cluster framing throughput -----------------------

// FramingStudyConfig parameterizes Ext-13: a live single-node deployment on
// localhost TCP delivers a resident title once per framing at each cluster
// size, measuring end-to-end delivery throughput of the canonical JSON
// framing against the negotiated binary cluster frames (DESIGN.md § "Wire
// format"). Content verification is disabled on the player so the measurement
// isolates the delivery pipeline — disk read, framing, socket, receive —
// rather than the synthetic-content checker, which costs the same under
// either framing.
type FramingStudyConfig struct {
	// ClusterSizes are the cluster sizes to sweep, in bytes.
	ClusterSizes []int64
	// TitleClusters is the number of clusters in the delivered title.
	TitleClusters int
	// Runs is how many timed watches are averaged per cell; an extra
	// untimed warmup watch precedes them.
	Runs int
}

// DefaultFramingStudyConfig sweeps the headline sizes (64 KiB, 256 KiB,
// 1 MiB) over a 24-cluster title, averaging 3 timed runs.
func DefaultFramingStudyConfig() FramingStudyConfig {
	return FramingStudyConfig{
		ClusterSizes:  []int64{64 << 10, 256 << 10, 1 << 20},
		TitleClusters: 24,
		Runs:          3,
	}
}

// FramingRow is one (framing, cluster size) outcome.
type FramingRow struct {
	Framing        string  // "json" or "binary"
	ClusterBytes   int64
	Clusters       int     // clusters delivered per watch
	ElapsedMs      float64 // mean wall time of one watch
	ClustersPerSec float64
	MBps           float64 // delivered payload bytes per second / 1e6
}

// FramingStudy runs Ext-13.
func FramingStudy(cfg FramingStudyConfig) ([]FramingRow, error) {
	if len(cfg.ClusterSizes) == 0 {
		return nil, errors.New("framing study: no cluster sizes")
	}
	if cfg.TitleClusters <= 0 {
		return nil, errors.New("framing study: need a positive title length")
	}
	if cfg.Runs <= 0 {
		return nil, errors.New("framing study: need at least one run")
	}
	var out []FramingRow
	for _, size := range cfg.ClusterSizes {
		if size <= 0 {
			return nil, fmt.Errorf("framing study: bad cluster size %d", size)
		}
		rows, err := framingCell(size, cfg.TitleClusters, cfg.Runs)
		if err != nil {
			return nil, fmt.Errorf("framing study @%d: %w", size, err)
		}
		out = append(out, rows...)
	}
	return out, nil
}

// framingCell brings up one live server holding a TitleClusters-long title at
// the given cluster size and measures a JSON and a binary delivery against it.
func framingCell(clusterBytes int64, titleClusters, runs int) ([]FramingRow, error) {
	g, err := grnet.Backbone()
	if err != nil {
		return nil, err
	}
	d := db.New(g)
	titleBytes := clusterBytes * int64(titleClusters)
	// Three disks, each sized to hold its share of the stripe with headroom.
	arr, err := disk.NewUniformArray("fr", 3, titleBytes)
	if err != nil {
		return nil, err
	}
	dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: clusterBytes})
	if err != nil {
		return nil, err
	}
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		return nil, err
	}
	book := transport.NewAddrBook()
	srv, err := server.New(server.Config{
		Node:         grnet.Athens,
		DB:           d,
		Planner:      planner,
		Array:        arr,
		Cache:        dma,
		ClusterBytes: clusterBytes,
		Book:         book,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Close()
	if err := srv.WaitReady(5 * time.Second); err != nil {
		return nil, err
	}
	title := media.Title{
		Name:        fmt.Sprintf("fr-%d", clusterBytes),
		SizeBytes:   titleBytes,
		BitrateMbps: 4,
	}
	if err := d.Catalog().AddTitle(title); err != nil {
		return nil, err
	}
	if err := srv.Preload(title); err != nil {
		return nil, err
	}

	var out []FramingRow
	for _, framing := range []string{"json", "binary"} {
		opts := []client.Option{client.WithoutVerification()}
		if framing == "json" {
			opts = append(opts, client.WithoutBinaryFraming())
		}
		p, err := client.NewPlayer(grnet.Athens, book, opts...)
		if err != nil {
			return nil, err
		}
		row := FramingRow{Framing: framing, ClusterBytes: clusterBytes}
		var elapsed time.Duration
		for run := 0; run < runs+1; run++ {
			stats, err := p.Watch(title.Name)
			if err != nil {
				return nil, fmt.Errorf("%s watch: %w", framing, err)
			}
			wantBinary := framing == "binary"
			if stats.BinaryFraming != wantBinary {
				return nil, fmt.Errorf("%s watch negotiated binary=%v", framing, stats.BinaryFraming)
			}
			if run == 0 {
				continue // warmup
			}
			row.Clusters = stats.NumClusters
			elapsed += stats.Elapsed
		}
		mean := elapsed / time.Duration(runs)
		row.ElapsedMs = float64(mean) / float64(time.Millisecond)
		if mean > 0 {
			sec := mean.Seconds()
			row.ClustersPerSec = float64(row.Clusters) / sec
			row.MBps = float64(titleBytes) / sec / 1e6
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatFramingStudy renders Ext-13, appending each binary row's speedup over
// the JSON row at the same cluster size.
func FormatFramingStudy(rows []FramingRow) string {
	jsonPerSec := make(map[int64]float64)
	for _, r := range rows {
		if r.Framing == "json" {
			jsonPerSec[r.ClusterBytes] = r.ClustersPerSec
		}
	}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "ClusterKiB\tFraming\tClusters\tElapsedMs\tClusters/s\tMB/s\tSpeedup")
	for _, r := range rows {
		speedup := "-"
		if j := jsonPerSec[r.ClusterBytes]; r.Framing == "binary" && j > 0 {
			speedup = fmt.Sprintf("%.2fx", r.ClustersPerSec/j)
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%.2f\t%.0f\t%.1f\t%s\n",
			r.ClusterBytes>>10, r.Framing, r.Clusters, r.ElapsedMs,
			r.ClustersPerSec, r.MBps, speedup)
	}
	_ = w.Flush()
	return b.String()
}
