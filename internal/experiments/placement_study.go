package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"dvod/internal/grnet"
	"dvod/internal/placement"
	"dvod/internal/topology"
)

// --- Ext-10: initial replica placement quality --------------------------------

// PlacementStudyConfig parameterizes the initial-placement comparison: how
// much does choosing the first k replica sites well (vs randomly, vs
// dumping everything at the hub) reduce the expected delivery cost the VRA
// sees?
type PlacementStudyConfig struct {
	// Ks are the replica counts to sweep.
	Ks []int
	// Sample fixes the network conditions the placement optimizes for.
	Sample grnet.SampleTime
	// RandomTrials averages this many random placements per k.
	RandomTrials int
	Seed         int64
}

// DefaultPlacementStudyConfig sweeps k = 1..3 under 4pm conditions.
func DefaultPlacementStudyConfig() PlacementStudyConfig {
	return PlacementStudyConfig{
		Ks:           []int{1, 2, 3},
		Sample:       grnet.At4pm,
		RandomTrials: 50,
		Seed:         1,
	}
}

// PlacementStudyRow is one k's outcome across strategies.
type PlacementStudyRow struct {
	K int
	// Optimal is the exact k-median expected cost.
	Optimal float64
	// OptimalSites lists the chosen sites.
	OptimalSites []topology.NodeID
	// RandomMean averages uniformly random placements.
	RandomMean float64
	// HubOnly places every replica at the best-connected hub (Athens),
	// wasting the extra copies — the naive origin deployment.
	HubOnly float64
}

// PlacementStudy runs Ext-10 over a skewed per-site demand (Patra and
// Heraklio dominate, mirroring large user populations behind thin links).
func PlacementStudy(cfg PlacementStudyConfig) ([]PlacementStudyRow, error) {
	if len(cfg.Ks) == 0 {
		return nil, errors.New("placement study: no k values")
	}
	if cfg.RandomTrials <= 0 {
		return nil, errors.New("placement study: need random trials")
	}
	snap, err := grnet.Snapshot(cfg.Sample)
	if err != nil {
		return nil, err
	}
	m, err := placement.NewCostMatrix(snap)
	if err != nil {
		return nil, err
	}
	demand := placement.Demand{
		grnet.Patra:        5,
		grnet.Heraklio:     4,
		grnet.Ioannina:     2,
		grnet.Xanthi:       2,
		grnet.Thessaloniki: 1,
		grnet.Athens:       1,
	}
	nodes := m.Nodes()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rows []PlacementStudyRow
	for _, k := range cfg.Ks {
		if k <= 0 {
			return nil, fmt.Errorf("placement study: bad k %d", k)
		}
		sites, err := placement.Optimize(m, demand, k)
		if err != nil {
			return nil, err
		}
		opt, err := m.ExpectedCost(sites, demand)
		if err != nil {
			return nil, err
		}
		var randSum float64
		for range cfg.RandomTrials {
			perm := rng.Perm(len(nodes))
			set := make([]topology.NodeID, k)
			for i := range k {
				set[i] = nodes[perm[i]]
			}
			c, err := m.ExpectedCost(set, demand)
			if err != nil {
				return nil, err
			}
			randSum += c
		}
		hub, err := m.ExpectedCost([]topology.NodeID{grnet.Athens}, demand)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PlacementStudyRow{
			K:            k,
			Optimal:      opt,
			OptimalSites: sites,
			RandomMean:   randSum / float64(cfg.RandomTrials),
			HubOnly:      hub,
		})
	}
	return rows, nil
}

// FormatPlacementStudy renders Ext-10.
func FormatPlacementStudy(rows []PlacementStudyRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "K\tOptimalCost\tOptimalSites\tRandomMean\tHubOnly")
	for _, r := range rows {
		sites := make([]string, len(r.OptimalSites))
		for i, s := range r.OptimalSites {
			sites[i] = string(s)
		}
		fmt.Fprintf(w, "%d\t%.4f\t%s\t%.4f\t%.4f\n",
			r.K, r.Optimal, strings.Join(sites, "+"), r.RandomMean, r.HubOnly)
	}
	_ = w.Flush()
	return b.String()
}
