package experiments

import (
	"strings"
	"testing"
)

// TestPrefixStudyShape runs a scaled-down Ext-20 end to end and checks the
// structural claims that must hold at any scale: the prefix arms start every
// session off local disk, the relay arm shares one upstream, and the relay
// arm's origin reads collapse relative to baseline.
func TestPrefixStudyShape(t *testing.T) {
	cfg := PrefixStudyConfig{
		Watchers:       15,
		Relays:         5,
		TitleClusters:  32,
		ClusterBytes:   1 << 10,
		PrefixClusters: 16,
		Window:         32,
	}
	rows, err := PrefixStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 arms", len(rows))
	}
	byArm := make(map[string]PrefixRow, 3)
	for _, r := range rows {
		byArm[r.Arm] = r
		if r.Watchers != cfg.Watchers || r.Clusters != cfg.TitleClusters {
			t.Fatalf("row geometry drifted: %+v", r)
		}
	}
	base := byArm[PrefixArmBaseline]
	if base.StartupRemoteFetches < int64(cfg.Watchers) {
		t.Fatalf("baseline remote startups = %d, want ≥ %d", base.StartupRemoteFetches, cfg.Watchers)
	}
	if base.PrefixK != 0 || base.PrefixServed != 0 {
		t.Fatalf("baseline arm touched the prefix tier: %+v", base)
	}
	for _, arm := range []string{PrefixArmPrefix, PrefixArmRelay} {
		r := byArm[arm]
		if r.PrefixK != cfg.PrefixClusters {
			t.Fatalf("%s pinned K=%d, want %d", arm, r.PrefixK, cfg.PrefixClusters)
		}
		if r.StartupRemoteFetches != 0 {
			t.Fatalf("%s arm paid %d remote startups", arm, r.StartupRemoteFetches)
		}
		// Every session's head is served off the local prefix store.
		want := int64(cfg.Watchers) * int64(cfg.PrefixClusters)
		if r.PrefixServed != want {
			t.Fatalf("%s prefix reads = %d, want %d", arm, r.PrefixServed, want)
		}
	}
	relay := byArm[PrefixArmRelay]
	if relay.RelayUpstreams == 0 {
		t.Fatal("relay arm opened no upstream subscriptions")
	}
	if relay.RelayFallbacks != 0 {
		t.Fatalf("relay arm fell back %d times on a healthy origin", relay.RelayFallbacks)
	}
	if base.OriginReads == 0 || relay.OriginReads == 0 {
		t.Fatalf("origin reads unmeasured: baseline %d relay %d", base.OriginReads, relay.OriginReads)
	}
	if cut := float64(base.OriginReads) / float64(relay.OriginReads); cut < PrefixOriginReadCutTarget {
		t.Fatalf("origin-read cut %.2fx below the %.0fx target even at toy scale (baseline %d, relay %d)",
			cut, PrefixOriginReadCutTarget, base.OriginReads, relay.OriginReads)
	}
	if s := FormatPrefixStudy(rows); !strings.Contains(s, PrefixArmRelay) {
		t.Fatalf("format dropped the relay arm:\n%s", s)
	}
	// A healthy run gates cleanly against itself.
	if bad, _ := PrefixRegression(rows, rows); len(bad) != 0 {
		t.Fatalf("self-comparison flagged: %v", bad)
	}
}

func TestPrefixStudyValidation(t *testing.T) {
	ok := PrefixStudyConfig{Watchers: 1, Relays: 1, TitleClusters: 4, ClusterBytes: 1024, PrefixClusters: 2, Window: 4}
	bad := []func(*PrefixStudyConfig){
		func(c *PrefixStudyConfig) { c.Watchers = 0 },
		func(c *PrefixStudyConfig) { c.Relays = 0 },
		func(c *PrefixStudyConfig) { c.Relays = 99 },
		func(c *PrefixStudyConfig) { c.TitleClusters = 0 },
		func(c *PrefixStudyConfig) { c.PrefixClusters = 0 },
		func(c *PrefixStudyConfig) { c.PrefixClusters = 5 },
		func(c *PrefixStudyConfig) { c.Window = 0 },
	}
	for i, mutate := range bad {
		cfg := ok
		mutate(&cfg)
		if _, err := PrefixStudy(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

// prefixFixture builds a three-arm run: baseline pays one remote startup per
// session and reads the whole burst at the origin; the relay arm cuts origin
// reads by the given factor and startup P99 by the given ratio.
func prefixFixture(procs int, readCut, startupRatio float64) []PrefixRow {
	const watchers, reads = 120, 5120
	baseP99 := 40.0
	return []PrefixRow{
		{Arm: PrefixArmBaseline, Watchers: watchers, OriginReads: reads,
			StartupP99Ms: baseP99, StartupRemoteFetches: watchers, Procs: procs},
		{Arm: PrefixArmPrefix, Watchers: watchers, PrefixK: 512, OriginReads: reads / 2,
			StartupP99Ms: baseP99 * startupRatio, PrefixServed: 512 * watchers, Procs: procs},
		{Arm: PrefixArmRelay, Watchers: watchers, PrefixK: 512,
			OriginReads:  int64(float64(reads) / readCut),
			StartupP99Ms: baseP99 * startupRatio, PrefixServed: 512 * watchers,
			RelayUpstreams: 5, Procs: procs},
	}
}

func TestPrefixRegressionGates(t *testing.T) {
	base := prefixFixture(1, 10, 0.9)

	// Healthy single-core run: structural gates pass, the timing gate is
	// dropped entirely with a loud warning — even a startup inversion (the
	// CPU-bound prefix arms measuring slower than baseline) must pass, since
	// single-core time-to-first-cluster is scheduler queueing.
	bad, notes := PrefixRegression(prefixFixture(1, 10, 10.0), base)
	if len(bad) != 0 {
		t.Fatalf("healthy single-core run flagged: %v", bad)
	}
	if len(notes) == 0 || !strings.Contains(notes[0], "WARNING") {
		t.Fatalf("single-core run must carry a loud warning, got %v", notes)
	}

	// Multi-core runs enforce the halving target, without a warning.
	bad, notes = PrefixRegression(prefixFixture(8, 10, 0.4), base)
	if len(bad) != 0 || len(notes) != 0 {
		t.Fatalf("healthy multi-core run: bad=%v notes=%v", bad, notes)
	}
	if bad, _ := PrefixRegression(prefixFixture(8, 10, 0.8), base); len(bad) == 0 {
		t.Fatal("0.8x startup passed the multi-core halving gate")
	}

	// Origin-read cut below 5x fails everywhere.
	if bad, _ := PrefixRegression(prefixFixture(1, 3, 0.9), base); len(bad) == 0 {
		t.Fatal("3x read cut passed the 5x gate")
	}
	// A cut >20% below the committed baseline's fails even above 5x.
	if bad, _ := PrefixRegression(prefixFixture(1, 6, 0.9), prefixFixture(1, 12, 0.9)); len(bad) == 0 {
		t.Fatal("6x cut passed against a committed 12x baseline")
	}

	// Remote startups on a prefix arm are the tier not working.
	broken := prefixFixture(1, 10, 0.9)
	broken[2].StartupRemoteFetches = 3
	if bad, _ := PrefixRegression(broken, base); len(bad) == 0 {
		t.Fatal("remote startups on the relay arm passed")
	}
	// So are relay fallbacks on a healthy origin, or zero upstreams.
	broken = prefixFixture(1, 10, 0.9)
	broken[2].RelayFallbacks = 1
	if bad, _ := PrefixRegression(broken, base); len(bad) == 0 {
		t.Fatal("relay fallbacks passed")
	}
	broken = prefixFixture(1, 10, 0.9)
	broken[2].RelayUpstreams = 0
	if bad, _ := PrefixRegression(broken, base); len(bad) == 0 {
		t.Fatal("zero upstreams passed")
	}
	// A baseline arm that never paid remote startups measured the wrong thing.
	broken = prefixFixture(1, 10, 0.9)
	broken[0].StartupRemoteFetches = 0
	if bad, _ := PrefixRegression(broken, base); len(bad) == 0 {
		t.Fatal("remote-free baseline arm passed")
	}

	if bad, _ := PrefixRegression(prefixFixture(1, 10, 0.9)[:2], base); len(bad) == 0 {
		t.Fatal("missing relay arm passed")
	}
	if bad, _ := PrefixRegression(nil, base); len(bad) == 0 {
		t.Fatal("empty run passed")
	}
}

func TestPercentileFloat(t *testing.T) {
	if got := percentileFloat(nil, 0.99); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // already sorted 1..100
	}
	if got := percentileFloat(vals, 0.99); got != 99 {
		t.Fatalf("P99 of 1..100 = %v, want 99", got)
	}
	if got := percentileFloat(vals, 0.5); got != 50 {
		t.Fatalf("P50 of 1..100 = %v, want 50", got)
	}
	if got := percentileFloat([]float64{7}, 0.99); got != 7 {
		t.Fatalf("singleton P99 = %v", got)
	}
}
