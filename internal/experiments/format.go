package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"dvod/internal/grnet"
	"dvod/internal/routing"
	"dvod/internal/topology"
)

// FormatTable2 renders the measured network-status table the way the paper
// prints Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Link\t8am\t10am\t4pm\t6pm")
	for _, r := range rows {
		fmt.Fprintf(w, "%s (%gMb link)", r.Link, r.CapacityMbps)
		for _, c := range r.Cells {
			fmt.Fprintf(w, "\t%.4g Mb %.4g%%", c.UsedMbps, c.Utilization*100)
		}
		fmt.Fprintln(w)
	}
	_ = w.Flush()
	return b.String()
}

// FormatTable3 renders the recomputed LVN table next to the published
// values.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Link\t8am\t10am\t4pm\t6pm")
	for _, r := range rows {
		fmt.Fprintf(w, "%s", r.Link)
		for _, v := range r.Measured {
			fmt.Fprintf(w, "\t%.4f", v)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  (paper)")
		for _, v := range r.Paper {
			fmt.Fprintf(w, "\t%.4f", v)
		}
		fmt.Fprintln(w)
	}
	_ = w.Flush()
	return b.String()
}

// FormatTrace renders a Dijkstra step table in the layout of the paper's
// Tables 4 and 5: one row per permanent-set extension, one D/Path column
// pair per non-source node, "R" for unreachable labels.
func FormatTrace(steps []routing.TraceStep, source topology.NodeID) string {
	if len(steps) == 0 {
		return "(no trace)\n"
	}
	// Column order: all non-source nodes, sorted.
	var cols []topology.NodeID
	for n := range steps[len(steps)-1].Labels {
		cols = append(cols, n)
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })

	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "Step\tNodes")
	for _, n := range cols {
		fmt.Fprintf(w, "\tD(%s)\tPath", n)
	}
	fmt.Fprintln(w)
	for _, s := range steps {
		set := make([]string, len(s.Permanent))
		for i, n := range s.Permanent {
			set[i] = string(n)
		}
		fmt.Fprintf(w, "%d\t{%s}", s.Step, strings.Join(set, ","))
		for _, n := range cols {
			l := s.Labels[n]
			if !l.Reachable {
				fmt.Fprintf(w, "\tR\t-")
				continue
			}
			p := routing.Path{Nodes: l.Path}
			fmt.Fprintf(w, "\t%.3f\t%s", l.Dist, p)
		}
		fmt.Fprintln(w)
	}
	_ = w.Flush()
	return b.String()
}

// FormatExperiment renders one reproduced experiment with its paper
// comparison.
func FormatExperiment(res ExperimentResult) string {
	var b strings.Builder
	exp := res.Experiment
	fmt.Fprintf(&b, "Experiment %s (%s): client at %s (%s), title on {",
		exp.ID, exp.Time, exp.Home, grnet.CityName(exp.Home))
	for i, c := range exp.Candidates {
		if i > 0 {
			fmt.Fprint(&b, ", ")
		}
		fmt.Fprintf(&b, "%s", grnet.CityName(c))
	}
	fmt.Fprintln(&b, "}")
	for _, alt := range res.Alternatives {
		fmt.Fprintf(&b, "  best path to %s (%s): %s cost %.4f\n",
			alt.Server, grnet.CityName(alt.Server), alt.Path, alt.Path.Cost)
	}
	fmt.Fprintf(&b, "  VRA decision: download from %s (%s) via %s, cost %.4f\n",
		res.Decision.Server, grnet.CityName(res.Decision.Server),
		res.Decision.Path, res.Decision.Cost)
	fmt.Fprintf(&b, "  paper:        download from %s (%s) via %s, cost %.4f\n",
		exp.PaperServer, grnet.CityName(exp.PaperServer), exp.PaperPath, exp.PaperCost)
	if res.MatchesPaper {
		fmt.Fprintln(&b, "  MATCHES PAPER")
	} else if exp.Erratum != "" {
		fmt.Fprintf(&b, "  DIFFERS (documented erratum: %s)\n", exp.Erratum)
	} else {
		fmt.Fprintln(&b, "  DIFFERS FROM PAPER")
	}
	return b.String()
}

// FormatRoutingStudy renders Ext-1.
func FormatRoutingStudy(rows []RoutingStudyRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Policy\tSessions\tFailed\tMeanPathCost\tMeanStartup\tStallRatio\tSwitches")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.4f\t%v\t%.4f\t%d\n",
			r.Policy, r.Sessions, r.Failed, r.MeanPathCost,
			r.MeanStartup.Round(1e6), r.StallRatio, r.Switches)
	}
	_ = w.Flush()
	return b.String()
}

// FormatCacheStudy renders Ext-2.
func FormatCacheStudy(cells []CacheStudyCell) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Theta\tPolicy\tHitRatio\tEvictions")
	for _, c := range cells {
		fmt.Fprintf(w, "%.3f\t%s\t%.4f\t%d\n", c.Theta, c.Policy, c.HitRatio, c.Evictions)
	}
	_ = w.Flush()
	return b.String()
}

// FormatClusterSweep renders Ext-3.
func FormatClusterSweep(rows []ClusterSweepRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "ClusterBytes\tClusters\tSwitched\tSwitches\tElapsed\tStallTime")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%v\t%d\t%v\t%v\n",
			r.ClusterBytes, r.NumClusters, r.Switched, r.Switches,
			r.Elapsed.Round(1e6), r.StallTime.Round(1e6))
	}
	_ = w.Flush()
	return b.String()
}

// FormatStripingSweep renders Ext-4.
func FormatStripingSweep(rows []StripingSweepRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Disks\tSequentialRead\tParallelRead\tSpeedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%v\t%.2fx\n",
			r.NumDisks, r.SequentialRead.Round(1e6), r.ParallelRead.Round(1e6), r.Speedup)
	}
	_ = w.Flush()
	return b.String()
}

// FormatKSweep renders Ext-5.
func FormatKSweep(rows []KSweepRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "K\tExpA\tExpB\tExpC\tExpD\tSameAsK=10")
	for _, r := range rows {
		fmt.Fprintf(w, "%g", r.K)
		for _, id := range []string{"A", "B", "C", "D"} {
			fmt.Fprintf(w, "\t%s", r.Decisions[id])
		}
		fmt.Fprintf(w, "\t%v\n", r.SameAsDefault)
	}
	_ = w.Flush()
	return b.String()
}
