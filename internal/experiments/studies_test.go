package experiments

import (
	"strings"
	"testing"
	"time"

	"dvod/internal/media"
)

func TestRoutingStudySmall(t *testing.T) {
	cfg := DefaultRoutingStudyConfig()
	cfg.Duration = 20 * time.Minute
	cfg.RatePerSec = 0.01
	rows, err := RoutingStudy(cfg)
	if err != nil {
		t.Fatalf("RoutingStudy: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 policies", len(rows))
	}
	byPolicy := map[string]RoutingStudyRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
		if r.Sessions == 0 {
			t.Fatalf("policy %s completed no sessions", r.Policy)
		}
		if r.MeanPathCost < 0 || r.StallRatio < 0 {
			t.Fatalf("policy %s has negative metrics: %+v", r.Policy, r)
		}
	}
	// All policies see the same trace, so session counts must agree.
	base := byPolicy["vra"].Sessions + byPolicy["vra"].Failed
	for _, r := range rows {
		if r.Sessions+r.Failed != base {
			t.Fatalf("policy %s handled %d requests, vra handled %d",
				r.Policy, r.Sessions+r.Failed, base)
		}
	}
	// The headline shape: the VRA's delivered path cost does not exceed
	// any baseline's (it optimizes exactly that metric).
	vra := byPolicy["vra"].MeanPathCost
	for _, name := range []string{"minhop", "random", "static"} {
		if vra > byPolicy[name].MeanPathCost+1e-9 {
			t.Errorf("vra mean path cost %.4f exceeds %s's %.4f",
				vra, name, byPolicy[name].MeanPathCost)
		}
	}
	out := FormatRoutingStudy(rows)
	if !strings.Contains(out, "vra") || !strings.Contains(out, "StallRatio") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestRoutingStudyValidation(t *testing.T) {
	if _, err := RoutingStudy(RoutingStudyConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestCacheStudyShape(t *testing.T) {
	cfg := DefaultCacheStudyConfig()
	cfg.Requests = 600
	cells, err := CacheStudy(cfg)
	if err != nil {
		t.Fatalf("CacheStudy: %v", err)
	}
	if len(cells) != len(cfg.Thetas)*4 {
		t.Fatalf("cells = %d", len(cells))
	}
	get := func(theta float64, policy string) CacheStudyCell {
		for _, c := range cells {
			if c.Theta == theta && c.Policy == policy {
				return c
			}
		}
		t.Fatalf("missing cell %g/%s", theta, policy)
		return CacheStudyCell{}
	}
	// No-cache never hits.
	for _, theta := range cfg.Thetas {
		if hr := get(theta, "none").HitRatio; hr != 0 {
			t.Fatalf("none hit ratio = %g", hr)
		}
	}
	// Every caching policy beats no-cache, and hit ratios rise with skew.
	for _, policy := range []string{"dma", "lru", "lfu"} {
		low := get(cfg.Thetas[0], policy).HitRatio
		high := get(cfg.Thetas[len(cfg.Thetas)-1], policy).HitRatio
		if high <= low {
			t.Errorf("%s: hit ratio does not rise with skew (%g → %g)", policy, low, high)
		}
		if high == 0 {
			t.Errorf("%s: zero hit ratio at high skew", policy)
		}
	}
	out := FormatCacheStudy(cells)
	if !strings.Contains(out, "dma") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestCacheStudyValidation(t *testing.T) {
	if _, err := CacheStudy(CacheStudyConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := DefaultCacheStudyConfig()
	bad.CacheFraction = 2
	if _, err := CacheStudy(bad); err == nil {
		t.Fatal("bad cache fraction accepted")
	}
}

func TestClusterSweepShape(t *testing.T) {
	cfg := DefaultClusterSweepConfig()
	// Keep the trial quick: 1 MiB title, three sizes.
	cfg.TitleBytes = 1 << 20
	cfg.ClusterSizes = []int64{32 << 10, 256 << 10, 1 << 20}
	cfg.CongestAfter = time.Second
	rows, err := ClusterSweep(cfg)
	if err != nil {
		t.Fatalf("ClusterSweep: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Single-cluster delivery can never switch; the smallest cluster must.
	last := rows[len(rows)-1]
	if last.NumClusters != 1 {
		t.Fatalf("largest cluster rows = %+v", last)
	}
	if last.Switched {
		t.Fatal("single-cluster session switched")
	}
	if !rows[0].Switched {
		t.Fatalf("smallest cluster did not switch: %+v", rows[0])
	}
	// The headline shape: smaller clusters recover faster.
	if rows[0].Elapsed >= last.Elapsed {
		t.Errorf("small-cluster elapsed %v not better than whole-title %v",
			rows[0].Elapsed, last.Elapsed)
	}
	out := FormatClusterSweep(rows)
	if !strings.Contains(out, "Switched") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestClusterSweepValidation(t *testing.T) {
	if _, err := ClusterSweep(ClusterSweepConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestStripingSweepShape(t *testing.T) {
	title := media.Title{Name: "s", SizeBytes: 8 << 20, BitrateMbps: 1.5}
	rows, err := StripingSweep(title, 256<<10, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatalf("StripingSweep: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Speedup < 0.99 || rows[0].Speedup > 1.01 {
		t.Fatalf("1-disk speedup = %g, want 1", rows[0].Speedup)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ParallelRead >= rows[i-1].ParallelRead {
			t.Errorf("read time did not improve from %d to %d disks (%v → %v)",
				rows[i-1].NumDisks, rows[i].NumDisks,
				rows[i-1].ParallelRead, rows[i].ParallelRead)
		}
	}
	// Speedup is sublinear (seek overhead) but substantial.
	lastRow := rows[len(rows)-1]
	if lastRow.Speedup < 4 {
		t.Errorf("8-disk speedup = %.2f, want ≥4", lastRow.Speedup)
	}
	out := FormatStripingSweep(rows)
	if !strings.Contains(out, "Speedup") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestStripingSweepValidation(t *testing.T) {
	title := media.Title{Name: "s", SizeBytes: 1 << 20, BitrateMbps: 1.5}
	if _, err := StripingSweep(media.Title{}, 1024, []int{1}); err == nil {
		t.Fatal("invalid title accepted")
	}
	if _, err := StripingSweep(title, 0, []int{1}); err == nil {
		t.Fatal("zero cluster accepted")
	}
	if _, err := StripingSweep(title, 1024, []int{0}); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestKSweepStability(t *testing.T) {
	rows, err := KSweep([]float64{5, 10, 20})
	if err != nil {
		t.Fatalf("KSweep: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// K = 10 trivially matches itself.
	for _, r := range rows {
		if r.K == 10 && !r.SameAsDefault {
			t.Fatal("K=10 row differs from itself")
		}
		if len(r.Decisions) != 4 {
			t.Fatalf("decisions = %v", r.Decisions)
		}
	}
	out := FormatKSweep(rows)
	if !strings.Contains(out, "ExpA") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestKSweepValidation(t *testing.T) {
	if _, err := KSweep(nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := KSweep([]float64{-1}); err == nil {
		t.Fatal("negative K accepted")
	}
}
