package experiments

import (
	"runtime"
	"strings"
	"testing"
)

func TestFramingStudyShape(t *testing.T) {
	cfg := FramingStudyConfig{
		ClusterSizes:  []int64{16 << 10, 64 << 10},
		TitleClusters: 4,
		Runs:          1,
	}
	rows, err := FramingStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.ClusterSizes)*3 {
		t.Fatalf("rows = %d, want %d", len(rows), len(cfg.ClusterSizes)*3)
	}
	for _, r := range rows {
		if r.Framing != FramingJSON && r.Framing != FramingBinary && r.Framing != FramingKernel {
			t.Fatalf("framing = %q", r.Framing)
		}
		if r.Clusters != cfg.TitleClusters {
			t.Fatalf("%s@%d delivered %d clusters, want %d",
				r.Framing, r.ClusterBytes, r.Clusters, cfg.TitleClusters)
		}
		if r.ClustersPerSec <= 0 || r.MBps <= 0 || r.ElapsedMs <= 0 {
			t.Fatalf("non-positive throughput row: %+v", r)
		}
		if r.Procs != runtime.GOMAXPROCS(0) {
			t.Fatalf("row records procs %d, runtime says %d", r.Procs, runtime.GOMAXPROCS(0))
		}
		switch r.Framing {
		case FramingKernel:
			if runtime.GOOS == "linux" && r.KernelSends == 0 {
				t.Fatalf("kernel arm made zero kernel sends on linux: %+v", r)
			}
		default:
			if r.KernelSends != 0 {
				t.Fatalf("%s arm counted kernel sends: %+v", r.Framing, r)
			}
		}
	}
	if s := FormatFramingStudy(rows); s == "" {
		t.Fatal("empty format")
	}
}

func TestFramingStudyValidation(t *testing.T) {
	bad := []FramingStudyConfig{
		{},
		{ClusterSizes: []int64{1024}},
		{ClusterSizes: []int64{1024}, TitleClusters: 2},
		{ClusterSizes: []int64{0}, TitleClusters: 2, Runs: 1},
	}
	for i, cfg := range bad {
		if _, err := FramingStudy(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

// framingFixture builds a consistent three-arm run at the given procs and
// kernel/binary throughput ratio.
func framingFixture(procs int, ratio float64) []FramingRow {
	size := int64(1 << 20)
	rows := []FramingRow{
		{Framing: FramingJSON, ClusterBytes: size, MBps: 800, Procs: procs},
		{Framing: FramingBinary, ClusterBytes: size, MBps: 1000, Procs: procs},
		{Framing: FramingKernel, ClusterBytes: size, MBps: 1000 * ratio, Procs: procs, KernelSends: 96},
	}
	return rows
}

func TestFramingRegressionGates(t *testing.T) {
	base := framingFixture(1, 0.9)

	// Healthy single-core run: parity floor holds, warning is loud, no
	// violations.
	bad, notes := FramingRegression(framingFixture(1, 0.9), base)
	if len(bad) != 0 {
		t.Fatalf("healthy single-core run flagged: %v", bad)
	}
	if len(notes) == 0 || !strings.Contains(notes[0], "WARNING") {
		t.Fatalf("single-core run must carry a loud warning, got %v", notes)
	}

	// Single-core run below the parity floor fails.
	if bad, _ := FramingRegression(framingFixture(1, 0.4), base); len(bad) == 0 {
		t.Fatal("kernel at 0.4x binary passed the single-core parity floor")
	}

	// Multi-core runs enforce the full speedup target, without a warning.
	bad, notes = FramingRegression(framingFixture(8, 2.4), base)
	if len(bad) != 0 || len(notes) != 0 {
		t.Fatalf("healthy multi-core run: bad=%v notes=%v", bad, notes)
	}
	if bad, _ := FramingRegression(framingFixture(8, 1.5), base); len(bad) == 0 {
		t.Fatal("kernel at 1.5x binary passed the multi-core 2x gate")
	}

	// A kernel row with zero kernel sends on linux is the study measuring
	// the wrong path.
	if runtime.GOOS == "linux" {
		broken := framingFixture(1, 0.9)
		broken[2].KernelSends = 0
		if bad, _ := FramingRegression(broken, base); len(bad) == 0 {
			t.Fatal("zero kernel sends passed")
		}
	}

	// Baseline cells must stay measured.
	missing := framingFixture(1, 0.9)[:2] // kernel row dropped
	if bad, _ := FramingRegression(missing, base); len(bad) == 0 {
		t.Fatal("missing kernel rows passed")
	}
	if bad, _ := FramingRegression(nil, base); len(bad) == 0 {
		t.Fatal("empty run passed")
	}
}
