package experiments

import "testing"

func TestFramingStudyShape(t *testing.T) {
	cfg := FramingStudyConfig{
		ClusterSizes:  []int64{16 << 10, 64 << 10},
		TitleClusters: 4,
		Runs:          1,
	}
	rows, err := FramingStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.ClusterSizes)*2 {
		t.Fatalf("rows = %d, want %d", len(rows), len(cfg.ClusterSizes)*2)
	}
	for _, r := range rows {
		if r.Framing != "json" && r.Framing != "binary" {
			t.Fatalf("framing = %q", r.Framing)
		}
		if r.Clusters != cfg.TitleClusters {
			t.Fatalf("%s@%d delivered %d clusters, want %d",
				r.Framing, r.ClusterBytes, r.Clusters, cfg.TitleClusters)
		}
		if r.ClustersPerSec <= 0 || r.MBps <= 0 || r.ElapsedMs <= 0 {
			t.Fatalf("non-positive throughput row: %+v", r)
		}
	}
	if s := FormatFramingStudy(rows); s == "" {
		t.Fatal("empty format")
	}
}

func TestFramingStudyValidation(t *testing.T) {
	bad := []FramingStudyConfig{
		{},
		{ClusterSizes: []int64{1024}},
		{ClusterSizes: []int64{1024}, TitleClusters: 2},
		{ClusterSizes: []int64{0}, TitleClusters: 2, Runs: 1},
	}
	for i, cfg := range bad {
		if _, err := FramingStudy(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}
