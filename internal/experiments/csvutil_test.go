package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWriteRowsCSVStudies(t *testing.T) {
	rows := []RoutingStudyRow{
		{Policy: "vra", Sessions: 10, Failed: 0, MeanPathCost: 0.5,
			MeanStartup: 250 * time.Millisecond, StallRatio: 0.01, Switches: 2},
		{Policy: "minhop", Sessions: 10, Failed: 1, MeanPathCost: 1.5,
			MeanStartup: time.Second, StallRatio: 0.02, Switches: 0},
	}
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Policy,Sessions,Failed,MeanPathCost,MeanStartup,StallRatio,Switches" {
		t.Fatalf("header = %s", lines[0])
	}
	// Durations render in seconds.
	if !strings.Contains(lines[1], "0.25") {
		t.Fatalf("duration not in seconds: %s", lines[1])
	}
	if !strings.Contains(lines[2], "minhop,10,1,1.5,1,") {
		t.Fatalf("record = %s", lines[2])
	}
}

func TestWriteRowsCSVBooleans(t *testing.T) {
	rows := []ClusterSweepRow{{ClusterBytes: 1024, NumClusters: 4, Switched: true,
		Switches: 1, Elapsed: time.Second, StallTime: 0}}
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "true") {
		t.Fatalf("bool missing:\n%s", buf.String())
	}
}

func TestWriteRowsCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, 42); err == nil {
		t.Fatal("non-slice accepted")
	}
	if err := WriteRowsCSV(&buf, []RoutingStudyRow{}); err == nil {
		t.Fatal("empty slice accepted")
	}
	if err := WriteRowsCSV(&buf, []int{1}); err == nil {
		t.Fatal("non-struct elements accepted")
	}
}
