package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"dvod/internal/cache"
	"dvod/internal/client"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/disk"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/server"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// --- Ext-14: shared-prefix stream merging ------------------------------------

// MergeStudyConfig parameterizes Ext-14: a relay home server (nothing fits
// its cache) delivers titles held by a remote origin to a burst of concurrent
// watchers, once with stream merging off (the paper's unicast delivery) and
// once with it on. Two request patterns run: "hot", every watcher on one
// title — the canonical flash crowd — and "zipf", watchers drawn from a
// Zipf-popular catalog. The origin's disk reads and bytes are the shared
// cost the tentpole claims to collapse; per-client throughput checks that the
// saving is not bought with slower delivery.
type MergeStudyConfig struct {
	// Watchers is the number of concurrent watch sessions per cell.
	Watchers int
	// Titles is the catalog size for the Zipf pattern.
	Titles int
	// TitleClusters is the length of every title, in clusters.
	TitleClusters int
	// ClusterBytes is the delivery cluster size.
	ClusterBytes int64
	// ZipfS is the Zipf skew parameter (> 1).
	ZipfS float64
	// Seed fixes the Zipf draw so merged and unicast cells replay the same
	// trace.
	Seed int64
	// Window is the merge window, in clusters, for the merged cells.
	Window int
}

// DefaultMergeStudyConfig: 12 concurrent watchers, a 4-title catalog of
// 1 MiB titles at 1 KiB clusters, skew 1.2, and a whole-title merge window.
func DefaultMergeStudyConfig() MergeStudyConfig {
	return MergeStudyConfig{
		Watchers:      12,
		Titles:        4,
		TitleClusters: 1024,
		ClusterBytes:  1 << 10,
		ZipfS:         1.2,
		Seed:          1,
		Window:        1024,
	}
}

// MergeRow is one (pattern, delivery mode) outcome.
type MergeRow struct {
	Pattern     string // "hot" or "zipf"
	Mode        string // "unicast" or "merged"
	Watchers    int
	Clusters    int     // clusters per title
	OriginReads int64   // origin disk reads serving the whole burst
	UpstreamMB  float64 // origin bytes read = upstream transfer volume
	Cohorts     int64   // merge cohorts opened (0 for unicast)
	Merged      int64   // sessions that attached to an existing cohort
	MeanMBps    float64 // mean per-client delivered throughput
}

// MergeStudy runs Ext-14.
func MergeStudy(cfg MergeStudyConfig) ([]MergeRow, error) {
	switch {
	case cfg.Watchers <= 0:
		return nil, errors.New("merge study: need watchers")
	case cfg.Titles <= 0:
		return nil, errors.New("merge study: need titles")
	case cfg.TitleClusters <= 0 || cfg.ClusterBytes <= 0:
		return nil, errors.New("merge study: bad title geometry")
	case cfg.ZipfS <= 1:
		return nil, fmt.Errorf("merge study: zipf skew %v must exceed 1", cfg.ZipfS)
	case cfg.Window <= 0:
		return nil, errors.New("merge study: need a positive merge window")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Titles-1))
	zipfDraws := make([]int, cfg.Watchers)
	for i := range zipfDraws {
		zipfDraws[i] = int(zipf.Uint64())
	}
	patterns := []struct {
		name  string
		draws []int
	}{
		{"hot", make([]int, cfg.Watchers)}, // all zero: one hot title
		{"zipf", zipfDraws},
	}
	var out []MergeRow
	for _, pat := range patterns {
		for _, window := range []int{0, cfg.Window} {
			row, err := mergeCell(cfg, window, pat.name, pat.draws)
			if err != nil {
				return nil, fmt.Errorf("merge study %s/%s: %w", pat.name, row.Mode, err)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// mergeCell replays one burst of concurrent watches against a fresh
// two-node deployment: Athens relays (its array holds one cluster, so
// nothing is ever resident) from the Heraklio origin over the wide 18 Mbps
// link. window == 0 disables merging.
func mergeCell(cfg MergeStudyConfig, window int, pattern string, draws []int) (MergeRow, error) {
	row := MergeRow{
		Pattern:  pattern,
		Mode:     "unicast",
		Watchers: cfg.Watchers,
		Clusters: cfg.TitleClusters,
	}
	if window > 0 {
		row.Mode = "merged"
	}
	g, err := grnet.Backbone()
	if err != nil {
		return row, err
	}
	d := db.New(g)
	t0 := time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)
	for _, r := range grnet.Table2() {
		id := topology.MakeLinkID(r.A, r.B)
		if err := d.UpsertLinkStats(id, r.TrafficMbps[0], t0); err != nil {
			return row, err
		}
	}
	book := transport.NewAddrBook()
	titleBytes := cfg.ClusterBytes * int64(cfg.TitleClusters)
	// The origin stripes every title over three disks.
	originDiskCap := 2 * titleBytes * int64(cfg.Titles) / 3
	newNode := func(node topology.NodeID, capBytes int64, window int) (*server.Server, error) {
		arr, err := disk.NewUniformArray(string(node), 3, capBytes)
		if err != nil {
			return nil, err
		}
		dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: cfg.ClusterBytes})
		if err != nil {
			return nil, err
		}
		planner, err := core.NewPlanner(d, core.VRA{}, nil)
		if err != nil {
			return nil, err
		}
		srv, err := server.New(server.Config{
			Node:         node,
			DB:           d,
			Planner:      planner,
			Array:        arr,
			Cache:        dma,
			ClusterBytes: cfg.ClusterBytes,
			Book:         book,
			MergeWindow:  window,
		})
		if err != nil {
			return nil, err
		}
		if err := srv.Start(); err != nil {
			return nil, err
		}
		return srv, srv.WaitReady(5 * time.Second)
	}
	origin, err := newNode(grnet.Heraklio, originDiskCap, 0)
	if err != nil {
		return row, err
	}
	defer origin.Close()
	home, err := newNode(grnet.Athens, cfg.ClusterBytes, window)
	if err != nil {
		return row, err
	}
	defer home.Close()

	titles := make([]media.Title, cfg.Titles)
	for i := range titles {
		titles[i] = media.Title{
			Name:        fmt.Sprintf("m14-%d", i),
			SizeBytes:   titleBytes,
			BitrateMbps: 1.5,
		}
		if err := d.Catalog().AddTitle(titles[i]); err != nil {
			return row, err
		}
		if err := origin.Preload(titles[i]); err != nil {
			return row, err
		}
	}

	var wg sync.WaitGroup
	gate := make(chan struct{})
	throughput := make([]float64, cfg.Watchers)
	errs := make([]error, cfg.Watchers)
	for i := 0; i < cfg.Watchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := client.NewPlayer(grnet.Athens, book, client.WithoutVerification())
			if err != nil {
				errs[i] = err
				return
			}
			<-gate
			stats, err := p.Watch(titles[draws[i]].Name)
			if err != nil {
				errs[i] = err
				return
			}
			if sec := stats.Elapsed.Seconds(); sec > 0 {
				throughput[i] = float64(stats.BytesReceived) / sec / 1e6
			}
		}(i)
	}
	close(gate)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return row, err
		}
	}
	var sum float64
	for _, mbps := range throughput {
		sum += mbps
	}
	row.MeanMBps = sum / float64(cfg.Watchers)
	snap := origin.Metrics().Snapshot()
	row.OriginReads = snap.Counters["server.disk_reads"]
	row.UpstreamMB = float64(snap.Counters["server.disk_bytes"]) / 1e6
	hs := home.Metrics().Snapshot()
	row.Cohorts = hs.Counters["merge.cohorts_total"]
	row.Merged = hs.Counters["merge.sessions_merged"]
	return row, nil
}

// MergeSavings pairs each pattern's unicast and merged rows and returns the
// origin-read reduction factor per pattern (unicast reads / merged reads).
func MergeSavings(rows []MergeRow) map[string]float64 {
	unicast := make(map[string]int64)
	for _, r := range rows {
		if r.Mode == "unicast" {
			unicast[r.Pattern] = r.OriginReads
		}
	}
	out := make(map[string]float64)
	for _, r := range rows {
		if r.Mode == "merged" && r.OriginReads > 0 && unicast[r.Pattern] > 0 {
			out[r.Pattern] = float64(unicast[r.Pattern]) / float64(r.OriginReads)
		}
	}
	return out
}

// FormatMergeStudy renders Ext-14, appending each merged row's origin-read
// saving over the unicast row of the same pattern.
func FormatMergeStudy(rows []MergeRow) string {
	savings := MergeSavings(rows)
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Pattern\tMode\tWatchers\tOriginReads\tUpstreamMB\tCohorts\tMergedSessions\tClientMB/s\tReadSaving")
	for _, r := range rows {
		saving := "-"
		if r.Mode == "merged" {
			if s, ok := savings[r.Pattern]; ok {
				saving = fmt.Sprintf("%.2fx", s)
			}
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.1f\t%d\t%d\t%.1f\t%s\n",
			r.Pattern, r.Mode, r.Watchers, r.OriginReads, r.UpstreamMB,
			r.Cohorts, r.Merged, r.MeanMBps, saving)
	}
	_ = w.Flush()
	return b.String()
}
