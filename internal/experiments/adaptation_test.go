package experiments

import (
	"strings"
	"testing"
)

func TestAdaptationStudyShape(t *testing.T) {
	cfg := DefaultAdaptationStudyConfig()
	cfg.PhaseRequests = 1000
	rows, err := AdaptationStudy(cfg)
	if err != nil {
		t.Fatalf("AdaptationStudy: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPolicy := map[string]AdaptationRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
		if r.SteadyHitRatio <= 0 {
			t.Fatalf("%s: zero steady hit ratio", r.Policy)
		}
	}
	// The flip hurts the frequency-based policies (their state encodes the
	// old ranking); LRU's recency state turns over within a window, so it
	// is exempt from the dip check.
	for _, name := range []string{"dma", "dma-decay", "lfu"} {
		r := byPolicy[name]
		if r.DipHitRatio >= r.SteadyHitRatio {
			t.Errorf("%s: no dip after flip (%.3f vs steady %.3f)",
				name, r.DipHitRatio, r.SteadyHitRatio)
		}
	}
	// The headline findings pinned:
	//   1. The paper's DMA (no aging) adapts slowest — its phase-1 point
	//      totals keep outranking the new favourites.
	//   2. Adding point decay fixes it: dma-decay recovers, and far
	//      faster than plain dma.
	//   3. LRU recovers quickly by construction.
	recovery := func(name string) int {
		r := byPolicy[name]
		if r.RecoveryRequests < 0 {
			return 1 << 30
		}
		return r.RecoveryRequests
	}
	if recovery("dma-decay") >= recovery("dma") {
		t.Errorf("decay did not speed adaptation: dma-decay %d vs dma %d",
			recovery("dma-decay"), recovery("dma"))
	}
	if byPolicy["dma-decay"].RecoveryRequests < 0 {
		t.Error("dma-decay never recovered")
	}
	if byPolicy["lru"].RecoveryRequests < 0 {
		t.Error("lru never recovered")
	}
	out := FormatAdaptationStudy(rows)
	if !strings.Contains(out, "RecoveryReqs") || !strings.Contains(out, "dma-decay") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestAdaptationStudyValidation(t *testing.T) {
	if _, err := AdaptationStudy(AdaptationStudyConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := DefaultAdaptationStudyConfig()
	bad.Window = 0
	if _, err := AdaptationStudy(bad); err == nil {
		t.Fatal("zero window accepted")
	}
	bad2 := DefaultAdaptationStudyConfig()
	bad2.CacheFraction = 0
	if _, err := AdaptationStudy(bad2); err == nil {
		t.Fatal("zero cache accepted")
	}
}
