package experiments

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/eventlog"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/netsim"
	"dvod/internal/snmp"
	"dvod/internal/topology"
	"dvod/internal/workload"
)

// ReplayConfig parameterizes an emulated-plane day replay: client requests
// arrive as a trace, every delivery runs cluster by cluster over the
// network emulator (sharing bandwidth with the diurnal background traffic
// and with each other), and the routing policy under test picks the serving
// replica for every cluster using the SNMP-fed database view.
type ReplayConfig struct {
	// Selector is the routing policy under test.
	Selector core.Selector
	// Titles and Placement: which servers hold each title (static for the
	// routing study; the cache study exercises dynamics separately).
	Titles    []media.Title
	Placement map[string][]topology.NodeID
	// Requests is the demand trace (time-ordered).
	Requests []workload.Request
	// ClusterBytes is the delivery granularity c.
	ClusterBytes int64
	// PollInterval is the SNMP refresh period (default 90s).
	PollInterval time.Duration
	// BackgroundInterval is how often diurnal background traffic is
	// re-applied to the emulator (default 5 minutes).
	BackgroundInterval time.Duration
	// Diurnal supplies background traffic; nil uses the Table 2 model.
	Diurnal *workload.DiurnalModel
	// MaxSimulated bounds the replay (default 24h of virtual time).
	MaxSimulated time.Duration
	// Events optionally receives structured events (nil disables).
	Events *eventlog.Log
	// Latency optionally assigns per-link propagation delays (default 0).
	Latency map[topology.LinkID]time.Duration
}

// SessionResult summarizes one delivered title.
type SessionResult struct {
	Request     workload.Request
	NumClusters int
	// Switches counts mid-stream server changes.
	Switches int
	// Local is true when every cluster came from the home server.
	Local bool
	// PathCost sums the LVN cost of each cluster's route (0 for local).
	PathCost float64
	// StartupDelay, StallTime, Elapsed follow the player's stall model.
	StartupDelay time.Duration
	StallTime    time.Duration
	Elapsed      time.Duration
	Stalls       int
}

// ReplayResult aggregates a whole replay.
type ReplayResult struct {
	Policy    string
	Sessions  []SessionResult
	Failed    int // requests that found no candidate/reachable server
	Simulated time.Duration
}

// MeanPathCost averages the per-cluster path cost over all clusters.
func (r ReplayResult) MeanPathCost() float64 {
	var cost float64
	var clusters int
	for _, s := range r.Sessions {
		cost += s.PathCost
		clusters += s.NumClusters
	}
	if clusters == 0 {
		return 0
	}
	return cost / float64(clusters)
}

// StallRatio returns total stall time over total playback time.
func (r ReplayResult) StallRatio() float64 {
	var stall, play time.Duration
	for _, s := range r.Sessions {
		stall += s.StallTime
		play += s.Elapsed
	}
	if play == 0 {
		return 0
	}
	return float64(stall) / float64(play)
}

// MeanStartup averages startup delays.
func (r ReplayResult) MeanStartup() time.Duration {
	if len(r.Sessions) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range r.Sessions {
		total += s.StartupDelay
	}
	return total / time.Duration(len(r.Sessions))
}

// TotalSwitches sums mid-stream switches.
func (r ReplayResult) TotalSwitches() int {
	var n int
	for _, s := range r.Sessions {
		n += s.Switches
	}
	return n
}

// session is one in-flight delivery inside the replay engine.
type session struct {
	req      workload.Request
	title    media.Title
	layout   clusterLayout
	next     int
	last     topology.NodeID
	started  time.Time
	arrivals []time.Time
	result   SessionResult
	flow     *netsim.Flow
}

// clusterLayout is the minimal part math the replay needs.
type clusterLayout struct {
	size, cluster int64
}

func (l clusterLayout) numParts() int {
	return int((l.size + l.cluster - 1) / l.cluster)
}

func (l clusterLayout) partLen(i int) int64 {
	off := int64(i) * l.cluster
	n := l.cluster
	if off+n > l.size {
		n = l.size - off
	}
	return n
}

// ReplayEvent is a scripted mid-replay network change: at the given
// instant, the listed links' background traffic is set (overriding the
// diurnal model until its next refresh).
type ReplayEvent struct {
	At         time.Time
	Background map[topology.LinkID]float64
}

// Replay runs the emulated-plane simulation and aggregates results.
func Replay(cfg ReplayConfig) (ReplayResult, error) {
	return ReplayWithEvents(cfg, nil)
}

// ReplayWithEvents runs Replay with scripted network changes injected at
// their instants (events must be time-ordered).
func ReplayWithEvents(cfg ReplayConfig, events []ReplayEvent) (ReplayResult, error) {
	if cfg.Selector == nil {
		return ReplayResult{}, errors.New("replay: nil selector")
	}
	if cfg.ClusterBytes <= 0 {
		return ReplayResult{}, fmt.Errorf("replay: bad cluster size %d", cfg.ClusterBytes)
	}
	if len(cfg.Requests) == 0 {
		return ReplayResult{}, errors.New("replay: empty request trace")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 90 * time.Second
	}
	if cfg.BackgroundInterval <= 0 {
		cfg.BackgroundInterval = 5 * time.Minute
	}
	if cfg.Diurnal == nil {
		cfg.Diurnal = workload.NewDiurnalModel(grnet.Table2())
	}
	if cfg.MaxSimulated <= 0 {
		cfg.MaxSimulated = 24 * time.Hour
	}

	g, err := grnet.Backbone()
	if err != nil {
		return ReplayResult{}, err
	}
	d := db.New(g)
	titles := make(map[string]media.Title, len(cfg.Titles))
	for _, t := range cfg.Titles {
		titles[t.Name] = t
		if err := d.Catalog().AddTitle(t); err != nil {
			return ReplayResult{}, err
		}
		for _, h := range cfg.Placement[t.Name] {
			if err := d.SetHolding(h, t.Name, true, cfg.Requests[0].At); err != nil {
				return ReplayResult{}, err
			}
		}
	}
	planner, err := core.NewPlanner(d, cfg.Selector, nil)
	if err != nil {
		return ReplayResult{}, err
	}

	start := cfg.Requests[0].At
	net := netsim.New(g, start)
	for id, d := range cfg.Latency {
		if err := net.SetLatency(id, d); err != nil {
			return ReplayResult{}, err
		}
	}
	var agents []*snmp.Agent
	for _, node := range grnet.Nodes() {
		a, err := snmp.NewAgent(node, g, net)
		if err != nil {
			return ReplayResult{}, err
		}
		agents = append(agents, a)
	}
	applyBackground := func(at time.Time) error {
		for _, id := range cfg.Diurnal.Links() {
			mbps, err := cfg.Diurnal.TrafficAt(id, at)
			if err != nil {
				return err
			}
			if err := net.SetBackground(id, mbps); err != nil {
				return err
			}
		}
		return nil
	}
	poll := func(at time.Time) error {
		for _, a := range agents {
			samples, err := a.Sample()
			if err != nil {
				return err
			}
			for _, s := range samples {
				if err := d.UpsertLinkStats(s.ID, s.UsedMbps, at); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := applyBackground(start); err != nil {
		return ReplayResult{}, err
	}
	if err := poll(start); err != nil {
		return ReplayResult{}, err
	}

	result := ReplayResult{Policy: cfg.Selector.Name()}
	pending := append([]workload.Request(nil), cfg.Requests...)
	active := make(map[*session]struct{})
	flowOwner := make(map[int64]*session)
	nextPoll := start.Add(cfg.PollInterval)
	nextBg := start.Add(cfg.BackgroundInterval)
	deadline := start.Add(cfg.MaxSimulated)

	// startCluster plans and launches the next cluster of a session; a
	// completed session is finalized and removed. It is self-recursive:
	// local (zero-hop) clusters complete instantly and chain to the next.
	var startCluster func(s *session) error
	startCluster = func(s *session) error {
		if s.next >= s.layout.numParts() {
			finalize(s, net.Now())
			result.Sessions = append(result.Sessions, s.result)
			delete(active, s)
			_ = cfg.Events.Emit(eventlog.Event{
				At: net.Now(), Kind: eventlog.KindSessionDone,
				Node: s.req.Client, Title: s.req.Title,
				Value: s.result.Elapsed.Seconds(),
			})
			return nil
		}
		dec, err := planner.Plan(s.req.Client, s.req.Title)
		if err != nil {
			// No candidate reachable right now: count the failure and
			// abandon the session.
			result.Failed++
			delete(active, s)
			_ = cfg.Events.Emit(eventlog.Event{
				At: net.Now(), Kind: eventlog.KindBlocked,
				Node: s.req.Client, Title: s.req.Title,
			})
			return nil
		}
		_ = cfg.Events.Emit(eventlog.Event{
			At: net.Now(), Kind: eventlog.KindDecision,
			Node: s.req.Client, Title: s.req.Title, Cluster: s.next,
			Server: dec.Server, Path: dec.Path.String(), Value: dec.Cost,
		})
		if s.last != "" && dec.Server != s.last {
			s.result.Switches++
			_ = cfg.Events.Emit(eventlog.Event{
				At: net.Now(), Kind: eventlog.KindSwitch,
				Node: s.req.Client, Title: s.req.Title, Cluster: s.next,
				Server: dec.Server,
			})
		}
		s.last = dec.Server
		s.result.PathCost += dec.Cost
		if !dec.Local {
			s.result.Local = false
		}
		bytes := s.layout.partLen(s.next)
		s.next++
		// The flow runs from the serving server toward the home node
		// along the decided route (direction does not matter to the
		// fluid model).
		flow, err := net.StartFlow(dec.Path, bytes)
		if err != nil {
			return err
		}
		if done, at := net.Completed(flow); done {
			// Zero-hop (local) delivery completes instantly.
			s.arrivals = append(s.arrivals, at)
			return startCluster(s)
		}
		s.flow = flow
		flowOwner[flow.ID()] = s
		return nil
	}

	for len(pending) > 0 || len(active) > 0 {
		if net.Now().After(deadline) {
			return result, fmt.Errorf("replay exceeded %v of simulated time", cfg.MaxSimulated)
		}
		// Next event: request arrival, flow completion, poll, scripted
		// event, or background refresh.
		next := nextPoll
		if nextBg.Before(next) {
			next = nextBg
		}
		if len(events) > 0 && events[0].At.Before(next) {
			next = events[0].At
		}
		if len(pending) > 0 && pending[0].At.Before(next) {
			next = pending[0].At
		}
		if at, ok := net.NextEventAt(); ok && at.Before(next) {
			next = at
		}
		if next.Before(net.Now()) {
			next = net.Now()
		}
		if err := net.AdvanceTo(next); err != nil {
			return result, err
		}
		now := net.Now()

		// Flow completions.
		for fid, s := range flowOwner {
			if s.flow == nil {
				delete(flowOwner, fid)
				continue
			}
			if done, at := net.Completed(s.flow); done {
				delete(flowOwner, fid)
				s.flow = nil
				s.arrivals = append(s.arrivals, at)
				if err := startCluster(s); err != nil {
					return result, err
				}
			}
		}
		// Arrivals due now.
		for len(pending) > 0 && !pending[0].At.After(now) {
			req := pending[0]
			pending = pending[1:]
			_ = cfg.Events.Emit(eventlog.Event{
				At: req.At, Kind: eventlog.KindRequest,
				Node: req.Client, Title: req.Title,
			})
			title, ok := titles[req.Title]
			if !ok {
				result.Failed++
				continue
			}
			s := &session{
				req:     req,
				title:   title,
				layout:  clusterLayout{size: title.SizeBytes, cluster: cfg.ClusterBytes},
				started: now,
				result: SessionResult{
					Request:     req,
					NumClusters: 0,
					Local:       true,
				},
			}
			s.result.NumClusters = s.layout.numParts()
			active[s] = struct{}{}
			if err := startCluster(s); err != nil {
				return result, err
			}
		}
		// Scripted events due now.
		for len(events) > 0 && !events[0].At.After(now) {
			for id, mbps := range events[0].Background {
				if err := net.SetBackground(id, mbps); err != nil {
					return result, err
				}
			}
			events = events[1:]
		}
		// Housekeeping.
		if !now.Before(nextPoll) {
			if err := poll(now); err != nil {
				return result, err
			}
			nextPoll = nextPoll.Add(cfg.PollInterval)
		}
		if !now.Before(nextBg) {
			if err := applyBackground(now); err != nil {
				return result, err
			}
			nextBg = nextBg.Add(cfg.BackgroundInterval)
		}
		// If nothing can ever complete (all active flows stalled at rate
		// 0) and no future arrivals or housekeeping would change that,
		// the run is stuck — but background refreshes always recur, so
		// progress resumes once traffic recedes. Guard only against a
		// pathological zero-interval loop.
		if len(active) > 0 && len(pending) == 0 {
			if _, ok := net.NextEventAt(); !ok && nextPoll.After(deadline) && nextBg.After(deadline) {
				return result, errors.New("replay deadlocked: stalled flows and no future events")
			}
		}
	}
	result.Simulated = net.Now().Sub(start)
	sort.Slice(result.Sessions, func(i, j int) bool {
		return result.Sessions[i].Request.At.Before(result.Sessions[j].Request.At)
	})
	return result, nil
}

// finalize computes the stall model for a finished session.
func finalize(s *session, now time.Time) {
	s.result.Elapsed = now.Sub(s.started)
	if len(s.arrivals) == 0 || s.title.BitrateMbps <= 0 {
		return
	}
	s.result.StartupDelay = s.arrivals[0].Sub(s.started)
	playhead := s.arrivals[0]
	for i, at := range s.arrivals {
		if at.After(playhead) {
			s.result.Stalls++
			s.result.StallTime += at.Sub(playhead)
			playhead = at
		}
		playSec := float64(s.layout.partLen(i)*8) / (s.title.BitrateMbps * 1e6)
		playhead = playhead.Add(time.Duration(playSec * float64(time.Second)))
	}
	if math.IsNaN(s.result.PathCost) {
		s.result.PathCost = 0
	}
}
