package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"dvod/internal/core"
	"dvod/internal/topogen"
	"dvod/internal/topology"
)

// --- Ext-7: VRA scalability with network size --------------------------------

// ScalabilityStudyConfig parameterizes the decision-latency sweep over
// growing random topologies.
type ScalabilityStudyConfig struct {
	// Sizes are the node counts to sweep.
	Sizes []int
	// Degree is the target mean node degree of the random graphs.
	Degree float64
	// Decisions per size (averaged).
	Decisions int
	// Replicas per title.
	Replicas int
	Seed     int64
}

// DefaultScalabilityStudyConfig sweeps 6..200 nodes (the paper's network is
// 6; the service claims "expandability ... with very little effort").
func DefaultScalabilityStudyConfig() ScalabilityStudyConfig {
	return ScalabilityStudyConfig{
		Sizes:     []int{6, 12, 25, 50, 100, 200},
		Degree:    2.4,
		Decisions: 50,
		Replicas:  3,
		Seed:      1,
	}
}

// ScalabilityRow is one network size's measurements.
type ScalabilityRow struct {
	Nodes int
	Links int
	// MeanDecision is the average wall time of one full VRA decision
	// (weighting + Dijkstra + candidate choice).
	MeanDecision time.Duration
	// MeanPathCost and MeanHops describe the decisions made.
	MeanPathCost float64
	MeanHops     float64
}

// ScalabilityStudy runs Ext-7: full VRA decisions on random connected
// topologies of growing size, with random utilization and random replica
// placement.
func ScalabilityStudy(cfg ScalabilityStudyConfig) ([]ScalabilityRow, error) {
	if len(cfg.Sizes) == 0 || cfg.Decisions <= 0 {
		return nil, errors.New("scalability study: need sizes and decisions")
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("scalability study: bad replicas %d", cfg.Replicas)
	}
	var rows []ScalabilityRow
	for _, n := range cfg.Sizes {
		r := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		g, err := topogen.Random(n, cfg.Degree, r)
		if err != nil {
			return nil, fmt.Errorf("size %d: %w", n, err)
		}
		util := topogen.RandomUtilization(g, 0.95, r)
		snap, err := topology.NewSnapshot(g, util)
		if err != nil {
			return nil, err
		}
		nodes := g.Nodes()
		vra := core.VRA{}
		var (
			total     time.Duration
			cost      float64
			hops      int
			succeeded int
		)
		for range cfg.Decisions {
			home := nodes[r.Intn(len(nodes))]
			candidates := make([]topology.NodeID, 0, cfg.Replicas)
			for len(candidates) < cfg.Replicas {
				c := nodes[r.Intn(len(nodes))]
				if c == home {
					continue
				}
				dup := false
				for _, x := range candidates {
					if x == c {
						dup = true
						break
					}
				}
				if !dup {
					candidates = append(candidates, c)
				}
			}
			start := time.Now()
			dec, err := vra.Select(snap, home, candidates)
			total += time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("size %d decision: %w", n, err)
			}
			cost += dec.Cost
			hops += dec.Path.Hops()
			succeeded++
		}
		rows = append(rows, ScalabilityRow{
			Nodes:        n,
			Links:        g.NumLinks(),
			MeanDecision: total / time.Duration(succeeded),
			MeanPathCost: cost / float64(succeeded),
			MeanHops:     float64(hops) / float64(succeeded),
		})
	}
	return rows, nil
}

// FormatScalabilityStudy renders Ext-7.
func FormatScalabilityStudy(rows []ScalabilityRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Nodes\tLinks\tMeanDecision\tMeanPathCost\tMeanHops")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%v\t%.4f\t%.2f\n",
			r.Nodes, r.Links, r.MeanDecision.Round(time.Microsecond), r.MeanPathCost, r.MeanHops)
	}
	_ = w.Flush()
	return b.String()
}
