package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"dvod/internal/cache"
	"dvod/internal/disk"
	"dvod/internal/media"
	"dvod/internal/workload"
)

// --- Ext-11: cache adaptation after a popularity flip -------------------------

// AdaptationStudyConfig parameterizes the popularity-drift experiment: a
// Zipf stream whose ranking is inverted halfway through. It measures the
// paper's central caching claim — "this service has the ability to adjust
// itself to the changes occurring" — as the number of requests a policy
// needs to recover its hit ratio after tastes flip.
type AdaptationStudyConfig struct {
	// NumTitles, TitleBytes: equal-sized library.
	NumTitles  int
	TitleBytes int64
	// CacheFraction of the total library size.
	CacheFraction float64
	// ClusterBytes is the striping granularity.
	ClusterBytes int64
	// Theta is the Zipf skew (both phases).
	Theta float64
	// PhaseRequests is the stream length per phase.
	PhaseRequests int
	// Window is the sliding-window size (requests) for hit-ratio
	// measurement.
	Window int
	Seed   int64
}

// DefaultAdaptationStudyConfig uses a 20% cache under strong skew.
func DefaultAdaptationStudyConfig() AdaptationStudyConfig {
	return AdaptationStudyConfig{
		NumTitles:     40,
		TitleBytes:    32 << 10,
		CacheFraction: 0.2,
		ClusterBytes:  4 << 10,
		Theta:         1.0,
		PhaseRequests: 1500,
		Window:        150,
		Seed:          1,
	}
}

// AdaptationRow is one policy's outcome.
type AdaptationRow struct {
	Policy string
	// SteadyHitRatio is the windowed hit ratio at the end of phase 1.
	SteadyHitRatio float64
	// DipHitRatio is the windowed hit ratio one window after the flip —
	// how hard the drift hurts.
	DipHitRatio float64
	// RecoveryRequests counts requests after the flip until the windowed
	// hit ratio is back within 80% of the steady value (-1: never within
	// phase 2).
	RecoveryRequests int
	// FinalHitRatio is the windowed ratio at the end of phase 2.
	FinalHitRatio float64
}

// AdaptationStudy runs Ext-11 for the DMA, LRU and LFU policies over an
// identical two-phase stream.
func AdaptationStudy(cfg AdaptationStudyConfig) ([]AdaptationRow, error) {
	if cfg.NumTitles <= 0 || cfg.PhaseRequests <= 0 {
		return nil, errors.New("adaptation study: need titles and requests")
	}
	if cfg.Window <= 0 || cfg.Window > cfg.PhaseRequests {
		return nil, fmt.Errorf("adaptation study: bad window %d", cfg.Window)
	}
	if cfg.CacheFraction <= 0 || cfg.CacheFraction > 1 {
		return nil, fmt.Errorf("adaptation study: bad cache fraction %g", cfg.CacheFraction)
	}
	lib, err := media.GenerateLibrary(media.LibrarySpec{
		Count:       cfg.NumTitles,
		MinBytes:    cfg.TitleBytes,
		MaxBytes:    cfg.TitleBytes,
		BitrateMbps: 1.5,
	}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	byName := make(map[string]media.Title, len(lib))
	forward := make([]string, len(lib))
	backward := make([]string, len(lib))
	for i, t := range lib {
		byName[t.Name] = t
		forward[i] = t.Name
		backward[len(lib)-1-i] = t.Name
	}
	// Shared two-phase stream: phase 1 ranks forward, phase 2 inverted.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	stream := make([]string, 0, 2*cfg.PhaseRequests)
	z1, err := workload.NewZipfTitles(forward, cfg.Theta, rng)
	if err != nil {
		return nil, err
	}
	for range cfg.PhaseRequests {
		stream = append(stream, z1.Sample())
	}
	z2, err := workload.NewZipfTitles(backward, cfg.Theta, rng)
	if err != nil {
		return nil, err
	}
	for range cfg.PhaseRequests {
		stream = append(stream, z2.Sample())
	}

	cacheBytes := int64(float64(cfg.TitleBytes*int64(cfg.NumTitles)) * cfg.CacheFraction)
	const nDisks = 4
	perDisk := cacheBytes/nDisks + 1

	var rows []AdaptationRow
	for _, policy := range []string{"dma", "dma-decay", "lru", "lfu"} {
		arr, err := disk.NewUniformArray("ad", nDisks, perDisk)
		if err != nil {
			return nil, err
		}
		ccfg := cache.Config{Array: arr, ClusterBytes: cfg.ClusterBytes}
		var p cache.Policy
		switch policy {
		case "dma":
			p, err = cache.NewDMA(ccfg)
		case "dma-decay":
			// Our aging extension: halve points every half window.
			ccfg.DecayEvery = int64(cfg.Window / 2)
			if ccfg.DecayEvery < 1 {
				ccfg.DecayEvery = 1
			}
			p, err = cache.NewDMA(ccfg)
		case "lru":
			p, err = cache.NewLRU(ccfg)
		case "lfu":
			p, err = cache.NewLFU(ccfg)
		}
		if err != nil {
			return nil, err
		}
		row, err := runAdaptationTrial(p, stream, byName, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", policy, err)
		}
		if policy == "dma-decay" {
			row.Policy = "dma-decay"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runAdaptationTrial replays the stream through one policy, tracking a
// sliding-window hit ratio.
func runAdaptationTrial(p cache.Policy, stream []string, byName map[string]media.Title,
	cfg AdaptationStudyConfig) (AdaptationRow, error) {
	hits := make([]bool, len(stream))
	for i, name := range stream {
		out, err := p.OnRequest(byName[name])
		if err != nil {
			return AdaptationRow{}, err
		}
		hits[i] = out.Hit
	}
	window := func(end int) float64 {
		start := end - cfg.Window
		if start < 0 {
			start = 0
		}
		if end > len(hits) {
			end = len(hits)
		}
		if end <= start {
			return 0
		}
		var h int
		for _, hit := range hits[start:end] {
			if hit {
				h++
			}
		}
		return float64(h) / float64(end-start)
	}
	flip := cfg.PhaseRequests
	row := AdaptationRow{
		Policy:         p.Name(),
		SteadyHitRatio: window(flip),
		DipHitRatio:    window(flip + cfg.Window),
		FinalHitRatio:  window(len(hits)),
	}
	target := 0.8 * row.SteadyHitRatio
	row.RecoveryRequests = -1
	for end := flip + cfg.Window; end <= len(hits); end++ {
		if window(end) >= target {
			row.RecoveryRequests = end - flip
			break
		}
	}
	return row, nil
}

// FormatAdaptationStudy renders Ext-11.
func FormatAdaptationStudy(rows []AdaptationRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Policy\tSteadyHit\tDipHit\tRecoveryReqs\tFinalHit")
	for _, r := range rows {
		rec := fmt.Sprintf("%d", r.RecoveryRequests)
		if r.RecoveryRequests < 0 {
			rec = "never"
		}
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%s\t%.4f\n",
			r.Policy, r.SteadyHitRatio, r.DipHitRatio, rec, r.FinalHitRatio)
	}
	_ = w.Flush()
	return b.String()
}
