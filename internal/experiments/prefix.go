package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"dvod"
	"dvod/internal/client"
	"dvod/internal/grnet"
)

// --- Ext-20: prefix replication tier under a flash crowd ----------------------

// PrefixStudyConfig parameterizes Ext-20: a flash crowd at ten times the
// Ext-14 scale — Watchers concurrent sessions of one hot title, spread across
// Relays relay servers whose arrays hold a single cluster (nothing is ever
// DMA-resident), all pulling from one origin. Three arms replay the identical
// burst:
//
//	baseline      stream merging on (the Ext-14 winner), no prefix tier:
//	              every relay's cohort fetches every cluster from the origin
//	              and every session's first cluster costs a network round trip
//	prefix        + a prefix tier: each relay pins the title's first
//	              PrefixClusters locally, so startup is a local disk read and
//	              the origin serves only tails
//	prefix+relay  + cross-server cohort relays: each relay's cohort opens ONE
//	              relay.join subscription upstream, and the origin merges
//	              those subscriptions in its own cohort — five relay servers
//	              cost the origin roughly one disk-read stream of the tail
//
// The headline numbers are startup latency (P99 across the crowd) and origin
// disk reads per second; the structural claims — zero cross-network fetches
// for pinned heads, one shared upstream per cohort — are counted exactly.
type PrefixStudyConfig struct {
	// Watchers is the total concurrent sessions per arm.
	Watchers int
	// Relays is how many relay servers the crowd is spread over (Heraklio is
	// always the origin; the relays are the remaining GRNET sites).
	Relays int
	// TitleClusters is the hot title's length in clusters.
	TitleClusters int
	// ClusterBytes is the delivery cluster size.
	ClusterBytes int64
	// PrefixClusters is K: how many leading clusters each relay pins (the
	// prefix budget is exactly PrefixClusters × ClusterBytes).
	PrefixClusters int
	// Window is the merge window, in clusters, for every arm.
	Window int
}

// DefaultPrefixStudyConfig: 120 watchers (10× Ext-14) over 5 relays, a
// 1024-cluster title at 1 KiB clusters, half the title pinned.
func DefaultPrefixStudyConfig() PrefixStudyConfig {
	return PrefixStudyConfig{
		Watchers:       120,
		Relays:         5,
		TitleClusters:  1024,
		ClusterBytes:   1 << 10,
		PrefixClusters: 512,
		Window:         1024,
	}
}

// Prefix study arm names of PrefixRow.Arm.
const (
	// PrefixArmBaseline is stream merging without a prefix tier.
	PrefixArmBaseline = "baseline"
	// PrefixArmPrefix adds the prefix tier.
	PrefixArmPrefix = "prefix"
	// PrefixArmRelay adds cross-server cohort relays on top of the prefix.
	PrefixArmRelay = "prefix+relay"
)

// PrefixRow is one arm's outcome.
type PrefixRow struct {
	Arm      string
	Watchers int
	Relays   int
	Clusters int // clusters per title
	PrefixK  int // pinned prefix length (0 for baseline)
	// OriginReads is the origin's disk reads serving the whole burst;
	// OriginReadsPerSec divides by the burst's wall time.
	OriginReads       int64
	OriginReadsPerSec float64
	// StartupP99Ms / StartupMeanMs summarize time-to-first-cluster across the
	// crowd.
	StartupP99Ms  float64
	StartupMeanMs float64
	// StartupRemoteFetches sums the servers' announced StartupRTTs: how many
	// sessions' first cluster crossed the network. The prefix arms must show
	// zero — that is the tier's whole claim.
	StartupRemoteFetches int64
	// PrefixServed sums the relays' prefix-store reads (server.prefix_reads).
	PrefixServed int64
	// RelayUpstreams / RelayFallbacks count upstream relay.join subscriptions
	// opened and upstream failures that fell back to per-cluster fetches.
	RelayUpstreams int64
	RelayFallbacks int64
	// Procs is GOMAXPROCS during the run; the startup-latency gate only binds
	// where the runner can demonstrate it (see PrefixRegression).
	Procs int
}

// PrefixStudy runs Ext-20.
func PrefixStudy(cfg PrefixStudyConfig) ([]PrefixRow, error) {
	switch {
	case cfg.Watchers <= 0:
		return nil, errors.New("prefix study: need watchers")
	case cfg.Relays <= 0 || cfg.Relays > len(grnet.Nodes())-1:
		return nil, fmt.Errorf("prefix study: relays %d outside [1, %d]", cfg.Relays, len(grnet.Nodes())-1)
	case cfg.TitleClusters <= 0 || cfg.ClusterBytes <= 0:
		return nil, errors.New("prefix study: bad title geometry")
	case cfg.PrefixClusters <= 0 || cfg.PrefixClusters > cfg.TitleClusters:
		return nil, fmt.Errorf("prefix study: prefix length %d outside (0, %d]", cfg.PrefixClusters, cfg.TitleClusters)
	case cfg.Window <= 0:
		return nil, errors.New("prefix study: need a positive merge window")
	}
	var out []PrefixRow
	for _, arm := range []string{PrefixArmBaseline, PrefixArmPrefix, PrefixArmRelay} {
		row, err := prefixArm(cfg, arm)
		if err != nil {
			return nil, fmt.Errorf("prefix study %s: %w", arm, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// prefixArm replays the flash crowd against a fresh GRNET deployment through
// the dvod facade: Heraklio is the origin (its array holds the title), every
// relay's array holds one cluster so the title is never DMA-resident there.
func prefixArm(cfg PrefixStudyConfig, arm string) (PrefixRow, error) {
	row := PrefixRow{
		Arm:      arm,
		Watchers: cfg.Watchers,
		Relays:   cfg.Relays,
		Clusters: cfg.TitleClusters,
		Procs:    runtime.GOMAXPROCS(0),
	}
	titleBytes := cfg.ClusterBytes * int64(cfg.TitleClusters)
	relays := make([]dvod.NodeID, 0, cfg.Relays)
	for _, n := range grnet.Nodes() {
		if n != grnet.Heraklio && len(relays) < cfg.Relays {
			relays = append(relays, n)
		}
	}
	opts := []dvod.Option{
		dvod.WithClusterBytes(cfg.ClusterBytes),
		dvod.WithNodeDisks(grnet.Heraklio, 3, titleBytes),
		dvod.WithMergeWindow(cfg.Window),
	}
	for _, n := range relays {
		opts = append(opts, dvod.WithNodeDisks(n, 1, cfg.ClusterBytes))
	}
	if arm != PrefixArmBaseline {
		row.PrefixK = cfg.PrefixClusters
		opts = append(opts, dvod.WithPrefixBudget(int64(cfg.PrefixClusters)*cfg.ClusterBytes))
	} else {
		// The baseline arm carries a one-byte prefix budget: it rounds down to
		// a zero-cluster knapsack, so nothing is ever pinned and delivery is
		// byte-identical to no tier at all — but the servers still announce
		// per-session startup accounting, which is how the control arm proves
		// it pays one remote round trip per session.
		opts = append(opts, dvod.WithPrefixBudget(1))
	}
	if arm == PrefixArmRelay {
		opts = append(opts, dvod.WithCohortRelay())
	}
	svc, err := dvod.New(dvod.GRNETTopology(), opts...)
	if err != nil {
		return row, err
	}
	defer svc.Close()
	if err := svc.Start(); err != nil {
		return row, err
	}
	title := dvod.Title{Name: "p20-hot", SizeBytes: titleBytes, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		return row, err
	}
	if err := svc.Preload(grnet.Heraklio, title.Name); err != nil {
		return row, err
	}
	if arm != PrefixArmBaseline {
		// One explicit epoch pins the prefixes before the crowd arrives; with
		// a single hot title the knapsack spends the whole budget on its head.
		if err := svc.PrefixResolve(); err != nil {
			return row, err
		}
		for _, n := range relays {
			if k := svc.PrefixClusters(n, title.Name); k != cfg.PrefixClusters {
				return row, fmt.Errorf("relay %s pinned %d clusters, want %d", n, k, cfg.PrefixClusters)
			}
		}
	}
	baseReads := svc.Metrics()[grnet.Heraklio].Counters["server.disk_reads"]

	var wg sync.WaitGroup
	gate := make(chan struct{})
	stats := make([]client.PlaybackStats, cfg.Watchers)
	errs := make([]error, cfg.Watchers)
	for i := 0; i < cfg.Watchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := svc.Player(relays[i%len(relays)], client.WithoutVerification())
			if err != nil {
				errs[i] = err
				return
			}
			<-gate
			stats[i], errs[i] = p.Watch(title.Name)
		}(i)
	}
	start := time.Now()
	close(gate)
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return row, err
		}
	}

	startups := make([]float64, cfg.Watchers)
	var meanSum float64
	for i, s := range stats {
		ms := float64(s.StartupDelay) / float64(time.Millisecond)
		startups[i] = ms
		meanSum += ms
		row.StartupRemoteFetches += int64(s.StartupRTTs)
	}
	sort.Float64s(startups)
	row.StartupP99Ms = percentileFloat(startups, 0.99)
	row.StartupMeanMs = meanSum / float64(cfg.Watchers)
	row.OriginReads = svc.Metrics()[grnet.Heraklio].Counters["server.disk_reads"] - baseReads
	if sec := elapsed.Seconds(); sec > 0 {
		row.OriginReadsPerSec = float64(row.OriginReads) / sec
	}
	for _, n := range relays {
		snap := svc.Metrics()[n]
		row.PrefixServed += snap.Counters["server.prefix_reads"]
		row.RelayUpstreams += snap.Counters["server.relay_upstreams"]
		row.RelayFallbacks += snap.Counters["server.relay_fallbacks"]
	}
	return row, nil
}

// percentileFloat returns the p-quantile (0..1) of sorted values by
// nearest-rank.
func percentileFloat(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Ext-20 regression-gate thresholds, shared with cmd/vodbench.
const (
	// PrefixOriginReadCutTarget is the minimum origin-read reduction the
	// prefix+relay arm must show over the baseline arm of the SAME run: five
	// relay cohorts sharing one upstream tail stream land near 10× in theory,
	// so 5× leaves room for cohort churn. The ratio is structural (reads per
	// burst), not wall-clock, so it binds on every machine.
	PrefixOriginReadCutTarget = 5.0
	// PrefixStartupSpeedupMinProcs is the smallest GOMAXPROCS at which the
	// startup-latency halving binds. Below it the 120-goroutine crowd
	// time-shares one core and time-to-first-cluster measures scheduler
	// queueing, not delivery, so only the loose parity bound applies.
	PrefixStartupSpeedupMinProcs = 4
	// PrefixStartupCutTarget: at PrefixStartupSpeedupMinProcs and above, the
	// prefix+relay arm's startup P99 must be at most half the baseline's —
	// a local disk read replacing a remote round trip.
	PrefixStartupCutTarget = 2.0
)

// PrefixRegression compares a fresh Ext-20 run against the committed baseline
// and returns one message per violated bound (empty means pass).
//
// Structural bounds bind everywhere: all three arms present; the prefix arms
// report zero startup remote fetches (instant start is served from local
// disk, full stop) while the baseline arm pays one per session; the prefix
// store actually served clusters; the relay arm opened upstream subscriptions
// and never fell back; and the relay arm's origin reads are at least
// PrefixOriginReadCutTarget× below the same run's baseline arm, and within
// 20% of the committed baseline's cut. The startup-latency bound is
// proc-aware, like FramingRegression: the halving target binds at
// PrefixStartupSpeedupMinProcs and above. Below that, no timing bound is
// enforced at all — announced loudly through notes, never silently: with the
// whole crowd time-sharing one core, measured time-to-first-cluster is
// scheduler queueing (the prefix arms do pure CPU work while baseline
// sessions sleep in remote fetches, so the prefix arms can even look
// slower), and the zero-remote-startup count is the instant-start proof
// that still binds.
func PrefixRegression(current, baseline []PrefixRow) (bad, notes []string) {
	if len(current) == 0 {
		return []string{"prefix run produced no rows"}, nil
	}
	cur := make(map[string]PrefixRow, len(current))
	for _, r := range current {
		cur[r.Arm] = r
	}
	for _, arm := range []string{PrefixArmBaseline, PrefixArmPrefix, PrefixArmRelay} {
		if _, ok := cur[arm]; !ok {
			bad = append(bad, fmt.Sprintf("arm %q missing from current run", arm))
		}
	}
	if len(bad) > 0 {
		return bad, notes
	}
	base := cur[PrefixArmBaseline]
	if base.StartupRemoteFetches < int64(base.Watchers) {
		bad = append(bad, fmt.Sprintf(
			"baseline arm announced %d startup remote fetches for %d watchers: the control arm is not paying the cost the tier removes",
			base.StartupRemoteFetches, base.Watchers))
	}
	for _, arm := range []string{PrefixArmPrefix, PrefixArmRelay} {
		r := cur[arm]
		if r.StartupRemoteFetches != 0 {
			bad = append(bad, fmt.Sprintf(
				"%s arm announced %d startup remote fetches, want 0: first clusters must come off local disk", arm, r.StartupRemoteFetches))
		}
		if r.PrefixServed == 0 {
			bad = append(bad, fmt.Sprintf("%s arm served zero clusters from the prefix store", arm))
		}
	}
	relay := cur[PrefixArmRelay]
	if relay.RelayUpstreams == 0 {
		bad = append(bad, "prefix+relay arm opened zero upstream relay subscriptions")
	}
	if relay.RelayFallbacks != 0 {
		bad = append(bad, fmt.Sprintf(
			"prefix+relay arm fell back to per-cluster fetches %d times on a healthy origin", relay.RelayFallbacks))
	}
	if relay.OriginReads > 0 && base.OriginReads > 0 {
		cut := float64(base.OriginReads) / float64(relay.OriginReads)
		if cut < PrefixOriginReadCutTarget {
			bad = append(bad, fmt.Sprintf(
				"prefix+relay origin-read cut %.2fx below the %.0fx target (baseline %d reads, relay %d)",
				cut, PrefixOriginReadCutTarget, base.OriginReads, relay.OriginReads))
		}
		if bc := prefixBaselineCut(baseline); bc > 0 && cut < 0.8*bc {
			bad = append(bad, fmt.Sprintf(
				"prefix+relay origin-read cut %.2fx fell >20%% below the committed baseline's %.2fx", cut, bc))
		}
	} else if relay.OriginReads == 0 && base.OriginReads == 0 {
		bad = append(bad, "both arms report zero origin reads: the study measured nothing")
	}
	if base.StartupP99Ms > 0 {
		ratio := relay.StartupP99Ms / base.StartupP99Ms
		if relay.Procs >= PrefixStartupSpeedupMinProcs {
			if ratio > 1/PrefixStartupCutTarget {
				bad = append(bad, fmt.Sprintf(
					"prefix+relay startup P99 %.1fms is %.2fx of baseline %.1fms, want ≤ %.2fx at GOMAXPROCS %d",
					relay.StartupP99Ms, ratio, base.StartupP99Ms, 1/PrefixStartupCutTarget, relay.Procs))
			}
		} else {
			notes = append(notes, fmt.Sprintf(
				"WARNING: prefix study ran at GOMAXPROCS %d (< %d): startup latency is scheduler "+
					"queueing when the whole crowd time-shares cores (the CPU-bound prefix arms can "+
					"even measure slower than baseline arms sleeping in remote fetches), so the %.0fx "+
					"startup P99 target is NOT enforced — only the structural zero-remote-startup and "+
					"origin-read bounds bind. Regenerate the gate on a multi-core runner to enforce "+
					"the timing target (measured here: %.2fx of baseline).",
				relay.Procs, PrefixStartupSpeedupMinProcs, PrefixStartupCutTarget, ratio))
		}
	}
	return bad, notes
}

// prefixBaselineCut extracts the committed baseline's origin-read cut
// (baseline reads / prefix+relay reads), or 0 when unavailable.
func prefixBaselineCut(baseline []PrefixRow) float64 {
	var base, relay PrefixRow
	for _, r := range baseline {
		switch r.Arm {
		case PrefixArmBaseline:
			base = r
		case PrefixArmRelay:
			relay = r
		}
	}
	if base.OriginReads > 0 && relay.OriginReads > 0 {
		return float64(base.OriginReads) / float64(relay.OriginReads)
	}
	return 0
}

// FormatPrefixStudy renders Ext-20, appending each prefix arm's origin-read
// cut over the baseline arm.
func FormatPrefixStudy(rows []PrefixRow) string {
	var baseReads int64
	for _, r := range rows {
		if r.Arm == PrefixArmBaseline {
			baseReads = r.OriginReads
		}
	}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Arm\tWatchers\tPrefixK\tOriginReads\tReads/s\tStartP99Ms\tStartMeanMs\tRemoteStarts\tPrefixServed\tUpstreams\tReadCut")
	for _, r := range rows {
		cut := "-"
		if r.Arm != PrefixArmBaseline && r.OriginReads > 0 && baseReads > 0 {
			cut = fmt.Sprintf("%.2fx", float64(baseReads)/float64(r.OriginReads))
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.0f\t%.1f\t%.1f\t%d\t%d\t%d\t%s\n",
			r.Arm, r.Watchers, r.PrefixK, r.OriginReads, r.OriginReadsPerSec,
			r.StartupP99Ms, r.StartupMeanMs, r.StartupRemoteFetches,
			r.PrefixServed, r.RelayUpstreams, cut)
	}
	_ = w.Flush()
	return b.String()
}
