package experiments

import (
	"reflect"
	"testing"
	"time"
)

// TestReplayDeterministic: identical configs produce byte-identical results,
// the property every experiment in EXPERIMENTS.md relies on.
func TestReplayDeterministic(t *testing.T) {
	cfg := DefaultRoutingStudyConfig()
	cfg.Duration = 20 * time.Minute
	cfg.RatePerSec = 0.01
	a, err := RoutingStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RoutingStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("routing study not deterministic:\n%v\nvs\n%v", a, b)
	}
}

func TestCacheStudyDeterministic(t *testing.T) {
	cfg := DefaultCacheStudyConfig()
	cfg.Requests = 400
	a, err := CacheStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CacheStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("cache study not deterministic")
	}
}

func TestGranularityStudyDeterministic(t *testing.T) {
	cfg := DefaultGranularityStudyConfig()
	cfg.Sessions = 300
	a, err := GranularityStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GranularityStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("granularity study not deterministic")
	}
}

func TestParallelFetchDeterministic(t *testing.T) {
	cfg := DefaultParallelFetchConfig()
	cfg.TitleBytes = 1 << 20
	a, err := ParallelFetch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParallelFetch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("parallel fetch not deterministic")
	}
}

// TestTablesDeterministic: the paper-table generators are pure.
func TestTablesDeterministic(t *testing.T) {
	a2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a2, b2) {
		t.Fatal("Table2 not deterministic")
	}
	a3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	b3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a3, b3) {
		t.Fatal("Table3 not deterministic")
	}
	for _, id := range []string{"A", "B", "C", "D"} {
		ra, err := RunExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := RunExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Decision.Server != rb.Decision.Server ||
			ra.Decision.Path.String() != rb.Decision.Path.String() {
			t.Fatalf("experiment %s not deterministic", id)
		}
	}
}
