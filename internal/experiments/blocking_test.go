package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestBlockingStudyShape(t *testing.T) {
	cfg := DefaultBlockingStudyConfig()
	cfg.Duration = 3 * time.Hour
	cells, err := BlockingStudy(cfg)
	if err != nil {
		t.Fatalf("BlockingStudy: %v", err)
	}
	if len(cells) != len(cfg.ArrivalsPerHour)*4 {
		t.Fatalf("cells = %d", len(cells))
	}
	byKey := map[string]BlockingCell{}
	for _, c := range cells {
		byKey[c.Policy+"@"+formatLoad(c.ArrivalsPerHour)] = c
		if c.Offered == 0 {
			t.Fatalf("cell %s@%g offered nothing", c.Policy, c.ArrivalsPerHour)
		}
		if c.Blocked > c.Offered {
			t.Fatalf("cell %+v blocked more than offered", c)
		}
	}
	// Blocking grows with load for every policy.
	lows := cfg.ArrivalsPerHour[0]
	highs := cfg.ArrivalsPerHour[len(cfg.ArrivalsPerHour)-1]
	for _, policy := range []string{"vra", "minhop", "random", "static"} {
		lo := byKey[policy+"@"+formatLoad(lows)]
		hi := byKey[policy+"@"+formatLoad(highs)]
		if hi.BlockingProb() < lo.BlockingProb() {
			t.Errorf("%s: blocking fell with load (%.4f → %.4f)",
				policy, lo.BlockingProb(), hi.BlockingProb())
		}
	}
	// At the highest load the VRA (QoS-gated, load-aware) blocks no more
	// than the static primary policy, which funnels everything onto one
	// replica's routes.
	vra := byKey["vra@"+formatLoad(highs)]
	static := byKey["static@"+formatLoad(highs)]
	if vra.BlockingProb() > static.BlockingProb()+1e-9 {
		t.Errorf("vra blocking %.4f exceeds static %.4f at high load",
			vra.BlockingProb(), static.BlockingProb())
	}
	out := FormatBlockingStudy(cells)
	if !strings.Contains(out, "BlockingProb") {
		t.Fatalf("format:\n%s", out)
	}
}

func formatLoad(l float64) string { return fmt.Sprintf("%g", l) }

func TestBlockingStudyValidation(t *testing.T) {
	if _, err := BlockingStudy(BlockingStudyConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := DefaultBlockingStudyConfig()
	bad.BitrateMbps = 0
	if _, err := BlockingStudy(bad); err == nil {
		t.Fatal("zero bitrate accepted")
	}
	bad2 := DefaultBlockingStudyConfig()
	bad2.Duration = 0
	if _, err := BlockingStudy(bad2); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestBlockingStudyDeterministic(t *testing.T) {
	cfg := DefaultBlockingStudyConfig()
	cfg.ArrivalsPerHour = []float64{18}
	cfg.Duration = 2 * time.Hour
	a, err := BlockingStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BlockingStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("blocking study not deterministic")
	}
}
