package experiments

import (
	"strings"
	"testing"
	"time"

	"dvod/internal/client"
)

// records builds arrival records separated by the given gaps.
func records(start time.Time, gaps ...time.Duration) []client.ClusterRecord {
	recs := []client.ClusterRecord{{ArrivedAt: start}}
	at := start
	for _, g := range gaps {
		at = at.Add(g)
		recs = append(recs, client.ClusterRecord{ArrivedAt: at})
	}
	return recs
}

// TestChaosStudySmoke runs Ext-15 end to end at reduced concurrency and
// checks the structural contract: every schedule yields a bare and a defended
// row, faults actually fired in every cell, and the defense never fails more
// watches than the bare plane it is supposed to improve on.
func TestChaosStudySmoke(t *testing.T) {
	cfg := DefaultChaosStudyConfig()
	cfg.Watchers = 2
	rows, err := ChaosStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	schedules := ChaosSchedules()
	if len(rows) != 2*len(schedules) {
		t.Fatalf("rows = %d, want %d", len(rows), 2*len(schedules))
	}
	for i, schedule := range schedules {
		bare, defended := rows[2*i], rows[2*i+1]
		if bare.Schedule != schedule || defended.Schedule != schedule {
			t.Fatalf("row pair %d schedules = %q/%q, want %q", i, bare.Schedule, defended.Schedule, schedule)
		}
		if bare.Mode != "bare" || defended.Mode != "defended" {
			t.Fatalf("%s: modes = %q/%q", schedule, bare.Mode, defended.Mode)
		}
		for _, r := range []ChaosRow{bare, defended} {
			if r.Watchers != cfg.Watchers {
				t.Fatalf("%s/%s: watchers = %d, want %d", r.Schedule, r.Mode, r.Watchers, cfg.Watchers)
			}
			if r.InjectedFaults == 0 {
				t.Fatalf("%s/%s: no faults injected", r.Schedule, r.Mode)
			}
			if r.FailedWatches < 0 || r.FailedWatches > cfg.Watchers {
				t.Fatalf("%s/%s: failed watches = %d", r.Schedule, r.Mode, r.FailedWatches)
			}
		}
		if defended.FailedWatches > bare.FailedWatches {
			t.Fatalf("%s: defense failed %d watches vs bare %d", schedule,
				defended.FailedWatches, bare.FailedWatches)
		}
		if bare.Resumes != 0 {
			t.Fatalf("%s: bare players cannot resume, saw %d", schedule, bare.Resumes)
		}
	}
	out := FormatChaosStudy(rows)
	if !strings.Contains(out, "flap") || !strings.Contains(out, "defended") {
		t.Fatalf("formatted study missing rows:\n%s", out)
	}
}

func TestChaosStudyConfigValidation(t *testing.T) {
	mutations := []func(*ChaosStudyConfig){
		func(c *ChaosStudyConfig) { c.Watchers = 0 },
		func(c *ChaosStudyConfig) { c.TitleClusters = 0 },
		func(c *ChaosStudyConfig) { c.ClusterBytes = 0 },
		func(c *ChaosStudyConfig) { c.BitrateMbps = 0 },
		func(c *ChaosStudyConfig) { c.Drag = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultChaosStudyConfig()
		mutate(&cfg)
		if _, err := ChaosStudy(cfg); err == nil {
			t.Errorf("mutation %d: bad config accepted", i)
		}
	}
	if _, _, err := chaosPlan(DefaultChaosStudyConfig(), "earthquake"); err == nil {
		t.Error("unknown schedule accepted")
	}
}

// TestChaosRegressionGate pins the gate's semantics: each defended metric is
// allowed 20% over baseline plus its absolute slack, bare rows are never
// gated, and schedules absent from the baseline pass.
func TestChaosRegressionGate(t *testing.T) {
	baseline := []ChaosRow{
		{Schedule: "flap", Mode: "defended", FailedRate: 0, RebufferRate: 1, MTTRms: 20},
		{Schedule: "flap", Mode: "bare", FailedRate: 1, RebufferRate: 4, MTTRms: 500},
	}
	ok := []ChaosRow{
		{Schedule: "flap", Mode: "defended", FailedRate: 0.25, RebufferRate: 2.1, MTTRms: 70},
		// Bare arms regress freely; they are the control, not the contract.
		{Schedule: "flap", Mode: "bare", FailedRate: 1, RebufferRate: 40, MTTRms: 5000},
		// No baseline for this schedule: nothing to gate against.
		{Schedule: "quake", Mode: "defended", FailedRate: 1, RebufferRate: 40, MTTRms: 5000},
	}
	if bad := ChaosRegression(ok, baseline); len(bad) != 0 {
		t.Fatalf("clean run flagged: %v", bad)
	}
	cases := []struct {
		name string
		row  ChaosRow
		want string
	}{
		{"failed rate", ChaosRow{Schedule: "flap", Mode: "defended", FailedRate: 0.35}, "failed-watch"},
		{"rebuffer rate", ChaosRow{Schedule: "flap", Mode: "defended", RebufferRate: 2.3}, "rebuffer"},
		{"mttr", ChaosRow{Schedule: "flap", Mode: "defended", MTTRms: 75}, "MTTR"},
	}
	for _, tc := range cases {
		bad := ChaosRegression([]ChaosRow{tc.row}, baseline)
		if len(bad) != 1 || !strings.Contains(bad[0], tc.want) {
			t.Errorf("%s: gate output %v, want one %q message", tc.name, bad, tc.want)
		}
	}
}

func TestMaxArrivalGap(t *testing.T) {
	if g := maxArrivalGap(nil); g != 0 {
		t.Fatalf("gap of no records = %v", g)
	}
	base := time.Unix(0, 0)
	recs := records(base, 10*time.Millisecond, 5*time.Millisecond, 120*time.Millisecond, time.Millisecond)
	if g := maxArrivalGap(recs); g != 120*time.Millisecond {
		t.Fatalf("max gap = %v, want 120ms", g)
	}
}
