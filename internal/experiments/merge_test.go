package experiments

import "testing"

// TestMergeStudySavesOriginReads pins the tentpole's acceptance bar on a
// scaled-down Ext-14: with 8 concurrent watchers of one hot title, merging
// must at least halve the origin's disk reads and upstream bytes without
// costing the clients throughput.
func TestMergeStudySavesOriginReads(t *testing.T) {
	cfg := MergeStudyConfig{
		Watchers:      8,
		Titles:        3,
		TitleClusters: 256,
		ClusterBytes:  1 << 10,
		ZipfS:         1.2,
		Seed:          1,
		Window:        256,
	}
	rows, err := MergeStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byKey := make(map[string]MergeRow)
	for _, r := range rows {
		byKey[r.Pattern+"/"+r.Mode] = r
	}
	uni, mer := byKey["hot/unicast"], byKey["hot/merged"]
	if uni.OriginReads != int64(cfg.Watchers*cfg.TitleClusters) {
		t.Fatalf("unicast origin reads = %d, want one per delivery (%d)",
			uni.OriginReads, cfg.Watchers*cfg.TitleClusters)
	}
	if uni.Cohorts != 0 || uni.Merged != 0 {
		t.Fatalf("unicast cell reported cohorts=%d merged=%d", uni.Cohorts, uni.Merged)
	}
	if 2*mer.OriginReads > uni.OriginReads {
		t.Fatalf("merged origin reads %d not halved against unicast %d",
			mer.OriginReads, uni.OriginReads)
	}
	if 2*mer.UpstreamMB > uni.UpstreamMB {
		t.Fatalf("merged upstream %.2f MB not halved against unicast %.2f MB",
			mer.UpstreamMB, uni.UpstreamMB)
	}
	if mer.Merged == 0 {
		t.Fatal("no session merged onto a cohort")
	}
	savings := MergeSavings(rows)
	if savings["hot"] < 2 {
		t.Fatalf("hot saving %.2fx below the 2x acceptance bar", savings["hot"])
	}
	// The zipf pattern replays identical draws in both modes, so the
	// unicast read count must match the trace exactly.
	zu := byKey["zipf/unicast"]
	if zu.OriginReads != int64(cfg.Watchers*cfg.TitleClusters) {
		t.Fatalf("zipf unicast origin reads = %d, want %d",
			zu.OriginReads, cfg.Watchers*cfg.TitleClusters)
	}
	if out := FormatMergeStudy(rows); out == "" {
		t.Fatal("empty report")
	}
}
