package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"dvod/internal/admission"
	"dvod/internal/db"
	"dvod/internal/media"
	"dvod/internal/topology"
)

// --- Ext-18: hot-path contention study ---------------------------------------

// Ext-18 measures the sharded admission and catalog hot paths under the
// million-session concurrency model: W goroutines hammer the broker's full
// admit-then-release cycle over distinct spoke links while reader goroutines
// simultaneously spin on the lock-free db.Snapshot and catalog HoldersView
// path, per broker shard count. The committed baseline records the machine's
// GOMAXPROCS alongside every row because shard scaling is a parallelism
// effect: on a single-core box every shard count serializes identically, so
// the regression gate (ContentionRegression) enforces the absolute
// admissions/sec floor everywhere but only tightens the scaling bound to what
// the baseline machine actually demonstrated.

// ContentionFloorAdmissionsPerSec is the absolute throughput floor the
// max-shard cell must clear on any machine — the "≥100k admissions/sec
// single node" claim of the sharding work, with wide margin below measured
// single-core reality (~2.5M/sec) so a loaded CI runner cannot flake it.
const ContentionFloorAdmissionsPerSec = 100_000

// ContentionParallelScalingFloor is the minimum 1→max-shard speedup demanded
// of a run at GOMAXPROCS ≥ 4 when the committed baseline cannot set the
// bound because it was itself measured below 4 procs, where shard scaling
// cannot manifest. The floor asserts that sharding shows *some* parallel
// benefit without guessing how much this particular machine can demonstrate;
// regenerating the baseline on a multi-core runner replaces it with the
// self-tightening 80%-of-baseline bound.
const ContentionParallelScalingFloor = 1.1

// ContentionStudyConfig parameterizes Ext-18.
type ContentionStudyConfig struct {
	// Shards lists the broker shard counts to sweep, ascending. The scaling
	// ratio compares the last entry against the first.
	Shards []int
	// Workers is the number of concurrent admitting goroutines per cell;
	// OpsPerWorker the admit/release cycles each performs.
	Workers      int
	OpsPerWorker int
	// Links is the spoke count of the hub topology — the distinct link IDs
	// admissions reserve over, which is what spreads shard locks.
	Links int
	// Titles is the catalog size the reader goroutines sweep; Readers how
	// many goroutines spin on Snapshot+HoldersView during the storm.
	Titles  int
	Readers int
}

// DefaultContentionStudyConfig sweeps 1→8 shards with 8 workers × 20k cycles
// over 64 links, 2 readers over a 64-title catalog — ~160k admissions per
// cell, enough that per-cell wall clock dominates timer noise while the whole
// sweep stays under a second of CPU.
func DefaultContentionStudyConfig() ContentionStudyConfig {
	return ContentionStudyConfig{
		Shards:       []int{1, 2, 4, 8},
		Workers:      8,
		OpsPerWorker: 20_000,
		Links:        64,
		Titles:       64,
		Readers:      2,
	}
}

// ContentionRow is one shard count's measured cell.
type ContentionRow struct {
	// Shards is the broker shard count; Workers and Procs record the offered
	// concurrency and the GOMAXPROCS it actually ran on.
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	Procs   int `json:"procs"`
	// Admissions counts completed admit+release cycles; AdmissionsPerSec is
	// the wall-clock rate.
	Admissions       int64   `json:"admissions"`
	DurationSec      float64 `json:"durationSec"`
	AdmissionsPerSec float64 `json:"admissionsPerSec"`
	// SnapshotReads counts Snapshot+HoldersView pairs the readers completed
	// during the admission storm — the lock-free read path staying live under
	// write load.
	SnapshotReads       int64   `json:"snapshotReads"`
	SnapshotReadsPerSec float64 `json:"snapshotReadsPerSec"`
}

// ContentionStudy runs Ext-18 and returns one row per configured shard count.
func ContentionStudy(cfg ContentionStudyConfig) ([]ContentionRow, error) {
	switch {
	case len(cfg.Shards) == 0:
		return nil, errors.New("contention study: no shard counts")
	case cfg.Workers <= 0 || cfg.OpsPerWorker <= 0:
		return nil, errors.New("contention study: need positive workers and ops")
	case cfg.Links <= 0 || cfg.Titles <= 0 || cfg.Readers < 0:
		return nil, errors.New("contention study: bad topology or reader counts")
	}
	for i, s := range cfg.Shards {
		if s <= 0 {
			return nil, fmt.Errorf("contention study: shard count %d must be positive", s)
		}
		if i > 0 && s <= cfg.Shards[i-1] {
			return nil, errors.New("contention study: shard counts must ascend")
		}
	}

	g := topology.NewGraph()
	if err := g.AddNode("hub"); err != nil {
		return nil, err
	}
	links := make([]topology.LinkID, 0, cfg.Links)
	for i := 0; i < cfg.Links; i++ {
		node := topology.NodeID(fmt.Sprintf("s%03d", i))
		if err := g.AddNode(node); err != nil {
			return nil, err
		}
		id, err := g.AddLink("hub", node, 1e9)
		if err != nil {
			return nil, err
		}
		links = append(links, id)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	d := db.New(g)
	titles := make([]string, cfg.Titles)
	for i := range titles {
		titles[i] = fmt.Sprintf("title-%03d", i)
		err := d.Catalog().AddTitle(media.Title{Name: titles[i], SizeBytes: 1 << 20, BitrateMbps: 4})
		if err != nil {
			return nil, err
		}
		if err := d.SetHolding("hub", titles[i], true, time.Unix(0, 0)); err != nil {
			return nil, err
		}
	}

	// Untimed warm-up: the first timed cell must not pay process cold-start
	// (scheduler spin-up, allocator growth) that the later cells don't, or
	// the 1→N speedup inherits a warm-up artifact.
	warm := cfg
	if warm.OpsPerWorker > 2000 {
		warm.OpsPerWorker = 2000
	}
	if _, err := contentionCell(warm, d, links, titles, cfg.Shards[0]); err != nil {
		return nil, fmt.Errorf("contention study warm-up: %w", err)
	}

	var out []ContentionRow
	for _, shards := range cfg.Shards {
		row, err := contentionCell(cfg, d, links, titles, shards)
		if err != nil {
			return nil, fmt.Errorf("contention study shards=%d: %w", shards, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// contentionCell measures one shard count: workers admit+release over the
// shared db's snapshot while readers spin on the lock-free read path.
func contentionCell(cfg ContentionStudyConfig, d *db.DB, links []topology.LinkID,
	titles []string, shards int) (ContentionRow, error) {
	row := ContentionRow{Shards: shards, Workers: cfg.Workers, Procs: runtime.GOMAXPROCS(0)}
	br, err := admission.New(admission.Config{
		Node:         "hub",
		CapacityMbps: 1e12,
		MaxSessions:  1 << 30,
		Shards:       shards,
		Snapshot:     d.Snapshot,
	})
	if err != nil {
		return row, err
	}

	stop := make(chan struct{})
	var reads atomic.Int64
	var readers sync.WaitGroup
	for r := 0; r < cfg.Readers; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := d.Snapshot(); err != nil {
					return
				}
				if _, err := d.Catalog().HoldersView(titles[(r+i)%len(titles)]); err != nil {
					return
				}
				reads.Add(1)
			}
		}(r)
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			route := []topology.LinkID{links[w%len(links)]}
			for i := 0; i < cfg.OpsPerWorker; i++ {
				grant, err := br.Admit(admission.Request{
					Class:       admission.Premium,
					BitrateMbps: 4,
					Links:       route,
				})
				if err != nil {
					errs[w] = err
					return
				}
				br.Release(grant)
			}
		}(w)
	}
	wg.Wait()
	row.DurationSec = time.Since(start).Seconds()
	close(stop)
	readers.Wait()
	for _, err := range errs {
		if err != nil {
			return row, err
		}
	}
	// Structural drain check: a cell that leaks bandwidth or sessions is a
	// broken measurement, not a slow one.
	if c := br.CommittedMbps(); c != 0 {
		return row, fmt.Errorf("leaked %g Mbps committed after drain", c)
	}
	if s := br.Sessions(); s != 0 {
		return row, fmt.Errorf("leaked %d sessions after drain", s)
	}
	row.Admissions = int64(cfg.Workers) * int64(cfg.OpsPerWorker)
	if row.DurationSec > 0 {
		row.AdmissionsPerSec = float64(row.Admissions) / row.DurationSec
	}
	row.SnapshotReads = reads.Load()
	if row.DurationSec > 0 {
		row.SnapshotReadsPerSec = float64(row.SnapshotReads) / row.DurationSec
	}
	return row, nil
}

// contentionScaling returns last-row over first-row admissions/sec — the
// 1→max shard speedup — and false when it cannot be computed.
func contentionScaling(rows []ContentionRow) (float64, bool) {
	if len(rows) < 2 || rows[0].AdmissionsPerSec <= 0 {
		return 0, false
	}
	return rows[len(rows)-1].AdmissionsPerSec / rows[0].AdmissionsPerSec, true
}

// ContentionRegression gates Ext-18 against its committed baseline. It
// returns one bad message per violation (empty bad passes) plus notes the
// caller must print — warnings about what the gate could not check, so a
// weakened bound is always loud, never silent. Shard scaling is a
// parallelism effect — a single-core machine runs every shard count at the
// same rate — so the gate separates machine-independent checks from
// comparative ones:
//
//   - absolute floor, always enforced: the max-shard cell must clear
//     ContentionFloorAdmissionsPerSec, and the concurrent lock-free read
//     path must have made progress (zero snapshot reads during the storm
//     means the read path wedged behind the writers).
//   - scaling, self-tightening: the current 1→max shard speedup must reach
//     80% of whatever the baseline machine demonstrated, capped at 3× —
//     regenerating the baseline on a many-core box tightens the bound toward
//     the 3× target. Skipped below GOMAXPROCS 4, where the speedup cannot
//     manifest. A baseline itself measured below GOMAXPROCS 4 demonstrated
//     nothing about scaling, so the gate refuses to derive the bound from it:
//     it emits a loud warning telling maintainers to regenerate the baseline
//     on a multi-core runner and holds a ≥4-proc current run to the fixed
//     ContentionParallelScalingFloor instead.
//   - throughput, matched machines only: when current and baseline ran at
//     the same GOMAXPROCS, the max-shard rate must be within 20% of the
//     baseline's. Cross-machine wall-clock comparisons flake, so mismatched
//     GOMAXPROCS falls back to the absolute floor alone.
func ContentionRegression(current, baseline []ContentionRow) (bad, notes []string) {
	if len(current) == 0 {
		return []string{"contention run produced no rows"}, nil
	}
	if len(baseline) == 0 {
		bad = append(bad, "contention baseline holds no rows to compare")
	}
	byShards := make(map[int]bool, len(current))
	for _, r := range current {
		byShards[r.Shards] = true
	}
	for _, b := range baseline {
		if !byShards[b.Shards] {
			bad = append(bad, fmt.Sprintf("baseline shard count %d missing from current run", b.Shards))
		}
	}
	cur := current[len(current)-1]
	if cur.AdmissionsPerSec < ContentionFloorAdmissionsPerSec {
		bad = append(bad, fmt.Sprintf(
			"max-shard cell (shards=%d) ran %.0f admissions/sec, floor is %d",
			cur.Shards, cur.AdmissionsPerSec, ContentionFloorAdmissionsPerSec))
	}
	if cur.SnapshotReads == 0 {
		bad = append(bad, "lock-free read path made zero progress during the admission storm")
	}
	baselineCanScale := false
	if len(baseline) > 0 {
		baseProcs := baseline[len(baseline)-1].Procs
		baselineCanScale = baseProcs >= 4
		if !baselineCanScale {
			notes = append(notes, fmt.Sprintf(
				"WARNING: contention baseline was measured at GOMAXPROCS %d (< 4), where shard "+
					"scaling cannot manifest; refusing to derive the scaling bound from it. "+
					"Regenerate BENCH_contention.json on a runner with ≥ 4 cores to restore the "+
					"self-tightening gate.", baseProcs))
		}
	}
	if scaling, ok := contentionScaling(current); ok && cur.Procs >= 4 {
		if baseScaling, ok := contentionScaling(baseline); ok && baselineCanScale {
			want := 0.8 * baseScaling
			if want > 3.0 {
				want = 3.0
			}
			if scaling < want {
				bad = append(bad, fmt.Sprintf(
					"1→%d shard speedup %.2fx, want ≥ %.2fx (baseline showed %.2fx at GOMAXPROCS %d)",
					cur.Shards, scaling, want, baseScaling, baseline[len(baseline)-1].Procs))
			}
		} else if scaling < ContentionParallelScalingFloor {
			bad = append(bad, fmt.Sprintf(
				"1→%d shard speedup %.2fx at GOMAXPROCS %d, below the fixed parallel floor %.2fx "+
					"(baseline cannot set the bound)",
				cur.Shards, scaling, cur.Procs, ContentionParallelScalingFloor))
		}
	}
	if len(baseline) > 0 {
		base := baseline[len(baseline)-1]
		if base.Shards == cur.Shards && base.Procs == cur.Procs &&
			cur.AdmissionsPerSec < 0.8*base.AdmissionsPerSec {
			bad = append(bad, fmt.Sprintf(
				"max-shard throughput %.0f/sec regressed >20%% from baseline %.0f/sec at matched GOMAXPROCS %d",
				cur.AdmissionsPerSec, base.AdmissionsPerSec, cur.Procs))
		}
	}
	return bad, notes
}

// FormatContentionStudy renders Ext-18 as an aligned table.
func FormatContentionStudy(rows []ContentionRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Shards\tWorkers\tProcs\tAdmissions\tAdm/sec\tReads/sec")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.0f\t%.0f\n",
			r.Shards, r.Workers, r.Procs, r.Admissions, r.AdmissionsPerSec, r.SnapshotReadsPerSec)
	}
	if scaling, ok := contentionScaling(rows); ok {
		fmt.Fprintf(w, "\t\t\t\t1→%d speedup\t%.2fx\n", rows[len(rows)-1].Shards, scaling)
	}
	_ = w.Flush()
	return b.String()
}
