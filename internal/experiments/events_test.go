package experiments

import (
	"bytes"
	"testing"
	"time"

	"dvod/internal/core"
	"dvod/internal/eventlog"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/topology"
	"dvod/internal/workload"
)

// TestReplayEmitsEvents: a replay with an event log produces a coherent
// request → decision → session-done stream, exportable as CSV.
func TestReplayEmitsEvents(t *testing.T) {
	var buf bytes.Buffer
	log := eventlog.New(&buf)
	title := media.Title{Name: "logged", SizeBytes: 256 << 10, BitrateMbps: 1.5}
	res, err := Replay(ReplayConfig{
		Selector:     core.VRA{},
		Titles:       []media.Title{title},
		Placement:    map[string][]topology.NodeID{title.Name: {grnet.Xanthi}},
		Requests:     []workload.Request{{At: epoch, Client: grnet.Patra, Title: title.Name}},
		ClusterBytes: 64 << 10,
		Events:       log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 1 {
		t.Fatalf("sessions = %d", len(res.Sessions))
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := eventlog.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requests := eventlog.Filter(events, eventlog.KindRequest)
	decisions := eventlog.Filter(events, eventlog.KindDecision)
	done := eventlog.Filter(events, eventlog.KindSessionDone)
	if len(requests) != 1 || len(done) != 1 {
		t.Fatalf("requests=%d done=%d", len(requests), len(done))
	}
	if len(decisions) != 4 { // one per cluster
		t.Fatalf("decisions = %d, want 4", len(decisions))
	}
	for _, d := range decisions {
		if d.Server != grnet.Xanthi || d.Path == "" || d.Value <= 0 {
			t.Fatalf("decision event = %+v", d)
		}
	}
	if done[0].Value <= 0 {
		t.Fatalf("session-done value = %g", done[0].Value)
	}
	// CSV export of the full stream.
	var csvBuf bytes.Buffer
	if err := eventlog.WriteCSV(&csvBuf, events); err != nil {
		t.Fatal(err)
	}
	if csvBuf.Len() == 0 {
		t.Fatal("empty csv")
	}
}

// TestReplayEmitsSwitchEvents: the congestion-injection trial records
// switch events at the cluster where the server changed.
func TestReplayEmitsSwitchEvents(t *testing.T) {
	var buf bytes.Buffer
	log := eventlog.New(&buf)
	title := media.Title{Name: "switchy", SizeBytes: 2 << 20, BitrateMbps: 1.5}
	_, err := ReplayWithEvents(ReplayConfig{
		Selector:           core.VRA{},
		Titles:             []media.Title{title},
		Placement:          map[string][]topology.NodeID{title.Name: {grnet.Thessaloniki, grnet.Xanthi}},
		Requests:           []workload.Request{{At: epoch, Client: grnet.Patra, Title: title.Name}},
		ClusterBytes:       64 << 10,
		PollInterval:       5 * time.Second,
		BackgroundInterval: 12 * time.Hour,
		Events:             log,
	}, []ReplayEvent{{
		At: epoch.Add(2 * time.Second),
		Background: map[topology.LinkID]float64{
			topology.MakeLinkID(grnet.Patra, grnet.Ioannina):        1.99,
			topology.MakeLinkID(grnet.Thessaloniki, grnet.Ioannina): 1.99,
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := eventlog.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	switches := eventlog.Filter(events, eventlog.KindSwitch)
	if len(switches) == 0 {
		t.Fatal("no switch events recorded")
	}
	if switches[0].Server != grnet.Xanthi {
		t.Fatalf("first switch to %s, want Xanthi", switches[0].Server)
	}
}
