package experiments

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"dvod/internal/admission"
	"dvod/internal/baseline"
	"dvod/internal/core"
	"dvod/internal/grnet"
	"dvod/internal/topology"
	"dvod/internal/workload"
)

// --- Ext-12: per-class admission vs best-effort ------------------------------

// ClassMix assigns each user class its share of the offered load. Shares are
// relative weights; they need not sum to 1.
type ClassMix map[admission.Class]float64

// ParseClassMix parses "premium:0.2,standard:0.5,background:0.3" into a
// ClassMix, validating class names and weights.
func ParseClassMix(s string) (ClassMix, error) {
	mix := ClassMix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("class mix: %q is not class:weight", part)
		}
		c, err := admission.ParseClass(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("class mix: %w", err)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(weight), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("class mix: bad weight %q for %s", weight, c)
		}
		mix[c] += w
	}
	if len(mix) == 0 {
		return nil, errors.New("class mix: empty")
	}
	total := 0.0
	for _, w := range mix {
		total += w
	}
	if total <= 0 {
		return nil, errors.New("class mix: weights sum to zero")
	}
	return mix, nil
}

// DefaultClassMix is the headline Ext-12 population: a premium minority
// sharing the backbone with a standard majority and background bulk traffic.
func DefaultClassMix() ClassMix {
	return ClassMix{
		admission.Premium:    0.2,
		admission.Standard:   0.5,
		admission.Background: 0.3,
	}
}

// AdmissionStudyConfig parameterizes Ext-12: the Ext-9 reservation simulator
// run twice over identical traces — once with the broker's per-class trunk
// reservation and degradation ladder, once best-effort (every class treated
// alike at full rate) — to measure what class-aware admission buys premium
// users under saturating load.
type AdmissionStudyConfig struct {
	// Mix weights each request's class draw.
	Mix ClassMix
	// Policies pick the routing selector; empty means just the VRA.
	Policies []string
	// ArrivalsPerHour are the offered-load points to sweep.
	ArrivalsPerHour []float64
	// BitrateMbps and HoldMinutes define one session's reservation.
	BitrateMbps float64
	HoldMinutes float64
	NumTitles   int
	Replicas    int
	Duration    time.Duration
	Seed        int64
	// Classes maps each class to its policy; nil means
	// admission.DefaultPolicies.
	Classes map[admission.Class]admission.Policy
}

// DefaultAdmissionStudyConfig sweeps saturating load points with the default
// class mix and policies. The loads sit above Ext-9's: class protection only
// shows once the backbone is contended (below that, both modes admit nearly
// everything and per-class differences are sampling noise).
func DefaultAdmissionStudyConfig() AdmissionStudyConfig {
	return AdmissionStudyConfig{
		Mix:             DefaultClassMix(),
		Policies:        []string{"vra"},
		ArrivalsPerHour: []float64{60, 120, 240},
		BitrateMbps:     1.5,
		HoldMinutes:     20,
		NumTitles:       12,
		Replicas:        2,
		Duration:        12 * time.Hour,
		Seed:            1,
	}
}

// linkWithinCalibratedShare reports whether adding rate to one link's
// reserved bandwidth keeps the total within the class's calibrated share of
// the link — the simulator-side mirror of the broker's trunk check.
func linkWithinCalibratedShare(capacityMbps, reservedMbps, rate, share float64) bool {
	cal := admission.CalibratedLinkShare(share, capacityMbps, rate)
	return reservedMbps+rate <= cal*capacityMbps+1e-9
}

// AdmissionCell is one (mode, policy, load, class) outcome.
type AdmissionCell struct {
	Mode            string // "admission" or "best-effort"
	Policy          string
	ArrivalsPerHour float64
	Class           admission.Class
	Offered         int
	Admitted        int // at native rate (includes local serves)
	Degraded        int // admitted below native rate
	Rejected        int
	LocalServed     int
}

// BlockingProb returns Rejected/Offered.
func (c AdmissionCell) BlockingProb() float64 {
	if c.Offered == 0 {
		return 0
	}
	return float64(c.Rejected) / float64(c.Offered)
}

// drawClasses assigns every request in a trace a class, deterministically
// from the seed, so both modes face the identical classified demand.
func drawClasses(mix ClassMix, n int, seed int64) []admission.Class {
	classes := admission.Classes()
	weights := make([]float64, len(classes))
	total := 0.0
	for i, c := range classes {
		weights[i] = mix[c]
		total += mix[c]
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]admission.Class, n)
	for i := range out {
		x := rng.Float64() * total
		for j, w := range weights {
			x -= w
			if x < 0 || j == len(weights)-1 {
				out[i] = classes[j]
				break
			}
		}
	}
	return out
}

// AdmissionStudy runs Ext-12.
func AdmissionStudy(cfg AdmissionStudyConfig) ([]AdmissionCell, error) {
	if len(cfg.Mix) == 0 {
		return nil, errors.New("admission study: empty class mix")
	}
	if len(cfg.ArrivalsPerHour) == 0 {
		return nil, errors.New("admission study: no load points")
	}
	if cfg.BitrateMbps <= 0 || cfg.HoldMinutes <= 0 {
		return nil, errors.New("admission study: bad session shape")
	}
	if cfg.NumTitles <= 0 || cfg.Replicas <= 0 {
		return nil, errors.New("admission study: need titles and replicas")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("admission study: bad duration")
	}
	policies := cfg.Policies
	if len(policies) == 0 {
		policies = []string{"vra"}
	}
	classPolicies := cfg.Classes
	if classPolicies == nil {
		classPolicies = admission.DefaultPolicies()
	}
	g, err := grnet.Backbone()
	if err != nil {
		return nil, err
	}
	nodes := g.Nodes()

	placeRng := rand.New(rand.NewSource(cfg.Seed))
	titles := make([]string, cfg.NumTitles)
	placement := make(map[string][]topology.NodeID, cfg.NumTitles)
	for i := range cfg.NumTitles {
		titles[i] = fmt.Sprintf("t%02d", i)
		perm := placeRng.Perm(len(nodes))
		k := min(cfg.Replicas, len(nodes))
		for j := range k {
			placement[titles[i]] = append(placement[titles[i]], nodes[perm[j]])
		}
	}
	hold := time.Duration(cfg.HoldMinutes * float64(time.Minute))

	var out []AdmissionCell
	for _, load := range cfg.ArrivalsPerHour {
		trace, err := workload.GenerateTrace(workload.TraceConfig{
			Titles:     titles,
			Clients:    nodes,
			Theta:      0.729,
			RatePerSec: load / 3600,
			Start:      epoch,
			Duration:   cfg.Duration,
			Seed:       cfg.Seed + int64(load*100),
		})
		if err != nil {
			return nil, err
		}
		classes := drawClasses(cfg.Mix, len(trace), cfg.Seed+int64(load*100)+13)
		for _, name := range policies {
			for _, classAware := range []bool{true, false} {
				sel, err := baseline.ByName(name, cfg.Seed+7)
				if err != nil {
					return nil, err
				}
				cells, err := runAdmissionTrial(g, sel, trace, classes, placement,
					classPolicies, cfg.BitrateMbps, hold, classAware)
				if err != nil {
					mode := "admission"
					if !classAware {
						mode = "best-effort"
					}
					return nil, fmt.Errorf("%s/%s @%g/h: %w", name, mode, load, err)
				}
				for i := range cells {
					cells[i].ArrivalsPerHour = load
				}
				out = append(out, cells...)
			}
		}
	}
	return out, nil
}

// runAdmissionTrial processes one classified trace. With classAware set,
// each request is admitted under its class policy: every link on the chosen
// route must keep total reservations within MaxShare of capacity (trunk
// reservation — lower classes may not fill the link, preserving premium
// headroom), and a request failing at native rate retries down its class's
// degradation ladder before being rejected. Best-effort mode treats every
// class alike at full rate and share.
func runAdmissionTrial(g *topology.Graph, sel core.Selector, trace []workload.Request,
	classes []admission.Class, placement map[string][]topology.NodeID,
	policies map[admission.Class]admission.Policy, bitrate float64, hold time.Duration,
	classAware bool) ([]AdmissionCell, error) {

	mode := "best-effort"
	if classAware {
		mode = "admission"
	}
	byClass := map[admission.Class]*AdmissionCell{}
	for _, c := range admission.Classes() {
		byClass[c] = &AdmissionCell{Mode: mode, Policy: sel.Name(), Class: c}
	}

	res := newReservations(g)
	var departures departureHeap

	// trunkOK reports whether reserving rate on every path link keeps each
	// link's total within the class's calibrated share of its capacity —
	// the same per-link trunk reservation the live broker applies, so thin
	// access links stay protected for better classes in the simulation too.
	trunkOK := func(links []topology.LinkID, rate, share float64) (bool, error) {
		for _, id := range links {
			l, err := g.LinkByID(id)
			if err != nil {
				return false, err
			}
			if !linkWithinCalibratedShare(l.CapacityMbps, res.mbps[id], rate, share) {
				return false, nil
			}
		}
		return true, nil
	}

	for i, req := range trace {
		for len(departures) > 0 && !departures[0].at.After(req.At) {
			d := heap.Pop(&departures).(departure)
			res.release(d.links, d.mbps)
		}
		class := classes[i]
		cell := byClass[class]
		cell.Offered++

		pol := policies[class]
		share := pol.MaxShare
		ladder := append([]float64{1}, pol.DegradeSteps...)
		if !classAware {
			share = 1
			ladder = []float64{1}
		}

		candidates := placement[req.Title]
		if len(candidates) == 0 {
			cell.Rejected++
			continue
		}
		snap, err := res.snapshot()
		if err != nil {
			return nil, err
		}

		admitted := false
		for _, factor := range ladder {
			rate := bitrate * factor
			dec, err := core.SelectWithQoS(sel, snap, req.Client, candidates, rate)
			if err != nil {
				if errors.Is(err, core.ErrInsufficientBandwidth) ||
					errors.Is(err, core.ErrNoReachable) {
					continue
				}
				return nil, err
			}
			if dec.Local {
				cell.LocalServed++
				if factor == 1 {
					cell.Admitted++
				} else {
					cell.Degraded++
				}
				admitted = true
				break
			}
			links := dec.Path.Links()
			ok, err := trunkOK(links, rate, share)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			res.reserve(links, rate)
			heap.Push(&departures, departure{at: req.At.Add(hold), links: links, mbps: rate})
			if factor == 1 {
				cell.Admitted++
			} else {
				cell.Degraded++
			}
			admitted = true
			break
		}
		if !admitted {
			cell.Rejected++
		}
	}

	out := make([]AdmissionCell, 0, len(byClass))
	for _, c := range admission.Classes() {
		out = append(out, *byClass[c])
	}
	return out, nil
}

// FormatAdmissionStudy renders Ext-12.
func FormatAdmissionStudy(cells []AdmissionCell) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Arrivals/h\tPolicy\tMode\tClass\tOffered\tAdmitted\tDegraded\tRejected\tLocal\tBlockingProb")
	for _, c := range cells {
		fmt.Fprintf(w, "%g\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%.4f\n",
			c.ArrivalsPerHour, c.Policy, c.Mode, c.Class,
			c.Offered, c.Admitted, c.Degraded, c.Rejected, c.LocalServed, c.BlockingProb())
	}
	_ = w.Flush()
	return b.String()
}
