package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"dvod"
	"dvod/internal/admission"
	"dvod/internal/client"
)

// --- Ext-16: reservation ledger study ----------------------------------------

// Ext-16 contrasts per-server admission brokers against ledger-backed ones on
// a workload two home servers contend over: a line topology home-a — home-b —
// origin whose 3 Mbps trunk (home-b — origin) carries both homes' routes to
// the title's only replica. One 2 Mbps watch starts at each home, staggered so
// the first grant has gossiped before the second server decides. Per-server
// brokers each see only their own reservations and jointly commit 4 Mbps onto
// the 3 Mbps trunk; ledger-backed brokers share one reservation view, so the
// second server refuses instead of oversubscribing.

// Fixed cast of the ledger cell.
const (
	ledgerHomeA  = dvod.NodeID("home-a")
	ledgerHomeB  = dvod.NodeID("home-b")
	ledgerOrigin = dvod.NodeID("origin")
)

// LedgerStudyConfig parameterizes Ext-16.
type LedgerStudyConfig struct {
	// TrunkMbps is the contended trunk's capacity; BitrateMbps the title
	// rate. Two concurrent sessions must overflow the trunk:
	// 2×BitrateMbps > TrunkMbps ≥ BitrateMbps.
	TrunkMbps   float64
	BitrateMbps float64
	// TitleClusters and ClusterBytes set the title geometry; with Drag
	// (per-read disk latency at the origin) they stretch each watch so the
	// two sessions overlap on the trunk.
	TitleClusters int
	ClusterBytes  int64
	Drag          time.Duration
	// Stagger delays the second home's watch so the first grant has
	// gossiped cluster-wide before the second admission decision.
	Stagger time.Duration
	// GossipInterval is the ledger anti-entropy cadence (ledger arm only).
	GossipInterval time.Duration
	// Seed pins the injector's randomized choices.
	Seed int64
}

// DefaultLedgerStudyConfig: a 3 Mbps trunk contended by two 2 Mbps watches of
// a 96-cluster title dragged 4 ms per origin read (~400 ms per watch), the
// second starting 80 ms after the first with 10 ms gossip — eight rounds of
// margin for the first reservation to propagate.
func DefaultLedgerStudyConfig() LedgerStudyConfig {
	return LedgerStudyConfig{
		TrunkMbps:      3,
		BitrateMbps:    2,
		TitleClusters:  96,
		ClusterBytes:   4 << 10,
		Drag:           4 * time.Millisecond,
		Stagger:        80 * time.Millisecond,
		GossipInterval: 10 * time.Millisecond,
		Seed:           7,
	}
}

// LedgerRow is one admission mode's outcome on the contended workload.
type LedgerRow struct {
	Mode     string // "per-server" or "ledger"
	Watchers int
	// Granted / Rejected split the watchers by admission outcome; Failed
	// counts watches that died of anything other than an admission
	// rejection. RejectRate is Rejected per watcher.
	Granted    int
	Rejected   int
	Failed     int
	RejectRate float64
	// TrunkMbps echoes the contended capacity; PeakCommittedMbps is the
	// highest bandwidth ever simultaneously committed onto the trunk
	// across all brokers, and OversubscribedLinkSeconds the time integral
	// spent above capacity — the study's headline number, which the ledger
	// arm must hold at zero.
	TrunkMbps                 float64
	PeakCommittedMbps         float64
	OversubscribedLinkSeconds float64
	// GossipRounds sums ledger.gossip_rounds across nodes (0 per-server).
	GossipRounds int64
}

// LedgerStudy runs Ext-16: the identical contended workload under per-server
// and ledger-backed admission.
func LedgerStudy(cfg LedgerStudyConfig) ([]LedgerRow, error) {
	switch {
	case cfg.BitrateMbps <= 0 || cfg.TrunkMbps < cfg.BitrateMbps:
		return nil, fmt.Errorf("ledger study: trunk %g cannot carry one %g Mbps session",
			cfg.TrunkMbps, cfg.BitrateMbps)
	case 2*cfg.BitrateMbps <= cfg.TrunkMbps:
		return nil, fmt.Errorf("ledger study: trunk %g fits both sessions — nothing contended",
			cfg.TrunkMbps)
	case cfg.TitleClusters <= 0 || cfg.ClusterBytes <= 0:
		return nil, errors.New("ledger study: bad title geometry")
	case cfg.Drag <= 0 || cfg.Stagger <= 0 || cfg.GossipInterval <= 0:
		return nil, errors.New("ledger study: need positive drag, stagger, and gossip interval")
	}
	var out []LedgerRow
	for _, withLedger := range []bool{false, true} {
		row, err := ledgerCell(cfg, withLedger)
		if err != nil {
			return nil, fmt.Errorf("ledger study %s: %w", row.Mode, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// ledgerCell runs one admission mode's cell: build the deployment, start the
// staggered watch pair, and sample the trunk's committed bandwidth while they
// run.
func ledgerCell(cfg LedgerStudyConfig, withLedger bool) (LedgerRow, error) {
	row := LedgerRow{Mode: "per-server", Watchers: 2, TrunkMbps: cfg.TrunkMbps}
	if withLedger {
		row.Mode = "ledger"
	}
	titleBytes := cfg.ClusterBytes * int64(cfg.TitleClusters)
	trunk := dvod.MakeLinkID(ledgerHomeB, ledgerOrigin)
	var plan dvod.FaultPlan
	plan.SlowDisk(0, time.Minute, ledgerOrigin, cfg.Drag)
	spec := dvod.TopologySpec{
		Nodes: []dvod.NodeID{ledgerHomeA, ledgerHomeB, ledgerOrigin},
		Links: []dvod.LinkSpec{
			{A: ledgerHomeA, B: ledgerHomeB, CapacityMbps: 34},
			{A: ledgerHomeB, B: ledgerOrigin, CapacityMbps: cfg.TrunkMbps},
		},
	}
	opts := []dvod.Option{
		dvod.WithClusterBytes(cfg.ClusterBytes),
		dvod.WithDisks(2, titleBytes),
		// The homes' arrays hold one cluster: the title never becomes
		// resident, so every session crosses the trunk.
		dvod.WithNodeDisks(ledgerHomeA, 1, cfg.ClusterBytes),
		dvod.WithNodeDisks(ledgerHomeB, 1, cfg.ClusterBytes),
		dvod.WithAdmission(100),
		dvod.WithLedgerGossipInterval(cfg.GossipInterval),
		dvod.WithFaultPlan(plan, cfg.Seed),
	}
	if !withLedger {
		opts = append(opts, dvod.WithoutLedger())
	}
	svc, err := dvod.New(spec, opts...)
	if err != nil {
		return row, err
	}
	defer svc.Close()
	title := dvod.Title{Name: "contended", SizeBytes: titleBytes, BitrateMbps: cfg.BitrateMbps}
	if err := svc.AddTitle(title); err != nil {
		return row, err
	}
	if err := svc.Preload(ledgerOrigin, title.Name); err != nil {
		return row, err
	}
	if err := svc.Start(); err != nil {
		return row, err
	}

	// Sample the deployment-wide committed bandwidth on the trunk while the
	// watches run: the per-server arm's joint grants push it past capacity.
	sampleStop := make(chan struct{})
	var sampleDone sync.WaitGroup
	sampleDone.Add(1)
	go func() {
		defer sampleDone.Done()
		prev := time.Now()
		for {
			select {
			case <-sampleStop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			now := time.Now()
			committed := svc.CommittedLinkMbps()[trunk]
			if committed > row.PeakCommittedMbps {
				row.PeakCommittedMbps = committed
			}
			if committed > cfg.TrunkMbps+1e-9 {
				row.OversubscribedLinkSeconds += now.Sub(prev).Seconds()
			}
			prev = now
		}
	}()

	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, home := range []dvod.NodeID{ledgerHomeA, ledgerHomeB} {
		// Premium class: its link share is never calibrated down, so each
		// session reserves the full bitrate and two of them genuinely
		// overflow the trunk — the contention under study. Standard-class
		// sessions would degrade themselves under the trunk's calibrated
		// share and hide the effect.
		p, err := svc.Player(home, client.WithClass(admission.Premium))
		if err != nil {
			close(sampleStop)
			sampleDone.Wait()
			return row, err
		}
		wg.Add(1)
		go func(i int, p *dvod.Player, delay time.Duration) {
			defer wg.Done()
			time.Sleep(delay)
			_, errs[i] = p.Watch(title.Name)
		}(i, p, time.Duration(i)*cfg.Stagger)
	}
	wg.Wait()
	close(sampleStop)
	sampleDone.Wait()

	for _, err := range errs {
		switch {
		case err == nil:
			row.Granted++
		case errors.Is(err, admission.ErrRejected):
			row.Rejected++
		default:
			row.Failed++
		}
	}
	row.RejectRate = float64(row.Rejected) / float64(row.Watchers)
	for node, snap := range svc.Metrics() {
		if node == "_faults" {
			continue
		}
		row.GossipRounds += snap.Counters["ledger.gossip_rounds"]
	}
	return row, nil
}

// LedgerRegression gates Ext-16 against its committed baseline and returns
// one message per violation; an empty slice passes. The checks are
// structural, not wall-clock, so the gate is stable on loaded CI machines:
//
//   - ledger arm, zero oversubscription: the ledger exists precisely so the
//     cluster never jointly commits past a link's capacity. Any positive
//     oversubscribed-link-seconds with the ledger on is a correctness bug,
//     not a slowdown, so the bound is absolute — no 20% allowance.
//   - ledger arm, at least one rejection: with the trunk full a refusal is
//     the only correct answer; zero rejections means the second server never
//     saw the first's reservation (gossip or merge broke, or the watches no
//     longer overlap and the cell lost its premise).
//   - per-server arm, every watcher granted: blind brokers must keep
//     admitting — that contrast is the study's claim. Fewer grants means the
//     workload itself changed and the baseline no longer measures anything.
func LedgerRegression(current, baseline []LedgerRow) []string {
	var bad []string
	byMode := func(rows []LedgerRow, mode string) (LedgerRow, bool) {
		for _, r := range rows {
			if r.Mode == mode {
				return r, true
			}
		}
		return LedgerRow{}, false
	}
	if r, ok := byMode(current, "ledger"); ok {
		if r.OversubscribedLinkSeconds > 0 {
			bad = append(bad, fmt.Sprintf(
				"ledger arm oversubscribed the trunk for %.3fs, want exactly 0",
				r.OversubscribedLinkSeconds))
		}
		if r.Rejected == 0 {
			bad = append(bad, "ledger arm rejected nothing — the shared reservation view never reached the second server")
		}
	} else {
		bad = append(bad, "ledger arm missing from current run")
	}
	if r, ok := byMode(current, "per-server"); ok {
		if r.Granted != r.Watchers {
			bad = append(bad, fmt.Sprintf(
				"per-server arm granted %d of %d watchers — the contended workload lost its premise",
				r.Granted, r.Watchers))
		}
	} else {
		bad = append(bad, "per-server arm missing from current run")
	}
	if len(baseline) == 0 {
		bad = append(bad, "ledger baseline holds no rows to compare")
	}
	return bad
}

// FormatLedgerStudy renders Ext-16 as an aligned table.
func FormatLedgerStudy(rows []LedgerRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Mode\tWatchers\tGranted\tRejected\tFailed\tRejectRate\tTrunkMbps\tPeakMbps\tOversubSec\tGossipRounds")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\t%.1f\t%.1f\t%.3f\t%d\n",
			r.Mode, r.Watchers, r.Granted, r.Rejected, r.Failed, r.RejectRate,
			r.TrunkMbps, r.PeakCommittedMbps, r.OversubscribedLinkSeconds, r.GossipRounds)
	}
	_ = w.Flush()
	return b.String()
}
