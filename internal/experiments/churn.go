package experiments

import (
	"errors"
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"dvod"
	"dvod/internal/clock"
)

// --- Ext-17: cluster churn study ---------------------------------------------

// Ext-17 measures the service through a full elastic-membership lifecycle on
// one deployment: a steady three-server fleet, a mid-run join (the DMA
// re-replicates the hottest title onto the joiner), a graceful drain (the
// front door bounces every new watch off the draining server), and a hard
// kill (survivors detect the death by round-counted gossip and keep serving).
// Each phase issues the same number of watches and reports the admit rate and
// the mean number of redirect hops a session followed — the churn headline:
// admit rate 1.0 and zero failed watches through every phase.

// Fixed cast of the churn cell.
const (
	churnAlpha = dvod.NodeID("alpha")
	churnBeta  = dvod.NodeID("beta")
	churnGamma = dvod.NodeID("gamma")
	churnDelta = dvod.NodeID("delta")
)

// ChurnStudyConfig parameterizes Ext-17.
type ChurnStudyConfig struct {
	// WatchesPerPhase is how many watches each phase issues (round-robin over
	// the phase's live homes).
	WatchesPerPhase int
	// TitleClusters and ClusterBytes set the title geometry; BitrateMbps the
	// per-session reservation.
	TitleClusters int
	ClusterBytes  int64
	BitrateMbps   float64
	// MembershipInterval is the membership gossip cadence handed to the
	// deployment; the study drives rounds synchronously, so it only has to be
	// positive.
	MembershipInterval time.Duration
	// Seed pins the run (reserved for fault-plan variants; the base cell is
	// deterministic without it).
	Seed int64
}

// DefaultChurnStudyConfig: four watches per phase of a 24-cluster title at
// 4 KiB per cluster and 1.5 Mbps.
func DefaultChurnStudyConfig() ChurnStudyConfig {
	return ChurnStudyConfig{
		WatchesPerPhase:    4,
		TitleClusters:      24,
		ClusterBytes:       4 << 10,
		BitrateMbps:        1.5,
		MembershipInterval: 250 * time.Millisecond,
		Seed:               7,
	}
}

// ChurnRow is one churn phase's outcome.
type ChurnRow struct {
	// Phase is steady, join, drain, or kill.
	Phase string
	// AliveMembers / FailedMembers count the reference node's post-phase
	// membership view.
	AliveMembers  int
	FailedMembers int
	// Watches issued this phase; Granted completed, Failed did not.
	Watches int
	Granted int
	Failed  int
	// AdmitRate is Granted per watch — the churn headline, 1.0 in every
	// phase of a healthy fleet.
	AdmitRate float64
	// Redirects sums the watch.redirect bounces sessions followed this
	// phase; MeanRedirectHops is Redirects per watch.
	Redirects        int
	MeanRedirectHops float64
}

// ChurnStudy runs Ext-17: one deployment through steady / join / drain / kill.
func ChurnStudy(cfg ChurnStudyConfig) ([]ChurnRow, error) {
	switch {
	case cfg.WatchesPerPhase <= 0:
		return nil, errors.New("churn study: need at least one watch per phase")
	case cfg.TitleClusters <= 0 || cfg.ClusterBytes <= 0 || cfg.BitrateMbps <= 0:
		return nil, errors.New("churn study: bad title geometry")
	case cfg.MembershipInterval <= 0:
		return nil, errors.New("churn study: need a positive membership interval")
	}
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	titleBytes := cfg.ClusterBytes * int64(cfg.TitleClusters)
	spec := dvod.TopologySpec{
		Nodes: []dvod.NodeID{churnAlpha, churnBeta, churnGamma},
		Links: []dvod.LinkSpec{
			{A: churnAlpha, B: churnBeta, CapacityMbps: 34},
			{A: churnBeta, B: churnGamma, CapacityMbps: 34},
			{A: churnAlpha, B: churnGamma, CapacityMbps: 34},
		},
	}
	svc, err := dvod.New(spec,
		dvod.WithClusterBytes(cfg.ClusterBytes),
		dvod.WithDisks(2, 4*titleBytes),
		dvod.WithAdmission(100),
		dvod.WithClock(clk),
		dvod.WithMembership(cfg.MembershipInterval),
		dvod.WithFrontDoor(),
	)
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	title := dvod.Title{Name: "churned", SizeBytes: titleBytes, BitrateMbps: cfg.BitrateMbps}
	if err := svc.AddTitle(title); err != nil {
		return nil, err
	}
	if err := svc.Start(); err != nil {
		return nil, err
	}
	if err := svc.Preload(churnAlpha, title.Name); err != nil {
		return nil, err
	}
	rounds := func(n int) {
		for range n {
			svc.MembershipRound()
		}
	}
	rounds(3)

	// runPhase issues the configured number of watches round-robin over the
	// phase's homes and folds the outcomes into a row.
	runPhase := func(phase string, homes []dvod.NodeID) (ChurnRow, error) {
		row := ChurnRow{Phase: phase, Watches: cfg.WatchesPerPhase}
		for i := range cfg.WatchesPerPhase {
			home := homes[i%len(homes)]
			p, err := svc.Player(home)
			if err != nil {
				return row, err
			}
			stats, err := p.Watch(title.Name)
			if err != nil {
				row.Failed++
				continue
			}
			row.Granted++
			row.Redirects += stats.Redirects
		}
		row.AdmitRate = float64(row.Granted) / float64(row.Watches)
		row.MeanRedirectHops = float64(row.Redirects) / float64(row.Watches)
		for _, st := range svc.MemberStates(churnAlpha) {
			switch st {
			case dvod.MemberAlive:
				row.AliveMembers++
			case dvod.MemberFailed:
				row.FailedMembers++
			}
		}
		return row, nil
	}

	var out []ChurnRow
	// Phase 1 — steady: non-holders watch through the front door.
	row, err := runPhase("steady", []dvod.NodeID{churnBeta, churnGamma})
	if err != nil {
		return nil, fmt.Errorf("churn study steady: %w", err)
	}
	out = append(out, row)

	// Phase 2 — join: delta enters the running fleet, receives the hot title,
	// and serves it locally while the others still bounce to a holder.
	if err := svc.AddServer(churnDelta, []dvod.LinkSpec{
		{A: churnDelta, B: churnAlpha, CapacityMbps: 34},
	}); err != nil {
		return nil, fmt.Errorf("churn study join: %w", err)
	}
	rounds(3)
	row, err = runPhase("join", []dvod.NodeID{churnDelta, churnGamma})
	if err != nil {
		return nil, fmt.Errorf("churn study join: %w", err)
	}
	out = append(out, row)

	// Phase 3 — drain: beta redirects every new watch while it drains; the
	// phase's watches all land on it, so every session bounces and none fail.
	if err := svc.BeginDrain(churnBeta); err != nil {
		return nil, fmt.Errorf("churn study drain: %w", err)
	}
	row, err = runPhase("drain", []dvod.NodeID{churnBeta})
	if err != nil {
		return nil, fmt.Errorf("churn study drain: %w", err)
	}
	if err := svc.FinishDrain(churnBeta); err != nil {
		return nil, fmt.Errorf("churn study drain: %w", err)
	}
	rounds(3)
	out = append(out, row)

	// Phase 4 — kill: gamma dies unannounced; survivors fail it by
	// round-counted detection and keep serving.
	if err := svc.StopServer(churnGamma); err != nil {
		return nil, fmt.Errorf("churn study kill: %w", err)
	}
	rounds(10)
	row, err = runPhase("kill", []dvod.NodeID{churnAlpha, churnDelta})
	if err != nil {
		return nil, fmt.Errorf("churn study kill: %w", err)
	}
	out = append(out, row)
	return out, nil
}

// ChurnRegression gates Ext-17 against its committed baseline and returns one
// message per violation; an empty slice passes. The checks are structural —
// phase presence, zero failed watches, full admit rate, the front door
// actually bouncing, membership detection actually firing — so the gate is
// stable on loaded CI machines.
func ChurnRegression(current, baseline []ChurnRow) []string {
	var bad []string
	byPhase := func(rows []ChurnRow, phase string) (ChurnRow, bool) {
		for _, r := range rows {
			if r.Phase == phase {
				return r, true
			}
		}
		return ChurnRow{}, false
	}
	for _, phase := range []string{"steady", "join", "drain", "kill"} {
		r, ok := byPhase(current, phase)
		if !ok {
			bad = append(bad, fmt.Sprintf("phase %q missing from current run", phase))
			continue
		}
		if r.Failed != 0 {
			bad = append(bad, fmt.Sprintf("%s phase failed %d watches, want 0", phase, r.Failed))
		}
		if r.AdmitRate < 1 {
			bad = append(bad, fmt.Sprintf("%s phase admit rate %.2f, want 1.00", phase, r.AdmitRate))
		}
	}
	if r, ok := byPhase(current, "steady"); ok && r.Redirects == 0 {
		bad = append(bad, "steady phase followed no redirects — the front door never bounced a non-holder watch")
	}
	if r, ok := byPhase(current, "drain"); ok && r.Redirects == 0 {
		bad = append(bad, "drain phase followed no redirects — the draining node served new watches itself")
	}
	if r, ok := byPhase(current, "kill"); ok && r.FailedMembers == 0 {
		bad = append(bad, "kill phase detected no failed member — round-counted failure detection never fired")
	}
	if len(baseline) == 0 {
		bad = append(bad, "churn baseline holds no rows to compare")
	}
	return bad
}

// FormatChurnStudy renders Ext-17 as an aligned table.
func FormatChurnStudy(rows []ChurnRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Phase\tAlive\tFailedMembers\tWatches\tGranted\tFailed\tAdmitRate\tRedirects\tMeanHops")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.2f\t%d\t%.2f\n",
			r.Phase, r.AliveMembers, r.FailedMembers, r.Watches, r.Granted, r.Failed,
			r.AdmitRate, r.Redirects, r.MeanRedirectHops)
	}
	_ = w.Flush()
	return b.String()
}
