package experiments

import (
	"strings"
	"testing"

	"dvod/internal/transport"
)

// TestMembershipWireSizeMatchesCodec pins the study's size arithmetic to the
// real binary codec, so byte rows stay honest if the wire layout changes.
func TestMembershipWireSizeMatchesCodec(t *testing.T) {
	payloads := []transport.MemberSyncPayload{
		{From: "U1", Epoch: 1, Seq: 9, Ack: 3, Known: 4},
		{From: "frontdoor-7", Epoch: 2, Seq: 100, Known: 3, Full: true,
			Members: []transport.MemberEntry{
				{Node: "U1", Incarnation: 3, Heartbeat: 41, State: "alive"},
				{Node: "U100", Incarnation: 1, Heartbeat: 2, State: "suspect"},
				{Node: "U2", Incarnation: 7, Heartbeat: 0, State: "failed"},
			}},
	}
	for _, p := range payloads {
		enc, err := transport.AppendMemberSyncPayload(nil, p)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		want := int64(len(enc) + transport.FrameHeaderLen)
		if got := memberSyncWireSize(p); got != want {
			t.Fatalf("wire size %d, codec says %d (payload %+v)", got, want, p)
		}
	}
}

// TestMembershipStudySmall runs a trimmed Ext-19 grid and checks every
// structural invariant the CI gate relies on.
func TestMembershipStudySmall(t *testing.T) {
	cfg := DefaultMembershipStudyConfig()
	cfg.Sizes = []int{64}
	rows, err := MembershipStudy(cfg)
	if err != nil {
		t.Fatalf("membership study: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	t.Logf("\n%s", FormatMembershipStudy(rows))
	var full, delta MembershipRow
	for _, r := range rows {
		switch r.Mode {
		case "full":
			full = r
		case "delta":
			delta = r
		}
	}
	if !full.Converged || !delta.Converged {
		t.Fatalf("convergence: full=%v delta=%v", full.Converged, delta.Converged)
	}
	if !full.Detected || !delta.Detected {
		t.Fatalf("detection: full=%v delta=%v", full.Detected, delta.Detected)
	}
	if delta.SteadyBytesPerRound*5 > full.SteadyBytesPerRound {
		t.Fatalf("delta bytes/round %d not 5x under full %d",
			delta.SteadyBytesPerRound, full.SteadyBytesPerRound)
	}
	if full.FalseFailed != 0 || delta.FalseFailed != 0 {
		t.Fatalf("false Failed verdicts: full=%d delta=%d", full.FalseFailed, delta.FalseFailed)
	}
	if problems := MembershipRegression(rows, rows); len(problems) != 0 {
		t.Fatalf("self-baseline regression: %v", problems)
	}
}

// TestMembershipStudyDeterministic pins that equal config and seed reproduce
// every row exactly — the property the committed baseline depends on.
func TestMembershipStudyDeterministic(t *testing.T) {
	cfg := DefaultMembershipStudyConfig()
	cfg.Sizes = []int{48}
	cfg.Modes = []string{"delta"}
	a, err := MembershipStudy(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := MembershipStudy(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestMembershipRegressionFlagsBrokenRows checks the gate actually bites.
func TestMembershipRegressionFlagsBrokenRows(t *testing.T) {
	good := []MembershipRow{
		{Nodes: 64, Mode: "full", Converged: true, Detected: true, ConvergeRounds: 10, SteadyBytesPerRound: 10000},
		{Nodes: 64, Mode: "delta", Converged: true, Detected: true, ConvergeRounds: 12, SteadyBytesPerRound: 1000},
	}
	if problems := MembershipRegression(good, good); len(problems) != 0 {
		t.Fatalf("clean rows flagged: %v", problems)
	}
	bad := []MembershipRow{
		{Nodes: 64, Mode: "full", Converged: true, Detected: true, ConvergeRounds: 10, SteadyBytesPerRound: 10000},
		{Nodes: 64, Mode: "delta", Converged: true, Detected: false, ConvergeRounds: 30,
			SteadyBytesPerRound: 9000, FalseFailed: 1},
	}
	problems := MembershipRegression(bad, good)
	wantHits := []string{"never detected", "false Failed", "not 5x", "over 2x", "regressed past 1.5x"}
	for _, want := range wantHits {
		found := false
		for _, p := range problems {
			if strings.Contains(strings.ToLower(p), strings.ToLower(want)) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("gate missed %q in %v", want, problems)
		}
	}
	if problems := MembershipRegression(good, nil); len(problems) == 0 {
		t.Fatal("empty baseline not flagged")
	}
}

// TestMembershipStudy512Smoke is the CI race-matrix cell: the 512-node delta
// arm of Ext-19 under the full loss/slow-node fault plan. The full-sync arm
// and the 1000-node cells are exercised without the race detector by the
// vodbench sweep and the baseline gate — under race they would take minutes
// for no extra interleaving coverage, since the simulation is single-threaded.
func TestMembershipStudy512Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("512-node fleet")
	}
	cfg := DefaultMembershipStudyConfig()
	cfg.Sizes = []int{512}
	cfg.Modes = []string{"delta"}
	rows, err := MembershipStudy(cfg)
	if err != nil {
		t.Fatalf("membership study: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	t.Logf("\n%s", FormatMembershipStudy(rows))
	if !r.Converged || !r.Detected {
		t.Fatalf("converged=%v detected=%v", r.Converged, r.Detected)
	}
	if r.FalseFailed != 0 {
		t.Fatalf("%d false Failed verdicts under the loss plan", r.FalseFailed)
	}
	if r.IndirectProbes == 0 {
		t.Fatal("no indirect probes fired under the loss plan")
	}
}
