package experiments

import (
	"testing"
	"time"

	"dvod/internal/core"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/topology"
	"dvod/internal/workload"
)

func replayTitle() media.Title {
	return media.Title{Name: "movie", SizeBytes: 512 << 10, BitrateMbps: 1.5}
}

func TestReplayValidation(t *testing.T) {
	title := replayTitle()
	good := ReplayConfig{
		Selector:     core.VRA{},
		Titles:       []media.Title{title},
		Placement:    map[string][]topology.NodeID{title.Name: {grnet.Xanthi}},
		Requests:     []workload.Request{{At: epoch, Client: grnet.Patra, Title: title.Name}},
		ClusterBytes: 64 << 10,
	}
	if _, err := Replay(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	noSel := good
	noSel.Selector = nil
	if _, err := Replay(noSel); err == nil {
		t.Fatal("nil selector accepted")
	}
	noReq := good
	noReq.Requests = nil
	if _, err := Replay(noReq); err == nil {
		t.Fatal("empty trace accepted")
	}
	badCluster := good
	badCluster.ClusterBytes = 0
	if _, err := Replay(badCluster); err == nil {
		t.Fatal("zero cluster accepted")
	}
}

func TestReplayLocalDelivery(t *testing.T) {
	title := replayTitle()
	res, err := Replay(ReplayConfig{
		Selector:     core.VRA{},
		Titles:       []media.Title{title},
		Placement:    map[string][]topology.NodeID{title.Name: {grnet.Patra}},
		Requests:     []workload.Request{{At: epoch, Client: grnet.Patra, Title: title.Name}},
		ClusterBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 1 || res.Failed != 0 {
		t.Fatalf("sessions = %d failed = %d", len(res.Sessions), res.Failed)
	}
	s := res.Sessions[0]
	if !s.Local {
		t.Fatal("home-held title delivered remotely")
	}
	if s.PathCost != 0 || s.StallTime != 0 || s.Elapsed != 0 {
		t.Fatalf("local delivery has nonzero costs: %+v", s)
	}
	if s.NumClusters != 8 {
		t.Fatalf("clusters = %d, want 8", s.NumClusters)
	}
}

func TestReplayRemoteDelivery(t *testing.T) {
	title := replayTitle() // 512 KiB = 4.19 Mbit
	res, err := Replay(ReplayConfig{
		Selector:     core.VRA{},
		Titles:       []media.Title{title},
		Placement:    map[string][]topology.NodeID{title.Name: {grnet.Thessaloniki, grnet.Xanthi}},
		Requests:     []workload.Request{{At: epoch, Client: grnet.Patra, Title: title.Name}},
		ClusterBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 1 {
		t.Fatalf("sessions = %d (failed %d)", len(res.Sessions), res.Failed)
	}
	s := res.Sessions[0]
	if s.Local {
		t.Fatal("remote delivery marked local")
	}
	if s.PathCost <= 0 {
		t.Fatalf("path cost = %g", s.PathCost)
	}
	// 4.19 Mbit at ≤1.7 Mbps (Thess-Ioannina residual at 8am) needs >2s.
	if s.Elapsed < 2*time.Second || s.Elapsed > time.Minute {
		t.Fatalf("elapsed = %v", s.Elapsed)
	}
	if s.Switches != 0 {
		t.Fatalf("switches = %d under stable conditions", s.Switches)
	}
}

func TestReplayFailedRequests(t *testing.T) {
	title := replayTitle()
	res, err := Replay(ReplayConfig{
		Selector:  core.VRA{},
		Titles:    []media.Title{title},
		Placement: map[string][]topology.NodeID{}, // nobody holds it
		Requests: []workload.Request{
			{At: epoch, Client: grnet.Patra, Title: title.Name},
			{At: epoch.Add(time.Second), Client: grnet.Athens, Title: "unknown-title"},
		},
		ClusterBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 2 || len(res.Sessions) != 0 {
		t.Fatalf("failed = %d sessions = %d", res.Failed, len(res.Sessions))
	}
}

func TestReplayEventTriggersSwitch(t *testing.T) {
	// Large title, small clusters; congest the initially chosen route
	// mid-delivery and expect at least one server switch.
	title := media.Title{Name: "movie", SizeBytes: 2 << 20, BitrateMbps: 1.5}
	res, err := ReplayWithEvents(ReplayConfig{
		Selector:           core.VRA{},
		Titles:             []media.Title{title},
		Placement:          map[string][]topology.NodeID{title.Name: {grnet.Thessaloniki, grnet.Xanthi}},
		Requests:           []workload.Request{{At: epoch, Client: grnet.Patra, Title: title.Name}},
		ClusterBytes:       64 << 10,
		PollInterval:       5 * time.Second,
		BackgroundInterval: 12 * time.Hour,
	}, []ReplayEvent{{
		At: epoch.Add(2 * time.Second),
		Background: map[topology.LinkID]float64{
			topology.MakeLinkID(grnet.Patra, grnet.Ioannina):        1.99,
			topology.MakeLinkID(grnet.Thessaloniki, grnet.Ioannina): 1.99,
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 1 {
		t.Fatalf("sessions = %d (failed %d)", len(res.Sessions), res.Failed)
	}
	s := res.Sessions[0]
	if s.Switches == 0 {
		t.Fatal("congestion event did not trigger a mid-stream switch")
	}
	// After switching, the delivery moved to Xanthi's route; the session
	// still completes.
	if s.NumClusters != 32 {
		t.Fatalf("clusters = %d", s.NumClusters)
	}
}

func TestReplayConcurrentSessionsShareBandwidth(t *testing.T) {
	// Two Patra clients pull the same remote title simultaneously: both
	// complete, and the shared bottleneck makes each slower than a solo
	// run.
	title := replayTitle()
	solo, err := Replay(ReplayConfig{
		Selector:     core.VRA{},
		Titles:       []media.Title{title},
		Placement:    map[string][]topology.NodeID{title.Name: {grnet.Xanthi}},
		Requests:     []workload.Request{{At: epoch, Client: grnet.Patra, Title: title.Name}},
		ClusterBytes: 128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Replay(ReplayConfig{
		Selector:  core.VRA{},
		Titles:    []media.Title{title},
		Placement: map[string][]topology.NodeID{title.Name: {grnet.Xanthi}},
		Requests: []workload.Request{
			{At: epoch, Client: grnet.Patra, Title: title.Name},
			{At: epoch, Client: grnet.Patra, Title: title.Name},
		},
		ClusterBytes: 128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(both.Sessions) != 2 {
		t.Fatalf("sessions = %d", len(both.Sessions))
	}
	soloTime := solo.Sessions[0].Elapsed
	sharedMax := both.Sessions[0].Elapsed
	if both.Sessions[1].Elapsed > sharedMax {
		sharedMax = both.Sessions[1].Elapsed
	}
	if sharedMax <= soloTime {
		t.Fatalf("sharing did not slow delivery: solo %v, shared %v", soloTime, sharedMax)
	}
}

func TestReplayResultAggregates(t *testing.T) {
	var r ReplayResult
	if r.MeanPathCost() != 0 || r.StallRatio() != 0 || r.MeanStartup() != 0 || r.TotalSwitches() != 0 {
		t.Fatal("empty aggregates should be zero")
	}
	r.Sessions = []SessionResult{
		{NumClusters: 2, PathCost: 1.0, StallTime: time.Second, Elapsed: 10 * time.Second,
			StartupDelay: time.Second, Switches: 1},
		{NumClusters: 2, PathCost: 3.0, Elapsed: 10 * time.Second, StartupDelay: 3 * time.Second},
	}
	if got := r.MeanPathCost(); got != 1.0 {
		t.Fatalf("MeanPathCost = %g, want 1", got)
	}
	if got := r.StallRatio(); got != 0.05 {
		t.Fatalf("StallRatio = %g, want 0.05", got)
	}
	if got := r.MeanStartup(); got != 2*time.Second {
		t.Fatalf("MeanStartup = %v", got)
	}
	if got := r.TotalSwitches(); got != 1 {
		t.Fatalf("TotalSwitches = %d", got)
	}
}

func TestReplayWithLatency(t *testing.T) {
	// A 2-hop remote delivery with 40ms per link: startup delay includes
	// the 80ms propagation, and the session still completes verified.
	title := replayTitle()
	lat := map[topology.LinkID]time.Duration{
		topology.MakeLinkID(grnet.Patra, grnet.Ioannina):        40 * time.Millisecond,
		topology.MakeLinkID(grnet.Ioannina, grnet.Thessaloniki): 40 * time.Millisecond,
	}
	res, err := Replay(ReplayConfig{
		Selector:     core.VRA{},
		Titles:       []media.Title{title},
		Placement:    map[string][]topology.NodeID{title.Name: {grnet.Thessaloniki}},
		Requests:     []workload.Request{{At: epoch, Client: grnet.Patra, Title: title.Name}},
		ClusterBytes: 64 << 10,
		Latency:      lat,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 1 {
		t.Fatalf("sessions = %d", len(res.Sessions))
	}
	s := res.Sessions[0]
	if s.StartupDelay < 80*time.Millisecond {
		t.Fatalf("startup %v does not include the 80ms propagation", s.StartupDelay)
	}
	// Zero-latency run is strictly faster to first byte.
	res0, err := Replay(ReplayConfig{
		Selector:     core.VRA{},
		Titles:       []media.Title{title},
		Placement:    map[string][]topology.NodeID{title.Name: {grnet.Thessaloniki}},
		Requests:     []workload.Request{{At: epoch, Client: grnet.Patra, Title: title.Name}},
		ClusterBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res0.Sessions[0].StartupDelay >= s.StartupDelay {
		t.Fatalf("latency did not slow startup: %v vs %v",
			res0.Sessions[0].StartupDelay, s.StartupDelay)
	}
}
