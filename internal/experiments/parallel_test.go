package experiments

import (
	"strings"
	"testing"

	"dvod/internal/grnet"
	"dvod/internal/topology"
)

func TestParallelFetchShape(t *testing.T) {
	cfg := DefaultParallelFetchConfig()
	cfg.TitleBytes = 2 << 20
	rows, err := ParallelFetch(cfg)
	if err != nil {
		t.Fatalf("ParallelFetch: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	seq, par := rows[0], rows[1]
	if seq.Strategy != "sequential-vra" || par.Strategy != "parallel-replicas" {
		t.Fatalf("strategies = %s/%s", seq.Strategy, par.Strategy)
	}
	if seq.Elapsed <= 0 || par.Elapsed <= 0 {
		t.Fatalf("elapsed = %v/%v", seq.Elapsed, par.Elapsed)
	}
	// The headline shape (future-work motivation): pulling from several
	// replicas at once beats one-at-a-time delivery.
	if par.Elapsed >= seq.Elapsed {
		t.Fatalf("parallel (%v) not faster than sequential (%v)", par.Elapsed, seq.Elapsed)
	}
	if par.Speedup <= 1.1 {
		t.Fatalf("speedup = %.2f, want meaningfully above 1", par.Speedup)
	}
	out := FormatParallelFetch(rows)
	if !strings.Contains(out, "parallel-replicas") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestParallelFetchSingleReplicaNoGain(t *testing.T) {
	// With one replica the strategies coincide: same path, one flow at a
	// time. Speedup ≈ 1.
	cfg := DefaultParallelFetchConfig()
	cfg.TitleBytes = 1 << 20
	cfg.Replicas = []topology.NodeID{grnet.Xanthi}
	rows, err := ParallelFetch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par := rows[1]
	if par.Speedup < 0.95 || par.Speedup > 1.05 {
		t.Fatalf("single-replica speedup = %.3f, want ≈1", par.Speedup)
	}
}

func TestParallelFetchValidation(t *testing.T) {
	if _, err := ParallelFetch(ParallelFetchConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := DefaultParallelFetchConfig()
	cfg.Replicas = nil
	if _, err := ParallelFetch(cfg); err == nil {
		t.Fatal("no replicas accepted")
	}
}
