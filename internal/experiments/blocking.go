package experiments

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"dvod/internal/baseline"
	"dvod/internal/core"
	"dvod/internal/grnet"
	"dvod/internal/topology"
	"dvod/internal/workload"
)

// --- Ext-9: admission control and blocking probability -----------------------

// BlockingStudyConfig parameterizes the Erlang-style admission study: each
// admitted session reserves its bitrate along its route for the title's
// playback duration; a request whose every replica route lacks residual
// bandwidth is blocked. This realizes the paper's minimum-QoS goal and
// measures how much the VRA's load spreading lowers blocking versus
// load-blind policies.
type BlockingStudyConfig struct {
	// Policies to compare; empty means all of baseline.Names().
	Policies []string
	// ArrivalsPerHour are the offered-load points to sweep.
	ArrivalsPerHour []float64
	// BitrateMbps and HoldMinutes define one session's reservation.
	BitrateMbps float64
	HoldMinutes float64
	// Replicas per title (random placement over the backbone).
	NumTitles int
	Replicas  int
	// Duration of each simulated run.
	Duration time.Duration
	Seed     int64
}

// DefaultBlockingStudyConfig sweeps three load points of 1.5 Mbps /
// 20-minute sessions over the 2-18 Mbps GRNET backbone.
func DefaultBlockingStudyConfig() BlockingStudyConfig {
	return BlockingStudyConfig{
		ArrivalsPerHour: []float64{6, 18, 45},
		BitrateMbps:     1.5,
		HoldMinutes:     20,
		NumTitles:       12,
		Replicas:        2,
		Duration:        6 * time.Hour,
		Seed:            1,
	}
}

// BlockingCell is one (policy, load) outcome.
type BlockingCell struct {
	Policy          string
	ArrivalsPerHour float64
	Offered         int
	Blocked         int
	// LocalServed counts requests satisfied by the home server (never
	// blocked).
	LocalServed int
}

// BlockingProb returns Blocked/Offered.
func (c BlockingCell) BlockingProb() float64 {
	if c.Offered == 0 {
		return 0
	}
	return float64(c.Blocked) / float64(c.Offered)
}

// reservations tracks per-link reserved bandwidth.
type reservations struct {
	graph *topology.Graph
	mbps  map[topology.LinkID]float64
}

func newReservations(g *topology.Graph) *reservations {
	return &reservations{graph: g, mbps: make(map[topology.LinkID]float64, g.NumLinks())}
}

// snapshot builds the network view the policies see: utilization =
// reserved / capacity.
func (r *reservations) snapshot() (*topology.Snapshot, error) {
	util := make(map[topology.LinkID]float64, len(r.mbps))
	for id, used := range r.mbps {
		l, err := r.graph.LinkByID(id)
		if err != nil {
			return nil, err
		}
		util[id] = used / l.CapacityMbps
	}
	return topology.NewSnapshot(r.graph, util)
}

func (r *reservations) reserve(links []topology.LinkID, mbps float64) {
	for _, id := range links {
		r.mbps[id] += mbps
	}
}

func (r *reservations) release(links []topology.LinkID, mbps float64) {
	for _, id := range links {
		r.mbps[id] -= mbps
		if r.mbps[id] < 1e-12 {
			r.mbps[id] = 0
		}
	}
}

// departure is a scheduled session end.
type departure struct {
	at    time.Time
	links []topology.LinkID
	mbps  float64
}

type departureHeap []departure

func (h departureHeap) Len() int           { return len(h) }
func (h departureHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h departureHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x any)        { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	*h = old[:n-1]
	return d
}

// BlockingStudy runs Ext-9.
func BlockingStudy(cfg BlockingStudyConfig) ([]BlockingCell, error) {
	if len(cfg.ArrivalsPerHour) == 0 {
		return nil, errors.New("blocking study: no load points")
	}
	if cfg.BitrateMbps <= 0 || cfg.HoldMinutes <= 0 {
		return nil, errors.New("blocking study: bad session shape")
	}
	if cfg.NumTitles <= 0 || cfg.Replicas <= 0 {
		return nil, errors.New("blocking study: need titles and replicas")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("blocking study: bad duration")
	}
	policies := cfg.Policies
	if len(policies) == 0 {
		policies = baseline.Names()
	}
	g, err := grnet.Backbone()
	if err != nil {
		return nil, err
	}
	nodes := g.Nodes()

	// Shared placement and title ranks.
	placeRng := rand.New(rand.NewSource(cfg.Seed))
	titles := make([]string, cfg.NumTitles)
	placement := make(map[string][]topology.NodeID, cfg.NumTitles)
	for i := range cfg.NumTitles {
		titles[i] = fmt.Sprintf("t%02d", i)
		perm := placeRng.Perm(len(nodes))
		k := cfg.Replicas
		if k > len(nodes) {
			k = len(nodes)
		}
		for j := range k {
			placement[titles[i]] = append(placement[titles[i]], nodes[perm[j]])
		}
	}
	hold := time.Duration(cfg.HoldMinutes * float64(time.Minute))

	var out []BlockingCell
	for _, load := range cfg.ArrivalsPerHour {
		// One shared trace per load point so policies face identical
		// demand.
		trace, err := workload.GenerateTrace(workload.TraceConfig{
			Titles:     titles,
			Clients:    nodes,
			Theta:      0.729,
			RatePerSec: load / 3600,
			Start:      epoch,
			Duration:   cfg.Duration,
			Seed:       cfg.Seed + int64(load*100),
		})
		if err != nil {
			return nil, err
		}
		for _, name := range policies {
			sel, err := baseline.ByName(name, cfg.Seed+7)
			if err != nil {
				return nil, err
			}
			cell, err := runBlockingTrial(g, sel, trace, placement, cfg.BitrateMbps, hold)
			if err != nil {
				return nil, fmt.Errorf("%s @%g/h: %w", name, load, err)
			}
			cell.ArrivalsPerHour = load
			out = append(out, cell)
		}
	}
	return out, nil
}

// runBlockingTrial processes one trace under one policy.
func runBlockingTrial(g *topology.Graph, sel core.Selector, trace []workload.Request,
	placement map[string][]topology.NodeID, bitrate float64, hold time.Duration) (BlockingCell, error) {
	res := newReservations(g)
	var departures departureHeap
	cell := BlockingCell{Policy: sel.Name()}
	for _, req := range trace {
		// Release every session that ended before this arrival.
		for len(departures) > 0 && !departures[0].at.After(req.At) {
			d := heap.Pop(&departures).(departure)
			res.release(d.links, d.mbps)
		}
		cell.Offered++
		candidates := placement[req.Title]
		if len(candidates) == 0 {
			cell.Blocked++
			continue
		}
		snap, err := res.snapshot()
		if err != nil {
			return cell, err
		}
		dec, err := core.SelectWithQoS(sel, snap, req.Client, candidates, bitrate)
		if err != nil {
			if errors.Is(err, core.ErrInsufficientBandwidth) ||
				errors.Is(err, core.ErrNoReachable) {
				cell.Blocked++
				continue
			}
			return cell, err
		}
		if dec.Local {
			cell.LocalServed++
			continue // no network reservation needed
		}
		links := dec.Path.Links()
		res.reserve(links, bitrate)
		heap.Push(&departures, departure{at: req.At.Add(hold), links: links, mbps: bitrate})
	}
	return cell, nil
}

// FormatBlockingStudy renders Ext-9.
func FormatBlockingStudy(cells []BlockingCell) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Arrivals/h\tPolicy\tOffered\tBlocked\tLocal\tBlockingProb")
	for _, c := range cells {
		fmt.Fprintf(w, "%g\t%s\t%d\t%d\t%d\t%.4f\n",
			c.ArrivalsPerHour, c.Policy, c.Offered, c.Blocked, c.LocalServed, c.BlockingProb())
	}
	_ = w.Flush()
	return b.String()
}
