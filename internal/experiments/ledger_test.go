package experiments

import (
	"strings"
	"testing"
)

// TestLedgerStudySmoke runs Ext-16 end to end and checks the study's claim
// structurally: the per-server arm grants both contending watches (and so can
// oversubscribe the trunk), while the ledger arm refuses the second and never
// commits past capacity.
func TestLedgerStudySmoke(t *testing.T) {
	rows, err := LedgerStudy(DefaultLedgerStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	perServer, ledger := rows[0], rows[1]
	if perServer.Mode != "per-server" || ledger.Mode != "ledger" {
		t.Fatalf("modes = %q/%q", perServer.Mode, ledger.Mode)
	}
	if perServer.Granted != perServer.Watchers {
		t.Fatalf("per-server granted %d of %d: blind brokers must admit everything",
			perServer.Granted, perServer.Watchers)
	}
	if perServer.GossipRounds != 0 {
		t.Fatalf("per-server arm gossiped %d rounds, want 0", perServer.GossipRounds)
	}
	if perServer.PeakCommittedMbps <= perServer.TrunkMbps {
		t.Fatalf("per-server arm peaked at %.1f Mbps on a %.1f Mbps trunk: blind brokers should have jointly oversubscribed it",
			perServer.PeakCommittedMbps, perServer.TrunkMbps)
	}
	if ledger.Rejected == 0 {
		t.Fatal("ledger arm rejected nothing: the shared view never reached the second server")
	}
	if ledger.Failed != 0 {
		t.Fatalf("ledger arm had %d non-rejection failures", ledger.Failed)
	}
	if ledger.OversubscribedLinkSeconds != 0 {
		t.Fatalf("ledger arm oversubscribed the trunk for %.3fs, want 0",
			ledger.OversubscribedLinkSeconds)
	}
	if ledger.PeakCommittedMbps > ledger.TrunkMbps {
		t.Fatalf("ledger arm peaked at %.1f Mbps on a %.1f Mbps trunk",
			ledger.PeakCommittedMbps, ledger.TrunkMbps)
	}
	if ledger.GossipRounds == 0 {
		t.Fatal("ledger arm recorded no gossip rounds")
	}
	out := FormatLedgerStudy(rows)
	if !strings.Contains(out, "per-server") || !strings.Contains(out, "ledger") {
		t.Fatalf("formatted study missing rows:\n%s", out)
	}
}

func TestLedgerStudyConfigValidation(t *testing.T) {
	mutations := []func(*LedgerStudyConfig){
		func(c *LedgerStudyConfig) { c.TrunkMbps = c.BitrateMbps - 1 },   // cannot carry one
		func(c *LedgerStudyConfig) { c.TrunkMbps = 2 * c.BitrateMbps },   // nothing contended
		func(c *LedgerStudyConfig) { c.TitleClusters = 0 },
		func(c *LedgerStudyConfig) { c.ClusterBytes = 0 },
		func(c *LedgerStudyConfig) { c.Drag = 0 },
		func(c *LedgerStudyConfig) { c.Stagger = 0 },
		func(c *LedgerStudyConfig) { c.GossipInterval = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultLedgerStudyConfig()
		mutate(&cfg)
		if _, err := LedgerStudy(cfg); err == nil {
			t.Errorf("mutation %d: bad config accepted", i)
		}
	}
}

// TestLedgerRegressionGate pins the gate's semantics: the ledger arm's
// oversubscription bound is absolute, its rejection count must stay positive,
// and the per-server arm must keep granting everything.
func TestLedgerRegressionGate(t *testing.T) {
	baseline := []LedgerRow{
		{Mode: "per-server", Watchers: 2, Granted: 2, OversubscribedLinkSeconds: 0.2},
		{Mode: "ledger", Watchers: 2, Granted: 1, Rejected: 1},
	}
	ok := []LedgerRow{
		// The per-server arm oversubscribes freely — it is the control.
		{Mode: "per-server", Watchers: 2, Granted: 2, OversubscribedLinkSeconds: 3},
		{Mode: "ledger", Watchers: 2, Granted: 1, Rejected: 1},
	}
	if bad := LedgerRegression(ok, baseline); len(bad) != 0 {
		t.Fatalf("clean run flagged: %v", bad)
	}
	cases := []struct {
		name string
		rows []LedgerRow
		want string
	}{
		{"ledger oversubscription", []LedgerRow{
			{Mode: "per-server", Watchers: 2, Granted: 2},
			{Mode: "ledger", Watchers: 2, Granted: 1, Rejected: 1, OversubscribedLinkSeconds: 0.001},
		}, "oversubscribed"},
		{"ledger never rejected", []LedgerRow{
			{Mode: "per-server", Watchers: 2, Granted: 2},
			{Mode: "ledger", Watchers: 2, Granted: 2},
		}, "rejected nothing"},
		{"per-server stopped granting", []LedgerRow{
			{Mode: "per-server", Watchers: 2, Granted: 1, Rejected: 1},
			{Mode: "ledger", Watchers: 2, Granted: 1, Rejected: 1},
		}, "premise"},
		{"missing arm", []LedgerRow{
			{Mode: "ledger", Watchers: 2, Granted: 1, Rejected: 1},
		}, "per-server arm missing"},
	}
	for _, tc := range cases {
		bad := LedgerRegression(tc.rows, baseline)
		found := false
		for _, msg := range bad {
			if strings.Contains(msg, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: gate output %v, want a %q message", tc.name, bad, tc.want)
		}
	}
	if bad := LedgerRegression(ok, nil); len(bad) == 0 {
		t.Error("empty baseline accepted")
	}
}
