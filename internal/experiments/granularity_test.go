package experiments

import (
	"strings"
	"testing"
)

func TestGranularityStudyShape(t *testing.T) {
	cfg := DefaultGranularityStudyConfig()
	cfg.Sessions = 800
	rows, err := GranularityStudy(cfg)
	if err != nil {
		t.Fatalf("GranularityStudy: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var titleRow, segRow GranularityRow
	for _, r := range rows {
		switch r.Policy {
		case "title-dma":
			titleRow = r
		case "segment-dma":
			segRow = r
		default:
			t.Fatalf("unknown policy %s", r.Policy)
		}
	}
	// Both policies saw the same byte demand.
	if titleRow.BytesRequested != segRow.BytesRequested {
		t.Fatalf("byte demand differs: %d vs %d",
			titleRow.BytesRequested, segRow.BytesRequested)
	}
	// The headline shape (the paper's future-work motivation): under
	// heavy partial viewing, segment-granularity caching delivers a
	// higher byte hit ratio than whole-title caching at equal capacity.
	if segRow.ByteHitRatio <= titleRow.ByteHitRatio {
		t.Fatalf("segment cache (%.4f) should beat title cache (%.4f) under partial viewing",
			segRow.ByteHitRatio, titleRow.ByteHitRatio)
	}
	if segRow.ByteHitRatio == 0 || titleRow.ByteHitRatio < 0 {
		t.Fatalf("degenerate ratios: %+v", rows)
	}
	out := FormatGranularityStudy(rows)
	if !strings.Contains(out, "segment-dma") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestGranularityStudyFullViewingNarrowsGap(t *testing.T) {
	// When every session watches the whole title, the prefix advantage
	// disappears; the gap between the two policies shrinks markedly.
	partial := DefaultGranularityStudyConfig()
	partial.Sessions = 800
	full := partial
	full.MinViewedFraction = 1.0
	pRows, err := GranularityStudy(partial)
	if err != nil {
		t.Fatal(err)
	}
	fRows, err := GranularityStudy(full)
	if err != nil {
		t.Fatal(err)
	}
	gap := func(rows []GranularityRow) float64 {
		var seg, title float64
		for _, r := range rows {
			if r.Policy == "segment-dma" {
				seg = r.ByteHitRatio
			} else {
				title = r.ByteHitRatio
			}
		}
		return seg - title
	}
	if gap(fRows) >= gap(pRows) {
		t.Fatalf("full-viewing gap %.4f should be below partial-viewing gap %.4f",
			gap(fRows), gap(pRows))
	}
}

func TestGranularityStudyValidation(t *testing.T) {
	if _, err := GranularityStudy(GranularityStudyConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := DefaultGranularityStudyConfig()
	bad.CacheFraction = 0
	if _, err := GranularityStudy(bad); err == nil {
		t.Fatal("zero cache accepted")
	}
	bad2 := DefaultGranularityStudyConfig()
	bad2.MinViewedFraction = 0
	if _, err := GranularityStudy(bad2); err == nil {
		t.Fatal("zero viewed fraction accepted")
	}
}

func TestScalabilityStudyShape(t *testing.T) {
	cfg := DefaultScalabilityStudyConfig()
	cfg.Sizes = []int{6, 25, 60}
	cfg.Decisions = 20
	rows, err := ScalabilityStudy(cfg)
	if err != nil {
		t.Fatalf("ScalabilityStudy: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Nodes != cfg.Sizes[i] {
			t.Fatalf("row %d nodes = %d", i, r.Nodes)
		}
		if r.Links < r.Nodes-1 {
			t.Fatalf("row %d links = %d", i, r.Links)
		}
		if r.MeanDecision <= 0 {
			t.Fatalf("row %d decision time = %v", i, r.MeanDecision)
		}
		if r.MeanHops < 1 {
			t.Fatalf("row %d hops = %g", i, r.MeanHops)
		}
	}
	// Decision time grows with network size (sanity: 60 nodes costs more
	// than 6; exact growth is platform noise).
	if rows[2].MeanDecision < rows[0].MeanDecision {
		t.Logf("warning: decision time did not grow (%v vs %v) — timer noise",
			rows[0].MeanDecision, rows[2].MeanDecision)
	}
	out := FormatScalabilityStudy(rows)
	if !strings.Contains(out, "MeanDecision") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestScalabilityStudyValidation(t *testing.T) {
	if _, err := ScalabilityStudy(ScalabilityStudyConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := DefaultScalabilityStudyConfig()
	bad.Replicas = 0
	if _, err := ScalabilityStudy(bad); err == nil {
		t.Fatal("zero replicas accepted")
	}
}
