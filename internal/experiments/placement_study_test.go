package experiments

import (
	"strings"
	"testing"
)

func TestPlacementStudyShape(t *testing.T) {
	rows, err := PlacementStudy(DefaultPlacementStudyConfig())
	if err != nil {
		t.Fatalf("PlacementStudy: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.K != i+1 || len(r.OptimalSites) != r.K {
			t.Fatalf("row %d = %+v", i, r)
		}
		// Optimal never loses to the random mean or the hub-only plan.
		if r.Optimal > r.RandomMean+1e-12 {
			t.Errorf("k=%d: optimal %.4f beats random mean %.4f?", r.K, r.Optimal, r.RandomMean)
		}
		if r.Optimal > r.HubOnly+1e-12 {
			t.Errorf("k=%d: optimal %.4f worse than hub-only %.4f", r.K, r.Optimal, r.HubOnly)
		}
		// More replicas never hurt.
		if i > 0 && r.Optimal > rows[i-1].Optimal+1e-12 {
			t.Errorf("k=%d optimal %.4f worse than k=%d's %.4f",
				r.K, r.Optimal, rows[i-1].K, rows[i-1].Optimal)
		}
	}
	// With three well-placed replicas the expected cost should be far
	// below the single-hub deployment.
	last := rows[len(rows)-1]
	if last.Optimal > last.HubOnly/2 {
		t.Errorf("k=3 optimal %.4f not well below hub-only %.4f", last.Optimal, last.HubOnly)
	}
	out := FormatPlacementStudy(rows)
	if !strings.Contains(out, "OptimalSites") || !strings.Contains(out, "+") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestPlacementStudyValidation(t *testing.T) {
	if _, err := PlacementStudy(PlacementStudyConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := DefaultPlacementStudyConfig()
	bad.Ks = []int{0}
	if _, err := PlacementStudy(bad); err == nil {
		t.Fatal("k=0 accepted")
	}
	bad2 := DefaultPlacementStudyConfig()
	bad2.RandomTrials = 0
	if _, err := PlacementStudy(bad2); err == nil {
		t.Fatal("zero trials accepted")
	}
}
