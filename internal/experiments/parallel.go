package experiments

import (
	"errors"
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"dvod/internal/core"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/netsim"
	"dvod/internal/routing"
	"dvod/internal/topology"
)

// --- Ext-8: single-server vs multi-server parallel fetch ---------------------

// ParallelFetchConfig parameterizes the delivery-strategy comparison: the
// paper's future work stripes a title's clusters over *different servers*,
// which lets a client pull from several replicas at once instead of from one
// VRA-chosen server at a time.
type ParallelFetchConfig struct {
	// TitleBytes and ClusterBytes shape the delivery.
	TitleBytes   int64
	ClusterBytes int64
	// Home is the client's node; Replicas the servers holding the title.
	Home     topology.NodeID
	Replicas []topology.NodeID
	// Sample selects the background-traffic snapshot.
	Sample grnet.SampleTime
}

// DefaultParallelFetchConfig: a Patra client, replicas at Thessaloniki,
// Xanthi and Heraklio, under the 8am network.
func DefaultParallelFetchConfig() ParallelFetchConfig {
	return ParallelFetchConfig{
		TitleBytes:   4 << 20,
		ClusterBytes: 256 << 10,
		Home:         grnet.Patra,
		Replicas:     []topology.NodeID{grnet.Thessaloniki, grnet.Xanthi, grnet.Heraklio},
		Sample:       grnet.At8am,
	}
}

// ParallelFetchRow is one strategy's outcome.
type ParallelFetchRow struct {
	Strategy string
	Elapsed  time.Duration
	// Speedup is sequential elapsed / this strategy's elapsed.
	Speedup float64
}

// ParallelFetch runs Ext-8: the same delivery executed (a) sequentially from
// the per-cluster VRA-optimal server and (b) in parallel, clusters dealt
// round-robin over every replica with one in-flight transfer per replica.
func ParallelFetch(cfg ParallelFetchConfig) ([]ParallelFetchRow, error) {
	if cfg.TitleBytes <= 0 || cfg.ClusterBytes <= 0 {
		return nil, errors.New("parallel fetch: bad sizes")
	}
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("parallel fetch: no replicas")
	}
	title := media.Title{Name: "pf", SizeBytes: cfg.TitleBytes, BitrateMbps: 1.5}
	layout := clusterLayout{size: title.SizeBytes, cluster: cfg.ClusterBytes}

	seq, err := parallelFetchSequential(cfg, layout)
	if err != nil {
		return nil, fmt.Errorf("sequential: %w", err)
	}
	par, err := parallelFetchParallel(cfg, layout)
	if err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	return []ParallelFetchRow{
		{Strategy: "sequential-vra", Elapsed: seq, Speedup: 1},
		{Strategy: "parallel-replicas", Elapsed: par, Speedup: float64(seq) / float64(par)},
	}, nil
}

// newFetchNet builds the emulator with the sample-time background.
func newFetchNet(cfg ParallelFetchConfig) (*netsim.Network, *topology.Snapshot, error) {
	g, err := grnet.Backbone()
	if err != nil {
		return nil, nil, err
	}
	net := netsim.New(g, epoch)
	for _, row := range grnet.Table2() {
		id := topology.MakeLinkID(row.A, row.B)
		if err := net.SetBackground(id, row.TrafficMbps[int(cfg.Sample)-1]); err != nil {
			return nil, nil, err
		}
	}
	snap, err := grnet.SnapshotOn(g, cfg.Sample)
	if err != nil {
		return nil, nil, err
	}
	return net, snap, nil
}

// parallelFetchSequential delivers clusters one at a time from the
// VRA-chosen replica.
func parallelFetchSequential(cfg ParallelFetchConfig, layout clusterLayout) (time.Duration, error) {
	net, snap, err := newFetchNet(cfg)
	if err != nil {
		return 0, err
	}
	vra := core.VRA{}
	start := net.Now()
	for i := range layout.numParts() {
		dec, err := vra.Select(snap, cfg.Home, cfg.Replicas)
		if err != nil {
			return 0, err
		}
		flow, err := net.StartFlow(dec.Path, layout.partLen(i))
		if err != nil {
			return 0, err
		}
		if err := net.RunUntilIdle(24 * time.Hour); err != nil {
			return 0, err
		}
		if done, _ := net.Completed(flow); !done {
			return 0, errors.New("flow did not complete")
		}
	}
	return net.Now().Sub(start), nil
}

// parallelFetchParallel deals clusters round-robin over every replica and
// keeps one flow in flight per replica.
func parallelFetchParallel(cfg ParallelFetchConfig, layout clusterLayout) (time.Duration, error) {
	net, snap, err := newFetchNet(cfg)
	if err != nil {
		return 0, err
	}
	// Per-replica path (fixed for the whole delivery: min-cost route).
	weights, err := snap.Weights(topology.DefaultNormalizationK)
	if err != nil {
		return 0, err
	}
	tree, err := routing.ShortestPaths(snap.Graph(), routing.CostTable(weights), cfg.Home)
	if err != nil {
		return 0, err
	}
	paths := make(map[topology.NodeID]routing.Path, len(cfg.Replicas))
	for _, rep := range cfg.Replicas {
		p, err := tree.PathTo(rep)
		if err != nil {
			return 0, err
		}
		paths[rep] = p
	}
	// Deal clusters.
	queues := make(map[topology.NodeID][]int, len(cfg.Replicas))
	for i := range layout.numParts() {
		rep := cfg.Replicas[i%len(cfg.Replicas)]
		queues[rep] = append(queues[rep], i)
	}
	start := net.Now()
	inflight := make(map[int64]topology.NodeID)
	flows := make(map[int64]*netsim.Flow)
	launch := func(rep topology.NodeID) error {
		q := queues[rep]
		if len(q) == 0 {
			return nil
		}
		idx := q[0]
		queues[rep] = q[1:]
		flow, err := net.StartFlow(paths[rep], layout.partLen(idx))
		if err != nil {
			return err
		}
		flows[flow.ID()] = flow
		inflight[flow.ID()] = rep
		return nil
	}
	for _, rep := range cfg.Replicas {
		if err := launch(rep); err != nil {
			return 0, err
		}
	}
	deadline := start.Add(24 * time.Hour)
	for len(flows) > 0 {
		at, ok := net.NextEventAt()
		if !ok {
			return 0, errors.New("parallel flows stalled")
		}
		if at.After(deadline) {
			return 0, errors.New("parallel delivery exceeded bound")
		}
		if err := net.AdvanceTo(at); err != nil {
			return 0, err
		}
		for id, f := range flows {
			if done, _ := net.Completed(f); done {
				rep := inflight[id]
				delete(flows, id)
				delete(inflight, id)
				if err := launch(rep); err != nil {
					return 0, err
				}
			}
		}
	}
	return net.Now().Sub(start), nil
}

// FormatParallelFetch renders Ext-8.
func FormatParallelFetch(rows []ParallelFetchRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Strategy\tElapsed\tSpeedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%.2fx\n", r.Strategy, r.Elapsed.Round(time.Millisecond), r.Speedup)
	}
	_ = w.Flush()
	return b.String()
}
