package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"time"
)

// WriteRowsCSV renders a slice of flat result structs as CSV: the exported
// field names become the header and each struct a record. Durations are
// written in seconds; any other field type falls back to fmt.Sprint. It
// powers vodbench's -csv export so study outputs feed plotting tools
// directly.
func WriteRowsCSV(w io.Writer, rows any) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("csv export: want a slice, got %T", rows)
	}
	if v.Len() == 0 {
		return fmt.Errorf("csv export: empty result set")
	}
	elemType := v.Index(0).Type()
	if elemType.Kind() != reflect.Struct {
		return fmt.Errorf("csv export: want a slice of structs, got %s", elemType)
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, elemType.NumField())
	for i := range elemType.NumField() {
		f := elemType.Field(i)
		if !f.IsExported() {
			continue
		}
		header = append(header, f.Name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csv export: %w", err)
	}
	for r := range v.Len() {
		row := v.Index(r)
		rec := make([]string, 0, len(header))
		for i := range elemType.NumField() {
			f := elemType.Field(i)
			if !f.IsExported() {
				continue
			}
			rec = append(rec, formatCSVValue(row.Field(i)))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("csv export: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatCSVValue renders one field.
func formatCSVValue(v reflect.Value) string {
	if v.Type() == reflect.TypeOf(time.Duration(0)) {
		return fmt.Sprintf("%g", time.Duration(v.Int()).Seconds())
	}
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		return fmt.Sprintf("%g", v.Float())
	case reflect.Bool:
		if v.Bool() {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprint(v.Interface())
	}
}
