package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"dvod/internal/membership"
	"dvod/internal/metrics"
	"dvod/internal/topogen"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// --- Ext-19: WAN membership study --------------------------------------------

// Ext-19 measures the membership layer at fleet scale under WAN faults. Each
// cell boots an n-node fleet of trackers on a random bounded-degree overlay
// (internal/topogen), seeds each tracker with its overlay neighbours, and
// drives the fleet round by round through the same API the gossiper uses
// (Beat/PlanContactsWithin/SyncFor/HandleSync/MergeReply/StartProbes/
// ReportIndirect), with a seeded fault plan dropping request and reply legs
// independently: a base loss rate on every link, a worse rate on a slow-node
// fraction. The overlay matters: gossip rotates over a node's graph
// neighbours (the WAN deployment shape), so repeat contacts dominate and the
// delta protocol's ack floor does real work; indirect probes still recruit
// helpers fleet-wide. The cell runs three phases — converge (every tracker
// learns all n members), steady (fixed rounds, measuring bytes per round on
// the wire encoding), kill (two members die; measure rounds until every
// survivor marks both Failed). Bytes are what the binary member-sync frames
// would carry, so the full-vs-delta comparison is the headline: delta rows
// shrink steady-state traffic by well over the 5x gate while converging and
// detecting in comparable rounds, with zero false Failed verdicts under 10%
// loss.
//
// The simulation is deterministic: node order is fixed, the fault plan comes
// from a per-cell seeded generator consumed in a fixed order, and every
// tracker output the loop consumes is sorted. Equal config and seed reproduce
// every row bit for bit.

// MembershipStudyConfig parameterizes Ext-19.
type MembershipStudyConfig struct {
	// Sizes lists the fleet sizes to run; each size runs once per mode.
	Sizes []int
	// Modes selects the sync strategies to compare: "full" disables delta
	// rows (every exchange ships the whole view), "delta" is the shipping
	// protocol. Empty runs both.
	Modes []string
	// Seed feeds the per-cell overlay and fault generators.
	Seed int64
	// Degree is the overlay graph's mean degree — each node gossips only
	// with its graph neighbours, the WAN deployment shape.
	Degree float64
	// Fanout is the per-round gossip fanout handed to the contact planner.
	Fanout int
	// SuspectRounds / FailRounds / ProbeFanout / FullSyncEvery mirror the
	// tracker knobs; Ext-19 runs WAN-stretched windows rather than the LAN
	// defaults so 10% loss does not fabricate verdicts.
	SuspectRounds int
	FailRounds    int
	ProbeFanout   int
	FullSyncEvery int
	// LossPct drops each request or reply leg independently.
	LossPct float64
	// SlowFrac of the fleet are slow nodes whose legs drop at SlowLossPct.
	SlowFrac    float64
	SlowLossPct float64
	// Kills is how many members die in the kill phase.
	Kills int
	// SteadyRounds is the byte-measurement window between convergence and
	// the kills.
	SteadyRounds int
	// MaxRounds caps the converge and detect phases so a broken protocol
	// fails the cell instead of hanging it.
	MaxRounds int
}

// DefaultMembershipStudyConfig returns the committed Ext-19 shape.
func DefaultMembershipStudyConfig() MembershipStudyConfig {
	return MembershipStudyConfig{
		Sizes:         []int{100, 512, 1000},
		Modes:         []string{"full", "delta"},
		Seed:          7,
		Degree:        6,
		Fanout:        2,
		SuspectRounds: 4,
		FailRounds:    12,
		ProbeFanout:   3,
		FullSyncEvery: 32,
		LossPct:       0.10,
		SlowFrac:      0.05,
		SlowLossPct:   0.50,
		Kills:         2,
		SteadyRounds:  8,
		MaxRounds:     400,
	}
}

// MembershipRow is one (size, mode) cell of Ext-19.
type MembershipRow struct {
	Nodes int    `json:"nodes"`
	Mode  string `json:"mode"`
	// ConvergeRounds is how many rounds until every tracker knew all Nodes
	// members; Converged is false if MaxRounds hit first.
	ConvergeRounds int  `json:"converge_rounds"`
	Converged      bool `json:"converged"`
	// SteadyBytesPerRound is the fleet-wide wire bytes per round during the
	// steady window (request plus reply legs, frame header included).
	SteadyBytesPerRound int64 `json:"steady_bytes_per_round"`
	// DetectRounds is how many rounds after the kills until every survivor
	// marked all killed members Failed; Detected is false on MaxRounds.
	DetectRounds int  `json:"detect_rounds"`
	Detected     bool `json:"detected"`
	// FalseSuspects / FalseFailed count verdict events against members that
	// were actually alive, summed over the whole fleet and run.
	FalseSuspects int `json:"false_suspects"`
	FalseFailed   int `json:"false_failed"`
	// IndirectProbes / IndirectRescues / FailedDialsSaved aggregate the
	// tracker counters across the fleet.
	IndirectProbes   int64 `json:"indirect_probes"`
	IndirectRescues  int64 `json:"indirect_rescues"`
	FailedDialsSaved int64 `json:"failed_dials_saved"`
	// BytesTotal is the whole-run wire volume.
	BytesTotal int64 `json:"bytes_total"`
}

// membershipCell is the per-cell simulation state.
type membershipCell struct {
	cfg      MembershipStudyConfig
	rng      *rand.Rand
	ids      []topology.NodeID
	overlay  map[topology.NodeID]map[topology.NodeID]bool
	trackers map[topology.NodeID]*membership.Tracker
	slow     map[topology.NodeID]bool
	killed   map[topology.NodeID]bool
	reg      *metrics.Registry
	row      *MembershipRow
	bytes    int64 // accumulates into the current phase's window
	total    int64 // whole-run wire volume
}

// lossOf returns the drop probability for one leg between a and b: the worse
// endpoint wins, so slow nodes hurt in both directions.
func (c *membershipCell) lossOf(a, b topology.NodeID) float64 {
	if c.slow[a] || c.slow[b] {
		return c.cfg.SlowLossPct
	}
	return c.cfg.LossPct
}

// memberSyncWireSize computes the exact frame size AppendMemberSyncPayload
// plus the frame header would produce, without materialising the bytes — the
// 1000-node full-sync cells would otherwise spend the whole study memcpying.
// TestMembershipWireSizeMatchesCodec pins this arithmetic to the codec.
func memberSyncWireSize(p transport.MemberSyncPayload) int64 {
	n := int64(transport.FrameHeaderLen) + 34 + int64(len(p.From))
	for _, e := range p.Members {
		n += 19 + int64(len(e.Node))
	}
	return n
}

// charge accounts one payload's wire size against the cell.
func (c *membershipCell) charge(p transport.MemberSyncPayload) {
	n := memberSyncWireSize(p)
	c.bytes += n
	c.total += n
}

// round drives every live tracker through one gossip round: beat, planned
// exchanges with per-leg loss, then indirect probes for quiet members. Reply
// legs drop independently of request legs, so a responder can merge a view
// whose initiator still records the contact as failed — the asymmetry real
// lossy links produce.
func (c *membershipCell) round() {
	for _, id := range c.ids {
		if c.killed[id] {
			continue
		}
		tr := c.trackers[id]
		hood := c.overlay[id]
		tr.Beat()
		for _, peer := range tr.PlanContactsWithin(c.cfg.Fanout, func(n topology.NodeID) bool { return hood[n] }) {
			if c.killed[peer] || c.rng.Float64() < c.lossOf(id, peer) {
				tr.ReportContactFailed(peer)
				continue
			}
			req := tr.SyncFor(peer)
			c.charge(req)
			reply := c.trackers[peer].HandleSync(req)
			if c.rng.Float64() < c.lossOf(peer, id) {
				tr.ReportContactFailed(peer)
				continue
			}
			c.charge(reply)
			tr.MergeReply(peer, reply)
		}
		for _, p := range tr.StartProbes() {
			ok := false
			for _, h := range p.Helpers {
				if c.killed[h] || c.rng.Float64() < c.lossOf(id, h) {
					continue
				}
				if c.killed[p.Target] || c.rng.Float64() < c.lossOf(h, p.Target) {
					continue
				}
				ok = true
				break
			}
			tr.ReportIndirect(p.Target, ok)
		}
	}
}

// runMembershipCell runs one (size, mode) cell to a row.
func runMembershipCell(cfg MembershipStudyConfig, size int, mode string) (MembershipRow, error) {
	if size < 8 {
		return MembershipRow{}, fmt.Errorf("membership study: size %d too small", size)
	}
	row := MembershipRow{Nodes: size, Mode: mode}
	cell := &membershipCell{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed + int64(size)*31)),
		ids:      topogen.Nodes(size),
		overlay:  make(map[topology.NodeID]map[topology.NodeID]bool, size),
		trackers: make(map[topology.NodeID]*membership.Tracker, size),
		slow:     make(map[topology.NodeID]bool),
		killed:   make(map[topology.NodeID]bool),
		reg:      metrics.NewRegistry(),
		row:      &row,
	}

	// The gossip overlay: a connected random graph at the configured mean
	// degree, from the repo's own generator. Gossip rotates only over graph
	// neighbours, so per-pair repeat contacts dominate — the regime the
	// delta protocol's ack floor is built for.
	graph, err := topogen.Random(size, cfg.Degree, cell.rng)
	if err != nil {
		return row, fmt.Errorf("membership study: overlay: %w", err)
	}
	for _, id := range cell.ids {
		hood := make(map[topology.NodeID]bool)
		for _, nb := range graph.Neighbors(id) {
			hood[nb] = true
		}
		cell.overlay[id] = hood
	}

	// Fault cast: a slow fraction plus the kill victims, drawn from one
	// permutation so the sets never overlap and stay seed-stable.
	perm := cell.rng.Perm(size)
	slowCount := int(float64(size) * cfg.SlowFrac)
	if slowCount+cfg.Kills > size-2 {
		return row, fmt.Errorf("membership study: size %d cannot host %d slow + %d killed", size, slowCount, cfg.Kills)
	}
	for _, i := range perm[:slowCount] {
		cell.slow[cell.ids[i]] = true
	}
	victims := make([]topology.NodeID, 0, cfg.Kills)
	for _, i := range perm[slowCount : slowCount+cfg.Kills] {
		victims = append(victims, cell.ids[i])
	}

	// Verdicts against members that are in fact alive are false; the killed
	// set is consulted at event time, so kill-phase verdicts stay honest.
	onEvent := func(ev membership.Event) {
		switch ev.Kind {
		case membership.EventSuspect:
			if !cell.killed[ev.Node] {
				row.FalseSuspects++
			}
		case membership.EventFail:
			if !cell.killed[ev.Node] {
				row.FalseFailed++
			}
		}
	}

	// Each tracker starts knowing only its overlay neighbours, so
	// convergence is a real dissemination problem rather than a full-mesh
	// giveaway.
	for _, id := range cell.ids {
		seeds := graph.Neighbors(id)
		tr, err := membership.New(membership.Config{
			Self:          id,
			Seeds:         seeds,
			SuspectRounds: cfg.SuspectRounds,
			FailRounds:    cfg.FailRounds,
			ProbeFanout:   cfg.ProbeFanout,
			FullSyncEvery: cfg.FullSyncEvery,
			DisableDelta:  mode == "full",
			Epoch:         1,
			OnEvent:       onEvent,
			Metrics:       cell.reg,
		})
		if err != nil {
			return row, fmt.Errorf("membership study: %w", err)
		}
		cell.trackers[id] = tr
	}

	// Phase 1: converge.
	converged := func() bool {
		for _, id := range cell.ids {
			if cell.trackers[id].Size() != size {
				return false
			}
		}
		return true
	}
	for r := 0; r < cfg.MaxRounds; r++ {
		if converged() {
			row.Converged = true
			break
		}
		cell.round()
		row.ConvergeRounds++
	}
	row.Converged = row.Converged || converged()

	// Phase 2: steady window.
	cell.bytes = 0
	for r := 0; r < cfg.SteadyRounds; r++ {
		cell.round()
	}
	if cfg.SteadyRounds > 0 {
		row.SteadyBytesPerRound = cell.bytes / int64(cfg.SteadyRounds)
	}

	// Phase 3: kill and detect.
	for _, v := range victims {
		cell.killed[v] = true
	}
	detected := func() bool {
		for _, id := range cell.ids {
			if cell.killed[id] {
				continue
			}
			for _, v := range victims {
				m, ok := cell.trackers[id].Member(v)
				if !ok || m.State < membership.Failed {
					return false
				}
			}
		}
		return true
	}
	for r := 0; r < cfg.MaxRounds; r++ {
		if detected() {
			row.Detected = true
			break
		}
		cell.round()
		row.DetectRounds++
	}
	row.Detected = row.Detected || detected()

	row.IndirectProbes = cell.reg.Counter("membership.indirect_probes").Value()
	row.IndirectRescues = cell.reg.Counter("membership.indirect_rescues").Value()
	row.FailedDialsSaved = cell.reg.Counter("membership.failed_dials_saved").Value()
	row.BytesTotal = cell.total
	return row, nil
}

// MembershipStudy runs every (size, mode) cell and returns the rows in size
// order, full before delta.
func MembershipStudy(cfg MembershipStudyConfig) ([]MembershipRow, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("membership study: need at least one size")
	}
	modes := cfg.Modes
	if len(modes) == 0 {
		modes = []string{"full", "delta"}
	}
	for _, m := range modes {
		if m != "full" && m != "delta" {
			return nil, fmt.Errorf("membership study: unknown mode %q", m)
		}
	}
	rows := make([]MembershipRow, 0, len(cfg.Sizes)*len(modes))
	for _, size := range cfg.Sizes {
		for _, mode := range modes {
			row, err := runMembershipCell(cfg, size, mode)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// MembershipRegression checks the structural Ext-19 invariants and the
// current rows against a baseline. The checks are structural — convergence
// and detection finished, delta cut steady bytes by at least 5x where both
// modes ran, zero false Failed verdicts anywhere — so the gate is stable on
// loaded CI machines; the baseline comparison allows 1.5x drift on the byte
// rate before failing.
func MembershipRegression(current, baseline []MembershipRow) []string {
	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if len(current) == 0 {
		fail("membership study produced no rows")
		return problems
	}
	byCell := func(rows []MembershipRow) map[string]MembershipRow {
		m := make(map[string]MembershipRow, len(rows))
		for _, r := range rows {
			m[fmt.Sprintf("%d/%s", r.Nodes, r.Mode)] = r
		}
		return m
	}
	cur := byCell(current)
	for _, r := range current {
		if !r.Converged {
			fail("cell %d/%s never converged (%d rounds)", r.Nodes, r.Mode, r.ConvergeRounds)
		}
		if !r.Detected {
			fail("cell %d/%s never detected the kills (%d rounds)", r.Nodes, r.Mode, r.DetectRounds)
		}
		if r.FalseFailed != 0 {
			fail("cell %d/%s produced %d false Failed verdicts", r.Nodes, r.Mode, r.FalseFailed)
		}
		if r.Mode != "delta" {
			continue
		}
		full, ok := cur[fmt.Sprintf("%d/full", r.Nodes)]
		if !ok {
			continue
		}
		if r.SteadyBytesPerRound*5 > full.SteadyBytesPerRound {
			fail("cell %d: delta steady bytes %d not 5x under full %d",
				r.Nodes, r.SteadyBytesPerRound, full.SteadyBytesPerRound)
		}
		if full.Converged && r.ConvergeRounds > 2*full.ConvergeRounds {
			fail("cell %d: delta converged in %d rounds, over 2x full's %d",
				r.Nodes, r.ConvergeRounds, full.ConvergeRounds)
		}
	}
	if len(baseline) == 0 {
		fail("membership baseline holds no rows to compare")
		return problems
	}
	base := byCell(baseline)
	for key, b := range base {
		c, ok := cur[key]
		if !ok {
			fail("baseline cell %s missing from current run", key)
			continue
		}
		if b.SteadyBytesPerRound > 0 && c.SteadyBytesPerRound > b.SteadyBytesPerRound+b.SteadyBytesPerRound/2 {
			fail("cell %s steady bytes %d regressed past 1.5x baseline %d",
				key, c.SteadyBytesPerRound, b.SteadyBytesPerRound)
		}
		if c.FalseFailed > b.FalseFailed {
			fail("cell %s false Failed %d worse than baseline %d", key, c.FalseFailed, b.FalseFailed)
		}
	}
	return problems
}

// FormatMembershipStudy renders Ext-19 rows as an aligned table.
func FormatMembershipStudy(rows []MembershipRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Nodes\tMode\tConverge\tDetect\tBytes/round\tFalseSuspect\tFalseFailed\tProbes\tRescues\tDialsSaved")
	for _, r := range rows {
		conv := fmt.Sprintf("%d", r.ConvergeRounds)
		if !r.Converged {
			conv += "*"
		}
		det := fmt.Sprintf("%d", r.DetectRounds)
		if !r.Detected {
			det += "*"
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Nodes, r.Mode, conv, det, r.SteadyBytesPerRound,
			r.FalseSuspects, r.FalseFailed,
			r.IndirectProbes, r.IndirectRescues, r.FailedDialsSaved)
	}
	w.Flush()
	return b.String()
}
