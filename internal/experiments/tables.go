// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 2-5, Experiments A-D) and runs the extension studies
// DESIGN.md catalogues (Ext-1..Ext-5). Everything is deterministic: the
// emulated plane runs on virtual time with seeded randomness.
package experiments

import (
	"fmt"
	"time"

	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/grnet"
	"dvod/internal/netsim"
	"dvod/internal/routing"
	"dvod/internal/snmp"
	"dvod/internal/topology"
)

// epoch anchors virtual time for all experiments: 8am on the measurement
// day (the paper sampled a specific day in 2000).
var epoch = time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)

// Table2Cell is one (link, time) measurement.
type Table2Cell struct {
	UsedMbps    float64 `json:"usedMbps"`
	Utilization float64 `json:"utilization"`
}

// Table2Row is one link's measurements across the four sample times.
type Table2Row struct {
	Link         string        `json:"link"`
	A, B         string        `json:"-"`
	CapacityMbps float64       `json:"capacityMbps"`
	Cells        [4]Table2Cell `json:"cells"`
}

// Table2 regenerates the paper's network-status table end to end: the
// emulated network carries the diurnal background traffic, the per-node SNMP
// agents poll it into the database at each sample time, and the rows report
// what the database then holds.
func Table2() ([]Table2Row, error) {
	g, err := grnet.Backbone()
	if err != nil {
		return nil, err
	}
	d := db.New(g)
	net := netsim.New(g, epoch)
	var agents []*snmp.Agent
	for _, node := range grnet.Nodes() {
		a, err := snmp.NewAgent(node, g, net)
		if err != nil {
			return nil, err
		}
		agents = append(agents, a)
	}

	rows := make([]Table2Row, 0, 7)
	index := make(map[topology.LinkID]int, 7)
	for _, row := range grnet.Table2() {
		index[topology.MakeLinkID(row.A, row.B)] = len(rows)
		rows = append(rows, Table2Row{
			Link:         fmt.Sprintf("%s - %s", grnet.CityName(row.A), grnet.CityName(row.B)),
			A:            grnet.CityName(row.A),
			B:            grnet.CityName(row.B),
			CapacityMbps: row.CapacityMbps,
		})
	}

	for ti, st := range grnet.SampleTimes() {
		// Drive the emulated network to the sample instant's load.
		for _, row := range grnet.Table2() {
			id := topology.MakeLinkID(row.A, row.B)
			if err := net.SetBackground(id, row.TrafficMbps[ti]); err != nil {
				return nil, err
			}
		}
		// Poll every agent into the DB, stamped at the sample time.
		at := epoch.Add(time.Duration(st.HourOfDay()-8) * time.Hour)
		for _, a := range agents {
			samples, err := a.Sample()
			if err != nil {
				return nil, err
			}
			for _, s := range samples {
				if err := d.UpsertLinkStats(s.ID, s.UsedMbps, at); err != nil {
					return nil, err
				}
			}
		}
		// Read the measured values back out of the DB.
		for _, s := range d.AllLinkStats() {
			i, ok := index[s.ID]
			if !ok {
				return nil, fmt.Errorf("unexpected link %s", s.ID)
			}
			rows[i].Cells[ti] = Table2Cell{UsedMbps: s.UsedMbps, Utilization: s.Utilization}
		}
	}
	return rows, nil
}

// Table3Row is one link's LVN across the four sample times, next to the
// published values.
type Table3Row struct {
	Link     string     `json:"link"`
	Measured [4]float64 `json:"measured"`
	Paper    [4]float64 `json:"paper"`
}

// Table3 recomputes every LVN from the Table 2 snapshot via equations
// (1)-(4) with K = 10 and pairs each with the published value.
func Table3() ([]Table3Row, error) {
	rows := make([]Table3Row, 0, 7)
	for _, load := range grnet.Table2() {
		row := Table3Row{
			Link: fmt.Sprintf("%s - %s", grnet.CityName(load.A), grnet.CityName(load.B)),
		}
		id := topology.MakeLinkID(load.A, load.B)
		for ti, st := range grnet.SampleTimes() {
			snap, err := grnet.Snapshot(st)
			if err != nil {
				return nil, err
			}
			lvn, err := snap.LVN(id, topology.DefaultNormalizationK)
			if err != nil {
				return nil, err
			}
			row.Measured[ti] = lvn
			paper, ok := grnet.PaperLVN(load.A, load.B, st)
			if !ok {
				return nil, fmt.Errorf("no paper LVN for %s @%s", id, st)
			}
			row.Paper[ti] = paper
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Experiment describes one of the paper's four case-study experiments.
type Experiment struct {
	ID         string
	Time       grnet.SampleTime
	Home       topology.NodeID
	Candidates []topology.NodeID
	// PaperServer/PaperPath/PaperCost are the published decision.
	PaperServer topology.NodeID
	PaperPath   string
	PaperCost   float64
	// Erratum is non-empty when the published decision contradicts the
	// paper's own weights (Experiment A; see EXPERIMENTS.md).
	Erratum string
}

// Experiments returns the paper's four experiments.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID: "A", Time: grnet.At8am, Home: grnet.Patra,
			Candidates:  []topology.NodeID{grnet.Thessaloniki, grnet.Xanthi},
			PaperServer: grnet.Xanthi, PaperPath: "U2,U1,U6,U5", PaperCost: 0.315,
			Erratum: "paper's Table 4 never relaxes U4 via U3; a correct Dijkstra " +
				"finds U2,U3,U4 at ≈0.218 and picks Thessaloniki",
		},
		{
			ID: "B", Time: grnet.At10am, Home: grnet.Patra,
			Candidates:  []topology.NodeID{grnet.Thessaloniki, grnet.Xanthi},
			PaperServer: grnet.Thessaloniki, PaperPath: "U2,U3,U4", PaperCost: 1.007,
		},
		{
			ID: "C", Time: grnet.At4pm, Home: grnet.Athens,
			Candidates:  []topology.NodeID{grnet.Ioannina, grnet.Thessaloniki, grnet.Xanthi},
			PaperServer: grnet.Ioannina, PaperPath: "U1,U2,U3", PaperCost: 1.222,
		},
		{
			ID: "D", Time: grnet.At6pm, Home: grnet.Athens,
			Candidates:  []topology.NodeID{grnet.Ioannina, grnet.Thessaloniki, grnet.Xanthi},
			PaperServer: grnet.Ioannina, PaperPath: "U1,U2,U3", PaperCost: 1.236,
		},
	}
}

// ExperimentByID looks an experiment up by its letter.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("unknown experiment %q (want A-D)", id)
}

// CandidatePath is one candidate server's best route in an experiment.
type CandidatePath struct {
	Server topology.NodeID
	Path   routing.Path
}

// ExperimentResult is the reproduced outcome of one experiment.
type ExperimentResult struct {
	Experiment Experiment
	// Decision is the VRA's choice over the recomputed weights.
	Decision core.Decision
	// Alternatives lists every candidate's best path, sorted as given.
	Alternatives []CandidatePath
	// Trace is the Dijkstra step table (Tables 4 and 5 for A and B).
	Trace []routing.TraceStep
	// MatchesPaper is true when server and path equal the published ones.
	MatchesPaper bool
}

// RunExperiment reproduces one of the paper's experiments from scratch:
// rebuild the snapshot, weight the links, run the traced VRA.
func RunExperiment(id string) (ExperimentResult, error) {
	exp, err := ExperimentByID(id)
	if err != nil {
		return ExperimentResult{}, err
	}
	snap, err := grnet.Snapshot(exp.Time)
	if err != nil {
		return ExperimentResult{}, err
	}
	vra := core.VRA{}
	dec, trace, err := vra.SelectTrace(snap, exp.Home, exp.Candidates)
	if err != nil {
		return ExperimentResult{}, err
	}
	weights, err := snap.Weights(topology.DefaultNormalizationK)
	if err != nil {
		return ExperimentResult{}, err
	}
	tree, err := routing.ShortestPaths(snap.Graph(), routing.CostTable(weights), exp.Home)
	if err != nil {
		return ExperimentResult{}, err
	}
	res := ExperimentResult{Experiment: exp, Decision: dec, Trace: trace}
	for _, c := range exp.Candidates {
		p, err := tree.PathTo(c)
		if err != nil {
			return ExperimentResult{}, err
		}
		res.Alternatives = append(res.Alternatives, CandidatePath{Server: c, Path: p})
	}
	res.MatchesPaper = dec.Server == exp.PaperServer &&
		dec.Path.Reverse().String() == reversePaperPath(exp.PaperPath) ||
		dec.Server == exp.PaperServer && dec.Path.String() == exp.PaperPath
	return res, nil
}

// reversePaperPath flips "U2,U1,U6,U5" into "U5,U6,U1,U2" so either
// direction of the published route counts as a match.
func reversePaperPath(s string) string {
	var nodes []topology.NodeID
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			nodes = append(nodes, topology.NodeID(s[start:i]))
			start = i + 1
		}
	}
	p := routing.Path{Nodes: nodes}
	return p.Reverse().String()
}
