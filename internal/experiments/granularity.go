package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"dvod/internal/cache"
	"dvod/internal/disk"
	"dvod/internal/media"
	"dvod/internal/segcache"
	"dvod/internal/workload"
)

// --- Ext-6: caching granularity under partial viewing ------------------------

// GranularityStudyConfig parameterizes the whole-title-DMA vs segment-cache
// comparison (the paper's future work: "the most popular technique ... will
// not be imposed on whole videos but on video strips").
type GranularityStudyConfig struct {
	// NumTitles, TitleBytes: equal-sized library.
	NumTitles  int
	TitleBytes int64
	// ClusterBytes is the segment size.
	ClusterBytes int64
	// CacheFraction of the total library size, identical for both caches.
	CacheFraction float64
	// Sessions is the number of viewing sessions.
	Sessions int
	// Theta is the Zipf skew over titles.
	Theta float64
	// MinViewedFraction: each session watches a uniform fraction in
	// [MinViewedFraction, 1] of the title. Lower values mean heavier
	// partial viewing — the regime where segment caching wins.
	MinViewedFraction float64
	Seed              int64
}

// DefaultGranularityStudyConfig models heavy sampling behaviour: sessions
// watch 10-100% of a title.
func DefaultGranularityStudyConfig() GranularityStudyConfig {
	return GranularityStudyConfig{
		NumTitles:         30,
		TitleBytes:        60 << 10,
		ClusterBytes:      4 << 10,
		CacheFraction:     0.2,
		Sessions:          1500,
		Theta:             0.729,
		MinViewedFraction: 0.1,
		Seed:              1,
	}
}

// GranularityRow is one policy's byte-weighted outcome.
type GranularityRow struct {
	Policy         string
	ByteHitRatio   float64
	Evictions      int64
	BytesRequested int64
}

// GranularityStudy runs Ext-6: identical partial-viewing sessions against a
// whole-title DMA and a segment-granularity cache of equal capacity.
func GranularityStudy(cfg GranularityStudyConfig) ([]GranularityRow, error) {
	if cfg.NumTitles <= 0 || cfg.Sessions <= 0 {
		return nil, errors.New("granularity study: need titles and sessions")
	}
	if cfg.CacheFraction <= 0 || cfg.CacheFraction > 1 {
		return nil, fmt.Errorf("granularity study: bad cache fraction %g", cfg.CacheFraction)
	}
	if cfg.MinViewedFraction <= 0 || cfg.MinViewedFraction > 1 {
		return nil, fmt.Errorf("granularity study: bad min viewed fraction %g", cfg.MinViewedFraction)
	}
	lib, err := media.GenerateLibrary(media.LibrarySpec{
		Count:       cfg.NumTitles,
		MinBytes:    cfg.TitleBytes,
		MaxBytes:    cfg.TitleBytes,
		BitrateMbps: 1.5,
	}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	byName := make(map[string]media.Title, len(lib))
	names := make([]string, 0, len(lib))
	for _, t := range lib {
		byName[t.Name] = t
		names = append(names, t.Name)
	}

	// Pre-draw the shared session stream.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	zipf, err := workload.NewZipfTitles(names, cfg.Theta, rng)
	if err != nil {
		return nil, err
	}
	type session struct {
		title    string
		segments int // watched prefix length in segments
	}
	segsPerTitle := int((cfg.TitleBytes + cfg.ClusterBytes - 1) / cfg.ClusterBytes)
	sessions := make([]session, cfg.Sessions)
	for i := range sessions {
		frac := cfg.MinViewedFraction + rng.Float64()*(1-cfg.MinViewedFraction)
		watched := int(frac * float64(segsPerTitle))
		if watched < 1 {
			watched = 1
		}
		sessions[i] = session{title: zipf.Sample(), segments: watched}
	}

	cacheBytes := int64(float64(cfg.TitleBytes*int64(cfg.NumTitles)) * cfg.CacheFraction)
	const nDisks = 4
	perDisk := cacheBytes/nDisks + 1

	// Whole-title DMA.
	titleArr, err := disk.NewUniformArray("gt", nDisks, perDisk)
	if err != nil {
		return nil, err
	}
	dma, err := cache.NewDMA(cache.Config{Array: titleArr, ClusterBytes: cfg.ClusterBytes})
	if err != nil {
		return nil, err
	}
	var titleReq, titleHit int64
	for _, s := range sessions {
		t := byName[s.title]
		watchedBytes := int64(s.segments) * cfg.ClusterBytes
		if watchedBytes > t.SizeBytes {
			watchedBytes = t.SizeBytes
		}
		out, err := dma.OnRequest(t)
		if err != nil {
			return nil, fmt.Errorf("dma session: %w", err)
		}
		titleReq += watchedBytes
		if out.Hit {
			titleHit += watchedBytes
		}
	}
	dmaStats := dma.Stats()

	// Segment cache.
	segArr, err := disk.NewUniformArray("gs", nDisks, perDisk)
	if err != nil {
		return nil, err
	}
	segs, err := segcache.New(segcache.Config{Array: segArr, ClusterBytes: cfg.ClusterBytes})
	if err != nil {
		return nil, err
	}
	for _, s := range sessions {
		t := byName[s.title]
		for i := range s.segments {
			if _, err := segs.OnSegmentRequest(t, i); err != nil {
				return nil, fmt.Errorf("segment session: %w", err)
			}
		}
	}
	segStats := segs.Stats()

	titleRatio := 0.0
	if titleReq > 0 {
		titleRatio = float64(titleHit) / float64(titleReq)
	}
	return []GranularityRow{
		{
			Policy:         "title-dma",
			ByteHitRatio:   titleRatio,
			Evictions:      dmaStats.Evictions,
			BytesRequested: titleReq,
		},
		{
			Policy:         "segment-dma",
			ByteHitRatio:   segStats.ByteHitRatio(),
			Evictions:      segStats.Evictions,
			BytesRequested: segStats.BytesRequested,
		},
	}, nil
}

// FormatGranularityStudy renders Ext-6.
func FormatGranularityStudy(rows []GranularityRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Policy\tByteHitRatio\tEvictions\tBytesRequested")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.4f\t%d\t%d\n", r.Policy, r.ByteHitRatio, r.Evictions, r.BytesRequested)
	}
	_ = w.Flush()
	return b.String()
}
