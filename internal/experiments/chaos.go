package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"dvod"
	"dvod/internal/client"
)

// --- Ext-15: chaos study ------------------------------------------------------

// Ext-15 exercises the self-healing delivery plane under deterministic fault
// injection: a three-node star (an edge home server whose array holds a single
// cluster, so every cluster is fetched remotely, plus two origin replicas) runs
// each canned fault schedule twice — once with the full defense (circuit
// breakers, hedged fetches, retry budgets, health-score routing, client
// resume) and once bare (WithoutDefense, plain players). The contrast is the
// study's claim: faults that fail every bare watch are absorbed by the
// defended plane as bounded rebuffer time.

// ChaosStudyConfig parameterizes Ext-15.
type ChaosStudyConfig struct {
	// Watchers is the number of concurrent watch sessions per cell.
	Watchers int
	// TitleClusters is the title length in clusters; with Drag it sets how
	// long a watch stays in flight, so the fault windows land mid-stream.
	TitleClusters int
	// ClusterBytes is the delivery cluster size.
	ClusterBytes int64
	// BitrateMbps is the title bitrate; it fixes the playout deadline each
	// cluster must beat, and hence what counts as a rebuffer.
	BitrateMbps float64
	// Drag is the injected per-read disk latency on both origins — the
	// pacing fault that stretches delivery across the fault windows.
	Drag time.Duration
	// Seed pins the injector's randomized choices; one (plan, seed) pair
	// reproduces the identical fault sequence run after run.
	Seed int64
}

// DefaultChaosStudyConfig: 4 concurrent watchers of a 256 KiB title at 4 KiB
// clusters and 2 Mbps, dragged 3 ms per origin read so the ~350 ms watch spans
// every schedule's fault windows. At 2 Mbps a cluster plays for ~16 ms while a
// defended fetch needs at most ~14 ms (hedge deadline + dragged read), so the
// defense can keep playout fed through a fault; the bare plane cannot.
func DefaultChaosStudyConfig() ChaosStudyConfig {
	return ChaosStudyConfig{
		Watchers:      4,
		TitleClusters: 64,
		ClusterBytes:  4 << 10,
		BitrateMbps:   2,
		Drag:          3 * time.Millisecond,
		Seed:          7,
	}
}

// ChaosSchedules lists the canned fault schedules, in run order:
//
//   - "flap": the active route's link goes down twice mid-stream (the title's
//     only replica sits behind it), cutting live streams and refusing dials.
//   - "partition": the sole replica is unreachable for one longer window —
//     recovery can only come from outlasting the outage.
//   - "stall": the preferred replica freezes mid-byte while a second replica
//     stays healthy — the hedging rescue case.
func ChaosSchedules() []string { return []string{"flap", "partition", "stall"} }

// ChaosRow is one (schedule, delivery mode) outcome.
type ChaosRow struct {
	Schedule string // one of ChaosSchedules
	Mode     string // "defended" or "bare"
	Watchers int
	// FailedWatches counts sessions that ended in error; FailedRate is the
	// per-watcher fraction.
	FailedWatches int
	FailedRate    float64
	// Rebuffers sums playout stalls across watchers; RebufferRate is stalls
	// per watcher and MeanStallMs the mean per-watcher stalled time.
	Rebuffers    int
	RebufferRate float64
	MeanStallMs  float64
	// MTTRms is the mean (over watchers that delivered ≥ 2 clusters) of the
	// worst inter-cluster arrival gap — how long the longest outage looked
	// from the client's couch.
	MTTRms float64
	// Retries is the server-side fetch retry total; Resumes the client-side
	// mid-stream resume total (always 0 for bare players).
	Retries int64
	Resumes int
	// HedgesLaunched / HedgesWon count hedged fetches raced and won.
	HedgesLaunched int64
	HedgesWon      int64
	// InjectedFaults is the injector's activation count for the cell.
	InjectedFaults int64
}

// Fixed cast of the chaos cell. The schedules reference these nodes.
const (
	chaosHome = dvod.NodeID("edge")
	chaosO1   = dvod.NodeID("origin-a")
	chaosO2   = dvod.NodeID("origin-b")
)

// ChaosStudy runs Ext-15: every schedule × {bare, defended}.
func ChaosStudy(cfg ChaosStudyConfig) ([]ChaosRow, error) {
	switch {
	case cfg.Watchers <= 0:
		return nil, errors.New("chaos study: need watchers")
	case cfg.TitleClusters <= 0 || cfg.ClusterBytes <= 0:
		return nil, errors.New("chaos study: bad title geometry")
	case cfg.BitrateMbps <= 0:
		return nil, errors.New("chaos study: need a positive bitrate")
	case cfg.Drag <= 0:
		return nil, errors.New("chaos study: need a positive disk drag")
	}
	var out []ChaosRow
	for _, schedule := range ChaosSchedules() {
		for _, defended := range []bool{false, true} {
			row, err := chaosCell(cfg, schedule, defended)
			if err != nil {
				return nil, fmt.Errorf("chaos study %s/%s: %w", schedule, row.Mode, err)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// chaosPlan builds the schedule's fault plan and names the origins holding the
// title. Every plan carries the disk drag on both origins; the window offsets
// assume the default geometry's ~350 ms watch.
func chaosPlan(cfg ChaosStudyConfig, schedule string) (dvod.FaultPlan, []dvod.NodeID, error) {
	var plan dvod.FaultPlan
	window := 10 * time.Second
	plan.SlowDisk(0, window, chaosO1, cfg.Drag)
	plan.SlowDisk(0, window, chaosO2, cfg.Drag)
	switch schedule {
	case "flap":
		link := dvod.MakeLinkID(chaosHome, chaosO1)
		plan.FlapLink(80*time.Millisecond, 100*time.Millisecond, link)
		plan.FlapLink(240*time.Millisecond, 80*time.Millisecond, link)
		return plan, []dvod.NodeID{chaosO1}, nil
	case "partition":
		plan.FailPeer(100*time.Millisecond, 160*time.Millisecond, chaosO1)
		return plan, []dvod.NodeID{chaosO1}, nil
	case "stall":
		plan.StallPeer(60*time.Millisecond, 200*time.Millisecond, chaosO1)
		return plan, []dvod.NodeID{chaosO1, chaosO2}, nil
	}
	return plan, nil, fmt.Errorf("chaos study: unknown schedule %q", schedule)
}

// chaosCell runs one burst of concurrent watches against a fresh three-node
// deployment with the schedule's fault plan armed. Routing is biased toward
// origin-a (lower reported traffic), so every schedule hits the active route.
func chaosCell(cfg ChaosStudyConfig, schedule string, defended bool) (ChaosRow, error) {
	row := ChaosRow{Schedule: schedule, Mode: "defended", Watchers: cfg.Watchers}
	if !defended {
		row.Mode = "bare"
	}
	plan, holders, err := chaosPlan(cfg, schedule)
	if err != nil {
		return row, err
	}
	titleBytes := cfg.ClusterBytes * int64(cfg.TitleClusters)
	spec := dvod.TopologySpec{
		Nodes: []dvod.NodeID{chaosHome, chaosO1, chaosO2},
		Links: []dvod.LinkSpec{
			{A: chaosHome, B: chaosO1, CapacityMbps: 34},
			{A: chaosHome, B: chaosO2, CapacityMbps: 34},
		},
	}
	opts := []dvod.Option{
		dvod.WithClusterBytes(cfg.ClusterBytes),
		dvod.WithDisks(2, titleBytes),
		// The edge's array holds one cluster: nothing is ever resident, so
		// every cluster crosses the network and meets the faults.
		dvod.WithNodeDisks(chaosHome, 1, cfg.ClusterBytes),
		dvod.WithFaultPlan(plan, cfg.Seed),
	}
	if !defended {
		opts = append(opts, dvod.WithoutDefense())
	}
	svc, err := dvod.New(spec, opts...)
	if err != nil {
		return row, err
	}
	defer svc.Close()
	title := dvod.Title{Name: "chaos-" + schedule, SizeBytes: titleBytes, BitrateMbps: cfg.BitrateMbps}
	if err := svc.AddTitle(title); err != nil {
		return row, err
	}
	// Preload before Start: the plan's clock only ticks once the service is
	// live, so initial placement runs fault-free.
	for _, origin := range holders {
		if err := svc.Preload(origin, title.Name); err != nil {
			return row, err
		}
	}
	if err := svc.Start(); err != nil {
		return row, err
	}
	if err := svc.SetLinkTraffic(chaosHome, chaosO1, 2); err != nil {
		return row, err
	}
	if err := svc.SetLinkTraffic(chaosHome, chaosO2, 10); err != nil {
		return row, err
	}

	stats := make([]dvod.PlaybackStats, cfg.Watchers)
	errs := make([]error, cfg.Watchers)
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := range cfg.Watchers {
		var popts []client.Option
		if defended {
			popts = append(popts,
				client.WithResume(),
				client.WithDialer(svc.WatchDialer(chaosHome)))
		}
		p, err := svc.Player(chaosHome, popts...)
		if err != nil {
			return row, err
		}
		wg.Add(1)
		go func(i int, p *dvod.Player) {
			defer wg.Done()
			<-gate
			stats[i], errs[i] = p.Watch(title.Name)
		}(i, p)
	}
	close(gate)
	wg.Wait()

	var gapWatchers int
	for i := range stats {
		if errs[i] != nil {
			row.FailedWatches++
		}
		row.Rebuffers += stats[i].Stalls
		row.MeanStallMs += float64(stats[i].StallTime) / float64(time.Millisecond)
		row.Resumes += stats[i].Retries
		if g := maxArrivalGap(stats[i].Records); g > 0 {
			row.MTTRms += float64(g) / float64(time.Millisecond)
			gapWatchers++
		}
	}
	row.FailedRate = float64(row.FailedWatches) / float64(cfg.Watchers)
	row.RebufferRate = float64(row.Rebuffers) / float64(cfg.Watchers)
	row.MeanStallMs /= float64(cfg.Watchers)
	if gapWatchers > 0 {
		row.MTTRms /= float64(gapWatchers)
	}
	for node, snap := range svc.Metrics() {
		if node == "_faults" {
			continue
		}
		row.Retries += snap.Counters["client.retries"]
		row.HedgesLaunched += snap.Counters["client.hedges_launched"]
		row.HedgesWon += snap.Counters["client.hedges_won"]
	}
	row.InjectedFaults = svc.InjectedFaults()
	return row, nil
}

// maxArrivalGap returns the longest wait between consecutive cluster arrivals
// (0 with fewer than two records) — the client's-eye view of the worst outage.
func maxArrivalGap(recs []client.ClusterRecord) time.Duration {
	var max time.Duration
	for i := 1; i < len(recs); i++ {
		if g := recs[i].ArrivedAt.Sub(recs[i-1].ArrivedAt); g > max {
			max = g
		}
	}
	return max
}

// ChaosRegression compares a run's defended arms against a baseline and
// returns one message per regression; an empty slice means the gate passes.
// Three metrics guard three failure modes, each allowed 20% over baseline
// plus an absolute slack sized to one unit of scheduler noise:
//
//   - FailedRate (slack 0.3/watcher): a watch failing at all means resume or
//     the retry budget broke — the defense's core recovery contract.
//   - RebufferRate (slack 1.0/watcher): one borderline stall per watcher is
//     timing noise; several means the plane stopped keeping playout fed.
//   - MTTRms (slack 50 ms): the worst client-visible delivery gap — the
//     metric hedging and resume exist to bound. A dead hedge path shows up
//     here (the stall schedule's ~20 ms MTTR reverts to the full window)
//     even when no watch fails.
func ChaosRegression(current, baseline []ChaosRow) []string {
	base := make(map[string]ChaosRow)
	for _, r := range baseline {
		if r.Mode == "defended" {
			base[r.Schedule] = r
		}
	}
	var bad []string
	for _, r := range current {
		if r.Mode != "defended" {
			continue
		}
		b, ok := base[r.Schedule]
		if !ok {
			continue
		}
		if r.FailedRate > b.FailedRate*1.2+0.3 {
			bad = append(bad, fmt.Sprintf("%s: defended failed-watch rate %.2f regressed past baseline %.2f",
				r.Schedule, r.FailedRate, b.FailedRate))
		}
		if r.RebufferRate > b.RebufferRate*1.2+1.0 {
			bad = append(bad, fmt.Sprintf("%s: defended rebuffer rate %.2f regressed past baseline %.2f",
				r.Schedule, r.RebufferRate, b.RebufferRate))
		}
		if r.MTTRms > b.MTTRms*1.2+50 {
			bad = append(bad, fmt.Sprintf("%s: defended MTTR %.1fms regressed past baseline %.1fms",
				r.Schedule, r.MTTRms, b.MTTRms))
		}
	}
	return bad
}

// FormatChaosStudy renders Ext-15 as an aligned table.
func FormatChaosStudy(rows []ChaosRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Schedule\tMode\tWatchers\tFailed\tFailRate\tRebuffers\tRebufRate\tMTTRms\tStallMs\tRetries\tResumes\tHedges\tHedgeWins\tFaults")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.2f\t%d\t%.2f\t%.1f\t%.1f\t%d\t%d\t%d\t%d\t%d\n",
			r.Schedule, r.Mode, r.Watchers, r.FailedWatches, r.FailedRate,
			r.Rebuffers, r.RebufferRate, r.MTTRms, r.MeanStallMs,
			r.Retries, r.Resumes, r.HedgesLaunched, r.HedgesWon, r.InjectedFaults)
	}
	_ = w.Flush()
	return b.String()
}
