package metrics

import (
	"strings"
	"testing"
)

func TestHistogramQuantileSingleBucket(t *testing.T) {
	// A histogram with no finite bounds has only the implicit +Inf bucket,
	// so every quantile resolves to the observed maximum.
	h := NewHistogram()
	for _, v := range []float64{2, 4, 8} {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 8 {
			t.Fatalf("Quantile(%g) = %g, want 8 (max)", q, got)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server.requests":            "dvod_server_requests",
		"admission.admitted.premium": "dvod_admission_admitted_premium",
		"cache hit-rate":             "dvod_cache_hit_rate",
		"p99":                        "dvod_p99",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusCountersAndGauges(t *testing.T) {
	a := NewRegistry()
	a.Counter("server.requests").Add(7)
	a.Gauge("admission.committed_mbps").Set(12.5)
	b := NewRegistry()
	b.Counter("server.requests").Add(2)

	var sb strings.Builder
	err := WritePrometheus(&sb, map[string]Snapshot{
		"U1": a.Snapshot(),
		"U2": b.Snapshot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dvod_server_requests_total counter",
		`dvod_server_requests_total{node="U1"} 7`,
		`dvod_server_requests_total{node="U2"} 2`,
		"# TYPE dvod_admission_committed_mbps gauge",
		`dvod_admission_committed_mbps{node="U1"} 12.5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE dvod_server_requests_total counter") != 1 {
		t.Fatalf("TYPE header duplicated across instances:\n%s", out)
	}
	// The TYPE header must precede its samples.
	if strings.Index(out, "# TYPE dvod_server_requests_total counter") >
		strings.Index(out, `dvod_server_requests_total{node="U1"}`) {
		t.Fatalf("TYPE header after samples:\n%s", out)
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("watch.latency", 1, 10)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var sb strings.Builder
	if err := WritePrometheus(&sb, map[string]Snapshot{"U3": r.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dvod_watch_latency histogram",
		`dvod_watch_latency_bucket{node="U3",le="1"} 1`,
		`dvod_watch_latency_bucket{node="U3",le="10"} 2`,
		`dvod_watch_latency_bucket{node="U3",le="+Inf"} 3`,
		`dvod_watch_latency_sum{node="U3"} 55.5`,
		`dvod_watch_latency_count{node="U3"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusUnlabeledInstance(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests").Inc()
	r.Histogram("lat", 1).Observe(0.5)

	var sb strings.Builder
	if err := WritePrometheus(&sb, map[string]Snapshot{"": r.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "dvod_server_requests_total 1\n") {
		t.Fatalf("empty instance should emit unlabeled samples:\n%s", out)
	}
	if !strings.Contains(out, `dvod_lat_bucket{le="1"} 1`) {
		t.Fatalf("unlabeled histogram bucket missing:\n%s", out)
	}
}
