package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// promPrefix namespaces every exported metric.
const promPrefix = "dvod_"

// promName sanitizes a registry metric name into a legal Prometheus metric
// name: dots and other illegal runes become underscores.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(promPrefix)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel renders the node label for one instance key ("" means none).
func promLabel(instance string) string {
	if instance == "" {
		return ""
	}
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(instance)
	return fmt.Sprintf(`{node=%q}`, esc)
}

// promFloat renders a sample value the way Prometheus expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WritePrometheus renders one or more labeled registry snapshots in the
// Prometheus text exposition format. Map keys become the value of a "node"
// label on every sample (the empty key emits unlabeled samples), so one
// endpoint can expose every video server in a deployment. Counters gain the
// conventional _total suffix; histograms expand into cumulative _bucket,
// _sum, and _count series. Each metric's # TYPE header is emitted exactly
// once, before its samples across all instances.
func WritePrometheus(w io.Writer, snaps map[string]Snapshot) error {
	instances := make([]string, 0, len(snaps))
	for k := range snaps {
		instances = append(instances, k)
	}
	sort.Strings(instances)

	collect := func(pick func(Snapshot) []string) []string {
		seen := map[string]bool{}
		var names []string
		for _, inst := range instances {
			for _, n := range pick(snaps[inst]) {
				if !seen[n] {
					seen[n] = true
					names = append(names, n)
				}
			}
		}
		sort.Strings(names)
		return names
	}
	counterNames := collect(func(s Snapshot) []string { return mapKeys(s.Counters) })
	gaugeNames := collect(func(s Snapshot) []string { return mapKeys(s.Gauges) })
	histNames := collect(func(s Snapshot) []string { return mapKeys(s.Histograms) })

	for _, name := range counterNames {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
			return err
		}
		for _, inst := range instances {
			v, ok := snaps[inst].Counters[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, promLabel(inst), v); err != nil {
				return err
			}
		}
	}
	for _, name := range gaugeNames {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
			return err
		}
		for _, inst := range instances {
			v, ok := snaps[inst].Gauges[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", pn, promLabel(inst), promFloat(v)); err != nil {
				return err
			}
		}
	}
	for _, name := range histNames {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, inst := range instances {
			h, ok := snaps[inst].Histograms[name]
			if !ok {
				continue
			}
			if err := writePromHistogram(w, pn, inst, h); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, pn, inst string, h HistogramSnapshot) error {
	label := promLabel(inst)
	// Bucket labels combine le with the optional node label.
	bucket := func(le string) string {
		if inst == "" {
			return fmt.Sprintf(`{le=%q}`, le)
		}
		return fmt.Sprintf(`{node=%q,le=%q}`, inst, le)
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = promFloat(h.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, bucket(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", pn, label, promFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", pn, label, h.Count)
	return err
}

func mapKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
