// Package metrics is a small dependency-free metrics registry used across the
// VoD service: counters for request/byte totals, gauges for instantaneous
// state (cache occupancy, link utilization), and histograms for latency and
// stall distributions. All types are safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (which must be non-negative) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the value.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates float64 observations into fixed buckets plus exact
// count/sum/min/max, enough for the percentile summaries the experiment
// harness reports.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending
	counts []int64   // len(bounds)+1; last bucket is +Inf
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds. An implicit +Inf bucket is appended.
func NewHistogram(bounds ...float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]int64, len(bs)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Mean returns the arithmetic mean of observations, or 0 with no samples.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an upper-bound estimate for quantile q in [0,1] using the
// bucket boundaries. With no samples it returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}

// Snapshot returns a copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
	if h.count == 0 {
		snap.Min, snap.Max = 0, 0
	}
	return snap
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// supplied bounds on first use. Later calls ignore bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		snap.Histograms[name] = h.Snapshot()
	}
	return snap
}

// String renders the snapshot as sorted "name value" lines, for logs and the
// CLI tools.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge %s %g\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "histogram %s count=%d mean=%g p50=%g p99=%g\n",
			n, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
	}
	return b.String()
}
