package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterIncAdd(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 6 {
		t.Fatalf("Value = %d, want 6", got)
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(-3)
	if got := c.Value(); got != 10 {
		t.Fatalf("Value after negative Add = %d, want 10", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range perWorker {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("Value = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(2.5)
	if got := g.Value(); got != 4.0 {
		t.Fatalf("Value = %g, want 4", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	const workers, perWorker = 4, 500
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range perWorker {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*perWorker)*0.5; got != want {
		t.Fatalf("Value = %g, want %g", got, want)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if s.Sum != 555.5 {
		t.Fatalf("Sum = %g, want 555.5", s.Sum)
	}
	if s.Min != 0.5 || s.Max != 500 {
		t.Fatalf("Min/Max = %g/%g, want 0.5/500", s.Min, s.Max)
	}
	wantCounts := []int64{1, 1, 1, 1}
	for i, c := range s.Counts {
		if c != wantCounts[i] {
			t.Fatalf("Counts[%d] = %d, want %d", i, c, wantCounts[i])
		}
	}
}

func TestHistogramMeanEmptyIsZero(t *testing.T) {
	s := NewHistogram(1).Snapshot()
	if s.Mean() != 0 {
		t.Fatalf("Mean of empty histogram = %g, want 0", s.Mean())
	}
	if s.Quantile(0.5) != 0 {
		t.Fatalf("Quantile of empty histogram = %g, want 0", s.Quantile(0.5))
	}
	if s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot Min/Max = %g/%g, want 0/0", s.Min, s.Max)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 5 {
		t.Fatalf("p50 = %g, want 5", q)
	}
	if q := s.Quantile(1.0); q != 10 {
		t.Fatalf("p100 = %g, want 10", q)
	}
	if q := s.Quantile(0.0); q != 1 {
		t.Fatalf("p0 = %g, want 1 (rank clamps to first sample)", q)
	}
	// Out-of-range q clamps.
	if q := s.Quantile(2.0); q != 10 {
		t.Fatalf("Quantile(2.0) = %g, want 10", q)
	}
	if q := s.Quantile(-1.0); q != 1 {
		t.Fatalf("Quantile(-1.0) = %g, want 1", q)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := NewHistogram(100, 1, 10)
	h.Observe(5)
	s := h.Snapshot()
	if s.Bounds[0] != 1 || s.Bounds[1] != 10 || s.Bounds[2] != 100 {
		t.Fatalf("Bounds = %v, want sorted [1 10 100]", s.Bounds)
	}
	if s.Counts[1] != 1 {
		t.Fatalf("observation of 5 landed in bucket %v, want index 1", s.Counts)
	}
}

// Property: quantile estimates never fall below the true minimum nor exceed
// the true maximum of the observed samples.
func TestHistogramQuantileBoundsProperty(t *testing.T) {
	prop := func(raw []float64, qRaw float64) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(0.25, 0.5, 0.75)
		lo, hi := raw[0], raw[0]
		for _, v := range raw {
			// Map arbitrary floats into [0,1] to keep values finite.
			v = v - float64(int64(v))
			if v < 0 {
				v = -v
			}
			h.Observe(v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		_ = lo
		q := qRaw - float64(int64(qRaw))
		if q < 0 {
			q = -q
		}
		s := h.Snapshot()
		return s.Quantile(q) <= s.Max || s.Count == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter returned distinct instances for one name")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge returned distinct instances for one name")
	}
	if r.Histogram("h", 1) != r.Histogram("h", 2) {
		t.Fatal("Histogram returned distinct instances for one name")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(3)
	r.Gauge("util").Set(0.91)
	r.Histogram("lat", 1, 10).Observe(5)
	s := r.Snapshot()
	if s.Counters["reqs"] != 3 {
		t.Fatalf("snapshot counter = %d, want 3", s.Counters["reqs"])
	}
	if s.Gauges["util"] != 0.91 {
		t.Fatalf("snapshot gauge = %g, want 0.91", s.Gauges["util"])
	}
	if s.Histograms["lat"].Count != 1 {
		t.Fatalf("snapshot histogram count = %d, want 1", s.Histograms["lat"].Count)
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("z").Set(2)
	out := r.Snapshot().String()
	if !strings.Contains(out, "counter a 1") || !strings.Contains(out, "gauge z 2") {
		t.Fatalf("String() missing entries:\n%s", out)
	}
	if strings.Index(out, "counter a") > strings.Index(out, "counter b") {
		t.Fatalf("String() not sorted:\n%s", out)
	}
}
