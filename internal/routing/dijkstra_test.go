package routing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvod/internal/topology"
)

// line builds A-B-C-D with unit-capacity links.
func line(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph()
	nodes := []topology.NodeID{"A", "B", "C", "D"}
	for _, n := range nodes {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(nodes); i++ {
		if _, err := g.AddLink(nodes[i-1], nodes[i], 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// diamond builds A-B, A-C, B-D, C-D plus B-C.
func diamond(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B", "C", "D"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]topology.NodeID{{"A", "B"}, {"A", "C"}, {"B", "D"}, {"C", "D"}, {"B", "C"}} {
		if _, err := g.AddLink(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func w(pairs ...any) CostTable {
	ct := CostTable{}
	for i := 0; i < len(pairs); i += 2 {
		ct[pairs[i].(topology.LinkID)] = pairs[i+1].(float64)
	}
	return ct
}

func lid(a, b topology.NodeID) topology.LinkID { return topology.MakeLinkID(a, b) }

func TestShortestPathsLine(t *testing.T) {
	g := line(t)
	weights := w(lid("A", "B"), 1.0, lid("B", "C"), 2.0, lid("C", "D"), 3.0)
	tree, err := ShortestPaths(g, weights, "A")
	if err != nil {
		t.Fatalf("ShortestPaths: %v", err)
	}
	p, err := tree.PathTo("D")
	if err != nil {
		t.Fatalf("PathTo: %v", err)
	}
	if p.Cost != 6 {
		t.Fatalf("cost = %g, want 6", p.Cost)
	}
	if p.String() != "A,B,C,D" {
		t.Fatalf("path = %s, want A,B,C,D", p)
	}
}

func TestShortestPathsPicksCheaperOfTwoRoutes(t *testing.T) {
	g := diamond(t)
	weights := w(
		lid("A", "B"), 1.0, lid("A", "C"), 5.0,
		lid("B", "D"), 1.0, lid("C", "D"), 1.0,
		lid("B", "C"), 1.0,
	)
	tree, err := ShortestPaths(g, weights, "A")
	if err != nil {
		t.Fatal(err)
	}
	p, err := tree.PathTo("D")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "A,B,D" || p.Cost != 2 {
		t.Fatalf("path = %s cost %g, want A,B,D cost 2", p, p.Cost)
	}
	// C is cheaper via B than directly.
	pc, err := tree.PathTo("C")
	if err != nil {
		t.Fatal(err)
	}
	if pc.String() != "A,B,C" || pc.Cost != 2 {
		t.Fatalf("path to C = %s cost %g, want A,B,C cost 2", pc, pc.Cost)
	}
}

func TestShortestPathsSourceItself(t *testing.T) {
	g := line(t)
	weights := MinHopWeights(g)
	tree, err := ShortestPaths(g, weights, "B")
	if err != nil {
		t.Fatal(err)
	}
	p, err := tree.PathTo("B")
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 0 || len(p.Nodes) != 1 || p.Nodes[0] != "B" {
		t.Fatalf("self path = %v cost %g", p.Nodes, p.Cost)
	}
}

func TestShortestPathsErrors(t *testing.T) {
	g := line(t)
	weights := MinHopWeights(g)
	if _, err := ShortestPaths(g, weights, "Z"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown source error = %v", err)
	}
	missing := CostTable{lid("A", "B"): 1}
	if _, err := ShortestPaths(g, missing, "A"); !errors.Is(err, ErrMissingWeight) {
		t.Fatalf("missing weight error = %v", err)
	}
	neg := MinHopWeights(g)
	neg[lid("B", "C")] = -0.5
	if _, err := ShortestPaths(g, neg, "A"); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("negative weight error = %v", err)
	}
	nan := MinHopWeights(g)
	nan[lid("B", "C")] = math.NaN()
	if _, err := ShortestPaths(g, nan, "A"); err == nil {
		t.Fatal("accepted NaN weight")
	}
}

func TestUnreachableDestination(t *testing.T) {
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B", "C"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddLink("A", "B", 1); err != nil {
		t.Fatal(err)
	}
	tree, err := ShortestPaths(g, MinHopWeights(g), "A")
	if err != nil {
		t.Fatal(err)
	}
	if tree.Reachable("C") {
		t.Fatal("C reported reachable")
	}
	if _, err := tree.PathTo("C"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("PathTo unreachable error = %v", err)
	}
	if _, err := tree.PathTo("Z"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("PathTo unknown error = %v", err)
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{Nodes: []topology.NodeID{"A", "B", "C"}, Cost: 2.5}
	if p.Source() != "A" || p.Dest() != "C" || p.Hops() != 2 {
		t.Fatal("path accessors wrong")
	}
	links := p.Links()
	if len(links) != 2 || links[0] != lid("A", "B") || links[1] != lid("B", "C") {
		t.Fatalf("Links = %v", links)
	}
	r := p.Reverse()
	if r.String() != "C,B,A" || r.Cost != 2.5 {
		t.Fatalf("Reverse = %s cost %g", r, r.Cost)
	}
	var empty Path
	if empty.Source() != "" || empty.Dest() != "" || empty.Hops() != 0 || empty.Links() != nil {
		t.Fatal("empty path accessors wrong")
	}
	if empty.String() != "<empty>" {
		t.Fatalf("empty String = %q", empty.String())
	}
	single := Path{Nodes: []topology.NodeID{"A"}}
	if single.Links() != nil || single.Hops() != 0 {
		t.Fatal("single-node path helpers wrong")
	}
}

func TestDijkstraTraceStepStructure(t *testing.T) {
	g := diamond(t)
	weights := w(
		lid("A", "B"), 1.0, lid("A", "C"), 3.0,
		lid("B", "D"), 3.0, lid("C", "D"), 1.0,
		lid("B", "C"), 1.0,
	)
	steps, tree, err := DijkstraTrace(g, weights, "A")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 4 {
		t.Fatalf("got %d steps, want 4 (one per node)", len(steps))
	}
	// Step 1: only A permanent; B labelled 1 via A,B; C labelled 3 via A,C;
	// D unreachable.
	s1 := steps[0]
	if len(s1.Permanent) != 1 || s1.Permanent[0] != "A" {
		t.Fatalf("step1 permanent = %v", s1.Permanent)
	}
	if l := s1.Labels["B"]; !l.Reachable || l.Dist != 1 {
		t.Fatalf("step1 label B = %+v", l)
	}
	if l := s1.Labels["D"]; l.Reachable {
		t.Fatalf("step1 label D should be unreachable, got %+v", l)
	}
	// Step 2: B permanent; C relaxes to 2 via A,B,C; D to 4 via A,B,D.
	s2 := steps[1]
	if s2.Permanent[1] != "B" {
		t.Fatalf("step2 added %v, want B", s2.Permanent[1])
	}
	if l := s2.Labels["C"]; l.Dist != 2 || len(l.Path) != 3 {
		t.Fatalf("step2 label C = %+v", l)
	}
	// Final tree: D at 3 via A,B,C,D.
	p, err := tree.PathTo("D")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "A,B,C,D" || p.Cost != 3 {
		t.Fatalf("final path = %s cost %g", p, p.Cost)
	}
	// Labels of permanent nodes remain visible in later steps (the paper's
	// tables keep printing them).
	last := steps[len(steps)-1]
	if l := last.Labels["B"]; !l.Reachable || l.Dist != 1 {
		t.Fatalf("final step label B = %+v", l)
	}
}

func TestDijkstraDeterministicTieBreak(t *testing.T) {
	// B and C both at distance 1 from A; extraction order must be B then C
	// (lexicographic) every run.
	g := diamond(t)
	weights := w(
		lid("A", "B"), 1.0, lid("A", "C"), 1.0,
		lid("B", "D"), 1.0, lid("C", "D"), 1.0,
		lid("B", "C"), 1.0,
	)
	for range 10 {
		steps, tree, err := DijkstraTrace(g, weights, "A")
		if err != nil {
			t.Fatal(err)
		}
		if steps[1].Permanent[1] != "B" || steps[2].Permanent[2] != "C" {
			t.Fatalf("extraction order = %v", steps[len(steps)-1].Permanent)
		}
		p, err := tree.PathTo("D")
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != "A,B,D" {
			t.Fatalf("tie-broken path = %s, want A,B,D", p)
		}
	}
}

func TestBellmanFordMatchesDijkstra(t *testing.T) {
	g := diamond(t)
	weights := w(
		lid("A", "B"), 1.5, lid("A", "C"), 0.2,
		lid("B", "D"), 2.0, lid("C", "D"), 3.0,
		lid("B", "C"), 0.1,
	)
	dt, err := ShortestPaths(g, weights, "A")
	if err != nil {
		t.Fatal(err)
	}
	bf, err := BellmanFord(g, weights, "A")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		if math.Abs(dt.Dist[n]-bf.Dist[n]) > 1e-12 {
			t.Fatalf("node %s: dijkstra %g, bellman-ford %g", n, dt.Dist[n], bf.Dist[n])
		}
	}
}

func TestBellmanFordErrors(t *testing.T) {
	g := line(t)
	if _, err := BellmanFord(g, MinHopWeights(g), "Z"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown source error = %v", err)
	}
	if _, err := BellmanFord(g, CostTable{}, "A"); !errors.Is(err, ErrMissingWeight) {
		t.Fatalf("missing weight error = %v", err)
	}
}

func TestBellmanFordDetectsNegativeCycle(t *testing.T) {
	g := diamond(t)
	weights := MinHopWeights(g)
	weights[lid("B", "C")] = -5
	if _, err := BellmanFord(g, weights, "A"); err == nil {
		t.Fatal("negative cycle not detected")
	}
}

func TestMinHopWeights(t *testing.T) {
	g := diamond(t)
	weights := MinHopWeights(g)
	if len(weights) != g.NumLinks() {
		t.Fatalf("weights cover %d links, want %d", len(weights), g.NumLinks())
	}
	for id, v := range weights {
		if v != 1 {
			t.Fatalf("weight of %s = %g, want 1", id, v)
		}
	}
}

func TestCheapestTo(t *testing.T) {
	g := line(t)
	weights := w(lid("A", "B"), 1.0, lid("B", "C"), 1.0, lid("C", "D"), 10.0)
	tree, err := ShortestPaths(g, weights, "A")
	if err != nil {
		t.Fatal(err)
	}
	p, err := CheapestTo(tree, []topology.NodeID{"C", "D"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dest() != "C" {
		t.Fatalf("CheapestTo picked %s, want C", p.Dest())
	}
	if _, err := CheapestTo(tree, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("empty candidates error = %v", err)
	}
}

func TestCheapestToSkipsUnreachable(t *testing.T) {
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B", "C"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddLink("A", "B", 1); err != nil {
		t.Fatal(err)
	}
	tree, err := ShortestPaths(g, MinHopWeights(g), "A")
	if err != nil {
		t.Fatal(err)
	}
	p, err := CheapestTo(tree, []topology.NodeID{"C", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dest() != "B" {
		t.Fatalf("CheapestTo picked %s, want B", p.Dest())
	}
	if _, err := CheapestTo(tree, []topology.NodeID{"C"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("all-unreachable error = %v", err)
	}
}

// randomConnectedGraph builds a connected random graph: a spanning path plus
// extra random edges.
func randomConnectedGraph(r *rand.Rand, n, extra int) (*topology.Graph, CostTable) {
	g := topology.NewGraph()
	ids := make([]topology.NodeID, n)
	for i := range n {
		ids[i] = topology.NodeID(string(rune('A' + i)))
		if err := g.AddNode(ids[i]); err != nil {
			panic(err)
		}
	}
	weights := CostTable{}
	addEdge := func(a, b topology.NodeID) {
		id, err := g.AddLink(a, b, 1+9*r.Float64())
		if err != nil {
			return // duplicate; fine
		}
		weights[id] = r.Float64() * 5
	}
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		addEdge(ids[perm[i-1]], ids[perm[i]])
	}
	for range extra {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			addEdge(ids[a], ids[b])
		}
	}
	return g, weights
}

// Property: Dijkstra and Bellman-Ford agree on every distance in random
// connected graphs with non-negative weights.
func TestDijkstraEqualsBellmanFordProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		g, weights := randomConnectedGraph(r, n, n)
		src := g.Nodes()[r.Intn(n)]
		dt, err1 := ShortestPaths(g, weights, src)
		bf, err2 := BellmanFord(g, weights, src)
		if err1 != nil || err2 != nil {
			return false
		}
		for _, node := range g.Nodes() {
			if math.Abs(dt.Dist[node]-bf.Dist[node]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every reconstructed path is simple (no repeated node), starts at
// the source, ends at the destination, and its cost equals the sum of its
// link weights.
func TestPathWellFormedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		g, weights := randomConnectedGraph(r, n, n)
		src := g.Nodes()[r.Intn(n)]
		tree, err := ShortestPaths(g, weights, src)
		if err != nil {
			return false
		}
		for _, dst := range g.Nodes() {
			if !tree.Reachable(dst) {
				continue
			}
			p, err := tree.PathTo(dst)
			if err != nil {
				return false
			}
			if p.Source() != src || p.Dest() != dst {
				return false
			}
			seen := map[topology.NodeID]bool{}
			for _, node := range p.Nodes {
				if seen[node] {
					return false
				}
				seen[node] = true
			}
			var sum float64
			for _, l := range p.Links() {
				sum += weights[l]
			}
			if math.Abs(sum-p.Cost) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: sub-paths of shortest paths are shortest (optimal substructure).
func TestSubPathOptimalityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		g, weights := randomConnectedGraph(r, n, n)
		src := g.Nodes()[r.Intn(n)]
		tree, err := ShortestPaths(g, weights, src)
		if err != nil {
			return false
		}
		for _, dst := range g.Nodes() {
			if !tree.Reachable(dst) || dst == src {
				continue
			}
			p, err := tree.PathTo(dst)
			if err != nil {
				return false
			}
			// Every prefix endpoint's tree distance equals the prefix cost.
			var cost float64
			for i := 1; i < len(p.Nodes); i++ {
				cost += weights[topology.MakeLinkID(p.Nodes[i-1], p.Nodes[i])]
				if math.Abs(tree.Dist[p.Nodes[i]]-cost) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
