// Package routing implements the shortest-path machinery of the Virtual
// Routing Algorithm: Dijkstra's algorithm over LVN-weighted links, with an
// optional per-step trace that reproduces the tabular presentation of the
// paper's case study (Tables 4 and 5), and a Bellman-Ford implementation used
// as an independent cross-check in tests.
package routing

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"dvod/internal/topology"
)

// CostTable maps every link to its non-negative routing cost (the LVN).
type CostTable map[topology.LinkID]float64

// Errors reported by the routing package.
var (
	ErrNegativeWeight = errors.New("negative link weight")
	ErrMissingWeight  = errors.New("link missing from cost table")
	ErrUnreachable    = errors.New("destination unreachable")
	ErrUnknownNode    = errors.New("node not in graph")
)

// Path is a loop-free route through the overlay.
type Path struct {
	Nodes []topology.NodeID `json:"nodes"`
	Cost  float64           `json:"cost"`
}

// Source returns the first node of the path.
func (p Path) Source() topology.NodeID {
	if len(p.Nodes) == 0 {
		return ""
	}
	return p.Nodes[0]
}

// Dest returns the last node of the path.
func (p Path) Dest() topology.NodeID {
	if len(p.Nodes) == 0 {
		return ""
	}
	return p.Nodes[len(p.Nodes)-1]
}

// Hops returns the number of links traversed.
func (p Path) Hops() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// Links returns the canonical IDs of the links the path traverses, in order.
func (p Path) Links() []topology.LinkID {
	if len(p.Nodes) < 2 {
		return nil
	}
	out := make([]topology.LinkID, 0, len(p.Nodes)-1)
	for i := 1; i < len(p.Nodes); i++ {
		out = append(out, topology.MakeLinkID(p.Nodes[i-1], p.Nodes[i]))
	}
	return out
}

// Reverse returns the path traversed in the opposite direction (same cost;
// links are bidirectional).
func (p Path) Reverse() Path {
	nodes := make([]topology.NodeID, len(p.Nodes))
	for i, n := range p.Nodes {
		nodes[len(nodes)-1-i] = n
	}
	return Path{Nodes: nodes, Cost: p.Cost}
}

// String renders the path the way the paper writes routes: "U2,U1,U6,U5".
func (p Path) String() string {
	if len(p.Nodes) == 0 {
		return "<empty>"
	}
	s := string(p.Nodes[0])
	for _, n := range p.Nodes[1:] {
		s += "," + string(n)
	}
	return s
}

// Tree is the single-source shortest-path tree produced by Dijkstra.
type Tree struct {
	Source topology.NodeID
	Dist   map[topology.NodeID]float64
	Prev   map[topology.NodeID]topology.NodeID
}

// Reachable reports whether dst has a finite-cost path from the source.
func (t *Tree) Reachable(dst topology.NodeID) bool {
	d, ok := t.Dist[dst]
	return ok && !math.IsInf(d, 1)
}

// PathTo reconstructs the least-cost path from the tree's source to dst.
func (t *Tree) PathTo(dst topology.NodeID) (Path, error) {
	d, ok := t.Dist[dst]
	if !ok {
		return Path{}, fmt.Errorf("%w: %s", ErrUnknownNode, dst)
	}
	if math.IsInf(d, 1) {
		return Path{}, fmt.Errorf("%w: %s from %s", ErrUnreachable, dst, t.Source)
	}
	var rev []topology.NodeID
	for n := dst; ; {
		rev = append(rev, n)
		if n == t.Source {
			break
		}
		n = t.Prev[n]
	}
	nodes := make([]topology.NodeID, len(rev))
	for i, n := range rev {
		nodes[len(nodes)-1-i] = n
	}
	return Path{Nodes: nodes, Cost: d}, nil
}

// checkWeights validates that every graph link has a finite non-negative cost.
func checkWeights(g *topology.Graph, weights CostTable) error {
	for _, l := range g.Links() {
		w, ok := weights[l.ID]
		if !ok {
			return fmt.Errorf("%w: %s", ErrMissingWeight, l.ID)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("weight for %s is not finite: %g", l.ID, w)
		}
		if w < 0 {
			return fmt.Errorf("%w: %s = %g", ErrNegativeWeight, l.ID, w)
		}
	}
	return nil
}

// ShortestPaths runs Dijkstra's algorithm from source over the given link
// costs and returns the full shortest-path tree.
func ShortestPaths(g *topology.Graph, weights CostTable, source topology.NodeID) (*Tree, error) {
	tree, _, err := dijkstra(g, weights, source, false)
	return tree, err
}

// TraceStep is one row of the paper's Dijkstra walk-through: after the
// step-th node is made permanent, the tentative label of every non-source
// node. Unreachable nodes carry Reachable=false (printed "R" in the paper).
type TraceStep struct {
	Step      int
	Permanent []topology.NodeID // in the order they became permanent
	Labels    map[topology.NodeID]Label
}

// Label is a tentative Dijkstra label: the best-known distance and path.
type Label struct {
	Reachable bool
	Dist      float64
	Path      []topology.NodeID
}

// DijkstraTrace runs Dijkstra like ShortestPaths but additionally records the
// tentative-label table after every permanent-set extension, matching the
// presentation of Tables 4 and 5 in the paper.
func DijkstraTrace(g *topology.Graph, weights CostTable, source topology.NodeID) ([]TraceStep, *Tree, error) {
	tree, steps, err := dijkstra(g, weights, source, true)
	return steps, tree, err
}

type pqItem struct {
	node topology.NodeID
	dist float64
	idx  int
}

type priorityQueue []*pqItem

func (q priorityQueue) Len() int { return len(q) }

func (q priorityQueue) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].node < q[j].node // deterministic tie-break
}

func (q priorityQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *priorityQueue) Push(x any) {
	it := x.(*pqItem)
	it.idx = len(*q)
	*q = append(*q, it)
}

func (q *priorityQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

func dijkstra(g *topology.Graph, weights CostTable, source topology.NodeID, trace bool) (*Tree, []TraceStep, error) {
	if !g.HasNode(source) {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownNode, source)
	}
	if err := checkWeights(g, weights); err != nil {
		return nil, nil, err
	}

	dist := make(map[topology.NodeID]float64, g.NumNodes())
	prev := make(map[topology.NodeID]topology.NodeID, g.NumNodes())
	done := make(map[topology.NodeID]bool, g.NumNodes())
	for _, n := range g.Nodes() {
		dist[n] = math.Inf(1)
	}
	dist[source] = 0

	items := map[topology.NodeID]*pqItem{}
	var pq priorityQueue
	src := &pqItem{node: source, dist: 0}
	heap.Push(&pq, src)
	items[source] = src

	tree := &Tree{Source: source, Dist: dist, Prev: prev}
	var steps []TraceStep
	var permanent []topology.NodeID

	for pq.Len() > 0 {
		it := heap.Pop(&pq).(*pqItem)
		n := it.node
		if done[n] {
			continue
		}
		done[n] = true
		delete(items, n)
		permanent = append(permanent, n)

		for _, lid := range g.Adjacent(n) {
			l, err := g.LinkByID(lid)
			if err != nil {
				return nil, nil, err
			}
			m := l.Other(n)
			if done[m] {
				continue
			}
			alt := dist[n] + weights[lid]
			if alt < dist[m] {
				dist[m] = alt
				prev[m] = n
				if ex, ok := items[m]; ok {
					ex.dist = alt
					heap.Fix(&pq, ex.idx)
				} else {
					ni := &pqItem{node: m, dist: alt}
					heap.Push(&pq, ni)
					items[m] = ni
				}
			}
		}

		if trace {
			steps = append(steps, snapshotStep(g, tree, permanent))
		}
	}
	return tree, steps, nil
}

// snapshotStep copies the tentative labels of all non-source nodes.
func snapshotStep(g *topology.Graph, t *Tree, permanent []topology.NodeID) TraceStep {
	step := TraceStep{
		Step:      len(permanent),
		Permanent: append([]topology.NodeID(nil), permanent...),
		Labels:    make(map[topology.NodeID]Label, g.NumNodes()-1),
	}
	for _, n := range g.Nodes() {
		if n == t.Source {
			continue
		}
		d := t.Dist[n]
		if math.IsInf(d, 1) {
			step.Labels[n] = Label{Reachable: false}
			continue
		}
		// Reconstruct the current tentative path through Prev.
		var rev []topology.NodeID
		for m := n; ; {
			rev = append(rev, m)
			if m == t.Source {
				break
			}
			m = t.Prev[m]
		}
		nodes := make([]topology.NodeID, len(rev))
		for i, m := range rev {
			nodes[len(nodes)-1-i] = m
		}
		step.Labels[n] = Label{Reachable: true, Dist: d, Path: nodes}
	}
	return step
}

// BellmanFord computes single-source shortest paths by edge relaxation. It is
// O(V·E) and exists as an independent oracle for cross-checking Dijkstra in
// tests and for graphs whose weights might be negative (it reports negative
// cycles instead of looping).
func BellmanFord(g *topology.Graph, weights CostTable, source topology.NodeID) (*Tree, error) {
	if !g.HasNode(source) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, source)
	}
	for _, l := range g.Links() {
		if _, ok := weights[l.ID]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrMissingWeight, l.ID)
		}
	}
	dist := make(map[topology.NodeID]float64, g.NumNodes())
	prev := make(map[topology.NodeID]topology.NodeID, g.NumNodes())
	nodes := g.Nodes()
	for _, n := range nodes {
		dist[n] = math.Inf(1)
	}
	dist[source] = 0
	links := g.Links()
	for range nodes {
		changed := false
		for _, l := range links {
			w := weights[l.ID]
			if dist[l.A]+w < dist[l.B] {
				dist[l.B] = dist[l.A] + w
				prev[l.B] = l.A
				changed = true
			}
			if dist[l.B]+w < dist[l.A] {
				dist[l.A] = dist[l.B] + w
				prev[l.A] = l.B
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// One more pass detects negative cycles.
	for _, l := range links {
		w := weights[l.ID]
		if dist[l.A]+w < dist[l.B]-1e-12 || dist[l.B]+w < dist[l.A]-1e-12 {
			return nil, errors.New("negative cycle detected")
		}
	}
	return &Tree{Source: source, Dist: dist, Prev: prev}, nil
}

// MinHopWeights returns a cost table assigning every link cost 1, the
// baseline "shortest path by hop count" policy.
func MinHopWeights(g *topology.Graph) CostTable {
	out := make(CostTable, g.NumLinks())
	for _, l := range g.Links() {
		out[l.ID] = 1
	}
	return out
}

// CheapestTo selects, among the candidate destinations, the one with the
// least-cost path from the tree's source. Ties break toward the
// lexicographically smaller node ID for determinism. It returns
// ErrUnreachable when no candidate is reachable.
func CheapestTo(t *Tree, candidates []topology.NodeID) (Path, error) {
	sorted := append([]topology.NodeID(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	best := Path{Cost: math.Inf(1)}
	found := false
	for _, c := range sorted {
		if !t.Reachable(c) {
			continue
		}
		p, err := t.PathTo(c)
		if err != nil {
			continue
		}
		if p.Cost < best.Cost {
			best = p
			found = true
		}
	}
	if !found {
		return Path{}, fmt.Errorf("%w: no candidate reachable from %s", ErrUnreachable, t.Source)
	}
	return best, nil
}
