// Package netsim is the network substrate for the emulated plane: a
// deterministic discrete-event fluid-flow simulator over the service
// topology. Each link carries configurable background traffic (the
// experiments replay the paper's Table 2 diurnal pattern) plus the video
// transfer flows the service starts; concurrent flows share residual link
// capacity max-min fairly, and the simulator advances a virtual clock from
// one flow completion to the next.
//
// The model is fluid (no packets, no propagation delay): a flow's
// instantaneous rate is the max-min fair share along its path, integrated
// exactly between events. That is the level of fidelity the paper's
// algorithms observe — they act on link utilization percentages, never on
// per-packet behaviour.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"dvod/internal/routing"
	"dvod/internal/topology"
)

// Errors reported by the simulator.
var (
	ErrBadBytes   = errors.New("transfer size must be positive")
	ErrBadPath    = errors.New("path traverses unknown link")
	ErrPastTime   = errors.New("cannot advance backwards")
	ErrStalled    = errors.New("active flows have zero rate")
	ErrMaxElapsed = errors.New("run exceeded time bound")
)

// Flow is one in-flight transfer. Fields are owned by the Network; read them
// only via methods after the network created the flow.
type Flow struct {
	id          int64
	path        routing.Path
	totalBytes  int64
	remaining   float64 // bytes
	rateMbps    float64
	started     time.Time
	activeAt    time.Time // first byte arrives after the path latency
	completed   bool
	completedAt time.Time
	cancelled   bool
}

// ID returns the flow's unique identifier.
func (f *Flow) ID() int64 { return f.id }

// Path returns the route the flow traverses.
func (f *Flow) Path() routing.Path { return f.path }

// TotalBytes returns the transfer size.
func (f *Flow) TotalBytes() int64 { return f.totalBytes }

// Network is the simulator. Methods are not safe for concurrent use: the
// emulated plane is single-threaded by design (determinism).
type Network struct {
	graph      *topology.Graph
	now        time.Time
	background map[topology.LinkID]float64
	latency    map[topology.LinkID]time.Duration
	down       map[topology.LinkID]bool
	flows      map[int64]*Flow
	nextID     int64
}

// New builds a simulator over the graph starting at the given instant.
func New(g *topology.Graph, start time.Time) *Network {
	return &Network{
		graph:      g,
		now:        start,
		background: make(map[topology.LinkID]float64),
		latency:    make(map[topology.LinkID]time.Duration),
		down:       make(map[topology.LinkID]bool),
		flows:      make(map[int64]*Flow),
	}
}

// SetLinkDown takes a link down (or restores it): a down link has zero
// residual capacity, so flows crossing it stall at rate 0 until the link
// comes back — the emulated plane's view of a link failure or partition.
// Active flow rates are re-derived immediately.
func (n *Network) SetLinkDown(id topology.LinkID, down bool) error {
	if _, err := n.graph.LinkByID(id); err != nil {
		return err
	}
	if n.down[id] == down {
		return nil
	}
	if down {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
	n.reallocate()
	return nil
}

// LinkDown reports whether the link is currently down.
func (n *Network) LinkDown(id topology.LinkID) bool { return n.down[id] }

// SetLatency fixes a link's one-way propagation delay (default 0). A flow's
// first byte arrives only after the summed latency of its path; until then
// the flow consumes no bandwidth.
func (n *Network) SetLatency(id topology.LinkID, d time.Duration) error {
	if _, err := n.graph.LinkByID(id); err != nil {
		return err
	}
	if d < 0 {
		return fmt.Errorf("negative latency %v for %s", d, id)
	}
	n.latency[id] = d
	return nil
}

// Latency returns a link's configured propagation delay.
func (n *Network) Latency(id topology.LinkID) time.Duration { return n.latency[id] }

// PathLatency sums the propagation delay along a path.
func (n *Network) PathLatency(path routing.Path) time.Duration {
	var total time.Duration
	for _, id := range path.Links() {
		total += n.latency[id]
	}
	return total
}

// Now returns the simulator's current instant.
func (n *Network) Now() time.Time { return n.now }

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.graph }

// SetBackground fixes the background (non-VoD) traffic on a link in Mbps,
// clamped to [0, capacity]. Active flow rates are re-derived immediately.
func (n *Network) SetBackground(id topology.LinkID, mbps float64) error {
	l, err := n.graph.LinkByID(id)
	if err != nil {
		return err
	}
	if math.IsNaN(mbps) || math.IsInf(mbps, 0) {
		return fmt.Errorf("background for %s is not finite: %g", id, mbps)
	}
	if mbps < 0 {
		mbps = 0
	}
	if mbps > l.CapacityMbps {
		mbps = l.CapacityMbps
	}
	n.background[id] = mbps
	n.reallocate()
	return nil
}

// Background returns the configured background traffic of a link in Mbps.
func (n *Network) Background(id topology.LinkID) float64 { return n.background[id] }

// StartFlow begins a transfer of the given size along the path. A path with
// zero hops (server co-located with client) completes instantly.
func (n *Network) StartFlow(path routing.Path, bytes int64) (*Flow, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadBytes, bytes)
	}
	for _, id := range path.Links() {
		if _, err := n.graph.LinkByID(id); err != nil {
			return nil, fmt.Errorf("%w: %s", ErrBadPath, id)
		}
	}
	f := &Flow{
		id:         n.nextID,
		path:       path,
		totalBytes: bytes,
		remaining:  float64(bytes),
		started:    n.now,
		activeAt:   n.now.Add(n.PathLatency(path)),
	}
	n.nextID++
	if path.Hops() == 0 {
		f.completed = true
		f.completedAt = n.now
		return f, nil
	}
	n.flows[f.id] = f
	n.reallocate()
	return f, nil
}

// active reports whether the flow's first byte has reached the pipe.
func (n *Network) active(f *Flow) bool { return !f.activeAt.After(n.now) }

// CancelFlow aborts an in-flight transfer (e.g. the client switches servers
// mid-cluster). Completed or already-cancelled flows are left untouched.
func (n *Network) CancelFlow(f *Flow) {
	if f == nil || f.completed || f.cancelled {
		return
	}
	f.cancelled = true
	delete(n.flows, f.id)
	n.reallocate()
}

// Completed reports whether the flow has delivered all bytes, and when.
func (n *Network) Completed(f *Flow) (bool, time.Time) {
	return f.completed, f.completedAt
}

// Cancelled reports whether the flow was cancelled.
func (n *Network) Cancelled(f *Flow) bool { return f.cancelled }

// RateMbps returns the flow's current max-min fair rate.
func (n *Network) RateMbps(f *Flow) float64 {
	if f.completed || f.cancelled {
		return 0
	}
	return f.rateMbps
}

// RemainingBytes returns the bytes the flow still has to deliver.
func (n *Network) RemainingBytes(f *Flow) int64 {
	if f.completed {
		return 0
	}
	return int64(math.Ceil(f.remaining))
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// LinkUtilization returns (background + flow rates)/capacity for the link at
// the current instant — exactly what an SNMP agent would sample.
func (n *Network) LinkUtilization(id topology.LinkID) (float64, error) {
	l, err := n.graph.LinkByID(id)
	if err != nil {
		return 0, err
	}
	used := n.background[id]
	for _, f := range n.flows {
		for _, fid := range f.path.Links() {
			if fid == id {
				used += f.rateMbps
				break
			}
		}
	}
	return used / l.CapacityMbps, nil
}

// LinkUsedMbps returns background + flow traffic on the link in Mbps.
func (n *Network) LinkUsedMbps(id topology.LinkID) (float64, error) {
	u, err := n.LinkUtilization(id)
	if err != nil {
		return 0, err
	}
	l, err := n.graph.LinkByID(id)
	if err != nil {
		return 0, err
	}
	return u * l.CapacityMbps, nil
}

// NextEventAt returns the earliest upcoming flow event — a completion or a
// latency-delayed activation — or false when no flow is making progress.
func (n *Network) NextEventAt() (time.Time, bool) {
	var (
		best  time.Time
		found bool
	)
	consider := func(at time.Time) {
		if !found || at.Before(best) {
			best = at
			found = true
		}
	}
	for _, f := range n.flows {
		if !n.active(f) {
			consider(f.activeAt)
			continue
		}
		if f.rateMbps <= 0 {
			continue
		}
		consider(n.now.Add(durationFor(f.remaining, f.rateMbps)))
	}
	return best, found
}

// AdvanceTo moves simulated time forward to t, integrating flow progress and
// completing flows exactly at their finish instants.
func (n *Network) AdvanceTo(t time.Time) error {
	if t.Before(n.now) {
		return fmt.Errorf("%w: now %v, target %v", ErrPastTime, n.now, t)
	}
	for {
		next, ok := n.NextEventAt()
		if !ok || next.After(t) {
			n.progressTo(t)
			n.activateDue()
			return nil
		}
		n.progressTo(next)
		n.activateDue()
		n.completeDue()
	}
}

// Advance moves simulated time forward by d.
func (n *Network) Advance(d time.Duration) error {
	return n.AdvanceTo(n.now.Add(d))
}

// RunUntilIdle advances through completions until no flows remain, erroring
// if active flows have zero rate (saturated links) or the bound is exceeded.
func (n *Network) RunUntilIdle(maxElapsed time.Duration) error {
	deadline := n.now.Add(maxElapsed)
	for len(n.flows) > 0 {
		next, ok := n.NextEventAt()
		if !ok {
			return fmt.Errorf("%w: %d flows at rate 0", ErrStalled, len(n.flows))
		}
		if next.After(deadline) {
			return fmt.Errorf("%w: next completion %v past deadline %v", ErrMaxElapsed, next, deadline)
		}
		n.progressTo(next)
		n.activateDue()
		n.completeDue()
	}
	return nil
}

// progressTo integrates all flow progress from now to t (no completions or
// activations are processed; the caller ensures none are due strictly
// before t, so a flow is either active for the whole interval or none of
// it).
func (n *Network) progressTo(t time.Time) {
	dt := t.Sub(n.now).Seconds()
	if dt > 0 {
		for _, f := range n.flows {
			if f.activeAt.After(n.now) {
				continue // still in propagation delay
			}
			f.remaining -= bytesPerSecond(f.rateMbps) * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	n.now = t
}

// activateDue gives newly active flows their share of bandwidth.
func (n *Network) activateDue() {
	changed := false
	for _, f := range n.flows {
		if n.active(f) && f.rateMbps == 0 && f.remaining > 0 {
			changed = true
			break
		}
	}
	if changed {
		n.reallocate()
	}
}

// completeDue finalizes flows whose remaining bytes reached zero.
func (n *Network) completeDue() {
	changed := false
	for id, f := range n.flows {
		if f.remaining <= 1e-9 {
			f.remaining = 0
			f.completed = true
			f.completedAt = n.now
			delete(n.flows, id)
			changed = true
		}
	}
	if changed {
		n.reallocate()
	}
}

// reallocate recomputes max-min fair rates for all active flows via
// progressive filling. Iteration order is by flow ID for determinism.
func (n *Network) reallocate() {
	if len(n.flows) == 0 {
		return
	}
	// Residual capacity per link after background traffic.
	residual := make(map[topology.LinkID]float64, n.graph.NumLinks())
	for _, l := range n.graph.Links() {
		r := l.CapacityMbps - n.background[l.ID]
		if r < 0 || n.down[l.ID] {
			r = 0
		}
		residual[l.ID] = r
	}
	unallocated := make(map[int64]*Flow, len(n.flows))
	for id, f := range n.flows {
		f.rateMbps = 0
		if !n.active(f) {
			continue // in propagation delay: consumes no bandwidth yet
		}
		unallocated[id] = f
	}
	for len(unallocated) > 0 {
		// Count unallocated flows per link.
		counts := make(map[topology.LinkID]int)
		for _, f := range unallocated {
			for _, lid := range f.path.Links() {
				counts[lid]++
			}
		}
		// Bottleneck: the link with the smallest fair share.
		var (
			bottleneck topology.LinkID
			fair       = math.Inf(1)
		)
		linkIDs := make([]topology.LinkID, 0, len(counts))
		for lid := range counts {
			linkIDs = append(linkIDs, lid)
		}
		sort.Slice(linkIDs, func(i, j int) bool { return linkIDs[i] < linkIDs[j] })
		for _, lid := range linkIDs {
			share := residual[lid] / float64(counts[lid])
			if share < fair {
				fair = share
				bottleneck = lid
			}
		}
		if math.IsInf(fair, 1) {
			// No flow crosses any link (cannot happen: zero-hop flows
			// complete at start), but guard against an infinite loop.
			break
		}
		// Freeze every unallocated flow crossing the bottleneck at the
		// fair share, charging its whole path.
		ids := make([]int64, 0, len(unallocated))
		for id := range unallocated {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			f := unallocated[id]
			crosses := false
			for _, lid := range f.path.Links() {
				if lid == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.rateMbps = fair
			for _, lid := range f.path.Links() {
				residual[lid] -= fair
				if residual[lid] < 0 {
					residual[lid] = 0
				}
			}
			delete(unallocated, id)
		}
	}
}

// bytesPerSecond converts a rate in Mbps to bytes per second.
func bytesPerSecond(mbps float64) float64 { return mbps * 1e6 / 8 }

// durationFor returns the time to move `bytes` at `mbps`.
func durationFor(bytes, mbps float64) time.Duration {
	if mbps <= 0 {
		return time.Duration(math.MaxInt64)
	}
	sec := bytes / bytesPerSecond(mbps)
	d := time.Duration(sec * float64(time.Second))
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

// TransferTime estimates the duration to move `bytes` along `path` given the
// network's current background traffic, assuming no competing flows — the
// closed-form used by quick what-if evaluations.
func (n *Network) TransferTime(path routing.Path, bytes int64) (time.Duration, error) {
	if bytes <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadBytes, bytes)
	}
	if path.Hops() == 0 {
		return 0, nil
	}
	rate := math.Inf(1)
	for _, id := range path.Links() {
		l, err := n.graph.LinkByID(id)
		if err != nil {
			return 0, fmt.Errorf("%w: %s", ErrBadPath, id)
		}
		r := l.CapacityMbps - n.background[id]
		if n.down[id] {
			r = 0
		}
		if r < rate {
			rate = r
		}
	}
	if rate <= 0 {
		return time.Duration(math.MaxInt64), nil
	}
	return n.PathLatency(path) + durationFor(float64(bytes), rate), nil
}
